// Package binstat is a low-overhead wall-clock profiler that accumulates
// statistics in a small fixed set of named bins — the measurement layer for
// COMPI's iteration loop.
//
// Why not pprof? pprof samples CPU seconds; the engine's phases (execute,
// solve, snapshot) spend much of their time blocked on goroutine handoffs and
// watchdog waits, which sampling attributes to the scheduler, not the phase.
// binstat times wall-clock between two explicit points, cheap enough to leave
// on in production campaigns, and its output is a plain value that can be
// compared programmatically run-over-run — "is this bin worse than last PR?"
// is a subtraction, not a profile diff.
//
// The efficiency recipe (after flow-go's binstat):
//
//   - the number of bins is small and fixed regardless of call volume;
//   - timestamps come from runtime.nanotime (the monotonic half of time.Now,
//     about twice as fast);
//   - the bin map is guarded by an RWMutex: the usual case — the bin already
//     exists — takes only the read lock and updates the bin through atomics,
//     so concurrent hits on one bin never serialize; only the first hit of a
//     new bin takes the write lock;
//   - the hit path performs zero allocations once a bin exists;
//   - a nil *Profiler disables everything: Time/End degrade to a nil check
//     and return, a few nanoseconds, so instrumented code needs no build
//     tags or branches of its own.
//
// A Profiler is safe for concurrent use and may be shared across engines
// (the scheduler wires one per batch); the report then aggregates the whole
// batch. Measurement never feeds back into what it measures: profiled and
// unprofiled campaigns are pinned byte-identical by the core and proto
// determinism tests.
package binstat

import (
	"fmt"
	"math/bits"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// nBuckets is the number of log2 duration buckets per bin: bucket i counts
// spans with 2^i ≤ nanos < 2^(i+1) (bucket 0 absorbs sub-nanosecond and
// non-positive readings). 2^40 ns ≈ 18 minutes, far beyond any phase.
const nBuckets = 40

// Bin is one named statistic: how many times the point was hit and the total
// wall-clock nanoseconds spent there, plus a log2 histogram of the span
// durations. All updates are atomic; bins are never removed.
type Bin struct {
	name    string
	count   atomic.Int64
	nanos   atomic.Int64
	buckets [nBuckets]atomic.Int64
}

func (b *Bin) hit(nanos int64) {
	b.count.Add(1)
	if nanos > 0 {
		b.nanos.Add(nanos)
	}
	b.buckets[bucketOf(nanos)].Add(1)
}

func bucketOf(nanos int64) int {
	if nanos <= 0 {
		return 0
	}
	i := bits.Len64(uint64(nanos)) - 1
	if i >= nBuckets {
		i = nBuckets - 1
	}
	return i
}

// Profiler collects bins. The zero value is NOT usable: construct with New.
// A nil *Profiler is the disabled profiler — every method is a nil-checked
// no-op — which is how profiling is compiled out of the hot path without
// branches at the call sites.
type Profiler struct {
	mu   sync.RWMutex
	bins map[string]*Bin
}

// New returns an empty, enabled profiler.
func New() *Profiler {
	return &Profiler{bins: map[string]*Bin{}}
}

// Enabled reports whether p actually records (nil means disabled).
func (p *Profiler) Enabled() bool { return p != nil }

// bin returns the named bin, creating it on first use. The fast path is a
// read-locked map lookup with no allocation; only a genuinely new name takes
// the write lock.
func (p *Profiler) bin(what string) *Bin {
	p.mu.RLock()
	b := p.bins[what]
	p.mu.RUnlock()
	if b != nil {
		return b
	}
	p.mu.Lock()
	b = p.bins[what]
	if b == nil {
		b = &Bin{name: what}
		p.bins[what] = b
	}
	p.mu.Unlock()
	return b
}

// Span is an open timing started by Time. It is a plain value (no
// allocation); the zero Span is the disabled span and End on it is a no-op.
type Span struct {
	bin   *Bin
	start int64
}

// Time opens a span against the named bin. Close it with End. On a nil
// profiler it returns the zero Span and costs a nil check.
func (p *Profiler) Time(what string) Span {
	if p == nil {
		return Span{}
	}
	return Span{bin: p.bin(what), start: nanotime()}
}

// End closes the span, accumulating its wall-clock duration into the bin.
func (s Span) End() {
	if s.bin == nil {
		return
	}
	s.bin.hit(nanotime() - s.start)
}

// Hit records one occurrence with no duration (a pure counter bin).
func (p *Profiler) Hit(what string) {
	if p == nil {
		return
	}
	p.bin(what).hit(0)
}

// Observe folds an externally measured duration into the named bin (for
// durations obtained outside a Time/End pair, e.g. carried in a result).
func (p *Profiler) Observe(what string, d time.Duration) {
	if p == nil {
		return
	}
	p.bin(what).hit(int64(d))
}

// BinStat is one bin's snapshot in a Report. Buckets holds the non-empty
// log2-nanosecond histogram entries, sparsely.
type BinStat struct {
	Name    string           `json:"name"`
	Count   int64            `json:"count"`
	Nanos   int64            `json:"nanos"`
	Buckets map[string]int64 `json:"buckets,omitempty"` // "2^i" → count
}

// Total returns the bin's accumulated time as a Duration.
func (s BinStat) Total() time.Duration { return time.Duration(s.Nanos) }

// Mean returns the average span duration.
func (s BinStat) Mean() time.Duration {
	if s.Count == 0 {
		return 0
	}
	return time.Duration(s.Nanos / s.Count)
}

// Report is a profiler snapshot: one BinStat per bin, sorted by total time
// descending (ties by name). Reports are plain values — JSON-serializable
// and comparable across runs, which is the binstat goal: "is this worse than
// last run?" is answered by subtracting two reports.
type Report []BinStat

// Report snapshots every bin. The profiler keeps accumulating; a Report is a
// point-in-time copy. A nil profiler reports nil.
func (p *Profiler) Report() Report {
	if p == nil {
		return nil
	}
	p.mu.RLock()
	out := make(Report, 0, len(p.bins))
	for _, b := range p.bins {
		st := BinStat{Name: b.name, Count: b.count.Load(), Nanos: b.nanos.Load()}
		for i := range b.buckets {
			if n := b.buckets[i].Load(); n > 0 {
				if st.Buckets == nil {
					st.Buckets = map[string]int64{}
				}
				st.Buckets[fmt.Sprintf("2^%d", i)] = n
			}
		}
		out = append(out, st)
	}
	p.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Nanos != out[j].Nanos {
			return out[i].Nanos > out[j].Nanos
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// AddReport folds a previously taken report into p (fleet and scheduler
// rollups: merge worker- or campaign-level reports into one).
func (p *Profiler) AddReport(r Report) {
	if p == nil {
		return
	}
	for _, st := range r {
		b := p.bin(st.Name)
		b.count.Add(st.Count)
		b.nanos.Add(st.Nanos)
		for key, n := range st.Buckets {
			var i int
			if _, err := fmt.Sscanf(key, "2^%d", &i); err == nil && i >= 0 && i < nBuckets {
				b.buckets[i].Add(n)
			}
		}
	}
}

// Get returns the stat for one bin name, if present.
func (r Report) Get(name string) (BinStat, bool) {
	for _, st := range r {
		if st.Name == name {
			return st, true
		}
	}
	return BinStat{}, false
}

// Delta returns r minus an earlier report bin-by-bin (bins absent earlier
// pass through whole; buckets are not differenced). Use it to window a
// shared profiler around one campaign.
func (r Report) Delta(since Report) Report {
	out := make(Report, 0, len(r))
	for _, st := range r {
		if prev, ok := since.Get(st.Name); ok {
			st.Count -= prev.Count
			st.Nanos -= prev.Nanos
			st.Buckets = nil
		}
		if st.Count != 0 || st.Nanos != 0 {
			out = append(out, st)
		}
	}
	return out
}

// String renders the report as an aligned table, biggest bin first.
func (r Report) String() string {
	if len(r) == 0 {
		return "profile: no bins\n"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%-28s %10s %12s %10s %s\n", "bin", "count", "total", "mean", "mode")
	for _, st := range r {
		fmt.Fprintf(&b, "%-28s %10d %12s %10s %s\n",
			st.Name, st.Count,
			st.Total().Round(time.Microsecond),
			st.Mean().Round(time.Nanosecond),
			st.modalBucket())
	}
	return b.String()
}

// Line renders the report as one compact line, top bins first — the form the
// fleet status endpoint emits.
func (r Report) Line(topN int) string {
	if len(r) == 0 {
		return "profile: (empty)"
	}
	if topN <= 0 || topN > len(r) {
		topN = len(r)
	}
	parts := make([]string, 0, topN)
	for _, st := range r[:topN] {
		parts = append(parts, fmt.Sprintf("%s=%d/%s", st.Name, st.Count,
			st.Total().Round(time.Microsecond)))
	}
	return "profile: " + strings.Join(parts, " ")
}

// modalBucket renders the most-populated duration bucket as a human range,
// binstat-style ("time[1.024µs-2.047µs]=813").
func (s BinStat) modalBucket() string {
	var best string
	var bestN int64
	for key, n := range s.Buckets {
		if n > bestN || (n == bestN && key < best) {
			best, bestN = key, n
		}
	}
	if best == "" {
		return ""
	}
	var i int
	fmt.Sscanf(best, "2^%d", &i)
	lo := time.Duration(int64(1) << uint(i))
	hi := time.Duration(int64(1)<<uint(i+1) - 1)
	if i == 0 {
		lo = 0
	}
	return fmt.Sprintf("time[%s-%s]=%d", lo, hi, bestN)
}
