package binstat

import (
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestBasicAccumulation(t *testing.T) {
	p := New()
	for i := 0; i < 10; i++ {
		sp := p.Time("solve")
		sp.End()
	}
	p.Hit("cache-hit")
	p.Observe("execute", 3*time.Millisecond)

	r := p.Report()
	if len(r) != 3 {
		t.Fatalf("want 3 bins, got %d: %v", len(r), r)
	}
	solve, ok := r.Get("solve")
	if !ok || solve.Count != 10 {
		t.Fatalf("solve bin: %+v ok=%v", solve, ok)
	}
	if solve.Nanos < 0 {
		t.Fatalf("solve nanos negative: %d", solve.Nanos)
	}
	hit, _ := r.Get("cache-hit")
	if hit.Count != 1 || hit.Nanos != 0 {
		t.Fatalf("cache-hit bin: %+v", hit)
	}
	exe, _ := r.Get("execute")
	if exe.Count != 1 || exe.Total() != 3*time.Millisecond {
		t.Fatalf("execute bin: %+v", exe)
	}
	// Report is sorted by total time descending: execute's 3ms dominates.
	if r[0].Name != "execute" {
		t.Fatalf("report not sorted by total: %v", r)
	}
}

func TestNilProfilerIsDisabled(t *testing.T) {
	var p *Profiler
	if p.Enabled() {
		t.Fatal("nil profiler claims enabled")
	}
	// All of these must be safe no-ops.
	sp := p.Time("x")
	sp.End()
	p.Hit("y")
	p.Observe("z", time.Second)
	p.AddReport(Report{{Name: "q", Count: 1}})
	if r := p.Report(); r != nil {
		t.Fatalf("nil profiler produced a report: %v", r)
	}
}

// TestHitPathZeroAlloc pins the binstat efficiency contract: once a bin
// exists, Time/End allocate nothing.
func TestHitPathZeroAlloc(t *testing.T) {
	p := New()
	p.Time("phase").End() // create the bin
	allocs := testing.AllocsPerRun(1000, func() {
		sp := p.Time("phase")
		sp.End()
	})
	if allocs != 0 {
		t.Fatalf("hit path allocates %.1f objects/op, want 0", allocs)
	}
	var nilP *Profiler
	allocs = testing.AllocsPerRun(1000, func() {
		sp := nilP.Time("phase")
		sp.End()
	})
	if allocs != 0 {
		t.Fatalf("disabled path allocates %.1f objects/op, want 0", allocs)
	}
}

// TestConcurrentHits exercises the RWMutex + atomics design under the race
// detector: many goroutines hitting overlapping bin names, with concurrent
// Report snapshots.
func TestConcurrentHits(t *testing.T) {
	p := New()
	const workers, perWorker = 8, 500
	names := []string{"a", "b", "c"}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				sp := p.Time(names[(w+i)%len(names)])
				sp.End()
				if i%100 == 0 {
					p.Report()
				}
			}
		}(w)
	}
	wg.Wait()
	var total int64
	for _, st := range p.Report() {
		total += st.Count
	}
	if want := int64(workers * perWorker); total != want {
		t.Fatalf("lost hits under concurrency: total %d, want %d", total, want)
	}
}

func TestBuckets(t *testing.T) {
	if bucketOf(0) != 0 || bucketOf(-5) != 0 || bucketOf(1) != 0 {
		t.Fatal("small durations must land in bucket 0")
	}
	if bucketOf(1024) != 10 || bucketOf(2047) != 10 || bucketOf(2048) != 11 {
		t.Fatalf("1024→%d 2047→%d 2048→%d, want 10 10 11",
			bucketOf(1024), bucketOf(2047), bucketOf(2048))
	}
	if bucketOf(1<<62) != nBuckets-1 {
		t.Fatal("huge durations must clamp to the last bucket")
	}
	p := New()
	p.Observe("x", 1500) // nanoseconds: bucket 2^10
	st, _ := p.Report().Get("x")
	if st.Buckets["2^10"] != 1 {
		t.Fatalf("bucket histogram: %v", st.Buckets)
	}
	if !strings.Contains(st.modalBucket(), "=1") {
		t.Fatalf("modal bucket rendering: %q", st.modalBucket())
	}
}

func TestAddReportAndDelta(t *testing.T) {
	a := New()
	a.Observe("solve", 10*time.Microsecond)
	a.Observe("solve", 10*time.Microsecond)
	a.Observe("exec", time.Microsecond)

	b := New()
	b.AddReport(a.Report())
	b.Observe("solve", 5*time.Microsecond)
	st, _ := b.Report().Get("solve")
	if st.Count != 3 || st.Total() != 25*time.Microsecond {
		t.Fatalf("merged solve bin: %+v", st)
	}

	before := b.Report()
	b.Observe("solve", time.Microsecond)
	d := b.Report().Delta(before)
	st, ok := d.Get("solve")
	if !ok || st.Count != 1 || st.Total() != time.Microsecond {
		t.Fatalf("delta solve bin: %+v ok=%v", st, ok)
	}
	if _, ok := d.Get("exec"); ok {
		t.Fatal("unchanged bin must not appear in delta")
	}
}

func TestReportJSONRoundTrip(t *testing.T) {
	p := New()
	p.Observe("solve", 2*time.Millisecond)
	p.Hit("miss")
	raw, err := json.Marshal(p.Report())
	if err != nil {
		t.Fatal(err)
	}
	var back Report
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	st, ok := back.Get("solve")
	if !ok || st.Total() != 2*time.Millisecond {
		t.Fatalf("round-tripped report: %+v", back)
	}
}

func TestRendering(t *testing.T) {
	p := New()
	p.Observe("big", time.Second)
	p.Observe("small", time.Microsecond)
	s := p.Report().String()
	if !strings.Contains(s, "big") || !strings.Contains(s, "small") {
		t.Fatalf("table rendering: %q", s)
	}
	line := p.Report().Line(1)
	if !strings.HasPrefix(line, "profile: big=1/") || strings.Contains(line, "small") {
		t.Fatalf("line rendering: %q", line)
	}
	if got := (Report{}).Line(3); got != "profile: (empty)" {
		t.Fatalf("empty line rendering: %q", got)
	}
}

// BenchmarkHit measures the enabled hit path (existing bin) and the disabled
// (nil profiler) path — the numbers the "cheap enough to leave on" claim
// rests on.
func BenchmarkHit(b *testing.B) {
	b.Run("enabled", func(b *testing.B) {
		p := New()
		p.Time("x").End()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			sp := p.Time("x")
			sp.End()
		}
	})
	b.Run("disabled", func(b *testing.B) {
		var p *Profiler
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			sp := p.Time("x")
			sp.End()
		}
	})
}
