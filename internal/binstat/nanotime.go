package binstat

import (
	_ "unsafe" // for go:linkname
)

// nanotime is the runtime's monotonic clock. It is what time.Now uses under
// the hood, minus the wall-clock half: no time.Time construction, no location
// lookup, about half the cost of time.Now per call (the flow-go binstat
// rationale). The profiler only ever subtracts two readings, so monotonic
// nanoseconds are exactly enough.
//
//go:linkname nanotime runtime.nanotime
func nanotime() int64
