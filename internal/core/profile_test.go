package core

import (
	"reflect"
	"testing"

	"repro/internal/binstat"
	"repro/internal/targets/stencil"
)

// TestProfilingDeterminism is the measurement-never-perturbs pin at the core
// layer: on two targets, a profiled campaign's trajectory (coverage set,
// per-iteration stats, errors, restarts, solver calls) is byte-identical to
// the unprofiled one. The profiler only reads clocks and bumps counters; if
// it ever leaks into exploration — reordering, seeding, caching — this
// catches it.
func TestProfilingDeterminism(t *testing.T) {
	for _, name := range []string{"skeleton", "stencil"} {
		t.Run(name, func(t *testing.T) {
			cfg := Config{
				Program:    prog(t, name),
				Iterations: 40,
				Reduction:  true,
				DFSPhase:   6,
				Seed:       23,
			}
			if name == "stencil" {
				// The seeded stencil bugs die mid-run with interleaving-
				// dependent trace volumes; fix them so the run-to-run
				// baseline itself is deterministic and the comparison
				// isolates the profiler.
				cfg.Params = stencil.FixAll()
			}
			plain := projectTrajectory(runCampaign(t, cfg))

			profiled := cfg
			profiled.Profiler = binstat.New()
			got := runCampaign(t, profiled)

			if !reflect.DeepEqual(plain, projectTrajectory(got)) {
				t.Fatal("profiled campaign trajectory diverged from unprofiled")
			}
			if got.Profile == nil {
				t.Fatal("profiled campaign returned no Profile")
			}
		})
	}
}

// TestProfileBins checks the report actually carries the per-iteration phase
// taxonomy with sane counts: one execute span per iteration, solver bins
// from the engine's private service on the shared profiler, snapshot spans
// when checkpointing.
func TestProfileBins(t *testing.T) {
	p := binstat.New()
	checkpoints := 0
	res := runCampaign(t, Config{
		Iterations: 30,
		Reduction:  true,
		DFSPhase:   6,
		Seed:       23,
		Profiler:   p,
		Checkpoint: func(*Snapshot) { checkpoints++ },
	})

	exe, ok := res.Profile.Get("execute")
	if !ok || exe.Count != int64(len(res.Iterations)) {
		t.Fatalf("execute bin: %+v (want count %d)", exe, len(res.Iterations))
	}
	if exe.Nanos <= 0 {
		t.Fatalf("execute bin accumulated no time: %+v", exe)
	}
	tc, ok := res.Profile.Get("trace-collect")
	if !ok || tc.Count != int64(len(res.Iterations)) {
		t.Fatalf("trace-collect bin: %+v", tc)
	}
	solve, ok := res.Profile.Get("solve")
	if !ok || solve.Count == 0 {
		t.Fatalf("solve bin: %+v", solve)
	}
	canon, ok := res.Profile.Get("solver.canon")
	if !ok || canon.Count != solve.Count {
		t.Fatalf("solver.canon bin %+v does not match solve bin %+v", canon, solve)
	}
	snap, ok := res.Profile.Get("snapshot")
	if !ok || snap.Count != int64(checkpoints) {
		t.Fatalf("snapshot bin %+v, want count %d", snap, checkpoints)
	}
	if _, ok := res.Profile.Get("negate"); !ok {
		t.Fatal("negate bin missing")
	}
	if _, ok := res.Profile.Get("constraint-build"); !ok {
		t.Fatal("constraint-build bin missing")
	}

	// Unprofiled campaigns report nil.
	res = runCampaign(t, Config{Iterations: 3, Reduction: true, Seed: 23})
	if res.Profile != nil {
		t.Fatalf("unprofiled campaign produced a Profile: %v", res.Profile)
	}
}
