package core

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync/atomic"
	"time"

	"repro/internal/binstat"
	"repro/internal/conc"
	"repro/internal/coverage"
	"repro/internal/expr"
	"repro/internal/mpi"
	"repro/internal/solver"
	"repro/internal/target"
)

// Config parameterizes a testing campaign.
type Config struct {
	Program  *target.Program
	Strategy Strategy // nil selects COMPI's default two-phase DFS

	// NewStrategy, when non-nil, constructs the search strategy against the
	// engine's own program and live coverage tracker and takes precedence
	// over Strategy. Strategies are stateful, so a Config that is reused
	// across several engines (the scheduler's determinism contract) must
	// use a factory rather than sharing one Strategy value.
	NewStrategy func(prog *target.Program, cov *coverage.Tracker) Strategy

	// Params is the campaign parameter bag: concrete per-campaign target
	// knobs (input caps, seeded-bug fix toggles) read by target code via
	// the proc handle. It replaces the racy per-target package globals so
	// concurrent campaigns on one target cannot observe each other's
	// settings. Treated as read-only once the campaign starts.
	Params map[string]int64

	// Inputs seeds the first execution's symbolic input values (missing
	// names still receive deterministic pseudo-random values). Combined
	// with Iterations=1 it pins a fixed-input run, which is how the
	// experiment harness replays the paper's fixed configurations through
	// the scheduler.
	Inputs map[string]int64

	// Iterations is the test budget (program executions). TimeBudget, when
	// non-zero, additionally stops the campaign on wall-clock time, which is
	// how the paper's fixed-budget comparisons are run.
	Iterations int
	TimeBudget time.Duration

	// InitialProcs and InitialFocus seed the first launch (the paper uses 8
	// processes with focus 0). MaxProcs caps the derived process count via
	// input capping (the paper restricts it to 16).
	InitialProcs int
	InitialFocus int
	MaxProcs     int

	// Reduction enables constraint set reduction (§IV-C); COMPI default on.
	// DepthBound, when non-zero, is an explicit BoundedDFS bound for the
	// default strategy's second phase. DFSPhase is the number of pure-DFS
	// executions before the switch (§II-B).
	Reduction  bool
	DepthBound int
	DFSPhase   int

	// OneWay disables two-way instrumentation: every rank runs Heavy
	// (§IV-B ablation).
	OneWay bool

	// Framework false disables the MPI framework (§VI-E No_Fwk): the focus
	// and process count stay fixed, and coverage is recorded from the focus
	// process only.
	Framework bool

	// PureRandom replaces concolic input generation with random testing
	// under the same caps (§VI-E Random).
	PureRandom bool

	// Schedules adds the match-order dimension to the search: wildcard
	// receives match at quiescence, every multi-candidate match is a
	// recorded choice point, and the engine negates untried choices into
	// directed runs the same way it negates branch predicates. Off (the
	// default) keeps the runtime's historical eager matching bit-for-bit.
	Schedules bool

	// Backend, when non-nil, executes the campaign's iterations instead of
	// the default in-process MPI runtime — this is how out-of-process
	// targets are driven over the pipe protocol (internal/proto). A
	// backend carries cross-iteration session state, so it must be used by
	// exactly one engine; the caller keeps ownership and closes it after
	// the campaign.
	Backend Backend

	// Solver, when non-nil, answers the engine's constraint-solving
	// requests instead of a private per-campaign solver.Service. Unlike a
	// Backend, a SolverService may be shared by many engines — the
	// scheduler wires one Service across a whole batch so sharded
	// campaigns reuse each other's SAT/UNSAT results. Because a service
	// must return exactly what a live solve would (see SolverService),
	// sharing never changes a campaign's trajectory.
	Solver SolverService

	Seed       int64
	RunTimeout time.Duration // per-iteration watchdog (default 10s)
	MaxTicks   int64         // per-rank instrumentation-event budget (default 5e6)

	// SolverMaxNodes overrides the constraint-solver search budget.
	SolverMaxNodes int

	// Profiler, when non-nil, receives per-phase wall-clock bins for every
	// iteration: execute / trace-collect / constraint-build / negate /
	// cache-lookup / solve / snapshot (plus the solver service's own bins
	// when it shares the profiler). Profiling is purely observational — a
	// profiled campaign's Result is byte-identical to an unprofiled one
	// (pinned by tests) — and the profiler may be shared across engines
	// (the scheduler wires one per batch), in which case the report
	// aggregates every campaign that used it. nil disables profiling at a
	// few nanoseconds per would-be measurement.
	Profiler *binstat.Profiler

	// Trace, when non-nil, receives each iteration's statistics as they are
	// produced (live progress for the CLI).
	Trace func(it IterationStat)

	// ErrorLog, when non-nil, receives each error-inducing input as one
	// JSON line the moment it is recorded — the persistent bug log COMPI
	// writes for later analysis and replay.
	ErrorLog io.Writer

	// Checkpoint, when non-nil, receives a freshly taken Snapshot after
	// every CheckpointEvery-th iteration (default: every iteration). The
	// engine calls it synchronously from the campaign loop between
	// iterations, so the callback always sees a quiescent engine. The
	// campaign store wires this to persist the campaign as it runs: a
	// killed process loses at most the in-flight iteration.
	Checkpoint      func(*Snapshot)
	CheckpointEvery int
}

func (c Config) withDefaults() Config {
	if c.InitialProcs == 0 {
		c.InitialProcs = 8
	}
	if c.MaxProcs == 0 {
		c.MaxProcs = 16
	}
	if c.RunTimeout == 0 {
		c.RunTimeout = 10 * time.Second
	}
	if c.MaxTicks == 0 {
		c.MaxTicks = 5_000_000
	}
	if c.Iterations == 0 {
		c.Iterations = 100
	}
	if c.InitialFocus < 0 || c.InitialFocus >= c.InitialProcs {
		c.InitialFocus = 0
	}
	if c.CheckpointEvery <= 0 {
		c.CheckpointEvery = 1
	}
	return c
}

// IterationStat records one test iteration for the experiment harness.
type IterationStat struct {
	Iter      int
	NProcs    int
	Focus     int
	Covered   int           // cumulative branches covered
	PathLen   int           // constraint set size of this execution
	RawCount  int64         // constraints before reduction
	Elapsed   time.Duration // cumulative campaign time
	RunTime   time.Duration
	LogBytes  int // total serialized log bytes this iteration
	FocusLog  int // focus log bytes
	OtherLog  int // max non-focus log bytes
	Failed    bool
	Restarted bool
	Scheduled bool // directed match-order run popped off the schedule frontier
}

// ErrorRecord is one error-inducing input COMPI logs for bug analysis.
// Params captures the campaign parameter bag in force when the error fired,
// so Replay reproduces the same caps and fix toggles.
type ErrorRecord struct {
	Iter   int
	NProcs int
	Focus  int
	Status mpi.RankStatus
	Rank   int
	Msg    string
	Inputs map[string]int64
	Params map[string]int64 `json:",omitempty"`

	// Schedules and MatchOrder capture the schedule-space context of the
	// error: Schedules records that the run used quiescent matching, and
	// MatchOrder is the directive prefix that steered it there (empty for a
	// default-order run). Replay feeds both back to the runtime, which is
	// what makes a discovered deadlock reproducible on demand.
	Schedules  bool    `json:",omitempty"`
	MatchOrder [][]int `json:",omitempty"`
}

// Result is the outcome of a campaign.
type Result struct {
	Coverage   *coverage.Tracker
	Iterations []IterationStat
	Errors     []ErrorRecord
	Elapsed    time.Duration
	Restarts   int
	RestartAt  []int // iteration index of each restart, in order
	SolverCall int
	UnsatCalls int

	// RefutedSkips counts solver calls answered by the engine's own
	// restart-loop dedup: the constraint set's canonical key matched a
	// conjunction already proven unsatisfiable earlier in the campaign, so
	// the engine rejected the proposal without consulting the solver at
	// all. These calls are included in SolverCall and UnsatCalls (the
	// trajectory is unchanged; only the work is skipped).
	RefutedSkips int

	// Profile is the phase-bin profiler report at campaign end, nil unless
	// Config.Profiler was set. With a private profiler it is exactly this
	// campaign's phase costs; with a shared one it aggregates every
	// campaign on the profiler up to this campaign's finish (per-campaign
	// attribution should window the shared profiler with Report.Delta).
	Profile binstat.Report

	// Solver is the campaign's window of the solver-service counters
	// (Stats at campaign end minus Stats at campaign start). For the
	// default private service this is exactly the campaign's own cache
	// activity; for a shared service it also includes whatever the other
	// campaigns did in the window, so per-campaign attribution should use
	// SolverCall/UnsatCalls and read cache rates off the shared service.
	Solver solver.Stats

	// Schedule summarizes the match-order dimension (zero value unless
	// Config.Schedules was on).
	Schedule ScheduleStats
}

// CoverageRate returns covered / reachable-branch estimate.
func (r Result) CoverageRate(prog *target.Program) float64 {
	reach := prog.ReachableBranches(r.Coverage.Funcs())
	return r.Coverage.Rate(reach)
}

// DistinctErrors groups the error records by message, the way a developer
// triages COMPI's error log into distinct bugs.
func (r Result) DistinctErrors() map[string][]ErrorRecord {
	out := map[string][]ErrorRecord{}
	for _, e := range r.Errors {
		out[e.Msg] = append(out[e.Msg], e)
	}
	return out
}

// Engine drives the iterative testing of one program. Once constructed it
// owns all campaign state: the Config is copied by NewEngine and never
// mutated afterwards, so engines can be handed to worker goroutines.
type Engine struct {
	cfg      Config
	strategy Strategy
	backend  Backend
	solver   SolverService
	prof     *binstat.Profiler // nil = profiling disabled
	started  atomic.Bool
	vars     *conc.VarSpace
	cov      *coverage.Tracker
	rng      *prng
	inputs   map[string]int64
	caps     map[string]capInfo
	prev     map[expr.Var]int64
	names    map[expr.Var]string // learned from observations (Snapshot)
	cur      setup

	// Campaign accounting. These live on the engine rather than in Run's
	// locals so Snapshot can capture them mid-campaign and Restore can seed
	// them: a resumed Result then reports the whole campaign's history, not
	// just the final session's. startIter is the global iteration the next
	// Run continues from — per-iteration seeds are iteration-indexed, so a
	// resumed campaign must keep the global numbering.
	startIter    int
	iters        int
	stats        []IterationStat
	errors       []ErrorRecord
	restarts     int
	restartAt    []int
	solverCalls  int
	unsatCalls   int
	refutedSkips int

	// predScratch is the reusable buffer constraintSet assembles proposals
	// in: the engine hands each proposal's predicate slice to the solver
	// service and never looks at it again, so one buffer serves the whole
	// campaign (see the SolverService contract — implementations must not
	// retain the slice past the call).
	predScratch []expr.Pred

	// traceHint is the previous focus execution's branch-event count, passed
	// to the backend so the runtime can pre-size its trace and covered
	// buffers. Consecutive iterations of one target execute nearly identical
	// amounts of work, so last iteration's length is an excellent estimate.
	traceHint int

	// keyMemo caches CanonicalKey results for the refuted-dedup lookups:
	// the restart loop re-derives the same predicate sequences many times,
	// and canonicalization is the priciest per-proposal step. Memoization is
	// exact (keyed on the full serialized sequence), so it cannot change
	// which keys the engine sees. Lazily constructed; never snapshotted.
	keyMemo *expr.KeyMemo

	// refuted is the restart-loop dedup set: canonical keys of constraint
	// sets this campaign has already proven unsatisfiable. A restart that
	// re-derives a refuted prefix rejects the proposal without a solver
	// call. Only proven refutations enter (they are independent of previous
	// values, seed and budget), so skipping the solve cannot change the
	// trajectory.
	refuted map[expr.Key]struct{}

	// corpus records, per (nprocs, focus) setup, the input values the most
	// recent execution under that setup actually used — the per-setup input
	// corpora a snapshot carries so future strategies can reseed from them.
	corpus map[setup]map[string]int64

	// setupCov records, per setup, every branch its executions touched —
	// not just branches first discovered under it. Store.Minimize runs a
	// set cover over these sets to drop corpus entries whose coverage is
	// subsumed by the retained ones, so the sets must be the full
	// per-setup coverage, and they are snapshotted (CorpusCov) alongside
	// the corpus they justify.
	setupCov map[setup]map[conc.BranchBit]struct{}

	// Schedule-frontier state (Config.Schedules). schedPend is the LIFO
	// stack of pending directed runs (pop from the end = deepest choice
	// point first, the DFS order); schedSeen holds the serialized key of
	// every child ever enqueued so re-discovered orders are not re-run;
	// schedPoints/schedOrders feed Result.Schedule. All four are snapshotted
	// so a resumed campaign continues the same schedule walk.
	schedPend   []schedRun
	schedSeen   map[string]struct{}
	schedPoints int
	schedOrders int
}

type capInfo struct {
	cap    int64
	hasCap bool
}

// NewEngine prepares a campaign.
func NewEngine(cfg Config) *Engine {
	cfg = cfg.withDefaults()
	e := &Engine{
		cfg:       cfg,
		vars:      conc.NewVarSpace(),
		cov:       coverage.New(),
		rng:       newPRNG(cfg.Seed),
		inputs:    cloneInputs(cfg.Inputs),
		caps:      map[string]capInfo{},
		prev:      map[expr.Var]int64{},
		names:     map[expr.Var]string{},
		cur:       setup{nprocs: cfg.InitialProcs, focus: cfg.InitialFocus},
		refuted:   map[expr.Key]struct{}{},
		corpus:    map[setup]map[string]int64{},
		setupCov:  map[setup]map[conc.BranchBit]struct{}{},
		schedSeen: map[string]struct{}{},
	}
	e.backend = cfg.Backend
	if e.backend == nil {
		e.backend = NewInProcess(cfg.Program, e.vars)
	}
	e.prof = cfg.Profiler
	e.solver = cfg.Solver
	if e.solver == nil {
		// The private default service shares the campaign profiler, so its
		// canonical-key and live-solve bins land in the same report.
		e.solver = solver.NewService(solver.ServiceConfig{Profiler: cfg.Profiler})
	}
	switch {
	case cfg.NewStrategy != nil:
		e.strategy = cfg.NewStrategy(cfg.Program, e.cov)
	case cfg.Strategy != nil:
		e.strategy = cfg.Strategy
	default:
		e.strategy = NewTwoPhase(cfg.DFSPhase, cfg.DepthBound)
	}
	return e
}

// Coverage exposes the live tracker (the CFG strategy consults it).
func (e *Engine) Coverage() *coverage.Tracker { return e.cov }

// SetStrategy replaces the search strategy before the campaign starts. It
// panics once Run has begun: the strategy is campaign state, and swapping it
// mid-run from another goroutine would race with the engine. Prefer
// Config.NewStrategy, which also survives engine re-construction.
func (e *Engine) SetStrategy(s Strategy) {
	if e.started.Load() {
		panic("core: SetStrategy after Run started")
	}
	e.strategy = s
}

// Run executes the campaign and returns its result. On a restored engine it
// continues from the snapshot's global iteration count, and the Result spans
// the whole campaign (restored history plus this session's iterations).
func (e *Engine) Run() Result {
	e.started.Store(true)
	solver0 := e.solver.Stats()
	start := time.Now()
	for it := e.startIter; it < e.cfg.Iterations; it++ {
		if e.cfg.TimeBudget > 0 && time.Since(start) > e.cfg.TimeBudget {
			break
		}
		stat := e.iterate(it)
		stat.Iter = it
		stat.Elapsed = time.Since(start)
		stat.Covered = e.cov.Count()
		e.stats = append(e.stats, stat)
		e.iters = it + 1
		if e.cfg.Trace != nil {
			e.cfg.Trace(stat)
		}
		if e.cfg.Checkpoint != nil && (it+1-e.startIter)%e.cfg.CheckpointEvery == 0 {
			sp := e.prof.Time("snapshot")
			snap := e.Snapshot()
			sp.End()
			e.cfg.Checkpoint(snap)
		}
	}
	res := Result{
		Coverage:     e.cov,
		Iterations:   append([]IterationStat(nil), e.stats...),
		Errors:       append([]ErrorRecord(nil), e.errors...),
		Elapsed:      time.Since(start),
		Restarts:     e.restarts,
		RestartAt:    append([]int(nil), e.restartAt...),
		SolverCall:   e.solverCalls,
		UnsatCalls:   e.unsatCalls,
		RefutedSkips: e.refutedSkips,
		Schedule:     scheduleStats(e.schedPoints, e.schedOrders, e.errors),
	}
	res.Solver = e.solver.Stats().Delta(solver0)
	res.Profile = e.prof.Report()
	return res
}

// iterate performs one launch + one input-generation step. Pending directed
// runs on the schedule frontier take priority over input exploration — they
// are the deepest untried match orders, exactly as unexplored branch
// negations would be under DFS.
func (e *Engine) iterate(it int) IterationStat {
	if e.cfg.Schedules && len(e.schedPend) > 0 {
		return e.iterateScheduled(it)
	}
	stat := IterationStat{NProcs: e.cur.nprocs, Focus: e.cur.focus}

	sp := e.prof.Time("execute")
	run := e.launch(it)
	sp.End()
	stat.RunTime = run.Elapsed
	stat.Failed = run.Failed()

	// Trace collection: merge coverage, log errors, learn observed values.
	sp = e.prof.Time("trace-collect")

	// Merge coverage: all recorders with the framework on, focus only with
	// it off (§VI-E).
	for _, rr := range run.Ranks {
		if rr.Log == nil {
			continue
		}
		if e.cfg.Framework || rr.Rank == e.cur.focus {
			e.cov.AddLog(rr.Log)
			e.noteSetupCov(e.cur, rr.Log)
		}
		stat.LogBytes += rr.LogBytes
		if rr.Rank == e.cur.focus {
			stat.FocusLog = rr.LogBytes
		} else if rr.LogBytes > stat.OtherLog {
			stat.OtherLog = rr.LogBytes
		}
	}

	// Log error-inducing inputs.
	if fe, bad := run.FirstError(); bad {
		msg := fmt.Sprintf("exit=%d", fe.Exit)
		if fe.Err != nil {
			msg = fe.Err.Error()
		}
		rec := ErrorRecord{
			Iter: it, NProcs: e.cur.nprocs, Focus: e.cur.focus,
			Status: fe.Status, Rank: fe.Rank, Msg: msg,
			Inputs:    cloneInputs(e.inputs),
			Params:    e.cfg.Params,
			Schedules: e.cfg.Schedules,
		}
		e.errors = append(e.errors, rec)
		e.logError(rec)
	}

	focusLog := run.Ranks[e.cur.focus].Log
	if focusLog == nil || focusLog.Mode != conc.Heavy {
		// The focus leaked (hard hang): restart from fresh inputs.
		sp.End()
		e.restart(it)
		stat.Restarted = true
		return stat
	}
	stat.PathLen = len(focusLog.Path)
	stat.RawCount = focusLog.RawCount
	e.traceHint = len(focusLog.Trace)

	// Learn the values actually used this run.
	for _, o := range focusLog.Obs {
		e.prev[o.V] = o.Val
		e.names[o.V] = o.Name
		if o.Kind == conc.KindInput {
			e.inputs[o.Name] = o.Val
			e.caps[o.Name] = capInfo{cap: o.Cap, hasCap: o.HasCap}
		}
	}
	// The inputs map now holds exactly the values this setup's execution
	// consumed: record them as the setup's corpus entry.
	e.corpus[e.cur] = cloneInputs(e.inputs)

	// Harvest this run's wildcard choice points into the schedule frontier.
	// The run was free (no directives), so every multi-candidate match is a
	// negation opportunity. The harvest happens after observation learning so
	// the inputs pinned into each child are the values this execution
	// actually consumed — that, plus the directive prefix, is what makes the
	// child deterministically reach the same choice point.
	if e.cfg.Schedules {
		e.harvestMatches(run, nil, e.inputs, e.cur.nprocs, e.cur.focus)
	}
	sp.End()

	if e.cfg.PureRandom {
		e.randomizeAll()
		return stat
	}

	// Concolic step: pick a constraint to negate and solve. The semantic
	// constraints depend only on this execution's observations, so they are
	// assembled once per iteration, not once per proposal.
	sp = e.prof.Time("constraint-build")
	sem := semanticConstraints(focusLog.Obs, int64(e.cfg.MaxProcs))
	sp.End()
	e.strategy.Observe(focusLog.Path)
	for {
		sp = e.prof.Time("negate")
		path, idx, ok := e.strategy.Propose()
		sp.End()
		if !ok {
			e.restart(it)
			stat.Restarted = true
			return stat
		}
		sp = e.prof.Time("constraint-build")
		preds := e.constraintSet(sem, path, idx)
		sp.End()
		e.solverCalls++

		// Restart-loop dedup: if this exact conjunction (canonically — any
		// variable renaming or predicate reordering collides) was already
		// proven unsatisfiable in this campaign, reject without solving.
		// The key is computed lazily: before the first refutation there is
		// nothing to collide with, so the common all-SAT prefix pays no
		// canonicalization cost.
		var key expr.Key
		haveKey := false
		if len(e.refuted) > 0 {
			sp = e.prof.Time("cache-lookup")
			key = e.canonicalKey(preds)
			haveKey = true
			_, dup := e.refuted[key]
			sp.End()
			if dup {
				e.unsatCalls++
				e.refutedSkips++
				e.strategy.Reject()
				continue
			}
		}

		sp = e.prof.Time("solve")
		sol, sat := e.solver.SolveIncremental(preds, e.prev, solver.Options{
			Seed:     e.cfg.Seed + int64(it)*7919,
			MaxNodes: e.cfg.SolverMaxNodes,
		})
		sp.End()
		if !sat {
			e.unsatCalls++
			if sol.Proven {
				if !haveKey {
					key = e.canonicalKey(preds)
				}
				e.refuted[key] = struct{}{}
			}
			e.strategy.Reject()
			continue
		}
		e.strategy.Accept()
		e.apply(focusLog, sol)
		return stat
	}
}

// noteSetupCov attributes a merged log's covered branches to the setup that
// executed it. Mirrors the AddLog condition exactly, so per-setup sets union
// to precisely the tracker's branch set.
func (e *Engine) noteSetupCov(st setup, log *conc.Log) {
	m := e.setupCov[st]
	if m == nil {
		m = make(map[conc.BranchBit]struct{}, len(log.Covered))
		e.setupCov[st] = m
	}
	for _, b := range log.Covered {
		m[b] = struct{}{}
	}
}

// logError emits rec to the persistent error log (one JSON line per record).
func (e *Engine) logError(rec ErrorRecord) {
	if e.cfg.ErrorLog == nil {
		return
	}
	if b, err := json.Marshal(rec); err == nil {
		fmt.Fprintf(e.cfg.ErrorLog, "%s\n", b)
	}
}

// canonicalKey computes the constraint set's rename/reorder-invariant key
// through the engine's per-campaign memo: restart loops and proposal fan-out
// re-derive identical predicate sequences, and the memo answers those repeats
// without re-running the full canonicalization.
func (e *Engine) canonicalKey(preds []expr.Pred) expr.Key {
	if e.keyMemo == nil {
		e.keyMemo = expr.NewKeyMemo(0)
	}
	return e.keyMemo.Key(preds)
}

// constraintSet assembles [semantics, path prefix, negated constraint] in
// the engine's scratch buffer; the negated constraint is last, which seeds
// the solver's incremental dependency partition. The returned slice is valid
// until the next constraintSet call.
func (e *Engine) constraintSet(sem []expr.Pred, path []conc.PathEntry, idx int) []expr.Pred {
	preds := append(e.predScratch[:0], sem...)
	for i := 0; i < idx; i++ {
		preds = append(preds, path[i].Pred)
	}
	preds = append(preds, path[idx].Pred.Negate())
	e.predScratch = preds
	return preds
}

// apply installs the solved assignment: next inputs, process count and focus
// (with conflict resolution), and the stale-value memory.
func (e *Engine) apply(focusLog *conc.Log, sol solver.Result) {
	for v, x := range sol.Values {
		e.prev[v] = x
	}
	for _, o := range focusLog.Obs {
		if o.Kind != conc.KindInput {
			continue
		}
		if v, ok := sol.Values[o.V]; ok {
			e.inputs[o.Name] = v
		}
	}
	if e.cfg.Framework {
		e.cur = resolveSetup(e.cur, focusLog.Obs, focusLog.Mapping, sol, e.cfg.MaxProcs)
	}
}

// restart begins a fresh exploration from random inputs (the paper redoes
// the testing when exploration gets stuck or the tree is exhausted) and
// records at which iteration it happened.
func (e *Engine) restart(it int) {
	e.restarts++
	e.restartAt = append(e.restartAt, it)
	e.strategy.Reset()
	e.randomizeAll()
	if e.cfg.Framework {
		e.cur = setup{nprocs: e.cfg.InitialProcs, focus: e.cfg.InitialFocus}
		if e.cur.focus >= e.cur.nprocs {
			e.cur.focus = 0
		}
	}
}

// randomizeAll draws fresh random values for every known input under its cap
// (both the Random baseline and restarts use this).
func (e *Engine) randomizeAll() {
	names := make([]string, 0, len(e.inputs))
	for n := range e.inputs {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		ci := e.caps[n]
		lo, hi := int64(-10), int64(100)
		if ci.hasCap {
			hi = ci.cap
		}
		e.inputs[n] = lo + e.rng.Int63n(hi-lo+1)
	}
	if e.cfg.PureRandom && e.cfg.Framework {
		e.cur = setup{nprocs: 1 + e.rng.Intn(e.cfg.MaxProcs)}
		e.cur.focus = e.rng.Intn(e.cur.nprocs)
	}
}

// launch runs one MPMD test — Heavy at the focus, Light elsewhere (or Heavy
// everywhere under the one-way ablation) — through the configured execution
// backend.
func (e *Engine) launch(it int) mpi.RunResult {
	return e.backend.Launch(LaunchSpec{
		Iter:      it,
		NProcs:    e.cur.nprocs,
		Focus:     e.cur.focus,
		Inputs:    cloneInputs(e.inputs),
		Params:    e.cfg.Params,
		Seed:      e.cfg.Seed + int64(it),
		Timeout:   e.cfg.RunTimeout,
		MaxTicks:  e.cfg.MaxTicks,
		Reduction: e.cfg.Reduction,
		OneWay:    e.cfg.OneWay,
		TraceHint: e.traceHint,
		Schedules: e.cfg.Schedules,
	})
}

func cloneInputs(in map[string]int64) map[string]int64 {
	out := make(map[string]int64, len(in))
	for k, v := range in {
		out[k] = v
	}
	return out
}

// MergeParams unions campaign parameter maps into a fresh map; later maps
// win on key collisions. Target packages namespace their keys
// ("susy.dimcap", "hpl.ncap", ...), so the fix bags of several targets can
// be combined into one campaign Config.
func MergeParams(maps ...map[string]int64) map[string]int64 {
	out := map[string]int64{}
	for _, m := range maps {
		for k, v := range m {
			out[k] = v
		}
	}
	return out
}

// Replay re-executes one error-inducing input exactly as the campaign ran
// it: same process count, same focus, same inputs — the triggering condition
// COMPI hands to developers for bug confirmation (§VI-A). The returned run
// carries the per-rank statuses for triage.
func Replay(prog *target.Program, rec ErrorRecord, timeout time.Duration) mpi.RunResult {
	if timeout == 0 {
		timeout = 10 * time.Second
	}
	deadline := time.Now().Add(timeout)
	vars := conc.NewVarSpace()
	return mpi.Launch(mpi.Spec{
		NProcs: rec.NProcs,
		Main:   prog.Main,
		Vars:   vars,
		Inputs: cloneInputs(rec.Inputs),
		Conc: func(rank int) conc.Config {
			mode := conc.Light
			if rank == rec.Focus {
				mode = conc.Heavy
			}
			return conc.Config{
				Mode: mode, Reduction: true, Seed: 1,
				Deadline: deadline, MaxTicks: 50_000_000,
				Params: rec.Params,
			}
		},
		Timeout:    timeout,
		Schedules:  rec.Schedules || len(rec.MatchOrder) > 0,
		MatchOrder: rec.MatchOrder,
	})
}
