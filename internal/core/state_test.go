package core

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"

	"repro/internal/conc"
)

func TestSnapshotRoundTrip(t *testing.T) {
	e1 := NewEngine(Config{
		Program: skeletonProg(t), Iterations: 40, Reduction: true,
		Framework: true, Seed: 5, RunTimeout: 5 * time.Second,
	})
	res1 := e1.Run()
	snap := e1.Snapshot()

	if snap.Program != "skeleton" {
		t.Fatalf("program: %s", snap.Program)
	}
	if len(snap.Covered) != res1.Coverage.Count() {
		t.Fatal("snapshot coverage incomplete")
	}
	if len(snap.Inputs) == 0 || len(snap.Prev) == 0 {
		t.Fatalf("snapshot missing inputs/prev: %+v", snap)
	}
	if snap.Caps["x"] != 200 || snap.Caps["y"] != 100 {
		t.Fatalf("caps not captured: %v", snap.Caps)
	}

	var buf bytes.Buffer
	if err := snap.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadSnapshot(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.NProcs != snap.NProcs || len(loaded.Covered) != len(snap.Covered) {
		t.Fatal("JSON round trip lost state")
	}

	// Resume in a new engine: coverage must be monotone over the resumed
	// campaign, and the learned inputs carry over.
	e2 := NewEngine(Config{
		Program: skeletonProg(t), Iterations: 40, Reduction: true,
		Framework: true, Seed: 6, RunTimeout: 5 * time.Second,
	})
	if err := e2.Restore(loaded); err != nil {
		t.Fatal(err)
	}
	if e2.Coverage().Count() != res1.Coverage.Count() {
		t.Fatal("restored coverage mismatch")
	}
	res2 := e2.Run()
	if res2.Coverage.Count() < res1.Coverage.Count() {
		t.Fatal("coverage regressed after resume")
	}
}

func TestErrorLogWritesJSONLines(t *testing.T) {
	var buf bytes.Buffer
	NewEngine(Config{
		Program: skeletonProg(t), Iterations: 60, Reduction: true,
		Framework: true, Seed: 1, RunTimeout: 5 * time.Second,
		ErrorLog: &buf,
	}).Run()
	lines := 0
	dec := json.NewDecoder(&buf)
	for dec.More() {
		var rec ErrorRecord
		if err := dec.Decode(&rec); err != nil {
			t.Fatalf("bad JSONL: %v", err)
		}
		if rec.Inputs == nil {
			t.Fatal("record without inputs")
		}
		lines++
	}
	if lines == 0 {
		t.Fatal("no error records written")
	}
}

func TestRestoreSanitizesLaunch(t *testing.T) {
	e := NewEngine(Config{Program: skeletonProg(t), Iterations: 1, Framework: true, Seed: 1})
	if err := e.Restore(&Snapshot{Program: "skeleton", NProcs: 4, Focus: 9}); err != nil {
		t.Fatal(err)
	}
	if e.cur.focus != 0 {
		t.Fatalf("focus not clamped: %d", e.cur.focus)
	}
	if err := e.Restore(&Snapshot{Program: "skeleton", NProcs: 0, Focus: 0}); err != nil {
		t.Fatal(err)
	}
	if e.cur.nprocs < 1 {
		t.Fatalf("nprocs not defaulted: %d", e.cur.nprocs)
	}
}

func TestRestoreValidation(t *testing.T) {
	cases := []struct {
		name string
		snap Snapshot
		want string
	}{
		{"wrong program", Snapshot{Program: "stencil"}, "program"},
		{"newer version", Snapshot{Program: "skeleton", Version: SnapshotVersion + 1}, "newer"},
		{"bad branch bit", Snapshot{Program: "skeleton", Covered: []conc.BranchBit{99999}}, "branch"},
		{"undeclared func", Snapshot{Program: "skeleton", Funcs: []string{"no_such_fn"}}, "not declared"},
		{"undeclared input", Snapshot{Program: "skeleton",
			Inputs: map[string]int64{"zz": 1}}, "not declared"},
		{"undeclared cap", Snapshot{Program: "skeleton",
			Caps: map[string]int64{"zz": 1}}, "not declared"},
		{"stats/iters mismatch", Snapshot{Program: "skeleton", Iters: 3,
			Stats: []IterationStat{{Iter: 0}}}, "iteration stats"},
		{"bad refuted key", Snapshot{Program: "skeleton", Refuted: []string{"nothex"}}, "refuted"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			e := NewEngine(Config{Program: skeletonProg(t), Iterations: 1, Framework: true, Seed: 1})
			err := e.Restore(&tc.snap)
			if err == nil {
				t.Fatal("snapshot accepted")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
			// A rejected snapshot must not poison engine state.
			if e.Coverage().Count() != 0 || len(e.errors) != 0 || e.iters != 0 {
				t.Fatal("engine state mutated by rejected snapshot")
			}
		})
	}
}

func TestRestoreAfterRunRejected(t *testing.T) {
	e := NewEngine(Config{
		Program: skeletonProg(t), Iterations: 2, Framework: true, Seed: 1,
		RunTimeout: 5 * time.Second,
	})
	e.Run()
	if err := e.Restore(&Snapshot{Program: "skeleton"}); err == nil {
		t.Fatal("Restore accepted after Run")
	}
}
