package core

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"
)

func TestSnapshotRoundTrip(t *testing.T) {
	e1 := NewEngine(Config{
		Program: skeletonProg(t), Iterations: 40, Reduction: true,
		Framework: true, Seed: 5, RunTimeout: 5 * time.Second,
	})
	res1 := e1.Run()
	snap := e1.Snapshot()

	if snap.Program != "skeleton" {
		t.Fatalf("program: %s", snap.Program)
	}
	if len(snap.Covered) != res1.Coverage.Count() {
		t.Fatal("snapshot coverage incomplete")
	}
	if len(snap.Inputs) == 0 || len(snap.Prev) == 0 {
		t.Fatalf("snapshot missing inputs/prev: %+v", snap)
	}
	if snap.Caps["x"] != 200 || snap.Caps["y"] != 100 {
		t.Fatalf("caps not captured: %v", snap.Caps)
	}

	var buf bytes.Buffer
	if err := snap.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadSnapshot(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.NProcs != snap.NProcs || len(loaded.Covered) != len(snap.Covered) {
		t.Fatal("JSON round trip lost state")
	}

	// Resume in a new engine: coverage must be monotone over the resumed
	// campaign, and the learned inputs carry over.
	e2 := NewEngine(Config{
		Program: skeletonProg(t), Iterations: 40, Reduction: true,
		Framework: true, Seed: 6, RunTimeout: 5 * time.Second,
	})
	e2.Restore(loaded)
	if e2.Coverage().Count() != res1.Coverage.Count() {
		t.Fatal("restored coverage mismatch")
	}
	res2 := e2.Run()
	if res2.Coverage.Count() < res1.Coverage.Count() {
		t.Fatal("coverage regressed after resume")
	}
}

func TestErrorLogWritesJSONLines(t *testing.T) {
	var buf bytes.Buffer
	NewEngine(Config{
		Program: skeletonProg(t), Iterations: 60, Reduction: true,
		Framework: true, Seed: 1, RunTimeout: 5 * time.Second,
		ErrorLog: &buf,
	}).Run()
	lines := 0
	dec := json.NewDecoder(&buf)
	for dec.More() {
		var rec ErrorRecord
		if err := dec.Decode(&rec); err != nil {
			t.Fatalf("bad JSONL: %v", err)
		}
		if rec.Inputs == nil {
			t.Fatal("record without inputs")
		}
		lines++
	}
	if lines == 0 {
		t.Fatal("no error records written")
	}
}

func TestRestoreSanitizesLaunch(t *testing.T) {
	e := NewEngine(Config{Program: skeletonProg(t), Iterations: 1, Framework: true, Seed: 1})
	e.Restore(&Snapshot{NProcs: 4, Focus: 9, Inputs: map[string]int64{}, Prev: map[string]int64{}})
	if e.cur.focus != 0 {
		t.Fatalf("focus not clamped: %d", e.cur.focus)
	}
	e.Restore(&Snapshot{NProcs: 0, Focus: 0, Inputs: map[string]int64{}, Prev: map[string]int64{}})
	if e.cur.nprocs < 1 {
		t.Fatalf("nprocs not defaulted: %d", e.cur.nprocs)
	}
}
