package core

import (
	"testing"
	"time"

	"repro/internal/coverage"
	"repro/internal/target"
)

// TestSetStrategyBeforeRun verifies the legal window: a strategy swapped in
// before Run drives the campaign.
func TestSetStrategyBeforeRun(t *testing.T) {
	eng := NewEngine(Config{
		Program:    skeletonProg(t),
		Iterations: 10,
		Reduction:  true,
		Framework:  true,
		Seed:       1,
		RunTimeout: 5 * time.Second,
	})
	eng.SetStrategy(NewTwoPhase(0, Unbounded))
	res := eng.Run()
	if len(res.Iterations) != 10 {
		t.Fatalf("ran %d/10 iterations", len(res.Iterations))
	}
}

// TestSetStrategyAfterRunPanics is the regression test for the old behavior
// where SetStrategy silently rewrote engine config mid-campaign: swapping
// the strategy once Run has started must panic.
func TestSetStrategyAfterRunPanics(t *testing.T) {
	eng := NewEngine(Config{
		Program:    skeletonProg(t),
		Iterations: 2,
		Reduction:  true,
		Framework:  true,
		Seed:       1,
		RunTimeout: 5 * time.Second,
	})
	eng.Run()
	defer func() {
		if recover() == nil {
			t.Fatal("SetStrategy after Run did not panic")
		}
	}()
	eng.SetStrategy(NewTwoPhase(0, Unbounded))
}

// TestNewStrategyFactoryPerEngine checks the factory path: each NewEngine
// call gets a fresh strategy built against its own live tracker, so running
// the same Config twice cannot share stateful strategy internals.
func TestNewStrategyFactoryPerEngine(t *testing.T) {
	built := 0
	cfg := Config{
		Program:    skeletonProg(t),
		Iterations: 5,
		Reduction:  true,
		Framework:  true,
		Seed:       1,
		RunTimeout: 5 * time.Second,
	}
	cfg.NewStrategy = func(prog *target.Program, cov *coverage.Tracker) Strategy {
		built++
		return NewCFG(prog, cov)
	}
	NewEngine(cfg).Run()
	NewEngine(cfg).Run()
	if built != 2 {
		t.Fatalf("factory built %d strategies for 2 engines", built)
	}
}

// TestConfigNotMutatedByEngine guards the scheduler's reuse of Config
// values: constructing and running an engine must leave the caller's Config
// (including its Strategy field) untouched.
func TestConfigNotMutatedByEngine(t *testing.T) {
	cfg := Config{
		Program:    skeletonProg(t),
		Iterations: 3,
		Reduction:  true,
		Framework:  true,
		Seed:       1,
		RunTimeout: 5 * time.Second,
	}
	eng := NewEngine(cfg)
	eng.SetStrategy(NewTwoPhase(0, Unbounded))
	eng.Run()
	if cfg.Strategy != nil {
		t.Fatal("SetStrategy leaked into the caller's Config")
	}
	if cfg.Iterations != 3 || cfg.Seed != 1 {
		t.Fatalf("engine mutated caller Config: %+v", cfg)
	}
}
