package core

import (
	"repro/internal/expr"
	"repro/internal/solver"
)

// SolverService is the constraint-solving seam of the engine, the analogue
// of Backend for the solving side: the engine decides *what* to solve (the
// path-prefix-plus-negation constraint set and the previous assignment) and
// the service decides *how* — live, or from a cache shared across campaigns.
// The engine never calls the solver package's free functions directly.
//
// The contract mirrors solver.Service (the default implementation): given
// identical inputs the service must return exactly what a live
// solver.SolveIncremental would, so that campaign trajectories do not depend
// on cache state or on which campaigns share the service. A service must be
// safe for concurrent use by multiple engines; unlike a Backend, one
// SolverService may be shared by a whole scheduler batch.
type SolverService interface {
	// SolveIncremental solves preds (the last predicate being the freshly
	// negated constraint) preferring values from prev, with the semantics
	// of solver.SolveIncremental.
	//
	// The preds slice is only valid for the duration of the call: the
	// engine assembles it in a scratch buffer it reuses for the next
	// proposal, so an implementation that needs the predicates afterwards
	// (a recording test double, a deferred queue) must copy the slice. The
	// predicate *trees* are immutable and safe to retain.
	SolveIncremental(preds []expr.Pred, prev map[expr.Var]int64, opt solver.Options) (solver.Result, bool)

	// Stats reports the service's cumulative cache counters. Implementations
	// without caches return the zero Stats.
	Stats() solver.Stats
}
