package core

import (
	"bytes"
	"reflect"
	"sort"
	"testing"
	"time"

	"repro/internal/coverage"
	"repro/internal/target"
	"repro/internal/targets/stencil"
	_ "repro/internal/targets/stencil"
)

// deterministicStats strips the wall-clock fields from iteration stats so
// two runs of the same trajectory compare equal.
func deterministicStats(its []IterationStat) []IterationStat {
	out := append([]IterationStat(nil), its...)
	for i := range out {
		out[i].Elapsed = 0
		out[i].RunTime = 0
	}
	return out
}

func errorKeys(recs []ErrorRecord) []string {
	var keys []string
	for _, r := range recs {
		keys = append(keys, r.Msg)
	}
	sort.Strings(keys)
	return keys
}

// assertSameCampaign checks that two Results describe the same trajectory in
// every deterministic dimension.
func assertSameCampaign(t *testing.T, got, want Result) {
	t.Helper()
	if g, w := deterministicStats(got.Iterations), deterministicStats(want.Iterations); !reflect.DeepEqual(g, w) {
		for i := range g {
			if i < len(w) && !reflect.DeepEqual(g[i], w[i]) {
				t.Fatalf("iteration %d differs:\n got %+v\nwant %+v", i, g[i], w[i])
			}
		}
		t.Fatalf("iteration histories differ: %d vs %d entries", len(g), len(w))
	}
	if !reflect.DeepEqual(got.Coverage.Branches(), want.Coverage.Branches()) {
		t.Fatalf("coverage differs: %d vs %d branches",
			got.Coverage.Count(), want.Coverage.Count())
	}
	if !reflect.DeepEqual(errorKeys(got.Errors), errorKeys(want.Errors)) {
		t.Fatalf("error keys differ:\n got %v\nwant %v",
			errorKeys(got.Errors), errorKeys(want.Errors))
	}
	if got.Restarts != want.Restarts || !reflect.DeepEqual(got.RestartAt, want.RestartAt) {
		t.Fatalf("restart history differs: %d@%v vs %d@%v",
			got.Restarts, got.RestartAt, want.Restarts, want.RestartAt)
	}
	if got.SolverCall != want.SolverCall || got.UnsatCalls != want.UnsatCalls {
		t.Fatalf("solver accounting differs: %d/%d vs %d/%d",
			got.SolverCall, got.UnsatCalls, want.SolverCall, want.UnsatCalls)
	}
}

// resumeConfigs are the campaign setups the determinism contract is pinned
// on: two targets, restart-triggering iteration counts.
func resumeConfigs(t *testing.T) map[string]Config {
	return map[string]Config{
		"skeleton": {
			Program: skeletonProg(t), Reduction: true, Framework: true,
			Seed: 5, RunTimeout: 5 * time.Second,
		},
		"stencil": {
			Program: prog(t, "stencil"), Params: stencil.FixAll(),
			Reduction: true, Framework: true, Seed: 3, DFSPhase: 10,
			RunTimeout: 5 * time.Second,
		},
	}
}

// TestResumeDeterminism pins the snapshot determinism contract: running k
// iterations, snapshotting through a JSON round trip, restoring into a fresh
// engine, and running to n must equal an uninterrupted n-iteration run in
// every deterministic dimension — per-iteration stats, coverage, error keys,
// restart history, solver accounting.
func TestResumeDeterminism(t *testing.T) {
	const k, n = 15, 40
	for name, base := range resumeConfigs(t) {
		t.Run(name, func(t *testing.T) {
			full := base
			full.Iterations = n
			want := NewEngine(full).Run()

			head := base
			head.Iterations = k
			e1 := NewEngine(head)
			e1.Run()
			var buf bytes.Buffer
			if err := e1.Snapshot().Save(&buf); err != nil {
				t.Fatal(err)
			}
			snap, err := LoadSnapshot(&buf)
			if err != nil {
				t.Fatal(err)
			}
			if snap.Iters != k {
				t.Fatalf("snapshot records %d iterations, want %d", snap.Iters, k)
			}

			e2 := NewEngine(full)
			if err := e2.Restore(snap); err != nil {
				t.Fatal(err)
			}
			got := e2.Run()
			if len(got.Iterations) != n {
				t.Fatalf("resumed result spans %d iterations, want %d", len(got.Iterations), n)
			}
			assertSameCampaign(t, got, want)
		})
	}
}

// TestRandomStrategyResumeDeterminism pins resume-at-k == uninterrupted-n
// for the random baselines: random-branch and uniform-random draw from the
// engine-owned splitmix64 prng and serialize its stream position plus their
// per-path progress, so an interrupted campaign continues the exact
// trajectory an uninterrupted one would have taken.
func TestRandomStrategyResumeDeterminism(t *testing.T) {
	const k, n = 15, 40
	for name, mk := range map[string]func() Strategy{
		"random-branch":  func() Strategy { return NewRandomBranch(9) },
		"uniform-random": func() Strategy { return NewUniformRandom(9) },
	} {
		t.Run(name, func(t *testing.T) {
			base := Config{
				Program: skeletonProg(t), Reduction: true, Framework: true,
				Seed: 5, RunTimeout: 5 * time.Second,
				NewStrategy: func(*target.Program, *coverage.Tracker) Strategy { return mk() },
			}
			full := base
			full.Iterations = n
			want := NewEngine(full).Run()

			head := base
			head.Iterations = k
			e1 := NewEngine(head)
			e1.Run()
			var buf bytes.Buffer
			if err := e1.Snapshot().Save(&buf); err != nil {
				t.Fatal(err)
			}
			snap, err := LoadSnapshot(&buf)
			if err != nil {
				t.Fatal(err)
			}
			if snap.Strategy == nil {
				t.Fatalf("%s produced no serialized strategy state", name)
			}

			e2 := NewEngine(full)
			if err := e2.Restore(snap); err != nil {
				t.Fatal(err)
			}
			assertSameCampaign(t, e2.Run(), want)
		})
	}
}

// TestCheckpointResumeDeterminism exercises the store's actual write path: a
// mid-campaign checkpoint (taken by the Checkpoint hook, not after Run
// returns) must restore to the same trajectory.
func TestCheckpointResumeDeterminism(t *testing.T) {
	const k, n = 10, 30
	base := Config{
		Program: skeletonProg(t), Reduction: true, Framework: true,
		Seed: 21, RunTimeout: 5 * time.Second,
	}
	full := base
	full.Iterations = n
	want := NewEngine(full).Run()

	var at *Snapshot
	ck := full
	ck.Checkpoint = func(s *Snapshot) {
		if s.Iters == k {
			at = s
		}
	}
	NewEngine(ck).Run()
	if at == nil {
		t.Fatal("checkpoint hook never saw iteration k")
	}

	e := NewEngine(full)
	if err := e.Restore(at); err != nil {
		t.Fatal(err)
	}
	assertSameCampaign(t, e.Run(), want)
}

// TestCheckpointCadence checks CheckpointEvery thins the hook calls.
func TestCheckpointCadence(t *testing.T) {
	count := 0
	cfg := Config{
		Program: skeletonProg(t), Iterations: 12, Reduction: true,
		Framework: true, Seed: 2, RunTimeout: 5 * time.Second,
		Checkpoint:      func(*Snapshot) { count++ },
		CheckpointEvery: 4,
	}
	NewEngine(cfg).Run()
	if count != 3 {
		t.Fatalf("expected 3 checkpoints at cadence 4 over 12 iterations, got %d", count)
	}
}

// TestRestartDedupSkipsProvenUnsat pins the restart-loop dedup: a campaign
// long enough to restart re-derives constraint sets it already refuted, and
// the canonical-key set must answer some of those without a solver call.
func TestRestartDedupSkipsProvenUnsat(t *testing.T) {
	res := NewEngine(Config{
		Program: skeletonProg(t), Iterations: 120, Reduction: true,
		Framework: true, Seed: 3, RunTimeout: 5 * time.Second,
	}).Run()
	if res.Restarts == 0 {
		t.Skip("campaign never restarted; dedup not exercised")
	}
	if res.RefutedSkips == 0 {
		t.Fatal("restarted campaign never hit the refuted-set dedup")
	}
	if res.RefutedSkips > res.UnsatCalls {
		t.Fatalf("dedup accounting inconsistent: %d skips > %d unsat calls",
			res.RefutedSkips, res.UnsatCalls)
	}
}

func TestPRNGDeterminism(t *testing.T) {
	a, b := newPRNG(99), newPRNG(99)
	for i := 0; i < 100; i++ {
		if a.next() != b.next() {
			t.Fatalf("same-seed streams diverge at draw %d", i)
		}
	}
	// State round trip: a PRNG rebuilt from a captured state continues the
	// stream exactly.
	mid := a.state
	c := &prng{state: mid}
	for i := 0; i < 100; i++ {
		if a.Int63n(1000) != c.Int63n(1000) {
			t.Fatalf("state-restored stream diverges at draw %d", i)
		}
	}
	seen := map[int64]bool{}
	for i := 0; i < 200; i++ {
		v := b.Int63n(7)
		if v < 0 || v >= 7 {
			t.Fatalf("Int63n out of range: %d", v)
		}
		seen[v] = true
	}
	if len(seen) < 7 {
		t.Fatalf("Int63n(7) hit only %d values in 200 draws", len(seen))
	}
}

// TestStrategyStateRoundTrip drives a bounded DFS partway, serializes it,
// and checks the deserialized copy is positionally identical (its own
// serialization matches byte for byte).
func TestStrategyStateRoundTrip(t *testing.T) {
	for _, mk := range []func() Strategy{
		func() Strategy { return NewBoundedDFS(4) },
		func() Strategy { return NewTwoPhase(4, 6) },
		func() Strategy { return NewRandomBranch(3) },
		func() Strategy { return NewUniformRandom(3) },
	} {
		s := mk().(PersistentStrategy)
		s.Observe(mkPath(3, 0))
		for i := 0; i < 3; i++ {
			if _, _, ok := s.Propose(); ok {
				s.Reject()
			}
		}
		b1, err := s.MarshalState()
		if err != nil {
			t.Fatal(err)
		}
		s2 := mk().(PersistentStrategy)
		if err := s2.UnmarshalState(b1); err != nil {
			t.Fatal(err)
		}
		b2, err := s2.MarshalState()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(b1, b2) {
			t.Fatalf("%s: state not stable across round trip:\n%s\nvs\n%s", s.Name(), b1, b2)
		}
		if err := s2.UnmarshalState([]byte("{bad json")); err == nil {
			t.Fatalf("%s: accepted corrupt state", s.Name())
		}
	}
}
