package core

import (
	"testing"
	"time"

	"repro/internal/mpi"
	"repro/internal/targets/stencil"
)

// TestStencilHangDiscovery shows the engine exposing the infinite-loop bug
// class the paper claims COMPI handles via per-test timeouts: the stencil's
// "run to convergence" mode (maxiter=0) never terminates when tol=0, and the
// campaign must log it as a hang.
func TestStencilHangDiscovery(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign test")
	}
	p := prog(t, "stencil")

	var hang *ErrorRecord
	for round := 0; round < 6 && hang == nil; round++ {
		res := NewEngine(Config{
			Program: p, Params: stencil.UnfixAll(),
			Iterations: 150, Reduction: true, Framework: true,
			Seed: int64(41 + 19*round), DFSPhase: 40,
			RunTimeout: 2 * time.Second, MaxTicks: 1_500_000,
		}).Run()
		for i, rec := range res.Errors {
			if rec.Status == mpi.StatusHang {
				hang = &res.Errors[i]
				break
			}
		}
	}
	if hang == nil {
		t.Fatal("the infinite-loop bug was never exposed")
	}
	if hang.Inputs["maxiter"] != 0 || hang.Inputs["tol"] != 0 {
		t.Fatalf("hang inputs %v do not match the bug condition", hang.Inputs)
	}

	// The paper's workflow: hand the triggering condition to the developer,
	// who reproduces it. Replay must hang again.
	rerun := Replay(p, *hang, 2*time.Second)
	if fe, bad := rerun.FirstError(); !bad || fe.Status != mpi.StatusHang {
		t.Fatalf("replay did not reproduce the hang: %+v", fe)
	}

	// After the fix the same inputs are rejected cleanly: the replay record
	// carries the fixed-parameter bag instead of the campaign's.
	hang.Params = stencil.FixAll()
	rerun = Replay(p, *hang, 5*time.Second)
	fe, bad := rerun.FirstError()
	if !bad || fe.Exit != 3 {
		t.Fatalf("fixed program should reject the config: %+v", fe)
	}
}

// TestStencilCoverageCampaign checks the engine covers the solver loop of
// the fixed stencil, including the nonblocking halo-exchange paths.
func TestStencilCoverageCampaign(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign test")
	}
	p := prog(t, "stencil")
	res := NewEngine(Config{
		Program: p, Params: stencil.FixAll(),
		Iterations: 200, Reduction: true, Framework: true,
		Seed: 3, DFSPhase: 40, RunTimeout: 5 * time.Second,
	}).Run()
	if _, ok := res.Coverage.Funcs()["solve"]; !ok {
		t.Fatal("solver loop never reached")
	}
	rate := res.CoverageRate(p)
	if rate < 0.5 {
		t.Fatalf("coverage rate %.2f too low", rate)
	}
	t.Logf("stencil: %d branches, rate %.2f", res.Coverage.Count(), rate)
}

func TestReplayCrashRecord(t *testing.T) {
	// Replay of a recorded skeleton crash must reproduce it.
	p := prog(t, "skeleton")
	rec := ErrorRecord{
		NProcs: 4, Focus: 0,
		Inputs: map[string]int64{"x": 100, "y": 50},
	}
	res := Replay(p, rec, 5*time.Second)
	fe, bad := res.FirstError()
	if !bad || fe.Status != mpi.StatusCrash {
		t.Fatalf("replay: %+v", fe)
	}
}
