package core

import (
	"testing"
	"time"

	"repro/internal/conc"
	"repro/internal/mpi"
	"repro/internal/target"
)

// crashy is a test program whose every post-sanity execution crashes,
// exercising the engine's restart-after-stuck behavior ("the testing can be
// constrained to a very short shallow path due to an error... we just redo
// the testing").
var crashyOnce = func() conc.CondID {
	b := target.NewBuilder("crashy-test", 10)
	c := b.Cond("main", "x > 5")
	b.Call("main", "main")
	target.Register(b.Build(func(p *mpi.Proc) int {
		x := p.In("x")
		if p.If(c, conc.GT(x, conc.K(5))) {
			panic("boom")
		}
		return 0
	}))
	return c
}()

func TestEngineSurvivesCrashLoops(t *testing.T) {
	prog, _ := target.Lookup("crashy-test")
	res := NewEngine(Config{
		Program: prog, Iterations: 30, Reduction: true, Framework: true,
		Seed: 1, RunTimeout: 5 * time.Second,
	}).Run()
	if len(res.Iterations) != 30 {
		t.Fatalf("iterations: %d", len(res.Iterations))
	}
	// Both sides of the single conditional must get covered despite the
	// crashes (partial logs still carry coverage).
	if !res.Coverage.Covered(conc.Bit(crashyOnce, true)) ||
		!res.Coverage.Covered(conc.Bit(crashyOnce, false)) {
		t.Fatal("crash loop blocked coverage")
	}
	if len(res.Errors) == 0 {
		t.Fatal("crashes not logged")
	}
}

func TestSingleProcessCampaign(t *testing.T) {
	res := runCampaign(t, Config{
		Iterations: 40, Reduction: true, Seed: 2,
		InitialProcs: 1, MaxProcs: 1,
	})
	for _, it := range res.Iterations {
		if it.NProcs != 1 || it.Focus != 0 {
			t.Fatalf("iteration escaped the 1-process cap: %+v", it)
		}
	}
	if res.Coverage.Count() == 0 {
		t.Fatal("no coverage")
	}
}

func TestOneWayRandomCombo(t *testing.T) {
	res := runCampaign(t, Config{
		Iterations: 20, Reduction: true, Seed: 3,
		OneWay: true, PureRandom: true,
	})
	if res.SolverCall != 0 {
		t.Fatal("random mode called the solver")
	}
	if res.Coverage.Count() == 0 {
		t.Fatal("no coverage")
	}
}

func TestTraceCallbackInvoked(t *testing.T) {
	var calls int
	runCampaign(t, Config{
		Iterations: 5, Reduction: true, Seed: 4,
		Trace: func(it IterationStat) {
			if it.Iter != calls {
				t.Errorf("trace order: got %d want %d", it.Iter, calls)
			}
			calls++
		},
	})
	if calls != 5 {
		t.Fatalf("trace calls: %d", calls)
	}
}

func TestErrorRecordsCarrySnapshotOfInputs(t *testing.T) {
	res := runCampaign(t, Config{Iterations: 60, Reduction: true, Seed: 1})
	for _, e := range res.Errors {
		if e.Inputs == nil {
			t.Fatal("error record without inputs")
		}
	}
	// Records must be snapshots, not aliases: mutate one and re-check
	// another from the same campaign.
	if len(res.Errors) >= 2 {
		res.Errors[0].Inputs["x"] = -999
		if res.Errors[1].Inputs["x"] == -999 {
			t.Fatal("error records share the inputs map")
		}
	}
}
