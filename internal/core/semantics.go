package core

import (
	"repro/internal/conc"
	"repro/internal/expr"
	"repro/internal/solver"
)

// semanticConstraints builds the inherent MPI-semantics constraints of §III-B
// from the focus process's variable observations, plus the input-cap
// constraints of §IV-A and the process-count cap:
//
//	⋃ {x0 - xi = 0}          all rw variables are the same rank
//	⋃ {z0 - zi = 0}          all sw variables are the same size
//	{x0 - z0 < 0}            rank < size
//	⋃ {yi - si < 0}          local rank < its communicator's concrete size
//	⋃ {yi ≥ 0}, {x0 ≥ 0}, {z0 ≥ 1}
//	⋃ {v ≤ cap}              developer input caps
//	{z0 ≤ maxProcs}          the testing platform's process cap
func semanticConstraints(obs []conc.VarObs, maxProcs int64) []expr.Pred {
	var rw, sw []conc.VarObs
	var rc []conc.VarObs
	var preds []expr.Pred
	for _, o := range obs {
		switch o.Kind {
		case conc.KindRankWorld:
			rw = append(rw, o)
		case conc.KindSizeWorld:
			sw = append(sw, o)
		case conc.KindRankLocal:
			rc = append(rc, o)
		case conc.KindInput:
			if o.HasCap {
				preds = append(preds, expr.Compare(expr.VarRef(o.V), expr.Const(o.Cap), expr.LE))
			}
		}
	}
	for i := 1; i < len(rw); i++ {
		preds = append(preds, expr.Compare(expr.VarRef(rw[0].V), expr.VarRef(rw[i].V), expr.EQ))
	}
	for i := 1; i < len(sw); i++ {
		preds = append(preds, expr.Compare(expr.VarRef(sw[0].V), expr.VarRef(sw[i].V), expr.EQ))
	}
	if len(rw) > 0 && len(sw) > 0 {
		preds = append(preds, expr.Compare(expr.VarRef(rw[0].V), expr.VarRef(sw[0].V), expr.LT))
	}
	for _, o := range rc {
		preds = append(preds,
			expr.Compare(expr.VarRef(o.V), expr.Const(o.CommSize), expr.LT),
			expr.Compare(expr.VarRef(o.V), expr.Const(0), expr.GE))
	}
	if len(rw) > 0 {
		preds = append(preds, expr.Compare(expr.VarRef(rw[0].V), expr.Const(0), expr.GE))
	}
	if len(sw) > 0 {
		preds = append(preds,
			expr.Compare(expr.VarRef(sw[0].V), expr.Const(1), expr.GE),
			expr.Compare(expr.VarRef(sw[0].V), expr.Const(maxProcs), expr.LE))
	}
	return preds
}

// setup is the derived launch configuration for the next test (§III-D).
type setup struct {
	nprocs int
	focus  int
}

// resolveSetup applies conflict resolution (§III-C) and test setup (§III-D):
// the number of processes becomes the solved sw value; the focus moves when a
// rank variable changed, using the most up-to-date value — directly for rw,
// through the local→global mapping table for rc.
func resolveSetup(prev setup, obs []conc.VarObs, mapping [][]int32, res solver.Result, maxProcs int) setup {
	next := prev

	// Number of processes from the first sw observation.
	for _, o := range obs {
		if o.Kind == conc.KindSizeWorld {
			if v, ok := res.Values[o.V]; ok {
				next.nprocs = int(v)
			}
			break
		}
	}
	if next.nprocs < 1 {
		next.nprocs = 1
	}
	if next.nprocs > maxProcs {
		next.nprocs = maxProcs
	}

	// Focus: the most up-to-date rank value wins. rw beats rc because its
	// value *is* a global rank; a changed rc translates through the mapping.
	focusSet := false
	for _, o := range obs {
		if o.Kind == conc.KindRankWorld && res.Changed[o.V] {
			next.focus = int(res.Values[o.V])
			focusSet = true
			break
		}
	}
	if !focusSet {
		for _, o := range obs {
			if o.Kind != conc.KindRankLocal || !res.Changed[o.V] {
				continue
			}
			local := int(res.Values[o.V])
			ci := int(o.CommIdx)
			if ci >= 0 && ci < len(mapping) && local >= 0 && local < len(mapping[ci]) {
				next.focus = int(mapping[ci][local])
				focusSet = true
			}
			break
		}
	}
	_ = focusSet

	// Keep the launch valid: the focus must exist among nprocs ranks.
	if next.focus >= next.nprocs {
		next.focus = next.nprocs - 1
	}
	if next.focus < 0 {
		next.focus = 0
	}
	return next
}
