package core

import (
	"strings"
	"testing"
	"time"

	"repro/internal/conc"
	"repro/internal/target"
	_ "repro/internal/targets/skeleton"
)

func skeletonProg(t *testing.T) *target.Program {
	t.Helper()
	p, ok := target.Lookup("skeleton")
	if !ok {
		t.Fatal("skeleton not registered")
	}
	return p
}

func runCampaign(t *testing.T, cfg Config) Result {
	t.Helper()
	if cfg.Program == nil {
		cfg.Program = skeletonProg(t)
	}
	if cfg.RunTimeout == 0 {
		cfg.RunTimeout = 5 * time.Second
	}
	cfg.Framework = true
	return NewEngine(cfg).Run()
}

func TestEngineFindsHiddenBug(t *testing.T) {
	res := runCampaign(t, Config{
		Iterations: 60,
		Reduction:  true,
		Seed:       1,
	})
	found := false
	for msg := range res.DistinctErrors() {
		if strings.Contains(msg, "hidden bug") {
			found = true
		}
	}
	if !found {
		t.Fatalf("the x==100 bug was not found in 60 iterations; errors: %v",
			res.DistinctErrors())
	}
	// The error record must carry the triggering inputs for replay.
	for _, recs := range res.DistinctErrors() {
		for _, r := range recs {
			if strings.Contains(r.Msg, "hidden bug") && r.Inputs["x"] != 100 {
				t.Fatalf("error record inputs: %+v", r.Inputs)
			}
		}
	}
}

func TestEngineFullCoverageOnSkeleton(t *testing.T) {
	prog := skeletonProg(t)
	res := runCampaign(t, Config{
		Iterations: 120,
		Reduction:  true,
		Seed:       3,
	})
	total := prog.TotalBranches()
	got := res.Coverage.Count()
	// Every branch of the skeleton is coverable; allow one branch of slack
	// for the loop exit corner.
	if got < total-2 {
		var missing []string
		for _, c := range prog.Conds() {
			for _, dir := range []bool{true, false} {
				if !res.Coverage.Covered(conc.Bit(c.ID, dir)) {
					missing = append(missing, c.Func+"/"+c.Label)
				}
			}
		}
		t.Fatalf("covered %d/%d branches; missing: %v", got, total, missing)
	}
}

func TestEngineCoversRankAndSizeBranches(t *testing.T) {
	prog := skeletonProg(t)
	res := runCampaign(t, Config{
		Iterations: 120,
		Reduction:  true,
		Seed:       5,
	})
	// cBigY (site 5) true/false is only executed on rank != 0: the "all
	// recorders" framework must have covered it. cManyPrc (site 6) false
	// requires launching with fewer than 4 processes: the framework must
	// have varied the process count.
	var bigY, manyPrc conc.CondID
	for _, c := range prog.Conds() {
		switch c.Label {
		case "y >= 100":
			bigY = c.ID
		case "nprocs >= 4":
			manyPrc = c.ID
		}
	}
	if !res.Coverage.Covered(conc.Bit(bigY, true)) || !res.Coverage.Covered(conc.Bit(bigY, false)) {
		t.Fatal("rank-dependent branch not fully covered")
	}
	if !res.Coverage.Covered(conc.Bit(manyPrc, false)) {
		t.Fatal("process-count-dependent branch not covered: framework did not vary nprocs")
	}
}

func TestNoFrameworkMissesMPIBranches(t *testing.T) {
	prog := skeletonProg(t)
	cfg := Config{
		Program:    prog,
		Iterations: 120,
		Reduction:  true,
		Seed:       5,
		RunTimeout: 5 * time.Second,
		Framework:  false, // No_Fwk: fixed focus 0, fixed 8 procs, focus-only recording
	}
	res := NewEngine(cfg).Run()
	var bigY, manyPrc conc.CondID
	for _, c := range prog.Conds() {
		switch c.Label {
		case "y >= 100":
			bigY = c.ID
		case "nprocs >= 4":
			manyPrc = c.ID
		}
	}
	if res.Coverage.Covered(conc.Bit(bigY, true)) {
		t.Fatal("No_Fwk recorded a branch only non-focus ranks execute")
	}
	if res.Coverage.Covered(conc.Bit(manyPrc, false)) {
		t.Fatal("No_Fwk varied the process count")
	}
	if res.Coverage.Count() == 0 {
		t.Fatal("No_Fwk should still cover focus branches")
	}
}

func TestFrameworkBeatsNoFramework(t *testing.T) {
	prog := skeletonProg(t)
	fwk := runCampaign(t, Config{Iterations: 100, Reduction: true, Seed: 9})
	nofwk := NewEngine(Config{
		Program: prog, Iterations: 100, Reduction: true, Seed: 9,
		RunTimeout: 5 * time.Second, Framework: false,
	}).Run()
	if fwk.Coverage.Count() <= nofwk.Coverage.Count() {
		t.Fatalf("Fwk %d <= No_Fwk %d", fwk.Coverage.Count(), nofwk.Coverage.Count())
	}
}

func TestPureRandomBaseline(t *testing.T) {
	res := runCampaign(t, Config{
		Iterations: 60,
		Reduction:  true,
		Seed:       7,
		PureRandom: true,
	})
	if res.Coverage.Count() == 0 {
		t.Fatal("random testing covered nothing")
	}
	if res.SolverCall != 0 {
		t.Fatal("random testing must not call the solver")
	}
}

func TestConcolicBeatsRandomOnSkeleton(t *testing.T) {
	compi := runCampaign(t, Config{Iterations: 80, Reduction: true, Seed: 11})
	random := runCampaign(t, Config{Iterations: 80, Reduction: true, Seed: 11, PureRandom: true})
	if compi.Coverage.Count() <= random.Coverage.Count() {
		t.Fatalf("COMPI %d <= Random %d", compi.Coverage.Count(), random.Coverage.Count())
	}
}

func TestOneWayInstrumentationStillWorks(t *testing.T) {
	res := runCampaign(t, Config{
		Iterations: 40,
		Reduction:  true,
		Seed:       13,
		OneWay:     true,
	})
	if res.Coverage.Count() == 0 {
		t.Fatal("one-way campaign covered nothing")
	}
	// Under one-way instrumentation, non-focus logs are heavy too, so the
	// largest non-focus log should rival the focus log somewhere.
	sawBig := false
	for _, it := range res.Iterations {
		if it.OtherLog*4 > it.FocusLog && it.FocusLog > 0 {
			sawBig = true
		}
	}
	if !sawBig {
		t.Fatal("one-way non-focus logs stayed tiny")
	}
}

func TestTwoWayLogsSmaller(t *testing.T) {
	oneWay := runCampaign(t, Config{Iterations: 30, Reduction: true, Seed: 17, OneWay: true})
	twoWay := runCampaign(t, Config{Iterations: 30, Reduction: true, Seed: 17})
	var one, two int
	for _, it := range oneWay.Iterations {
		one += it.LogBytes
	}
	for _, it := range twoWay.Iterations {
		two += it.LogBytes
	}
	if two >= one {
		t.Fatalf("two-way logs (%dB) not smaller than one-way (%dB)", two, one)
	}
}

func TestReductionShrinksConstraintSets(t *testing.T) {
	with := runCampaign(t, Config{Iterations: 40, Reduction: true, Seed: 19})
	without := runCampaign(t, Config{Iterations: 40, Reduction: false, Seed: 19})
	maxWith, maxWithout := 0, 0
	for _, it := range with.Iterations {
		if it.PathLen > maxWith {
			maxWith = it.PathLen
		}
	}
	for _, it := range without.Iterations {
		if it.PathLen > maxWithout {
			maxWithout = it.PathLen
		}
	}
	if maxWith >= maxWithout {
		t.Fatalf("reduction max set %d >= non-reduction %d", maxWith, maxWithout)
	}
}

func TestTimeBudgetStopsEarly(t *testing.T) {
	res := runCampaign(t, Config{
		Iterations: 100000,
		Reduction:  true,
		Seed:       23,
		TimeBudget: 300 * time.Millisecond,
	})
	if res.Elapsed > 5*time.Second {
		t.Fatalf("time budget ignored: %v", res.Elapsed)
	}
	if len(res.Iterations) == 0 {
		t.Fatal("no iterations ran")
	}
}

func TestDeterministicCampaigns(t *testing.T) {
	a := runCampaign(t, Config{Iterations: 30, Reduction: true, Seed: 31})
	b := runCampaign(t, Config{Iterations: 30, Reduction: true, Seed: 31})
	if a.Coverage.Count() != b.Coverage.Count() {
		t.Fatalf("coverage differs across identical campaigns: %d vs %d",
			a.Coverage.Count(), b.Coverage.Count())
	}
	if len(a.Iterations) != len(b.Iterations) {
		t.Fatal("iteration counts differ")
	}
	for i := range a.Iterations {
		if a.Iterations[i].NProcs != b.Iterations[i].NProcs ||
			a.Iterations[i].Focus != b.Iterations[i].Focus ||
			a.Iterations[i].PathLen != b.Iterations[i].PathLen {
			t.Fatalf("iteration %d differs", i)
		}
	}
}

func TestCoverageRateUsesReachableEstimate(t *testing.T) {
	prog := skeletonProg(t)
	res := runCampaign(t, Config{Iterations: 40, Reduction: true, Seed: 37})
	rate := res.CoverageRate(prog)
	if rate <= 0 || rate > 1 {
		t.Fatalf("rate = %f", rate)
	}
}
