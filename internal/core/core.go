// Package core implements the COMPI testing engine: the iterative concolic
// loop, the search strategies, the MPI-semantics constraint insertion,
// conflict resolution, and test setup (focus selection and process-count
// derivation).
//
// The engine composes the surrounding packages into the paper's workflow
// (§III). Each iteration it launches the target — a target.Program from the
// registry — as an MPMD job via internal/mpi, with the focus rank running
// internal/conc's Heavy instrumentation (full symbolic execution) and every
// other rank running Light (branch recording only). The focus log's path
// constraints feed a search Strategy (strategy.go), which picks the
// constraint to negate; internal/solver produces the next input assignment
// under the MPI-semantics constraints of semantics.go; setup resolution
// (semantics.go) derives the next process count and focus from the
// solved rank/size variables. Coverage from all ranks accumulates in
// internal/coverage, and the program's static branch table converts it into
// the paper's coverage rates.
//
// Engine is the campaign driver (engine.go); Snapshot (state.go) persists
// the cross-iteration state so campaigns can stop and resume.
package core
