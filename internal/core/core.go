package core
