package core

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"

	"repro/internal/conc"
	"repro/internal/coverage"
	"repro/internal/expr"
)

// SnapshotVersion is the current snapshot schema version. Version 1 carried
// only the learned inputs and coverage; version 2 adds everything resume
// determinism needs — the global iteration count and per-iteration history,
// restart history, the engine RNG state, the variable allocation order, the
// refuted-conjunction keys, the search-strategy position, and the per-setup
// input corpora. Version 3 adds the schedule frontier (pending directed
// match-order runs, the seen-order dedup set, and the choice-point/order
// counters) so schedule-space campaigns resume deterministically. Loaders
// accept any version ≤ SnapshotVersion (older snapshots resume with degraded
// fidelity: exploration restarts rather than continuing) and reject newer
// ones.
const SnapshotVersion = 3

// Snapshot is the persistent campaign state. COMPI itself operates through
// files between executions; Snapshot captures the equivalent cross-iteration
// state so a campaign can stop and resume across engine instances — and,
// since schema v2, so that the resumed campaign is deterministic: resuming a
// v2 snapshot taken at iteration k and running to n produces the same
// coverage sets and error keys as an uninterrupted n-iteration run, provided
// the Config matches and the strategy is persistent (see PersistentStrategy).
type Snapshot struct {
	Version int              `json:"version"`
	Program string           `json:"program"`
	Inputs  map[string]int64 `json:"inputs"`
	Caps    map[string]int64 `json:"caps,omitempty"`
	Prev    map[string]int64 `json:"prev"` // keyed by variable name
	NProcs  int              `json:"nprocs"`
	Focus   int              `json:"focus"`
	Covered []conc.BranchBit `json:"covered"`
	Funcs   []string         `json:"funcs"`
	Errors  []ErrorRecord    `json:"errors,omitempty"`

	// v2 fields.

	// Iters is the number of iterations the campaign has completed; a
	// resumed engine continues global iteration numbering from here (the
	// per-iteration solver and launch seeds are iteration-indexed).
	Iters int `json:"iters,omitempty"`

	// Stats is the full per-iteration history, so a resumed campaign's
	// Result reports the whole campaign and reattached reports keep their
	// measurements.
	Stats []IterationStat `json:"stats,omitempty"`

	Restarts     int   `json:"restarts,omitempty"`
	RestartAt    []int `json:"restartAt,omitempty"`
	SolverCalls  int   `json:"solverCalls,omitempty"`
	UnsatCalls   int   `json:"unsatCalls,omitempty"`
	RefutedSkips int   `json:"refutedSkips,omitempty"`

	// VarOrder is the engine variable space's names in allocation (ID)
	// order. Restore re-allocates them in this order so variable IDs — and
	// therefore solver behavior — match the uninterrupted run exactly.
	VarOrder []string `json:"varOrder,omitempty"`

	// RNG is the engine's splitmix64 random-source state.
	RNG uint64 `json:"rng,omitempty"`

	// Refuted holds the canonical keys (hex) of constraint sets the
	// campaign has proven unsatisfiable — the restart-loop dedup set.
	Refuted []string `json:"refuted,omitempty"`

	// Strategy is the serialized search-strategy position, present when the
	// strategy implements PersistentStrategy.
	Strategy *StrategyState `json:"strategy,omitempty"`

	// Corpus maps "nprocs/focus" setup keys to the input values most
	// recently executed under that setup.
	Corpus map[string]map[string]int64 `json:"corpus,omitempty"`

	// CorpusCov maps the same setup keys to the sorted set of every branch
	// the setup's executions touched. Store.Minimize runs a greedy set
	// cover over these sets to drop corpus entries whose coverage is
	// subsumed. Additive to schema v3: absent in older snapshots, which
	// simply makes them ineligible for minimization.
	CorpusCov map[string][]conc.BranchBit `json:"corpusCov,omitempty"`

	// v3 fields: the schedule frontier (Config.Schedules campaigns).

	// SchedPend is the LIFO stack of pending directed match-order runs, and
	// SchedSeen the sorted serialized keys of every child ever enqueued.
	SchedPend []schedRun `json:"schedPend,omitempty"`
	SchedSeen []string   `json:"schedSeen,omitempty"`

	// SchedPoints/SchedOrders are the running Schedule-stats counters.
	SchedPoints int `json:"schedPoints,omitempty"`
	SchedOrders int `json:"schedOrders,omitempty"`
}

// StrategyState is an opaque strategy position tagged with the strategy
// name; Restore only loads it into a strategy reporting the same name.
type StrategyState struct {
	Name  string `json:"name"`
	State []byte `json:"state,omitempty"`
}

// Snapshot captures the engine's current persistent state.
func (e *Engine) Snapshot() *Snapshot {
	s := &Snapshot{
		Version:      SnapshotVersion,
		Program:      e.cfg.Program.Name,
		Inputs:       cloneInputs(e.inputs),
		Caps:         map[string]int64{},
		Prev:         map[string]int64{},
		NProcs:       e.cur.nprocs,
		Focus:        e.cur.focus,
		Covered:      e.cov.Branches(),
		Errors:       append([]ErrorRecord(nil), e.errors...),
		Iters:        e.iters,
		Stats:        append([]IterationStat(nil), e.stats...),
		Restarts:     e.restarts,
		RestartAt:    append([]int(nil), e.restartAt...),
		SolverCalls:  e.solverCalls,
		UnsatCalls:   e.unsatCalls,
		RefutedSkips: e.refutedSkips,
		VarOrder:     e.vars.Names(),
		RNG:          e.rng.state,
	}
	for name, ci := range e.caps {
		if ci.hasCap {
			s.Caps[name] = ci.cap
		}
	}
	for v, x := range e.prev {
		// Prefer the name observed from the run logs: with an external
		// backend the variable space lives in the target process, so the
		// engine-side space only knows names it allocated itself.
		name := e.names[v]
		if name == "" {
			name = e.vars.Name(v)
		}
		if name != "" {
			s.Prev[name] = x
		}
	}
	for f := range e.cov.Funcs() {
		s.Funcs = append(s.Funcs, f)
	}
	sort.Strings(s.Funcs)
	for k := range e.refuted {
		s.Refuted = append(s.Refuted, k.String())
	}
	sort.Strings(s.Refuted)
	if ps, ok := e.strategy.(PersistentStrategy); ok {
		if b, err := ps.MarshalState(); err == nil {
			s.Strategy = &StrategyState{Name: ps.Name(), State: b}
		}
	}
	if len(e.corpus) > 0 {
		s.Corpus = map[string]map[string]int64{}
		for st, inputs := range e.corpus {
			s.Corpus[fmt.Sprintf("%d/%d", st.nprocs, st.focus)] = cloneInputs(inputs)
		}
	}
	if len(e.setupCov) > 0 {
		s.CorpusCov = map[string][]conc.BranchBit{}
		for st, set := range e.setupCov {
			bits := make([]conc.BranchBit, 0, len(set))
			for b := range set {
				bits = append(bits, b)
			}
			sort.Slice(bits, func(i, j int) bool { return bits[i] < bits[j] })
			s.CorpusCov[fmt.Sprintf("%d/%d", st.nprocs, st.focus)] = bits
		}
	}
	s.SchedPend = append([]schedRun(nil), e.schedPend...)
	for k := range e.schedSeen {
		s.SchedSeen = append(s.SchedSeen, k)
	}
	sort.Strings(s.SchedSeen)
	s.SchedPoints = e.schedPoints
	s.SchedOrders = e.schedOrders
	return s
}

// Restore loads a snapshot into a fresh engine (before Run). It validates
// the snapshot against the engine's program — schema version, branch bits
// against the branch table, function and input names against the
// declarations — and rejects it with a descriptive error instead of
// poisoning coverage with garbage. On error the engine is unchanged except
// possibly a Reset strategy.
func (e *Engine) Restore(s *Snapshot) error {
	if e.started.Load() {
		return fmt.Errorf("core: Restore after Run started")
	}
	prog := e.cfg.Program
	if s.Version > SnapshotVersion {
		return fmt.Errorf("core: snapshot version %d is newer than supported %d", s.Version, SnapshotVersion)
	}
	if s.Program != prog.Name {
		return fmt.Errorf("core: snapshot is for program %q, engine runs %q", s.Program, prog.Name)
	}
	total := prog.TotalBranches()
	for _, b := range s.Covered {
		if int(b) >= total {
			return fmt.Errorf("core: snapshot branch bit %d outside %s's %d-entry branch table", b, prog.Name, total)
		}
	}
	declaredFuncs := map[string]bool{}
	for _, f := range prog.Functions() {
		declaredFuncs[f] = true
	}
	for _, f := range s.Funcs {
		if !declaredFuncs[f] {
			return fmt.Errorf("core: snapshot function %q not declared by %s", f, prog.Name)
		}
	}
	declaredInputs := map[string]bool{}
	for _, in := range prog.Inputs() {
		declaredInputs[in.Name] = true
	}
	for _, m := range []map[string]int64{s.Inputs, s.Caps} {
		for name := range m {
			if !declaredInputs[name] {
				return fmt.Errorf("core: snapshot input %q not declared by %s", name, prog.Name)
			}
		}
	}
	if s.Iters < 0 || len(s.Stats) > 0 && len(s.Stats) != s.Iters {
		return fmt.Errorf("core: snapshot has %d iteration stats for %d iterations", len(s.Stats), s.Iters)
	}
	refuted := make(map[expr.Key]struct{}, len(s.Refuted))
	for _, hexKey := range s.Refuted {
		k, err := expr.ParseKey(hexKey)
		if err != nil {
			return fmt.Errorf("core: snapshot refuted set: %v", err)
		}
		refuted[k] = struct{}{}
	}

	// Strategy position: only loaded into a strategy of the same name; a
	// different configured strategy simply starts fresh (the v1 behavior).
	// Loading mutates the strategy, so do it before committing the rest —
	// a failure leaves the engine unchanged apart from the Reset.
	if s.Strategy != nil {
		if ps, ok := e.strategy.(PersistentStrategy); ok && ps.Name() == s.Strategy.Name {
			if err := ps.UnmarshalState(s.Strategy.State); err != nil {
				ps.Reset()
				return fmt.Errorf("core: snapshot strategy state: %w", err)
			}
		}
	}

	// Commit. Re-allocate the variable space in the recorded order first,
	// so every restored name (and every future allocation) gets the same ID
	// it had in the original campaign.
	for _, name := range s.VarOrder {
		e.vars.Of(name)
	}
	e.inputs = cloneInputs(s.Inputs)
	for name, cap := range s.Caps {
		e.caps[name] = capInfo{cap: cap, hasCap: true}
	}
	prevNames := make([]string, 0, len(s.Prev))
	for name := range s.Prev {
		prevNames = append(prevNames, name)
	}
	sort.Strings(prevNames) // deterministic allocation of names outside VarOrder
	for _, name := range prevNames {
		e.prev[e.vars.Of(name)] = s.Prev[name]
	}
	e.cur = setup{nprocs: s.NProcs, focus: s.Focus}
	if e.cur.nprocs < 1 {
		e.cur.nprocs = e.cfg.InitialProcs
	}
	if e.cur.focus >= e.cur.nprocs || e.cur.focus < 0 {
		e.cur.focus = 0
	}
	for _, b := range s.Covered {
		e.cov.AddBranch(b)
	}
	for _, f := range s.Funcs {
		e.cov.AddFunc(f)
	}
	e.errors = append([]ErrorRecord(nil), s.Errors...)
	e.iters = s.Iters
	e.startIter = s.Iters
	e.stats = append([]IterationStat(nil), s.Stats...)
	e.restarts = s.Restarts
	e.restartAt = append([]int(nil), s.RestartAt...)
	e.solverCalls = s.SolverCalls
	e.unsatCalls = s.UnsatCalls
	e.refutedSkips = s.RefutedSkips
	e.refuted = refuted
	if s.Version >= 2 {
		e.rng.state = s.RNG
	}
	for key, inputs := range s.Corpus {
		var np, f int
		if _, err := fmt.Sscanf(key, "%d/%d", &np, &f); err == nil && strings.Count(key, "/") == 1 {
			e.corpus[setup{nprocs: np, focus: f}] = cloneInputs(inputs)
		}
	}
	for key, bits := range s.CorpusCov {
		var np, f int
		if _, err := fmt.Sscanf(key, "%d/%d", &np, &f); err == nil && strings.Count(key, "/") == 1 {
			set := make(map[conc.BranchBit]struct{}, len(bits))
			for _, b := range bits {
				set[b] = struct{}{}
			}
			e.setupCov[setup{nprocs: np, focus: f}] = set
		}
	}
	e.schedPend = append([]schedRun(nil), s.SchedPend...)
	e.schedSeen = make(map[string]struct{}, len(s.SchedSeen))
	for _, k := range s.SchedSeen {
		e.schedSeen[k] = struct{}{}
	}
	e.schedPoints = s.SchedPoints
	e.schedOrders = s.SchedOrders
	return nil
}

// Result reconstructs the campaign Result a snapshot describes — how a
// stored or fleet-shipped campaign reattaches its report without running an
// engine. The snapshot carries the full per-iteration history, so
// reconstructed results keep their measurements; only the solver-stats
// window (meaningless without a run) is zero.
func (s *Snapshot) Result() Result {
	cov := coverage.New()
	for _, b := range s.Covered {
		cov.AddBranch(b)
	}
	for _, f := range s.Funcs {
		cov.AddFunc(f)
	}
	its := append([]IterationStat(nil), s.Stats...)
	if len(its) == 0 && s.Iters > 0 {
		// Pre-Stats snapshot: fabricate bare entries so iteration counts
		// still line up.
		its = make([]IterationStat, s.Iters)
		for i := range its {
			its[i] = IterationStat{Iter: i}
		}
	}
	return Result{
		Coverage:     cov,
		Iterations:   its,
		Errors:       append([]ErrorRecord(nil), s.Errors...),
		Restarts:     s.Restarts,
		RestartAt:    append([]int(nil), s.RestartAt...),
		SolverCall:   s.SolverCalls,
		UnsatCalls:   s.UnsatCalls,
		RefutedSkips: s.RefutedSkips,
		Schedule:     scheduleStats(s.SchedPoints, s.SchedOrders, s.Errors),
	}
}

// Save writes the snapshot as JSON.
func (s *Snapshot) Save(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// LoadSnapshot reads a snapshot written by Save.
func LoadSnapshot(r io.Reader) (*Snapshot, error) {
	var s Snapshot
	if err := json.NewDecoder(r).Decode(&s); err != nil {
		return nil, err
	}
	return &s, nil
}
