package core

import (
	"encoding/json"
	"io"
	"sort"

	"repro/internal/conc"
)

// Snapshot is the persistent campaign state. COMPI itself operates through
// files between executions; Snapshot captures the equivalent cross-iteration
// state — learned inputs and caps, previous variable values, the launch
// configuration, accumulated coverage, and the error log — so a campaign can
// stop and resume across engine instances (search-strategy position is not
// preserved; exploration restarts from the saved inputs).
type Snapshot struct {
	Program string           `json:"program"`
	Inputs  map[string]int64 `json:"inputs"`
	Caps    map[string]int64 `json:"caps,omitempty"`
	Prev    map[string]int64 `json:"prev"` // keyed by variable name
	NProcs  int              `json:"nprocs"`
	Focus   int              `json:"focus"`
	Covered []conc.BranchBit `json:"covered"`
	Funcs   []string         `json:"funcs"`
	Errors  []ErrorRecord    `json:"errors,omitempty"`
}

// Snapshot captures the engine's current persistent state.
func (e *Engine) Snapshot() *Snapshot {
	s := &Snapshot{
		Program: e.cfg.Program.Name,
		Inputs:  cloneInputs(e.inputs),
		Caps:    map[string]int64{},
		Prev:    map[string]int64{},
		NProcs:  e.cur.nprocs,
		Focus:   e.cur.focus,
		Covered: e.cov.Branches(),
	}
	for name, ci := range e.caps {
		if ci.hasCap {
			s.Caps[name] = ci.cap
		}
	}
	for v, x := range e.prev {
		// Prefer the name observed from the run logs: with an external
		// backend the variable space lives in the target process, so the
		// engine-side space only knows names it allocated itself.
		name := e.names[v]
		if name == "" {
			name = e.vars.Name(v)
		}
		if name != "" {
			s.Prev[name] = x
		}
	}
	for f := range e.cov.Funcs() {
		s.Funcs = append(s.Funcs, f)
	}
	sort.Strings(s.Funcs)
	return s
}

// Restore loads a snapshot into a fresh engine. The snapshot must come from
// a campaign over the same program.
func (e *Engine) Restore(s *Snapshot) {
	e.inputs = cloneInputs(s.Inputs)
	for name, cap := range s.Caps {
		e.caps[name] = capInfo{cap: cap, hasCap: true}
	}
	for name, x := range s.Prev {
		e.prev[e.vars.Of(name)] = x
	}
	e.cur = setup{nprocs: s.NProcs, focus: s.Focus}
	if e.cur.nprocs < 1 {
		e.cur.nprocs = e.cfg.InitialProcs
	}
	if e.cur.focus >= e.cur.nprocs || e.cur.focus < 0 {
		e.cur.focus = 0
	}
	for _, b := range s.Covered {
		e.cov.AddBranch(b)
	}
	for _, f := range s.Funcs {
		e.cov.AddFunc(f)
	}
}

// Save writes the snapshot as JSON.
func (s *Snapshot) Save(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// LoadSnapshot reads a snapshot written by Save.
func LoadSnapshot(r io.Reader) (*Snapshot, error) {
	var s Snapshot
	if err := json.NewDecoder(r).Decode(&s); err != nil {
		return nil, err
	}
	return &s, nil
}
