package core

import (
	"encoding/json"
	"fmt"
	"sort"

	"repro/internal/conc"
)

// PersistentStrategy is implemented by strategies whose exploration position
// can be captured in a campaign Snapshot and restored into a fresh engine.
// MarshalState returns an opaque blob; UnmarshalState must accept exactly
// what MarshalState produced for the same strategy under the same Config and
// position the receiver so the next Observe/Propose cycle behaves as if the
// campaign had never stopped. Strategies without this interface degrade
// gracefully on resume: exploration restarts from the saved inputs, as the
// v1 snapshot format always did.
//
// COMPI's default search (two-phase DFS), BoundedDFS, and the random
// baselines (random-branch, uniform-random — their splitmix64 stream state
// is a single uint64) are persistent; only the CFG baseline is not, because
// its position is derived from live coverage each Observe and carries
// nothing worth resuming.
type PersistentStrategy interface {
	Strategy
	MarshalState() ([]byte, error)
	UnmarshalState([]byte) error
}

// dfsFrameState is one serialized DFS stack frame. The path travels in the
// conc log wire format, predicate trees included, because a restored frame
// must still produce the exact constraint sets its proposals imply.
type dfsFrameState struct {
	Path  []byte `json:"path"`
	I     int    `json:"i"`
	Floor int    `json:"floor"`
}

type dfsState struct {
	Bound     int             `json:"bound"`
	Frames    []dfsFrameState `json:"frames,omitempty"`
	HasProp   bool            `json:"hasProp,omitempty"`
	PropFrame int             `json:"propFrame,omitempty"`
	PropIdx   int             `json:"propIdx,omitempty"`
	Exhausted bool            `json:"exhausted,omitempty"`
}

func (s *boundedDFS) MarshalState() ([]byte, error) {
	st := dfsState{
		Bound:     s.bound,
		HasProp:   s.hasProp,
		PropFrame: s.propFrame,
		PropIdx:   s.propIdx,
		Exhausted: s.exhausted,
	}
	for _, f := range s.stack {
		st.Frames = append(st.Frames, dfsFrameState{
			Path:  conc.EncodePath(f.path),
			I:     f.i,
			Floor: f.floor,
		})
	}
	return json.Marshal(st)
}

func (s *boundedDFS) UnmarshalState(b []byte) error {
	var st dfsState
	if err := json.Unmarshal(b, &st); err != nil {
		return fmt.Errorf("core: bounded-dfs state: %w", err)
	}
	if st.Bound <= 0 {
		return fmt.Errorf("core: bounded-dfs state: bad bound %d", st.Bound)
	}
	stack := make([]dfsFrame, 0, len(st.Frames))
	for i, fs := range st.Frames {
		path, err := conc.DecodePath(fs.Path)
		if err != nil {
			return fmt.Errorf("core: bounded-dfs state: frame %d: %w", i, err)
		}
		if fs.I >= len(path) || fs.Floor < 0 {
			return fmt.Errorf("core: bounded-dfs state: frame %d: index %d/floor %d out of range for path of %d",
				i, fs.I, fs.Floor, len(path))
		}
		stack = append(stack, dfsFrame{path: path, i: fs.I, floor: fs.Floor})
	}
	if st.HasProp && (st.PropFrame < 0 || st.PropFrame >= len(stack) ||
		st.PropIdx < 0 || st.PropIdx >= len(stack[st.PropFrame].path)) {
		return fmt.Errorf("core: bounded-dfs state: proposal %d.%d out of range", st.PropFrame, st.PropIdx)
	}
	s.bound = st.Bound
	s.stack = stack
	s.hasProp = st.HasProp
	s.propFrame = st.PropFrame
	s.propIdx = st.PropIdx
	s.exhausted = st.Exhausted
	return nil
}

type twoPhaseState struct {
	Seen   int             `json:"seen"`
	MaxLen int             `json:"maxLen"`
	Phase2 bool            `json:"phase2"`
	Inner  json.RawMessage `json:"inner"`
}

func (s *twoPhase) MarshalState() ([]byte, error) {
	inner, err := s.inner.(*boundedDFS).MarshalState()
	if err != nil {
		return nil, err
	}
	return json.Marshal(twoPhaseState{
		Seen:   s.seen,
		MaxLen: s.maxLen,
		Phase2: s.phase2,
		Inner:  inner,
	})
}

func (s *twoPhase) UnmarshalState(b []byte) error {
	var st twoPhaseState
	if err := json.Unmarshal(b, &st); err != nil {
		return fmt.Errorf("core: two-phase state: %w", err)
	}
	if st.Seen < 0 || st.MaxLen < 0 {
		return fmt.Errorf("core: two-phase state: negative counters %d/%d", st.Seen, st.MaxLen)
	}
	s.seen = st.Seen
	s.maxLen = st.MaxLen
	s.phase2 = st.Phase2
	// Phase-1/override parameters come from the Config that constructed the
	// strategy; only the observed counters and the inner DFS position are
	// campaign state. Rebuild the inner strategy at the bound the restored
	// counters imply, then load its position into it.
	s.inner = NewBoundedDFS(Unbounded)
	if s.phase2 {
		s.inner = NewBoundedDFS(s.Bound())
	}
	return s.inner.(*boundedDFS).UnmarshalState(st.Inner)
}

// randomBranchState is the serialized random-branch position: the splitmix64
// stream state, the observed path (wire format — proposals from a restored
// strategy must carry the exact predicate trees), and the already-tried
// indices of that path.
type randomBranchState struct {
	RNG   uint64 `json:"rng"`
	Path  []byte `json:"path,omitempty"`
	Tried []int  `json:"tried,omitempty"`
}

func (s *randomBranch) MarshalState() ([]byte, error) {
	st := randomBranchState{RNG: s.rng.state}
	if len(s.path) > 0 {
		st.Path = conc.EncodePath(s.path)
	}
	for i := range s.tried {
		st.Tried = append(st.Tried, i)
	}
	sort.Ints(st.Tried)
	return json.Marshal(st)
}

func (s *randomBranch) UnmarshalState(b []byte) error {
	var st randomBranchState
	if err := json.Unmarshal(b, &st); err != nil {
		return fmt.Errorf("core: random-branch state: %w", err)
	}
	var path []conc.PathEntry
	if len(st.Path) > 0 {
		var err error
		if path, err = conc.DecodePath(st.Path); err != nil {
			return fmt.Errorf("core: random-branch state: %w", err)
		}
	}
	tried := make(map[int]struct{}, len(st.Tried))
	for _, i := range st.Tried {
		if i < 0 || i >= len(path) {
			return fmt.Errorf("core: random-branch state: tried index %d out of range for path of %d", i, len(path))
		}
		tried[i] = struct{}{}
	}
	s.rng = &prng{state: st.RNG}
	s.path = path
	s.tried = tried
	return nil
}

// uniformRandomState is the serialized uniform-random position. maxTry and
// the restart probability are construction parameters (like twoPhase's
// phase1), not campaign state.
type uniformRandomState struct {
	RNG   uint64 `json:"rng"`
	Path  []byte `json:"path,omitempty"`
	Tries int    `json:"tries,omitempty"`
}

func (s *uniformRandom) MarshalState() ([]byte, error) {
	st := uniformRandomState{RNG: s.rng.state, Tries: s.tries}
	if len(s.path) > 0 {
		st.Path = conc.EncodePath(s.path)
	}
	return json.Marshal(st)
}

func (s *uniformRandom) UnmarshalState(b []byte) error {
	var st uniformRandomState
	if err := json.Unmarshal(b, &st); err != nil {
		return fmt.Errorf("core: uniform-random state: %w", err)
	}
	if st.Tries < 0 {
		return fmt.Errorf("core: uniform-random state: negative tries %d", st.Tries)
	}
	var path []conc.PathEntry
	if len(st.Path) > 0 {
		var err error
		if path, err = conc.DecodePath(st.Path); err != nil {
			return fmt.Errorf("core: uniform-random state: %w", err)
		}
	}
	s.rng = &prng{state: st.RNG}
	s.path = path
	s.tries = st.Tries
	return nil
}
