package core

import (
	"time"

	"repro/internal/conc"
	"repro/internal/mpi"
	"repro/internal/target"
)

// LaunchSpec is everything one test iteration needs to execute, fully
// resolved by the engine: the concrete launch configuration (process count,
// focus), the concrete input assignment, and the per-iteration runtime knobs.
// It is deliberately a plain value — no function pointers, no shared state —
// so a backend can serialize it across a process boundary.
type LaunchSpec struct {
	// Iter is the iteration number within the campaign (statistics only;
	// the per-iteration solver and runtime seeds are already folded into
	// Seed by the engine).
	Iter int

	// NProcs and Focus describe the MPMD launch: NProcs ranks, with the
	// focus rank running Heavy instrumentation and the rest Light.
	NProcs int
	Focus  int

	// Inputs is the engine-chosen concrete value per marked input; Params
	// is the campaign parameter bag (per-target caps and fix toggles).
	Inputs map[string]int64
	Params map[string]int64

	// Seed is the concrete per-iteration runtime seed (campaign seed plus
	// iteration offset).
	Seed int64

	// Timeout is the per-iteration watchdog; MaxTicks the per-rank
	// instrumentation-event budget (deterministic hang detection).
	Timeout  time.Duration
	MaxTicks int64

	// Reduction enables constraint set reduction; OneWay disables two-way
	// instrumentation (every rank Heavy).
	Reduction bool
	OneWay    bool

	// TraceHint is the engine's estimate of this iteration's branch-event
	// count (the previous focus trace length). Backends pass it to the
	// runtime as a buffer pre-sizing hint; it never affects behavior.
	TraceHint int

	// Schedules turns on schedule-space semantics in the runtime: wildcard
	// receives match at quiescence and are recorded as choice points.
	Schedules bool

	// MatchOrder directs wildcard match choices per global rank (entry r is
	// the eligible-set indices rank r's choice points consume in order) —
	// plain data, serializable across the pipe protocol like the rest of
	// the spec. Empty means every choice takes the default index.
	MatchOrder [][]int
}

// Backend abstracts how one test iteration is executed. The engine computes
// what to run (a LaunchSpec); the backend decides where: in this process as
// goroutine ranks (the default), or in a separate target process driven over
// a pipe protocol (internal/proto). The engine is otherwise agnostic — it
// consumes the returned per-rank logs and statuses identically.
//
// A Backend belongs to exactly one engine: it may carry cross-iteration
// session state (the focus variable space in-process, a live child process
// for piped runs), so sharing one across engines breaks the scheduler's
// determinism contract. Whoever constructs the backend owns Close.
type Backend interface {
	// Launch executes one test iteration and returns the per-rank
	// outcomes. The returned Ranks slice must have exactly spec.NProcs
	// entries; ranks whose log never materialized (hard hangs, a dead
	// external target) carry a nil Log and a non-OK status.
	Launch(spec LaunchSpec) mpi.RunResult

	// Close releases backend resources (kills an external target, reaps
	// its process). The in-process backend's Close is a no-op.
	Close() error
}

// inProcess is the default backend: ranks launched as goroutines in this
// process through the simulated MPI runtime, sharing the engine's variable
// space with each focus process.
type inProcess struct {
	main func(*mpi.Proc) int
	vars *conc.VarSpace
}

// NewInProcess returns the default execution backend for prog: every
// iteration is one mpi.Launch of goroutine ranks inside this process. vars
// is the campaign variable space shared with each focus process (stable
// symbolic variable IDs across iterations); internal/proto's Serve loop uses
// this same backend on the target side of the pipe, which is what makes
// in-process and piped campaigns bit-identical.
func NewInProcess(prog *target.Program, vars *conc.VarSpace) Backend {
	var main func(*mpi.Proc) int
	if prog != nil {
		main = prog.Main
	}
	return &inProcess{main: main, vars: vars}
}

func (b *inProcess) Launch(s LaunchSpec) mpi.RunResult {
	deadline := time.Now().Add(s.Timeout)
	focus := s.Focus
	return mpi.Launch(mpi.Spec{
		NProcs: s.NProcs,
		Main:   b.main,
		Vars:   b.vars,
		VarsFor: func(rank int) *conc.VarSpace {
			if rank == focus {
				return b.vars
			}
			// One-way instrumentation: non-focus Heavy ranks do the full
			// symbolic work against private spaces.
			return conc.NewVarSpace()
		},
		Inputs: s.Inputs,
		Conc: func(rank int) conc.Config {
			mode := conc.Light
			if rank == focus || s.OneWay {
				mode = conc.Heavy
			}
			return conc.Config{
				Mode:      mode,
				Reduction: s.Reduction,
				Seed:      s.Seed,
				Deadline:  deadline,
				MaxTicks:  s.MaxTicks,
				Params:    s.Params,
				TraceHint: s.TraceHint,
			}
		},
		Timeout:    s.Timeout,
		Schedules:  s.Schedules,
		MatchOrder: s.MatchOrder,
	})
}

func (b *inProcess) Close() error { return nil }
