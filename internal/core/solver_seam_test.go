package core

import (
	"reflect"
	"testing"

	"repro/internal/conc"
	"repro/internal/expr"
	"repro/internal/solver"
)

// directSolver is a cache-free SolverService that forwards to the solver
// package's free functions — the pre-seam behavior.
type directSolver struct{}

func (directSolver) SolveIncremental(preds []expr.Pred, prev map[expr.Var]int64, opt solver.Options) (solver.Result, bool) {
	return solver.SolveIncremental(preds, prev, opt)
}

func (directSolver) Stats() solver.Stats { return solver.Stats{} }

// trajectory is the deterministic projection of a Result: everything except
// wall-clock fields and solver-service counters.
type trajectory struct {
	Branches   []conc.BranchBit
	Iterations []IterationStat
	Errors     []ErrorRecord
	Restarts   int
	RestartAt  []int
	SolverCall int
	UnsatCalls int
}

func projectTrajectory(res Result) trajectory {
	branches := res.Coverage.Branches()
	its := make([]IterationStat, len(res.Iterations))
	for i, it := range res.Iterations {
		it.Elapsed, it.RunTime = 0, 0
		its[i] = it
	}
	return trajectory{
		Branches:   branches,
		Iterations: its,
		Errors:     res.Errors,
		Restarts:   res.Restarts,
		RestartAt:  res.RestartAt,
		SolverCall: res.SolverCall,
		UnsatCalls: res.UnsatCalls,
	}
}

func seamConfig(seed int64) Config {
	return Config{
		Iterations: 40,
		Reduction:  true,
		Seed:       seed,
		DFSPhase:   6,
	}
}

// TestSolverSeamCacheInvisible is the determinism contract of the seam: a
// campaign run against (a) the raw free functions, (b) the default private
// Service, (c) a shared pre-used Service, and (d) the same shared Service
// again with warm caches must produce byte-identical trajectories.
func TestSolverSeamCacheInvisible(t *testing.T) {
	cfg := seamConfig(31)

	cfgDirect := cfg
	cfgDirect.Solver = directSolver{}
	direct := projectTrajectory(runCampaign(t, cfgDirect))

	private := projectTrajectory(runCampaign(t, cfg))

	shared := solver.NewService(solver.ServiceConfig{})
	cfgShared := cfg
	cfgShared.Solver = shared
	sharedCold := projectTrajectory(runCampaign(t, cfgShared))
	sharedWarm := projectTrajectory(runCampaign(t, cfgShared))

	for name, got := range map[string]trajectory{
		"private service": private,
		"shared cold":     sharedCold,
		"shared warm":     sharedWarm,
	} {
		if !reflect.DeepEqual(direct, got) {
			t.Errorf("%s trajectory diverged from the cache-free solver", name)
		}
	}
	// The warm rerun must actually have been served from the caches —
	// otherwise this test proves nothing about hit transparency.
	st := shared.Stats()
	if st.SATHits+st.UnsatHits == 0 {
		t.Fatalf("warm rerun produced no cache hits: %+v", st)
	}
}

// TestSolverStatsWindow: Result.Solver is the campaign's window of the
// service counters, and for a private service it accounts for every solve
// the engine issued.
func TestSolverStatsWindow(t *testing.T) {
	res := runCampaign(t, seamConfig(31))
	if res.Solver.Calls == 0 {
		t.Fatal("private service recorded no calls")
	}
	if got := res.Solver.SATHits + res.Solver.UnsatHits + res.Solver.Misses; got != res.Solver.Calls {
		t.Fatalf("stats don't add up: hits+misses=%d calls=%d", got, res.Solver.Calls)
	}

	// A shared service's cumulative counters keep growing; the per-campaign
	// window starts at the campaign's own zero.
	shared := solver.NewService(solver.ServiceConfig{})
	cfg := seamConfig(31)
	cfg.Solver = shared
	r1 := runCampaign(t, cfg)
	r2 := runCampaign(t, cfg)
	if r1.Solver.Calls != r2.Solver.Calls {
		t.Fatalf("sequential identical campaigns issued different call counts: %d vs %d",
			r1.Solver.Calls, r2.Solver.Calls)
	}
	if shared.Stats().Calls != r1.Solver.Calls+r2.Solver.Calls {
		t.Fatalf("windows don't sum to the cumulative counters")
	}
}

// TestRestartAtRecorded: the restart record carries the iteration indices
// and stays consistent with the Restarts counter and per-iteration flags.
func TestRestartAtRecorded(t *testing.T) {
	res := runCampaign(t, Config{Iterations: 80, Reduction: true, Seed: 5, DFSPhase: 3})
	if len(res.RestartAt) != res.Restarts {
		t.Fatalf("RestartAt has %d entries for %d restarts", len(res.RestartAt), res.Restarts)
	}
	for i, at := range res.RestartAt {
		if at < 0 || at >= len(res.Iterations) {
			t.Fatalf("restart %d at out-of-range iteration %d", i, at)
		}
		if !res.Iterations[at].Restarted {
			t.Fatalf("iteration %d recorded in RestartAt but not flagged Restarted", at)
		}
		if i > 0 && res.RestartAt[i-1] >= at {
			t.Fatalf("RestartAt not strictly increasing: %v", res.RestartAt)
		}
	}
	for i, it := range res.Iterations {
		if it.Restarted && !containsInt(res.RestartAt, i) {
			t.Fatalf("iteration %d flagged Restarted but missing from RestartAt %v", i, res.RestartAt)
		}
	}
}

func containsInt(xs []int, x int) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}
