package core

import (
	"strings"
	"testing"
	"time"

	"repro/internal/target"
	_ "repro/internal/targets/hpl"
	_ "repro/internal/targets/imb"
	"repro/internal/targets/susy"
)

func prog(t *testing.T, name string) *target.Program {
	t.Helper()
	p, ok := target.Lookup(name)
	if !ok {
		t.Fatalf("%s not registered", name)
	}
	return p
}

// TestHPLCampaignPassesSanityCheck is the crux of Figure 4: BoundedDFS must
// get through the 28-parameter sanity chain and reach the solver.
func TestHPLCampaignPassesSanityCheck(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign test")
	}
	p := prog(t, "hpl")
	res := NewEngine(Config{
		Program: p, Iterations: 250, Reduction: true, Framework: true,
		Seed: 1, DFSPhase: 40, RunTimeout: 20 * time.Second,
	}).Run()
	funcs := res.Coverage.Funcs()
	if _, ok := funcs["pdgesv"]; !ok {
		t.Fatalf("never reached the solver; functions: %v", keys(funcs))
	}
	rate := res.CoverageRate(p)
	if rate < 0.4 {
		t.Fatalf("coverage rate %.2f too low; covered %d", rate, res.Coverage.Count())
	}
	t.Logf("hpl: %d branches, rate %.2f, %d iterations, %d restarts",
		res.Coverage.Count(), rate, len(res.Iterations), res.Restarts)
}

// TestSUSYBugHunt reproduces §VI-A end to end: with all bugs live the engine
// finds a crash; applying fixes one at a time surfaces the rest, including
// the division by zero that needs 2 or 4 processes.
func TestSUSYBugHunt(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign test")
	}
	p := prog(t, "susy-hmc")

	found := map[string]bool{}
	var applied susy.Fixes // fix state rides on each round's Config.Params
	fixSteps := []func(){
		func() { applied.RHMC = true },
		func() { applied.Ploop = true },
		func() { applied.Congrad = true },
		func() { applied.DivZero = true },
	}
	for step := 0; step < len(fixSteps); step++ {
		res := NewEngine(Config{
			Program: p, Params: applied.Params(),
			Iterations: 120, Reduction: true, Framework: true,
			Seed: int64(100 + step), DFSPhase: 30, RunTimeout: 15 * time.Second,
		}).Run()
		for msg := range res.DistinctErrors() {
			switch {
			case strings.Contains(msg, "out of range"):
				found["segfault"] = true
			case strings.Contains(msg, "divide by zero"):
				found["fpe"] = true
			}
		}
		fixSteps[step]()
	}
	if !found["segfault"] {
		t.Fatal("no wrong-malloc segfault found")
	}
	if !found["fpe"] {
		t.Fatal("division-by-zero bug not found")
	}
}

// TestSUSYCoverageCampaign checks that with the bugs fixed the engine covers
// the trajectory loop, not just the sanity check.
func TestSUSYCoverageCampaign(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign test")
	}
	p := prog(t, "susy-hmc")
	res := NewEngine(Config{
		Program: p, Params: susy.FixAll(),
		Iterations: 150, Reduction: true, Framework: true,
		Seed: 5, DFSPhase: 30, RunTimeout: 15 * time.Second,
	}).Run()
	for _, fn := range []string{"update", "congrad", "measure"} {
		if _, ok := res.Coverage.Funcs()[fn]; !ok {
			t.Fatalf("function %s never reached; funcs: %v", fn, keys(res.Coverage.Funcs()))
		}
	}
	rate := res.CoverageRate(p)
	if rate < 0.5 {
		t.Fatalf("coverage rate %.2f too low", rate)
	}
	t.Logf("susy: %d branches, rate %.2f", res.Coverage.Count(), rate)
}

func TestIMBCampaign(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign test")
	}
	p := prog(t, "imb-mpi1")
	res := NewEngine(Config{
		Program: p, Iterations: 150, Reduction: true, Framework: true,
		Seed: 7, DFSPhase: 30, RunTimeout: 15 * time.Second,
	}).Run()
	if _, ok := res.Coverage.Funcs()["driver"]; !ok {
		t.Fatal("never reached the driver")
	}
	rate := res.CoverageRate(p)
	if rate < 0.4 {
		t.Fatalf("coverage rate %.2f too low", rate)
	}
	t.Logf("imb: %d branches, rate %.2f", res.Coverage.Count(), rate)
}

func keys(m map[string]struct{}) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}
