package core

import (
	"encoding/json"
	"fmt"
	"sort"

	"repro/internal/mpi"
)

// ScheduleStats summarizes a campaign's schedule-space exploration.
type ScheduleStats struct {
	ChoicePoints int // wildcard choice points observed across all executions
	Orders       int // directed match orders executed (beyond the defaults)
	Deadlocks    int // distinct deadlock errors found
}

// schedRun is one pending directed execution on the schedule frontier: the
// per-rank match-order prefix to replay plus the concrete setup and inputs of
// the run that discovered it (a match order is only meaningful under the
// inputs that produced its choice points).
type schedRun struct {
	Order  [][]int          `json:"order"`
	Inputs map[string]int64 `json:"inputs,omitempty"`
	NProcs int              `json:"nprocs"`
	Focus  int              `json:"focus"`
}

// key is the frontier dedup fingerprint. json.Marshal sorts map keys, so the
// key is deterministic.
func (sr schedRun) key() string {
	b, _ := json.Marshal(sr)
	return string(b)
}

// matchPoint is one choice point flattened out of a run's rank logs.
type matchPoint struct {
	rank    int // global rank that matched
	rankIdx int // index within that rank's choice-point sequence
	nsrcs   int // eligible-set size
	choice  int // index actually matched
	seq     int // global grant sequence (total order across ranks)
}

// collectMatches flattens every rank's recorded choice points and orders them
// by the global grant sequence. Quiescent matching serializes grants, so the
// sequence is a total order: "the deepest choice point" is well-defined the
// same way the deepest branch on a path is.
func collectMatches(run mpi.RunResult) []matchPoint {
	var pts []matchPoint
	for _, rr := range run.Ranks {
		if rr.Log == nil {
			continue
		}
		for i, m := range rr.Log.Matches {
			pts = append(pts, matchPoint{
				rank:    rr.Rank,
				rankIdx: i,
				nsrcs:   len(m.Srcs),
				choice:  int(m.Choice),
				seq:     int(m.Seq),
			})
		}
	}
	sort.Slice(pts, func(i, j int) bool { return pts[i].seq < pts[j].seq })
	return pts
}

// harvestMatches negates match choices the way the strategy negates branch
// predicates: for every free choice point of the run (one not directed by the
// parent's order prefix), every untried eligible index becomes a pending
// child run whose order replays the choices up to that point and diverges
// there. Children are pushed shallow-to-deep, and the frontier pops from the
// end, so the deepest choice point's alternatives run first — the DFS shape
// of the branch search, transplanted to schedule space.
func (e *Engine) harvestMatches(run mpi.RunResult, parent [][]int, inputs map[string]int64, nprocs, focus int) {
	pts := collectMatches(run)
	if len(pts) == 0 {
		return
	}
	e.schedPoints += len(pts)
	dir := make([]int, nprocs)
	for r := 0; r < len(parent) && r < nprocs; r++ {
		dir[r] = len(parent[r])
	}
	for i, pt := range pts {
		if pt.rank < nprocs && pt.rankIdx < dir[pt.rank] {
			continue // directed by the parent: its alternatives are already queued
		}
		for alt := 0; alt < pt.nsrcs; alt++ {
			if alt == pt.choice {
				continue
			}
			sr := schedRun{
				Order:  childOrder(pts[:i], pt, alt, nprocs),
				Inputs: cloneInputs(inputs),
				NProcs: nprocs,
				Focus:  focus,
			}
			key := sr.key()
			if _, dup := e.schedSeen[key]; dup {
				continue
			}
			e.schedSeen[key] = struct{}{}
			e.schedPend = append(e.schedPend, sr)
		}
	}
}

// childOrder rebuilds the per-rank directive prefix that replays prefix's
// choices and then takes alt at pt. Within a rank, global sequence order and
// choice-point order coincide (both are execution order), so grouping the
// prefix by rank yields exactly the directive streams the runtime consumes.
func childOrder(prefix []matchPoint, pt matchPoint, alt, nprocs int) [][]int {
	order := make([][]int, nprocs)
	for _, p := range prefix {
		if p.rank < nprocs {
			order[p.rank] = append(order[p.rank], p.choice)
		}
	}
	if pt.rank < nprocs {
		order[pt.rank] = append(order[pt.rank], alt)
	}
	return order
}

// iterateScheduled pops the deepest pending directed run and executes it.
// Scheduled iterations bypass the input-negation machinery entirely — the
// inputs are pinned to the discovering run's — but merge coverage, record
// errors (with the order attached for replay), and harvest new choice points
// like any other execution.
func (e *Engine) iterateScheduled(it int) IterationStat {
	n := len(e.schedPend)
	sr := e.schedPend[n-1]
	e.schedPend = e.schedPend[:n-1]
	stat := IterationStat{NProcs: sr.NProcs, Focus: sr.Focus, Scheduled: true}

	sp := e.prof.Time("execute")
	run := e.backend.Launch(LaunchSpec{
		Iter:       it,
		NProcs:     sr.NProcs,
		Focus:      sr.Focus,
		Inputs:     cloneInputs(sr.Inputs),
		Params:     e.cfg.Params,
		Seed:       e.cfg.Seed + int64(it),
		Timeout:    e.cfg.RunTimeout,
		MaxTicks:   e.cfg.MaxTicks,
		Reduction:  e.cfg.Reduction,
		OneWay:     e.cfg.OneWay,
		TraceHint:  e.traceHint,
		Schedules:  true,
		MatchOrder: sr.Order,
	})
	sp.End()
	e.schedOrders++
	stat.RunTime = run.Elapsed
	stat.Failed = run.Failed()

	sp = e.prof.Time("trace-collect")
	for _, rr := range run.Ranks {
		if rr.Log == nil {
			continue
		}
		if e.cfg.Framework || rr.Rank == sr.Focus {
			e.cov.AddLog(rr.Log)
			e.noteSetupCov(setup{nprocs: sr.NProcs, focus: sr.Focus}, rr.Log)
		}
		stat.LogBytes += rr.LogBytes
		if rr.Rank == sr.Focus {
			stat.FocusLog = rr.LogBytes
		} else if rr.LogBytes > stat.OtherLog {
			stat.OtherLog = rr.LogBytes
		}
	}
	if fe, bad := run.FirstError(); bad {
		msg := fmt.Sprintf("exit=%d", fe.Exit)
		if fe.Err != nil {
			msg = fe.Err.Error()
		}
		rec := ErrorRecord{
			Iter: it, NProcs: sr.NProcs, Focus: sr.Focus,
			Status: fe.Status, Rank: fe.Rank, Msg: msg,
			Inputs:     cloneInputs(sr.Inputs),
			Params:     e.cfg.Params,
			Schedules:  true,
			MatchOrder: sr.Order,
		}
		e.errors = append(e.errors, rec)
		e.logError(rec)
	}
	e.harvestMatches(run, sr.Order, sr.Inputs, sr.NProcs, sr.Focus)
	sp.End()
	return stat
}

// scheduleStats assembles the campaign's schedule-exploration summary;
// Deadlocks counts distinct deadlock messages among the error records.
func scheduleStats(points, orders int, errors []ErrorRecord) ScheduleStats {
	st := ScheduleStats{ChoicePoints: points, Orders: orders}
	seen := map[string]struct{}{}
	for _, rec := range errors {
		if rec.Status != mpi.StatusDeadlock {
			continue
		}
		if _, dup := seen[rec.Msg]; dup {
			continue
		}
		seen[rec.Msg] = struct{}{}
		st.Deadlocks++
	}
	return st
}
