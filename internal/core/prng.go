package core

// prng is the engine's random source: a splitmix64 generator whose entire
// state is a single uint64, so a campaign Snapshot can carry it and a
// resumed engine continues the exact draw sequence an uninterrupted run
// would produce (math/rand's generator does not expose its state). Every
// engine-side random decision — restart inputs, the Random baseline's
// setup — flows through this type.
type prng struct{ state uint64 }

func newPRNG(seed int64) *prng {
	return &prng{state: uint64(seed)}
}

// next advances the splitmix64 sequence.
func (p *prng) next() uint64 {
	p.state += 0x9E3779B97F4A7C15
	z := p.state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// Int63n returns a value in [0, n). n must be > 0. The modulo bias is
// negligible for the small ranges the engine draws (input caps, process
// counts) and irrelevant to correctness — only determinism matters here.
func (p *prng) Int63n(n int64) int64 {
	return int64(p.next() % uint64(n))
}

// Intn returns a value in [0, n). n must be > 0.
func (p *prng) Intn(n int) int {
	return int(p.Int63n(int64(n)))
}

// Float64 returns a value in [0, 1) with 53 bits of precision.
func (p *prng) Float64() float64 {
	return float64(p.next()>>11) / (1 << 53)
}
