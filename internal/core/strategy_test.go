package core

import (
	"testing"

	"repro/internal/conc"
	"repro/internal/expr"
)

// mkPath builds a synthetic path of n symbolic branches over variable 0,
// each at a distinct site, all with outcome true.
func mkPath(n int, firstSite int) []conc.PathEntry {
	path := make([]conc.PathEntry, n)
	for i := range path {
		path[i] = conc.PathEntry{
			Site:    conc.CondID(firstSite + i),
			Outcome: true,
			Pred:    expr.Compare(expr.VarRef(0), expr.Const(int64(i)), expr.GE),
		}
	}
	return path
}

// negated returns path with entry idx flipped (what the next execution would
// record when the solver succeeds and the run follows the prediction).
func negated(path []conc.PathEntry, idx int) []conc.PathEntry {
	out := make([]conc.PathEntry, idx+1)
	copy(out, path[:idx+1])
	e := out[idx]
	e.Outcome = !e.Outcome
	e.Pred = e.Pred.Negate()
	out[idx] = e
	return out
}

func TestBoundedDFSDeepestFirst(t *testing.T) {
	s := NewBoundedDFS(Unbounded)
	s.Observe(mkPath(4, 0))
	_, idx, ok := s.Propose()
	if !ok || idx != 3 {
		t.Fatalf("first proposal idx=%d ok=%v, want deepest (3)", idx, ok)
	}
}

func TestBoundedDFSRespectsBound(t *testing.T) {
	s := NewBoundedDFS(2)
	s.Observe(mkPath(10, 0))
	_, idx, ok := s.Propose()
	if !ok || idx != 1 {
		t.Fatalf("bounded proposal idx=%d ok=%v, want 1 (bound 2)", idx, ok)
	}
}

func TestBoundedDFSWalksUpOnReject(t *testing.T) {
	s := NewBoundedDFS(Unbounded)
	s.Observe(mkPath(3, 0))
	for want := 2; want >= 0; want-- {
		_, idx, ok := s.Propose()
		if !ok || idx != want {
			t.Fatalf("idx=%d ok=%v, want %d", idx, ok, want)
		}
		s.Reject()
	}
	if _, _, ok := s.Propose(); ok {
		t.Fatal("exhausted stack must stop proposing")
	}
}

func TestBoundedDFSDescendsIntoNewSubtree(t *testing.T) {
	s := NewBoundedDFS(Unbounded)
	p0 := mkPath(3, 0)
	s.Observe(p0)
	_, idx, _ := s.Propose() // deepest: 2
	s.Accept()
	// New execution: prefix matches, branch 2 flipped, two new branches.
	p1 := append(negated(p0, idx), mkPath(2, 10)...)
	s.Observe(p1)
	_, idx2, ok := s.Propose()
	if !ok || idx2 != len(p1)-1 {
		t.Fatalf("descend: idx=%d ok=%v, want %d", idx2, ok, len(p1)-1)
	}
}

func TestBoundedDFSNewSubtreeFloor(t *testing.T) {
	// After descending past index k, the child frame must not re-negate
	// indices <= k (they belong to the parent), and the parent resumes at
	// k-1 once the child is exhausted.
	s := NewBoundedDFS(Unbounded)
	p0 := mkPath(3, 0)
	s.Observe(p0)
	_, k, _ := s.Propose() // k = 2
	s.Accept()
	p1 := append(negated(p0, k), mkPath(1, 10)...) // one extra branch at depth 3
	s.Observe(p1)
	_, idx, _ := s.Propose()
	if idx != 3 {
		t.Fatalf("child proposal = %d, want 3", idx)
	}
	s.Reject()
	_, idx, ok := s.Propose()
	if !ok || idx != 1 {
		t.Fatalf("parent resume = %d ok=%v, want 1", idx, ok)
	}
}

func TestBoundedDFSDivergenceSkipsSubtree(t *testing.T) {
	s := NewBoundedDFS(Unbounded)
	p0 := mkPath(3, 0)
	s.Observe(p0)
	_, _, _ = s.Propose() // 2
	s.Accept()
	// Diverged execution: different site at index 0.
	s.Observe(mkPath(3, 50))
	_, idx, ok := s.Propose()
	if !ok || idx != 1 {
		t.Fatalf("after divergence idx=%d ok=%v, want parent 1", idx, ok)
	}
}

func TestPrefixMatches(t *testing.T) {
	p := mkPath(4, 0)
	if !prefixMatches(negated(p, 2), p, 2) {
		t.Fatal("flipped path must match")
	}
	if prefixMatches(p, p, 2) {
		t.Fatal("unflipped path must not match")
	}
	if prefixMatches(p[:1], p, 2) {
		t.Fatal("short path must not match")
	}
}

func TestRandomBranchProposesWithinPath(t *testing.T) {
	s := NewRandomBranch(1)
	path := mkPath(5, 0)
	s.Observe(path)
	seen := map[int]struct{}{}
	for {
		_, idx, ok := s.Propose()
		if !ok {
			break
		}
		if idx < 0 || idx >= len(path) {
			t.Fatalf("idx out of range: %d", idx)
		}
		if _, dup := seen[idx]; dup {
			t.Fatalf("idx %d proposed twice without Observe", idx)
		}
		seen[idx] = struct{}{}
		s.Reject()
	}
	if len(seen) != 5 {
		t.Fatalf("should eventually try all 5 positions, got %d", len(seen))
	}
}

func TestUniformRandomTerminates(t *testing.T) {
	s := NewUniformRandom(2)
	s.Observe(mkPath(5, 0))
	n := 0
	for {
		_, _, ok := s.Propose()
		if !ok {
			break
		}
		n++
		s.Reject()
		if n > 100 {
			t.Fatal("uniform random never exhausts")
		}
	}
}

func TestTwoPhaseBoundDerivation(t *testing.T) {
	s := NewTwoPhase(2, 0).(*twoPhase)
	s.Observe(mkPath(40, 0))
	if s.Bound() != 0 {
		t.Fatal("bound must be unset in phase 1")
	}
	s.Observe(mkPath(50, 0))
	s.Observe(mkPath(10, 0)) // third observation: switch
	if !s.phase2 {
		t.Fatal("phase 2 not entered")
	}
	want := 50 + 50/5 + 10
	if s.Bound() != want {
		t.Fatalf("bound = %d, want %d", s.Bound(), want)
	}
}

func TestTwoPhaseExplicitBound(t *testing.T) {
	s := NewTwoPhase(0, 600).(*twoPhase)
	s.Observe(mkPath(3, 0))
	s.Observe(mkPath(3, 0))
	if s.Bound() != 600 {
		t.Fatalf("bound = %d, want explicit 600", s.Bound())
	}
}

func TestStrategyNames(t *testing.T) {
	if NewBoundedDFS(0).Name() != "bounded-dfs" ||
		NewRandomBranch(0).Name() != "random-branch" ||
		NewUniformRandom(0).Name() != "uniform-random" ||
		NewTwoPhase(0, 0).Name() != "compi-two-phase" {
		t.Fatal("strategy names changed")
	}
}
