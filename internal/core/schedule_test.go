package core

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/mpi"
	_ "repro/internal/targets/mworder"
	_ "repro/internal/targets/relay"
)

// schedConfig pins the 3-rank protocol setup the seeded targets need; the
// wildcard-receive bugs live in the message schedule, not the input space.
func schedConfig(t *testing.T, name string, schedules bool) Config {
	return Config{
		Program: prog(t, name), Iterations: 25,
		InitialProcs: 3, MaxProcs: 3, Reduction: true,
		Schedules: schedules, Seed: 7, RunTimeout: 5 * time.Second,
	}
}

// deadlockRecord pulls the (single) deadlock error record out of a campaign.
func deadlockRecord(t *testing.T, res Result) ErrorRecord {
	t.Helper()
	var recs []ErrorRecord
	for _, r := range res.Errors {
		if r.Status == mpi.StatusDeadlock {
			recs = append(recs, r)
		}
	}
	if len(recs) == 0 {
		t.Fatal("campaign found no deadlock")
	}
	return recs[0]
}

// TestScheduleExplorationFindsDeadlocks is the core-level form of the
// headline claim: with the match-order dimension on, the engine's schedule
// frontier reaches both seeded wildcard-receive deadlocks and names the
// wait-for cycle; with it off, the same budget and seed find nothing.
func TestScheduleExplorationFindsDeadlocks(t *testing.T) {
	cycles := map[string]string{
		"mworder": "wait-for cycle 0->2->0",
		"relay":   "wait-for cycle 0->2->1->0",
	}
	for name, cycle := range cycles {
		t.Run(name, func(t *testing.T) {
			off := NewEngine(schedConfig(t, name, false)).Run()
			if n := len(off.Errors); n != 0 {
				t.Fatalf("input-only exploration found %d errors; the bug must be schedule-only", n)
			}
			if off.Schedule != (ScheduleStats{}) {
				t.Fatalf("schedules-off campaign reported schedule stats: %+v", off.Schedule)
			}
			for _, it := range off.Iterations {
				if it.Scheduled {
					t.Fatal("schedules-off campaign ran a scheduled iteration")
				}
			}

			on := NewEngine(schedConfig(t, name, true)).Run()
			rec := deadlockRecord(t, on)
			if !strings.Contains(rec.Msg, cycle) {
				t.Fatalf("deadlock message %q does not name cycle %q", rec.Msg, cycle)
			}
			if len(rec.MatchOrder) == 0 {
				t.Fatal("deadlock record carries no match-order directive")
			}
			if !rec.Schedules {
				t.Fatal("deadlock record not marked as schedule-directed")
			}
			st := on.Schedule
			if st.ChoicePoints < 1 || st.Orders < 1 || st.Deadlocks != 1 {
				t.Fatalf("schedule stats %+v, want >=1 choice points, >=1 orders, exactly 1 deadlock", st)
			}
		})
	}
}

// TestScheduleCampaignDeterminism pins that schedule-space exploration is as
// deterministic as the input dimension: two identical -schedules campaigns
// produce byte-for-byte the same trajectory and schedule stats.
func TestScheduleCampaignDeterminism(t *testing.T) {
	a := NewEngine(schedConfig(t, "mworder", true)).Run()
	b := NewEngine(schedConfig(t, "mworder", true)).Run()
	if !reflect.DeepEqual(projectTrajectory(a), projectTrajectory(b)) {
		t.Fatal("two identical -schedules campaigns diverged")
	}
	if a.Schedule != b.Schedule {
		t.Fatalf("schedule stats diverged: %+v vs %+v", a.Schedule, b.Schedule)
	}
}

// TestScheduleReplayDeterminism pins the developer-facing contract: the
// error record of a schedule-directed deadlock replays to the same wedge —
// every live rank reports StatusDeadlock, the cycle description is
// identical, and the replayed trace matches byte for byte across replays.
func TestScheduleReplayDeterminism(t *testing.T) {
	res := NewEngine(schedConfig(t, "relay", true)).Run()
	rec := deadlockRecord(t, res)
	p := prog(t, "relay")

	r1 := Replay(p, rec, 5*time.Second)
	r2 := Replay(p, rec, 5*time.Second)
	for _, rr := range r1.Ranks {
		if rr.Status != mpi.StatusDeadlock {
			t.Fatalf("rank %d replayed to %v, want deadlock", rr.Rank, rr.Status)
		}
	}
	fe, ok := r1.FirstError()
	if !ok || !strings.Contains(fe.Err.Error(), "wait-for cycle 0->2->1->0") {
		t.Fatalf("replay error %v does not name the recorded cycle", fe.Err)
	}
	for i := range r1.Ranks {
		a, b := r1.Ranks[i], r2.Ranks[i]
		if a.Status != b.Status {
			t.Fatalf("rank %d statuses diverge across replays: %v vs %v", i, a.Status, b.Status)
		}
		if !bytes.Equal(a.Log.Encode(), b.Log.Encode()) {
			t.Fatalf("rank %d traces diverge across replays", i)
		}
	}
}

// TestScheduleResumeDeterminism extends the snapshot determinism contract to
// the schedule frontier (snapshot schema v3): interrupting a -schedules
// campaign mid-flight and restoring must replay the exact trajectory of an
// uninterrupted run, including which deadlock was found and the stats.
func TestScheduleResumeDeterminism(t *testing.T) {
	const k, n = 4, 25
	base := schedConfig(t, "mworder", true)
	full := base
	full.Iterations = n
	want := NewEngine(full).Run()

	head := base
	head.Iterations = k
	e1 := NewEngine(head)
	e1.Run()
	var buf bytes.Buffer
	if err := e1.Snapshot().Save(&buf); err != nil {
		t.Fatal(err)
	}
	snap, err := LoadSnapshot(&buf)
	if err != nil {
		t.Fatal(err)
	}

	e2 := NewEngine(full)
	if err := e2.Restore(snap); err != nil {
		t.Fatal(err)
	}
	got := e2.Run()
	assertSameCampaign(t, got, want)
	if got.Schedule != want.Schedule {
		t.Fatalf("schedule stats diverged after resume: %+v vs %+v", got.Schedule, want.Schedule)
	}
	deadlockRecord(t, got)
}
