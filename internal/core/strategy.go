package core

import (
	"fmt"
	"math"

	"repro/internal/conc"
	"repro/internal/coverage"
	"repro/internal/target"
)

// Strategy decides which recorded constraint to negate next — CREST's search
// strategy framework, which COMPI calls "the brain" of the tool.
//
// Protocol per iteration: the engine calls Observe with the focus path of the
// execution that just finished, then repeatedly calls Propose; each proposal
// is answered with Accept (solved; it will drive the next execution) or
// Reject (unsatisfiable). Propose returning ok=false means the strategy has
// exhausted its exploration; the engine restarts from fresh random inputs
// after calling Reset.
type Strategy interface {
	Name() string
	Observe(path []conc.PathEntry)
	Propose() (path []conc.PathEntry, idx int, ok bool)
	Accept()
	Reject()
	Reset()
}

// Unbounded is the depth bound that turns BoundedDFS into plain DFS
// (CREST's default bound of 1,000,000).
const Unbounded = 1000000

// dfsFrame is one node of the explicit DFS stack: an execution path and the
// next constraint index to negate, bounded below by floor (indices below
// floor belong to ancestor frames).
type dfsFrame struct {
	path  []conc.PathEntry
	i     int
	floor int
}

// boundedDFS is CREST's BoundedDFS: systematic traversal of the execution
// tree, negating constraints from the deepest (within the bound) upward.
// It is the strategy COMPI selects, because it is the only one that reliably
// passes the long sanity-check chains of MPI applications (§II-B).
type boundedDFS struct {
	bound     int
	stack     []dfsFrame
	hasProp   bool // an accepted proposal is outstanding
	propFrame int  // stack index of the frame that proposed
	propIdx   int
	exhausted bool
}

// NewBoundedDFS returns a DFS strategy that never negates constraints at
// depth ≥ bound.
func NewBoundedDFS(bound int) Strategy {
	if bound <= 0 {
		bound = Unbounded
	}
	return &boundedDFS{bound: bound}
}

func (s *boundedDFS) Name() string { return "bounded-dfs" }

func (s *boundedDFS) top(path []conc.PathEntry, floor int) dfsFrame {
	i := len(path) - 1
	if i > s.bound-1 {
		i = s.bound - 1
	}
	return dfsFrame{path: path, i: i, floor: floor}
}

func (s *boundedDFS) Observe(path []conc.PathEntry) {
	if !s.hasProp {
		// Fresh start (first execution or post-restart): root the tree here.
		s.stack = s.stack[:0]
		s.stack = append(s.stack, s.top(path, 0))
		s.exhausted = false
		return
	}
	// The execution followed an accepted proposal: the proposing frame moves
	// on to the next shallower index, and we descend into the new subtree if
	// the actual path matches the expected prefix (otherwise the run
	// diverged; skip the subtree like CREST does).
	s.hasProp = false
	f := &s.stack[s.propFrame]
	expected := f.path
	idx := s.propIdx
	f.i = idx - 1
	if prefixMatches(path, expected, idx) && len(path) > idx+1 {
		s.stack = append(s.stack, s.top(path, idx+1))
	}
}

// prefixMatches checks that got follows want's first idx entries and then
// took the opposite direction at idx.
func prefixMatches(got, want []conc.PathEntry, idx int) bool {
	if len(got) <= idx || len(want) <= idx {
		return false
	}
	for k := 0; k < idx; k++ {
		if got[k].Site != want[k].Site || got[k].Outcome != want[k].Outcome {
			return false
		}
	}
	return got[idx].Site == want[idx].Site && got[idx].Outcome != want[idx].Outcome
}

func (s *boundedDFS) Propose() ([]conc.PathEntry, int, bool) {
	for len(s.stack) > 0 {
		f := &s.stack[len(s.stack)-1]
		if f.i < f.floor {
			s.stack = s.stack[:len(s.stack)-1]
			continue
		}
		s.hasProp = true
		s.propFrame = len(s.stack) - 1
		s.propIdx = f.i
		return f.path, f.i, true
	}
	s.exhausted = true
	return nil, 0, false
}

func (s *boundedDFS) Accept() {
	// State advances when the resulting path arrives in Observe.
}

func (s *boundedDFS) Reject() {
	if s.hasProp {
		s.stack[s.propFrame].i = s.propIdx - 1
		s.hasProp = false
	}
}

func (s *boundedDFS) Reset() {
	s.stack = s.stack[:0]
	s.hasProp = false
	s.exhausted = false
}

// randomBranch is CREST's random branch search: pick a uniformly random
// constraint of the last path and negate it. Its random source is the
// engine's splitmix64 prng, whose entire state is one uint64, so the
// strategy's position (stream state + path + tried set) snapshots and
// resumes exactly — see strategy_persist.go.
type randomBranch struct {
	rng   *prng
	path  []conc.PathEntry
	tried map[int]struct{}
}

// NewRandomBranch returns the random branch search strategy.
func NewRandomBranch(seed int64) Strategy {
	return &randomBranch{rng: newPRNG(seed), tried: map[int]struct{}{}}
}

func (s *randomBranch) Name() string { return "random-branch" }

func (s *randomBranch) Observe(path []conc.PathEntry) {
	s.path = path
	s.tried = map[int]struct{}{}
}

func (s *randomBranch) Propose() ([]conc.PathEntry, int, bool) {
	if len(s.path) == 0 || len(s.tried) >= len(s.path) {
		return nil, 0, false
	}
	for {
		i := s.rng.Intn(len(s.path))
		if _, dup := s.tried[i]; dup {
			continue
		}
		s.tried[i] = struct{}{}
		return s.path, i, true
	}
}

func (s *randomBranch) Accept() {}
func (s *randomBranch) Reject() {}
func (s *randomBranch) Reset()  { s.path = nil; s.tried = map[int]struct{}{} }

// uniformRandom is CREST's uniform random search: walk the path from the
// start, negating each constraint with probability 1/2 and truncating there;
// equivalently, pick a geometric-ish prefix point. It restarts from random
// inputs frequently, which is what makes it unable to pass deep sanity
// chains.
type uniformRandom struct {
	rng     *prng
	path    []conc.PathEntry
	tries   int
	maxTry  int
	restart float64 // probability of forcing a restart each iteration
}

// NewUniformRandom returns the uniform random search strategy.
func NewUniformRandom(seed int64) Strategy {
	return &uniformRandom{rng: newPRNG(seed), maxTry: 8, restart: 0.2}
}

func (s *uniformRandom) Name() string { return "uniform-random" }

func (s *uniformRandom) Observe(path []conc.PathEntry) {
	s.path = path
	s.tries = 0
}

func (s *uniformRandom) Propose() ([]conc.PathEntry, int, bool) {
	if len(s.path) == 0 || s.tries >= s.maxTry || s.rng.Float64() < s.restart {
		return nil, 0, false
	}
	s.tries++
	// Prefer early positions: flip a fair coin at each depth.
	i := 0
	for i < len(s.path)-1 && s.rng.Intn(2) == 1 {
		i++
	}
	return s.path, i, true
}

func (s *uniformRandom) Accept() {}
func (s *uniformRandom) Reject() {}
func (s *uniformRandom) Reset()  { s.path = nil; s.tries = 0 }

// cfgSearch approximates CREST's CFG-directed search: score each path
// position by the static distance from its site to the nearest site owning
// an uncovered branch, and negate the best-scoring position first.
type cfgSearch struct {
	prog  *target.Program
	cov   *coverage.Tracker
	path  []conc.PathEntry
	order []int
	next  int
}

// NewCFG returns the CFG-directed search strategy. It consults the live
// coverage tracker owned by the engine.
func NewCFG(prog *target.Program, cov *coverage.Tracker) Strategy {
	return &cfgSearch{prog: prog, cov: cov}
}

func (s *cfgSearch) Name() string { return "cfg" }

func (s *cfgSearch) Observe(path []conc.PathEntry) {
	s.path = path
	s.next = 0
	// Goal set: sites with an uncovered direction.
	goal := map[conc.CondID]struct{}{}
	for _, c := range s.prog.Conds() {
		if !s.cov.Covered(conc.Bit(c.ID, true)) || !s.cov.Covered(conc.Bit(c.ID, false)) {
			goal[c.ID] = struct{}{}
		}
	}
	dist := s.prog.Distances(goal)
	type scored struct{ idx, d int }
	ss := make([]scored, len(path))
	for i, e := range path {
		d, ok := dist[e.Site]
		if !ok {
			d = math.MaxInt32
		}
		ss[i] = scored{idx: i, d: d}
	}
	// Stable selection: best (smallest) distance first; ties favor earlier
	// positions. This is the behavior the paper criticizes: the scoring
	// system does not follow execution-path order, so deep sanity chains
	// keep getting re-broken near the top instead of extended at the
	// failing check.
	s.order = s.order[:0]
	for range ss {
		best := -1
		for j, sc := range ss {
			if sc.idx < 0 {
				continue
			}
			if best < 0 || sc.d < ss[best].d || (sc.d == ss[best].d && sc.idx < ss[best].idx) {
				best = j
			}
		}
		s.order = append(s.order, ss[best].idx)
		ss[best].idx = -1
	}
}

func (s *cfgSearch) Propose() ([]conc.PathEntry, int, bool) {
	// Bound the per-iteration attempts, like CREST's scored worklist.
	const maxAttempts = 12
	if s.next >= len(s.order) || s.next >= maxAttempts {
		return nil, 0, false
	}
	i := s.order[s.next]
	s.next++
	return s.path, i, true
}

func (s *cfgSearch) Accept() {}
func (s *cfgSearch) Reject() {}
func (s *cfgSearch) Reset()  { s.path = nil; s.order = nil; s.next = 0 }

// twoPhase implements COMPI's bound selection (§II-B): run pure DFS for the
// first phase1 executions while recording the maximal constraint-set size,
// then switch to BoundedDFS with a bound slightly above the observed maximum.
type twoPhase struct {
	phase1   int
	seen     int
	maxLen   int
	override int // explicit bound for phase 2 (0 = derive from maxLen)
	inner    Strategy
	phase2   bool
}

// NewTwoPhase returns COMPI's default search: DFS for phase1 executions, then
// BoundedDFS with bound = observed max constraint-set size + slack. A
// non-zero explicitBound (the per-program limits of §VI) overrides the
// derived bound.
func NewTwoPhase(phase1, explicitBound int) Strategy {
	return &twoPhase{phase1: phase1, override: explicitBound, inner: NewBoundedDFS(Unbounded)}
}

func (s *twoPhase) Name() string { return "compi-two-phase" }

// Bound returns the phase-2 depth bound currently in force (0 before the
// switch).
func (s *twoPhase) Bound() int {
	if !s.phase2 {
		return 0
	}
	if s.override > 0 {
		return s.override
	}
	return s.maxLen + s.maxLen/5 + 10
}

func (s *twoPhase) Observe(path []conc.PathEntry) {
	s.seen++
	if len(path) > s.maxLen {
		s.maxLen = len(path)
	}
	if !s.phase2 && s.seen > s.phase1 {
		s.phase2 = true
		s.inner = NewBoundedDFS(s.Bound())
	}
	s.inner.Observe(path)
}

func (s *twoPhase) Propose() ([]conc.PathEntry, int, bool) { return s.inner.Propose() }
func (s *twoPhase) Accept()                                { s.inner.Accept() }
func (s *twoPhase) Reject()                                { s.inner.Reject() }
func (s *twoPhase) Reset()                                 { s.inner.Reset() }

// NamedStrategy resolves a strategy *name* — campaign data, as a
// spec.Campaign carries it — to a strategy factory, making search
// strategies portable across process boundaries: a fleet lease or a stored
// campaign names its strategy instead of carrying a live object. The empty
// name (and "compi", its CLI spelling) selects the engine's default
// two-phase DFS and returns a nil factory. seed feeds the random
// strategies; bound feeds bounded-dfs (0 derives Unbounded, matching the
// historical CLI behavior).
func NamedStrategy(name string, seed int64, bound int) (func(*target.Program, *coverage.Tracker) Strategy, error) {
	switch name {
	case "", "compi":
		return nil, nil
	case "bounded-dfs":
		if bound == 0 {
			bound = Unbounded
		}
		b := bound
		return func(*target.Program, *coverage.Tracker) Strategy { return NewBoundedDFS(b) }, nil
	case "random-branch":
		return func(*target.Program, *coverage.Tracker) Strategy { return NewRandomBranch(seed) }, nil
	case "uniform-random":
		return func(*target.Program, *coverage.Tracker) Strategy { return NewUniformRandom(seed) }, nil
	case "cfg":
		return func(p *target.Program, cov *coverage.Tracker) Strategy { return NewCFG(p, cov) }, nil
	}
	return nil, fmt.Errorf("unknown strategy %q (want compi, bounded-dfs, random-branch, uniform-random, or cfg)", name)
}
