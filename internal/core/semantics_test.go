package core

import (
	"testing"

	"repro/internal/conc"
	"repro/internal/expr"
	"repro/internal/solver"
)

func obsFixture() []conc.VarObs {
	return []conc.VarObs{
		{V: 0, Name: "rw:a", Val: 0, Kind: conc.KindRankWorld},
		{V: 1, Name: "rw:b", Val: 0, Kind: conc.KindRankWorld},
		{V: 2, Name: "sw:a", Val: 8, Kind: conc.KindSizeWorld},
		{V: 3, Name: "rc:x", Val: 0, Kind: conc.KindRankLocal, CommIdx: 0, CommSize: 3},
		{V: 4, Name: "n", Val: 100, Kind: conc.KindInput, HasCap: true, Cap: 300},
		{V: 5, Name: "m", Val: 5, Kind: conc.KindInput},
	}
}

func TestSemanticConstraintsShape(t *testing.T) {
	preds := semanticConstraints(obsFixture(), 16)
	// Expected: 1 rw-equality, 1 rw<sw, 2 rc bounds, 1 rw>=0,
	// 2 sw bounds, 1 input cap = 8 predicates.
	if len(preds) != 8 {
		for _, p := range preds {
			t.Logf("  %s", p)
		}
		t.Fatalf("got %d predicates, want 8", len(preds))
	}
	// The observed values must satisfy every constraint.
	vals := map[expr.Var]int64{0: 0, 1: 0, 2: 8, 3: 0, 4: 100, 5: 5}
	for _, p := range preds {
		hold, ok := p.Eval(func(v expr.Var) int64 { return vals[v] })
		if !ok || !hold {
			t.Fatalf("observed values violate %s", p)
		}
	}
	// rw >= sw must be excluded by the constraints.
	vals[0], vals[1] = 9, 9
	violated := false
	for _, p := range preds {
		if hold, ok := p.Eval(func(v expr.Var) int64 { return vals[v] }); ok && !hold {
			violated = true
		}
	}
	if !violated {
		t.Fatal("rank=9 size=8 must violate the semantics")
	}
}

func TestSemanticConstraintsSolvable(t *testing.T) {
	obs := obsFixture()
	preds := semanticConstraints(obs, 16)
	// Negate "rank != 3" on top of the semantics.
	preds = append(preds, expr.Compare(expr.VarRef(0), expr.Const(3), expr.EQ))
	prev := map[expr.Var]int64{0: 0, 1: 0, 2: 8, 3: 0, 4: 100, 5: 5}
	res, ok := solver.SolveIncremental(preds, prev, solver.Options{Seed: 1})
	if !ok {
		t.Fatal("unsat")
	}
	if res.Values[0] != 3 || res.Values[1] != 3 {
		t.Fatalf("rw equivalence broken: %v", res.Values)
	}
	if res.Values[2] < 4 || res.Values[2] > 16 {
		t.Fatalf("sw out of range: %d", res.Values[2])
	}
}

func TestResolveSetupFocusFromRW(t *testing.T) {
	obs := obsFixture()
	res := solver.Result{
		Values:  map[expr.Var]int64{0: 3, 1: 3, 2: 8},
		Changed: map[expr.Var]bool{0: true, 1: true},
	}
	s := resolveSetup(setup{nprocs: 8, focus: 0}, obs, nil, res, 16)
	if s.focus != 3 || s.nprocs != 8 {
		t.Fatalf("setup = %+v", s)
	}
}

// TestResolveSetupFigure5 reproduces the paper's Figure 5: three processes,
// focus at global rank 0 residing in two local communicators; negating
// y0 = 0 yields y0 ← 1, whose communicator maps local rank 1 to global rank
// 2, so the focus must move to 2.
func TestResolveSetupFigure5(t *testing.T) {
	obs := []conc.VarObs{
		{V: 0, Name: "rw:a", Val: 0, Kind: conc.KindRankWorld},
		{V: 1, Name: "rc:0", Val: 0, Kind: conc.KindRankLocal, CommIdx: 0, CommSize: 2},
		{V: 2, Name: "rc:1", Val: 0, Kind: conc.KindRankLocal, CommIdx: 1, CommSize: 2},
		{V: 3, Name: "sw:a", Val: 3, Kind: conc.KindSizeWorld},
	}
	mapping := [][]int32{
		{0, 2}, // local comm 0: local rank 1 is global rank 2
		{0, 1}, // local comm 1
	}
	res := solver.Result{
		Values:  map[expr.Var]int64{0: 0, 1: 1, 2: 0, 3: 3},
		Changed: map[expr.Var]bool{1: true}, // only y0 is up to date
	}
	s := resolveSetup(setup{nprocs: 3, focus: 0}, obs, mapping, res, 16)
	if s.focus != 2 {
		t.Fatalf("focus = %d, want 2 (via mapping)", s.focus)
	}
}

func TestResolveSetupRWBeatsRC(t *testing.T) {
	obs := []conc.VarObs{
		{V: 0, Name: "rw:a", Val: 0, Kind: conc.KindRankWorld},
		{V: 1, Name: "rc:0", Val: 0, Kind: conc.KindRankLocal, CommIdx: 0, CommSize: 2},
		{V: 3, Name: "sw:a", Val: 4, Kind: conc.KindSizeWorld},
	}
	res := solver.Result{
		Values:  map[expr.Var]int64{0: 1, 1: 1, 3: 4},
		Changed: map[expr.Var]bool{0: true, 1: true},
	}
	s := resolveSetup(setup{nprocs: 4, focus: 0}, obs, [][]int32{{0, 3}}, res, 16)
	if s.focus != 1 {
		t.Fatalf("focus = %d, want rw value 1", s.focus)
	}
}

func TestResolveSetupNoChangeKeepsFocus(t *testing.T) {
	obs := obsFixture()
	res := solver.Result{
		Values:  map[expr.Var]int64{0: 0, 2: 8},
		Changed: map[expr.Var]bool{4: true}, // only an input changed
	}
	s := resolveSetup(setup{nprocs: 8, focus: 5}, obs, nil, res, 16)
	if s.focus != 5 || s.nprocs != 8 {
		t.Fatalf("setup = %+v, want unchanged", s)
	}
}

func TestResolveSetupClampsProcsAndFocus(t *testing.T) {
	obs := []conc.VarObs{
		{V: 0, Name: "rw:a", Val: 7, Kind: conc.KindRankWorld},
		{V: 2, Name: "sw:a", Val: 8, Kind: conc.KindSizeWorld},
	}
	res := solver.Result{
		Values:  map[expr.Var]int64{0: 7, 2: 2},
		Changed: map[expr.Var]bool{2: true},
	}
	s := resolveSetup(setup{nprocs: 8, focus: 7}, obs, nil, res, 16)
	if s.nprocs != 2 || s.focus != 1 {
		t.Fatalf("setup = %+v, want nprocs=2 focus=1", s)
	}
	// Oversized sw gets clamped to the platform cap.
	res.Values[2] = 500000
	s = resolveSetup(setup{nprocs: 8, focus: 0}, obs, nil, res, 16)
	if s.nprocs != 16 {
		t.Fatalf("nprocs = %d, want clamped 16", s.nprocs)
	}
}
