package coverage

import (
	"reflect"
	"testing"

	"repro/internal/conc"
)

func TestAddLogAndCount(t *testing.T) {
	tr := New()
	tr.AddLog(&conc.Log{
		Covered: []conc.BranchBit{conc.Bit(1, true), conc.Bit(2, false)},
		Funcs:   []string{"f", "g"},
	})
	tr.AddLog(&conc.Log{
		Covered: []conc.BranchBit{conc.Bit(1, true), conc.Bit(3, true)},
		Funcs:   []string{"g"},
	})
	if tr.Count() != 3 {
		t.Fatalf("count: %d", tr.Count())
	}
	if !tr.Covered(conc.Bit(2, false)) || tr.Covered(conc.Bit(2, true)) {
		t.Fatal("covered wrong")
	}
	if !tr.SiteTouched(2) || tr.SiteTouched(9) {
		t.Fatal("site touched wrong")
	}
	if len(tr.Funcs()) != 2 {
		t.Fatalf("funcs: %v", tr.Funcs())
	}
}

func TestBranchesSorted(t *testing.T) {
	tr := New()
	tr.AddBranch(conc.Bit(5, false))
	tr.AddBranch(conc.Bit(1, true))
	tr.AddBranch(conc.Bit(3, true))
	got := tr.Branches()
	want := []conc.BranchBit{conc.Bit(1, true), conc.Bit(3, true), conc.Bit(5, false)}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("branches: %v want %v", got, want)
	}
}

func TestRate(t *testing.T) {
	tr := New()
	if tr.Rate(0) != 0 {
		t.Fatal("zero denominator must not panic")
	}
	tr.AddBranch(conc.Bit(0, true))
	tr.AddBranch(conc.Bit(0, false))
	if r := tr.Rate(8); r != 0.25 {
		t.Fatalf("rate: %f", r)
	}
}

func TestCloneIsIndependent(t *testing.T) {
	tr := New()
	tr.AddBranch(conc.Bit(1, true))
	tr.AddFunc("f")
	cp := tr.Clone()
	cp.AddBranch(conc.Bit(2, true))
	cp.AddFunc("g")
	if tr.Count() != 1 || cp.Count() != 2 {
		t.Fatalf("clone aliased: %d %d", tr.Count(), cp.Count())
	}
	if len(tr.Funcs()) != 1 || len(cp.Funcs()) != 2 {
		t.Fatal("funcs aliased")
	}
}
