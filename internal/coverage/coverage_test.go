package coverage

import (
	"reflect"
	"sync"
	"testing"

	"repro/internal/conc"
)

func TestAddLogAndCount(t *testing.T) {
	tr := New()
	tr.AddLog(&conc.Log{
		Covered: []conc.BranchBit{conc.Bit(1, true), conc.Bit(2, false)},
		Funcs:   []string{"f", "g"},
	})
	tr.AddLog(&conc.Log{
		Covered: []conc.BranchBit{conc.Bit(1, true), conc.Bit(3, true)},
		Funcs:   []string{"g"},
	})
	if tr.Count() != 3 {
		t.Fatalf("count: %d", tr.Count())
	}
	if !tr.Covered(conc.Bit(2, false)) || tr.Covered(conc.Bit(2, true)) {
		t.Fatal("covered wrong")
	}
	if !tr.SiteTouched(2) || tr.SiteTouched(9) {
		t.Fatal("site touched wrong")
	}
	if len(tr.Funcs()) != 2 {
		t.Fatalf("funcs: %v", tr.Funcs())
	}
}

func TestBranchesSorted(t *testing.T) {
	tr := New()
	tr.AddBranch(conc.Bit(5, false))
	tr.AddBranch(conc.Bit(1, true))
	tr.AddBranch(conc.Bit(3, true))
	got := tr.Branches()
	want := []conc.BranchBit{conc.Bit(1, true), conc.Bit(3, true), conc.Bit(5, false)}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("branches: %v want %v", got, want)
	}
}

func TestRate(t *testing.T) {
	tr := New()
	if tr.Rate(0) != 0 {
		t.Fatal("zero denominator must not panic")
	}
	tr.AddBranch(conc.Bit(0, true))
	tr.AddBranch(conc.Bit(0, false))
	if r := tr.Rate(8); r != 0.25 {
		t.Fatalf("rate: %f", r)
	}
}

func TestCloneIsIndependent(t *testing.T) {
	tr := New()
	tr.AddBranch(conc.Bit(1, true))
	tr.AddFunc("f")
	cp := tr.Clone()
	cp.AddBranch(conc.Bit(2, true))
	cp.AddFunc("g")
	if tr.Count() != 1 || cp.Count() != 2 {
		t.Fatalf("clone aliased: %d %d", tr.Count(), cp.Count())
	}
	if len(tr.Funcs()) != 1 || len(cp.Funcs()) != 2 {
		t.Fatal("funcs aliased")
	}
}

func TestMergeUnion(t *testing.T) {
	a, b := New(), New()
	a.AddBranch(conc.Bit(1, true))
	a.AddBranch(conc.Bit(2, false))
	a.AddFunc("f")
	b.AddBranch(conc.Bit(2, false)) // overlap
	b.AddBranch(conc.Bit(3, true))
	b.AddFunc("g")

	a.Merge(b)
	want := []conc.BranchBit{conc.Bit(1, true), conc.Bit(2, false), conc.Bit(3, true)}
	if got := a.Branches(); !reflect.DeepEqual(got, want) {
		t.Fatalf("merged branches %v, want %v", got, want)
	}
	if len(a.Funcs()) != 2 {
		t.Fatalf("merged funcs: %v", a.Funcs())
	}
	// The source must be untouched.
	if b.Count() != 2 || len(b.Funcs()) != 1 {
		t.Fatalf("merge mutated source: %d branches, funcs %v", b.Count(), b.Funcs())
	}
}

func TestMergeEmptyAndDegenerate(t *testing.T) {
	tr := New()
	tr.AddBranch(conc.Bit(1, true))

	tr.Merge(New()) // empty source: no-op
	tr.Merge(nil)   // nil source: no-op
	tr.Merge(tr)    // self-merge must not deadlock or change anything
	if tr.Count() != 1 {
		t.Fatalf("count after degenerate merges: %d", tr.Count())
	}
}

// TestConcurrentAddLogAndMerge hammers one shared union tracker from
// concurrent writers the way the scheduler does: per-campaign trackers keep
// absorbing logs while the union tracker merges them. Run under -race this
// is the tracker's thread-safety proof.
func TestConcurrentAddLogAndMerge(t *testing.T) {
	union := New()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			local := New()
			for i := 0; i < 200; i++ {
				local.AddLog(&conc.Log{
					Covered: []conc.BranchBit{conc.Bit(conc.CondID(w*1000+i), i%2 == 0)},
					Funcs:   []string{"f"},
				})
				union.Merge(local)
				// Readers race the writers on both trackers.
				_ = union.Count()
				_ = local.Branches()
				_ = union.Funcs()
			}
		}(w)
	}
	wg.Wait()
	if got := union.Count(); got != 8*200 {
		t.Fatalf("union covered %d branches, want %d", got, 8*200)
	}
}
