// Package coverage accumulates branch coverage across every process of every
// test iteration — the "all recorders" half of COMPI's "one focus and all
// recorders" framework (§III).
package coverage

import (
	"sort"

	"repro/internal/conc"
)

// Tracker is the campaign-wide coverage state.
type Tracker struct {
	covered map[conc.BranchBit]struct{}
	funcs   map[string]struct{}
}

// New returns an empty tracker.
func New() *Tracker {
	return &Tracker{
		covered: map[conc.BranchBit]struct{}{},
		funcs:   map[string]struct{}{},
	}
}

// AddLog merges one process's log into the tracker.
func (t *Tracker) AddLog(l *conc.Log) {
	for _, b := range l.Covered {
		t.covered[b] = struct{}{}
	}
	for _, f := range l.Funcs {
		t.funcs[f] = struct{}{}
	}
}

// AddBranch marks a single branch covered (used when merging trackers).
func (t *Tracker) AddBranch(b conc.BranchBit) { t.covered[b] = struct{}{} }

// AddFunc marks a function encountered.
func (t *Tracker) AddFunc(f string) { t.funcs[f] = struct{}{} }

// Count returns the number of covered branches.
func (t *Tracker) Count() int { return len(t.covered) }

// Covered reports whether branch b has been executed.
func (t *Tracker) Covered(b conc.BranchBit) bool {
	_, ok := t.covered[b]
	return ok
}

// SiteTouched reports whether either branch of a conditional site was
// executed.
func (t *Tracker) SiteTouched(site conc.CondID) bool {
	return t.Covered(conc.Bit(site, true)) || t.Covered(conc.Bit(site, false))
}

// Branches returns the covered branches in sorted order.
func (t *Tracker) Branches() []conc.BranchBit {
	out := make([]conc.BranchBit, 0, len(t.covered))
	for b := range t.covered {
		out = append(out, b)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Funcs returns the set of functions encountered, for the reachable-branch
// estimate.
func (t *Tracker) Funcs() map[string]struct{} { return t.funcs }

// Rate returns covered/total, guarding against a zero denominator.
func (t *Tracker) Rate(total int) float64 {
	if total == 0 {
		return 0
	}
	return float64(t.Count()) / float64(total)
}

// Clone returns an independent copy (used to snapshot per-phase coverage).
func (t *Tracker) Clone() *Tracker {
	n := New()
	for b := range t.covered {
		n.covered[b] = struct{}{}
	}
	for f := range t.funcs {
		n.funcs[f] = struct{}{}
	}
	return n
}
