// Package coverage accumulates branch coverage across every process of every
// test iteration — the "all recorders" half of COMPI's "one focus and all
// recorders" framework (§III).
//
// Tracker is safe for concurrent use: the campaign scheduler merges the
// trackers of concurrently running engines into per-target union trackers
// while campaigns are still adding coverage.
package coverage

import (
	"sort"
	"sync"

	"repro/internal/conc"
)

// Tracker is the campaign-wide coverage state.
type Tracker struct {
	mu      sync.RWMutex
	covered map[conc.BranchBit]struct{}
	funcs   map[string]struct{}

	// Journal state (delta.go): when journaling, every branch or function
	// admitted for the first time is also appended here, so DrainDelta can
	// report "what is new since the last drain" in O(new) without walking
	// the full corpus.
	journaling bool
	jBranches  []conc.BranchBit
	jFuncs     []string
}

// noteBranch admits b under the write lock, journaling it if new.
func (t *Tracker) noteBranch(b conc.BranchBit) {
	if _, ok := t.covered[b]; ok {
		return
	}
	t.covered[b] = struct{}{}
	if t.journaling {
		t.jBranches = append(t.jBranches, b)
	}
}

// noteFunc admits f under the write lock, journaling it if new.
func (t *Tracker) noteFunc(f string) {
	if _, ok := t.funcs[f]; ok {
		return
	}
	t.funcs[f] = struct{}{}
	if t.journaling {
		t.jFuncs = append(t.jFuncs, f)
	}
}

// New returns an empty tracker.
func New() *Tracker {
	return &Tracker{
		covered: map[conc.BranchBit]struct{}{},
		funcs:   map[string]struct{}{},
	}
}

// AddLog merges one process's log into the tracker.
func (t *Tracker) AddLog(l *conc.Log) {
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, b := range l.Covered {
		t.noteBranch(b)
	}
	for _, f := range l.Funcs {
		t.noteFunc(f)
	}
}

// AddBranch marks a single branch covered.
func (t *Tracker) AddBranch(b conc.BranchBit) {
	t.mu.Lock()
	t.noteBranch(b)
	t.mu.Unlock()
}

// AddFunc marks a function encountered.
func (t *Tracker) AddFunc(f string) {
	t.mu.Lock()
	t.noteFunc(f)
	t.mu.Unlock()
}

// Merge unions src into t (set union of branches and functions). Merging an
// empty tracker is a no-op. Both trackers may be in concurrent use: src is
// snapshotted under its read lock before t is written, so Merge(a,b) and
// Merge(b,a) from different goroutines cannot deadlock.
func (t *Tracker) Merge(src *Tracker) {
	if src == nil || src == t {
		return
	}
	src.mu.RLock()
	bs := make([]conc.BranchBit, 0, len(src.covered))
	for b := range src.covered {
		bs = append(bs, b)
	}
	fs := make([]string, 0, len(src.funcs))
	for f := range src.funcs {
		fs = append(fs, f)
	}
	src.mu.RUnlock()

	t.mu.Lock()
	defer t.mu.Unlock()
	for _, b := range bs {
		t.noteBranch(b)
	}
	for _, f := range fs {
		t.noteFunc(f)
	}
}

// Count returns the number of covered branches.
func (t *Tracker) Count() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return len(t.covered)
}

// Covered reports whether branch b has been executed.
func (t *Tracker) Covered(b conc.BranchBit) bool {
	t.mu.RLock()
	_, ok := t.covered[b]
	t.mu.RUnlock()
	return ok
}

// SiteTouched reports whether either branch of a conditional site was
// executed.
func (t *Tracker) SiteTouched(site conc.CondID) bool {
	return t.Covered(conc.Bit(site, true)) || t.Covered(conc.Bit(site, false))
}

// Branches returns the covered branches in sorted order.
func (t *Tracker) Branches() []conc.BranchBit {
	t.mu.RLock()
	out := make([]conc.BranchBit, 0, len(t.covered))
	for b := range t.covered {
		out = append(out, b)
	}
	t.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Funcs returns a copy of the set of functions encountered, for the
// reachable-branch estimate.
func (t *Tracker) Funcs() map[string]struct{} {
	t.mu.RLock()
	defer t.mu.RUnlock()
	out := make(map[string]struct{}, len(t.funcs))
	for f := range t.funcs {
		out[f] = struct{}{}
	}
	return out
}

// Rate returns covered/total, guarding against a zero denominator.
func (t *Tracker) Rate(total int) float64 {
	if total == 0 {
		return 0
	}
	return float64(t.Count()) / float64(total)
}

// Clone returns an independent copy (used to snapshot per-phase coverage).
func (t *Tracker) Clone() *Tracker {
	n := New()
	n.Merge(t)
	return n
}
