// Package coverage accumulates branch coverage across every process of every
// test iteration — the "all recorders" half of COMPI's "one focus and all
// recorders" framework (§III).
//
// Tracker is safe for concurrent use: the campaign scheduler merges the
// trackers of concurrently running engines into per-target union trackers
// while campaigns are still adding coverage. The record path is sharded —
// branches hash across 64 independently locked shards and the covered count
// is a lock-free atomic — so concurrently recording engines only contend
// when they land on the same shard at the same instant. The batch operations
// (Merge, DrainDelta, Branches) still walk every shard under its lock; they
// run once per iteration or merge frame, not once per branch event.
package coverage

import (
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/conc"
)

// nShards is the number of branch shards. Power of two so the shard index is
// a mask; 64 shards make same-shard collisions between a handful of
// concurrently recording engines rare.
const nShards = 64

// shard holds one slice of the branch set plus its segment of the journal.
type shard struct {
	mu      sync.RWMutex
	covered map[conc.BranchBit]struct{}
	jNew    []conc.BranchBit // journaled admissions (guarded by mu)
}

func shardOf(b conc.BranchBit) uint32 { return uint32(b) & (nShards - 1) }

// Tracker is the campaign-wide coverage state.
type Tracker struct {
	shards [nShards]shard
	count  atomic.Int64 // total covered branches (sum over shards)

	// journaling (delta.go): when set, every branch or function admitted for
	// the first time is also appended to its shard's journal (branches) or
	// jFuncs (functions), so DrainDelta can report "what is new since the
	// last drain" in O(new) without walking the full corpus. Atomic so the
	// sharded record path reads it without a global lock.
	journaling atomic.Bool

	// Functions are far fewer than branch events and arrive once per log, so
	// they keep a single lock.
	fmu    sync.RWMutex
	funcs  map[string]struct{}
	jFuncs []string
}

// New returns an empty tracker.
func New() *Tracker {
	t := &Tracker{funcs: map[string]struct{}{}}
	for i := range t.shards {
		t.shards[i].covered = map[conc.BranchBit]struct{}{}
	}
	return t
}

// noteBranch admits b into its shard, journaling it if new. The fast path —
// b already covered, the overwhelmingly common case mid-campaign — takes
// only the shard's read lock.
func (t *Tracker) noteBranch(b conc.BranchBit) {
	s := &t.shards[shardOf(b)]
	s.mu.RLock()
	_, ok := s.covered[b]
	s.mu.RUnlock()
	if ok {
		return
	}
	s.mu.Lock()
	if _, ok := s.covered[b]; !ok {
		s.covered[b] = struct{}{}
		t.count.Add(1)
		if t.journaling.Load() {
			s.jNew = append(s.jNew, b)
		}
	}
	s.mu.Unlock()
}

// noteFunc admits f, journaling it if new.
func (t *Tracker) noteFunc(f string) {
	t.fmu.RLock()
	_, ok := t.funcs[f]
	t.fmu.RUnlock()
	if ok {
		return
	}
	t.fmu.Lock()
	if _, ok := t.funcs[f]; !ok {
		t.funcs[f] = struct{}{}
		if t.journaling.Load() {
			t.jFuncs = append(t.jFuncs, f)
		}
	}
	t.fmu.Unlock()
}

// AddLog merges one process's log into the tracker.
func (t *Tracker) AddLog(l *conc.Log) {
	for _, b := range l.Covered {
		t.noteBranch(b)
	}
	for _, f := range l.Funcs {
		t.noteFunc(f)
	}
}

// AddBranch marks a single branch covered.
func (t *Tracker) AddBranch(b conc.BranchBit) { t.noteBranch(b) }

// AddFunc marks a function encountered.
func (t *Tracker) AddFunc(f string) { t.noteFunc(f) }

// Merge unions src into t (set union of branches and functions). Merging an
// empty tracker is a no-op. Both trackers may be in concurrent use: src is
// snapshotted shard by shard under read locks before t is written, and no
// lock of t is held while a lock of src is, so Merge(a,b) and Merge(b,a)
// from different goroutines cannot deadlock.
func (t *Tracker) Merge(src *Tracker) {
	if src == nil || src == t {
		return
	}
	for _, b := range src.branchSnapshot() {
		t.noteBranch(b)
	}
	for _, f := range src.funcSnapshot() {
		t.noteFunc(f)
	}
}

// branchSnapshot copies the covered set, shard by shard (unsorted).
func (t *Tracker) branchSnapshot() []conc.BranchBit {
	out := make([]conc.BranchBit, 0, t.count.Load())
	for i := range t.shards {
		s := &t.shards[i]
		s.mu.RLock()
		for b := range s.covered {
			out = append(out, b)
		}
		s.mu.RUnlock()
	}
	return out
}

// funcSnapshot copies the function set (unsorted).
func (t *Tracker) funcSnapshot() []string {
	t.fmu.RLock()
	out := make([]string, 0, len(t.funcs))
	for f := range t.funcs {
		out = append(out, f)
	}
	t.fmu.RUnlock()
	return out
}

// Count returns the number of covered branches (lock-free).
func (t *Tracker) Count() int { return int(t.count.Load()) }

// Covered reports whether branch b has been executed.
func (t *Tracker) Covered(b conc.BranchBit) bool {
	s := &t.shards[shardOf(b)]
	s.mu.RLock()
	_, ok := s.covered[b]
	s.mu.RUnlock()
	return ok
}

// SiteTouched reports whether either branch of a conditional site was
// executed.
func (t *Tracker) SiteTouched(site conc.CondID) bool {
	return t.Covered(conc.Bit(site, true)) || t.Covered(conc.Bit(site, false))
}

// Branches returns the covered branches in sorted order.
func (t *Tracker) Branches() []conc.BranchBit {
	out := t.branchSnapshot()
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Funcs returns a copy of the set of functions encountered, for the
// reachable-branch estimate.
func (t *Tracker) Funcs() map[string]struct{} {
	t.fmu.RLock()
	defer t.fmu.RUnlock()
	out := make(map[string]struct{}, len(t.funcs))
	for f := range t.funcs {
		out[f] = struct{}{}
	}
	return out
}

// Rate returns covered/total, guarding against a zero denominator.
func (t *Tracker) Rate(total int) float64 {
	if total == 0 {
		return 0
	}
	return float64(t.Count()) / float64(total)
}

// Clone returns an independent copy (used to snapshot per-phase coverage).
func (t *Tracker) Clone() *Tracker {
	n := New()
	n.Merge(t)
	return n
}
