package coverage

import (
	"reflect"
	"sync"
	"testing"

	"repro/internal/conc"
)

// TestDeltaDrainApplyEqualsMerge pins the delta contract: replaying every
// drained delta into an empty tracker reproduces the source tracker.
func TestDeltaDrainApplyEqualsMerge(t *testing.T) {
	src := New()
	src.StartJournal()
	dst := New()

	feed := [][]conc.BranchBit{
		{3, 1, 2},
		{2, 4}, // 2 repeats: must not reappear in the delta
		{},
		{9, 4, 8, 1},
	}
	for i, bs := range feed {
		for _, b := range bs {
			src.AddBranch(b)
		}
		if i%2 == 0 {
			src.AddFunc("f")
		}
		d := src.DrainDelta()
		for _, b := range d.Branches {
			if dst.Covered(b) {
				t.Fatalf("round %d: delta re-shipped already-drained branch %d", i, b)
			}
		}
		dst.ApplyDelta(d)
		dst.ApplyDelta(d) // idempotent
	}
	if !reflect.DeepEqual(dst.Branches(), src.Branches()) {
		t.Fatalf("delta replay diverged: %v vs %v", dst.Branches(), src.Branches())
	}
	if !reflect.DeepEqual(dst.Funcs(), src.Funcs()) {
		t.Fatalf("delta replay lost functions: %v vs %v", dst.Funcs(), src.Funcs())
	}
	if d := src.DrainDelta(); !d.Empty() {
		t.Fatalf("drained tracker produced a non-empty delta: %+v", d)
	}
}

// TestDeltaIsONew pins the O(new branches) property: after a large corpus is
// drained, an iteration adding k new branches drains a k-entry delta, not a
// corpus-sized one — and re-adding old branches contributes nothing.
func TestDeltaIsONew(t *testing.T) {
	tr := New()
	tr.StartJournal()
	for b := 0; b < 10_000; b++ {
		tr.AddBranch(conc.BranchBit(b))
	}
	if d := tr.DrainDelta(); len(d.Branches) != 10_000 {
		t.Fatalf("first drain carried %d branches, want 10000", len(d.Branches))
	}
	for b := 0; b < 10_000; b++ { // the whole old corpus again
		tr.AddBranch(conc.BranchBit(b))
	}
	tr.AddBranch(10_001)
	tr.AddBranch(10_003)
	tr.AddBranch(10_002)
	d := tr.DrainDelta()
	if want := []conc.BranchBit{10_001, 10_002, 10_003}; !reflect.DeepEqual(d.Branches, want) {
		t.Fatalf("delta = %v, want exactly the new sorted branches %v", d.Branches, want)
	}
}

// TestDeltaPreexistingCoverageExcluded: coverage restored before journaling
// starts never appears in a delta (the resumed-shard contract).
func TestDeltaPreexistingCoverageExcluded(t *testing.T) {
	tr := New()
	tr.AddBranch(1)
	tr.AddFunc("restored")
	tr.StartJournal()
	tr.AddBranch(1) // already covered
	tr.AddBranch(2)
	d := tr.DrainDelta()
	if !reflect.DeepEqual(d.Branches, []conc.BranchBit{2}) || len(d.Funcs) != 0 {
		t.Fatalf("delta leaked pre-journal coverage: %+v", d)
	}
}

// TestDeltaConcurrent exercises journaling under concurrent writers (the
// engine's tracker is shared with merging schedulers); run with -race.
func TestDeltaConcurrent(t *testing.T) {
	tr := New()
	tr.StartJournal()
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				tr.AddBranch(conc.BranchBit(i % 97))
				if i%10 == 0 {
					tr.DrainDelta()
				}
			}
		}(g)
	}
	wg.Wait()
	tr.DrainDelta()
	if got := tr.Count(); got != 97 {
		t.Fatalf("tracker holds %d branches, want 97", got)
	}
}
