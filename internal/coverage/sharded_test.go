package coverage

import (
	"reflect"
	"sync"
	"testing"

	"repro/internal/conc"
)

// TestShardedRecordMergeDrainConcurrent is the sharded tracker's integrity
// proof: recorders, mergers and drainers all running at once (the fleet
// worker shape — engines record while the shard loop drains deltas and the
// coordinator merges), with the journal stream checked for exactness: every
// branch drained exactly once, none lost, none duplicated. Run under -race.
func TestShardedRecordMergeDrainConcurrent(t *testing.T) {
	tr := New()
	tr.StartJournal()

	const writers, perWriter = 8, 400
	var wg sync.WaitGroup
	stop := make(chan struct{})

	// Drainer: continuously collects the journal stream.
	var drained []conc.BranchBit
	var drainWG sync.WaitGroup
	drainWG.Add(1)
	go func() {
		defer drainWG.Done()
		for {
			select {
			case <-stop:
				drained = append(drained, tr.DrainDelta().Branches...)
				return
			default:
				drained = append(drained, tr.DrainDelta().Branches...)
			}
		}
	}()

	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			side := New() // merge source, exercising Merge during records
			for i := 0; i < perWriter; i++ {
				b := conc.BranchBit(w*perWriter + i)
				if i%3 == 0 {
					side.AddBranch(b)
					tr.Merge(side)
				} else {
					tr.AddBranch(b)
				}
				// Overlapping writes from other writers' ranges: dups must
				// be absorbed, not re-journaled.
				tr.AddBranch(conc.BranchBit(i))
				_ = tr.Covered(b)
				_ = tr.Count()
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	drainWG.Wait()

	want := writers * perWriter // ranges overlap on [0,perWriter)
	if got := tr.Count(); got != want {
		t.Fatalf("tracker count %d, want %d", got, want)
	}
	if len(drained) != want {
		t.Fatalf("journal stream carried %d entries, want exactly %d (lost or duplicated admissions)", len(drained), want)
	}
	seen := map[conc.BranchBit]struct{}{}
	for _, b := range drained {
		if _, dup := seen[b]; dup {
			t.Fatalf("branch %d drained twice", b)
		}
		seen[b] = struct{}{}
	}
}

// TestApplyDeltaIdempotentCount pins that ApplyDelta idempotency survives
// the sharded-counter change: double application must not double Count, and
// a journaled receiver re-emits each entry exactly once (the fleet merge
// path replays overlapping deltas from reclaimed workers).
func TestApplyDeltaIdempotentCount(t *testing.T) {
	d := Delta{
		Branches: []conc.BranchBit{1, 5, 9, 200, 4096},
		Funcs:    []string{"f", "g"},
	}
	tr := New()
	tr.StartJournal()
	tr.ApplyDelta(d)
	if got := tr.Count(); got != len(d.Branches) {
		t.Fatalf("count after first apply: %d", got)
	}
	re := tr.DrainDelta()
	if !reflect.DeepEqual(re.Branches, d.Branches) || !reflect.DeepEqual(re.Funcs, d.Funcs) {
		t.Fatalf("journaled receiver re-emitted %+v, want %+v", re, d)
	}
	tr.ApplyDelta(d) // overlap replay
	tr.ApplyDelta(d)
	if got := tr.Count(); got != len(d.Branches) {
		t.Fatalf("count after replays: %d, want %d (double-counted)", got, len(d.Branches))
	}
	if re := tr.DrainDelta(); !re.Empty() {
		t.Fatalf("replayed delta re-journaled entries: %+v", re)
	}
}

// TestShardDistribution sanity-checks that consecutive branch bits spread
// across shards (the contention argument rests on it).
func TestShardDistribution(t *testing.T) {
	hit := map[uint32]bool{}
	for b := 0; b < nShards; b++ {
		hit[shardOf(conc.BranchBit(b))] = true
	}
	if len(hit) != nShards {
		t.Fatalf("consecutive bits landed on %d/%d shards", len(hit), nShards)
	}
}

// BenchmarkRecordHot measures the tracker's record fast path (branch already
// covered) under increasing writer parallelism — the number the sharding
// exists for.
func BenchmarkRecordHot(b *testing.B) {
	tr := New()
	const nBranches = 1024
	for i := 0; i < nBranches; i++ {
		tr.AddBranch(conc.BranchBit(i))
	}
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			tr.AddBranch(conc.BranchBit(i % nBranches))
			i++
		}
	})
}
