package coverage

import (
	"sort"

	"repro/internal/conc"
)

// Delta is the incremental coverage encoding the fleet's merge frames carry:
// only the branches and functions admitted since the previous drain, never
// the whole corpus. A campaign that has already covered 10⁴ branches and
// finds 3 new ones in an iteration ships a 3-entry delta, so streaming a
// shard's coverage to a coordinator costs O(new branches) per iteration —
// the property BenchmarkFleetMergeDelta pins against the full-corpus
// alternative.
//
// Deltas are plain values (JSON-serializable, sorted, deterministic for a
// given tracker history) and compose: applying a sequence of drained deltas
// to an empty tracker reproduces the source tracker exactly, and applying a
// delta twice is a no-op (set union), which is what lets a coordinator
// replay overlapping streams from a reclaimed and a re-leased worker without
// double counting.
type Delta struct {
	Branches []conc.BranchBit `json:"branches,omitempty"`
	Funcs    []string         `json:"funcs,omitempty"`
}

// Empty reports whether the delta carries nothing.
func (d Delta) Empty() bool { return len(d.Branches) == 0 && len(d.Funcs) == 0 }

// StartJournal begins recording newly admitted branches and functions, so
// subsequent DrainDelta calls return what changed since the previous drain.
// Coverage already present when journaling starts is NOT part of any delta:
// a worker that resumes a shard from a snapshot restores the snapshot's
// coverage first and journals only what its own iterations add. Idempotent.
func (t *Tracker) StartJournal() { t.journaling.Store(true) }

// DrainDelta returns the branches and functions admitted since the last
// drain (or since StartJournal) and resets the journal. The slices are
// sorted, so a drained delta is deterministic in the tracker's history
// regardless of which shards the entries landed on. Draining a tracker that
// is not journaling returns an empty delta.
func (t *Tracker) DrainDelta() Delta {
	var d Delta
	for i := range t.shards {
		s := &t.shards[i]
		s.mu.Lock()
		if len(s.jNew) > 0 {
			d.Branches = append(d.Branches, s.jNew...)
			s.jNew = nil
		}
		s.mu.Unlock()
	}
	t.fmu.Lock()
	if len(t.jFuncs) > 0 {
		d.Funcs = t.jFuncs
		t.jFuncs = nil
	}
	t.fmu.Unlock()
	sort.Slice(d.Branches, func(i, j int) bool { return d.Branches[i] < d.Branches[j] })
	sort.Strings(d.Funcs)
	return d
}

// ApplyDelta unions a drained delta into the tracker (the coordinator side
// of a merge frame). Application is idempotent and journal-aware, so
// trackers can be chained: a coordinator applying worker deltas into a
// journaled tracker re-emits exactly the genuinely new entries.
func (t *Tracker) ApplyDelta(d Delta) {
	for _, b := range d.Branches {
		t.noteBranch(b)
	}
	for _, f := range d.Funcs {
		t.noteFunc(f)
	}
}
