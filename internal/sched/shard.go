package sched

import (
	"sort"

	"repro/internal/core"
	"repro/internal/coverage"
	"repro/internal/spec"
)

// Shard partitions one campaign's search space into n campaigns by the test
// setup the engine starts from — the (initial process count, initial focus)
// pair; spec.Shard holds the data logic. Every shard inherits the base
// spec's live Overrides, so an in-process custom backend or trace callback
// shards the same way a plain campaign does. All shards carry Group = the
// base spec's label, which the Report rolls up into one merged entry.
func Shard(base Spec, n int) []Spec {
	campaigns := spec.Shard(base.Campaign, n)
	out := make([]Spec, 0, len(campaigns))
	for _, c := range campaigns {
		out = append(out, Spec{Campaign: c, Overrides: base.Overrides})
	}
	return out
}

// GroupReport is the merged outcome of one shard group: the union of the
// member campaigns' coverage and their deduplicated error records, reported
// the way a single unsharded campaign would be.
type GroupReport struct {
	Group      string
	Target     string
	Shards     int
	Iterations int
	Coverage   *coverage.Tracker
	Errors     map[string][]core.ErrorRecord
}

// Groups merges the campaigns of each shard group, sorted by group name.
// Campaigns without a Group (or whose spec errored) are not included.
func (r *Report) Groups() []GroupReport {
	byGroup := map[string]*GroupReport{}
	var order []string
	for i := range r.Campaigns {
		c := &r.Campaigns[i]
		if c.Spec.Group == "" || c.Err != nil {
			continue
		}
		g := byGroup[c.Spec.Group]
		if g == nil {
			g = &GroupReport{
				Group:    c.Spec.Group,
				Target:   c.Target,
				Coverage: coverage.New(),
				Errors:   map[string][]core.ErrorRecord{},
			}
			byGroup[c.Spec.Group] = g
			order = append(order, c.Spec.Group)
		}
		g.Shards++
		g.Iterations += len(c.Result.Iterations)
		g.Coverage.Merge(c.Result.Coverage)
		for msg, recs := range c.Result.DistinctErrors() {
			g.Errors[msg] = append(g.Errors[msg], recs...)
		}
	}
	sort.Strings(order)
	out := make([]GroupReport, 0, len(order))
	for _, name := range order {
		out = append(out, *byGroup[name])
	}
	return out
}
