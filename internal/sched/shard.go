package sched

import (
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/coverage"
)

// Shard partitions one campaign's search space into n campaigns by the test
// setup the engine starts from — the (initial process count, initial focus)
// pair. The engine explores outward from its initial setup (the framework
// only moves nprocs/focus when a solved constraint demands it), so different
// starting points explore different regions of the tree while the shared
// solver service collides their overlapping constraint sets.
//
// Shard 0 is the base spec itself (same seed, same initial setup), so the
// shard set strictly extends the unsharded campaign; the remaining shards
// rotate the initial focus through the other ranks and then vary the
// initial process count. All shards carry Group = the base spec's label,
// which the Report rolls up into one merged entry.
func Shard(base Spec, n int) []Spec {
	if n <= 1 {
		return []Spec{base}
	}
	procs := base.Config.InitialProcs
	if procs <= 0 {
		procs = 8 // core.Config.withDefaults
	}
	maxProcs := base.Config.MaxProcs
	if maxProcs <= 0 {
		maxProcs = 16
	}
	focus := base.Config.InitialFocus
	if focus < 0 || focus >= procs {
		focus = 0
	}

	// Enumerate distinct (nprocs, focus) setups: the base setup first, then
	// the other focus ranks at the base process count, then alternating
	// smaller/larger process counts with focus 0.
	type setup struct{ np, f int }
	setups := []setup{{procs, focus}}
	for f := 0; f < procs && len(setups) < n; f++ {
		if f != focus {
			setups = append(setups, setup{procs, f})
		}
	}
	lo, hi := procs-1, procs+1
	for len(setups) < n && (lo >= 1 || hi <= maxProcs) {
		if lo >= 1 {
			setups = append(setups, setup{lo, 0})
			lo--
		}
		if len(setups) < n && hi <= maxProcs {
			setups = append(setups, setup{hi, 0})
			hi++
		}
	}

	group := base.label()
	out := make([]Spec, 0, n)
	for i := 0; i < n; i++ {
		s := base
		s.Group = group
		s.Label = fmt.Sprintf("%s/shard%d.%d", group, i, n)
		// More shards than distinct setups: wrap around, but perturb the
		// seed so the extra shards explore different random restarts.
		st := setups[i%len(setups)]
		if i >= len(setups) {
			s.Seed = s.seed() + int64(i/len(setups))*1_000_003
		}
		s.Config.InitialProcs = st.np
		s.Config.InitialFocus = st.f
		if s.Config.MaxProcs <= 0 {
			s.Config.MaxProcs = maxProcs
		}
		out = append(out, s)
	}
	return out
}

// GroupReport is the merged outcome of one shard group: the union of the
// member campaigns' coverage and their deduplicated error records, reported
// the way a single unsharded campaign would be.
type GroupReport struct {
	Group      string
	Target     string
	Shards     int
	Iterations int
	Coverage   *coverage.Tracker
	Errors     map[string][]core.ErrorRecord
}

// Groups merges the campaigns of each shard group, sorted by group name.
// Campaigns without a Group (or whose spec errored) are not included.
func (r *Report) Groups() []GroupReport {
	byGroup := map[string]*GroupReport{}
	var order []string
	for i := range r.Campaigns {
		c := &r.Campaigns[i]
		if c.Spec.Group == "" || c.Err != nil {
			continue
		}
		g := byGroup[c.Spec.Group]
		if g == nil {
			g = &GroupReport{
				Group:    c.Spec.Group,
				Target:   c.Target,
				Coverage: coverage.New(),
				Errors:   map[string][]core.ErrorRecord{},
			}
			byGroup[c.Spec.Group] = g
			order = append(order, c.Spec.Group)
		}
		g.Shards++
		g.Iterations += len(c.Result.Iterations)
		g.Coverage.Merge(c.Result.Coverage)
		for msg, recs := range c.Result.DistinctErrors() {
			g.Errors[msg] = append(g.Errors[msg], recs...)
		}
	}
	sort.Strings(order)
	out := make([]GroupReport, 0, len(order))
	for _, name := range order {
		out = append(out, *byGroup[name])
	}
	return out
}
