// Package sched is the parallel campaign scheduler: it runs many COMPI
// testing campaigns concurrently on one machine and merges their outcomes.
//
// The paper's evaluation (§V–VI) is a grid of fixed-budget campaigns —
// strategies × targets × configurations — that COMPI executes one at a
// time. With the target registry immutable after Build and all per-target
// knobs moved into per-campaign parameter bags (core.Config.Params), those
// campaigns share no mutable state, so the grid becomes one multi-core run:
// a worker pool of up to GOMAXPROCS engines, a union coverage.Tracker per
// target, and one deduplicated error log.
//
// Determinism contract: each campaign's Result depends only on its Spec,
// never on scheduling order or worker count. Specs that need a non-default
// search strategy must use Config.NewStrategy (a factory) rather than
// Config.Strategy, so re-running a spec list never reuses a stateful
// strategy value.
package sched

import (
	"fmt"
	"io"
	"runtime"
	"sort"
	"sync"
	"time"

	"repro/internal/binstat"
	"repro/internal/core"
	"repro/internal/coverage"
	"repro/internal/proto"
	"repro/internal/solver"
	"repro/internal/spec"
	"repro/internal/store"
	"repro/internal/target"
)

// Spec describes one campaign the scheduler runs: the canonical data-only
// spec.Campaign plus the live, in-process overrides (custom strategies,
// backends, callbacks) that never serialize. Specs are values; running the
// same Spec twice yields the same Result.
//
// External campaigns (Campaign.External set) run against an out-of-process
// target: the scheduler starts one fresh instance of the binary for the
// campaign, drives it over the pipe protocol, and closes it when the
// campaign ends. The program model comes from the registry (when Target or
// Overrides.Program is set) or from the target's handshake manifest; either
// way the campaign flows through the same engine, so external and
// in-process specs mix freely in one batch and the determinism contract
// holds for both.
type Spec struct {
	spec.Campaign

	// Overrides carries the live objects this process runs the campaign
	// with. A spec with live Overrides (beyond Program/Solver wiring) is
	// not portable: it cannot be leased to a fleet worker or keyed into
	// the store — see Portable and SetupKey.
	Overrides spec.Overrides
}

// External is the out-of-process target descriptor, re-exported so callers
// build specs from one package.
type External = spec.External

func (s Spec) label() string {
	if s.Label != "" {
		return s.Label
	}
	return fmt.Sprintf("%s/seed%d", s.targetName(), s.Seed)
}

func (s Spec) targetName() string {
	if s.Overrides.Program != nil {
		return s.Overrides.Program.Name
	}
	return s.Campaign.TargetName()
}

// DisplayLabel is the campaign label a spec reports under — the explicit
// Label, or "<target>/seed<seed>". Exported for the fleet coordinator, which
// names leases and store entries the same way the scheduler does.
func (s Spec) DisplayLabel() string { return s.label() }

// TargetName is the target a spec's results are attributed to.
func (s Spec) TargetName() string { return s.targetName() }

// Portable returns the data-only campaign this spec ships as — in a fleet
// lease frame or a store batch manifest. Specs carrying live objects are
// refused with an error naming the field (spec.Portable is the check); a
// Program override dispatches by registry name.
func (s Spec) Portable() (spec.Campaign, error) {
	return spec.Portable(s.Campaign, s.Overrides, s.label())
}

// Config lowers the spec to the engine config this process would run:
// the campaign's data fields plus the live overrides. It fails only when
// the campaign names an unknown strategy.
func (s Spec) Config() (core.Config, error) {
	cfg, err := s.Campaign.EngineConfig()
	if err != nil {
		return core.Config{}, err
	}
	s.Overrides.Apply(&cfg)
	return cfg, nil
}

// Campaign is one scheduled campaign and its outcome.
type Campaign struct {
	Spec   Spec
	Label  string
	Target string
	Result core.Result
	Err    error // spec error (unknown target); the Result is zero

	// Reused is true when the Result was reattached from the campaign
	// store without running an engine: a prior batch already explored this
	// spec's canonical setup to at least the requested iterations.
	Reused bool
}

// Report is the merged outcome of a scheduler run.
type Report struct {
	// Campaigns holds one entry per input spec, in spec order regardless
	// of completion order.
	Campaigns []Campaign

	// Coverage is the union tracker per target name.
	Coverage map[string]*coverage.Tracker

	// Errors groups every campaign's error records per target, deduped by
	// the same key as core.Result.DistinctErrors (the message).
	Errors map[string]map[string][]core.ErrorRecord

	// Solver is the shared solver service's counter window for this run
	// (zero when the run was executed with private per-campaign solvers).
	Solver solver.Stats

	// WarmUnsat is the number of proven-UNSAT cache entries imported from
	// the campaign store before the batch started (0 without a store).
	WarmUnsat int

	// Profile is the batch's phase-profile window (nil unless the run was
	// given Options.Profiler): every campaign's engine bins plus the shared
	// solver service's, aggregated across the whole batch.
	Profile binstat.Report

	// BatchID is the store batch manifest this run wrote (empty without a
	// store).
	BatchID string

	Elapsed time.Duration
	Workers int
}

// DistinctErrorCount returns the number of distinct error keys across all
// targets.
func (r *Report) DistinctErrorCount() int {
	n := 0
	for _, m := range r.Errors {
		n += len(m)
	}
	return n
}

// Targets returns the target names appearing in the report, sorted.
func (r *Report) Targets() []string {
	names := make([]string, 0, len(r.Coverage))
	for n := range r.Coverage {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// WriteSummary prints the per-campaign table and per-target rollup the
// `compi sched` subcommand shows.
func (r *Report) WriteSummary(w io.Writer) {
	fmt.Fprintf(w, "%-28s %-10s %6s %8s %7s %9s\n",
		"campaign", "target", "iters", "covered", "errors", "elapsed")
	for _, c := range r.Campaigns {
		if c.Err != nil {
			fmt.Fprintf(w, "%-28s %-10s %s\n", c.Label, c.Target, c.Err)
			continue
		}
		elapsed := c.Result.Elapsed.Round(time.Millisecond).String()
		if c.Reused {
			elapsed = "(store)"
		}
		fmt.Fprintf(w, "%-28s %-10s %6d %8d %7d %9s\n",
			c.Label, c.Target, len(c.Result.Iterations),
			c.Result.Coverage.Count(), len(c.Result.Errors), elapsed)
	}
	for _, name := range r.Targets() {
		cov := r.Coverage[name]
		reach := 0
		if prog, ok := target.Lookup(name); ok {
			reach = prog.ReachableBranches(cov.Funcs())
		}
		fmt.Fprintf(w, "\n%s: %d branches covered (reachable est. %d), %d distinct errors\n",
			name, cov.Count(), reach, len(r.Errors[name]))
		msgs := make([]string, 0, len(r.Errors[name]))
		for msg := range r.Errors[name] {
			msgs = append(msgs, msg)
		}
		sort.Strings(msgs)
		for _, msg := range msgs {
			recs := r.Errors[name][msg]
			fmt.Fprintf(w, "  [%s] %s (%d hits, first inputs=%v)\n",
				recs[0].Status, msg, len(recs), recs[0].Inputs)
		}
	}
	for _, g := range r.Groups() {
		fmt.Fprintf(w, "\nshard group %s (%s): %d shards, %d iterations, %d branches covered, %d distinct errors\n",
			g.Group, g.Target, g.Shards, g.Iterations, g.Coverage.Count(), len(g.Errors))
	}
	if r.Solver.Calls > 0 {
		fmt.Fprintf(w, "\n%s\n", r.Solver.Summary())
	}
	if len(r.Profile) > 0 {
		fmt.Fprintf(w, "\n%s", r.Profile.String())
	}
	if r.BatchID != "" {
		fmt.Fprintf(w, "\nstore batch %s (%d warm unsat entries)\n", r.BatchID, r.WarmUnsat)
	}
	fmt.Fprintf(w, "\n%d campaigns, %d workers, %s\n",
		len(r.Campaigns), r.Workers, r.Elapsed.Round(time.Millisecond))
}

// Options configures a scheduler run.
type Options struct {
	// Workers bounds the number of concurrently running engines; <= 0
	// selects GOMAXPROCS.
	Workers int

	// Trace, when non-nil, receives every campaign's iteration stats live,
	// tagged with the campaign label. The scheduler serializes calls, so
	// the callback need not be safe for concurrent use. Ordering across
	// campaigns follows completion time and is not deterministic.
	Trace func(label string, it core.IterationStat)

	// Solver, when non-nil, is the shared solver service every campaign in
	// the batch uses (specs whose Config.Solver is already set keep their
	// own). When nil, Run constructs one solver.Service for the batch —
	// sharded campaigns negate overlapping path prefixes, so sharing the
	// SAT/UNSAT caches across them is where the batching win comes from.
	// Sharing is safe for the determinism contract because a service hit
	// returns exactly what the live solve would (see core.SolverService).
	Solver core.SolverService

	// PrivateSolvers disables the shared service: every campaign gets the
	// engine's default private solver.Service. Trajectories are identical
	// either way; this exists for cache-attribution tests and benchmarks.
	PrivateSolvers bool

	// Profiler, when non-nil, is shared by every campaign in the batch
	// (specs whose Config.Profiler is already set keep their own) and by the
	// shared solver service, so the Report's Profile aggregates the whole
	// batch's phase bins. Profiling is observational: trajectories are
	// byte-identical with or without it.
	Profiler *binstat.Profiler

	// Store, when non-nil, makes the batch durable: campaign snapshots are
	// checkpointed into the store as they run, a batch manifest tracks
	// progress, the shared solver service starts warm from the store-wide
	// UNSAT cache (and merges its new refutations back at the end — the
	// cache is keyed on target-independent canonical forms, so batches on
	// different targets warm each other), campaign index entries are
	// written at each completion, and specs whose canonical setup a prior
	// batch already explored are resumed or reattached instead of re-run
	// (see persist.go). Determinism is unaffected: resumed and reattached
	// results are identical to freshly computed ones.
	Store *store.Store

	// BatchID names this run's batch manifest in the store; empty derives
	// a stable ID from the spec list, so re-running the same batch resumes
	// it.
	BatchID string

	// CheckpointEvery is the per-campaign snapshot cadence in iterations
	// for store-backed runs (default 1: every iteration).
	CheckpointEvery int
}

// Run executes every spec through a worker pool and returns the merged
// report. The per-campaign Results are deterministic in the specs alone;
// only wall-clock fields (Elapsed, RunTime) vary between runs.
func Run(specs []Spec, opt Options) *Report {
	workers := opt.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(specs) {
		workers = len(specs)
	}
	if workers < 1 {
		workers = 1
	}

	rep := &Report{
		Campaigns: make([]Campaign, len(specs)),
		Coverage:  map[string]*coverage.Tracker{},
		Errors:    map[string]map[string][]core.ErrorRecord{},
		Workers:   workers,
	}
	start := time.Now()

	// One solver service per batch: campaigns negating overlapping path
	// prefixes (shards of one target in particular) reuse each other's
	// SAT results and proven-UNSAT sets.
	shared := opt.Solver
	if shared == nil && !opt.PrivateSolvers {
		shared = solver.NewService(solver.ServiceConfig{Profiler: opt.Profiler})
	}
	var solver0 solver.Stats
	if shared != nil {
		solver0 = shared.Stats()
	}
	prof0 := opt.Profiler.Report()

	// Campaign store wiring: warm the shared service from the persisted
	// UNSAT cache (proven refutations are run-independent, so this cannot
	// perturb trajectories) and open the batch manifest.
	var bp *batchPersist
	if opt.Store != nil {
		if svc, ok := shared.(*solver.Service); ok {
			if n, err := opt.Store.LoadSolverCacheInto(svc); err == nil {
				rep.WarmUnsat = n
			}
		}
		bp = newBatchPersist(opt.Store, opt.BatchID, specs)
		rep.BatchID = bp.man.ID
	}

	var traceMu sync.Mutex
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				runOne(&rep.Campaigns[i], specs[i], shared, opt.Profiler, opt.Trace, &traceMu, bp, i, opt.CheckpointEvery)
			}
		}()
	}
	for i := range specs {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	rep.Elapsed = time.Since(start)
	if shared != nil {
		rep.Solver = shared.Stats().Delta(solver0)
	}
	if opt.Profiler != nil {
		rep.Profile = opt.Profiler.Report().Delta(prof0)
	}
	if opt.Store != nil {
		if svc, ok := shared.(*solver.Service); ok {
			opt.Store.SaveSolverCache(svc)
		}
	}

	rep.mergeCampaigns()
	return rep
}

// BuildReport assembles the merged report over a completed campaign list:
// union coverage per target and deduped errors, merged in campaign (spec)
// order so the report is deterministic given the campaigns. Run uses it for
// the single-process path; the fleet coordinator feeds it the campaigns its
// workers completed, which is what pins a fleet report equal to sched.Run
// over the same specs.
func BuildReport(campaigns []Campaign, workers int) *Report {
	rep := &Report{
		Campaigns: campaigns,
		Coverage:  map[string]*coverage.Tracker{},
		Errors:    map[string]map[string][]core.ErrorRecord{},
		Workers:   workers,
	}
	rep.mergeCampaigns()
	return rep
}

// mergeCampaigns folds every campaign's Result into the per-target rollups,
// in campaign order.
func (r *Report) mergeCampaigns() {
	for i := range r.Campaigns {
		c := &r.Campaigns[i]
		if c.Err != nil {
			continue
		}
		cov := r.Coverage[c.Target]
		if cov == nil {
			cov = coverage.New()
			r.Coverage[c.Target] = cov
		}
		cov.Merge(c.Result.Coverage)
		for msg, recs := range c.Result.DistinctErrors() {
			byMsg := r.Errors[c.Target]
			if byMsg == nil {
				byMsg = map[string][]core.ErrorRecord{}
				r.Errors[c.Target] = byMsg
			}
			byMsg[msg] = append(byMsg[msg], recs...)
		}
	}
}

// runOne executes a single campaign in the calling worker goroutine.
func runOne(c *Campaign, sp Spec, shared core.SolverService, prof *binstat.Profiler, trace func(string, core.IterationStat), traceMu *sync.Mutex, bp *batchPersist, idx int, every int) {
	c.Spec = sp
	c.Label = sp.label()
	c.Target = sp.targetName()

	// Store consultation happens before anything is started (in particular
	// before an external target process is spawned): a reused campaign
	// costs one snapshot read.
	var resume *core.Snapshot
	persisted := bp != nil && bp.keys[idx] != ""
	if persisted {
		defer func() {
			if c.Err != nil {
				bp.update(idx, func(e *store.BatchEntry) {
					e.Status = store.StatusError
					e.Error = c.Err.Error()
				})
			}
		}()
	}
	if persisted {
		wanted := WantedIters(sp.Iterations)
		if rec, ok := bp.st.Explored(bp.keys[idx]); ok {
			if snap, err := bp.st.LoadCampaign(rec.Campaign); err == nil {
				if sp.TimeBudget == 0 && snap.Iters >= wanted {
					c.Result = snap.Result()
					c.Reused = true
					// Upsert the campaign index even on reuse: it heals
					// stores written before the index existed without a
					// manual Reindex, and is idempotent otherwise (the
					// entry derives from the same snapshot).
					bp.st.IndexCampaign(bp.keys[idx], rec, snap)
					bp.update(idx, func(e *store.BatchEntry) {
						e.Status = store.StatusReused
						e.Campaign = rec.Campaign
						e.Iters = snap.Iters
					})
					return
				}
				resume = snap
			}
		}
	}

	cfg, err := sp.Config()
	if err != nil {
		c.Err = fmt.Errorf("sched: spec %q: %w", c.Label, err)
		return
	}
	if cfg.Solver == nil {
		cfg.Solver = shared
	}
	if cfg.Profiler == nil {
		cfg.Profiler = prof
	}
	if sp.External != nil {
		drv, err := proto.Start(sp.External.Bin, proto.Options{
			Args: sp.External.Args,
			Env:  sp.External.Env,
		})
		if err != nil {
			c.Err = fmt.Errorf("sched: external target for %q: %w", c.Label, err)
			return
		}
		defer drv.Close()
		cfg.Backend = drv
		if cfg.Program == nil && sp.Target == "" {
			prog, err := drv.Program()
			if err != nil {
				c.Err = fmt.Errorf("sched: external target for %q: %w", c.Label, err)
				return
			}
			cfg.Program = prog
			c.Target = prog.Name
		}
	}
	if cfg.Program == nil {
		prog, ok := target.Lookup(sp.Target)
		if !ok {
			c.Err = fmt.Errorf("sched: unknown target %q", sp.Target)
			return
		}
		cfg.Program = prog
	}
	if trace != nil {
		label := c.Label
		inner := cfg.Trace
		cfg.Trace = func(it core.IterationStat) {
			traceMu.Lock()
			trace(label, it)
			traceMu.Unlock()
			if inner != nil {
				inner(it)
			}
		}
	}
	if persisted {
		name := bp.campaignName(idx, sp)
		bp.update(idx, func(e *store.BatchEntry) {
			e.Status = store.StatusRunning
			e.Campaign = name
		})
		innerCkpt := cfg.Checkpoint
		cfg.CheckpointEvery = every
		cfg.Checkpoint = func(snap *core.Snapshot) {
			bp.st.SaveCampaign(name, snap)
			if innerCkpt != nil {
				innerCkpt(snap)
			}
		}
		eng := core.NewEngine(cfg)
		if resume != nil {
			if err := eng.Restore(resume); err != nil {
				// A stale or corrupt stored snapshot must never fail the
				// campaign: discard it and run cold.
				resume = nil
				eng = core.NewEngine(cfg)
			}
		}
		c.Result = eng.Run()
		final := eng.Snapshot()
		bp.st.SaveCampaign(name, final)
		rec := store.SetupRecord{Campaign: name, Iters: final.Iters, Batch: bp.man.ID}
		bp.st.MarkExplored(bp.keys[idx], rec)
		bp.st.IndexCampaign(bp.keys[idx], rec, final)
		bp.update(idx, func(e *store.BatchEntry) {
			e.Status = store.StatusDone
			e.Iters = final.Iters
		})
		return
	}
	c.Result = core.NewEngine(cfg).Run()
}
