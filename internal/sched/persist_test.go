package sched

import (
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/coverage"
	"repro/internal/spec"
	"repro/internal/store"
	"repro/internal/target"
	"repro/internal/targets/stencil"
	"repro/internal/targets/susy"
)

func storeSpecs(iters int) []Spec {
	stSpec := Spec{Campaign: spec.Campaign{
		Target: "stencil",
		Seed:   11,
		Iterations: iters, Reduction: true, Framework: true,
		Params: stencil.FixAll(), DFSPhase: 10,
		RunTimeout: 5 * time.Second,
	}}
	sk := skeletonSpec(3)
	sk.Iterations = iters
	return []Spec{sk, stSpec}
}

// TestDeriveBatchIDGolden pins the derived batch ID for the grid the old CLI
// built from `compi sched -targets skeleton -seeds 3,4 -iters 60`: batch IDs
// are store filenames, so a changed derivation would strand every existing
// batch manifest. Captured from the pre-spec implementation.
func TestDeriveBatchIDGolden(t *testing.T) {
	grid := core.MergeParams(susy.FixAll(), stencil.FixAll())
	mk := func(seed int64) Spec {
		return Spec{Campaign: spec.Campaign{
			Target: "skeleton", Seed: seed, Params: grid,
			Iterations: 60, InitialProcs: 8, MaxProcs: 16,
			Reduction: true, Framework: true, DFSPhase: 50,
			RunTimeout: 30 * time.Second,
		}}
	}
	if got := DeriveBatchID([]Spec{mk(3), mk(4)}); got != "batch-2ce6a0ac773d" {
		t.Fatalf("DeriveBatchID = %q, want legacy batch-2ce6a0ac773d", got)
	}
}

func openStore(t *testing.T) *store.Store {
	t.Helper()
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	return st
}

func TestSetupKeyContract(t *testing.T) {
	a := skeletonSpec(1)
	b := skeletonSpec(1)
	b.Iterations = a.Iterations * 3
	b.TimeBudget = time.Hour
	ka, ok := SetupKey(a)
	if !ok {
		t.Fatal("plain spec not persistable")
	}
	if kb, _ := SetupKey(b); kb != ka {
		t.Fatal("iteration/time budget changed the setup key")
	}
	c := skeletonSpec(2)
	if kc, _ := SetupKey(c); kc == ka {
		t.Fatal("different seeds share a setup key")
	}
	s := skeletonSpec(1)
	s.Schedules = true
	if ks, _ := SetupKey(s); ks == ka {
		t.Fatal("schedule-space exploration did not change the setup key")
	}
	d := skeletonSpec(1)
	d.Overrides.NewStrategy = func(*target.Program, *coverage.Tracker) core.Strategy { return core.NewBoundedDFS(4) }
	if _, ok := SetupKey(d); ok {
		t.Fatal("spec with a live strategy factory reported persistable")
	}
}

// TestStoreBatchResumeEqualsFresh is the scheduler half of the resume
// determinism contract: a batch run to k iterations, then re-run (same
// store, same derived batch ID) to n, must match a storeless n-iteration
// batch in every deterministic dimension.
func TestStoreBatchResumeEqualsFresh(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign test")
	}
	const k, n = 12, 30
	want := fingerprintOf(Run(storeSpecs(n), Options{Workers: 2}))

	st := openStore(t)
	rep1 := Run(storeSpecs(k), Options{Workers: 2, Store: st})
	if rep1.BatchID == "" {
		t.Fatal("store-backed run reported no batch ID")
	}
	for _, c := range rep1.Campaigns {
		if c.Err != nil || c.Reused {
			t.Fatalf("first batch campaign %q: err=%v reused=%v", c.Label, c.Err, c.Reused)
		}
	}

	rep2 := Run(storeSpecs(n), Options{Workers: 2, Store: st})
	if rep2.BatchID != rep1.BatchID {
		t.Fatalf("resumed batch got a new ID: %s vs %s", rep2.BatchID, rep1.BatchID)
	}
	for _, c := range rep2.Campaigns {
		if c.Err != nil {
			t.Fatalf("resumed campaign %q: %v", c.Label, c.Err)
		}
		if len(c.Result.Iterations) != n {
			t.Fatalf("resumed campaign %q spans %d iterations, want %d",
				c.Label, len(c.Result.Iterations), n)
		}
	}
	if got := fingerprintOf(rep2); !reflect.DeepEqual(got, want) {
		t.Fatal("resumed batch differs from the uninterrupted reference")
	}

	man, err := st.LoadBatch(rep2.BatchID)
	if err != nil || man == nil {
		t.Fatalf("manifest: %v %v", man, err)
	}
	for _, e := range man.Entries {
		if e.Status != store.StatusDone || e.Iters != n {
			t.Fatalf("manifest entry %+v not done at %d", e, n)
		}
	}
}

// TestStoreCrossBatchReuse pins the dedup: re-running an already-complete
// batch answers every campaign from the store without an engine run.
func TestStoreCrossBatchReuse(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign test")
	}
	const n = 25
	st := openStore(t)
	rep1 := Run(storeSpecs(n), Options{Workers: 2, Store: st})
	want := fingerprintOf(rep1)

	rep2 := Run(storeSpecs(n), Options{Workers: 2, Store: st})
	for _, c := range rep2.Campaigns {
		if c.Err != nil || !c.Reused {
			t.Fatalf("campaign %q not reused: err=%v", c.Label, c.Err)
		}
		if len(c.Result.Iterations) != n {
			t.Fatalf("reused campaign %q lost history: %d iterations", c.Label, len(c.Result.Iterations))
		}
	}
	if got := fingerprintOf(rep2); !reflect.DeepEqual(got, want) {
		t.Fatal("reused results differ from the originals")
	}
	man, _ := st.LoadBatch(rep2.BatchID)
	for _, e := range man.Entries {
		if e.Status != store.StatusReused {
			t.Fatalf("entry %+v not marked reused", e)
		}
	}
	// A shorter re-run is also answered from the store (prefix property).
	rep3 := Run(storeSpecs(10), Options{Workers: 1, Store: st})
	for _, c := range rep3.Campaigns {
		if !c.Reused {
			t.Fatalf("shorter re-run of %q not reused", c.Label)
		}
	}
}

// TestStoreWarmCacheDoesNotPerturb runs a second, differently-seeded batch
// against a store warmed by the first: the imported proven-UNSAT entries
// must be visible (WarmUnsat) without changing the second batch's results
// relative to a cold, storeless run.
func TestStoreWarmCacheDoesNotPerturb(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign test")
	}
	mkSpecs := func() []Spec {
		a := skeletonSpec(21)
		a.Iterations = 30
		b := skeletonSpec(22)
		b.Iterations = 30
		return []Spec{a, b}
	}
	cold := fingerprintOf(Run(mkSpecs(), Options{Workers: 2}))

	st := openStore(t)
	seedSpecs := []Spec{skeletonSpec(7)}
	seedSpecs[0].Iterations = 40
	rep0 := Run(seedSpecs, Options{Workers: 1, Store: st})
	if rep0.Solver.Misses == 0 {
		t.Fatal("seeding batch never solved")
	}

	warm := Run(mkSpecs(), Options{Workers: 2, Store: st})
	if warm.WarmUnsat == 0 {
		t.Fatal("second batch imported no UNSAT entries")
	}
	if got := fingerprintOf(warm); !reflect.DeepEqual(got, cold) {
		t.Fatal("warm cache changed campaign results")
	}
}

// TestStoreSkipsNonPersistableSpecs checks a spec the store cannot key
// (live strategy factory) still runs normally alongside persisted ones.
func TestStoreSkipsNonPersistableSpecs(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign test")
	}
	st := openStore(t)
	free := skeletonSpec(5)
	free.Label = "free"
	free.Iterations = 10
	free.Overrides.NewStrategy = func(*target.Program, *coverage.Tracker) core.Strategy { return core.NewBoundedDFS(6) }
	kept := skeletonSpec(6)
	kept.Iterations = 10
	specs := []Spec{free, kept}

	rep := Run(specs, Options{Workers: 2, Store: st})
	for _, c := range rep.Campaigns {
		if c.Err != nil {
			t.Fatal(c.Err)
		}
	}
	man, _ := st.LoadBatch(rep.BatchID)
	if man.Entries[0].Key != "" || man.Entries[0].Status != store.StatusPending {
		t.Fatalf("non-persistable entry recorded as %+v", man.Entries[0])
	}
	if man.Entries[1].Status != store.StatusDone {
		t.Fatalf("persistable entry %+v", man.Entries[1])
	}

	rep2 := Run(specs, Options{Workers: 2, Store: st})
	if rep2.Campaigns[0].Reused {
		t.Fatal("non-persistable campaign reused")
	}
	if !rep2.Campaigns[1].Reused {
		t.Fatal("persistable campaign not reused")
	}
}

// TestStoreCompactPreservesResume pins the compaction safety contract:
// compacting a store between batches changes nothing about how the next
// batch resumes. Two stores run the same short-batch → longer-batch sequence
// under changing labels (which is what strands superseded snapshot files);
// one compacts between every step, the other never does, and both must end
// at the uninterrupted reference fingerprint.
func TestStoreCompactPreservesResume(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign test")
	}
	const k, n = 12, 30
	want := fingerprintOf(Run(storeSpecs(n), Options{Workers: 2}))

	relabel := func(iters int, tag string) []Spec {
		specs := storeSpecs(iters)
		for i := range specs {
			specs[i].Label = tag + "/" + specs[i].label()
		}
		return specs
	}
	runSeq := func(st *store.Store, compact bool) *Report {
		step := func() {
			if compact {
				if _, err := st.Compact(); err != nil {
					t.Fatal(err)
				}
			}
		}
		Run(relabel(k, "v1"), Options{Workers: 2, Store: st})
		step()
		Run(relabel(n, "v2"), Options{Workers: 2, Store: st})
		step()
		return Run(relabel(n, "v3"), Options{Workers: 2, Store: st})
	}

	plain := runSeq(openStore(t), false)
	stC := openStore(t)
	compacted := runSeq(stC, true)
	for _, c := range compacted.Campaigns {
		if c.Err != nil || !c.Reused {
			t.Fatalf("final compacted batch campaign %q: err=%v reused=%v", c.Label, c.Err, c.Reused)
		}
	}
	got := fingerprintOf(compacted)
	if !reflect.DeepEqual(got, fingerprintOf(plain)) {
		t.Fatal("resume after compact diverged from resume without compact")
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("compacted-store sequence diverged from the uninterrupted reference")
	}

	// The v2 resume moved the index off v1's files, so the final compact
	// actually dropped them — the test would vacuously pass otherwise.
	stats, err := stC.Compact()
	if err != nil {
		t.Fatal(err)
	}
	if len(stats.Removed) != 0 {
		t.Fatalf("final compact left work behind: %+v", stats)
	}
	names, _ := stC.Campaigns()
	for _, name := range names {
		if strings.HasPrefix(name, "v1-") {
			t.Fatalf("superseded v1 snapshot survived compaction: %v", names)
		}
	}
}
