package sched

import (
	"reflect"
	"strings"
	"testing"

	"repro/internal/conc"
	"repro/internal/solver"
)

// TestShardPartition pins the static properties of the shard set: shard 0 is
// the base setup, setups are distinct until they wrap, wrapped shards get a
// perturbed seed, and every shard carries the group label.
func TestShardPartition(t *testing.T) {
	base := skeletonSpec(7)
	base.InitialProcs = 4
	base.MaxProcs = 8
	base.InitialFocus = 2

	if got := Shard(base, 1); len(got) != 1 || !reflect.DeepEqual(got[0], base) {
		t.Fatalf("Shard(n=1) must return the base spec unchanged: %+v", got)
	}

	n := 6
	shards := Shard(base, n)
	if len(shards) != n {
		t.Fatalf("want %d shards, got %d", n, len(shards))
	}
	if shards[0].InitialProcs != 4 || shards[0].InitialFocus != 2 {
		t.Fatalf("shard 0 must keep the base setup, got procs=%d focus=%d",
			shards[0].InitialProcs, shards[0].InitialFocus)
	}
	type setup struct{ np, f int }
	seen := map[setup]int{}
	for i, s := range shards {
		if s.Group != base.label() {
			t.Fatalf("shard %d group = %q, want %q", i, s.Group, base.label())
		}
		if !strings.Contains(s.Label, "/shard") {
			t.Fatalf("shard %d label = %q", i, s.Label)
		}
		if s.InitialProcs < 1 || s.InitialProcs > 8 {
			t.Fatalf("shard %d procs = %d out of range", i, s.InitialProcs)
		}
		if s.InitialFocus < 0 || s.InitialFocus >= s.InitialProcs {
			t.Fatalf("shard %d focus = %d for %d procs", i, s.InitialFocus, s.InitialProcs)
		}
		seen[setup{s.InitialProcs, s.InitialFocus}]++
	}
	if len(seen) != n {
		t.Fatalf("expected %d distinct setups, got %d: %v", n, len(seen), seen)
	}
}

func TestShardWrapPerturbsSeed(t *testing.T) {
	base := skeletonSpec(7)
	base.InitialProcs = 2
	base.MaxProcs = 2
	// Setups available: (2,0), (2,1), (1,0) — ask for 5 so two shards wrap.
	shards := Shard(base, 5)
	if len(shards) != 5 {
		t.Fatalf("want 5 shards, got %d", len(shards))
	}
	for i := 3; i < 5; i++ {
		if shards[i].Seed == base.Seed {
			t.Fatalf("wrapped shard %d kept the base seed; it would duplicate shard %d exactly", i, i-3)
		}
		if shards[i].InitialProcs != shards[i-3].InitialProcs ||
			shards[i].InitialFocus != shards[i-3].InitialFocus {
			t.Fatalf("wrapped shard %d should reuse shard %d's setup", i, i-3)
		}
	}
}

// TestShardedRunDeterministicAndMerged is the sharding acceptance test: a
// sharded batch produces the same per-campaign coverage and merged group
// rollup at 1 and 4 workers, with the shared solver service in play; the
// group rollup equals the union of its members; and running the same batch
// with private per-campaign solvers changes nothing.
func TestShardedRunDeterministicAndMerged(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign test")
	}
	mkSpecs := func() []Spec {
		base := skeletonSpec(3)
		base.Iterations = 30
		base.InitialProcs = 4
		base.MaxProcs = 8
		return Shard(base, 4)
	}

	serial := Run(mkSpecs(), Options{Workers: 1})
	wide := Run(mkSpecs(), Options{Workers: 4})
	private := Run(mkSpecs(), Options{Workers: 4, PrivateSolvers: true})

	fpS, fpW, fpP := fingerprintOf(serial), fingerprintOf(wide), fingerprintOf(private)
	if !reflect.DeepEqual(fpS, fpW) {
		t.Fatal("sharded batch diverged between -j1 and -j4")
	}
	if !reflect.DeepEqual(fpS, fpP) {
		t.Fatal("shared solver service changed campaign trajectories vs private solvers")
	}
	if serial.Solver.Calls == 0 {
		t.Fatal("shared service saw no calls")
	}
	if private.Solver.Calls != 0 {
		t.Fatalf("PrivateSolvers run still reported shared-service stats: %+v", private.Solver)
	}

	for _, rep := range []*Report{serial, wide} {
		groups := rep.Groups()
		if len(groups) != 1 {
			t.Fatalf("want one shard group, got %d", len(groups))
		}
		g := groups[0]
		if g.Shards != 4 || g.Target != "skeleton" {
			t.Fatalf("bad group rollup: %+v", g)
		}
		// The rollup is the union of the members and matches the per-target
		// merged tracker (this batch is all one target).
		union := map[conc.BranchBit]struct{}{}
		iters := 0
		for _, c := range rep.Campaigns {
			if c.Err != nil {
				t.Fatalf("campaign %s: %v", c.Label, c.Err)
			}
			for _, b := range c.Result.Coverage.Branches() {
				union[b] = struct{}{}
			}
			iters += len(c.Result.Iterations)
		}
		if g.Coverage.Count() != len(union) {
			t.Fatalf("group coverage %d != union of members %d", g.Coverage.Count(), len(union))
		}
		if g.Iterations != iters {
			t.Fatalf("group iterations %d != sum of members %d", g.Iterations, iters)
		}
		if !reflect.DeepEqual(g.Coverage.Branches(), rep.Coverage["skeleton"].Branches()) {
			t.Fatal("group coverage differs from the per-target merged tracker")
		}
	}

	// Shard 0 is the base spec, so the group strictly extends an unsharded
	// run of the same spec.
	baseRep := Run([]Spec{mkSpecs()[0]}, Options{Workers: 1})
	baseCov := baseRep.Campaigns[0].Result.Coverage
	group := serial.Groups()[0]
	for _, b := range baseCov.Branches() {
		if !group.Coverage.Covered(b) {
			t.Fatalf("group rollup lost branch %v covered by the base shard", b)
		}
	}
}

// TestSharedServiceAcrossTargets: an explicit service passed in Options is
// used (and accumulates) across separate Run batches.
func TestSharedServiceAcrossTargets(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign test")
	}
	svc := solver.NewService(solver.ServiceConfig{})
	r1 := Run([]Spec{skeletonSpec(9)}, Options{Workers: 1, Solver: svc})
	first := svc.Stats()
	if r1.Solver.Calls != first.Calls || first.Calls == 0 {
		t.Fatalf("batch window %d != service counters %d", r1.Solver.Calls, first.Calls)
	}
	// The second, identical batch is served largely from the warm caches and
	// must produce the identical campaign.
	r2 := Run([]Spec{skeletonSpec(9)}, Options{Workers: 1, Solver: svc})
	delta := svc.Stats().Delta(first)
	if delta.SATHits+delta.UnsatHits == 0 {
		t.Fatalf("warm rerun hit nothing: %+v", delta)
	}
	if !reflect.DeepEqual(r1.Campaigns[0].Result.Coverage.Branches(),
		r2.Campaigns[0].Result.Coverage.Branches()) {
		t.Fatal("warm rerun changed coverage")
	}
}

// TestWriteSummaryShardGroups: the summary includes the rollup line and the
// solver-service line.
func TestWriteSummaryShardGroups(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign test")
	}
	base := skeletonSpec(3)
	base.Iterations = 10
	rep := Run(Shard(base, 2), Options{Workers: 2})
	var b strings.Builder
	rep.WriteSummary(&b)
	out := b.String()
	if !strings.Contains(out, "shard group skeleton/seed3") {
		t.Fatalf("summary missing shard group rollup:\n%s", out)
	}
	if !strings.Contains(out, "solver service:") {
		t.Fatalf("summary missing solver service line:\n%s", out)
	}
	if !strings.Contains(out, "2 shards") {
		t.Fatalf("summary missing shard count:\n%s", out)
	}
}
