package sched

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"path/filepath"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/store"
)

// This file is the scheduler's side of the campaign store: batch manifests,
// per-campaign checkpointing, and cross-batch setup dedup. The flow per
// campaign, when Options.Store is set and the spec is persistable:
//
//  1. Look the spec's canonical setup key up in the store's setup index.
//     A stored exploration that already covers the requested iterations is
//     *reused*: the Result is reconstructed from the snapshot, no engine
//     runs, and the report marks the campaign as answered from the store.
//  2. A stored exploration that is shorter than requested is *resumed*: the
//     engine restores the snapshot and runs the remaining iterations —
//     identical, by the snapshot determinism contract, to having run the
//     whole campaign at once.
//  3. While running, the engine checkpoints its snapshot into the store
//     every iteration (Options.CheckpointEvery overrides the cadence), so a
//     killed batch loses at most the in-flight iteration.
//  4. On completion the final snapshot is saved and the setup index updated.
//
// Steps 1 and 2 are what make a partially-completed batch resumable: re-run
// the same batch and every finished campaign reattaches instantly, every
// interrupted one continues where its last checkpoint left off.

// setupKeyState is the canonical initial state a campaign's exploration is
// determined by. Iterations and TimeBudget are deliberately excluded: they
// say how *long* to explore, not *what* — a 50-iteration run is a prefix of
// the 100-iteration run of the same state, which is exactly what lets a
// later batch resume or reuse it. SnapshotVersion is included so snapshots
// from an incompatible schema never collide with current keys.
type setupKeyState struct {
	Target       string           `json:"target"`
	External     string           `json:"external,omitempty"`
	Snapshot     int              `json:"snapshot"`
	Seed         int64            `json:"seed"`
	InitialProcs int              `json:"initialProcs"`
	InitialFocus int              `json:"initialFocus"`
	MaxProcs     int              `json:"maxProcs"`
	Reduction    bool             `json:"reduction"`
	DepthBound   int              `json:"depthBound"`
	DFSPhase     int              `json:"dfsPhase"`
	OneWay       bool             `json:"oneWay"`
	Framework    bool             `json:"framework"`
	PureRandom   bool             `json:"pureRandom"`
	Schedules    bool             `json:"schedules,omitempty"`
	RunTimeout   time.Duration    `json:"runTimeout"`
	MaxTicks     int64            `json:"maxTicks"`
	MaxNodes     int              `json:"maxNodes"`
	Params       map[string]int64 `json:"params,omitempty"`
	Inputs       map[string]int64 `json:"inputs,omitempty"`
}

// SetupKey returns the canonical setup key of a spec, or ok=false when the
// spec is not persistable: a Config carrying live objects the key cannot
// name (a custom Strategy or strategy factory, a caller-owned Backend)
// explores a trajectory the store cannot promise to reproduce. The fleet
// coordinator keys its shard store entries with the same function, so a
// fleet store and a sched store dedup against each other.
func SetupKey(spec Spec) (string, bool) {
	cfg := spec.Config
	if cfg.Strategy != nil || cfg.NewStrategy != nil || cfg.Backend != nil {
		return "", false
	}
	st := setupKeyState{
		Target:       spec.targetName(),
		Snapshot:     core.SnapshotVersion,
		Seed:         spec.seed(),
		InitialProcs: cfg.InitialProcs,
		InitialFocus: cfg.InitialFocus,
		MaxProcs:     cfg.MaxProcs,
		Reduction:    cfg.Reduction,
		DepthBound:   cfg.DepthBound,
		DFSPhase:     cfg.DFSPhase,
		OneWay:       cfg.OneWay,
		Framework:    cfg.Framework,
		PureRandom:   cfg.PureRandom,
		Schedules:    cfg.Schedules,
		RunTimeout:   cfg.RunTimeout,
		MaxTicks:     cfg.MaxTicks,
		MaxNodes:     cfg.SolverMaxNodes,
		Params:       cfg.Params,
		Inputs:       cfg.Inputs,
	}
	if spec.External != nil {
		st.External = filepath.Base(spec.External.Bin) + " " + fmt.Sprint(spec.External.Args)
	}
	b, err := json.Marshal(st) // map keys sort, so the encoding is canonical
	if err != nil {
		return "", false
	}
	return fmt.Sprintf("%x", sha256.Sum256(b))[:24], true
}

// WantedIters is the iteration budget a Config asks for, with the engine's
// default applied (core.Config.withDefaults uses 100).
func WantedIters(cfg core.Config) int {
	if cfg.Iterations == 0 {
		return 100
	}
	return cfg.Iterations
}

// DeriveBatchID names a batch from its specs when the caller didn't: a
// stable hash of the labels and setup keys, so re-running the same spec
// list resumes the same store batch.
func DeriveBatchID(specs []Spec) string {
	keys := make([]string, len(specs))
	for i, sp := range specs {
		keys[i], _ = SetupKey(sp)
	}
	return deriveBatchID(specs, keys)
}

// deriveBatchID is DeriveBatchID over precomputed keys.
func deriveBatchID(specs []Spec, keys []string) string {
	h := sha256.New()
	for i, sp := range specs {
		fmt.Fprintf(h, "%s\x00%s\n", sp.label(), keys[i])
	}
	return fmt.Sprintf("batch-%x", h.Sum(nil))[:18]
}

// batchPersist carries one run's store wiring: the open store, the batch
// manifest, and the per-spec setup keys. Workers mutate manifest entries
// concurrently, so all updates go through the mutex.
type batchPersist struct {
	st   *store.Store
	keys []string
	mu   sync.Mutex
	man  *store.BatchManifest
}

// newBatchPersist computes the spec keys and creates (or reloads) the batch
// manifest.
func newBatchPersist(st *store.Store, batchID string, specs []Spec) *batchPersist {
	bp := &batchPersist{st: st, keys: make([]string, len(specs))}
	for i, sp := range specs {
		bp.keys[i], _ = SetupKey(sp)
	}
	if batchID == "" {
		batchID = deriveBatchID(specs, bp.keys)
	}
	man, err := st.LoadBatch(batchID)
	if err != nil || man == nil || len(man.Entries) != len(specs) {
		man = &store.BatchManifest{ID: batchID, Entries: make([]store.BatchEntry, len(specs))}
	}
	for i, sp := range specs {
		e := &man.Entries[i]
		e.Label = sp.label()
		e.Key = bp.keys[i]
		if e.Status == "" || e.Status == store.StatusRunning {
			// Fresh entry, or one left mid-flight by a killed batch — the
			// campaign snapshot (if any) carries the real progress.
			e.Status = store.StatusPending
		}
	}
	bp.man = man
	st.SaveBatch(man)
	return bp
}

// campaignName is the campaign file a spec persists under.
func (bp *batchPersist) campaignName(i int, spec Spec) string {
	return store.CampaignName(spec.label(), bp.keys[i])
}

// update applies fn to entry i under the lock and writes the manifest.
func (bp *batchPersist) update(i int, fn func(*store.BatchEntry)) {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	fn(&bp.man.Entries[i])
	bp.st.SaveBatch(bp.man)
}
