package sched

import (
	"crypto/sha256"
	"fmt"
	"strings"
	"sync"

	"repro/internal/spec"
	"repro/internal/store"
)

// This file is the scheduler's side of the campaign store: batch manifests,
// per-campaign checkpointing, and cross-batch setup dedup. The flow per
// campaign, when Options.Store is set and the spec is persistable:
//
//  1. Look the spec's canonical setup key up in the store's setup index.
//     A stored exploration that already covers the requested iterations is
//     *reused*: the Result is reconstructed from the snapshot, no engine
//     runs, and the report marks the campaign as answered from the store.
//  2. A stored exploration that is shorter than requested is *resumed*: the
//     engine restores the snapshot and runs the remaining iterations —
//     identical, by the snapshot determinism contract, to having run the
//     whole campaign at once.
//  3. While running, the engine checkpoints its snapshot into the store
//     every iteration (Options.CheckpointEvery overrides the cadence), so a
//     killed batch loses at most the in-flight iteration.
//  4. On completion the final snapshot is saved and the setup index updated.
//
// Steps 1 and 2 are what make a partially-completed batch resumable: re-run
// the same batch and every finished campaign reattaches instantly, every
// interrupted one continues where its last checkpoint left off.

// SetupKey returns the canonical setup key of a spec, or ok=false when the
// spec is not persistable: live Overrides the key cannot name (a custom
// Strategy or strategy factory, a caller-owned Backend) explore a trajectory
// the store cannot promise to reproduce. The key itself is
// spec.Campaign.Canonical — one definition shared by the store index, the
// batch manifests, and the fleet coordinator, so a fleet store and a sched
// store dedup against each other.
func SetupKey(sp Spec) (string, bool) {
	o := sp.Overrides
	if o.Strategy != nil || o.NewStrategy != nil || o.Backend != nil {
		return "", false
	}
	c := sp.Campaign
	if o.Program != nil {
		c.Target = o.Program.Name
	}
	return c.Canonical(), true
}

// WantedIters is the iteration budget a campaign asks for, with the engine's
// default applied (core.Config.withDefaults uses 100).
func WantedIters(iterations int) int {
	if iterations == 0 {
		return 100
	}
	return iterations
}

// DeriveBatchID names a batch from its specs when the caller didn't: a
// stable hash of the labels and setup keys, so re-running the same spec
// list resumes the same store batch.
func DeriveBatchID(specs []Spec) string {
	keys := make([]string, len(specs))
	for i, sp := range specs {
		keys[i], _ = SetupKey(sp)
	}
	return deriveBatchID(specs, keys)
}

// deriveBatchID is DeriveBatchID over precomputed keys.
func deriveBatchID(specs []Spec, keys []string) string {
	h := sha256.New()
	for i, sp := range specs {
		fmt.Fprintf(h, "%s\x00%s\n", sp.label(), keys[i])
	}
	return fmt.Sprintf("batch-%x", h.Sum(nil))[:18]
}

// PrepareBatch computes the per-spec setup keys and creates (or reloads) the
// batch manifest, stamping each entry with its portable campaign spec. Both
// the in-process scheduler and the fleet coordinator open their batches
// through here, which is what keeps their manifests interchangeable.
//
// A reloaded entry whose stored key no longer matches the spec (someone
// edited the campaign between runs) is reset to pending and annotated with
// the field-level diff, so the stale result is re-run rather than silently
// reattached.
func PrepareBatch(st *store.Store, batchID string, specs []Spec) (*store.BatchManifest, []string) {
	keys := make([]string, len(specs))
	for i, sp := range specs {
		keys[i], _ = SetupKey(sp)
	}
	if batchID == "" {
		batchID = deriveBatchID(specs, keys)
	}
	man, err := st.LoadBatch(batchID)
	if err != nil || man == nil || len(man.Entries) != len(specs) {
		man = &store.BatchManifest{ID: batchID, Entries: make([]store.BatchEntry, len(specs))}
	}
	for i, sp := range specs {
		e := &man.Entries[i]
		portable, perr := sp.Portable()
		if prev := e.Spec; prev != nil && e.Key != "" && e.Key != keys[i] {
			e.Status = store.StatusPending
			e.Campaign = ""
			e.Iters = 0
			e.Error = "spec changed: " + strings.Join(spec.Diff(*prev, portable), "; ")
		}
		e.Label = sp.label()
		e.Key = keys[i]
		if perr == nil {
			e.Spec = &portable
		}
		if e.Status == "" || e.Status == store.StatusRunning {
			// Fresh entry, or one left mid-flight by a killed batch — the
			// campaign snapshot (if any) carries the real progress.
			e.Status = store.StatusPending
		}
	}
	st.SaveBatch(man)
	return man, keys
}

// batchPersist carries one run's store wiring: the open store, the batch
// manifest, and the per-spec setup keys. Workers mutate manifest entries
// concurrently, so all updates go through the mutex.
type batchPersist struct {
	st   *store.Store
	keys []string
	mu   sync.Mutex
	man  *store.BatchManifest
}

// newBatchPersist opens the batch through PrepareBatch.
func newBatchPersist(st *store.Store, batchID string, specs []Spec) *batchPersist {
	man, keys := PrepareBatch(st, batchID, specs)
	return &batchPersist{st: st, keys: keys, man: man}
}

// campaignName is the campaign file a spec persists under.
func (bp *batchPersist) campaignName(i int, sp Spec) string {
	return store.CampaignName(sp.label(), bp.keys[i])
}

// update applies fn to entry i under the lock and writes the manifest.
func (bp *batchPersist) update(i int, fn func(*store.BatchEntry)) {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	fn(&bp.man.Entries[i])
	bp.st.SaveBatch(bp.man)
}
