package sched

import (
	"bytes"
	"reflect"
	"sort"
	"strings"
	"testing"
	"time"

	"repro/internal/binstat"
	"repro/internal/conc"
	"repro/internal/core"
	"repro/internal/spec"
	_ "repro/internal/targets/skeleton"
	"repro/internal/targets/stencil"
	"repro/internal/targets/susy"
)

func skeletonSpec(seed int64) Spec {
	return Spec{Campaign: spec.Campaign{
		Target:     "skeleton",
		Seed:       seed,
		Iterations: 40,
		Reduction:  true,
		Framework:  true,
		RunTimeout: 5 * time.Second,
	}}
}

// fingerprint reduces a report to the parts the determinism contract covers:
// per-campaign coverage sets and per-target merged coverage plus distinct
// error keys. Wall-clock fields are excluded on purpose.
type fingerprint struct {
	campaignCov [][]conc.BranchBit
	mergedCov   map[string][]conc.BranchBit
	errorKeys   map[string][]string
}

func fingerprintOf(r *Report) fingerprint {
	fp := fingerprint{
		mergedCov: map[string][]conc.BranchBit{},
		errorKeys: map[string][]string{},
	}
	for _, c := range r.Campaigns {
		fp.campaignCov = append(fp.campaignCov, c.Result.Coverage.Branches())
	}
	for name, cov := range r.Coverage {
		fp.mergedCov[name] = cov.Branches()
	}
	for name, byMsg := range r.Errors {
		var msgs []string
		for msg := range byMsg {
			msgs = append(msgs, msg)
		}
		sort.Strings(msgs)
		fp.errorKeys[name] = msgs
	}
	return fp
}

// TestRunDeterministicAcrossWorkerCounts is the scheduler's core contract:
// the same spec list run serially and with 8 workers must produce identical
// coverage sets and error keys. Run under -race this also exercises the
// tracker and engine for data races.
func TestRunDeterministicAcrossWorkerCounts(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign test")
	}
	mkSpecs := func() []Spec {
		var specs []Spec
		for _, seed := range []int64{1, 2, 3, 4, 5, 6} {
			specs = append(specs, skeletonSpec(seed))
		}
		// Two stencil campaigns share a target, so the merged tracker sees
		// concurrent Merge calls from distinct campaigns.
		for _, seed := range []int64{11, 12} {
			specs = append(specs, Spec{Campaign: spec.Campaign{
				Target:     "stencil",
				Seed:       seed,
				Params:     stencil.FixAll(),
				Iterations: 25,
				Reduction:  true,
				Framework:  true,
				RunTimeout: 5 * time.Second,
				MaxTicks:   3_000_000,
			}})
		}
		return specs
	}

	serial := Run(mkSpecs(), Options{Workers: 1})
	wide := Run(mkSpecs(), Options{Workers: 8})
	if serial.Workers != 1 || wide.Workers != 8 {
		t.Fatalf("workers recorded %d/%d", serial.Workers, wide.Workers)
	}
	fpS, fpW := fingerprintOf(serial), fingerprintOf(wide)
	if !reflect.DeepEqual(fpS.campaignCov, fpW.campaignCov) {
		t.Fatal("per-campaign coverage differs between -j1 and -j8")
	}
	if !reflect.DeepEqual(fpS.mergedCov, fpW.mergedCov) {
		t.Fatal("merged coverage differs between -j1 and -j8")
	}
	if !reflect.DeepEqual(fpS.errorKeys, fpW.errorKeys) {
		t.Fatalf("error keys differ: %v vs %v", fpS.errorKeys, fpW.errorKeys)
	}
}

// TestCrossCampaignIsolation runs a fixed and an unfixed SUSY campaign
// concurrently. Before the Params refactor the fix toggles were package
// globals, so either campaign could flip the other's bugs mid-run; now each
// campaign's bag must only govern its own executions: the unfixed campaign
// crashes on the seeded wrong-malloc bug while the concurrent fixed campaign
// never sees a crash.
func TestCrossCampaignIsolation(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign test")
	}
	mk := func(label string, params map[string]int64, seed int64) Spec {
		return Spec{Campaign: spec.Campaign{
			Label:  label,
			Target: "susy-hmc",
			Seed:   seed,
			Params: params,
			// Seed the known-good inputs so iteration 0 gets past the
			// sanity chain; the RHMC bug then fires on any successful
			// setup in the unfixed campaign.
			Inputs:     susy.DefaultInputs(),
			Iterations: 30,
			Reduction:  true,
			Framework:  true,
			RunTimeout: 15 * time.Second,
		}}
	}
	rep := Run([]Spec{
		mk("fixed", susy.FixAll(), 21),
		mk("unfixed", susy.UnfixAll(), 21),
	}, Options{Workers: 2})

	var fixed, unfixed *Campaign
	for i := range rep.Campaigns {
		switch rep.Campaigns[i].Label {
		case "fixed":
			fixed = &rep.Campaigns[i]
		case "unfixed":
			unfixed = &rep.Campaigns[i]
		}
	}
	crashes := func(c *Campaign) []string {
		var out []string
		for msg := range c.Result.DistinctErrors() {
			if strings.Contains(msg, "out of range") ||
				strings.Contains(msg, "divide by zero") {
				out = append(out, msg)
			}
		}
		return out
	}
	if got := crashes(unfixed); len(got) == 0 {
		t.Fatalf("unfixed campaign found no seeded crash; errors: %v",
			unfixed.Result.DistinctErrors())
	}
	if got := crashes(fixed); len(got) != 0 {
		t.Fatalf("fixed campaign crashed — campaign params leaked: %v", got)
	}
}

func TestUnknownTargetIsSpecError(t *testing.T) {
	rep := Run([]Spec{
		{Campaign: spec.Campaign{Target: "no-such-program"}},
		skeletonSpec(1),
	}, Options{Workers: 2})
	if rep.Campaigns[0].Err == nil ||
		!strings.Contains(rep.Campaigns[0].Err.Error(), "unknown target") {
		t.Fatalf("want unknown-target error, got %v", rep.Campaigns[0].Err)
	}
	if rep.Campaigns[1].Err != nil {
		t.Fatalf("good spec failed: %v", rep.Campaigns[1].Err)
	}
	if _, ok := rep.Coverage["no-such-program"]; ok {
		t.Fatal("failed spec contributed a coverage tracker")
	}
	var buf bytes.Buffer
	rep.WriteSummary(&buf)
	if !strings.Contains(buf.String(), "unknown target") {
		t.Fatal("summary does not surface the spec error")
	}
}

func TestLabelAndSeedDefaults(t *testing.T) {
	s := skeletonSpec(7)
	if got := s.label(); got != "skeleton/seed7" {
		t.Fatalf("label: %q", got)
	}
	s.Label = "custom"
	if got := s.label(); got != "custom" {
		t.Fatalf("label: %q", got)
	}
	rep := Run([]Spec{skeletonSpec(7)}, Options{Workers: 1})
	if rep.Campaigns[0].Label != "skeleton/seed7" {
		t.Fatalf("report label: %q", rep.Campaigns[0].Label)
	}
	if rep.Campaigns[0].Target != "skeleton" {
		t.Fatalf("report target: %q", rep.Campaigns[0].Target)
	}
}

// TestTraceIsSerializedAndComplete drives several campaigns with a shared
// trace callback that is deliberately not thread-safe; the scheduler's
// serialization promise means the slice below must end up with one entry per
// campaign iteration without -race complaints.
func TestTraceIsSerializedAndComplete(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign test")
	}
	var seen []string
	specs := []Spec{skeletonSpec(1), skeletonSpec(2), skeletonSpec(3), skeletonSpec(4)}
	rep := Run(specs, Options{
		Workers: 4,
		Trace: func(label string, it core.IterationStat) {
			seen = append(seen, label)
		},
	})
	want := 0
	for _, c := range rep.Campaigns {
		want += len(c.Result.Iterations)
	}
	if len(seen) != want {
		t.Fatalf("trace saw %d iterations, campaigns ran %d", len(seen), want)
	}
}

// TestBatchProfileRollup pins two things about Options.Profiler: profiling
// a batch never perturbs it (fingerprint-equal to the unprofiled run), and
// the batch report's Profile window actually contains the campaigns' engine
// phase bins — not just the shared solver service's — with per-iteration
// counts that add up across campaigns.
func TestBatchProfileRollup(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign test")
	}
	mkSpecs := func() []Spec {
		return []Spec{skeletonSpec(31), skeletonSpec(32)}
	}

	plain := Run(mkSpecs(), Options{Workers: 2})
	if len(plain.Profile) != 0 {
		t.Fatalf("unprofiled batch has a profile: %v", plain.Profile)
	}

	prof := binstat.New()
	profiled := Run(mkSpecs(), Options{Workers: 2, Profiler: prof})
	if !reflect.DeepEqual(fingerprintOf(plain), fingerprintOf(profiled)) {
		t.Fatal("profiled batch diverged from the unprofiled batch")
	}

	var iters int64
	for _, c := range profiled.Campaigns {
		iters += int64(len(c.Result.Iterations))
	}
	exec, ok := profiled.Profile.Get("execute")
	if !ok || exec.Count != iters {
		t.Fatalf("execute bin count %d (present=%v), want one per iteration (%d)", exec.Count, ok, iters)
	}
	for _, bin := range []string{"trace-collect", "constraint-build", "solve", "solver.canon"} {
		if st, ok := profiled.Profile.Get(bin); !ok || st.Count == 0 {
			t.Fatalf("batch profile missing %q bin: %v", bin, profiled.Profile)
		}
	}

	// The summary renders the profile table after the batch lines.
	var buf bytes.Buffer
	profiled.WriteSummary(&buf)
	if !strings.Contains(buf.String(), "execute") {
		t.Fatalf("WriteSummary omitted the profile table:\n%s", buf.String())
	}
}
