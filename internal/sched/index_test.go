package sched

import (
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"strings"
	"testing"
	"time"

	"repro/internal/spec"
	"repro/internal/store"
	_ "repro/internal/targets/mworder"
	_ "repro/internal/targets/relay"
)

// scheduleSpecs is the two-target schedule-space batch the report pins run
// on: mworder and relay at the 3-rank protocol setup whose wildcard-receive
// deadlocks the schedule frontier reaches deterministically.
func scheduleSpecs(iters int) []Spec {
	mk := func(target string) Spec {
		return Spec{Campaign: spec.Campaign{
			Target: target, Seed: 7, Iterations: iters,
			InitialProcs: 3, MaxProcs: 3, Schedules: true,
			Reduction: true, RunTimeout: 5 * time.Second,
		}}
	}
	return []Spec{mk("mworder"), mk("relay")}
}

// TestReportIndexMatchesReplay is the `compi report` acceptance pin: on a
// batch spanning two targets (both finding schedule-space deadlocks), every
// answer the campaign index gives — which setups found error X, coverage by
// target — must equal the answer computed from the full campaign results,
// without the index reader touching a snapshot.
func TestReportIndexMatchesReplay(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign test")
	}
	st := openStore(t)
	rep := Run(scheduleSpecs(25), Options{Workers: 2, Store: st})
	for _, c := range rep.Campaigns {
		if c.Err != nil {
			t.Fatalf("campaign %q: %v", c.Label, c.Err)
		}
	}

	entries, err := st.Index()
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != len(rep.Campaigns) {
		t.Fatalf("index has %d entries for %d campaigns", len(entries), len(rep.Campaigns))
	}

	// Per-entry: the index summarizes exactly what the stored snapshot holds.
	for _, e := range entries {
		snap, err := st.LoadCampaign(e.Campaign)
		if err != nil {
			t.Fatalf("index references unreadable campaign %q: %v", e.Campaign, err)
		}
		if e.Target != snap.Program || e.Iters != snap.Iters || e.Branches != len(snap.Covered) {
			t.Fatalf("index entry diverges from snapshot: %+v vs program=%s iters=%d covered=%d",
				e, snap.Program, snap.Iters, len(snap.Covered))
		}
		if e.CoverageFP != store.CoverageFingerprint(snap.Covered, snap.Funcs) {
			t.Fatalf("coverage fingerprint mismatch for %q", e.Campaign)
		}
	}

	// "Which setups found error X" from the index alone vs from the results.
	const cycle = "wait-for cycle"
	var fromIndex []string
	for _, e := range store.SetupsWithError(entries, cycle) {
		fromIndex = append(fromIndex, e.Target)
	}
	var fromResults []string
	for _, c := range rep.Campaigns {
		for msg := range c.Result.DistinctErrors() {
			if strings.Contains(msg, cycle) {
				fromResults = append(fromResults, c.Target)
				break
			}
		}
	}
	if len(fromResults) != 2 {
		t.Fatalf("expected both targets to deadlock, got %v", fromResults)
	}
	sort.Strings(fromIndex)
	sort.Strings(fromResults)
	if !reflect.DeepEqual(fromIndex, fromResults) {
		t.Fatalf("error query: index says %v, results say %v", fromIndex, fromResults)
	}

	// "Coverage by target" from the index alone vs from the results.
	best := map[string]int{}
	for _, c := range rep.Campaigns {
		if n := c.Result.Coverage.Count(); n > best[c.Target] {
			best[c.Target] = n
		}
	}
	byTarget := store.ByTarget(entries)
	if len(byTarget) != 2 {
		t.Fatalf("targets %+v", byTarget)
	}
	for _, ts := range byTarget {
		if ts.BestBranches != best[ts.Target] {
			t.Fatalf("%s: index best coverage %d, results say %d",
				ts.Target, ts.BestBranches, best[ts.Target])
		}
		if ts.Deadlocks == 0 {
			t.Fatalf("%s summary records no deadlock: %+v", ts.Target, ts)
		}
	}
}

// TestOldLayoutStoreOpensAndReindexes is the migration pin: a store written
// without index.json (any pre-index store looks exactly like this) opens,
// resumes unchanged, and the resume itself heals the index back to the bytes
// a never-deleted index would hold.
func TestOldLayoutStoreOpensAndReindexes(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign test")
	}
	const n = 25
	st := openStore(t)
	rep1 := Run(storeSpecs(n), Options{Workers: 2, Store: st})
	want := fingerprintOf(rep1)

	indexPath := filepath.Join(st.Dir(), "index.json")
	orig, err := os.ReadFile(indexPath)
	if err != nil {
		t.Fatalf("batch completion left no index: %v", err)
	}
	if err := os.Remove(indexPath); err != nil {
		t.Fatal(err)
	}

	// The old-layout store resumes exactly as before...
	rep2 := Run(storeSpecs(n), Options{Workers: 2, Store: st})
	for _, c := range rep2.Campaigns {
		if c.Err != nil || !c.Reused {
			t.Fatalf("old-layout campaign %q: err=%v reused=%v", c.Label, c.Err, c.Reused)
		}
	}
	if !reflect.DeepEqual(fingerprintOf(rep2), want) {
		t.Fatal("old-layout store resumed differently")
	}
	// ...and the reuse path healed the index to the exact pre-deletion bytes.
	healed, err := os.ReadFile(indexPath)
	if err != nil {
		t.Fatalf("reuse did not rebuild the index: %v", err)
	}
	if string(healed) != string(orig) {
		t.Fatal("healed index differs from the original")
	}

	// Explicit Reindex reproduces the same bytes too.
	os.Remove(indexPath)
	if _, err := st.Reindex(); err != nil {
		t.Fatal(err)
	}
	rebuilt, _ := os.ReadFile(indexPath)
	if string(rebuilt) != string(orig) {
		t.Fatal("reindexed bytes differ from the incrementally built index")
	}
}

// TestStoreMinimizePreservesResume pins the minimization safety contract
// (the compaction pin's shape): minimizing between every step of a
// short-batch → longer-batch sequence must land on the same fingerprint as
// never minimizing, and as the uninterrupted reference.
func TestStoreMinimizePreservesResume(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign test")
	}
	const k, n = 12, 30
	want := fingerprintOf(Run(storeSpecs(n), Options{Workers: 2}))

	var dropped int
	runSeq := func(st *store.Store, minimize bool) *Report {
		step := func() {
			if minimize {
				stats, err := st.Minimize()
				if err != nil {
					t.Fatal(err)
				}
				dropped += stats.Dropped
			}
		}
		Run(storeSpecs(k), Options{Workers: 2, Store: st})
		step()
		Run(storeSpecs(n), Options{Workers: 2, Store: st})
		step()
		return Run(storeSpecs(n), Options{Workers: 2, Store: st})
	}

	plain := runSeq(openStore(t), false)
	minimized := runSeq(openStore(t), true)
	for _, c := range minimized.Campaigns {
		if c.Err != nil || !c.Reused {
			t.Fatalf("final minimized batch campaign %q: err=%v reused=%v", c.Label, c.Err, c.Reused)
		}
	}
	got := fingerprintOf(minimized)
	if !reflect.DeepEqual(got, fingerprintOf(plain)) {
		t.Fatal("resume after minimize diverged from resume without minimize")
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("minimized-store sequence diverged from the uninterrupted reference")
	}
	if dropped == 0 {
		t.Log("minimize dropped nothing (no subsumed corpus entries in this batch); fingerprint pin still holds")
	}
}

// TestStoreWideCacheAcrossTargets pins the store-wide (not per-batch) cache
// at the campaign level: a store seeded by batches on two different targets
// accumulates one merged UNSAT cache, and a later batch warmed from it is
// fingerprint-identical to a cold, storeless run. (The cross-target cache
// *hit* itself — a refutation proven under one target answering another
// target's renamed constraint — is pinned at mechanism level in the store
// package's TestUnsatCacheSharesAcrossTargets.)
func TestStoreWideCacheAcrossTargets(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign test")
	}
	mkSpecs := func() []Spec {
		a := skeletonSpec(21)
		a.Iterations = 30
		b := skeletonSpec(22)
		b.Iterations = 30
		return []Spec{a, b}
	}
	cold := fingerprintOf(Run(mkSpecs(), Options{Workers: 2}))

	st := openStore(t)
	// Two seeding batches on different targets; their cache contributions
	// merge into one store-wide solver.json rather than the second batch
	// overwriting the first.
	stencilOnly := storeSpecs(40)[1:] // the stencil spec alone
	Run(stencilOnly, Options{Workers: 1, Store: st})
	seedSpecs := []Spec{skeletonSpec(7)}
	seedSpecs[0].Iterations = 40
	rep0 := Run(seedSpecs, Options{Workers: 1, Store: st})
	if rep0.Solver.Misses == 0 {
		t.Fatal("seeding batch never solved")
	}

	warm := Run(mkSpecs(), Options{Workers: 2, Store: st})
	if warm.WarmUnsat == 0 {
		t.Fatal("third batch imported no UNSAT entries from the store-wide cache")
	}
	if !reflect.DeepEqual(fingerprintOf(warm), cold) {
		t.Fatal("store-wide warm cache changed campaign results")
	}
}
