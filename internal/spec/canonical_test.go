package spec_test

import (
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/spec"
	_ "repro/internal/targets/mworder"
	_ "repro/internal/targets/relay"
	_ "repro/internal/targets/skeleton"
	"repro/internal/targets/stencil"
	"repro/internal/targets/susy"
)

// The keys below were produced by the pre-spec sched.SetupKey implementation
// (setupKeyState hashed over the same campaigns). They are the compatibility
// contract with every -state-dir a user already has: Canonical() must keep
// resolving them, so existing stores resume instead of re-exploring from
// scratch. Do not regenerate these constants to make the test pass — a
// mismatch means the canonical encoding changed, which orphans stores.
func TestCanonicalGolden(t *testing.T) {
	grid := core.MergeParams(susy.FixAll(), stencil.FixAll())
	cases := []struct {
		name string
		c    spec.Campaign
		want string
	}{
		{
			name: "sched grid skeleton seed3",
			c: spec.Campaign{
				Target: "skeleton", Seed: 3, Params: grid,
				Iterations: 60, InitialProcs: 8, MaxProcs: 16,
				Reduction: true, Framework: true, DFSPhase: 50,
				RunTimeout: 30 * time.Second,
			},
			want: "c121691ce19f7807057416a9",
		},
		{
			name: "sched grid skeleton seed4",
			c: spec.Campaign{
				Target: "skeleton", Seed: 4, Params: grid,
				Iterations: 60, InitialProcs: 8, MaxProcs: 16,
				Reduction: true, Framework: true, DFSPhase: 50,
				RunTimeout: 30 * time.Second,
			},
			want: "18a7cc21c8c853eb29222945",
		},
		{
			name: "schedule-space mworder",
			c: spec.Campaign{
				Target: "mworder", Seed: 7, Params: grid,
				Iterations: 40, InitialProcs: 3, MaxProcs: 3,
				Reduction: true, Framework: true, DFSPhase: 50,
				Schedules: true, RunTimeout: 30 * time.Second,
			},
			want: "4d9ef3969e280555a1483ac8",
		},
		{
			name: "bare skeleton",
			c: spec.Campaign{
				Target: "skeleton", Seed: 11, Iterations: 40,
				Reduction: true, Framework: true, RunTimeout: 5 * time.Second,
			},
			want: "1e19e243f6198252616162fc",
		},
		{
			name: "external target",
			c: spec.Campaign{
				Seed: 9,
				External: &spec.External{
					Bin:  "/opt/bin/compi-target",
					Args: []string{"-target", "stencil"},
				},
				Params: grid, Iterations: 60, InitialProcs: 8, MaxProcs: 16,
				Reduction: true, Framework: true, DFSPhase: 50,
				RunTimeout: 30 * time.Second,
			},
			want: "2e7d8c9546a358e7cef26261",
		},
		{
			name: "every dimension set",
			c: spec.Campaign{
				Label: "ks/shard1.2", Target: "stencil", Seed: 5, Group: "ks",
				Params: map[string]int64{"cap": 9}, Inputs: map[string]int64{"x": 4},
				Iterations: 55, InitialProcs: 4, InitialFocus: 2, MaxProcs: 8,
				DepthBound: 6, DFSPhase: 10, OneWay: true, PureRandom: true,
				RunTimeout: 5 * time.Second, MaxTicks: 1 << 20, SolverMaxNodes: 4096,
			},
			want: "c658bfec6fe28d829fa74b05",
		},
		{
			name: "relay",
			c: spec.Campaign{
				Target: "relay", Seed: 21, Iterations: 40,
				Reduction: true, Framework: true, RunTimeout: 5 * time.Second,
			},
			want: "5af94b01a1fa42021d0d9e37",
		},
	}
	for _, tc := range cases {
		if got := tc.c.Canonical(); got != tc.want {
			t.Errorf("%s: Canonical() = %q, want legacy key %q", tc.name, got, tc.want)
		}
	}
}

// TestCanonicalContract pins the key's semantic rules independently of the
// goldens: budget fields are excluded (prefix-resume), the default strategy's
// two spellings collapse, and the new appended dimensions perturb the key
// only when actually used.
func TestCanonicalContract(t *testing.T) {
	base := spec.Campaign{
		Target: "skeleton", Seed: 3, Iterations: 60,
		Reduction: true, Framework: true, RunTimeout: 30 * time.Second,
	}
	key := base.Canonical()

	longer := base
	longer.Iterations = 600
	longer.TimeBudget = time.Hour
	if longer.Canonical() != key {
		t.Error("iterations/time budget changed the setup key; prefix-resume is broken")
	}

	spelled := base
	spelled.Strategy = "compi"
	if spelled.Canonical() != key {
		t.Error(`Strategy "compi" and "" produced different keys`)
	}

	versioned := base
	versioned.Version = spec.Version
	if versioned.Canonical() != key {
		t.Error("spec schema version leaked into the setup key")
	}

	labeled := base
	labeled.Label, labeled.Group = "x/shard0.1", "x"
	if labeled.Canonical() != key {
		t.Error("label/group leaked into the setup key")
	}

	named := base
	named.Strategy = "random-branch"
	if named.Canonical() == key {
		t.Error("non-default strategy did not change the setup key")
	}

	steered := base
	steered.MatchOrder = [][]int{{1, 0}}
	if steered.Canonical() == key {
		t.Error("match-order directive did not change the setup key")
	}

	reseeded := base
	reseeded.Seed = 4
	if reseeded.Canonical() == key {
		t.Error("different seeds share a setup key")
	}
}
