package spec_test

import (
	"encoding/json"
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/spec"
	_ "repro/internal/targets/skeleton"
	_ "repro/internal/targets/stencil"
)

// fullCampaign exercises every serializable field.
func fullCampaign() spec.Campaign {
	return spec.Campaign{
		Version: spec.Version,
		Label:   "grid/shard0.3",
		Target:  "skeleton",
		Seed:    7,
		Group:   "grid",
		External: &spec.External{
			Bin: "/usr/bin/compi-target", Args: []string{"-t", "x"}, Env: []string{"A=1"},
		},
		Strategy:   "bounded-dfs",
		Iterations: 55, TimeBudget: 90 * time.Second,
		InitialProcs: 8, InitialFocus: 1, MaxProcs: 16,
		Reduction: true, DepthBound: 6, DFSPhase: 10,
		OneWay: true, Framework: true, PureRandom: true, Schedules: true,
		RunTimeout: 5 * time.Second, MaxTicks: 1 << 20, SolverMaxNodes: 4096,
		Params:     map[string]int64{"cap": 9},
		Inputs:     map[string]int64{"x": 4},
		MatchOrder: [][]int{{1, 0}, {0, 1}},
	}
}

func TestCampaignJSONRoundTrip(t *testing.T) {
	want := fullCampaign()
	b, err := json.Marshal(want)
	if err != nil {
		t.Fatal(err)
	}
	got, err := spec.Decode(strings.NewReader(string(b)))
	if err != nil {
		t.Fatalf("Decode of our own Marshal: %v", err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("round trip changed the campaign:\n got  %+v\n want %+v", got, want)
	}
	if got.Canonical() != want.Canonical() {
		t.Fatal("round trip changed the canonical setup key")
	}

	// The zero value marshals to the empty object — every field is omitempty,
	// so serialized specs stay diffable by eye.
	if b, _ := json.Marshal(spec.Campaign{}); string(b) != "{}" {
		t.Fatalf("zero campaign marshals to %s, want {}", b)
	}
}

func TestDecodeStrictness(t *testing.T) {
	cases := []struct {
		name, in, wantErr string
	}{
		{"unknown field", `{"target":"skeleton","itres":50}`, "itres"},
		{"duplicate key", `{"target":"skeleton","seed":1,"seed":2}`, `duplicate key "seed"`},
		{"nested duplicate key", `{"target":"skeleton","external":{"bin":"/x","bin":"/y"}}`, `duplicate key "bin"`},
		{"newer schema", `{"version":99,"target":"skeleton"}`, "newer than this build"},
		{"no target", `{"seed":3}`, "names no target"},
		{"unknown target", `{"target":"no-such-program"}`, `unknown target "no-such-program"`},
		{"external without bin", `{"external":{"args":["-t","x"]}}`, "without a binary path"},
		{"unknown strategy", `{"target":"skeleton","strategy":"astar"}`, `unknown strategy "astar"`},
		{"negative iterations", `{"target":"skeleton","iterations":-5}`, "negative iterations"},
		{"negative timeout", `{"target":"skeleton","runTimeout":-1}`, "negative runTimeout"},
		{"empty param name", `{"target":"skeleton","params":{"":3}}`, "empty parameter name"},
		{"empty input name", `{"target":"skeleton","inputs":{"":3}}`, "empty input name"},
		{"not an object", `[1,2]`, "cannot unmarshal"},
	}
	for _, tc := range cases {
		_, err := spec.Decode(strings.NewReader(tc.in))
		if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
			t.Errorf("%s: Decode(%s) error = %v, want substring %q", tc.name, tc.in, err, tc.wantErr)
		}
	}

	// A well-formed minimal blob decodes.
	c, err := spec.Decode(strings.NewReader(`{"target":"skeleton","seed":3,"iterations":40}`))
	if err != nil {
		t.Fatal(err)
	}
	if c.Target != "skeleton" || c.Seed != 3 || c.Iterations != 40 {
		t.Fatalf("minimal blob decoded to %+v", c)
	}
}

// FuzzDecode feeds arbitrary bytes through the strict decoder: it must
// never panic, and whatever it accepts must validate and re-serialize to an
// equivalent campaign (Decode(Marshal(c)) == c).
func FuzzDecode(f *testing.F) {
	f.Add(`{"target":"skeleton","seed":3}`)
	f.Add(`{"target":"no-such-program"}`)
	f.Add(`{"target":"skeleton","iterations":-5}`)
	f.Add(`{"target":"skeleton","seed":1,"seed":2}`)
	f.Add(`{"version":99,"target":"skeleton"}`)
	f.Add(`{"params":{"":1}}`)
	f.Add(`{"external":{"bin":"/x","args":["a"]},"matchOrder":[[1,0]]}`)
	f.Add(`[{"target":"skeleton"}]`)
	f.Add(`nonsense`)
	f.Fuzz(func(t *testing.T, in string) {
		c, err := spec.Decode(strings.NewReader(in))
		if err != nil {
			return
		}
		if err := c.Validate(); err != nil {
			t.Fatalf("Decode accepted a campaign Validate rejects: %v", err)
		}
		b, err := json.Marshal(c)
		if err != nil {
			t.Fatalf("accepted campaign does not re-marshal: %v", err)
		}
		c2, err := spec.Decode(strings.NewReader(string(b)))
		if err != nil {
			t.Fatalf("accepted campaign does not re-decode: %v\n%s", err, b)
		}
		if !reflect.DeepEqual(c, c2) {
			t.Fatalf("decode/marshal/decode changed the campaign:\n%+v\n%+v", c, c2)
		}
	})
}

func TestDiff(t *testing.T) {
	a := fullCampaign()
	b := a
	if d := spec.Diff(a, b); len(d) != 0 {
		t.Fatalf("identical campaigns diff: %v", d)
	}
	b.Seed = 8
	b.Strategy = ""
	b.MaxTicks = 0
	d := spec.Diff(a, b)
	joined := strings.Join(d, "; ")
	for _, want := range []string{"seed: 7 != 8", `strategy: "bounded-dfs" != (unset)`, "maxTicks: 1048576 != (unset)"} {
		if !strings.Contains(joined, want) {
			t.Errorf("Diff missing %q in %q", want, joined)
		}
	}
	if len(d) != 3 {
		t.Errorf("Diff reported %d fields, want 3: %v", len(d), d)
	}
}

func TestDisplayLabelAndTargetName(t *testing.T) {
	c := spec.Campaign{Target: "skeleton", Seed: 7}
	if got := c.DisplayLabel(); got != "skeleton/seed7" {
		t.Errorf("DisplayLabel = %q", got)
	}
	c.Label = "custom"
	if got := c.DisplayLabel(); got != "custom" {
		t.Errorf("DisplayLabel = %q", got)
	}
	ext := spec.Campaign{External: &spec.External{Bin: "/opt/bin/compi-target"}, Seed: 9}
	if got := ext.TargetName(); got != "compi-target" {
		t.Errorf("external TargetName = %q", got)
	}
	if got := ext.DisplayLabel(); got != "compi-target/seed9" {
		t.Errorf("external DisplayLabel = %q", got)
	}
}
