package spec

import "fmt"

// Shard partitions one campaign's search space into n campaigns by the test
// setup the engine starts from — the (initial process count, initial focus)
// pair. The engine explores outward from its initial setup (the framework
// only moves nprocs/focus when a solved constraint demands it), so different
// starting points explore different regions of the tree while a shared
// solver service collides their overlapping constraint sets.
//
// Shard 0 is the base campaign itself (same seed, same initial setup), so
// the shard set strictly extends the unsharded campaign; the remaining
// shards rotate the initial focus through the other ranks and then vary the
// initial process count. All shards carry Group = the base campaign's
// label, which reports roll up into one merged entry.
func Shard(base Campaign, n int) []Campaign {
	if n <= 1 {
		return []Campaign{base}
	}
	procs := base.InitialProcs
	if procs <= 0 {
		procs = 8 // core.Config.withDefaults
	}
	maxProcs := base.MaxProcs
	if maxProcs <= 0 {
		maxProcs = 16
	}
	focus := base.InitialFocus
	if focus < 0 || focus >= procs {
		focus = 0
	}

	// Enumerate distinct (nprocs, focus) setups: the base setup first, then
	// the other focus ranks at the base process count, then alternating
	// smaller/larger process counts with focus 0.
	type setup struct{ np, f int }
	setups := []setup{{procs, focus}}
	for f := 0; f < procs && len(setups) < n; f++ {
		if f != focus {
			setups = append(setups, setup{procs, f})
		}
	}
	lo, hi := procs-1, procs+1
	for len(setups) < n && (lo >= 1 || hi <= maxProcs) {
		if lo >= 1 {
			setups = append(setups, setup{lo, 0})
			lo--
		}
		if len(setups) < n && hi <= maxProcs {
			setups = append(setups, setup{hi, 0})
			hi++
		}
	}

	group := base.DisplayLabel()
	out := make([]Campaign, 0, n)
	for i := 0; i < n; i++ {
		s := base
		s.Group = group
		s.Label = fmt.Sprintf("%s/shard%d.%d", group, i, n)
		// More shards than distinct setups: wrap around, but perturb the
		// seed so the extra shards explore different random restarts.
		st := setups[i%len(setups)]
		if i >= len(setups) {
			s.Seed += int64(i/len(setups)) * 1_000_003
		}
		s.InitialProcs = st.np
		s.InitialFocus = st.f
		if s.MaxProcs <= 0 {
			s.MaxProcs = maxProcs
		}
		out = append(out, s)
	}
	return out
}
