package spec_test

import (
	"os"
	"strings"
	"testing"

	"repro/internal/binstat"
	"repro/internal/core"
	"repro/internal/coverage"
	"repro/internal/expr"
	"repro/internal/mpi"
	"repro/internal/solver"
	"repro/internal/spec"
	"repro/internal/target"
	_ "repro/internal/targets/skeleton"
)

type nullBackend struct{}

func (nullBackend) Launch(core.LaunchSpec) mpi.RunResult { return mpi.RunResult{} }
func (nullBackend) Close() error                         { return nil }

type nullSolver struct{}

func (nullSolver) SolveIncremental([]expr.Pred, map[expr.Var]int64, solver.Options) (solver.Result, bool) {
	return solver.Result{}, false
}
func (nullSolver) Stats() solver.Stats { return solver.Stats{} }

// TestPortableRefusalText pins the refusal error texts byte-for-byte: they
// are what `compi serve` prints when a shard cannot dispatch, and what the
// old fleet wire layer (SpecToWire) printed before the spec package existed.
// The field names use the "Config." spelling because every override maps
// onto the core.Config field of that name.
func TestPortableRefusalText(t *testing.T) {
	base := spec.Campaign{Target: "skeleton", Seed: 3}
	cases := []struct {
		field string
		set   func(*spec.Overrides)
	}{
		{"Config.Strategy", func(o *spec.Overrides) { o.Strategy = core.NewBoundedDFS(4) }},
		{"Config.NewStrategy", func(o *spec.Overrides) {
			o.NewStrategy = func(*target.Program, *coverage.Tracker) core.Strategy { return nil }
		}},
		{"Config.Backend", func(o *spec.Overrides) { o.Backend = nullBackend{} }},
		{"Config.Solver", func(o *spec.Overrides) { o.Solver = nullSolver{} }},
		{"Config.Trace", func(o *spec.Overrides) { o.Trace = func(core.IterationStat) {} }},
		{"Config.Checkpoint", func(o *spec.Overrides) { o.Checkpoint = func(*core.Snapshot) {} }},
		{"Config.ErrorLog", func(o *spec.Overrides) { o.ErrorLog = os.Stderr }},
		{"Config.Profiler", func(o *spec.Overrides) { o.Profiler = binstat.New() }},
	}
	for _, tc := range cases {
		var o spec.Overrides
		tc.set(&o)
		_, err := spec.Portable(base, o, "shard-1")
		want := `spec "shard-1" carries a live ` + tc.field + ` and cannot be dispatched`
		if err == nil || err.Error() != want {
			t.Errorf("%s: error = %v, want %q", tc.field, err, want)
		}
	}
}

func TestPortableResolvesProgramAndStampsVersion(t *testing.T) {
	prog, ok := target.Lookup("skeleton")
	if !ok {
		t.Fatal("skeleton not registered")
	}
	c, err := spec.Portable(spec.Campaign{Seed: 3}, spec.Overrides{Program: prog}, "x")
	if err != nil {
		t.Fatal(err)
	}
	if c.Target != "skeleton" {
		t.Fatalf("Program override resolved to target %q", c.Target)
	}
	if c.Version != spec.Version {
		t.Fatalf("portable campaign stamped version %d, want %d", c.Version, spec.Version)
	}

	ghost := &target.Program{Name: "not-registered"}
	_, err = spec.Portable(spec.Campaign{}, spec.Overrides{Program: ghost}, "x")
	if err == nil || !strings.Contains(err.Error(), `unregistered program "not-registered"`) {
		t.Fatalf("unregistered program: %v", err)
	}

	_, err = spec.Portable(spec.Campaign{}, spec.Overrides{}, "x")
	if err == nil || !strings.Contains(err.Error(), "names no target") {
		t.Fatalf("targetless campaign: %v", err)
	}
}

// TestOverridesApply checks CheckpointEvery rides along and live objects land
// on the config.
func TestOverridesApply(t *testing.T) {
	var cfg core.Config
	o := spec.Overrides{
		Trace:           func(core.IterationStat) {},
		ErrorLog:        os.Stderr,
		CheckpointEvery: 7,
	}
	o.Apply(&cfg)
	if cfg.Trace == nil || cfg.ErrorLog != os.Stderr || cfg.CheckpointEvery != 7 {
		t.Fatalf("Apply dropped fields: %+v", cfg)
	}
}
