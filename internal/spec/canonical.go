package spec

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"path/filepath"
	"time"

	"repro/internal/core"
)

// canonicalState is the canonical initial state a campaign's exploration is
// determined by — the JSON-marshal of this struct, hashed, is the one setup
// key the store's setup index, batch manifests, and the fleet coordinator
// all agree on. Iterations and TimeBudget are deliberately excluded: they
// say how *long* to explore, not *what* — a 50-iteration run is a prefix of
// the 100-iteration run of the same state, which is exactly what lets a
// later batch resume or reuse it. SnapshotVersion is included so snapshots
// from an incompatible schema never collide with current keys.
//
// COMPATIBILITY: the field order, names, and omitempty placement reproduce
// the pre-spec sched.setupKeyState byte-for-byte (struct field order is JSON
// field order), so every key a pre-refactor store wrote still resolves —
// pinned by TestCanonicalGolden. New dimensions may only be appended, and
// only with omitempty, so campaigns that don't use them keep their keys.
type canonicalState struct {
	Target       string           `json:"target"`
	External     string           `json:"external,omitempty"`
	Snapshot     int              `json:"snapshot"`
	Seed         int64            `json:"seed"`
	InitialProcs int              `json:"initialProcs"`
	InitialFocus int              `json:"initialFocus"`
	MaxProcs     int              `json:"maxProcs"`
	Reduction    bool             `json:"reduction"`
	DepthBound   int              `json:"depthBound"`
	DFSPhase     int              `json:"dfsPhase"`
	OneWay       bool             `json:"oneWay"`
	Framework    bool             `json:"framework"`
	PureRandom   bool             `json:"pureRandom"`
	Schedules    bool             `json:"schedules,omitempty"`
	RunTimeout   time.Duration    `json:"runTimeout"`
	MaxTicks     int64            `json:"maxTicks"`
	MaxNodes     int              `json:"maxNodes"`
	Params       map[string]int64 `json:"params,omitempty"`
	Inputs       map[string]int64 `json:"inputs,omitempty"`

	// Appended post-refactor (omitempty: default campaigns keep their
	// pre-spec keys). Strategy is the normalized strategy name; MatchOrder
	// pins replay campaigns steered to a recorded schedule.
	Strategy   string  `json:"strategy,omitempty"`
	MatchOrder [][]int `json:"matchOrder,omitempty"`
}

// Canonical returns the campaign's canonical setup key: a truncated SHA-256
// over the canonical state's JSON encoding (map keys sort, so the encoding
// is canonical). Two campaigns with equal keys explore the same trajectory
// prefix; the schema version of the spec itself is excluded so version
// bumps never orphan a store.
func (c Campaign) Canonical() string {
	st := canonicalState{
		Target:       c.TargetName(),
		Snapshot:     core.SnapshotVersion,
		Seed:         c.Seed,
		InitialProcs: c.InitialProcs,
		InitialFocus: c.InitialFocus,
		MaxProcs:     c.MaxProcs,
		Reduction:    c.Reduction,
		DepthBound:   c.DepthBound,
		DFSPhase:     c.DFSPhase,
		OneWay:       c.OneWay,
		Framework:    c.Framework,
		PureRandom:   c.PureRandom,
		Schedules:    c.Schedules,
		RunTimeout:   c.RunTimeout,
		MaxTicks:     c.MaxTicks,
		MaxNodes:     c.SolverMaxNodes,
		Params:       c.Params,
		Inputs:       c.Inputs,
		Strategy:     normStrategy(c.Strategy),
		MatchOrder:   c.MatchOrder,
	}
	if c.External != nil {
		st.External = filepath.Base(c.External.Bin) + " " + fmt.Sprint(c.External.Args)
	}
	b, _ := json.Marshal(st)
	return fmt.Sprintf("%x", sha256.Sum256(b))[:24]
}
