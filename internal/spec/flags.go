package spec

import (
	"flag"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/target"
)

// CampaignFlagNames is the canonical campaign-shaping flag set: every
// campaign-running CLI mode must either bind each of these (the FlagBinder
// does it in one place) or exclude it with a reason string. The mode
// registry test walks this list, which is what keeps "-schedules exists on
// sched but not drive"-style drift from ever coming back.
func CampaignFlagNames() []string {
	return []string{
		"target", "targets", "seed", "seeds",
		"iters", "budget", "timeout",
		"np", "max-np",
		"strategy", "bound", "dfs-phase",
		"no-reduction", "one-way", "no-framework", "random",
		"schedules", "bugs", "shard", "profile",
	}
}

// FlagBinder binds the campaign flag set onto a FlagSet once and expands
// the parsed values into canonical Campaigns. Single-campaign modes bind
// -target/-seed; grid modes bind -targets/-seeds (one campaign per target
// per seed). Everything else is shared verbatim, so a knob added here
// appears on every campaign mode at once.
type FlagBinder struct {
	grid     bool
	excluded map[string]string

	targetF  *string
	seedF    *int64
	targetsF *string
	seedsF   *string

	iters    *int
	budget   *time.Duration
	timeout  *time.Duration
	procs    *int
	maxProcs *int
	strategy *string
	bound    *int
	dfsPhase *int
	noRed    *bool
	oneWay   *bool
	noFwk    *bool
	random   *bool
	scheds   *bool
	bugs     *bool
	shard    *int
	profile  *bool
}

// Bind registers the campaign flags on fs. grid selects the -targets/-seeds
// layout; exclude maps flag names to the reason a mode deliberately leaves
// them out (the parity test requires every hole to be explained). The
// binder adds the grid/single layout exclusions itself.
func Bind(fs *flag.FlagSet, grid bool, exclude map[string]string) *FlagBinder {
	b := &FlagBinder{grid: grid, excluded: map[string]string{}}
	if grid {
		b.excluded["target"] = "grid modes take -targets"
		b.excluded["seed"] = "grid modes take -seeds"
	} else {
		b.excluded["targets"] = "single-campaign mode takes -target"
		b.excluded["seeds"] = "single-campaign mode takes -seed"
	}
	for name, reason := range exclude {
		b.excluded[name] = reason
	}
	skip := func(name string) bool { _, ok := b.excluded[name]; return ok }

	if !skip("target") {
		b.targetF = fs.String("target", "skeleton", "program under test")
	}
	if !skip("seed") {
		b.seedF = fs.Int64("seed", 1, "campaign seed")
	}
	if !skip("targets") {
		b.targetsF = fs.String("targets", "", "comma-separated target list (default: all registered)")
	}
	if !skip("seeds") {
		b.seedsF = fs.String("seeds", "1", "comma-separated campaign seeds (one campaign per target per seed)")
	}
	if !skip("iters") {
		b.iters = fs.Int("iters", 200, "test iterations per campaign (program executions)")
	}
	if !skip("budget") {
		b.budget = fs.Duration("budget", 0, "per-campaign wall-clock budget (0 = none)")
	}
	if !skip("timeout") {
		b.timeout = fs.Duration("timeout", 30*time.Second, "per-execution watchdog")
	}
	if !skip("np") {
		b.procs = fs.Int("np", 8, "initial number of processes")
	}
	if !skip("max-np") {
		b.maxProcs = fs.Int("max-np", 16, "process-count cap")
	}
	if !skip("strategy") {
		b.strategy = fs.String("strategy", "compi", "compi | bounded-dfs | random-branch | uniform-random | cfg")
	}
	if !skip("bound") {
		b.bound = fs.Int("bound", 0, "explicit DFS depth bound (0 = derive)")
	}
	if !skip("dfs-phase") {
		b.dfsPhase = fs.Int("dfs-phase", 50, "pure-DFS executions before BoundedDFS")
	}
	if !skip("no-reduction") {
		b.noRed = fs.Bool("no-reduction", false, "disable constraint set reduction")
	}
	if !skip("one-way") {
		b.oneWay = fs.Bool("one-way", false, "disable two-way instrumentation")
	}
	if !skip("no-framework") {
		b.noFwk = fs.Bool("no-framework", false, "disable the MPI framework")
	}
	if !skip("random") {
		b.random = fs.Bool("random", false, "pure random testing baseline")
	}
	if !skip("schedules") {
		b.scheds = fs.Bool("schedules", false, "explore wildcard-receive match orders (schedule-space testing with deadlock detection)")
	}
	if !skip("bugs") {
		b.bugs = fs.Bool("bugs", false, "leave the seeded bugs live")
	}
	if !skip("shard") {
		b.shard = fs.Int("shard", 1, "split every campaign into N shards by initial setup (reported merged)")
	}
	if !skip("profile") {
		b.profile = fs.Bool("profile", false, "measure the iteration loop's phase bins and print the table after the summary")
	}
	return b
}

// Excluded returns the flags this binder deliberately left unbound, with
// their reasons.
func (b *FlagBinder) Excluded() map[string]string { return b.excluded }

func sval(p *string, d string) string {
	if p == nil {
		return d
	}
	return *p
}

func ival(p *int, d int) int {
	if p == nil {
		return d
	}
	return *p
}

func bval(p *bool) bool { return p != nil && *p }

// Bugs reports whether -bugs asked to leave the seeded bugs live (the
// caller then withholds the fix parameter bags).
func (b *FlagBinder) Bugs() bool { return bval(b.bugs) }

// Profile reports whether -profile asked for phase profiling.
func (b *FlagBinder) Profile() bool { return bval(b.profile) }

// ShardCount is the parsed -shard value.
func (b *FlagBinder) ShardCount() int { return ival(b.shard, 1) }

// base builds the campaign the shared flags describe, before target/seed
// assignment.
func (b *FlagBinder) base(params map[string]int64) Campaign {
	var budget, timeout time.Duration = 0, 30 * time.Second
	if b.budget != nil {
		budget = *b.budget
	}
	if b.timeout != nil {
		timeout = *b.timeout
	}
	return Campaign{
		Strategy:     normStrategy(sval(b.strategy, "compi")),
		Iterations:   ival(b.iters, 200),
		TimeBudget:   budget,
		InitialProcs: ival(b.procs, 8),
		MaxProcs:     ival(b.maxProcs, 16),
		Reduction:    !bval(b.noRed),
		DepthBound:   ival(b.bound, 0),
		DFSPhase:     ival(b.dfsPhase, 50),
		OneWay:       bval(b.oneWay),
		Framework:    !bval(b.noFwk),
		PureRandom:   bval(b.random),
		Schedules:    bval(b.scheds),
		RunTimeout:   timeout,
		Params:       params,
	}
}

// BaseCampaign returns the campaign the shared flags describe with no
// target assigned and no validation — for modes that resolve the program
// another way (compi drive's handshake manifest) and fill in Target or
// External themselves.
func (b *FlagBinder) BaseCampaign(fixParams map[string]int64) Campaign {
	params := map[string]int64{}
	if !b.Bugs() {
		params = fixParams
	}
	c := b.base(params)
	if b.seedF != nil {
		c.Seed = *b.seedF
	} else {
		c.Seed = 1
	}
	return c
}

// Campaign expands the parsed flags into the single campaign a
// single-campaign mode runs (no shard expansion — the caller decides how to
// shard, if at all). fixParams is the seeded-bug fix parameter bag, applied
// unless -bugs.
func (b *FlagBinder) Campaign(fixParams map[string]int64) (Campaign, error) {
	params := map[string]int64{}
	if !b.Bugs() {
		params = fixParams
	}
	c := b.base(params)
	c.Target = sval(b.targetF, "skeleton")
	if b.seedF != nil {
		c.Seed = *b.seedF
	} else {
		c.Seed = 1
	}
	if err := c.Validate(); err != nil {
		return Campaign{}, targetHint(err, c.Target)
	}
	return c, nil
}

// Campaigns expands the parsed grid flags into the campaign list: every
// requested target × every seed, shard-expanded. fixParams is the
// seeded-bug fix parameter bag, applied unless -bugs.
func (b *FlagBinder) Campaigns(fixParams map[string]int64) ([]Campaign, error) {
	params := map[string]int64{}
	if !b.Bugs() {
		params = fixParams
	}
	names := target.Names()
	if ts := sval(b.targetsF, ""); ts != "" {
		names = strings.Split(ts, ",")
	}
	var seeds []int64
	for _, sv := range strings.Split(sval(b.seedsF, "1"), ",") {
		n, err := strconv.ParseInt(strings.TrimSpace(sv), 10, 64)
		if err != nil {
			return nil, fmt.Errorf("bad -seeds entry %q: %v", sv, err)
		}
		seeds = append(seeds, n)
	}

	var out []Campaign
	for _, n := range names {
		n = strings.TrimSpace(n)
		for _, sd := range seeds {
			c := b.base(params)
			c.Target = n
			c.Seed = sd
			if err := c.Validate(); err != nil {
				return nil, targetHint(err, n)
			}
			out = append(out, c)
		}
	}
	if sh := b.ShardCount(); sh > 1 {
		sharded := make([]Campaign, 0, len(out)*sh)
		for _, c := range out {
			sharded = append(sharded, Shard(c, sh)...)
		}
		out = sharded
	}
	return out, nil
}

// targetHint appends the available-target list to unknown-target errors,
// matching the CLI's historical usage message.
func targetHint(err error, name string) error {
	if _, ok := target.Lookup(name); !ok && name != "" {
		names := target.Names()
		sort.Strings(names)
		return fmt.Errorf("unknown target %q; available: %s", name, strings.Join(names, ", "))
	}
	return err
}
