package spec

import (
	"fmt"
	"io"

	"repro/internal/binstat"
	"repro/internal/core"
	"repro/internal/coverage"
	"repro/internal/target"
)

// Overrides carries the live, in-process objects a campaign may run with
// but can never serialize: they are what keeps a sched.Spec strictly richer
// than a wire- or store-able Campaign. Every field maps onto the
// core.Config field of the same name; Portable names fields with the
// "Config." prefix for that reason.
type Overrides struct {
	// Program overrides registry lookup with a literal program model (e.g.
	// one built from a manifest file).
	Program *target.Program

	// Strategy and NewStrategy override the campaign's named strategy with
	// a live value or factory. Specs reused across engines must use the
	// factory (strategies are stateful).
	Strategy    core.Strategy
	NewStrategy func(prog *target.Program, cov *coverage.Tracker) core.Strategy

	// Backend executes iterations out of process; it carries session state
	// and is owned by exactly one engine.
	Backend core.Backend

	// Solver answers constraint-solving requests (shareable across
	// engines, unlike the rest).
	Solver core.SolverService

	// Trace, ErrorLog, Profiler, Checkpoint observe the campaign live.
	Trace    func(it core.IterationStat)
	ErrorLog io.Writer
	Profiler *binstat.Profiler

	Checkpoint      func(*core.Snapshot)
	CheckpointEvery int
}

// Live returns the name of the first live object the overrides carry that
// cannot cross a process boundary, and whether one is present. The names
// are the core.Config fields the overrides map onto — the exact spelling
// the fleet's dispatch errors have always used.
func (o Overrides) Live() (string, bool) {
	for _, live := range []struct {
		field   string
		present bool
	}{
		{"Config.Strategy", o.Strategy != nil},
		{"Config.NewStrategy", o.NewStrategy != nil},
		{"Config.Backend", o.Backend != nil},
		{"Config.Solver", o.Solver != nil},
		{"Config.Trace", o.Trace != nil},
		{"Config.Checkpoint", o.Checkpoint != nil},
		{"Config.ErrorLog", o.ErrorLog != nil},
		{"Config.Profiler", o.Profiler != nil},
	} {
		if live.present {
			return live.field, true
		}
	}
	return "", false
}

// Apply lays the overrides onto an engine config built from the campaign's
// data (Campaign.EngineConfig).
func (o Overrides) Apply(cfg *core.Config) {
	if o.Program != nil {
		cfg.Program = o.Program
	}
	if o.Strategy != nil {
		cfg.Strategy = o.Strategy
	}
	if o.NewStrategy != nil {
		cfg.NewStrategy = o.NewStrategy
	}
	if o.Backend != nil {
		cfg.Backend = o.Backend
	}
	if o.Solver != nil {
		cfg.Solver = o.Solver
	}
	if o.Trace != nil {
		cfg.Trace = o.Trace
	}
	if o.ErrorLog != nil {
		cfg.ErrorLog = o.ErrorLog
	}
	if o.Profiler != nil {
		cfg.Profiler = o.Profiler
	}
	if o.Checkpoint != nil {
		cfg.Checkpoint = o.Checkpoint
	}
	if o.CheckpointEvery != 0 {
		cfg.CheckpointEvery = o.CheckpointEvery
	}
}

// Portable returns the data-only campaign a (campaign, overrides) pair may
// ship as — to a fleet lease or a store manifest. Campaigns carrying live
// objects are refused with an error naming the field; a Program override
// dispatches by registry name (the receiving process runs the same binary,
// so the registry resolves the identical program). The label parameter is
// the spec's display label, used in error text.
func Portable(c Campaign, o Overrides, label string) (Campaign, error) {
	if field, live := o.Live(); live {
		return Campaign{}, fmt.Errorf("spec %q carries a live %s and cannot be dispatched", label, field)
	}
	if o.Program != nil {
		if _, ok := target.Lookup(o.Program.Name); !ok {
			return Campaign{}, fmt.Errorf("spec %q uses unregistered program %q and cannot be dispatched",
				label, o.Program.Name)
		}
		c.Target = o.Program.Name
	}
	if c.Target == "" && c.External == nil {
		return Campaign{}, fmt.Errorf("spec %q names no target", label)
	}
	c.Version = Version
	return c, nil
}
