package spec

import (
	"fmt"

	"repro/internal/core"
)

// FromErrorRecord lifts a campaign error record (the JSON lines the engine's
// ErrorLog writes) into a replay campaign against the named target:
// "reproduce exactly this failure" becomes one serializable blob. The
// inverse is Campaign.ErrorRecord.
func FromErrorRecord(targetName string, rec core.ErrorRecord) Campaign {
	return Campaign{
		Version:      Version,
		Label:        fmt.Sprintf("%s/replay", targetName),
		Target:       targetName,
		Iterations:   1,
		InitialProcs: rec.NProcs,
		InitialFocus: rec.Focus,
		Inputs:       rec.Inputs,
		Params:       rec.Params,
		Schedules:    rec.Schedules,
		MatchOrder:   rec.MatchOrder,
	}
}

// ErrorRecord lowers a replay campaign back to the error-record shape
// core.Replay consumes: same process count, same focus, same inputs and
// parameter bag, and — for schedule-space bugs — the match-order directive
// prefix that steers the runtime to the recorded schedule.
func (c Campaign) ErrorRecord() core.ErrorRecord {
	return core.ErrorRecord{
		NProcs:     c.InitialProcs,
		Focus:      c.InitialFocus,
		Inputs:     c.Inputs,
		Params:     c.Params,
		Schedules:  c.Schedules,
		MatchOrder: c.MatchOrder,
	}
}
