package spec_test

import (
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/spec"
)

// TestErrorRecordRoundTrip: error record → replay campaign → error record is
// the identity, and the campaign is a valid serializable spec — the contract
// behind `compi replay -spec` and `compi run -replay` sharing one shape.
func TestErrorRecordRoundTrip(t *testing.T) {
	rec := core.ErrorRecord{
		NProcs:     4,
		Focus:      2,
		Inputs:     map[string]int64{"x": 100, "y": 50},
		Params:     map[string]int64{"cap": 9},
		Schedules:  true,
		MatchOrder: [][]int{{1, 0}},
	}
	c := spec.FromErrorRecord("skeleton", rec)
	if c.Target != "skeleton" || c.Label != "skeleton/replay" || c.Iterations != 1 {
		t.Fatalf("replay campaign shape: %+v", c)
	}
	if c.Version != spec.Version {
		t.Fatalf("replay campaign not version-stamped: %d", c.Version)
	}
	if err := c.Validate(); err != nil {
		t.Fatalf("replay campaign invalid: %v", err)
	}
	got := c.ErrorRecord()
	if !reflect.DeepEqual(got, rec) {
		t.Fatalf("round trip changed the record:\n got  %+v\n want %+v", got, rec)
	}
}
