// Package spec defines the one canonical campaign description: a data-only,
// JSON-serializable, schema-versioned Campaign every layer of the system
// agrees on. The scheduler runs it (plus live Overrides), the fleet ships it
// verbatim in lease frames, the store keys its setup index and batch
// manifests by its Canonical() hash, the CLI's shared FlagBinder builds it,
// and replay records round-trip through it — so "reproduce exactly this
// campaign" is one JSON blob, not four parallel structs kept in sync by
// hand.
//
// What is data and what is live: everything a campaign's trajectory is
// determined by (target, seed, strategy name, search knobs, parameter bags)
// is data and lives here. Everything that is a live in-process object — a
// stateful Strategy value, a Backend owning a child process, trace and
// checkpoint callbacks — cannot be named on a wire or in a store and lives
// in Overrides, which never serializes. Portable is the boundary check.
package spec

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"path/filepath"
	"sort"
	"time"

	"repro/internal/core"
	"repro/internal/target"
)

// Version is the Campaign schema version. Decode refuses blobs stamped with
// a newer version; Portable stamps outgoing campaigns with the current one.
// The setup key (Canonical) deliberately does not include it — schema bumps
// must not orphan stored explorations; core.SnapshotVersion already fences
// incompatible snapshots.
const Version = 1

// External identifies an out-of-process target binary driven over the pipe
// protocol. The path must resolve on whichever machine runs the campaign.
type External struct {
	Bin  string   `json:"bin"`
	Args []string `json:"args,omitempty"`
	Env  []string `json:"env,omitempty"`
}

// Campaign is the canonical, data-only description of one testing campaign.
// Durations serialize as nanosecond integers (Go's time.Duration encoding).
// The zero value is a valid in-memory campaign (Version 0 means "current");
// blobs that leave the process carry an explicit Version.
type Campaign struct {
	// Version is the schema version of a serialized campaign.
	Version int `json:"version,omitempty"`

	// Label identifies the campaign in reports; defaults to
	// "<target>/seed<seed>".
	Label string `json:"label,omitempty"`

	// Target names a program in the registry. May be empty only when
	// External is set (the program model then comes from the target's
	// handshake manifest) or when live Overrides supply a Program.
	Target string `json:"target,omitempty"`

	// External, when non-nil, runs the campaign against an out-of-process
	// target binary.
	External *External `json:"external,omitempty"`

	// Seed is the campaign seed. One field — the old sched.Spec.Seed /
	// core.Config.Seed split is gone.
	Seed int64 `json:"seed,omitempty"`

	// Group marks this campaign as one shard of a larger search; reports
	// merge all campaigns sharing a Group into one rollup.
	Group string `json:"group,omitempty"`

	// Strategy names the search strategy: "" or "compi" (the default
	// two-phase DFS), "bounded-dfs", "random-branch", "uniform-random", or
	// "cfg". Strategy parameters are data too: DepthBound bounds
	// bounded-dfs, Seed seeds the random strategies.
	Strategy string `json:"strategy,omitempty"`

	// Iterations and TimeBudget say how long to explore — deliberately
	// excluded from Canonical(), which keys *what* is explored.
	Iterations int           `json:"iterations,omitempty"`
	TimeBudget time.Duration `json:"timeBudget,omitempty"`

	// InitialProcs/InitialFocus seed the first launch; MaxProcs caps the
	// derived process count.
	InitialProcs int `json:"initialProcs,omitempty"`
	InitialFocus int `json:"initialFocus,omitempty"`
	MaxProcs     int `json:"maxProcs,omitempty"`

	Reduction  bool `json:"reduction,omitempty"`
	DepthBound int  `json:"depthBound,omitempty"`
	DFSPhase   int  `json:"dfsPhase,omitempty"`
	OneWay     bool `json:"oneWay,omitempty"`
	Framework  bool `json:"framework,omitempty"`
	PureRandom bool `json:"pureRandom,omitempty"`
	Schedules  bool `json:"schedules,omitempty"`

	RunTimeout     time.Duration `json:"runTimeout,omitempty"`
	MaxTicks       int64         `json:"maxTicks,omitempty"`
	SolverMaxNodes int           `json:"solverMaxNodes,omitempty"`

	// Params is the campaign parameter bag (per-target knobs, seeded-bug
	// fix toggles); Inputs seeds the first execution's symbolic inputs.
	Params map[string]int64 `json:"params,omitempty"`
	Inputs map[string]int64 `json:"inputs,omitempty"`

	// MatchOrder, for replay campaigns, is the wildcard-match directive
	// prefix that steers the runtime to a recorded schedule.
	MatchOrder [][]int `json:"matchOrder,omitempty"`
}

// TargetName is the target the campaign's results are attributed to: the
// explicit Target, or the external binary's base name until the handshake
// manifest resolves the real program.
func (c Campaign) TargetName() string {
	if c.Target == "" && c.External != nil {
		return filepath.Base(c.External.Bin)
	}
	return c.Target
}

// DisplayLabel is the label the campaign reports under — the explicit
// Label, or "<target>/seed<seed>".
func (c Campaign) DisplayLabel() string {
	if c.Label != "" {
		return c.Label
	}
	return fmt.Sprintf("%s/seed%d", c.TargetName(), c.Seed)
}

// normStrategy folds the default strategy's two spellings together so
// "compi" and "" canonicalize (and validate) identically.
func normStrategy(s string) string {
	if s == "compi" {
		return ""
	}
	return s
}

// Validate checks a campaign is structurally runnable: schema version
// supported, a target named (in the registry, when no live Program override
// will supply one), a known strategy, and no nonsensical negatives. It does
// not touch defaults — zero means "engine default" throughout.
func (c *Campaign) Validate() error {
	if c.Version > Version {
		return fmt.Errorf("spec: campaign schema v%d is newer than this build supports (v%d)", c.Version, Version)
	}
	if c.Target == "" && c.External == nil {
		return fmt.Errorf("spec: campaign %q names no target", c.DisplayLabel())
	}
	if c.External != nil && c.External.Bin == "" {
		return fmt.Errorf("spec: campaign %q has an external target without a binary path", c.DisplayLabel())
	}
	if c.Target != "" && c.External == nil {
		if _, ok := target.Lookup(c.Target); !ok {
			return fmt.Errorf("spec: campaign %q names unknown target %q", c.DisplayLabel(), c.Target)
		}
	}
	if _, err := core.NamedStrategy(normStrategy(c.Strategy), c.Seed, c.DepthBound); err != nil {
		return fmt.Errorf("spec: campaign %q: %w", c.DisplayLabel(), err)
	}
	for name, val := range map[string]int64{
		"iterations":     int64(c.Iterations),
		"timeBudget":     int64(c.TimeBudget),
		"initialProcs":   int64(c.InitialProcs),
		"initialFocus":   int64(c.InitialFocus),
		"maxProcs":       int64(c.MaxProcs),
		"depthBound":     int64(c.DepthBound),
		"dfsPhase":       int64(c.DFSPhase),
		"runTimeout":     int64(c.RunTimeout),
		"maxTicks":       c.MaxTicks,
		"solverMaxNodes": int64(c.SolverMaxNodes),
	} {
		if val < 0 {
			return fmt.Errorf("spec: campaign %q: negative %s", c.DisplayLabel(), name)
		}
	}
	for k := range c.Params {
		if k == "" {
			return fmt.Errorf("spec: campaign %q has an empty parameter name", c.DisplayLabel())
		}
	}
	for k := range c.Inputs {
		if k == "" {
			return fmt.Errorf("spec: campaign %q has an empty input name", c.DisplayLabel())
		}
	}
	return nil
}

// EngineConfig lowers the campaign to the engine's Config: a pure
// field-by-field mapping plus the strategy name resolved to a factory
// (strategies are stateful, so the config carries a constructor — the
// scheduler's determinism contract). Live objects are the caller's to add
// afterwards (see Overrides.Apply).
func (c Campaign) EngineConfig() (core.Config, error) {
	factory, err := core.NamedStrategy(normStrategy(c.Strategy), c.Seed, c.DepthBound)
	if err != nil {
		return core.Config{}, fmt.Errorf("spec: campaign %q: %w", c.DisplayLabel(), err)
	}
	return core.Config{
		NewStrategy:    factory,
		Params:         c.Params,
		Inputs:         c.Inputs,
		Iterations:     c.Iterations,
		TimeBudget:     c.TimeBudget,
		InitialProcs:   c.InitialProcs,
		InitialFocus:   c.InitialFocus,
		MaxProcs:       c.MaxProcs,
		Reduction:      c.Reduction,
		DepthBound:     c.DepthBound,
		DFSPhase:       c.DFSPhase,
		OneWay:         c.OneWay,
		Framework:      c.Framework,
		PureRandom:     c.PureRandom,
		Schedules:      c.Schedules,
		Seed:           c.Seed,
		RunTimeout:     c.RunTimeout,
		MaxTicks:       c.MaxTicks,
		SolverMaxNodes: c.SolverMaxNodes,
	}, nil
}

// Decode reads one campaign from strict JSON: unknown fields, duplicate
// keys, and newer schema versions are all errors (a blob that would silently
// drop or shadow a field is a campaign that would silently run differently).
// The decoded campaign is validated.
func Decode(r io.Reader) (Campaign, error) {
	raw, err := io.ReadAll(r)
	if err != nil {
		return Campaign{}, fmt.Errorf("spec: reading campaign: %w", err)
	}
	if err := checkDuplicateKeys(json.NewDecoder(bytes.NewReader(raw))); err != nil {
		return Campaign{}, fmt.Errorf("spec: campaign JSON: %w", err)
	}
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.DisallowUnknownFields()
	var c Campaign
	if err := dec.Decode(&c); err != nil {
		return Campaign{}, fmt.Errorf("spec: campaign JSON: %w", err)
	}
	if err := c.Validate(); err != nil {
		return Campaign{}, err
	}
	return c, nil
}

// checkDuplicateKeys walks one JSON value and rejects objects that bind the
// same key twice (encoding/json would silently keep the last one).
func checkDuplicateKeys(dec *json.Decoder) error {
	t, err := dec.Token()
	if err != nil {
		return err
	}
	d, ok := t.(json.Delim)
	if !ok {
		return nil
	}
	switch d {
	case '{':
		seen := map[string]bool{}
		for dec.More() {
			kt, err := dec.Token()
			if err != nil {
				return err
			}
			key := kt.(string)
			if seen[key] {
				return fmt.Errorf("duplicate key %q", key)
			}
			seen[key] = true
			if err := checkDuplicateKeys(dec); err != nil {
				return err
			}
		}
		_, err = dec.Token() // consume '}'
		return err
	case '[':
		for dec.More() {
			if err := checkDuplicateKeys(dec); err != nil {
				return err
			}
		}
		_, err = dec.Token() // consume ']'
		return err
	}
	return nil
}

// Diff reports the fields on which two campaigns differ, one
// "field: old != new" line per difference, for error messages — a resumed
// batch whose manifest slot was written by a different spec names exactly
// what changed instead of resuming the wrong exploration.
func Diff(a, b Campaign) []string {
	am, bm := fieldMap(a), fieldMap(b)
	keys := map[string]bool{}
	for k := range am {
		keys[k] = true
	}
	for k := range bm {
		keys[k] = true
	}
	names := make([]string, 0, len(keys))
	for k := range keys {
		names = append(names, k)
	}
	sort.Strings(names)
	var out []string
	for _, k := range names {
		av, aok := am[k]
		bv, bok := bm[k]
		if aok && bok && av == bv {
			continue
		}
		if !aok {
			av = "(unset)"
		}
		if !bok {
			bv = "(unset)"
		}
		out = append(out, fmt.Sprintf("%s: %s != %s", k, av, bv))
	}
	return out
}

// fieldMap flattens a campaign to its JSON field names and re-marshaled
// values, so Diff compares exactly what serializes.
func fieldMap(c Campaign) map[string]string {
	raw, _ := json.Marshal(c)
	var m map[string]json.RawMessage
	json.Unmarshal(raw, &m)
	out := make(map[string]string, len(m))
	for k, v := range m {
		out[k] = string(v)
	}
	return out
}
