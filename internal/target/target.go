// Package target is the program-model layer of the reproduction: the meeting
// point between the instrumented target applications and the testing engine.
//
// In COMPI proper this layer is produced by CIL at instrumentation time: the
// transformed source carries a stable numeric ID per conditional site, a
// branch table relating sites to functions (the reachable-branch universe
// behind the paper's coverage rates), and the developer's input markings.
// Here the targets declare the same artifacts in Go at package-init time
// through a Builder, and the result — a Program — is published in a global
// registry the engine, the CLIs, and the experiment drivers all consume.
//
// The package has four pieces:
//
//   - Program: one target application — its entry point, SLOC, declared
//     inputs with caps, static branch table, and static call graph. It
//     answers the engine's coverage queries (TotalBranches,
//     ReachableBranches) and the CFG strategy's distance queries.
//   - Builder: mints stable per-program conditional-site and callsite IDs in
//     static declaration order, with early panics on duplicate declarations.
//   - the registry: a mutex-guarded name → Program table safe for concurrent
//     campaigns (Register, Lookup, Names, Programs).
//   - Manifest: the JSON export of a program's declarations, served by
//     `compi targets --json` and consumed by audit tooling.
package target

import (
	"repro/internal/conc"
	"repro/internal/mpi"
)

// CondDecl is one declared conditional site: the static branch-table row CIL
// would emit for an `if` in the instrumented source. ID is stable across
// runs because it is minted in static declaration order.
type CondDecl struct {
	ID    conc.CondID `json:"id"`
	Func  string      `json:"func"`
	Label string      `json:"label"`
}

// CallDecl is one declared static callsite, an edge of the program's call
// graph. The CFG-directed search strategy walks these edges to estimate
// distances to uncovered branches.
type CallDecl struct {
	ID     int32  `json:"id"`
	Caller string `json:"caller"`
	Callee string `json:"callee"`
}

// InputDecl is one developer-marked symbolic input (COMPI_int /
// COMPI_int_with_limit, §IV-A). HasCap distinguishes a capped input from an
// unbounded one; Cap is the §IV-A upper limit the solver must respect.
type InputDecl struct {
	Name   string `json:"name"`
	Cap    int64  `json:"cap,omitempty"`
	HasCap bool   `json:"capped,omitempty"`
}

// Program is one registered target application: the model of the
// instrumented program the engine schedules campaigns against.
//
// Name, SLOC, and Main are fixed at Build time; the declaration tables are
// immutable afterwards, so a Program may be shared by concurrent campaigns
// without synchronization.
type Program struct {
	// Name identifies the program in the registry and the CLIs.
	Name string
	// SLOC is the source-line count reported in the paper's Table III.
	SLOC int
	// Main is the entry point every rank executes; its return value is the
	// rank's exit code.
	Main func(*mpi.Proc) int

	conds  []CondDecl
	calls  []CallDecl
	inputs []InputDecl
	funcs  []string // static first-mention order
}

// TotalBranches returns the size of the static branch universe: two branches
// per declared conditional site (Table III's "branches" column).
func (p *Program) TotalBranches() int { return 2 * len(p.conds) }

// Conds returns the declared conditional sites in static order.
func (p *Program) Conds() []CondDecl {
	out := make([]CondDecl, len(p.conds))
	copy(out, p.conds)
	return out
}

// Calls returns the declared static callsites in declaration order.
func (p *Program) Calls() []CallDecl {
	out := make([]CallDecl, len(p.calls))
	copy(out, p.calls)
	return out
}

// Inputs returns the declared symbolic inputs in declaration order.
func (p *Program) Inputs() []InputDecl {
	out := make([]InputDecl, len(p.inputs))
	copy(out, p.inputs)
	return out
}

// Functions returns every function named by a declaration, in static
// first-mention order.
func (p *Program) Functions() []string {
	out := make([]string, len(p.funcs))
	copy(out, p.funcs)
	return out
}

// ReachableBranches estimates the reachable-branch universe given the set of
// functions encountered at runtime: the sum of declared branches of every
// encountered function — the CREST FAQ methodology the paper's coverage
// rates are computed with.
func (p *Program) ReachableBranches(funcs map[string]struct{}) int {
	n := 0
	for _, c := range p.conds {
		if _, ok := funcs[c.Func]; ok {
			n += 2
		}
	}
	return n
}

// funcHop is the distance cost of crossing one call edge in Distances. It
// dominates any within-function index distance, so the CFG strategy always
// prefers a goal in the current function over one a call away.
const funcHop = 256

// Distances returns, for every conditional site from which some goal site is
// statically reachable, an estimated distance to the nearest goal: the
// number of call-graph edges to the goal's function (weighted by funcHop)
// plus, within the goal's own function, the declaration-order index distance.
// Sites with no path to any goal are absent from the result.
func (p *Program) Distances(goal map[conc.CondID]struct{}) map[conc.CondID]int {
	out := map[conc.CondID]int{}
	if len(goal) == 0 {
		return out
	}

	byFunc := map[string][]CondDecl{}
	for _, c := range p.conds {
		byFunc[c.Func] = append(byFunc[c.Func], c)
	}

	// Multi-source BFS over the undirected call graph, rooted at the
	// functions owning a goal site.
	adj := map[string][]string{}
	for _, e := range p.calls {
		adj[e.Caller] = append(adj[e.Caller], e.Callee)
		adj[e.Callee] = append(adj[e.Callee], e.Caller)
	}
	fdist := map[string]int{}
	var queue []string
	for _, f := range p.funcs {
		for _, c := range byFunc[f] {
			if _, ok := goal[c.ID]; ok {
				fdist[f] = 0
				queue = append(queue, f)
				break
			}
		}
	}
	for len(queue) > 0 {
		f := queue[0]
		queue = queue[1:]
		for _, g := range adj[f] {
			if _, seen := fdist[g]; !seen {
				fdist[g] = fdist[f] + 1
				queue = append(queue, g)
			}
		}
	}

	for f, d := range fdist {
		conds := byFunc[f]
		for i, c := range conds {
			if d > 0 {
				out[c.ID] = d * funcHop
				continue
			}
			// Same function as a goal: refine by declaration-order index
			// distance to the nearest goal site.
			local := funcHop
			for j, g := range conds {
				if _, ok := goal[g.ID]; !ok {
					continue
				}
				ij := i - j
				if ij < 0 {
					ij = -ij
				}
				if ij < local {
					local = ij
				}
			}
			out[c.ID] = local
		}
	}
	return out
}
