package target

import (
	"bytes"
	"encoding/json"
	"reflect"
	"testing"
)

func manifestFixture() Manifest {
	b := NewBuilder("mini", 42)
	b.Cond("sanity", "x >= 1")
	b.Cond("solve", "i < x")
	b.InCap("x", 100)
	b.In("seed")
	b.Call("main", "sanity")
	b.Call("main", "solve")
	return b.Build(nopMain).Manifest()
}

// manifestGolden pins the on-the-wire schema of `compi targets --json`.
// Changing it is an interface break for external manifest consumers: update
// deliberately, alongside the README.
const manifestGolden = `{
  "program": "mini",
  "sloc": 42,
  "total_branches": 4,
  "functions": [
    "sanity",
    "solve",
    "main"
  ],
  "conds": [
    {
      "id": 0,
      "func": "sanity",
      "label": "x \u003e= 1"
    },
    {
      "id": 1,
      "func": "solve",
      "label": "i \u003c x"
    }
  ],
  "calls": [
    {
      "id": 0,
      "caller": "main",
      "callee": "sanity"
    },
    {
      "id": 1,
      "caller": "main",
      "callee": "solve"
    }
  ],
  "inputs": [
    {
      "name": "x",
      "cap": 100,
      "capped": true
    },
    {
      "name": "seed"
    }
  ]
}`

func TestManifestGolden(t *testing.T) {
	got, err := json.MarshalIndent(manifestFixture(), "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != manifestGolden {
		t.Fatalf("manifest JSON drifted from the golden form.\ngot:\n%s\nwant:\n%s", got, manifestGolden)
	}
}

func TestManifestRoundTrip(t *testing.T) {
	want := []Manifest{manifestFixture()}
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(want); err != nil {
		t.Fatal(err)
	}
	got, err := ReadManifests(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("round trip drifted:\ngot  %+v\nwant %+v", got, want)
	}
}

func TestManifestsCoverWholeRegistry(t *testing.T) {
	registerFixture("manifest-reg-probe")
	names := Names()
	ms := Manifests()
	if len(ms) != len(names) {
		t.Fatalf("Manifests covers %d programs, registry holds %d", len(ms), len(names))
	}
	for i, m := range ms {
		if m.Program != names[i] {
			t.Fatalf("manifest %d is %q, want registry order %q", i, m.Program, names[i])
		}
	}
	var buf bytes.Buffer
	if err := WriteManifests(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadManifests(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back, ms) {
		t.Fatal("WriteManifests/ReadManifests did not round-trip the registry")
	}
}
