package target

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// encodeManifests serializes manifests exactly as WriteManifests would, so
// the rejection tests exercise ReadManifests on realistic input.
func encodeManifests(t *testing.T, ms []Manifest) *bytes.Buffer {
	t.Helper()
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(ms); err != nil {
		t.Fatal(err)
	}
	return &buf
}

// TestReadManifestsRejectsInvalid pins the trust boundary: a manifest that
// arrives from outside the process must be rejected before registration when
// it declares duplicate branch IDs or inputs violating the §IV-A cap rules,
// with an error message naming the offending field.
func TestReadManifestsRejectsInvalid(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Manifest)
		want   []string // substrings the error must carry
	}{
		{
			name: "duplicate conditional-site ID",
			mutate: func(m *Manifest) {
				m.Conds = append(m.Conds, CondDecl{ID: m.Conds[0].ID, Func: "extra", Label: "dup"})
			},
			want: []string{"duplicate conditional-site ID 0", "sanity", "extra"},
		},
		{
			name: "capped input with non-positive cap",
			mutate: func(m *Manifest) {
				m.Inputs[0].Cap = 0
			},
			want: []string{"input \"x\"", "§IV-A cap 0"},
		},
		{
			name: "negative cap",
			mutate: func(m *Manifest) {
				m.Inputs[0].Cap = -5
			},
			want: []string{"input \"x\"", "§IV-A cap -5"},
		},
		{
			name: "cap without capped flag",
			mutate: func(m *Manifest) {
				m.Inputs[1].Cap = 7 // "seed" is declared uncapped
			},
			want: []string{"input \"seed\"", "cap 7", "not marked capped"},
		},
		{
			name: "duplicate input name",
			mutate: func(m *Manifest) {
				m.Inputs = append(m.Inputs, InputDecl{Name: "x"})
			},
			want: []string{"input \"x\"", "twice"},
		},
		{
			name:   "empty program name",
			mutate: func(m *Manifest) { m.Program = "" },
			want:   []string{"empty program name"},
		},
		{
			name:   "no conditional sites",
			mutate: func(m *Manifest) { m.Conds = nil; m.TotalBranches = 0 },
			want:   []string{"no conditional sites"},
		},
		{
			name:   "branch count mismatch",
			mutate: func(m *Manifest) { m.TotalBranches = 6 },
			want:   []string{"total_branches is 6", "want 4"},
		},
		{
			name: "empty func on a site",
			mutate: func(m *Manifest) {
				m.Conds[1].Func = ""
			},
			want: []string{"site 1", "empty func"},
		},
		{
			name: "empty callsite endpoint",
			mutate: func(m *Manifest) {
				m.Calls[0].Callee = ""
			},
			want: []string{"callsite 0", "empty endpoint"},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			m := manifestFixture()
			tc.mutate(&m)
			_, err := ReadManifests(encodeManifests(t, []Manifest{m}))
			if err == nil {
				t.Fatalf("ReadManifests accepted an invalid manifest (%s)", tc.name)
			}
			for _, w := range tc.want {
				if !strings.Contains(err.Error(), w) {
					t.Fatalf("error %q does not name the offender: want substring %q", err, w)
				}
			}
			if _, err := FromManifest(m); err == nil {
				t.Fatalf("FromManifest accepted an invalid manifest (%s)", tc.name)
			}
		})
	}
}

// TestFromManifestRoundTrip checks that a Program rebuilt from a manifest
// answers the same static queries as the original: the model survives the
// export → import cycle that out-of-process driving relies on.
func TestFromManifestRoundTrip(t *testing.T) {
	m := manifestFixture()
	p, err := FromManifest(m)
	if err != nil {
		t.Fatal(err)
	}
	back := p.Manifest()
	bs, _ := json.Marshal(back)
	ms, _ := json.Marshal(m)
	if string(bs) != string(ms) {
		t.Fatalf("manifest did not round-trip through FromManifest:\ngot  %s\nwant %s", bs, ms)
	}
	if p.TotalBranches() != m.TotalBranches {
		t.Fatalf("TotalBranches = %d, want %d", p.TotalBranches(), m.TotalBranches)
	}
	funcs := map[string]struct{}{"sanity": {}, "solve": {}}
	if got, want := p.ReachableBranches(funcs), 4; got != want {
		t.Fatalf("ReachableBranches = %d, want %d", got, want)
	}
}

// TestFromManifestMainPanics pins the guard: a manifest-built Program has no
// in-process entry point, and accidentally launching it must say so.
func TestFromManifestMainPanics(t *testing.T) {
	p, err := FromManifest(manifestFixture())
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("Main of a manifest-built Program did not panic")
		}
		if !strings.Contains(r.(string), "no in-process entry point") {
			t.Fatalf("panic %v does not explain the misuse", r)
		}
	}()
	p.Main(nil)
}

// TestRegisteredManifestsValidate checks every bundled target's exported
// manifest passes the same validation external manifests face — the built-in
// declarations are themselves §IV-A-conformant.
func TestRegisteredManifestsValidate(t *testing.T) {
	for _, m := range Manifests() {
		if err := m.Validate(); err != nil {
			t.Errorf("registered target %q exports an invalid manifest: %v", m.Program, err)
		}
	}
}
