package target

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/conc"
)

// The global registry: name → Program. Targets publish themselves from
// package init; campaigns, CLIs, and the experiment drivers look programs up
// by name. The mutex makes the table safe for concurrent campaigns — the
// ROADMAP's parallel campaign scheduling reads it from many goroutines while
// tests may still be registering fixtures.
var registry = struct {
	sync.RWMutex
	byName map[string]*Program
}{byName: map[string]*Program{}}

// Register publishes a program under its name. It panics on a nil program,
// an empty name, a name already taken, or a duplicate conditional-site ID —
// all authoring errors that must surface at process start with a message
// naming the offender, not as silent cross-target coverage corruption
// mid-campaign.
func Register(p *Program) {
	if p == nil {
		panic("target: Register(nil)")
	}
	if p.Name == "" {
		panic("target: Register of a program with an empty name")
	}
	seen := map[conc.CondID]string{}
	for _, c := range p.conds {
		if prev, dup := seen[c.ID]; dup {
			panic(fmt.Sprintf("target: program %q declares conditional-site ID %d twice (%s and %s/%q)",
				p.Name, c.ID, prev, c.Func, c.Label))
		}
		seen[c.ID] = fmt.Sprintf("%s/%q", c.Func, c.Label)
	}
	registry.Lock()
	defer registry.Unlock()
	if _, dup := registry.byName[p.Name]; dup {
		panic(fmt.Sprintf("target: program %q registered twice", p.Name))
	}
	registry.byName[p.Name] = p
}

// Lookup returns the program registered under name.
func Lookup(name string) (*Program, bool) {
	registry.RLock()
	defer registry.RUnlock()
	p, ok := registry.byName[name]
	return p, ok
}

// Names returns the registered program names, sorted — the stable order the
// CLIs list and audit targets in.
func Names() []string {
	registry.RLock()
	defer registry.RUnlock()
	out := make([]string, 0, len(registry.byName))
	for n := range registry.byName {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Programs returns every registered program, sorted by name.
func Programs() []*Program {
	registry.RLock()
	defer registry.RUnlock()
	out := make([]*Program, 0, len(registry.byName))
	for _, p := range registry.byName {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}
