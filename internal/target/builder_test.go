package target

import (
	"testing"

	"repro/internal/conc"
	"repro/internal/mpi"
)

func nopMain(*mpi.Proc) int { return 0 }

func mustPanic(t *testing.T, want string, f func()) {
	t.Helper()
	defer func() {
		r := recover()
		if r == nil {
			t.Fatalf("no panic; want one mentioning %q", want)
		}
		msg, ok := r.(string)
		if !ok {
			t.Fatalf("panic value %v (%T); want string", r, r)
		}
		if !contains(msg, want) {
			t.Fatalf("panic %q does not mention %q", msg, want)
		}
	}()
	f()
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

func TestBuilderMintsSequentialStableIDs(t *testing.T) {
	b := NewBuilder("b-ids", 10)
	ids := []conc.CondID{
		b.Cond("f", "a"),
		b.Cond("f", "b"),
		b.Cond("g", "a"), // same label, different function: distinct site
	}
	for i, id := range ids {
		if id != conc.CondID(i) {
			t.Fatalf("cond %d minted ID %d; declaration order must number 0,1,2,…", i, id)
		}
	}
	if c0 := b.Call("f", "g"); c0 != 0 {
		t.Fatalf("first callsite ID = %d", c0)
	}
	if c1 := b.Call("g", "h"); c1 != 1 {
		t.Fatalf("second callsite ID = %d", c1)
	}
	p := b.Build(nopMain)
	if p.TotalBranches() != 6 {
		t.Fatalf("TotalBranches = %d, want 6", p.TotalBranches())
	}
	want := []string{"f", "g", "h"}
	got := p.Functions()
	if len(got) != len(want) {
		t.Fatalf("Functions = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Functions = %v, want first-mention order %v", got, want)
		}
	}
}

func TestBuilderPanicsOnDuplicateCond(t *testing.T) {
	b := NewBuilder("b-dup-cond", 10)
	b.Cond("f", "x > 0")
	mustPanic(t, `conditional site f/"x > 0" twice`, func() { b.Cond("f", "x > 0") })
}

func TestBuilderPanicsOnDuplicateInput(t *testing.T) {
	b := NewBuilder("b-dup-in", 10)
	b.In("x")
	mustPanic(t, `input "x" twice`, func() { b.InCap("x", 5) })
}

func TestBuilderSealedAfterBuild(t *testing.T) {
	b := NewBuilder("b-sealed", 10)
	b.Cond("f", "c")
	b.Build(nopMain)
	mustPanic(t, "after Build", func() { b.Cond("f", "late") })
	mustPanic(t, "after Build", func() { b.Call("f", "g") })
	mustPanic(t, "after Build", func() { b.In("late") })
	mustPanic(t, "after Build", func() { b.Build(nopMain) })
}

func TestBuildRejectsEmptyPrograms(t *testing.T) {
	mustPanic(t, "nil entry point", func() {
		b := NewBuilder("b-nil-main", 10)
		b.Cond("f", "c")
		b.Build(nil)
	})
	mustPanic(t, "no declared conditional sites", func() {
		NewBuilder("b-no-conds", 10).Build(nopMain)
	})
	mustPanic(t, "empty program name", func() { NewBuilder("", 10) })
}

func TestInputDeclarationsCarryCaps(t *testing.T) {
	b := NewBuilder("b-inputs", 10)
	b.Cond("f", "c")
	b.In("free")
	b.InCap("capped", 42)
	p := b.Build(nopMain)
	in := p.Inputs()
	if len(in) != 2 {
		t.Fatalf("Inputs = %v", in)
	}
	if in[0] != (InputDecl{Name: "free"}) {
		t.Fatalf("uncapped decl = %+v", in[0])
	}
	if in[1] != (InputDecl{Name: "capped", Cap: 42, HasCap: true}) {
		t.Fatalf("capped decl = %+v", in[1])
	}
}

// TestDistances checks the two levels of the static distance estimate: index
// distance within the goal's function, and call-graph hops outside it.
func TestDistances(t *testing.T) {
	b := NewBuilder("b-dist", 10)
	mA := b.Cond("main", "a")   // id 0
	mB := b.Cond("main", "b")   // id 1
	hA := b.Cond("helper", "a") // id 2
	hB := b.Cond("helper", "b") // id 3
	lA := b.Cond("leaf", "a")   // id 4
	oA := b.Cond("orphan", "a") // id 5: not connected to the call graph
	b.Call("main", "helper")
	b.Call("helper", "leaf")
	p := b.Build(nopMain)

	goal := map[conc.CondID]struct{}{hB: {}}
	d := p.Distances(goal)

	if d[hB] != 0 {
		t.Fatalf("goal site distance = %d", d[hB])
	}
	if d[hA] != 1 {
		t.Fatalf("same-function neighbor distance = %d, want 1", d[hA])
	}
	// One call hop away: both main sites and the leaf site.
	for _, id := range []conc.CondID{mA, mB, lA} {
		if d[id] != funcHop {
			t.Fatalf("site %d distance = %d, want %d (one call hop)", id, d[id], funcHop)
		}
	}
	if _, ok := d[oA]; ok {
		t.Fatalf("orphan function received a distance: %v", d)
	}
	if len(p.Distances(nil)) != 0 {
		t.Fatal("empty goal set must yield an empty map")
	}
}
