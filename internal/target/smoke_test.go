package target_test

import (
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/target"
	_ "repro/internal/targets/hpl"
	_ "repro/internal/targets/imb"
	_ "repro/internal/targets/skeleton"
	"repro/internal/targets/stencil"
	"repro/internal/targets/susy"
)

// TestEveryRegisteredTargetRuns walks the registry and drives each program
// through a handful of engine iterations, so every bundled target is
// exercised by `go test ./...` rather than only via the compi CLI. It guards
// the regression class where a target's declarations and its runtime
// behavior drift apart (wrong site IDs, missing registration, an entry
// point that cannot complete a single campaign iteration).
func TestEveryRegisteredTargetRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign smoke test is not -short")
	}
	// Fix the seeded bugs: the smoke test checks the pipeline, not the bug
	// hunt, and the stencil infinite loop would spend the whole watchdog
	// budget when left live.
	params := core.MergeParams(susy.FixAll(), stencil.FixAll())

	// The in-package registry tests publish fixtures under this prefix into
	// the same (global) registry; skip them — they are not runnable targets.
	names := target.Names()[:0:0]
	for _, n := range target.Names() {
		if !strings.HasPrefix(n, "zzz-fixture-") {
			names = append(names, n)
		}
	}
	for _, want := range []string{"hpl", "imb-mpi1", "skeleton", "stencil", "susy-hmc"} {
		if _, ok := target.Lookup(want); !ok {
			t.Fatalf("bundled target %q missing from registry %v", want, names)
		}
	}
	for _, name := range names {
		prog, ok := target.Lookup(name)
		if !ok {
			t.Fatalf("Names listed %q but Lookup missed it", name)
		}
		t.Run(name, func(t *testing.T) {
			res := core.NewEngine(core.Config{
				Program:      prog,
				Params:       params,
				Iterations:   6,
				Reduction:    true,
				Framework:    true,
				Seed:         1,
				InitialProcs: 4,
				MaxProcs:     8,
				RunTimeout:   10 * time.Second,
			}).Run()
			if len(res.Iterations) != 6 {
				t.Fatalf("campaign ran %d/6 iterations", len(res.Iterations))
			}
			if res.Coverage.Count() == 0 {
				t.Fatal("campaign covered no branches")
			}
			if res.Coverage.Count() > prog.TotalBranches() {
				t.Fatalf("covered %d branches, program declares only %d",
					res.Coverage.Count(), prog.TotalBranches())
			}
			reach := prog.ReachableBranches(res.Coverage.Funcs())
			if reach == 0 || reach > prog.TotalBranches() {
				t.Fatalf("reachable estimate %d/%d", reach, prog.TotalBranches())
			}
		})
	}
}
