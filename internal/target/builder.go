package target

import (
	"fmt"

	"repro/internal/conc"
	"repro/internal/mpi"
)

// Builder assembles one Program's static declarations at package-init time,
// playing the role of COMPI's CIL instrumentation pass: every conditional
// site and callsite receives a stable numeric ID in static declaration
// order, so IDs are identical across builds and runs regardless of which
// other targets are linked into the binary.
//
// The intended use is a package-level builder whose Cond results initialize
// the target's site variables, followed by an init func that declares inputs
// and call edges and registers the built program:
//
//	var b = target.NewBuilder("skeleton", 120)
//
//	var cXPos = b.Cond("sanity", "x >= 1")
//
//	func init() {
//		b.InCap("x", 200)
//		b.Call("main", "sanity")
//		target.Register(b.Build(Main))
//	}
//
// Builder methods panic on authoring mistakes (duplicate declarations, use
// after Build) so a broken target fails at process start, not mid-campaign.
// A Builder is not safe for concurrent use; package initialization is
// sequential, which is the only context targets construct one in.
type Builder struct {
	name      string
	sloc      int
	conds     []CondDecl
	calls     []CallDecl
	inputs    []InputDecl
	funcs     []string
	funcSeen  map[string]struct{}
	condSeen  map[string]struct{}
	inputSeen map[string]struct{}
	built     bool
}

// NewBuilder starts the declarations of the program called name, whose
// source is sloc lines long (the Table III complexity figure).
func NewBuilder(name string, sloc int) *Builder {
	if name == "" {
		panic("target: NewBuilder with empty program name")
	}
	if sloc < 0 {
		panic(fmt.Sprintf("target: NewBuilder(%q) with negative SLOC %d", name, sloc))
	}
	return &Builder{
		name:      name,
		sloc:      sloc,
		funcSeen:  map[string]struct{}{},
		condSeen:  map[string]struct{}{},
		inputSeen: map[string]struct{}{},
	}
}

func (b *Builder) sealed(op string) {
	if b.built {
		panic(fmt.Sprintf("target: %s on builder %q after Build; declare everything before registering", op, b.name))
	}
}

func (b *Builder) touchFunc(fn string) {
	if fn == "" {
		panic(fmt.Sprintf("target: %q declares an empty function name", b.name))
	}
	if _, ok := b.funcSeen[fn]; !ok {
		b.funcSeen[fn] = struct{}{}
		b.funcs = append(b.funcs, fn)
	}
}

// Cond declares the next conditional site of function fn and returns its
// stable ID: sites are numbered 0, 1, 2, … in declaration order, exactly the
// numbering the instrumentation pass would stamp into the source. label is
// the human-readable condition used in audit reports and manifests; the
// (fn, label) pair must be unique within the program.
func (b *Builder) Cond(fn, label string) conc.CondID {
	b.sealed("Cond")
	b.touchFunc(fn)
	key := fn + "\x00" + label
	if _, dup := b.condSeen[key]; dup {
		panic(fmt.Sprintf("target: %q declares conditional site %s/%q twice", b.name, fn, label))
	}
	b.condSeen[key] = struct{}{}
	id := conc.CondID(len(b.conds))
	b.conds = append(b.conds, CondDecl{ID: id, Func: fn, Label: label})
	return id
}

// Call declares a static callsite — caller invokes callee — and returns its
// stable ID. Call edges form the static call graph behind Distances; both
// endpoints are added to the program's function set.
func (b *Builder) Call(caller, callee string) int32 {
	b.sealed("Call")
	b.touchFunc(caller)
	b.touchFunc(callee)
	id := int32(len(b.calls))
	b.calls = append(b.calls, CallDecl{ID: id, Caller: caller, Callee: callee})
	return id
}

// In declares an unbounded symbolic input (COMPI_int).
func (b *Builder) In(name string) { b.input(InputDecl{Name: name}) }

// InCap declares a capped symbolic input (COMPI_int_with_limit, §IV-A).
func (b *Builder) InCap(name string, cap int64) {
	b.input(InputDecl{Name: name, Cap: cap, HasCap: true})
}

func (b *Builder) input(d InputDecl) {
	b.sealed("input declaration")
	if d.Name == "" {
		panic(fmt.Sprintf("target: %q declares an input with an empty name", b.name))
	}
	if _, dup := b.inputSeen[d.Name]; dup {
		panic(fmt.Sprintf("target: %q declares input %q twice", b.name, d.Name))
	}
	b.inputSeen[d.Name] = struct{}{}
	b.inputs = append(b.inputs, d)
}

// Build seals the builder and returns the finished Program. It panics when
// main is nil or no conditional site was declared — an uninstrumented
// program gives the engine nothing to negate and is always an authoring
// mistake.
func (b *Builder) Build(main func(*mpi.Proc) int) *Program {
	b.sealed("Build")
	if main == nil {
		panic(fmt.Sprintf("target: Build(%q) with nil entry point", b.name))
	}
	if len(b.conds) == 0 {
		panic(fmt.Sprintf("target: Build(%q) with no declared conditional sites", b.name))
	}
	b.built = true
	return &Program{
		Name:   b.name,
		SLOC:   b.sloc,
		Main:   main,
		conds:  b.conds,
		calls:  b.calls,
		inputs: b.inputs,
		funcs:  b.funcs,
	}
}
