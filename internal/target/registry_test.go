package target

import (
	"fmt"
	"sort"
	"sync"
	"testing"
)

// fixturePrefix namespaces registrations made by this test binary, so the
// registry-walking smoke test can tell test fixtures from bundled targets.
const fixturePrefix = "zzz-fixture-"

func registerFixture(name string) *Program {
	b := NewBuilder(fixturePrefix+name, 1)
	b.Cond("main", "c")
	p := b.Build(nopMain)
	Register(p)
	return p
}

func TestRegisterLookup(t *testing.T) {
	p := registerFixture("reg-lookup")
	got, ok := Lookup(fixturePrefix + "reg-lookup")
	if !ok || got != p {
		t.Fatalf("Lookup returned %v, %v", got, ok)
	}
	if _, ok := Lookup("reg-no-such-program"); ok {
		t.Fatal("Lookup invented a program")
	}
}

func TestRegisterPanicsOnDuplicateName(t *testing.T) {
	registerFixture("reg-dup")
	mustPanic(t, `reg-dup" registered twice`, func() { registerFixture("reg-dup") })
}

func TestRegisterPanicsOnDuplicateCondID(t *testing.T) {
	// A hand-assembled program (bypassing the Builder) with colliding site
	// IDs must be rejected before it can corrupt coverage accounting.
	p := &Program{
		Name: "reg-dup-id",
		Main: nopMain,
		conds: []CondDecl{
			{ID: 0, Func: "f", Label: "a"},
			{ID: 0, Func: "g", Label: "b"},
		},
	}
	mustPanic(t, "conditional-site ID 0 twice", func() { Register(p) })
}

func TestRegisterRejectsNilAndUnnamed(t *testing.T) {
	mustPanic(t, "Register(nil)", func() { Register(nil) })
	mustPanic(t, "empty name", func() { Register(&Program{Main: nopMain}) })
}

func TestNamesSortedAndStable(t *testing.T) {
	registerFixture("reg-names-b")
	registerFixture("reg-names-a")
	registerFixture("reg-names-c")
	names := Names()
	if !sort.StringsAreSorted(names) {
		t.Fatalf("Names not sorted: %v", names)
	}
	again := Names()
	if len(again) != len(names) {
		t.Fatalf("Names unstable: %v vs %v", names, again)
	}
	for i := range names {
		if names[i] != again[i] {
			t.Fatalf("Names unstable at %d: %v vs %v", i, names, again)
		}
	}
	// The returned slice is a copy: mutating it must not corrupt the registry.
	names[0] = "clobbered"
	if Names()[0] == "clobbered" {
		t.Fatal("Names exposed registry-internal state")
	}
	progs := Programs()
	for i := 1; i < len(progs); i++ {
		if progs[i-1].Name >= progs[i].Name {
			t.Fatalf("Programs not sorted by name at %d", i)
		}
	}
}

// TestConcurrentRegisterLookup drives the registry from many goroutines at
// once — registrations racing lookups and listings — the access pattern of
// parallel campaign scheduling. Run under -race this is the data-race proof.
func TestConcurrentRegisterLookup(t *testing.T) {
	const writers, readers, perWriter = 8, 8, 25
	var wg sync.WaitGroup
	start := make(chan struct{})
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			<-start
			for i := 0; i < perWriter; i++ {
				registerFixture(fmt.Sprintf("reg-conc-%d-%d", w, i))
			}
		}(w)
	}
	errs := make(chan error, readers)
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			for i := 0; i < 200; i++ {
				for _, n := range Names() {
					if _, ok := Lookup(n); !ok {
						errs <- fmt.Errorf("listed name %q not found", n)
						return
					}
				}
			}
		}()
	}
	close(start)
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	for w := 0; w < writers; w++ {
		for i := 0; i < perWriter; i++ {
			name := fixturePrefix + fmt.Sprintf("reg-conc-%d-%d", w, i)
			if _, ok := Lookup(name); !ok {
				t.Fatalf("registration of %q lost", name)
			}
		}
	}
}

func TestReachableBranchesCountsOnlyEncounteredFuncs(t *testing.T) {
	b := NewBuilder("reg-reach", 1)
	b.Cond("f", "a")
	b.Cond("f", "b")
	b.Cond("g", "a")
	p := b.Build(nopMain)
	if n := p.ReachableBranches(map[string]struct{}{"f": {}}); n != 4 {
		t.Fatalf("ReachableBranches(f) = %d, want 4", n)
	}
	if n := p.ReachableBranches(map[string]struct{}{"f": {}, "g": {}, "other": {}}); n != 6 {
		t.Fatalf("ReachableBranches(f,g,other) = %d, want 6", n)
	}
	if n := p.ReachableBranches(nil); n != 0 {
		t.Fatalf("ReachableBranches(nil) = %d", n)
	}
}
