package target

import (
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/conc"
	"repro/internal/mpi"
)

// Manifest is the JSON-exportable form of a program's static declarations —
// the artifact COMPI's instrumentation pass leaves on disk for the testing
// framework and that `compi targets --json` serves here. It carries
// everything audit tooling needs without executing the program: the branch
// table, the call graph, and the input markings with their §IV-A caps.
type Manifest struct {
	Program       string      `json:"program"`
	SLOC          int         `json:"sloc"`
	TotalBranches int         `json:"total_branches"`
	Functions     []string    `json:"functions"`
	Conds         []CondDecl  `json:"conds"`
	Calls         []CallDecl  `json:"calls"`
	Inputs        []InputDecl `json:"inputs"`
}

// Manifest returns the program's declaration manifest.
func (p *Program) Manifest() Manifest {
	return Manifest{
		Program:       p.Name,
		SLOC:          p.SLOC,
		TotalBranches: p.TotalBranches(),
		Functions:     p.Functions(),
		Conds:         p.Conds(),
		Calls:         p.Calls(),
		Inputs:        p.Inputs(),
	}
}

// Manifests returns the manifest of every registered program, sorted by
// program name.
func Manifests() []Manifest {
	progs := Programs()
	out := make([]Manifest, len(progs))
	for i, p := range progs {
		out[i] = p.Manifest()
	}
	return out
}

// WriteManifests writes the registered programs' manifests to w as an
// indented JSON array, the `compi targets --json` output format.
func WriteManifests(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(Manifests())
}

// ReadManifests decodes a manifest array written by WriteManifests. Every
// manifest is validated before it is returned: a manifest that would corrupt
// a campaign — duplicate conditional-site IDs, inputs violating the §IV-A
// cap rules — is rejected here, before anything is built or registered.
func ReadManifests(r io.Reader) ([]Manifest, error) {
	var out []Manifest
	if err := json.NewDecoder(r).Decode(&out); err != nil {
		return nil, err
	}
	for i := range out {
		if err := out[i].Validate(); err != nil {
			return nil, fmt.Errorf("manifest %d: %w", i, err)
		}
	}
	return out, nil
}

// Validate checks the manifest's internal consistency: the same invariants
// the Builder enforces at declaration time, re-checked on the trust boundary
// where a manifest arrives from outside the process (a file, a pipe
// handshake). Every error names the offending field.
func (m Manifest) Validate() error {
	if m.Program == "" {
		return fmt.Errorf("manifest: empty program name")
	}
	if m.SLOC < 0 {
		return fmt.Errorf("manifest %q: negative sloc %d", m.Program, m.SLOC)
	}
	if len(m.Conds) == 0 {
		return fmt.Errorf("manifest %q: no conditional sites (conds is empty); an uninstrumented program gives the engine nothing to negate", m.Program)
	}
	seenCond := map[conc.CondID]CondDecl{}
	for _, c := range m.Conds {
		if c.ID < 0 {
			return fmt.Errorf("manifest %q: conds: negative conditional-site ID %d (%s/%q)", m.Program, c.ID, c.Func, c.Label)
		}
		if c.Func == "" {
			return fmt.Errorf("manifest %q: conds: site %d has an empty func", m.Program, c.ID)
		}
		if prev, dup := seenCond[c.ID]; dup {
			return fmt.Errorf("manifest %q: conds: duplicate conditional-site ID %d (%s/%q and %s/%q)",
				m.Program, c.ID, prev.Func, prev.Label, c.Func, c.Label)
		}
		seenCond[c.ID] = c
	}
	if m.TotalBranches != 0 && m.TotalBranches != 2*len(m.Conds) {
		return fmt.Errorf("manifest %q: total_branches is %d, want %d (two per conditional site)",
			m.Program, m.TotalBranches, 2*len(m.Conds))
	}
	seenCall := map[int32]struct{}{}
	for _, c := range m.Calls {
		if c.Caller == "" || c.Callee == "" {
			return fmt.Errorf("manifest %q: calls: callsite %d has an empty endpoint (caller %q, callee %q)",
				m.Program, c.ID, c.Caller, c.Callee)
		}
		if _, dup := seenCall[c.ID]; dup {
			return fmt.Errorf("manifest %q: calls: duplicate callsite ID %d", m.Program, c.ID)
		}
		seenCall[c.ID] = struct{}{}
	}
	seenInput := map[string]struct{}{}
	for _, in := range m.Inputs {
		if in.Name == "" {
			return fmt.Errorf("manifest %q: inputs: input with an empty name", m.Program)
		}
		if _, dup := seenInput[in.Name]; dup {
			return fmt.Errorf("manifest %q: inputs: input %q declared twice", m.Program, in.Name)
		}
		seenInput[in.Name] = struct{}{}
		if in.HasCap && in.Cap < 1 {
			return fmt.Errorf("manifest %q: inputs: input %q has §IV-A cap %d; a capped input needs a positive cap",
				m.Program, in.Name, in.Cap)
		}
		if !in.HasCap && in.Cap != 0 {
			return fmt.Errorf("manifest %q: inputs: input %q carries cap %d but is not marked capped",
				m.Program, in.Name, in.Cap)
		}
	}
	return nil
}

// FromManifest reconstructs a Program from its manifest — the inverse of
// Program.Manifest, and the way an out-of-process target's static model
// enters this process (loaded from a file by `compi drive -manifest`, or
// received in the pipe-protocol handshake). The manifest is validated first.
//
// The returned Program has no in-process entry point: it can only be driven
// through an external execution backend (core.Config.Backend). Its Main
// panics with a message saying so, which the MPI harness surfaces as a crash
// record rather than taking down a scheduler.
func FromManifest(m Manifest) (*Program, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	p := &Program{
		Name: m.Program,
		SLOC: m.SLOC,
		Main: func(*mpi.Proc) int {
			panic(fmt.Sprintf("target: program %q was loaded from a manifest and has no in-process entry point; drive it through an external backend", m.Program))
		},
		conds:  append([]CondDecl(nil), m.Conds...),
		calls:  append([]CallDecl(nil), m.Calls...),
		inputs: append([]InputDecl(nil), m.Inputs...),
	}
	// Rebuild the function table in the manifest's order, then sweep the
	// declarations for any function the manifest's list missed so the
	// call-graph distance queries still see every node.
	seen := map[string]struct{}{}
	touch := func(fn string) {
		if fn == "" {
			return
		}
		if _, ok := seen[fn]; !ok {
			seen[fn] = struct{}{}
			p.funcs = append(p.funcs, fn)
		}
	}
	for _, f := range m.Functions {
		touch(f)
	}
	for _, c := range m.Conds {
		touch(c.Func)
	}
	for _, c := range m.Calls {
		touch(c.Caller)
		touch(c.Callee)
	}
	return p, nil
}
