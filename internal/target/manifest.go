package target

import (
	"encoding/json"
	"io"
)

// Manifest is the JSON-exportable form of a program's static declarations —
// the artifact COMPI's instrumentation pass leaves on disk for the testing
// framework and that `compi targets --json` serves here. It carries
// everything audit tooling needs without executing the program: the branch
// table, the call graph, and the input markings with their §IV-A caps.
type Manifest struct {
	Program       string      `json:"program"`
	SLOC          int         `json:"sloc"`
	TotalBranches int         `json:"total_branches"`
	Functions     []string    `json:"functions"`
	Conds         []CondDecl  `json:"conds"`
	Calls         []CallDecl  `json:"calls"`
	Inputs        []InputDecl `json:"inputs"`
}

// Manifest returns the program's declaration manifest.
func (p *Program) Manifest() Manifest {
	return Manifest{
		Program:       p.Name,
		SLOC:          p.SLOC,
		TotalBranches: p.TotalBranches(),
		Functions:     p.Functions(),
		Conds:         p.Conds(),
		Calls:         p.Calls(),
		Inputs:        p.Inputs(),
	}
}

// Manifests returns the manifest of every registered program, sorted by
// program name.
func Manifests() []Manifest {
	progs := Programs()
	out := make([]Manifest, len(progs))
	for i, p := range progs {
		out[i] = p.Manifest()
	}
	return out
}

// WriteManifests writes the registered programs' manifests to w as an
// indented JSON array, the `compi targets --json` output format.
func WriteManifests(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(Manifests())
}

// ReadManifests decodes a manifest array written by WriteManifests.
func ReadManifests(r io.Reader) ([]Manifest, error) {
	var out []Manifest
	if err := json.NewDecoder(r).Decode(&out); err != nil {
		return nil, err
	}
	return out, nil
}
