// Package imb is a miniature IMB-MPI1 (Intel MPI Benchmarks): it parses a
// benchmark selection plus measurement parameters, sanity-checks them, then
// times the selected MPI-1 operation across message sizes and process
// subsets, exactly the skeleton of the real suite: subset communicators via
// MPI_Comm_split (NPmin), a warm-up phase, an iteration loop whose count is
// the dominant marked input N, and per-benchmark communication patterns.
package imb

import (
	"repro/internal/conc"
	"repro/internal/mpi"
	"repro/internal/target"
)

// DefaultIterCap is the default input cap (§IV-A) on the iteration count;
// the paper's default for IMB-MPI1 is 100 (Figure 8 also uses 50 and 400).
// Campaigns override it via the ParamIterCap parameter.
const DefaultIterCap int64 = 100

// ParamIterCap is the campaign parameter key overriding the iteration cap.
const ParamIterCap = "imb.itercap"

// CapParams returns the parameter bag overriding the iteration cap.
func CapParams(n int64) map[string]int64 {
	return map[string]int64{ParamIterCap: n}
}

// Benchmark selectors.
const (
	BenchPingPong = iota
	BenchPingPing
	BenchSendrecv
	BenchExchange
	BenchBcast
	BenchReduce
	BenchAllreduce
	BenchGather
	BenchAllgather
	BenchAlltoall
	BenchBarrier
	BenchReduceScatter
	BenchScan
	BenchAllgatherv
	BenchAlltoallv
	benchCount
)

var b = target.NewBuilder("imb-mpi1", 900)

// Sanity sites (IMB_basic_input).
var (
	cBenchLo   = b.Cond("input", "bench >= 0")
	cBenchHi   = b.Cond("input", "bench in range")
	cIterPos   = b.Cond("input", "niter >= 1")
	cMinLog    = b.Cond("input", "minlog >= 0")
	cMaxLogGE  = b.Cond("input", "maxlog >= minlog")
	cMaxLogCap = b.Cond("input", "maxlog <= 12")
	cNPMinPos  = b.Cond("input", "npmin >= 1")
	cNPMinFits = b.Cond("input", "npmin <= nprocs")
	cWarmups   = b.Cond("input", "warmups >= 0")
	cWarmupCap = b.Cond("input", "warmups <= 10")
	cRootOK    = b.Cond("input", "root < nprocs")
	cRootPos   = b.Cond("input", "root >= 0")
	cBarrierLo = b.Cond("input", "barrier >= 0")
	cBarrierIn = b.Cond("input", "barrier <= 1")
	cValidLo   = b.Cond("input", "validate >= 0")
	cValidate  = b.Cond("input", "validate <= 1")
	cTimeLimit = b.Cond("input", "tlimit >= 0")
)

// Driver sites (IMB_init_buffers_iter).
var (
	cSubsetLoop = b.Cond("driver", "np <= nprocs")
	cActive     = b.Cond("driver", "rank < np")
	cMsgLoop    = b.Cond("driver", "log <= maxlog")
	cWarmLoop   = b.Cond("driver", "w < warmups")
	cIterLoop   = b.Cond("driver", "i < niter")
	cDoBarrier  = b.Cond("driver", "barrier between samples")
	cDoValidate = b.Cond("driver", "validate buffers")
	cValidBad   = b.Cond("driver", "validation mismatch")
)

// Per-benchmark sites.
var (
	cPPRanks   = b.Cond("pingpong", "rank < 2")
	cPPEven    = b.Cond("pingpong", "rank == 0 leads")
	cSRRing    = b.Cond("sendrecv", "ring neighbor exists")
	cExchange2 = b.Cond("exchange", "both neighbors distinct")
	cBcastRoot = b.Cond("bcast", "rank == root")
	cRedRoot   = b.Cond("reduce", "rank == root collects")
	cGatherBig = b.Cond("gather", "gathered volume > 4KiB")
	cAtoAQuad  = b.Cond("alltoall", "quadratic volume warning")
)

func init() {
	b.In("bench")
	b.InCap("niter", DefaultIterCap)
	b.InCap("minlog", 12)
	b.InCap("maxlog", 12)
	b.InCap("npmin", 16)
	b.InCap("warmups", 10)
	b.In("root")
	b.In("barrier")
	b.In("validate")
	b.In("tlimit")
	b.Call("main", "input")
	b.Call("main", "driver")
	b.Call("driver", "pingpong")
	b.Call("driver", "sendrecv")
	b.Call("driver", "exchange")
	b.Call("driver", "bcast")
	b.Call("driver", "reduce")
	b.Call("driver", "gather")
	b.Call("driver", "alltoall")
	target.Register(b.Build(Main))
}

// DefaultInputs is a valid configuration (PingPong over 2..8 ranks).
func DefaultInputs() map[string]int64 {
	return map[string]int64{
		"bench": BenchPingPong, "niter": 10, "minlog": 0, "maxlog": 4,
		"npmin": 2, "warmups": 2, "root": 0, "barrier": 1,
		"validate": 1, "tlimit": 0, "multi": 0, "pairs": 1,
		"offcache": 0, "window": 0, "seed": 1,
	}
}

type params struct {
	bench, niter      int
	minlog, maxlog    int
	npmin, warmups    int
	root              int
	barrier, validate bool
	tlimit            int
}

// Main is the program under test.
func Main(p *mpi.Proc) int {
	p.Enter("main")
	w := p.World()

	size := p.CommSize(w, "imb:size")
	rank := p.CommRank(w, "imb:rank")

	cfg, ok := input(p, size)
	if !ok {
		return 1
	}
	code := driver(p, cfg, rank, size)
	p.Barrier(w)
	return code
}

// input reads and validates the 15 marked inputs (IMB_basic_input).
func input(p *mpi.Proc, size conc.Value) (params, bool) {
	p.Enter("input")
	var cfg params

	bench := p.In("bench")
	if !p.If(cBenchLo, conc.GE(bench, conc.K(0))) {
		return cfg, false
	}
	if !p.If(cBenchHi, conc.LE(bench, conc.K(benchCount-1))) {
		return cfg, false
	}
	niter := p.CC.InputIntCap("niter", p.Param(ParamIterCap, DefaultIterCap))
	if !p.If(cIterPos, conc.GE(niter, conc.K(1))) {
		return cfg, false
	}
	minlog := p.InCap("minlog", 12)
	if !p.If(cMinLog, conc.GE(minlog, conc.K(0))) {
		return cfg, false
	}
	maxlog := p.InCap("maxlog", 12)
	if !p.If(cMaxLogGE, conc.GE(maxlog, minlog)) {
		return cfg, false
	}
	if !p.If(cMaxLogCap, conc.LE(maxlog, conc.K(12))) {
		return cfg, false
	}
	npmin := p.InCap("npmin", 16)
	if !p.If(cNPMinPos, conc.GE(npmin, conc.K(1))) {
		return cfg, false
	}
	if !p.If(cNPMinFits, conc.LE(npmin, size)) {
		return cfg, false
	}
	warmups := p.InCap("warmups", 10)
	if !p.If(cWarmups, conc.GE(warmups, conc.K(0))) {
		return cfg, false
	}
	if !p.If(cWarmupCap, conc.LE(warmups, conc.K(10))) {
		return cfg, false
	}
	root := p.In("root")
	if !p.If(cRootPos, conc.GE(root, conc.K(0))) {
		return cfg, false
	}
	if !p.If(cRootOK, conc.LT(root, size)) {
		return cfg, false
	}
	barrier := p.In("barrier")
	if !p.If(cBarrierLo, conc.GE(barrier, conc.K(0))) {
		return cfg, false
	}
	if !p.If(cBarrierIn, conc.LE(barrier, conc.K(1))) {
		return cfg, false
	}
	validate := p.In("validate")
	if !p.If(cValidLo, conc.GE(validate, conc.K(0))) {
		return cfg, false
	}
	if !p.If(cValidate, conc.LE(validate, conc.K(1))) {
		return cfg, false
	}
	tlimit := p.In("tlimit")
	if !p.If(cTimeLimit, conc.GE(tlimit, conc.K(0))) {
		return cfg, false
	}

	cfg = params{
		bench: int(bench.C), niter: int(niter.C),
		minlog: int(minlog.C), maxlog: int(maxlog.C),
		npmin: int(npmin.C), warmups: int(warmups.C),
		root: int(root.C), barrier: barrier.C == 1,
		validate: validate.C == 1, tlimit: int(tlimit.C),
	}
	return cfg, true
}

// driver runs the selected benchmark over process subsets (npmin, 2·npmin,
// ..., nprocs) and message sizes (2^minlog .. 2^maxlog).
func driver(p *mpi.Proc, cfg params, rank, size conc.Value) int {
	p.Enter("driver")
	w := p.World()
	nprocs := int(size.C)

	np := cfg.npmin
	for p.If(cSubsetLoop, conc.True(np <= nprocs)) {
		active := p.If(cActive, conc.LT(rank, conc.K(int64(np))))
		color := 1
		if active {
			color = 0
		}
		sub := p.Split(w, color, p.Rank())
		if active {
			_ = p.CommRank(sub, "imb:subrank")
			if code := runSizes(p, cfg, sub); code != 0 {
				return code
			}
		}
		// Everyone advances the subset schedule together.
		p.Barrier(w)
		if np == nprocs {
			break
		}
		np *= 2
		if np > nprocs {
			np = nprocs
		}
	}
	return 0
}

// runSizes sweeps the message sizes for one subset communicator.
func runSizes(p *mpi.Proc, cfg params, sub *mpi.Comm) int {
	niterSym := p.In("niter")
	maxlogSym := p.In("maxlog")
	log := conc.K(int64(cfg.minlog))
	for p.If(cMsgLoop, conc.LE(log, maxlogSym)) {
		n := 1 << uint(log.C) / 8
		if n < 1 {
			n = 1
		}
		buf := make([]float64, n)
		for i := range buf {
			buf[i] = float64(i + sub.LocalRank())
		}
		p.Exprs(len(buf))

		w := conc.K(0)
		warmupsSym := p.In("warmups")
		for p.If(cWarmLoop, conc.LT(w, warmupsSym)) {
			runOnce(p, cfg, sub, buf)
			w = conc.Add(w, conc.K(1))
		}

		i := conc.K(0)
		for p.If(cIterLoop, conc.LT(i, niterSym)) {
			if p.If(cDoBarrier, conc.True(cfg.barrier)) {
				p.Barrier(sub)
			}
			out := runOnce(p, cfg, sub, buf)
			if p.If(cDoValidate, conc.True(cfg.validate && out != nil)) {
				if p.If(cValidBad, conc.True(len(out) == 0)) {
					return 2 // corrupted result buffer
				}
			}
			i = conc.Add(i, conc.K(1))
		}
		log = conc.Add(log, conc.K(1))
	}
	return 0
}

// runOnce performs one timed sample of the selected benchmark.
func runOnce(p *mpi.Proc, cfg params, sub *mpi.Comm, buf []float64) []float64 {
	me, np := sub.LocalRank(), sub.Size()
	root := cfg.root % np
	switch cfg.bench {
	case BenchPingPong:
		p.Enter("pingpong")
		if !p.If(cPPRanks, conc.True(me < 2)) {
			return buf
		}
		if np < 2 {
			return buf
		}
		if p.If(cPPEven, conc.True(me == 0)) {
			p.Send(sub, 1, 1, buf)
			out, _ := p.Recv(sub, 1, 2)
			return out
		}
		out, _ := p.Recv(sub, 0, 1)
		p.Send(sub, 0, 2, out)
		return out
	case BenchPingPing:
		p.Enter("pingpong")
		if !p.If(cPPRanks, conc.True(me < 2)) || np < 2 {
			return buf
		}
		peer := 1 - me
		p.Send(sub, peer, 3, buf)
		out, _ := p.Recv(sub, peer, 3)
		return out
	case BenchSendrecv:
		p.Enter("sendrecv")
		if !p.If(cSRRing, conc.True(np > 1)) {
			return buf
		}
		right, left := (me+1)%np, (me-1+np)%np
		out, _ := p.Sendrecv(sub, right, 4, buf, left, 4)
		return out
	case BenchExchange:
		p.Enter("exchange")
		if np < 2 {
			return buf
		}
		right, left := (me+1)%np, (me-1+np)%np
		if p.If(cExchange2, conc.True(right != left)) {
			p.Send(sub, left, 5, buf)
		}
		p.Send(sub, right, 6, buf)
		out, _ := p.Recv(sub, left, 6)
		if right != left {
			_, _ = p.Recv(sub, right, 5)
		}
		return out
	case BenchBcast:
		p.Enter("bcast")
		p.If(cBcastRoot, conc.True(me == root))
		return p.Bcast(sub, root, buf)
	case BenchReduce:
		p.Enter("reduce")
		out := p.Reduce(sub, root, mpi.OpSum, buf)
		if p.If(cRedRoot, conc.True(me == root)) {
			return out
		}
		return buf
	case BenchAllreduce:
		p.Enter("reduce")
		return p.Allreduce(sub, mpi.OpSum, buf)
	case BenchGather:
		p.Enter("gather")
		out := p.Gather(sub, root, buf)
		if p.If(cGatherBig, conc.True(len(buf)*np*8 > 4096)) {
			p.Tick() // large-gather path (chunked in the real suite)
		}
		if me == root {
			return out
		}
		return buf
	case BenchAllgather:
		p.Enter("gather")
		return p.Allgather(sub, buf)
	case BenchAlltoall:
		p.Enter("alltoall")
		full := make([]float64, len(buf)*np)
		for i := range full {
			full[i] = float64(i)
		}
		if p.If(cAtoAQuad, conc.True(len(full)*np*8 > 65536)) {
			p.Tick() // quadratic-volume warning path
		}
		return p.Alltoall(sub, full, len(buf))
	case BenchReduceScatter:
		p.Enter("reduce")
		full := make([]float64, len(buf)*np)
		for i := range full {
			full[i] = float64(me + i)
		}
		return p.ReduceScatter(sub, mpi.OpSum, full, len(buf))
	case BenchScan:
		p.Enter("reduce")
		return p.Scan(sub, mpi.OpSum, buf)
	case BenchAllgatherv:
		p.Enter("gather")
		// Varying contributions: rank l sends min(l+1, len(buf)) elements.
		counts := make([]int, np)
		for l := 0; l < np; l++ {
			counts[l] = l + 1
			if counts[l] > len(buf) {
				counts[l] = len(buf)
			}
		}
		return p.Allgatherv(sub, buf[:counts[me]], counts)
	case BenchAlltoallv:
		p.Enter("alltoall")
		send := make([]int, np)
		recv := make([]int, np)
		for l := 0; l < np; l++ {
			send[l] = (me % len(buf)) + 1
			recv[l] = (l % len(buf)) + 1
			if send[l] > len(buf) {
				send[l] = len(buf)
			}
			if recv[l] > len(buf) {
				recv[l] = len(buf)
			}
		}
		packed := make([]float64, 0, np*len(buf))
		for l := 0; l < np; l++ {
			packed = append(packed, buf[:send[l]]...)
		}
		return p.Alltoallv(sub, packed, send, recv)
	default: // BenchBarrier
		p.Enter("driver")
		p.Barrier(sub)
		return buf
	}
}
