package imb

import (
	"testing"
	"time"

	"repro/internal/conc"
	"repro/internal/mpi"
	"repro/internal/target"
)

func launch(t *testing.T, n int, inputs map[string]int64) mpi.RunResult {
	t.Helper()
	return mpi.Launch(mpi.Spec{
		NProcs: n,
		Main:   Main,
		Vars:   conc.NewVarSpace(),
		Conc: func(rank int) conc.Config {
			mode := conc.Light
			if rank == 0 {
				mode = conc.Heavy
			}
			return conc.Config{Mode: mode, Reduction: true, Seed: 1, MaxTicks: 20_000_000}
		},
		Inputs:  inputs,
		Timeout: 30 * time.Second,
	})
}

func TestAllBenchmarksRunClean(t *testing.T) {
	for bench := 0; bench < benchCount; bench++ {
		in := DefaultInputs()
		in["bench"] = int64(bench)
		res := launch(t, 8, in)
		for _, rr := range res.Ranks {
			if rr.Status != mpi.StatusOK || rr.Exit != 0 {
				t.Fatalf("bench %d rank %d: %v exit=%d err=%v",
					bench, rr.Rank, rr.Status, rr.Exit, rr.Err)
			}
		}
	}
}

func TestSanityRejectsBadInputs(t *testing.T) {
	for _, c := range []struct {
		name  string
		patch map[string]int64
	}{
		{"bench=-1", map[string]int64{"bench": -1}},
		{"bench=99", map[string]int64{"bench": 99}},
		{"niter=0", map[string]int64{"niter": 0}},
		{"maxlog<minlog", map[string]int64{"minlog": 5, "maxlog": 2}},
		{"npmin=0", map[string]int64{"npmin": 0}},
		{"npmin>nprocs", map[string]int64{"npmin": 9}},
		{"root>=nprocs", map[string]int64{"root": 8}},
		{"validate=2", map[string]int64{"validate": 2}},
	} {
		in := DefaultInputs()
		for k, v := range c.patch {
			in[k] = v
		}
		res := launch(t, 8, in)
		fe, bad := res.FirstError()
		if !bad || fe.Exit != 1 {
			t.Fatalf("%s: want sanity exit 1, got %+v", c.name, fe)
		}
	}
}

func TestSubsetSchedule(t *testing.T) {
	// npmin=2 on 8 ranks must run subsets 2, 4, 8 — visible as three
	// sub-communicator rc observations on the focus? The focus marks the
	// same callsite each time, so instead check the mapping rows: one per
	// Split per subset round (8 ranks, npmin 2 → rounds at np=2,4,8).
	in := DefaultInputs()
	in["npmin"] = 2
	res := launch(t, 8, in)
	if res.Failed() {
		t.Fatal("run failed")
	}
	rows := len(res.Ranks[0].Log.Mapping)
	if rows != 3 {
		t.Fatalf("mapping rows = %d, want 3 (subsets 2,4,8)", rows)
	}
}

func TestSubsetScheduleNonPowerOfTwo(t *testing.T) {
	// npmin=3 on 8 ranks runs subsets 3, 6, 8 (doubling clamps at nprocs).
	in := DefaultInputs()
	in["npmin"] = 3
	res := launch(t, 8, in)
	if res.Failed() {
		t.Fatal("run failed")
	}
	if rows := len(res.Ranks[0].Log.Mapping); rows != 3 {
		t.Fatalf("mapping rows = %d, want 3 (subsets 3,6,8)", rows)
	}
}

func TestVariantBenchmarksExchangeData(t *testing.T) {
	for _, bench := range []int64{BenchReduceScatter, BenchScan, BenchAllgatherv, BenchAlltoallv} {
		in := DefaultInputs()
		in["bench"] = bench
		in["npmin"] = 3
		res := launch(t, 6, in)
		if res.Failed() {
			fe, _ := res.FirstError()
			t.Fatalf("bench %d failed: %+v", bench, fe)
		}
	}
}

func TestSingleRankBarrier(t *testing.T) {
	in := DefaultInputs()
	in["bench"] = BenchBarrier
	in["npmin"] = 1
	in["root"] = 0
	res := launch(t, 1, in)
	if res.Failed() {
		fe, _ := res.FirstError()
		t.Fatalf("single-rank barrier failed: %+v", fe)
	}
}

func TestLargeMessages(t *testing.T) {
	in := DefaultInputs()
	in["bench"] = BenchAlltoall
	in["minlog"], in["maxlog"] = 10, 12
	in["niter"] = 2
	res := launch(t, 4, in)
	if res.Failed() {
		t.Fatal("large alltoall failed")
	}
}

func TestNonRootZeroRoot(t *testing.T) {
	in := DefaultInputs()
	in["bench"] = BenchBcast
	in["root"] = 3
	res := launch(t, 8, in)
	if res.Failed() {
		t.Fatal("bcast with root 3 failed")
	}
}

func TestProgramRegistration(t *testing.T) {
	prog, ok := target.Lookup("imb-mpi1")
	if !ok {
		t.Fatal("imb-mpi1 not registered")
	}
	if prog.TotalBranches() < 50 {
		t.Fatalf("branches: %d", prog.TotalBranches())
	}
	found := false
	for _, n := range target.Names() {
		if n == "imb-mpi1" {
			found = true
		}
	}
	if !found {
		t.Fatalf("registered programs: %v", target.Names())
	}
}

func TestIterationCountDominatesCost(t *testing.T) {
	// The paper's N for IMB is the iteration count; cost should grow with it.
	short := DefaultInputs()
	short["niter"] = 2
	long := DefaultInputs()
	long["niter"] = 100
	r1 := launch(t, 4, short)
	r2 := launch(t, 4, long)
	if r1.Failed() || r2.Failed() {
		t.Fatal("runs failed")
	}
	if r2.Ranks[0].Log.RawCount <= r1.Ranks[0].Log.RawCount {
		t.Fatal("iteration count did not increase the generated constraints")
	}
}
