// Package skeleton is the running example of the paper (Figures 1 and 2): a
// small SPMD program that reads two inputs, performs a sanity check on them
// and their combination, branches on the MPI rank and the input, and runs a
// loop-based solver. A bug is hidden behind the branch x == 100, like the
// bug at branch 0F in Figure 1.
package skeleton

import (
	"repro/internal/conc"
	"repro/internal/mpi"
	"repro/internal/target"
)

var b = target.NewBuilder("skeleton", 120)

// Conditional sites in static order (what the instrumentation phase would
// emit for the program of Figure 2).
var (
	cXPos    = b.Cond("sanity", "x >= 1")
	cYPos    = b.Cond("sanity", "y >= 1")
	cCombo   = b.Cond("sanity", "x*y <= 10000")
	cHidden  = b.Cond("sanity", "x == 100") // hidden bug (Figure 1, branch 0F)
	cIsRoot  = b.Cond("main", "rank == 0")
	cBigY    = b.Cond("main", "y >= 100") // reachable only on rank != 0
	cManyPrc = b.Cond("solve", "nprocs >= 4")
	cLoop    = b.Cond("solve", "i < x")
)

func init() {
	b.InCap("x", 200)
	b.InCap("y", 100)
	b.Call("main", "sanity")
	b.Call("main", "solve")
	target.Register(b.Build(Main))
}

// Main is the program under test.
func Main(p *mpi.Proc) int {
	p.Enter("main")
	w := p.World()

	// Read inputs (marked symbolic, capped per §IV-A so the solver loop
	// cannot explode).
	x := p.InCap("x", 200)
	y := p.InCap("y", 100)

	// Sanity check.
	p.Enter("sanity")
	if !p.If(cXPos, conc.GE(x, conc.K(1))) {
		return 1
	}
	if !p.If(cYPos, conc.GE(y, conc.K(1))) {
		return 1
	}
	if !p.If(cCombo, conc.LE(conc.Mul(x, y), conc.K(10000))) {
		return 1
	}
	if p.If(cHidden, conc.EQ(x, conc.K(100))) {
		p.Assert(false, "hidden bug: x == 100 corrupts the work share")
	}

	rank := p.CommRank(w, "skeleton:rank")
	size := p.CommSize(w, "skeleton:size")

	// Share work.
	var local float64
	if p.If(cIsRoot, conc.EQ(rank, conc.K(0))) {
		local = float64(x.C)
	} else {
		if p.If(cBigY, conc.GE(y, conc.K(100))) {
			local = float64(y.C) * 2
		} else {
			local = float64(y.C)
		}
	}

	// Solve.
	p.Enter("solve")
	if p.If(cManyPrc, conc.GE(size, conc.K(4))) {
		local /= 2 // the parallel variant halves per-rank work
	}
	i := conc.K(0)
	for p.If(cLoop, conc.LT(i, x)) {
		local = local*0.5 + 1
		i = conc.Add(i, conc.K(1))
	}

	total := p.Allreduce(w, mpi.OpSum, []float64{local})
	if total[0] < 0 {
		return 2 // unreachable; keeps the result observable
	}
	return 0
}
