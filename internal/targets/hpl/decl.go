// Package hpl is a miniature High-Performance Linpack: it reads the 28 input
// parameters of an HPL.dat-style configuration, validates them through the
// HPL_pdinfo-style sanity-check chain, builds a P×Q process grid, factorizes
// a dense random matrix with block-cyclic parallel LU (panel factorization
// with partial pivoting, panel broadcast variants, row swapping variants,
// trailing-matrix update), back-substitutes, and verifies the residual.
//
// It reproduces the three properties COMPI's evaluation leans on:
//
//   - a sanity check deep enough that only systematic search passes it
//     (Figure 4),
//   - O(N³) execution cost in the marked matrix size N (Figure 6 and the
//     input-capping study of Figure 8), and
//   - loops conditioned on symbolic inputs, which flood the constraint set
//     unless constraint set reduction is on (Figure 9, Table V).
package hpl

import "repro/internal/target"

var b = target.NewBuilder("hpl", 2300)

// Sanity-check conditional sites (HPL_pdinfo). Declaration order is static
// source order.
var (
	cNPos        = b.Cond("pdinfo", "n >= 1")
	cNBPos       = b.Cond("pdinfo", "nb >= 1")
	cNBLeN       = b.Cond("pdinfo", "nb <= n")
	cPMapNonneg  = b.Cond("pdinfo", "pmap >= 0")
	cPMap        = b.Cond("pdinfo", "pmap <= 1")
	cPPos        = b.Cond("pdinfo", "p >= 1")
	cQPos        = b.Cond("pdinfo", "q >= 1")
	cGridFits    = b.Cond("pdinfo", "p*q <= nprocs")
	cPFactNonneg = b.Cond("pdinfo", "pfact >= 0")
	cPFact       = b.Cond("pdinfo", "pfact <= 2")
	cNBMinPos    = b.Cond("pdinfo", "nbmin >= 1")
	cNBMinLeNB   = b.Cond("pdinfo", "nbmin <= nb")
	cNDiv        = b.Cond("pdinfo", "ndiv >= 2")
	cNDivSmall   = b.Cond("pdinfo", "ndiv <= 8")
	cRFactNonneg = b.Cond("pdinfo", "rfact >= 0")
	cRFact       = b.Cond("pdinfo", "rfact <= 2")
	cBcastNonneg = b.Cond("pdinfo", "bcast >= 0")
	cBcast       = b.Cond("pdinfo", "bcast <= 5")
	cDepthNonneg = b.Cond("pdinfo", "depth >= 0")
	cDepth       = b.Cond("pdinfo", "depth <= 1")
	cSwapNonneg  = b.Cond("pdinfo", "swap >= 0")
	cSwap        = b.Cond("pdinfo", "swap <= 2")
	cSwapThresh  = b.Cond("pdinfo", "swapthresh >= 0")
	cL1FormNeg   = b.Cond("pdinfo", "l1form >= 0")
	cL1Form      = b.Cond("pdinfo", "l1form <= 1")
	cUFormNeg    = b.Cond("pdinfo", "uform >= 0")
	cUForm       = b.Cond("pdinfo", "uform <= 1")
	cEquilNeg    = b.Cond("pdinfo", "equil >= 0")
	cEquil       = b.Cond("pdinfo", "equil <= 1")
	cAlignPos    = b.Cond("pdinfo", "align >= 4")
	cAlignMod    = b.Cond("pdinfo", "align % 4 == 0")
	cNRunsPos    = b.Cond("pdinfo", "nruns >= 1")
	cNRunsMax    = b.Cond("pdinfo", "nruns <= 10")
	cVerbNonneg  = b.Cond("pdinfo", "verbosity >= 0")
	cVerbosity   = b.Cond("pdinfo", "verbosity <= 1")
	cMaxFails    = b.Cond("pdinfo", "maxfails >= 0")
	cCheckNonneg = b.Cond("pdinfo", "checkres >= 0")
	cCheckRes    = b.Cond("pdinfo", "checkres <= 1")
	cSeedNonneg  = b.Cond("pdinfo", "seed >= 0")
)

// Grid setup sites (HPL_grid_init).
var (
	cGridRowMajor = b.Cond("grid_init", "pmap == row-major")
	cGridUnused   = b.Cond("grid_init", "rank < p*q")
	cGridSquare   = b.Cond("grid_init", "p == q")
)

// Panel factorization sites (HPL_pdfact / HPL_pdpanllT).
var (
	cPanelLoop    = b.Cond("pdfact", "j < jb")
	cPivotBetter  = b.Cond("pdfact", "|a| > |pivot|")
	cPivotZero    = b.Cond("pdfact", "pivot == 0 (singular)")
	cPivotSwap    = b.Cond("pdfact", "pivot row != current")
	cPFactCrout   = b.Cond("pdfact", "pfact == crout")
	cPFactRight   = b.Cond("pdfact", "pfact == right")
	cRecurseNBMin = b.Cond("pdfact", "width > nbmin")
)

// Broadcast variant sites (HPL_binit/HPL_bcast).
var (
	cBcastRing  = b.Cond("bcast", "variant ring")
	cBcast2Ring = b.Cond("bcast", "variant 2-ring")
	cBcastLong  = b.Cond("bcast", "msg long")
)

// Row-swapping sites (HPL_pdlaswp).
var (
	cSwapBinExch = b.Cond("laswp", "swap == bin-exch")
	cSwapSpread  = b.Cond("laswp", "swap == spread-roll")
	cSwapNeeded  = b.Cond("laswp", "pivot moves row")
)

// Update and main-loop sites (HPL_pdupdate / HPL_pdgesv).
var (
	cStepLoop   = b.Cond("pdgesv", "k < nblocks")
	cDepth2     = b.Cond("pdupdate", "remaining >= 160 (deep update)")
	cUpdateMine = b.Cond("pdupdate", "block owned locally")
	cEquilOn    = b.Cond("pdupdate", "equilibration pass")
)

// Back-substitution and verification sites (HPL_pdtrsv / HPL_pdtest /
// HPL_pdlange).
var (
	cTrsvLoop   = b.Cond("pdtrsv", "k >= 0")
	cResidCheck = b.Cond("pdtest", "checkres enabled")
	cResidPass  = b.Cond("pdtest", "scaled resid < 16")
	cRunsLoop   = b.Cond("pdtest", "run < nruns")
	cVerbose    = b.Cond("pdtest", "verbosity on")
	cLangeRow   = b.Cond("pdlange", "row sum > running max")
	cLangeTiny  = b.Cond("pdlange", "norm underflow guard")
)

func init() {
	b.InCap("n", DefaultNCap)
	b.InCap("nb", 64)
	b.In("pmap")
	b.InCap("p", 16)
	b.InCap("q", 16)
	b.In("pfact")
	b.In("nbmin")
	b.In("ndiv")
	b.In("rfact")
	b.In("bcast")
	b.In("depth")
	b.In("swap")
	b.In("swapthresh")
	b.In("l1form")
	b.In("uform")
	b.In("equil")
	b.In("align")
	b.InCap("nruns", 10)
	b.In("verbosity")
	b.In("maxfails")
	b.In("checkres")
	b.In("seed")
	b.Call("main", "pdinfo")
	b.Call("main", "grid_init")
	b.Call("main", "pdtest")
	b.Call("pdtest", "pdgesv")
	b.Call("pdgesv", "pdfact")
	b.Call("pdgesv", "bcast")
	b.Call("pdgesv", "laswp")
	b.Call("pdgesv", "pdupdate")
	b.Call("pdtest", "pdtrsv")
	b.Call("pdtest", "pdlange")
	target.Register(b.Build(Main))
}
