package hpl

import (
	"math"

	"repro/internal/conc"
	"repro/internal/mpi"
)

// DefaultNCap is the default input cap (§IV-A) applied to the matrix size
// N. The paper's default for HPL is 300; the input-capping experiment
// re-instruments the program with different caps, which campaigns model by
// setting the ParamNCap campaign parameter.
const DefaultNCap int64 = 300

// ParamNCap is the campaign parameter key overriding the N cap.
const ParamNCap = "hpl.ncap"

// CapParams returns the parameter bag overriding the N cap.
func CapParams(n int64) map[string]int64 {
	return map[string]int64{ParamNCap: n}
}

// DefaultInputs is a full valid parameter set (the HPL.dat defaults used by
// the fixed-input experiments: Figure 6 and Table IV).
func DefaultInputs() map[string]int64 {
	return map[string]int64{
		"n": 200, "nb": 32, "pmap": 0, "p": 2, "q": 4,
		"pfact": 1, "nbmin": 2, "ndiv": 2, "rfact": 1,
		"bcast": 0, "depth": 1, "swap": 0, "swapthresh": 64,
		"l1form": 0, "uform": 0, "equil": 1, "align": 8,
		"nruns": 1, "verbosity": 0, "maxfails": 0, "checkres": 1,
		"seed": 42,
	}
}

// params is the validated configuration (concrete mirrors of the marked
// inputs; the symbolic halves live in the recorded constraints).
type params struct {
	n, nb                int
	pmap, p, q           int
	pfact, nbmin, ndiv   int
	rfact, bcast, depth  int
	swap, swapthresh     int
	l1form, uform, equil int
	align, nruns         int
	verbosity, maxfails  int
	checkres             int
	seed                 int64
}

// Main is the program under test.
func Main(p *mpi.Proc) int {
	p.Enter("main")
	w := p.World()

	cfg, ok := pdinfo(p)
	if !ok {
		return 1
	}

	rank := p.CommRank(w, "hpl:rank")
	size := p.CommSize(w, "hpl:size")

	// Grid sanity: the requested P×Q grid must fit in the job.
	if !p.If(cGridFits, conc.LE(conc.Mul(conc.K(int64(cfg.p)), conc.K(int64(cfg.q))), size)) {
		return 1
	}

	active, inGrid := gridInit(p, cfg, rank)
	if !inGrid {
		// Ranks outside the grid wait at the final barrier like HPL's
		// HPL_grid_exit path.
		p.Barrier(w)
		return 0
	}

	code := pdtest(p, cfg, active)
	p.Barrier(w)
	return code
}

// inRange is the instrumented two-sided membership check lo <= v <= hi.
func inRange(p *mpi.Proc, cLo, cHi conc.CondID, v conc.Value, lo, hi int64) bool {
	if !p.If(cLo, conc.GE(v, conc.K(lo))) {
		return false
	}
	return p.If(cHi, conc.LE(v, conc.K(hi)))
}

// pdinfo is the HPL_pdinfo-style sanity check over all 28 parameters
// (22 marked symbolic; the floating-point threshold and the array lengths
// stay concrete, as COMPI does not mark floats).
func pdinfo(p *mpi.Proc) (params, bool) {
	p.Enter("pdinfo")
	var cfg params

	n := p.CC.InputIntCap("n", p.Param(ParamNCap, DefaultNCap))
	if !p.If(cNPos, conc.GE(n, conc.K(1))) {
		return cfg, false
	}
	nb := p.InCap("nb", 64)
	if !p.If(cNBPos, conc.GE(nb, conc.K(1))) {
		return cfg, false
	}
	if !p.If(cNBLeN, conc.LE(nb, n)) {
		return cfg, false
	}
	pmap := p.In("pmap")
	if !inRange(p, cPMapNonneg, cPMap, pmap, 0, 1) {
		return cfg, false
	}
	gp := p.InCap("p", 16)
	if !p.If(cPPos, conc.GE(gp, conc.K(1))) {
		return cfg, false
	}
	gq := p.InCap("q", 16)
	if !p.If(cQPos, conc.GE(gq, conc.K(1))) {
		return cfg, false
	}
	pfact := p.In("pfact")
	if !inRange(p, cPFactNonneg, cPFact, pfact, 0, 2) {
		return cfg, false
	}
	nbmin := p.In("nbmin")
	if !p.If(cNBMinPos, conc.GE(nbmin, conc.K(1))) {
		return cfg, false
	}
	if !p.If(cNBMinLeNB, conc.LE(nbmin, nb)) {
		return cfg, false
	}
	ndiv := p.In("ndiv")
	if !p.If(cNDiv, conc.GE(ndiv, conc.K(2))) {
		return cfg, false
	}
	if !p.If(cNDivSmall, conc.LE(ndiv, conc.K(8))) {
		return cfg, false
	}
	rfact := p.In("rfact")
	if !inRange(p, cRFactNonneg, cRFact, rfact, 0, 2) {
		return cfg, false
	}
	bcast := p.In("bcast")
	if !inRange(p, cBcastNonneg, cBcast, bcast, 0, 5) {
		return cfg, false
	}
	depth := p.In("depth")
	if !inRange(p, cDepthNonneg, cDepth, depth, 0, 1) {
		return cfg, false
	}
	swap := p.In("swap")
	if !inRange(p, cSwapNonneg, cSwap, swap, 0, 2) {
		return cfg, false
	}
	swapthresh := p.In("swapthresh")
	if !p.If(cSwapThresh, conc.GE(swapthresh, conc.K(0))) {
		return cfg, false
	}
	l1form := p.In("l1form")
	if !inRange(p, cL1FormNeg, cL1Form, l1form, 0, 1) {
		return cfg, false
	}
	uform := p.In("uform")
	if !inRange(p, cUFormNeg, cUForm, uform, 0, 1) {
		return cfg, false
	}
	equil := p.In("equil")
	if !inRange(p, cEquilNeg, cEquil, equil, 0, 1) {
		return cfg, false
	}
	align := p.In("align")
	if !p.If(cAlignPos, conc.GE(align, conc.K(4))) {
		return cfg, false
	}
	if !p.If(cAlignMod, conc.EQ(conc.Mod(align, conc.K(4)), conc.K(0))) {
		return cfg, false
	}
	nruns := p.InCap("nruns", 10)
	if !p.If(cNRunsPos, conc.GE(nruns, conc.K(1))) {
		return cfg, false
	}
	if !p.If(cNRunsMax, conc.LE(nruns, conc.K(10))) {
		return cfg, false
	}
	verbosity := p.In("verbosity")
	if !inRange(p, cVerbNonneg, cVerbosity, verbosity, 0, 1) {
		return cfg, false
	}
	maxfails := p.In("maxfails")
	if !p.If(cMaxFails, conc.GE(maxfails, conc.K(0))) {
		return cfg, false
	}
	checkres := p.In("checkres")
	if !inRange(p, cCheckNonneg, cCheckRes, checkres, 0, 1) {
		return cfg, false
	}
	seed := p.In("seed")
	if !p.If(cSeedNonneg, conc.GE(seed, conc.K(0))) {
		return cfg, false
	}

	cfg = params{
		n: int(n.C), nb: int(nb.C), pmap: int(pmap.C),
		p: int(gp.C), q: int(gq.C),
		pfact: int(pfact.C), nbmin: int(nbmin.C), ndiv: int(ndiv.C),
		rfact: int(rfact.C), bcast: int(bcast.C), depth: int(depth.C),
		swap: int(swap.C), swapthresh: int(swapthresh.C),
		l1form: int(l1form.C), uform: int(uform.C), equil: int(equil.C),
		align: int(align.C), nruns: int(nruns.C),
		verbosity: int(verbosity.C), maxfails: int(maxfails.C),
		checkres: int(checkres.C), seed: seed.C,
	}
	return cfg, true
}

// gridInit builds the P×Q grid communicators (HPL_grid_init). Ranks outside
// the grid drop out; grid members get row and column communicators, whose
// local ranks the concolic runtime marks as rc variables.
func gridInit(p *mpi.Proc, cfg params, rank conc.Value) (*mpi.Comm, bool) {
	p.Enter("grid_init")
	w := p.World()
	np := cfg.p * cfg.q
	inGrid := p.If(cGridUnused, conc.LT(rank, conc.K(int64(np))))
	color := 1
	if inGrid {
		color = 0
	}
	active := p.Split(w, color, p.Rank())
	if !inGrid {
		return nil, false
	}

	me := active.LocalRank()
	var myrow, mycol int
	if p.If(cGridRowMajor, conc.EQ(conc.K(int64(cfg.pmap)), conc.K(0))) {
		myrow, mycol = me/cfg.q, me%cfg.q
	} else {
		myrow, mycol = me%cfg.p, me/cfg.p
	}
	rowComm := p.Split(active, myrow, mycol)
	colComm := p.Split(active, mycol, myrow)
	// HPL queries the sub-grid coordinates back; these are the rc marks.
	_ = p.CommRank(rowComm, "hpl:rowrank")
	_ = p.CommRank(colComm, "hpl:colrank")
	if p.If(cGridSquare, conc.EQ(conc.K(int64(cfg.p)), conc.K(int64(cfg.q)))) {
		// Square grids take the symmetric communication path in HPL; the
		// mini version only distinguishes the branch.
		p.Tick()
	}
	return active, true
}

// pdtest runs nruns factorize+verify cycles (HPL_pdtest).
func pdtest(p *mpi.Proc, cfg params, grid *mpi.Comm) int {
	p.Enter("pdtest")
	fails := 0
	nrunsSym := p.In("nruns") // re-read: same variable, stable ID
	run := conc.K(0)
	for p.If(cRunsLoop, conc.LT(run, nrunsSym)) {
		x, code := pdgesv(p, cfg, grid)
		if code != 0 {
			return code
		}
		if p.If(cResidCheck, conc.EQ(conc.K(int64(cfg.checkres)), conc.K(1))) {
			if !verify(p, cfg, grid, x) {
				fails++
				if fails > cfg.maxfails {
					return 2
				}
			}
		}
		if p.If(cVerbose, conc.EQ(conc.K(int64(cfg.verbosity)), conc.K(1))) {
			p.Tick() // stands in for the report printing path
		}
		run = conc.Add(run, conc.K(1))
	}
	return 0
}

// --- dense solver over a 1-D block-cyclic column distribution ---

// aij generates matrix entries deterministically from the seed, so the
// verification step can regenerate A without storing a copy.
func aij(seed int64, i, j int) float64 {
	if seed == 0 {
		return 1 // rank-one matrix: singular, exercises the pivot-zero path
	}
	h := uint64(seed)*0x9E3779B97F4A7C15 ^ uint64(i)*0xBF58476D1CE4E5B9 ^ uint64(j)*0x94D049BB133111EB
	h ^= h >> 31
	h *= 0xD6E8FEB86659FD93
	h ^= h >> 27
	return float64(h%2048)/1024.0 - 1.0
}

// local holds one rank's share of the augmented matrix [A|b]: full columns,
// assigned block-cyclically by block-column index.
type local struct {
	n, nb, np, me int
	cols          map[int][]float64 // global column index -> column (length n)
}

func (l *local) owner(col int) int { return (col / l.nb) % l.np }

func newLocal(cfg params, grid *mpi.Comm) *local {
	l := &local{n: cfg.n, nb: cfg.nb, np: grid.Size(), me: grid.LocalRank(),
		cols: map[int][]float64{}}
	for j := 0; j <= cfg.n; j++ { // column n is the right-hand side b
		if l.owner(j) != l.me {
			continue
		}
		col := make([]float64, cfg.n)
		for i := 0; i < cfg.n; i++ {
			if j == cfg.n {
				col[i] = aij(cfg.seed+1, i, j) // b
			} else {
				col[i] = aij(cfg.seed, i, j)
			}
		}
		l.cols[j] = col
	}
	return l
}

// pdgesv is the main factorization driver (HPL_pdgesv): loop over block
// panels, factor, broadcast, swap, update. It returns the replicated
// solution vector.
func pdgesv(p *mpi.Proc, cfg params, grid *mpi.Comm) ([]float64, int) {
	p.Enter("pdgesv")
	l := newLocal(cfg, grid)
	n := p.In("n")

	k := 0
	kb := conc.K(0)
	for p.If(cStepLoop, conc.LT(kb, n)) {
		jb := cfg.nb
		if cfg.n-k*cfg.nb < jb {
			jb = cfg.n - k*cfg.nb
		}
		packed := pdfact(p, cfg, l, k, jb)
		panel, piv, code := bcastPanel(p, cfg, grid, l, k, jb, packed)
		if code != 0 {
			// Every rank sees the broadcast status, so the job aborts the
			// factorization together instead of deadlocking.
			return nil, code
		}
		laswp(p, cfg, l, k, jb, piv)
		pdupdate(p, cfg, l, k, jb, panel)
		k++
		kb = conc.Add(kb, conc.K(int64(cfg.nb)))
	}
	return pdtrsv(p, cfg, grid, l), 0
}

// pdfact factors the k-th n×jb panel with partial pivoting (HPL_pdfact).
// The owner returns the packed message [status, jb pivot rows, column data
// rows kb..n-1]; non-owners return nil and receive it in bcastPanel.
func pdfact(p *mpi.Proc, cfg params, l *local, k, jb int) []float64 {
	p.Enter("pdfact")
	kb := k * cfg.nb
	owner := l.owner(kb)
	piv := make([]int, jb)
	if l.me != owner {
		return nil
	}

	// PFACT selects the panel factorization variant, as in HPL: left-looking
	// (0) and Crout (1) defer the update of a column until it becomes
	// current; right-looking (2) updates the trailing panel columns eagerly
	// after each pivot. All variants compute the same factorization (the
	// residual check validates each), but their loop structures — and
	// therefore branch profiles — differ.
	lazy := true
	if p.If(cPFactCrout, conc.True(cfg.pfact == 1)) {
		lazy = true
	} else if p.If(cPFactRight, conc.True(cfg.pfact == 2)) {
		lazy = false
	}
	if p.If(cRecurseNBMin, conc.True(jb > cfg.nbmin)) {
		p.Tick() // recursive splitting point (HPL_pdrpan* family)
	}

	// colUpdate applies column k's eliminator to column jc below row kb+k.
	colUpdate := func(jc, k int) {
		c := l.cols[jc]
		lcol := l.cols[kb+k]
		m := c[kb+k]
		if m == 0 {
			return
		}
		for i := kb + k + 1; i < cfg.n; i++ {
			c[i] -= lcol[i] * m
		}
		p.Exprs(2 * (cfg.n - kb - k))
	}

	// The loop bound is the symbolic NB for full blocks (the concrete
	// remainder for the final partial block), so every panel iteration
	// yields a reducible constraint — the Figure 7/9 pattern.
	nbSym := p.In("nb")
	j := conc.K(0)
	bound := func() conc.Cond {
		if jb == cfg.nb {
			return conc.LT(j, nbSym)
		}
		return conc.True(j.C < int64(jb))
	}
	for p.If(cPanelLoop, bound()) {
		jj := kb + int(j.C)
		col := l.cols[jj]
		if lazy {
			// Left-looking/Crout: bring the current column up to date with
			// every previously factored panel column.
			for k := 0; k < int(j.C); k++ {
				colUpdate(jj, k)
			}
		}
		// Partial pivot search over rows jj..n-1.
		best, bestRow := math.Abs(col[jj]), jj
		for i := jj + 1; i < cfg.n; i++ {
			p.Tick()
			if p.If(cPivotBetter, conc.True(math.Abs(col[i]) > best)) {
				best, bestRow = math.Abs(col[i]), i
			}
		}
		if p.If(cPivotZero, conc.True(best == 0)) {
			return []float64{3} // singular matrix: broadcast the status
		}
		piv[int(j.C)] = bestRow
		if p.If(cPivotSwap, conc.True(bestRow != jj)) {
			// Swap rows within the panel's own columns.
			for jc := kb; jc < kb+jb; jc++ {
				c := l.cols[jc]
				c[jj], c[bestRow] = c[bestRow], c[jj]
			}
		}
		// Scale below the diagonal.
		pivval := col[jj]
		for i := jj + 1; i < cfg.n; i++ {
			col[i] /= pivval
		}
		p.Exprs(2 * (cfg.n - jj))
		if !lazy {
			// Right-looking: eagerly update the rest of the panel.
			for jc := jj + 1; jc < kb+jb; jc++ {
				colUpdate(jc, int(j.C))
			}
		}
		j = conc.Add(j, conc.K(1))
	}

	// Pack [status, pivots, column data].
	h := cfg.n - kb
	out := make([]float64, 1+jb+h*jb)
	for jc := 0; jc < jb; jc++ {
		out[1+jc] = float64(piv[jc])
	}
	for jc := 0; jc < jb; jc++ {
		copy(out[1+jb+jc*h:1+jb+(jc+1)*h], l.cols[kb+jc][kb:])
	}
	return out
}

// bcastPanel distributes the packed panel message using the variant selected
// by the BCAST parameter (HPL_binit family: increasing ring, modified 2-ring,
// long-message algorithm) and unpacks it into (column data, pivots, status).
func bcastPanel(p *mpi.Proc, cfg params, grid *mpi.Comm, l *local, k, jb int, packed []float64) ([]float64, []int, int) {
	p.Enter("bcast")
	root := l.owner(k * cfg.nb)
	// The long-message switch must be computed from sizes every rank knows,
	// or the ranks would disagree about the extra synchronization step.
	long := (cfg.n-k*cfg.nb)*jb > 4*cfg.nb*cfg.nb
	if l.np == 1 {
		// Single-process grid: nothing to communicate.
	} else if p.If(cBcastRing, conc.True(cfg.bcast <= 1)) {
		// Increasing ring: root -> root+1 -> ...
		if l.me == root {
			p.Send(grid, (root+1)%l.np, 100+k, packed)
		} else {
			buf, _ := p.Recv(grid, (l.me-1+l.np)%l.np, 100+k)
			packed = buf
			if (l.me+1)%l.np != root {
				p.Send(grid, (l.me+1)%l.np, 100+k, packed)
			}
		}
	} else if p.If(cBcast2Ring, conc.True(cfg.bcast <= 3)) {
		// Modified 2-ring: root feeds two directions.
		packed = p.Bcast(grid, root, packed)
	} else {
		if p.If(cBcastLong, conc.True(long)) {
			// Long-message variant: scatter+allgather shape, modelled with
			// a flat broadcast after a barrier.
			p.Barrier(grid)
		}
		packed = p.Bcast(grid, root, packed)
	}
	if code := int(packed[0]); code != 0 {
		return nil, nil, code
	}
	piv := make([]int, jb)
	for jc := 0; jc < jb; jc++ {
		piv[jc] = int(packed[1+jc])
	}
	return packed[1+jb:], piv, 0
}

// laswp applies the panel's row interchanges to the trailing local columns
// and the right-hand side (HPL_pdlaswp variants).
func laswp(p *mpi.Proc, cfg params, l *local, k, jb int, piv []int) {
	p.Enter("laswp")
	kb := k * cfg.nb
	if p.If(cSwapBinExch, conc.True(cfg.swap == 0)) {
		p.Tick()
	} else if p.If(cSwapSpread, conc.True(cfg.swap == 1)) {
		p.Tick()
	}
	for jj := 0; jj < jb; jj++ {
		row, with := kb+jj, piv[jj]
		if !p.If(cSwapNeeded, conc.True(with != row)) {
			continue
		}
		for col, c := range l.cols {
			if col >= kb+jb { // trailing columns, including b (col == n)
				c[row], c[with] = c[with], c[row]
			}
		}
	}
}

// pdupdate applies the panel to the trailing submatrix: triangular solve
// with L11, then the rank-jb update with L21 (HPL_pdupdate).
func pdupdate(p *mpi.Proc, cfg params, l *local, k, jb int, panel []float64) {
	p.Enter("pdupdate")
	kb := k * cfg.nb
	h := cfg.n - kb
	remaining := cfg.n - kb - jb
	if p.If(cDepth2, conc.True(cfg.depth == 1 && remaining >= 160)) {
		p.Tick() // look-ahead depth-2 pipeline stage (modelled)
	}
	for col, c := range l.cols {
		if !p.If(cUpdateMine, conc.True(col >= kb+jb)) {
			continue
		}
		// Forward solve with unit-lower L11: u = L11^{-1} * c[kb:kb+jb].
		for jj := 0; jj < jb; jj++ {
			m := c[kb+jj]
			lcol := panel[jj*h : (jj+1)*h]
			for i := jj + 1; i < jb; i++ {
				c[kb+i] -= lcol[i] * m
			}
		}
		// Trailing update: c[kb+jb:] -= L21 * u.
		for jj := 0; jj < jb; jj++ {
			m := c[kb+jj]
			if m == 0 {
				continue
			}
			lcol := panel[jj*h : (jj+1)*h]
			for i := jb; i < h; i++ {
				c[kb+i] -= lcol[i] * m
			}
			p.Exprs(2 * (h - jb))
		}
	}
	if p.If(cEquilOn, conc.True(cfg.equil == 1)) {
		p.Tick() // equilibration pass (no numerical effect in the mini app)
	}
}

// pdtrsv gathers U and the eliminated right-hand side at grid rank 0,
// back-substitutes there, and broadcasts the solution (HPL_pdtrsv).
func pdtrsv(p *mpi.Proc, cfg params, grid *mpi.Comm, l *local) []float64 {
	p.Enter("pdtrsv")
	n := cfg.n
	// Everyone ships its columns to rank 0.
	if l.me != 0 {
		for col, c := range l.cols {
			msg := append([]float64{float64(col)}, c...)
			p.Send(grid, 0, 7000, msg)
		}
		return p.Bcast(grid, 0, nil)
	}
	full := make([][]float64, n+1)
	for col, c := range l.cols {
		full[col] = c
	}
	for have := len(l.cols); have < n+1; have++ {
		msg, _ := p.Recv(grid, mpi.AnySource, 7000)
		full[int(msg[0])] = msg[1:]
	}
	x := make([]float64, n)
	y := full[n]
	for k := n - 1; k >= 0; k-- {
		p.If(cTrsvLoop, conc.True(k >= 0))
		sum := y[k]
		for j := k + 1; j < n; j++ {
			sum -= full[j][k] * x[j]
		}
		x[k] = sum / full[k][k]
		p.Exprs(2 * (n - k))
	}
	return p.Bcast(grid, 0, x)
}

// pdlange computes the infinity norm of the generated matrix over this
// rank's row stripe and reduces to the global norm (HPL_pdlange).
func pdlange(p *mpi.Proc, cfg params, grid *mpi.Comm) float64 {
	p.Enter("pdlange")
	n := cfg.n
	me, np := grid.LocalRank(), grid.Size()
	lo, hi := me*n/np, (me+1)*n/np
	norm := 0.0
	for i := lo; i < hi; i++ {
		row := 0.0
		for j := 0; j < n; j++ {
			row += math.Abs(aij(cfg.seed, i, j))
		}
		if p.If(cLangeRow, conc.True(row > norm)) {
			norm = row
		}
		p.Exprs(2 * n)
	}
	g := p.Allreduce(grid, mpi.OpMax, []float64{norm})
	if p.If(cLangeTiny, conc.True(g[0] < 1e-300)) {
		return 1 // underflow guard, as in the reference implementation
	}
	return g[0]
}

// verify recomputes the HPL scaled residual
//
//	||Ax-b||_inf / (eps * (||A||_inf * ||x||_inf + ||b||_inf) * n)
//
// from the matrix generator and checks it against HPL's default threshold of
// 16 (the unmarked, floating-point input).
func verify(p *mpi.Proc, cfg params, grid *mpi.Comm, x []float64) bool {
	p.Enter("pdtest")
	n := cfg.n
	me, np := grid.LocalRank(), grid.Size()
	lo, hi := me*n/np, (me+1)*n/np
	if len(x) != n {
		return false
	}
	// ||Ax - b||_inf and ||b||_inf over this rank's row stripe.
	worst, bnorm := 0.0, 0.0
	for i := lo; i < hi; i++ {
		s := 0.0
		for j := 0; j < n; j++ {
			s += aij(cfg.seed, i, j) * x[j]
		}
		b := aij(cfg.seed+1, i, cfg.n)
		if r := math.Abs(s - b); r > worst {
			worst = r
		}
		if a := math.Abs(b); a > bnorm {
			bnorm = a
		}
		p.Exprs(2 * n)
	}
	xnorm := 0.0
	for _, v := range x {
		if a := math.Abs(v); a > xnorm {
			xnorm = a
		}
	}
	g := p.Allreduce(grid, mpi.OpMax, []float64{worst, bnorm})
	anorm := pdlange(p, cfg, grid)

	const eps = 2.220446049250313e-16
	scaled := g[0] / (eps * (anorm*xnorm + g[1]) * float64(n))
	return p.If(cResidPass, conc.True(scaled < 16))
}
