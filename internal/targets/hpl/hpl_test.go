package hpl

import (
	"testing"
	"time"

	"repro/internal/conc"
	"repro/internal/mpi"
	"repro/internal/target"
)

// launch runs the program once with the given inputs on n ranks.
func launch(t *testing.T, n int, inputs map[string]int64) mpi.RunResult {
	t.Helper()
	return mpi.Launch(mpi.Spec{
		NProcs: n,
		Main:   Main,
		Vars:   conc.NewVarSpace(),
		Conc: func(rank int) conc.Config {
			mode := conc.Light
			if rank == 0 {
				mode = conc.Heavy
			}
			return conc.Config{Mode: mode, Reduction: true, Seed: 1, MaxTicks: 50_000_000}
		},
		Inputs:  inputs,
		Timeout: 60 * time.Second,
	})
}

func TestDefaultInputsSolve(t *testing.T) {
	res := launch(t, 8, DefaultInputs())
	for _, rr := range res.Ranks {
		if rr.Status != mpi.StatusOK || rr.Exit != 0 {
			t.Fatalf("rank %d: %v exit=%d err=%v", rr.Rank, rr.Status, rr.Exit, rr.Err)
		}
	}
}

func TestResidualPassesOnDefaults(t *testing.T) {
	// Exit 0 with checkres=1 means the residual check passed; additionally
	// the cResidPass true branch must be covered on the focus.
	res := launch(t, 8, DefaultInputs())
	if res.Failed() {
		t.Fatal("run failed")
	}
	covered := false
	for _, b := range res.Ranks[0].Log.Covered {
		if b.Site() == cResidPass && b.Outcome() {
			covered = true
		}
	}
	if !covered {
		t.Fatal("residual-pass branch not covered: LU result is wrong")
	}
}

func TestSanityRejectsBadInputs(t *testing.T) {
	cases := []struct {
		name  string
		patch map[string]int64
	}{
		{"n=0", map[string]int64{"n": 0}},
		{"nb=0", map[string]int64{"nb": 0}},
		{"nb>n", map[string]int64{"n": 10, "nb": 20}},
		{"p=0", map[string]int64{"p": 0}},
		{"ndiv=1", map[string]int64{"ndiv": 1}},
		{"align=6", map[string]int64{"align": 6}},
		{"bcast=9", map[string]int64{"bcast": 9}},
		{"nruns=0", map[string]int64{"nruns": 0}},
		{"seed<0", map[string]int64{"seed": -1}},
	}
	for _, c := range cases {
		in := DefaultInputs()
		for k, v := range c.patch {
			in[k] = v
		}
		res := launch(t, 8, in)
		fe, bad := res.FirstError()
		if !bad || fe.Exit != 1 {
			t.Fatalf("%s: want sanity exit 1, got %+v", c.name, fe)
		}
	}
}

func TestGridLargerThanJobRejected(t *testing.T) {
	in := DefaultInputs()
	in["p"], in["q"] = 4, 4 // 16 > 8 ranks
	res := launch(t, 8, in)
	fe, bad := res.FirstError()
	if !bad || fe.Exit != 1 {
		t.Fatalf("want grid-fit rejection, got %+v", fe)
	}
}

func TestSingularMatrixDetected(t *testing.T) {
	in := DefaultInputs()
	in["seed"] = 0 // rank-one matrix
	res := launch(t, 8, in)
	fe, bad := res.FirstError()
	if !bad || fe.Exit != 3 {
		t.Fatalf("want singular exit 3, got %+v", fe)
	}
}

func TestSmallGridAndPartialBlocks(t *testing.T) {
	in := DefaultInputs()
	in["n"], in["nb"], in["p"], in["q"] = 37, 8, 1, 2 // uneven final block
	res := launch(t, 4, in)
	if res.Failed() {
		fe, _ := res.FirstError()
		t.Fatalf("failed: %+v", fe)
	}
}

func TestColumnMajorGrid(t *testing.T) {
	in := DefaultInputs()
	in["pmap"] = 1
	res := launch(t, 8, in)
	if res.Failed() {
		t.Fatal("column-major grid run failed")
	}
}

func TestPanelFactorizationVariants(t *testing.T) {
	// All three PFACT variants must produce a correct factorization: the
	// residual check is the oracle.
	for _, pf := range []int64{0, 1, 2} {
		in := DefaultInputs()
		in["pfact"] = pf
		res := launch(t, 8, in)
		if res.Failed() {
			fe, _ := res.FirstError()
			t.Fatalf("pfact=%d failed: %+v", pf, fe)
		}
		passed := false
		for _, b := range res.Ranks[0].Log.Covered {
			if b.Site() == cResidPass && b.Outcome() {
				passed = true
			}
		}
		if !passed {
			t.Fatalf("pfact=%d: residual check did not pass", pf)
		}
	}
}

func TestBcastVariants(t *testing.T) {
	for _, bc := range []int64{0, 2, 5} {
		in := DefaultInputs()
		in["bcast"] = bc
		res := launch(t, 8, in)
		if res.Failed() {
			t.Fatalf("bcast=%d failed", bc)
		}
	}
}

func TestExecutionTimeScalesWithN(t *testing.T) {
	in100 := DefaultInputs()
	in100["n"] = 60
	in300 := DefaultInputs()
	in300["n"] = 240
	r1 := launch(t, 4, in100)
	r2 := launch(t, 4, in300)
	if r2.Elapsed <= r1.Elapsed {
		t.Skipf("timing noise: n=240 (%v) not slower than n=60 (%v)", r2.Elapsed, r1.Elapsed)
	}
}

func TestProgramRegistration(t *testing.T) {
	prog, ok := target.Lookup("hpl")
	if !ok {
		t.Fatal("hpl not registered")
	}
	if prog.TotalBranches() < 80 {
		t.Fatalf("suspiciously few branches: %d", prog.TotalBranches())
	}
	if len(prog.Functions()) < 6 {
		t.Fatalf("functions: %v", prog.Functions())
	}
}

func TestReachableBranchEstimate(t *testing.T) {
	prog, _ := target.Lookup("hpl")
	res := launch(t, 8, DefaultInputs())
	funcs := map[string]struct{}{}
	for _, f := range res.Ranks[0].Log.Funcs {
		funcs[f] = struct{}{}
	}
	reach := prog.ReachableBranches(funcs)
	if reach == 0 || reach > prog.TotalBranches() {
		t.Fatalf("reachable estimate %d/%d", reach, prog.TotalBranches())
	}
}
