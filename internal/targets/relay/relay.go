// Package relay seeds a three-rank circular-wait bug behind a wildcard
// receive. Rank 0 coordinates a token relay: it waits for a start
// announcement, and its reaction depends on who it hears first. The
// announcements are causally chained (rank 2 announces only after rank 1
// passes it the token), so eager matching — and the schedule explorer's
// default order — always hears rank 1 first and the relay completes. Directed
// to hear rank 2 first, rank 0 takes the branch that waits for data rank 2
// only produces after receiving the relayed pass, which rank 1 only sends
// after rank 0's go: a 0->2->1->0 wait-for cycle spanning all three ranks.
// Like mworder, no input assignment reaches the bug; unlike mworder, the
// cycle is longer than a mutual wait, exercising the detector's cycle walk.
package relay

import (
	"repro/internal/conc"
	"repro/internal/mpi"
	"repro/internal/target"
)

// ParamFixBranch toggles the developer fix: rank 0 reacts to the announcer
// it actually heard instead of branching into a wait for unproduced data.
const ParamFixBranch = "relay.fix.branch"

const (
	tagStart = 1
	tagToken = 2
	tagGo    = 3
	tagPass  = 4
	tagData  = 5
)

var b = target.NewBuilder("relay", 88)

var (
	cEnough = b.Cond("main", "size >= 3")
	cIsR0   = b.Cond("main", "rank == 0")
	cIsR1   = b.Cond("main", "rank == 1")
	cIsR2   = b.Cond("main", "rank == 2")
	cFrom1  = b.Cond("lead", "source == 1")
	cAmp    = b.Cond("lead", "amp > 4")
)

func init() {
	b.InCap("amp", 16)
	b.Call("main", "lead")
	target.Register(b.Build(Main))
}

// Main is the program under test. amp is the symbolic input; it scales the
// relayed payload and gives the concolic side branches to chase, but no value
// of it changes the match order.
func Main(p *mpi.Proc) int {
	p.Enter("main")
	w := p.World()
	amp := p.InCap("amp", 16)
	rank := p.CommRank(w, "relay:rank")
	size := p.CommSize(w, "relay:size")

	if !p.If(cEnough, conc.GE(size, conc.K(3))) {
		return 0
	}

	switch {
	case p.If(cIsR0, conc.EQ(rank, conc.K(0))):
		return lead(p, amp)
	case p.If(cIsR1, conc.EQ(rank, conc.K(1))):
		p.Send(w, 0, tagStart, []float64{1})
		p.Send(w, 2, tagToken, nil)
		p.Recv(w, 0, tagGo)
		p.Send(w, 2, tagPass, nil)
	case p.If(cIsR2, conc.EQ(rank, conc.K(2))):
		p.Recv(w, 1, tagToken)
		p.Send(w, 0, tagStart, []float64{2})
		p.Recv(w, 1, tagPass)
	}
	return 0
}

// lead is rank 0's coordination: hear a start, react, hear the other start.
func lead(p *mpi.Proc, amp conc.Value) int {
	p.Enter("lead")
	w := p.World()
	_, st := p.Recv(w, mpi.AnySource, tagStart)
	src := conc.K(int64(st.Source))
	scale := 1.0
	if p.If(cAmp, conc.GT(amp, conc.K(4))) {
		scale = 2
	}
	_ = scale
	if p.If(cFrom1, conc.EQ(src, conc.K(1))) || p.ParamBool(ParamFixBranch, false) {
		// Heard rank 1 (or fixed): release the relay, then collect the
		// other announcement.
		p.Send(w, 1, tagGo, nil)
		p.Recv(w, mpi.AnySource, tagStart)
	} else {
		// Seeded bug: "rank 2 started early, its result must be coming."
		// Rank 2 never sends data before the relay completes — and the
		// relay cannot complete while rank 0 sits here.
		p.Recv(w, 2, tagData)
	}
	return 0
}
