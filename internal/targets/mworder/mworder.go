// Package mworder seeds the classic master/worker match-order bug (the MPISE
// motivating example): the master drains worker ready messages with one
// wildcard receive followed by a rank-specific receive, silently assuming the
// wildcard matched worker 1. The workers' sends are causally chained —
// worker 2 announces itself only after worker 1 hands it a token — so under
// eager matching (and under the schedule explorer's default lowest-source
// order) the assumption always holds and every input-only campaign passes.
// Only directing the wildcard to match worker 2 first exposes the bug: the
// master then re-awaits worker 2's already-consumed ready and the job wedges
// in the 0<->2 wait-for cycle. No input value can trigger it, which is what
// makes the target a pure schedule-space benchmark.
package mworder

import (
	"repro/internal/conc"
	"repro/internal/mpi"
	"repro/internal/target"
)

// ParamFixOrder toggles the developer fix: the master drains both readies
// with wildcard receives and learns who is who from the message status.
const ParamFixOrder = "mworder.fix.order"

const (
	tagReady = 1
	tagToken = 2
	tagTask  = 3
)

var b = target.NewBuilder("mworder", 95)

var (
	cEnough = b.Cond("main", "size >= 3")
	cIsMast = b.Cond("main", "rank == 0")
	cIsW1   = b.Cond("main", "rank == 1")
	cIsW2   = b.Cond("main", "rank == 2")
	cRounds = b.Cond("master", "r < rounds")
)

func init() {
	b.InCap("rounds", 8)
	b.Call("main", "master")
	b.Call("main", "worker")
	target.Register(b.Build(Main))
}

// Main is the program under test: one master, two chained workers, extra
// ranks idle. rounds is the symbolic input the concolic side explores; the
// protocol bug is independent of it.
func Main(p *mpi.Proc) int {
	p.Enter("main")
	w := p.World()
	rounds := p.InCap("rounds", 8)
	rank := p.CommRank(w, "mworder:rank")
	size := p.CommSize(w, "mworder:size")

	if !p.If(cEnough, conc.GE(size, conc.K(3))) {
		return 0 // degenerate launch: no protocol to run
	}

	switch {
	case p.If(cIsMast, conc.EQ(rank, conc.K(0))):
		return master(p, rounds)
	case p.If(cIsW1, conc.EQ(rank, conc.K(1))):
		p.Send(w, 0, tagReady, []float64{1})
		p.Send(w, 2, tagToken, nil)
		p.Recv(w, 0, tagTask)
	case p.If(cIsW2, conc.EQ(rank, conc.K(2))):
		p.Recv(w, 1, tagToken)
		p.Send(w, 0, tagReady, []float64{2})
		p.Recv(w, 0, tagTask)
	}
	return 0
}

// master collects both workers' ready messages and hands out the task
// assignments. The unfixed drain hard-codes the arrival order.
func master(p *mpi.Proc, rounds conc.Value) int {
	p.Enter("master")
	w := p.World()
	if p.ParamBool(ParamFixOrder, false) {
		// Fixed drain: two wildcards, identity from the status.
		p.Recv(w, mpi.AnySource, tagReady)
		p.Recv(w, mpi.AnySource, tagReady)
	} else {
		// Seeded bug: assumes the wildcard matched worker 1, so worker 2's
		// ready must still be pending. If the wildcard actually consumed
		// worker 2's ready, this receive waits forever.
		p.Recv(w, mpi.AnySource, tagReady)
		p.Recv(w, 2, tagReady)
	}
	work := 0.0
	for r := conc.K(0); p.If(cRounds, conc.LT(r, rounds)); r = conc.Add(r, conc.K(1)) {
		work = work*0.5 + 1
	}
	p.Send(w, 1, tagTask, []float64{work})
	p.Send(w, 2, tagTask, []float64{work})
	return 0
}
