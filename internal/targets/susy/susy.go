package susy

import (
	"math"

	"repro/internal/conc"
	"repro/internal/mpi"
)

// DefaultDimCap is the default input cap (§IV-A) on each of the four
// lattice dimensions; the paper's default for SUSY-HMC is 5 (the Figure 8
// study also uses 10). Campaigns override it via the ParamDimCap parameter.
const DefaultDimCap int64 = 5

// Campaign parameter keys. Caps and fix toggles are per-campaign state
// carried in core.Config.Params and read through the proc handle, so
// concurrent campaigns on this target cannot observe each other's settings.
const (
	ParamDimCap     = "susy.dimcap"
	ParamFixRHMC    = "susy.fix.rhmc"
	ParamFixCongrad = "susy.fix.congrad"
	ParamFixPloop   = "susy.fix.ploop"
	ParamFixDivZero = "susy.fix.divzero"
)

// Fixes toggles the developer-confirmed fix for each seeded bug
// independently, so a bug-hunting campaign can fix bugs as it confirms them
// and continue — the workflow the paper describes ("developers should fix
// such known bugs and then continue testing").
type Fixes struct {
	RHMC    bool // bug 1: setup_rhmc undersized amplitude array
	Congrad bool // bug 2: congrad halo buffer missing ghost slices
	Ploop   bool // bug 3: ploop accumulator one slot short
	DivZero bool // bug 4: update_h division by zero at nprocs == 2*nsrc
}

// Params renders the fix set as campaign parameters. All four keys are
// always present, so merging a partial fix bag over a previous one fully
// replaces the fix state.
func (f Fixes) Params() map[string]int64 {
	return map[string]int64{
		ParamFixRHMC:    b2i(f.RHMC),
		ParamFixCongrad: b2i(f.Congrad),
		ParamFixPloop:   b2i(f.Ploop),
		ParamFixDivZero: b2i(f.DivZero),
	}
}

func b2i(v bool) int64 {
	if v {
		return 1
	}
	return 0
}

// FixAll returns the parameter bag applying every fix (coverage campaigns
// run on the fixed program).
func FixAll() map[string]int64 {
	return Fixes{RHMC: true, Congrad: true, Ploop: true, DivZero: true}.Params()
}

// UnfixAll returns the parameter bag leaving all four bugs live (the
// default when no parameters are set).
func UnfixAll() map[string]int64 { return Fixes{}.Params() }

// CapParams returns the parameter bag overriding the dimension cap.
func CapParams(dim int64) map[string]int64 {
	return map[string]int64{ParamDimCap: dim}
}

// DefaultInputs is a valid parameter set for fixed-input experiments.
func DefaultInputs() map[string]int64 {
	return map[string]int64{
		"nx": 2, "ny": 2, "nz": 2, "nt": 4,
		"warms": 1, "trajecs": 2, "nstep": 2, "nsrc": 3,
		"nroot": 2, "niter": 5, "mass": 50, "lambda": 10, "seed": 7,
	}
}

type params struct {
	nx, ny, nz, nt  int
	warms, trajecs  int
	nstep, nsrc     int
	nroot, niter    int
	mass, lambda    int64
	seed            int64
	volume, localNt int
}

// Main is the program under test.
func Main(p *mpi.Proc) int {
	p.Enter("main")
	w := p.World()

	cfg, ok := setup(p)
	if !ok {
		return 1
	}

	size := p.CommSize(w, "susy:size")
	rank := p.CommRank(w, "susy:rank")

	if !layout(p, &cfg, rank, size) {
		return 1
	}

	amp := setupRHMC(p, cfg)

	lat := newLattice(cfg, int(rank.C), int(size.C))
	code := update(p, cfg, lat, amp)
	p.Barrier(w)
	return code
}

// setup reads and validates the 13 marked inputs.
func setup(p *mpi.Proc) (params, bool) {
	p.Enter("setup")
	var cfg params

	dim := p.Param(ParamDimCap, DefaultDimCap)
	nx := p.InCap("nx", dim)
	if !p.If(cNXPos, conc.GE(nx, conc.K(1))) {
		return cfg, false
	}
	ny := p.InCap("ny", dim)
	if !p.If(cNYPos, conc.GE(ny, conc.K(1))) {
		return cfg, false
	}
	nz := p.InCap("nz", dim)
	if !p.If(cNZPos, conc.GE(nz, conc.K(1))) {
		return cfg, false
	}
	nt := p.InCap("nt", dim)
	if !p.If(cNTPos, conc.GE(nt, conc.K(1))) {
		return cfg, false
	}
	warms := p.InCap("warms", 5)
	if !p.If(cWarms, conc.GE(warms, conc.K(0))) {
		return cfg, false
	}
	trajecs := p.InCap("trajecs", 10)
	if !p.If(cTrajecs, conc.GE(trajecs, conc.K(1))) {
		return cfg, false
	}
	if !p.If(cTrajecsMax, conc.LE(trajecs, conc.K(10))) {
		return cfg, false
	}
	nstep := p.InCap("nstep", 10)
	if !p.If(cNStep, conc.GE(nstep, conc.K(1))) {
		return cfg, false
	}
	nsrc := p.InCap("nsrc", 4)
	if !p.If(cNSrc, conc.GE(nsrc, conc.K(1))) {
		return cfg, false
	}
	nroot := p.InCap("nroot", 8)
	if !p.If(cNRoot, conc.GE(nroot, conc.K(1))) {
		return cfg, false
	}
	if !p.If(cNRootMax, conc.LE(nroot, conc.K(8))) {
		return cfg, false
	}
	niter := p.InCap("niter", 20)
	if !p.If(cNIter, conc.GE(niter, conc.K(1))) {
		return cfg, false
	}
	mass := p.InCap("mass", 100)
	if !p.If(cMassPos, conc.GT(mass, conc.K(0))) {
		return cfg, false
	}
	lambda := p.InCap("lambda", 50)
	if !p.If(cLambda, conc.GE(lambda, conc.K(0))) {
		return cfg, false
	}
	seed := p.In("seed")
	if !p.If(cSeedPos, conc.GE(seed, conc.K(0))) {
		return cfg, false
	}

	cfg = params{
		nx: int(nx.C), ny: int(ny.C), nz: int(nz.C), nt: int(nt.C),
		warms: int(warms.C), trajecs: int(trajecs.C),
		nstep: int(nstep.C), nsrc: int(nsrc.C),
		nroot: int(nroot.C), niter: int(niter.C),
		mass: mass.C, lambda: lambda.C, seed: seed.C,
	}
	return cfg, true
}

// layout distributes the lattice along the t dimension (setup_layout): nt
// must divide evenly among the ranks, which couples the input space to the
// process count — one of the branch families only COMPI's framework reaches.
func layout(p *mpi.Proc, cfg *params, rank, size conc.Value) bool {
	p.Enter("layout")
	// The t dimension is split across ranks: there must be at least one
	// slice per rank (this linear check is what lets the solver shrink the
	// process count when nt is capped below it — exactly the coupling that
	// makes No_Fwk collapse on SUSY in Table VI)...
	if !p.If(cLayoutFit, conc.GE(p.In("nt"), size)) {
		return false
	}
	// ...and the slices must divide evenly.
	if !p.If(cLayoutDiv, conc.EQ(conc.Mod(p.In("nt"), size), conc.K(0))) {
		return false
	}
	cfg.volume = cfg.nx * cfg.ny * cfg.nz * cfg.nt
	cfg.localNt = cfg.nt / int(size.C)
	if p.If(cLayoutBig, conc.True(cfg.volume >= 16)) {
		p.Tick() // large-volume layout path (blocked site ordering)
	}
	if p.If(cLayoutRoot, conc.EQ(rank, conc.K(0))) {
		p.Tick() // rank 0 reports the layout
	}
	return true
}

// setupRHMC computes the rational-approximation amplitudes. Bug 1: the
// original code allocates Nroot entries where the loop stores 2·Nroot
// (malloc(Nroot * sizeof(**src)) instead of sizeof(*src)); any nroot >= 1
// crashes with the out-of-bounds write the paper reports as a segfault.
func setupRHMC(p *mpi.Proc, cfg params) []float64 {
	p.Enter("setup_rhmc")
	n := cfg.nroot
	if p.ParamBool(ParamFixRHMC, false) {
		n = 2 * cfg.nroot
	}
	amp := make([]float64, n)
	if p.If(cRHMCOrder, conc.True(cfg.nroot > 1)) {
		p.Tick() // higher-order rational approximation path
	}
	for i := 0; i < cfg.nroot; i++ {
		amp[i] = 1 / float64(i+1)
		amp[cfg.nroot+i] = -1 / float64(i+2) // bug 1 fires here when unfixed
	}
	norm := 0.0
	for _, a := range amp {
		norm += a * a
	}
	if p.If(cRHMCNorm, conc.True(norm > 1)) {
		for i := range amp {
			amp[i] /= math.Sqrt(norm)
		}
	}
	return amp
}

// lattice is one rank's slab of the 4-D lattice (split along t).
type lattice struct {
	cfg      params
	rank, np int
	localVol int
	links    []float64 // gauge field, one value per site (toy model)
	mom      []float64 // conjugate momenta
	rng      uint64
}

func newLattice(cfg params, rank, np int) *lattice {
	lv := cfg.volume / np
	l := &lattice{cfg: cfg, rank: rank, np: np, localVol: lv,
		links: make([]float64, lv), mom: make([]float64, lv),
		rng: uint64(cfg.seed)*2862933555777941757 + uint64(rank) + 1}
	for i := range l.links {
		l.links[i] = 1
	}
	return l
}

func (l *lattice) next() float64 {
	l.rng = l.rng*6364136223846793005 + 1442695040888963407
	return float64(l.rng>>33)/float64(1<<31) - 0.5
}

// sliceVol is the number of sites in one t-slice.
func (l *lattice) sliceVol() int { return l.cfg.nx * l.cfg.ny * l.cfg.nz }

// update is the HMC trajectory loop.
func update(p *mpi.Proc, cfg params, lat *lattice, amp []float64) int {
	p.Enter("update")
	w := p.World()
	trajecsSym := p.In("trajecs")
	warmsSym := p.In("warms")
	total := conc.Add(warmsSym, trajecsSym)

	traj := conc.K(0)
	for p.If(cTrajLoop, conc.LT(traj, total)) {
		warm := p.If(cIsWarm, conc.LT(traj, warmsSym))

		nstepSym := p.In("nstep")
		step := conc.K(0)
		for p.If(cStepLoop, conc.LT(step, nstepSym)) {
			updateH(p, cfg, lat, amp)
			updateU(p, cfg, lat)
			// The rational approximation solves one shifted system per
			// root (the multi-shift CG of the real RHMC), each shift taken
			// from the amplitude table.
			for root := 0; root < cfg.nroot; root++ {
				shift := 0.0
				if root < len(amp) {
					shift = amp[root] * amp[root]
				}
				if code := congrad(p, cfg, lat, shift); code != 0 {
					return code
				}
			}
			step = conc.Add(step, conc.K(1))
		}

		// Metropolis accept/reject on the global action delta.
		dS := 0.0
		for _, m := range lat.mom {
			dS += m * m
		}
		g := p.Allreduce(w, mpi.OpSum, []float64{dS})
		if p.If(cAccept, conc.True(math.Mod(g[0], 1.0) < 0.7)) {
			p.Tick() // accepted: keep the new configuration
		} else {
			for i := range lat.mom {
				lat.mom[i] = 0
			}
		}

		if !warm {
			measure(p, cfg, lat)
		}
		traj = conc.Add(traj, conc.K(1))
	}
	return 0
}

// updateH updates the momenta from the force. Bug 4: the normalization
// divides by (2·nsrc - nprocs), a division by zero exactly when the job runs
// with 2·nsrc processes — 2 or 4 processes for small nsrc, never 1 or 3.
func updateH(p *mpi.Proc, cfg params, lat *lattice, amp []float64) {
	p.Enter("update_h")
	scale := 1.0
	if len(amp) > 0 {
		scale = 1 + math.Abs(amp[0])
	}
	denom := 2*cfg.nsrc - lat.np
	if p.ParamBool(ParamFixDivZero, false) {
		denom = 2*cfg.nsrc + lat.np
	}
	if p.If(cSrcSplit, conc.True(cfg.nsrc >= lat.np)) {
		p.Tick() // sources distributed one per rank
	}
	norm := float64(cfg.volume / denom) // bug 4 fires here when unfixed
	if norm == 0 {
		norm = 1
	}
	for i := range lat.mom {
		f := scale*lat.links[i]*float64(cfg.lambda)/100 + lat.next()
		if p.If(cForceBig, conc.True(math.Abs(f) > 0.45)) {
			f *= 0.5 // force clipping
		}
		lat.mom[i] += f / norm
	}
	// The real force computation sums staples over all 4 dimensions per
	// link — on the order of a hundred instrumented operations per site.
	p.Exprs(96 * len(lat.mom))
}

// updateU applies the momenta to the gauge links with a per-site loop whose
// x bound is the symbolic lattice dimension.
func updateU(p *mpi.Proc, cfg params, lat *lattice) {
	p.Enter("update_u")
	nxSym := p.In("nx")
	x := conc.K(0)
	for p.If(cLinkLoopX, conc.LT(x, nxSym)) {
		base := int(x.C) * cfg.ny * cfg.nz * cfg.localNt
		for i := base; i < base+cfg.ny*cfg.nz*cfg.localNt && i < lat.localVol; i++ {
			lat.links[i] += 0.01 * lat.mom[i]
			if p.If(cUnitarize, conc.True(math.Abs(lat.links[i]) > 2)) {
				lat.links[i] /= math.Abs(lat.links[i])
			}
		}
		p.Exprs(48 * cfg.ny * cfg.nz * cfg.localNt)
		x = conc.Add(x, conc.K(1))
	}
}

// congrad is the conjugate-gradient solver with a t-direction halo exchange
// per iteration. Bug 2: the halo buffer is allocated without the two ghost
// slices (the second wrong-malloc crash); any multi-rank run that enters the
// halo exchange crashes when unfixed.
func congrad(p *mpi.Proc, cfg params, lat *lattice, shift float64) int {
	p.Enter("congrad")
	w := p.World()
	sv := lat.sliceVol()
	n := lat.localVol
	if lat.np > 1 && p.ParamBool(ParamFixCongrad, false) {
		n += 2 * sv // ghost slices; the unfixed allocation misses them
	}
	r := make([]float64, n)
	for i := 0; i < lat.localVol; i++ {
		r[i] = lat.links[i] * (float64(cfg.mass)/100 + shift)
	}

	niterSym := p.In("niter")
	iter := conc.K(0)
	for p.If(cCGIter, conc.LT(iter, niterSym)) {
		if p.If(cCGHalo, conc.True(lat.np > 1)) {
			up := (lat.rank + 1) % lat.np
			down := (lat.rank - 1 + lat.np) % lat.np
			ghost, _ := p.Sendrecv(w, up, 300, r[lat.localVol-sv:lat.localVol], down, 300)
			copy(r[lat.localVol:lat.localVol+sv], ghost) // bug 2 fires here when unfixed
			ghost2, _ := p.Sendrecv(w, down, 301, r[:sv], up, 301)
			copy(r[lat.localVol+sv:lat.localVol+2*sv], ghost2)
		}
		rsq := 0.0
		for i := 0; i < lat.localVol; i++ {
			r[i] = 0.9*r[i] + 0.01*lat.next()
			rsq += r[i] * r[i]
		}
		// The fermion matrix-vector product behind each CG iteration
		// touches every neighbor link: ~dozens of ops per site.
		p.Exprs(64 * lat.localVol)
		g := p.Allreduce(w, mpi.OpSum, []float64{rsq})
		if p.If(cCGConv, conc.True(g[0] < 1e-8)) {
			break
		}
		if p.If(cCGRestart, conc.True(g[0] > 1e6)) {
			for i := 0; i < lat.localVol; i++ {
				r[i] = 0
			}
		}
		iter = conc.Add(iter, conc.K(1))
		p.Tick()
	}
	return 0
}

// measure computes the plaquette-style observable and, for multi-source
// runs, the Polyakov loop. Bug 3: ploop's accumulator is allocated with
// nsrc-1 slots (the third wrong-malloc bug); it crashes whenever nsrc >= 2
// reaches a measurement trajectory.
func measure(p *mpi.Proc, cfg params, lat *lattice) {
	p.Enter("measure")
	if !p.If(cMeasure, conc.True(cfg.volume > 1)) {
		return // single-site lattices have no plaquette to measure
	}
	w := p.World()
	sum := 0.0
	for _, v := range lat.links {
		sum += v
	}
	_ = p.Allreduce(w, mpi.OpSum, []float64{sum})
	ploop(p, cfg, lat)
}

func ploop(p *mpi.Proc, cfg params, lat *lattice) {
	p.Enter("ploop")
	if !p.If(cPloopSrc, conc.True(cfg.nsrc >= 2)) {
		return
	}
	n := cfg.nsrc - 1
	if p.ParamBool(ParamFixPloop, false) {
		n = cfg.nsrc
	}
	acc := make([]float64, n)
	for s := 0; s < cfg.nsrc; s++ {
		acc[s] = lat.links[s%lat.localVol] // bug 3 fires at s = nsrc-1 when unfixed
	}
	if p.If(cPloopWrap, conc.True(lat.rank == lat.np-1)) {
		p.Tick() // the loop wraps the t boundary on the last rank
	}
	_ = acc
}
