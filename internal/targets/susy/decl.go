// Package susy is a miniature SUSY-HMC: the Rational Hybrid Monte Carlo
// component of the SUSY LATTICE physics simulation the paper tests. It keeps
// the testing-relevant skeleton — read 13 inputs, sanity-check them, lay a
// 4-D lattice out across the ranks, then run the trajectory loop
// (momentum/gauge updates plus a conjugate-gradient solver with halo
// exchanges) — and seeds the four real bugs COMPI found (§VI-A):
//
//   - three undersized-allocation crashes (the malloc(sizeof(**src)) family),
//     one each in setup_rhmc, congrad, and ploop, with increasingly deep
//     trigger conditions; and
//   - one division-by-zero in update_h that manifests only when the number
//     of processes equals 2·nsrc — with the default nsrc range that means 2
//     or 4 processes, never 1 or 3, exactly as reported.
//
// BugsFixed applies the developers' fixes, which the coverage experiments
// use (the paper notes testing continues after known bugs are fixed).
package susy

import "repro/internal/target"

var b = target.NewBuilder("susy-hmc", 1900)

// Input sanity sites (setup.c-style checks).
var (
	cNXPos      = b.Cond("setup", "nx >= 1")
	cNYPos      = b.Cond("setup", "ny >= 1")
	cNZPos      = b.Cond("setup", "nz >= 1")
	cNTPos      = b.Cond("setup", "nt >= 1")
	cWarms      = b.Cond("setup", "warms >= 0")
	cTrajecs    = b.Cond("setup", "trajecs >= 1")
	cTrajecsMax = b.Cond("setup", "trajecs <= 10")
	cNStep      = b.Cond("setup", "nstep >= 1")
	cNSrc       = b.Cond("setup", "nsrc >= 1")
	cNRoot      = b.Cond("setup", "nroot >= 1")
	cNRootMax   = b.Cond("setup", "nroot <= 8")
	cNIter      = b.Cond("setup", "niter >= 1")
	cMassPos    = b.Cond("setup", "mass > 0")
	cLambda     = b.Cond("setup", "lambda >= 0")
	cSeedPos    = b.Cond("setup", "seed >= 0")
)

// Layout sites (setup_layout).
var (
	cLayoutFit  = b.Cond("layout", "nt >= nprocs")
	cLayoutDiv  = b.Cond("layout", "nt % nprocs == 0")
	cLayoutBig  = b.Cond("layout", "volume >= 16")
	cLayoutRoot = b.Cond("layout", "rank == 0 prints layout")
)

// RHMC setup sites (setup_rhmc) — bug 1 lives here.
var (
	cRHMCOrder = b.Cond("setup_rhmc", "nroot > 1 (high order)")
	cRHMCNorm  = b.Cond("setup_rhmc", "amp normalization")
)

// Trajectory loop sites (update).
var (
	cTrajLoop = b.Cond("update", "traj < warms + trajecs")
	cIsWarm   = b.Cond("update", "traj < warms")
	cStepLoop = b.Cond("update", "step < nstep")
	cAccept   = b.Cond("update", "metropolis accept")
)

// Momentum update sites (update_h) — bug 4 (division by zero) lives here.
var (
	cForceBig = b.Cond("update_h", "|force| > bound")
	cSrcSplit = b.Cond("update_h", "nsrc split across ranks")
)

// Gauge update sites (update_u).
var (
	cLinkLoopX = b.Cond("update_u", "x < nx")
	cUnitarize = b.Cond("update_u", "renormalize link")
)

// Conjugate gradient sites (congrad) — bug 2 lives here.
var (
	cCGIter    = b.Cond("congrad", "iter < niter")
	cCGConv    = b.Cond("congrad", "rsq < tol")
	cCGRestart = b.Cond("congrad", "restart needed")
	cCGHalo    = b.Cond("congrad", "nprocs > 1 (halo exchange)")
)

// Measurement sites (measure, ploop) — bug 3 lives in ploop.
var (
	cMeasure   = b.Cond("measure", "measurement trajectory")
	cPloopSrc  = b.Cond("ploop", "nsrc >= 2 (extra sources)")
	cPloopWrap = b.Cond("ploop", "t wraps around")
)

func init() {
	b.InCap("nx", DefaultDimCap)
	b.InCap("ny", DefaultDimCap)
	b.InCap("nz", DefaultDimCap)
	b.InCap("nt", DefaultDimCap)
	b.InCap("warms", 5)
	b.InCap("trajecs", 10)
	b.InCap("nstep", 10)
	b.InCap("nsrc", 4)
	b.InCap("nroot", 8)
	b.InCap("niter", 20)
	b.InCap("mass", 100)
	b.InCap("lambda", 50)
	b.In("seed")
	b.Call("main", "setup")
	b.Call("main", "layout")
	b.Call("main", "setup_rhmc")
	b.Call("main", "update")
	b.Call("update", "update_h")
	b.Call("update", "update_u")
	b.Call("update", "congrad")
	b.Call("update", "measure")
	b.Call("measure", "ploop")
	target.Register(b.Build(Main))
}
