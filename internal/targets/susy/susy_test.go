package susy

import (
	"strings"
	"testing"
	"time"

	"repro/internal/conc"
	"repro/internal/mpi"
	"repro/internal/target"
)

// launch runs one job with the given campaign parameters (fix toggles and
// caps) — per-launch state, standing in for what a campaign carries in its
// core.Config.Params.
func launch(t *testing.T, n int, inputs, params map[string]int64) mpi.RunResult {
	t.Helper()
	return mpi.Launch(mpi.Spec{
		NProcs: n,
		Main:   Main,
		Vars:   conc.NewVarSpace(),
		Conc: func(rank int) conc.Config {
			mode := conc.Light
			if rank == 0 {
				mode = conc.Heavy
			}
			return conc.Config{Mode: mode, Reduction: true, Seed: 1,
				MaxTicks: 20_000_000, Params: params}
		},
		Inputs:  inputs,
		Timeout: 30 * time.Second,
	})
}

func TestFixedProgramRunsClean(t *testing.T) {
	res := launch(t, 4, DefaultInputs(), FixAll()) // nt=4 divides 4 ranks
	for _, rr := range res.Ranks {
		if rr.Status != mpi.StatusOK || rr.Exit != 0 {
			t.Fatalf("rank %d: %v exit=%d err=%v", rr.Rank, rr.Status, rr.Exit, rr.Err)
		}
	}
}

func TestLayoutRejectsIndivisibleNT(t *testing.T) {
	res := launch(t, 8, DefaultInputs(), FixAll()) // nt=4 does not divide 8
	fe, bad := res.FirstError()
	if !bad || fe.Exit != 1 {
		t.Fatalf("want layout rejection, got %+v", fe)
	}
}

func TestSanityRejectsBadInputs(t *testing.T) {
	for _, c := range []struct {
		name  string
		patch map[string]int64
	}{
		{"nx=0", map[string]int64{"nx": 0}},
		{"trajecs=0", map[string]int64{"trajecs": 0}},
		{"nroot=0", map[string]int64{"nroot": 0}},
		{"mass=0", map[string]int64{"mass": 0}},
		{"seed<0", map[string]int64{"seed": -5}},
	} {
		in := DefaultInputs()
		for k, v := range c.patch {
			in[k] = v
		}
		res := launch(t, 4, in, FixAll())
		fe, bad := res.FirstError()
		if !bad || fe.Exit != 1 {
			t.Fatalf("%s: want sanity exit 1, got %+v", c.name, fe)
		}
	}
}

func TestBug1RHMCSegfault(t *testing.T) {
	res := launch(t, 4, DefaultInputs(), UnfixAll())
	fe, bad := res.FirstError()
	if !bad || fe.Status != mpi.StatusCrash {
		t.Fatalf("bug 1 did not crash: %+v", fe)
	}
	if !strings.Contains(fe.Err.Error(), "out of range") {
		t.Fatalf("unexpected crash: %v", fe.Err)
	}
}

func TestBug2CongradSegfault(t *testing.T) {
	params := Fixes{RHMC: true, Ploop: true, DivZero: true}.Params() // only bug 2 live
	res := launch(t, 4, DefaultInputs(), params)
	fe, bad := res.FirstError()
	if !bad || fe.Status != mpi.StatusCrash {
		t.Fatalf("bug 2 did not crash: %+v", fe)
	}
}

func TestBug2NeedsMultipleRanks(t *testing.T) {
	params := Fixes{RHMC: true, Ploop: true, DivZero: true}.Params()
	in := DefaultInputs()
	in["nt"] = 2
	res := launch(t, 1, in, params) // single rank: no halo exchange, no crash
	if res.Failed() {
		fe, _ := res.FirstError()
		t.Fatalf("bug 2 fired on one rank: %+v", fe)
	}
}

func TestBug3PloopSegfault(t *testing.T) {
	params := Fixes{RHMC: true, Congrad: true, DivZero: true}.Params() // only bug 3 live
	res := launch(t, 4, DefaultInputs(), params) // nsrc=3 >= 2, measurement runs
	fe, bad := res.FirstError()
	if !bad || fe.Status != mpi.StatusCrash {
		t.Fatalf("bug 3 did not crash: %+v", fe)
	}
}

func TestBug3SilentWithSingleSource(t *testing.T) {
	params := Fixes{RHMC: true, Congrad: true, DivZero: true}.Params()
	in := DefaultInputs()
	in["nsrc"] = 1
	res := launch(t, 4, in, params)
	if res.Failed() {
		fe, _ := res.FirstError()
		t.Fatalf("bug 3 fired with nsrc=1: %+v", fe)
	}
}

// TestBug4DivisionByZeroProcessCounts reproduces the paper's floating-point
// exception: it manifests with 2 or 4 processes but not with 1 or 3.
func TestBug4DivisionByZeroProcessCounts(t *testing.T) {
	params := Fixes{RHMC: true, Congrad: true, Ploop: true}.Params() // only bug 4 live

	run := func(np int, nsrc, nt int64) mpi.RunResult {
		in := DefaultInputs()
		in["nsrc"] = nsrc
		in["nt"] = nt
		return launch(t, np, in, params)
	}
	// 2 procs with nsrc=1 (2*1 == 2) and 4 procs with nsrc=2 (2*2 == 4).
	for _, c := range []struct {
		np   int
		nsrc int64
		nt   int64
	}{{2, 1, 4}, {4, 2, 4}} {
		res := run(c.np, c.nsrc, c.nt)
		fe, bad := res.FirstError()
		if !bad || fe.Status != mpi.StatusCrash {
			t.Fatalf("np=%d nsrc=%d: bug 4 did not crash: %+v", c.np, c.nsrc, fe)
		}
		if !strings.Contains(fe.Err.Error(), "divide by zero") {
			t.Fatalf("np=%d: unexpected crash: %v", c.np, fe.Err)
		}
	}
	// 1 and 3 processes never divide by zero (2*nsrc >= 2 is even).
	for _, np := range []int{1, 3} {
		res := run(np, 1, int64(np*2))
		if fe, bad := res.FirstError(); bad && fe.Status == mpi.StatusCrash &&
			strings.Contains(fe.Err.Error(), "divide by zero") {
			t.Fatalf("np=%d: bug 4 fired where the paper says it cannot", np)
		}
	}
}

func TestVariousLatticeShapes(t *testing.T) {
	for _, c := range []struct {
		nx, ny, nz, nt int64
		np             int
	}{
		{1, 1, 1, 1, 1},
		{2, 1, 3, 2, 2},
		{5, 5, 5, 10, 5},
	} {
		in := DefaultInputs()
		in["nx"], in["ny"], in["nz"], in["nt"] = c.nx, c.ny, c.nz, c.nt
		res := launch(t, c.np, in, FixAll())
		if res.Failed() {
			fe, _ := res.FirstError()
			t.Fatalf("%+v failed: %+v", c, fe)
		}
	}
}

func TestProgramRegistration(t *testing.T) {
	prog, ok := target.Lookup("susy-hmc")
	if !ok {
		t.Fatal("susy-hmc not registered")
	}
	if prog.TotalBranches() < 50 {
		t.Fatalf("suspiciously few branches: %d", prog.TotalBranches())
	}
}

func TestRankVariablesMarked(t *testing.T) {
	res := launch(t, 4, DefaultInputs(), FixAll())
	kinds := map[conc.VarKind]int{}
	for _, o := range res.Ranks[0].Log.Obs {
		kinds[o.Kind]++
	}
	if kinds[conc.KindRankWorld] == 0 || kinds[conc.KindSizeWorld] == 0 {
		t.Fatalf("rank/size not marked: %+v", res.Ranks[0].Log.Obs)
	}
	if kinds[conc.KindInput] != 13 {
		t.Fatalf("marked inputs = %d, want 13", kinds[conc.KindInput])
	}
}
