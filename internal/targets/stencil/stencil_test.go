package stencil

import (
	"testing"
	"time"

	"repro/internal/conc"
	"repro/internal/mpi"
	"repro/internal/target"
)

// launch runs one job with the given campaign parameters (fix toggles and
// caps), the same bag a campaign carries in core.Config.Params.
func launch(t *testing.T, n int, inputs, params map[string]int64, timeout time.Duration) mpi.RunResult {
	t.Helper()
	if timeout == 0 {
		timeout = 20 * time.Second
	}
	return mpi.Launch(mpi.Spec{
		NProcs: n,
		Main:   Main,
		Vars:   conc.NewVarSpace(),
		Conc: func(rank int) conc.Config {
			mode := conc.Light
			if rank == 0 {
				mode = conc.Heavy
			}
			return conc.Config{Mode: mode, Reduction: true, Seed: 1,
				MaxTicks: 3_000_000, Params: params}
		},
		Inputs:  inputs,
		Timeout: timeout,
	})
}

func TestDefaultsRunClean(t *testing.T) {
	for _, np := range []int{1, 2, 4, 8} {
		res := launch(t, np, DefaultInputs(), FixAll(), 0)
		for _, rr := range res.Ranks {
			if rr.Status != mpi.StatusOK || rr.Exit != 0 {
				t.Fatalf("np=%d rank %d: %v exit=%d err=%v",
					np, rr.Rank, rr.Status, rr.Exit, rr.Err)
			}
		}
	}
}

func TestHeatDiffuses(t *testing.T) {
	// With a tight tolerance and generous iteration budget the solver must
	// exit through the convergence branch on the focus.
	in := DefaultInputs()
	in["tol"] = 2000
	in["maxiter"] = 200
	res := launch(t, 4, in, FixAll(), 0)
	if res.Failed() {
		t.Fatal("run failed")
	}
	conv := false
	for _, b := range res.Ranks[0].Log.Covered {
		if b.Site() == cConverged && b.Outcome() {
			conv = true
		}
	}
	if !conv {
		t.Fatal("never took the converged branch")
	}
}

func TestSanityRejects(t *testing.T) {
	for _, c := range []struct {
		name  string
		patch map[string]int64
	}{
		{"nx=2", map[string]int64{"nx": 2}},
		{"ny<np", map[string]int64{"ny": 3}},
		{"tol<0", map[string]int64{"tol": -1}},
		{"src>1000", map[string]int64{"src": 1500}},
		{"decomp=2", map[string]int64{"decomp": 2}},
	} {
		in := DefaultInputs()
		for k, v := range c.patch {
			in[k] = v
		}
		res := launch(t, 4, in, FixAll(), 0)
		fe, bad := res.FirstError()
		if !bad || fe.Exit != 1 {
			t.Fatalf("%s: want sanity exit 1, got %+v", c.name, fe)
		}
	}
}

func TestInfiniteLoopBugHangs(t *testing.T) {
	in := DefaultInputs()
	in["maxiter"] = 0 // run to convergence...
	in["tol"] = 0     // ...which never happens
	res := launch(t, 2, in, UnfixAll(), 5*time.Second)
	fe, bad := res.FirstError()
	if !bad || fe.Status != mpi.StatusHang {
		t.Fatalf("want hang, got %+v", fe)
	}
}

func TestInfiniteLoopFixRejectsConfig(t *testing.T) {
	in := DefaultInputs()
	in["maxiter"] = 0
	in["tol"] = 0
	res := launch(t, 2, in, FixAll(), 0)
	fe, bad := res.FirstError()
	if !bad || fe.Exit != 3 {
		t.Fatalf("fixed program must reject the config with exit 3, got %+v", fe)
	}
}

func TestRunToConvergenceWorksWhenTolerant(t *testing.T) {
	in := DefaultInputs()
	in["maxiter"] = 0 // unlimited, but tol > 0 converges
	in["tol"] = 5000
	res := launch(t, 2, in, FixAll(), 0)
	if res.Failed() {
		fe, _ := res.FirstError()
		t.Fatalf("run-to-convergence failed: %+v", fe)
	}
}

func TestGhostBugCrashesColumnDecomp(t *testing.T) {
	in := DefaultInputs()
	in["decomp"] = 1
	res := launch(t, 4, in, UnfixAll(), 0)
	fe, bad := res.FirstError()
	if !bad || fe.Status != mpi.StatusCrash {
		t.Fatalf("want crash, got %+v", fe)
	}
	// Single-rank runs never exchange ghosts: no crash.
	res = launch(t, 1, in, UnfixAll(), 0)
	if res.Failed() {
		t.Fatal("ghost bug fired on one rank")
	}
}

func TestRegistered(t *testing.T) {
	prog, ok := target.Lookup("stencil")
	if !ok {
		t.Fatal("not registered")
	}
	if prog.TotalBranches() < 30 {
		t.Fatalf("branches: %d", prog.TotalBranches())
	}
}
