// Package stencil is a 2-D heat-diffusion (Jacobi) solver, the classic SPMD
// skeleton the paper's introduction motivates: read inputs, sanity-check,
// distribute a grid across ranks, iterate with halo exchanges until
// convergence. It extends the evaluation beyond the paper's three targets
// with the bug class COMPI claims but never demonstrates there: an
// **infinite loop** — running with maxiter=0 ("until convergence") and
// tol=0 never terminates, which the engine reports as a hang via its
// watchdog. A second seeded bug (an off-by-one ghost-row allocation in the
// column-decomposition variant) crashes any multi-rank run that selects
// decomp=1.
//
// The halo exchange uses the nonblocking Isend/Irecv/Wait API.
package stencil

import (
	"math"

	"repro/internal/conc"
	"repro/internal/mpi"
	"repro/internal/target"
)

// DefaultGridCap is the default input cap on the grid dimensions.
// Campaigns override it via the ParamGridCap parameter.
const DefaultGridCap int64 = 64

// Campaign parameter keys (per-campaign state in core.Config.Params).
const (
	ParamGridCap    = "stencil.gridcap"
	ParamFixNoLimit = "stencil.fix.nolimit"
	ParamFixGhost   = "stencil.fix.ghost"
)

// Fixes toggles the developer fixes for the two seeded bugs.
type Fixes struct {
	NoLimit bool // guard the maxiter==0 && tol==0 infinite loop
	Ghost   bool // allocate the full ghost row in the column decomposition
}

// Params renders the fix set as campaign parameters; both keys are always
// present.
func (f Fixes) Params() map[string]int64 {
	out := map[string]int64{ParamFixNoLimit: 0, ParamFixGhost: 0}
	if f.NoLimit {
		out[ParamFixNoLimit] = 1
	}
	if f.Ghost {
		out[ParamFixGhost] = 1
	}
	return out
}

// FixAll returns the parameter bag applying both fixes.
func FixAll() map[string]int64 { return Fixes{NoLimit: true, Ghost: true}.Params() }

// UnfixAll returns the parameter bag leaving both bugs live.
func UnfixAll() map[string]int64 { return Fixes{}.Params() }

var b = target.NewBuilder("stencil", 600)

var (
	cNXMin     = b.Cond("input", "nx >= 3")
	cNYMin     = b.Cond("input", "ny >= 3")
	cRowsFit   = b.Cond("input", "ny >= nprocs")
	cMaxIter   = b.Cond("input", "maxiter >= 0")
	cTol       = b.Cond("input", "tol >= 0")
	cSrcLo     = b.Cond("input", "src >= 0")
	cSrcHi     = b.Cond("input", "src <= 1000")
	cBorderLo  = b.Cond("input", "border >= 0")
	cBorderHi  = b.Cond("input", "border <= 1000")
	cDecompLo  = b.Cond("input", "decomp >= 0")
	cDecompHi  = b.Cond("input", "decomp <= 1")
	cCkpt      = b.Cond("input", "checkpoint >= 0")
	cIsRoot    = b.Cond("setup", "rank == 0")
	cHasUp     = b.Cond("setup", "up neighbor exists")
	cHasDown   = b.Cond("setup", "down neighbor exists")
	cColMode   = b.Cond("solve", "column decomposition")
	cNoLimit   = b.Cond("solve", "maxiter == 0 (run to convergence)")
	cIterLoop  = b.Cond("solve", "iter < maxiter")
	cConverged = b.Cond("solve", "delta < tol")
	cHotspot   = b.Cond("solve", "delta > 100")
	cDoCkpt    = b.Cond("solve", "checkpoint due")
)

func init() {
	b.InCap("nx", DefaultGridCap)
	b.InCap("ny", DefaultGridCap)
	b.InCap("maxiter", 200)
	b.InCap("tol", 100000)
	b.In("src")
	b.In("border")
	b.In("decomp")
	b.In("checkpoint")
	b.Call("main", "input")
	b.Call("main", "setup")
	b.Call("main", "solve")
	target.Register(b.Build(Main))
}

// DefaultInputs converges in a handful of iterations on 4 ranks.
func DefaultInputs() map[string]int64 {
	return map[string]int64{
		"nx": 16, "ny": 16, "maxiter": 50, "tol": 500,
		"src": 800, "border": 100, "decomp": 0, "checkpoint": 10, "seed": 3,
	}
}

type params struct {
	nx, ny, maxiter int
	tol             float64
	src, border     float64
	decomp          int
	checkpoint      int
}

// Main is the program under test.
func Main(p *mpi.Proc) int {
	p.Enter("main")
	w := p.World()

	size := p.CommSize(w, "stencil:size")
	rank := p.CommRank(w, "stencil:rank")

	cfg, ok := input(p, size)
	if !ok {
		return 1
	}
	grid := setup(p, cfg, rank)
	code := solve(p, cfg, grid)
	p.Barrier(w)
	return code
}

func input(p *mpi.Proc, size conc.Value) (params, bool) {
	p.Enter("input")
	var cfg params

	grid := p.Param(ParamGridCap, DefaultGridCap)
	nx := p.InCap("nx", grid)
	if !p.If(cNXMin, conc.GE(nx, conc.K(3))) {
		return cfg, false
	}
	ny := p.InCap("ny", grid)
	if !p.If(cNYMin, conc.GE(ny, conc.K(3))) {
		return cfg, false
	}
	// Row decomposition needs at least one interior row per rank.
	if !p.If(cRowsFit, conc.GE(ny, size)) {
		return cfg, false
	}
	maxiter := p.InCap("maxiter", 200)
	if !p.If(cMaxIter, conc.GE(maxiter, conc.K(0))) {
		return cfg, false
	}
	tol := p.InCap("tol", 100000)
	if !p.If(cTol, conc.GE(tol, conc.K(0))) {
		return cfg, false
	}
	src := p.In("src")
	if !p.If(cSrcLo, conc.GE(src, conc.K(0))) {
		return cfg, false
	}
	if !p.If(cSrcHi, conc.LE(src, conc.K(1000))) {
		return cfg, false
	}
	border := p.In("border")
	if !p.If(cBorderLo, conc.GE(border, conc.K(0))) {
		return cfg, false
	}
	if !p.If(cBorderHi, conc.LE(border, conc.K(1000))) {
		return cfg, false
	}
	decomp := p.In("decomp")
	if !p.If(cDecompLo, conc.GE(decomp, conc.K(0))) {
		return cfg, false
	}
	if !p.If(cDecompHi, conc.LE(decomp, conc.K(1))) {
		return cfg, false
	}
	ckpt := p.In("checkpoint")
	if !p.If(cCkpt, conc.GE(ckpt, conc.K(0))) {
		return cfg, false
	}
	cfg = params{
		nx: int(nx.C), ny: int(ny.C), maxiter: int(maxiter.C),
		tol: float64(tol.C) / 1000, src: float64(src.C), border: float64(border.C),
		decomp: int(decomp.C), checkpoint: int(ckpt.C),
	}
	return cfg, true
}

// field is one rank's slab: rows interior rows of nx cells, plus two ghost
// rows (index 0 and rows+1).
type field struct {
	rows, nx int
	up, down int // neighbor local ranks, -1 at the physical boundary
	cur, nxt []float64
}

func (f *field) at(g []float64, r, c int) float64 { return g[r*f.nx+c] }

func setup(p *mpi.Proc, cfg params, rank conc.Value) *field {
	p.Enter("setup")
	np, me := p.NProcs(), p.Rank()
	rows := cfg.ny / np
	if me < cfg.ny%np {
		rows++
	}
	f := &field{rows: rows, nx: cfg.nx, up: me - 1, down: me + 1}
	if !p.If(cHasUp, conc.True(me > 0)) {
		f.up = -1
	}
	if !p.If(cHasDown, conc.True(me < np-1)) {
		f.down = -1
	}
	n := (rows + 2) * cfg.nx
	f.cur = make([]float64, n)
	f.nxt = make([]float64, n)
	for i := range f.cur {
		f.cur[i] = cfg.border
	}
	if p.If(cIsRoot, conc.EQ(rank, conc.K(0))) {
		// The heat source sits in rank 0's first interior row.
		f.cur[1*cfg.nx+cfg.nx/2] = cfg.src
	}
	return f
}

func solve(p *mpi.Proc, cfg params, f *field) int {
	p.Enter("solve")
	w := p.World()

	if p.If(cColMode, conc.True(cfg.decomp == 1 && p.NProcs() > 1)) {
		// The column-decomposition variant exchanges ghost *columns*; the
		// seeded bug under-allocates the exchange buffer by one element.
		n := f.rows
		if !p.ParamBool(ParamFixGhost, false) {
			n = f.rows - 1
		}
		ghost := make([]float64, n)
		for r := 0; r < f.rows; r++ {
			ghost[r] = f.at(f.cur, r+1, 0) // bug: panics at r = rows-1 when unfixed
		}
		_ = ghost
	}

	noLimit := p.If(cNoLimit, conc.EQ(p.In("maxiter"), conc.K(0)))
	if noLimit && p.ParamBool(ParamFixNoLimit, false) && cfg.tol == 0 {
		return 3 // fixed: reject the non-terminating configuration
	}

	maxiterSym := p.In("maxiter")
	tolSym := p.In("tol")
	ckptSym := p.In("checkpoint")
	iter := conc.K(0)
	for {
		if !noLimit && !p.If(cIterLoop, conc.LT(iter, maxiterSym)) {
			break
		}
		delta := jacobiStep(p, cfg, f)
		g := p.Allreduce(w, mpi.OpMax, []float64{delta})
		if p.If(cHotspot, conc.True(g[0] > 100)) {
			p.Tick() // adaptive damping path for steep gradients
		}
		if cfg.checkpoint > 0 {
			if p.If(cDoCkpt, conc.EQ(conc.Mod(iter, ckptSym), conc.K(0))) {
				p.Barrier(w) // checkpoint writers synchronize
			}
		}
		// delta < tol, phrased over the symbolic (milli-degree) tolerance so
		// the solver can steer the convergence threshold.
		if p.If(cConverged, conc.GT(tolSym, conc.K(int64(g[0]*1000)))) {
			return 0
		}
		iter = conc.Add(iter, conc.K(1))
	}
	return 0
}

// jacobiStep exchanges halos with the nonblocking API and relaxes the slab,
// returning the local maximum update delta.
func jacobiStep(p *mpi.Proc, cfg params, f *field) float64 {
	w := p.World()
	var reqs []*mpi.Request
	var fromUp, fromDown *mpi.Request
	if f.up >= 0 {
		reqs = append(reqs, p.Isend(w, f.up, 1, f.cur[f.nx:2*f.nx]))
		fromUp = p.Irecv(w, f.up, 2)
		reqs = append(reqs, fromUp)
	}
	if f.down >= 0 {
		reqs = append(reqs, p.Isend(w, f.down, 2, f.cur[f.rows*f.nx:(f.rows+1)*f.nx]))
		fromDown = p.Irecv(w, f.down, 1)
		reqs = append(reqs, fromDown)
	}
	p.Waitall(reqs)
	if fromUp != nil {
		copy(f.cur[:f.nx], fromUp.Data())
	}
	if fromDown != nil {
		copy(f.cur[(f.rows+1)*f.nx:], fromDown.Data())
	}

	delta := 0.0
	for r := 1; r <= f.rows; r++ {
		for c := 0; c < f.nx; c++ {
			if c == 0 || c == f.nx-1 {
				f.nxt[r*f.nx+c] = cfg.border
				continue
			}
			v := 0.25 * (f.at(f.cur, r-1, c) + f.at(f.cur, r+1, c) +
				f.at(f.cur, r, c-1) + f.at(f.cur, r, c+1))
			d := math.Abs(v - f.at(f.cur, r, c))
			if d > delta {
				delta = d
			}
			f.nxt[r*f.nx+c] = v
		}
	}
	// Carry the ghost/boundary rows into the next buffer: the halo exchange
	// refreshes them each step, and the physical boundaries are fixed.
	copy(f.nxt[:f.nx], f.cur[:f.nx])
	copy(f.nxt[(f.rows+1)*f.nx:], f.cur[(f.rows+1)*f.nx:])
	p.Exprs(6 * f.rows * f.nx)
	f.cur, f.nxt = f.nxt, f.cur
	return delta
}
