// Package mpi is an in-process MPI runtime: one goroutine per rank,
// point-to-point messaging with tag and source matching, the MPI-1
// collectives the target applications need, and communicator splitting.
//
// It stands in for mpiexec + OpenMPI in the paper's setup. The property that
// matters to COMPI is MPMD launching: the focus rank runs a heavily
// instrumented "binary" (conc.Heavy) while every other rank runs the lightly
// instrumented one (conc.Light), exactly like
//
//	mpiexec -n i ./ex2 : -n 1 ./ex1 : -n s-i-1 ./ex2
//
// Rank and size queries route through the concolic runtime's automatic
// marking (§III-A): CommRank on the world communicator marks an rw variable,
// CommSize marks sw, and CommRank on a split communicator marks rc and
// registers the local→global rank mapping row (§III-D).
package mpi

import (
	"fmt"
	"sync"

	"repro/internal/conc"
)

// AnySource matches any sender in Recv, like MPI_ANY_SOURCE.
const AnySource = -1

// internalTag is used by collective operations; user tags must be >= 0.
const internalTag = -2

// Runtime is one MPI job: the mailboxes, communicator table, and abort state
// shared by all ranks.
type Runtime struct {
	nprocs int
	mbox   []*mailbox
	det    *detector
	done   chan struct{}
	once   sync.Once

	commMu   sync.Mutex
	commIDs  map[commKey]int
	nextComm int
}

type commKey struct {
	parent int
	seq    int
	color  int
}

// newRuntime creates the shared state for an nprocs-rank job. sched turns on
// schedule-space semantics (quiescent wildcard matching); order carries the
// per-rank wildcard match directives to replay.
func newRuntime(nprocs int, sched bool, order [][]int) *Runtime {
	rt := &Runtime{
		nprocs:   nprocs,
		mbox:     make([]*mailbox, nprocs),
		done:     make(chan struct{}),
		commIDs:  map[commKey]int{},
		nextComm: 1, // 0 is the world communicator
	}
	for i := range rt.mbox {
		rt.mbox[i] = newMailbox()
	}
	rt.det = newDetector(rt, sched, order)
	return rt
}

// cancel unblocks every pending operation; blocked ranks observe ErrStopped.
func (rt *Runtime) cancel() { rt.once.Do(func() { close(rt.done) }) }

// commIDFor deterministically assigns the same communicator ID to every
// member of a split group, keyed by the parent communicator, the per-parent
// split sequence number, and the color.
func (rt *Runtime) commIDFor(parent, seq, color int) int {
	rt.commMu.Lock()
	defer rt.commMu.Unlock()
	k := commKey{parent, seq, color}
	if id, ok := rt.commIDs[k]; ok {
		return id
	}
	id := rt.nextComm
	rt.nextComm++
	rt.commIDs[k] = id
	return id
}

// ErrStopped is the panic value raised in ranks blocked on communication
// when the job is cancelled (peer crash or watchdog timeout).
type ErrStopped struct{ Rank int }

func (e *ErrStopped) Error() string {
	return fmt.Sprintf("rank %d: job stopped while blocked in MPI", e.Rank)
}

// ErrAbort is the panic value raised by Abort, modelling MPI_Abort.
type ErrAbort struct {
	Rank int
	Code int
}

func (e *ErrAbort) Error() string {
	return fmt.Sprintf("rank %d: MPI_Abort with code %d", e.Rank, e.Code)
}

// Comm is a communicator: an ordered group of global ranks. Local rank i maps
// to global rank Ranks[i].
type Comm struct {
	id       int
	ranks    []int // global ranks by local rank
	local    int   // this process's local rank
	world    bool
	concIdx  int // index of this comm's row in the focus mapping table (-1 off-focus)
	splitSeq int // per-comm split counter (deterministic across members)
}

// Size returns the concrete number of ranks in the communicator.
func (c *Comm) Size() int { return len(c.ranks) }

// LocalRank returns the concrete local rank (not symbolically marked).
func (c *Comm) LocalRank() int { return c.local }

// GlobalOf translates a local rank to the global rank.
func (c *Comm) GlobalOf(local int) int { return c.ranks[local] }

// Proc is one MPI process: its global rank, world communicator, and the
// concolic runtime it is instrumented with.
type Proc struct {
	rt    *Runtime
	rank  int
	world *Comm
	CC    *conc.Proc
}

// Rank returns the concrete global rank.
func (p *Proc) Rank() int { return p.rank }

// NProcs returns the concrete job size.
func (p *Proc) NProcs() int { return p.rt.nprocs }

// World returns the MPI_COMM_WORLD equivalent.
func (p *Proc) World() *Comm { return p.world }

// CommRank is MPI_Comm_rank: on the world communicator the result is marked
// as an rw variable, on any other as rc (automatic marking, §III-A). site
// names the static callsite.
func (p *Proc) CommRank(c *Comm, site string) conc.Value {
	if c.world {
		return p.CC.MarkRankWorld(site, c.local)
	}
	return p.CC.MarkRankLocal(site, c.local, c.concIdx, c.Size())
}

// CommSize is MPI_Comm_size: marked as sw on the world communicator. COMPI
// does not mark sizes of other communicators, so those return concretely.
func (p *Proc) CommSize(c *Comm, site string) conc.Value {
	if c.world {
		return p.CC.MarkSizeWorld(site, c.Size())
	}
	p.CC.Tick()
	return conc.K(int64(c.Size()))
}

// Abort is MPI_Abort: it terminates the whole job.
func (p *Proc) Abort(code int) {
	p.rt.cancel()
	panic(&ErrAbort{Rank: p.rank, Code: code})
}

// Convenience delegates to the concolic runtime, so target code reads close
// to instrumented C.

// In reads a marked input (developer-marked symbolic variable).
func (p *Proc) In(name string) conc.Value { return p.CC.InputInt(name) }

// InCap reads a marked input with an input cap (COMPI_int_with_limit).
func (p *Proc) InCap(name string, cap int64) conc.Value { return p.CC.InputIntCap(name, cap) }

// Param reads a campaign parameter (per-campaign cap or fix toggle).
func (p *Proc) Param(name string, def int64) int64 { return p.CC.Param(name, def) }

// ParamBool reads a boolean campaign parameter.
func (p *Proc) ParamBool(name string, def bool) bool { return p.CC.ParamBool(name, def) }

// If records the branch at site and returns the concrete outcome.
func (p *Proc) If(site conc.CondID, c conc.Cond) bool { return p.CC.Branch(site, c) }

// Enter records that a function was reached (reachable-branch estimation).
func (p *Proc) Enter(fn string) { p.CC.EnterFunc(fn) }

// Assert models C assert().
func (p *Proc) Assert(ok bool, format string, args ...any) { p.CC.Assert(ok, format, args...) }

// Tick advances the hang watchdog from instrumentation-free loops.
func (p *Proc) Tick() { p.CC.Tick() }

// Exprs models n instrumented expression evaluations (paid only by Heavy
// processes; see conc.Proc.Exprs).
func (p *Proc) Exprs(n int) { p.CC.Exprs(n) }
