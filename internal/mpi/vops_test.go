package mpi

import (
	"reflect"
	"testing"
)

// rankData gives local rank l a chunk of l+1 values, all equal to l.
func rankData(l int) []float64 {
	out := make([]float64, l+1)
	for i := range out {
		out[i] = float64(l)
	}
	return out
}

func vcounts(n int) []int {
	c := make([]int, n)
	for i := range c {
		c[i] = i + 1
	}
	return c
}

func TestGatherv(t *testing.T) {
	const n = 4
	res := run(t, n, func(p *Proc) int {
		w := p.World()
		got := p.Gatherv(w, 2, rankData(p.Rank()), vcounts(n))
		if p.Rank() == 2 {
			want := []float64{0, 1, 1, 2, 2, 2, 3, 3, 3, 3}
			if !reflect.DeepEqual(got, want) {
				return 1
			}
		} else if got != nil {
			return 2
		}
		return 0
	})
	requireAllOK(t, res)
}

func TestAllgatherv(t *testing.T) {
	const n = 3
	res := run(t, n, func(p *Proc) int {
		w := p.World()
		got := p.Allgatherv(w, rankData(p.Rank()), vcounts(n))
		want := []float64{0, 1, 1, 2, 2, 2}
		if !reflect.DeepEqual(got, want) {
			return 1
		}
		return 0
	})
	requireAllOK(t, res)
}

func TestScatterv(t *testing.T) {
	const n = 4
	res := run(t, n, func(p *Proc) int {
		w := p.World()
		var root []float64
		if p.Rank() == 1 {
			root = []float64{0, 1, 1, 2, 2, 2, 3, 3, 3, 3}
		}
		got := p.Scatterv(w, 1, root, vcounts(n))
		if len(got) != p.Rank()+1 {
			return 1
		}
		for _, v := range got {
			if v != float64(p.Rank()) {
				return 2
			}
		}
		return 0
	})
	requireAllOK(t, res)
}

func TestAlltoallv(t *testing.T) {
	const n = 3
	res := run(t, n, func(p *Proc) int {
		w := p.World()
		me := p.Rank()
		// Rank r sends r+1 copies of 10r+l to each rank l... keep it simple:
		// uniform per-destination count of me+1, so recvCounts[l] = l+1.
		send := make([]int, n)
		recv := make([]int, n)
		for l := 0; l < n; l++ {
			send[l] = me + 1
			recv[l] = l + 1
		}
		data := make([]float64, (me+1)*n)
		for l := 0; l < n; l++ {
			for k := 0; k < me+1; k++ {
				data[l*(me+1)+k] = float64(10*me + l)
			}
		}
		got := p.Alltoallv(w, data, send, recv)
		// Chunk from rank l has l+1 copies of 10l+me.
		off := 0
		for l := 0; l < n; l++ {
			for k := 0; k < l+1; k++ {
				if got[off] != float64(10*l+me) {
					return 1
				}
				off++
			}
		}
		return 0
	})
	requireAllOK(t, res)
}

func TestVCountsValidation(t *testing.T) {
	res := run(t, 2, func(p *Proc) int {
		p.Gatherv(p.World(), 0, nil, []int{1}) // wrong length: must panic
		return 0
	})
	if !res.Failed() {
		t.Fatal("validation panic not surfaced")
	}
	if res.Ranks[0].Status != StatusCrash {
		t.Fatalf("rank 0: %v", res.Ranks[0].Status)
	}
}
