package mpi

import (
	"math/rand"
	"reflect"
	"testing"
	"time"

	"repro/internal/conc"
)

// launchSched runs main on n ranks with schedule-space semantics on.
func launchSched(t *testing.T, n int, order [][]int, main func(*Proc) int) RunResult {
	t.Helper()
	return Launch(Spec{
		NProcs: n,
		Main:   main,
		Vars:   conc.NewVarSpace(),
		Conc: func(rank int) conc.Config {
			mode := conc.Light
			if rank == 0 {
				mode = conc.Heavy
			}
			return conc.Config{Mode: mode, Seed: 1, MaxTicks: 1 << 20}
		},
		Timeout:    10 * time.Second,
		Schedules:  true,
		MatchOrder: order,
	})
}

// fanIn is the canonical racy wildcard receiver: every non-zero rank sends
// its rank number to rank 0, which drains them with wildcard receives and
// returns the sources in match order via the data channel.
func fanIn(order *[]int) func(*Proc) int {
	return func(p *Proc) int {
		if p.Rank() != 0 {
			p.Send(p.World(), 0, 7, []float64{float64(p.Rank())})
			return 0
		}
		for i := 0; i < p.NProcs()-1; i++ {
			data, st := p.Recv(p.World(), AnySource, 7)
			if int(data[0]) != st.Source {
				return 1
			}
			*order = append(*order, st.Source)
		}
		return 0
	}
}

func TestQuiescentWildcardDefaultOrder(t *testing.T) {
	// Schedule mode with no directives: the eligible set at quiescence is
	// complete ({1,2,3}) and the default choice is the lowest source —
	// deterministic regardless of arrival interleaving.
	var got []int
	res := launchSched(t, 4, nil, fanIn(&got))
	if res.Failed() {
		t.Fatalf("run failed: %+v", res.Ranks)
	}
	if want := []int{1, 2, 3}; !reflect.DeepEqual(got, want) {
		t.Fatalf("match order %v, want %v", got, want)
	}
	// The first two matches had >1 candidates; the drained third did not.
	m := res.Ranks[0].Log.Matches
	if len(m) != 2 {
		t.Fatalf("choice points: %d (%+v), want 2", len(m), m)
	}
	if !reflect.DeepEqual(m[0].Srcs, []int32{1, 2, 3}) || m[0].Choice != 0 {
		t.Fatalf("first choice point %+v, want srcs [1 2 3] choice 0", m[0])
	}
	if !reflect.DeepEqual(m[1].Srcs, []int32{2, 3}) || m[1].Choice != 0 {
		t.Fatalf("second choice point %+v, want srcs [2 3] choice 0", m[1])
	}
}

func TestMatchOrderDirectsChoices(t *testing.T) {
	// Rank 0's directives pick the last eligible index, then index 1: the
	// matches must come out 3, then (of {1,2}) 2, then the drained 1.
	var got []int
	res := launchSched(t, 4, [][]int{{2, 1}}, fanIn(&got))
	if res.Failed() {
		t.Fatalf("run failed: %+v", res.Ranks)
	}
	if want := []int{3, 2, 1}; !reflect.DeepEqual(got, want) {
		t.Fatalf("match order %v, want %v", got, want)
	}
	m := res.Ranks[0].Log.Matches
	if len(m) != 2 || m[0].Choice != 2 || m[1].Choice != 1 {
		t.Fatalf("recorded choices %+v, want choices 2 then 1", m)
	}
}

func TestMatchOrderClampsOutOfRange(t *testing.T) {
	// A directive beyond the eligible set clamps to the last index rather
	// than wedging or panicking.
	var got []int
	res := launchSched(t, 3, [][]int{{99}}, fanIn(&got))
	if res.Failed() {
		t.Fatalf("run failed: %+v", res.Ranks)
	}
	if want := []int{2, 1}; !reflect.DeepEqual(got, want) {
		t.Fatalf("match order %v, want %v", got, want)
	}
}

func TestSchedulesOffKeepsEagerMatching(t *testing.T) {
	// With schedules off nothing is recorded and wildcard matching stays
	// the historical eager first-queued-match (here causally forced).
	res := run(t, 2, func(p *Proc) int {
		if p.Rank() == 1 {
			p.Send(p.World(), 0, 7, []float64{1})
			return 0
		}
		_, st := p.Recv(p.World(), AnySource, 7)
		if st.Source != 1 {
			return 1
		}
		return 0
	})
	if res.Failed() {
		t.Fatalf("run failed: %+v", res.Ranks)
	}
	for _, rr := range res.Ranks {
		if len(rr.Log.Matches) != 0 {
			t.Fatalf("rank %d recorded %d matches with schedules off", rr.Rank, len(rr.Log.Matches))
		}
	}
}

func TestScheduledDeadlockCarriesCycle(t *testing.T) {
	// Directing the wildcard to match rank 2 first sends this protocol into
	// a circular wait; the detector must name the cycle.
	main := func(p *Proc) int {
		w := p.World()
		switch p.Rank() {
		case 0:
			_, st := p.Recv(w, AnySource, 1)
			// Protocol bug: assumes the first ready came from rank 1.
			_ = st
			p.Recv(w, 2, 1)
			p.Send(w, 1, 2, nil)
			p.Send(w, 2, 2, nil)
		case 1:
			p.Send(w, 0, 1, nil)
			p.Send(w, 2, 3, nil)
			p.Recv(w, 0, 2)
		case 2:
			p.Recv(w, 1, 3)
			p.Send(w, 0, 1, nil)
			p.Recv(w, 0, 2)
		}
		return 0
	}
	// Default order: completes.
	if res := launchSched(t, 3, nil, main); res.Failed() {
		t.Fatalf("default order must complete: %+v", res.Ranks)
	}
	// Directed order: deadlock with the 0<->2 cycle.
	res := launchSched(t, 3, [][]int{{1}}, main)
	var dl *ErrDeadlock
	for _, rr := range res.Ranks {
		if rr.Status != StatusDeadlock {
			t.Fatalf("rank %d: %v (want deadlock)", rr.Rank, rr.Status)
		}
		if e, ok := rr.Err.(*ErrDeadlock); ok && dl == nil {
			dl = e
		}
	}
	if dl == nil || dl.Desc != "wait-for cycle 0->2->0" {
		t.Fatalf("deadlock desc: %+v, want wait-for cycle 0->2->0", dl)
	}
}

// FuzzMailboxMatch pins the matcher invariants the schedule machinery leans
// on: deterministic-src matching is FIFO per source and independent of how
// other sources' messages interleave; a wildcard eligible set is sorted,
// duplicate-free, and every index in it is takeable; and take never loses or
// duplicates a message.
func FuzzMailboxMatch(f *testing.F) {
	f.Add(int64(1), 8)
	f.Add(int64(42), 32)
	f.Add(int64(7), 1)
	f.Fuzz(func(t *testing.T, seed int64, n int) {
		if n < 0 || n > 256 {
			return
		}
		rng := rand.New(rand.NewSource(seed))
		mb := newMailbox()
		pending := map[probeKey][]float64{} // per-(src,tag,comm) FIFO of payloads
		var keys []probeKey
		for i := 0; i < n; i++ {
			k := probeKey{src: rng.Intn(4), tag: rng.Intn(3), comm: rng.Intn(2)}
			mb.put(message{src: k.src, tag: k.tag, comm: k.comm, data: []float64{float64(i)}})
			pending[k] = append(pending[k], float64(i))
			keys = append(keys, k)
		}
		for len(keys) > 0 {
			switch rng.Intn(3) {
			case 0: // deterministic-src probe
				k := keys[rng.Intn(len(keys))]
				if !mb.hasMatch(k.src, k.tag, k.comm) {
					t.Fatalf("hasMatch(%+v) = false with %d pending", k, len(pending[k]))
				}
				msg, ok := mb.take(k.src, k.tag, k.comm)
				if !ok {
					t.Fatalf("take(%+v) failed with %d pending", k, len(pending[k]))
				}
				if msg.data[0] != pending[k][0] {
					t.Fatalf("take(%+v) = %v, want FIFO head %v", k, msg.data[0], pending[k][0])
				}
				consume(t, pending, &keys, k)
			case 1: // wildcard eligible set + directed take
				k := keys[rng.Intn(len(keys))]
				srcs := mb.candidateSources(k.tag, k.comm)
				if len(srcs) == 0 {
					t.Fatalf("candidateSources(%d,%d) empty with pending messages", k.tag, k.comm)
				}
				for i := range srcs {
					if i > 0 && srcs[i] <= srcs[i-1] {
						t.Fatalf("eligible set %v not sorted/distinct", srcs)
					}
				}
				choice := rng.Intn(len(srcs))
				ck := probeKey{src: srcs[choice], tag: k.tag, comm: k.comm}
				msg, ok := mb.take(ck.src, ck.tag, ck.comm)
				if !ok {
					t.Fatalf("eligible index %d of %v not takeable", choice, srcs)
				}
				if msg.data[0] != pending[ck][0] {
					t.Fatalf("wildcard take = %v, want FIFO head %v", msg.data[0], pending[ck][0])
				}
				consume(t, pending, &keys, ck)
			case 2: // probe for something that may not exist
				k := probeKey{src: rng.Intn(5), tag: rng.Intn(4), comm: rng.Intn(3)}
				want := len(pending[k]) > 0
				if got := mb.hasMatch(k.src, k.tag, k.comm); got != want {
					t.Fatalf("hasMatch(%+v) = %v, want %v", k, got, want)
				}
			}
		}
		if mb.hasMatch(AnySource, 0, 0) || mb.hasMatch(AnySource, 1, 0) ||
			mb.hasMatch(AnySource, 2, 0) || mb.hasMatch(AnySource, 0, 1) {
			t.Fatal("mailbox not empty after draining every tracked message")
		}
	})
}

// consume pops the model FIFO head for k and drops k from keys once.
type probeKey struct{ src, tag, comm int }

func consume(t *testing.T, pending map[probeKey][]float64, keys *[]probeKey, k probeKey) {
	t.Helper()
	q := pending[k]
	if len(q) == 0 {
		t.Fatalf("model desync: take succeeded for %+v with empty model queue", k)
	}
	pending[k] = q[1:]
	if len(pending[k]) == 0 {
		delete(pending, k)
	}
	ks := *keys
	for i := range ks {
		if ks[i] == k {
			ks[i] = ks[len(ks)-1]
			*keys = ks[:len(ks)-1]
			return
		}
	}
	t.Fatalf("model desync: key %+v not tracked", k)
}
