package mpi

import (
	"fmt"
	"strings"
	"sync"
)

// ErrDeadlock is the panic value raised in ranks that are permanently stuck
// in a wait-for cycle the moment the detector proves no rank can ever make
// progress. Desc carries the canonical cycle description, so every rank in
// the same deadlock produces the same dedup key modulo its own rank prefix.
type ErrDeadlock struct {
	Rank  int
	Cycle []int // global ranks forming the wait-for cycle (or stuck chain)
	Desc  string
}

func (e *ErrDeadlock) Error() string {
	return fmt.Sprintf("rank %d: deadlock: %s", e.Rank, e.Desc)
}

// waitState is one rank's position in the wait-for graph.
type waitState uint8

const (
	waitRunning waitState = iota
	waitBlocked
	waitDone
)

// rankWait is one rank's current receive, while blocked.
type rankWait struct {
	state    waitState
	wild     bool
	srcLocal int // awaited local source rank (when !wild)
	tag      int
	comm     int
	awaited  []int // global ranks whose send could unblock this receive
	granted  bool  // quiescence match grant issued (schedule mode, wildcard)
}

// detector maintains the wait-for graph over blocked ranks and, in schedule
// mode, serializes wildcard matching: a wildcard receive only matches when
// every other live rank is blocked or finished (quiescence), which makes the
// eligible set complete and deterministic — the lazy-matching discipline of
// MPISE/MPI-SV. The same bookkeeping proves deadlocks: the moment every live
// rank is blocked and no queued message can satisfy any of them, the job is
// permanently stuck, because sends are buffered and never block.
type detector struct {
	mu     sync.Mutex
	rt     *Runtime
	sched  bool
	order  [][]int // per-global-rank wildcard match directives
	cursor []int   // next directive index per rank
	waits  []rankWait
	live   int

	unclean bool // a rank exited abnormally: the job is failing anyway
	fired   bool
	stuck   []bool // ranks blocked at fire time
	cycle   []int
	desc    string

	seq int // global choice-point sequence, ordering grants across ranks
}

func newDetector(rt *Runtime, sched bool, order [][]int) *detector {
	return &detector{
		rt:     rt,
		sched:  sched,
		order:  order,
		cursor: make([]int, rt.nprocs),
		waits:  make([]rankWait, rt.nprocs),
		live:   rt.nprocs,
	}
}

// block registers rank as blocked on a receive and re-evaluates the graph.
// awaited must be sorted ascending for canonical cycle extraction.
func (d *detector) block(rank int, wild bool, srcLocal, tag, comm int, awaited []int) {
	d.mu.Lock()
	w := &d.waits[rank]
	w.state = waitBlocked
	w.wild = wild
	w.srcLocal = srcLocal
	w.tag = tag
	w.comm = comm
	w.awaited = awaited
	d.check()
	d.mu.Unlock()
}

// unblock marks rank as running again. An un-consumed grant survives: the
// grantee clears it when it actually matches.
func (d *detector) unblock(rank int) {
	d.mu.Lock()
	d.waits[rank].state = waitRunning
	d.mu.Unlock()
}

// finish retires rank from the graph. clean is false when the rank panicked
// or returned a non-zero exit: a failing job cancels itself, so the detector
// stands down rather than misreport collateral blocking as a deadlock.
func (d *detector) finish(rank int, clean bool) {
	d.mu.Lock()
	d.waits[rank].state = waitDone
	d.live--
	if !clean {
		d.unclean = true
	}
	d.check()
	d.mu.Unlock()
}

// deadlockErr returns the rank's share of a detected deadlock, or nil.
func (d *detector) deadlockErr(rank int) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if !d.fired || !d.stuck[rank] {
		return nil
	}
	return &ErrDeadlock{Rank: rank, Cycle: d.cycle, Desc: d.desc}
}

// check runs with d.mu held after every block/finish transition. When all
// live ranks are blocked it decides: wake (a satisfiable specific match),
// grant (schedule mode: lowest-rank wildcard waiter with candidates), or
// fire (provable deadlock).
func (d *detector) check() {
	if d.fired || d.unclean || d.live == 0 {
		return
	}
	blocked := 0
	for i := range d.waits {
		if d.waits[i].state == waitBlocked {
			blocked++
		}
	}
	if blocked != d.live {
		return
	}
	grant := -1
	for r := range d.waits {
		w := &d.waits[r]
		if w.state != waitBlocked {
			continue
		}
		if w.granted {
			return // an outstanding grant will wake r
		}
		if w.wild && d.sched {
			if grant < 0 && d.rt.mbox[r].hasMatch(AnySource, w.tag, w.comm) {
				grant = r
			}
			continue
		}
		src := w.srcLocal
		if w.wild {
			src = AnySource
		}
		if d.rt.mbox[r].hasMatch(src, w.tag, w.comm) {
			return // r holds a pending notify token and will match
		}
	}
	if grant >= 0 {
		d.waits[grant].granted = true
		d.rt.mbox[grant].wake()
		return
	}
	d.fire()
}

// fire records the deadlock (with d.mu held) and cancels the job; blocked
// ranks unwind through ErrDeadlock instead of burning the watchdog budget.
func (d *detector) fire() {
	d.fired = true
	d.stuck = make([]bool, len(d.waits))
	for r := range d.waits {
		d.stuck[r] = d.waits[r].state == waitBlocked
	}
	d.cycle, d.desc = d.buildCycle()
	d.rt.cancel()
}

// buildCycle walks the wait-for graph from the lowest blocked rank, always
// following the smallest blocked awaited rank, until it revisits a node (a
// cycle) or reaches a rank awaiting only exited peers (a stuck chain). The
// walk is deterministic, so the description is a stable dedup key.
func (d *detector) buildCycle() ([]int, string) {
	start := -1
	for r := range d.waits {
		if d.waits[r].state == waitBlocked {
			start = r
			break
		}
	}
	if start < 0 {
		return nil, "no blocked ranks"
	}
	pos := map[int]int{}
	var path []int
	cur := start
	for {
		if i, ok := pos[cur]; ok {
			cyc := append([]int(nil), path[i:]...)
			return cyc, cycleDesc(cyc)
		}
		pos[cur] = len(path)
		path = append(path, cur)
		next := -1
		for _, a := range d.waits[cur].awaited {
			if a != cur && d.waits[a].state == waitBlocked {
				next = a
				break
			}
		}
		if next < 0 {
			return append([]int(nil), path...),
				fmt.Sprintf("rank %d waits on exited peer(s) %v", cur, d.waits[cur].awaited)
		}
		cur = next
	}
}

func cycleDesc(cyc []int) string {
	parts := make([]string, 0, len(cyc)+1)
	for _, r := range cyc {
		parts = append(parts, fmt.Sprint(r))
	}
	parts = append(parts, fmt.Sprint(cyc[0]))
	return "wait-for cycle " + strings.Join(parts, "->")
}

// wildMatch is one quiescent wildcard match: the message, the eligible-set
// fingerprint (sorted candidate local sources), the index chosen, and the
// global choice sequence number.
type wildMatch struct {
	msg    message
	srcs   []int
	choice int
	seq    int
}

// takeGranted consumes an outstanding quiescence grant for rank: it computes
// the (stable, complete) candidate set, picks the directed or default index,
// and removes the chosen message. ok is false when no grant is pending.
// Lock order is detector.mu then mailbox.mu, matching check's peeks.
func (d *detector) takeGranted(rank, tag, comm int) (wildMatch, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	w := &d.waits[rank]
	if !w.granted {
		return wildMatch{}, false
	}
	w.granted = false
	mb := d.rt.mbox[rank]
	srcs := mb.candidateSources(tag, comm)
	if len(srcs) == 0 {
		// Unreachable by construction (grants require a candidate), but a
		// fuzzer-visible invariant: fall back to blocking again.
		return wildMatch{}, false
	}
	choice := 0
	var seq int
	if len(srcs) > 1 {
		if rank < len(d.order) && d.cursor[rank] < len(d.order[rank]) {
			choice = d.order[rank][d.cursor[rank]]
			if choice < 0 {
				choice = 0
			}
			if choice >= len(srcs) {
				choice = len(srcs) - 1
			}
		}
		d.cursor[rank]++
		seq = d.seq
		d.seq++
	}
	msg, ok := mb.take(srcs[choice], tag, comm)
	if !ok {
		// candidateSources and take see the same queue under mb.mu; a miss
		// here would mean the queue changed under detector.mu, which only
		// the owner (this rank) can do.
		panic(fmt.Sprintf("mpi: granted wildcard match lost its candidate (rank %d tag %d comm %d)", rank, tag, comm))
	}
	return wildMatch{msg: msg, srcs: srcs, choice: choice, seq: seq}, true
}
