package mpi

import (
	"sort"

	"repro/internal/conc"
)

// Status reports the envelope of a received message, like MPI_Status.
type Status struct {
	Source int // local rank of the sender within the communicator
	Tag    int
}

// Send posts data to the process with local rank dest in c. Sends are
// buffered and complete immediately. The data is copied.
func (p *Proc) Send(c *Comm, dest, tag int, data []float64) {
	p.CC.Tick()
	buf := make([]float64, len(data))
	copy(buf, data)
	g := c.GlobalOf(dest)
	p.rt.mbox[g].put(message{src: c.local, tag: tag, comm: c.id, data: buf})
}

// Recv blocks until a message with the given tag from local rank src
// (or AnySource) arrives on c. While blocked, the rank is registered in the
// runtime's wait-for graph so a permanently stuck job surfaces as a deadlock
// immediately. Under Spec.Schedules, a wildcard receive only matches at
// quiescence and becomes a recorded choice point.
func (p *Proc) Recv(c *Comm, src, tag int) ([]float64, Status) {
	p.CC.Tick()
	det := p.rt.det
	if src == AnySource && det.sched {
		return p.recvQuiescent(c, tag)
	}
	mb := p.rt.mbox[p.rank]
	for {
		if msg, ok := mb.take(src, tag, c.id); ok {
			return msg.data, Status{Source: msg.src, Tag: msg.tag}
		}
		det.block(p.rank, src == AnySource, src, tag, c.id, p.awaited(c, src))
		select {
		case <-mb.notify:
			det.unblock(p.rank)
		case <-p.rt.done:
			det.unblock(p.rank)
			if err := det.deadlockErr(p.rank); err != nil {
				panic(err)
			}
			panic(&ErrStopped{Rank: p.rank})
		}
	}
}

// recvQuiescent is the schedule-mode wildcard receive: it waits for a match
// grant from the detector (issued only when every other live rank is blocked
// or finished, so the eligible set is complete and deterministic), consults
// the MatchOrder directive for this rank's next choice point, and records
// the choice plus the eligible-set fingerprint in the rank's log.
func (p *Proc) recvQuiescent(c *Comm, tag int) ([]float64, Status) {
	det := p.rt.det
	mb := p.rt.mbox[p.rank]
	for {
		if wm, ok := det.takeGranted(p.rank, tag, c.id); ok {
			if len(wm.srcs) > 1 {
				srcs := make([]int32, len(wm.srcs))
				for i, s := range wm.srcs {
					srcs[i] = int32(s)
				}
				p.CC.RecordMatch(conc.MatchRec{
					Seq:    int32(wm.seq),
					Comm:   int32(c.id),
					Tag:    int32(tag),
					Srcs:   srcs,
					Choice: int32(wm.choice),
				})
			}
			return wm.msg.data, Status{Source: wm.msg.src, Tag: wm.msg.tag}
		}
		det.block(p.rank, true, AnySource, tag, c.id, p.awaited(c, AnySource))
		select {
		case <-mb.notify:
			det.unblock(p.rank)
		case <-p.rt.done:
			det.unblock(p.rank)
			if err := det.deadlockErr(p.rank); err != nil {
				panic(err)
			}
			panic(&ErrStopped{Rank: p.rank})
		}
	}
}

// awaited lists the global ranks whose send could satisfy a receive from src
// on c — the receive's outgoing wait-for edges, sorted ascending.
func (p *Proc) awaited(c *Comm, src int) []int {
	if src != AnySource {
		return []int{c.GlobalOf(src)}
	}
	out := make([]int, 0, c.Size()-1)
	for l := 0; l < c.Size(); l++ {
		g := c.GlobalOf(l)
		if g != p.rank {
			out = append(out, g)
		}
	}
	sort.Ints(out)
	return out
}

// Sendrecv sends to dest and receives from src in one call.
func (p *Proc) Sendrecv(c *Comm, dest, sendTag int, data []float64, src, recvTag int) ([]float64, Status) {
	p.Send(c, dest, sendTag, data)
	return p.Recv(c, src, recvTag)
}

// ReduceOp is a reduction operator for Reduce/Allreduce.
type ReduceOp uint8

// Reduction operators.
const (
	OpSum ReduceOp = iota
	OpMax
	OpMin
	OpProd
)

func (op ReduceOp) apply(acc, x []float64) {
	for i := range acc {
		switch op {
		case OpSum:
			acc[i] += x[i]
		case OpMax:
			if x[i] > acc[i] {
				acc[i] = x[i]
			}
		case OpMin:
			if x[i] < acc[i] {
				acc[i] = x[i]
			}
		case OpProd:
			acc[i] *= x[i]
		}
	}
}

// Bcast broadcasts data from local rank root; every caller returns the
// root's buffer.
func (p *Proc) Bcast(c *Comm, root int, data []float64) []float64 {
	p.CC.Tick()
	if c.local == root {
		for l := 0; l < c.Size(); l++ {
			if l != root {
				p.Send(c, l, internalTag, data)
			}
		}
		out := make([]float64, len(data))
		copy(out, data)
		return out
	}
	buf, _ := p.Recv(c, root, internalTag)
	return buf
}

// Reduce combines contributions at the root with op; non-roots return nil.
func (p *Proc) Reduce(c *Comm, root int, op ReduceOp, data []float64) []float64 {
	p.CC.Tick()
	if c.local != root {
		p.Send(c, root, internalTag, data)
		return nil
	}
	acc := make([]float64, len(data))
	copy(acc, data)
	for l := 0; l < c.Size(); l++ {
		if l == root {
			continue
		}
		buf, _ := p.Recv(c, l, internalTag)
		op.apply(acc, buf)
	}
	return acc
}

// Allreduce is Reduce to rank 0 followed by Bcast.
func (p *Proc) Allreduce(c *Comm, op ReduceOp, data []float64) []float64 {
	acc := p.Reduce(c, 0, op, data)
	if c.local != 0 {
		acc = make([]float64, len(data))
	}
	return p.Bcast(c, 0, acc)
}

// Barrier blocks until every rank in c has entered it.
func (p *Proc) Barrier(c *Comm) {
	p.Allreduce(c, OpSum, []float64{1})
}

// Gather collects each rank's equally sized contribution at root, ordered by
// local rank; non-roots return nil.
func (p *Proc) Gather(c *Comm, root int, data []float64) []float64 {
	p.CC.Tick()
	if c.local != root {
		p.Send(c, root, internalTag, data)
		return nil
	}
	out := make([]float64, len(data)*c.Size())
	copy(out[root*len(data):], data)
	for l := 0; l < c.Size(); l++ {
		if l == root {
			continue
		}
		buf, _ := p.Recv(c, l, internalTag)
		copy(out[l*len(data):], buf)
	}
	return out
}

// Allgather is Gather at rank 0 followed by Bcast.
func (p *Proc) Allgather(c *Comm, data []float64) []float64 {
	out := p.Gather(c, 0, data)
	if c.local != 0 {
		out = make([]float64, len(data)*c.Size())
	}
	return p.Bcast(c, 0, out)
}

// Scatter distributes equal chunks of the root's buffer; every rank returns
// its chunk. chunk is the per-rank element count.
func (p *Proc) Scatter(c *Comm, root int, data []float64, chunk int) []float64 {
	p.CC.Tick()
	if c.local == root {
		for l := 0; l < c.Size(); l++ {
			if l == root {
				continue
			}
			p.Send(c, l, internalTag, data[l*chunk:(l+1)*chunk])
		}
		out := make([]float64, chunk)
		copy(out, data[root*chunk:(root+1)*chunk])
		return out
	}
	buf, _ := p.Recv(c, root, internalTag)
	return buf
}

// Alltoall exchanges chunk elements between every pair of ranks: the result's
// l-th chunk is rank l's chunk addressed to this rank.
func (p *Proc) Alltoall(c *Comm, data []float64, chunk int) []float64 {
	p.CC.Tick()
	for l := 0; l < c.Size(); l++ {
		if l != c.local {
			p.Send(c, l, internalTag, data[l*chunk:(l+1)*chunk])
		}
	}
	out := make([]float64, chunk*c.Size())
	copy(out[c.local*chunk:], data[c.local*chunk:(c.local+1)*chunk])
	for l := 0; l < c.Size(); l++ {
		if l == c.local {
			continue
		}
		buf, _ := p.Recv(c, l, internalTag)
		copy(out[l*chunk:], buf)
	}
	return out
}

// ReduceScatter combines contributions with op and scatters the result:
// each rank receives the chunk of the element-wise reduction addressed to it
// (MPI_Reduce_scatter with equal block sizes). chunk is the per-rank element
// count; data must hold chunk·Size() elements.
func (p *Proc) ReduceScatter(c *Comm, op ReduceOp, data []float64, chunk int) []float64 {
	acc := p.Reduce(c, 0, op, data)
	if c.local != 0 {
		acc = nil
	}
	return p.Scatter(c, 0, acc, chunk)
}

// Scan is MPI_Scan: an inclusive prefix reduction by local rank — rank i
// receives op(data_0, ..., data_i).
func (p *Proc) Scan(c *Comm, op ReduceOp, data []float64) []float64 {
	p.CC.Tick()
	acc := make([]float64, len(data))
	copy(acc, data)
	if c.local > 0 {
		prev, _ := p.Recv(c, c.local-1, internalTag)
		op.apply(acc, prev)
	}
	if c.local < c.Size()-1 {
		p.Send(c, c.local+1, internalTag, acc)
	}
	return acc
}

// Split is MPI_Comm_split: ranks with equal color form a new communicator,
// ordered by (key, parent local rank). On the focus process the new
// communicator's local→global rank row is registered with the concolic
// runtime for conflict resolution (§III-D).
func (p *Proc) Split(c *Comm, color, key int) *Comm {
	p.CC.Tick()
	// Exchange (color, key) among all members of c.
	pairs := p.Allgather(c, []float64{float64(color), float64(key)})
	type member struct{ local, color, key int }
	var group []member
	for l := 0; l < c.Size(); l++ {
		mc, mk := int(pairs[2*l]), int(pairs[2*l+1])
		if mc == color {
			group = append(group, member{local: l, color: mc, key: mk})
		}
	}
	sort.Slice(group, func(i, j int) bool {
		if group[i].key != group[j].key {
			return group[i].key < group[j].key
		}
		return group[i].local < group[j].local
	})
	ranks := make([]int, len(group))
	myLocal := -1
	for i, m := range group {
		ranks[i] = c.GlobalOf(m.local)
		if m.local == c.local {
			myLocal = i
		}
	}
	seq := c.splitSeq
	c.splitSeq++
	nc := &Comm{
		id:      p.rt.commIDFor(c.id, seq, color),
		ranks:   ranks,
		local:   myLocal,
		concIdx: -1,
	}
	// Register the mapping row on the focus only: it is Heavy-only
	// information used for conflict resolution.
	if p.CC.Mode() == conc.Heavy {
		row := make([]int32, len(ranks))
		for i, g := range ranks {
			row[i] = int32(g)
		}
		nc.concIdx = p.CC.AddCommRow(row)
	}
	return nc
}
