package mpi

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/conc"
)

// RankStatus classifies how one rank's execution ended.
type RankStatus uint8

// Rank outcomes.
const (
	StatusOK       RankStatus = iota
	StatusCrash               // panic: segfault analogue, assertion, FP exception
	StatusHang                // watchdog deadline or tick budget exceeded
	StatusAborted             // MPI_Abort, non-zero exit, or stopped by a peer failure
	StatusDeadlock            // proven wait-for cycle: every live rank blocked, no satisfiable match
)

func (s RankStatus) String() string {
	switch s {
	case StatusOK:
		return "ok"
	case StatusCrash:
		return "crash"
	case StatusHang:
		return "hang"
	case StatusAborted:
		return "aborted"
	case StatusDeadlock:
		return "deadlock"
	}
	return fmt.Sprintf("status(%d)", uint8(s))
}

// RankResult is one rank's outcome plus its serialized instrumentation log.
type RankResult struct {
	Rank     int
	Status   RankStatus
	Err      error
	Exit     int
	Log      *conc.Log
	LogBytes int
}

// RunResult is the outcome of one MPMD launch (one test iteration).
type RunResult struct {
	Ranks   []RankResult
	Elapsed time.Duration
}

// Failed reports whether any rank ended abnormally (COMPI logs the inputs of
// such iterations as error-inducing).
func (r RunResult) Failed() bool {
	for _, rr := range r.Ranks {
		if rr.Status != StatusOK || rr.Exit != 0 {
			return true
		}
	}
	return false
}

// FirstError returns the most significant failure: crashes, hangs, and
// deadlocks beat secondary aborted statuses.
func (r RunResult) FirstError() (RankResult, bool) {
	var second *RankResult
	for i, rr := range r.Ranks {
		switch rr.Status {
		case StatusCrash, StatusHang, StatusDeadlock:
			return rr, true
		case StatusAborted:
			if second == nil {
				second = &r.Ranks[i]
			}
		case StatusOK:
			if rr.Exit != 0 && second == nil {
				second = &r.Ranks[i]
			}
		}
	}
	if second != nil {
		return *second, true
	}
	return RankResult{}, false
}

// Spec describes one MPMD launch.
type Spec struct {
	NProcs int
	Main   func(*Proc) int
	// Conc returns the instrumentation config for a rank; the engine makes
	// exactly one rank Heavy (the focus) and the rest Light, which is the
	// two-way MPMD launch of §III-D.
	Conc func(rank int) conc.Config
	// Vars is the engine's variable space, shared with Heavy ranks.
	Vars *conc.VarSpace
	// VarsFor, when non-nil, overrides Vars per rank. The engine uses it
	// under one-way instrumentation so that non-focus Heavy ranks get
	// private variable spaces (their symbolic work is real but must not
	// race on the engine's shared space).
	VarsFor func(rank int) *conc.VarSpace
	// Inputs are the engine-chosen values for marked input variables.
	Inputs map[string]int64
	// Timeout bounds the whole run; ranks still blocked afterwards are
	// reported as hangs. Zero means one minute.
	Timeout time.Duration
	// Schedules turns on schedule-space semantics: wildcard receives match
	// only at quiescence (every other live rank blocked or finished), which
	// makes the eligible set complete and deterministic, and each match with
	// more than one candidate is recorded as a choice point in the rank's
	// log. Off, wildcard matching is the historical first-queued-match.
	Schedules bool
	// MatchOrder directs wildcard match choices per global rank: entry r is
	// the sequence of eligible-set indices rank r's choice points consume,
	// in order. Indices are clamped to the eligible set; exhausted or absent
	// directives fall back to the default (lowest candidate source). Only
	// consulted under Schedules.
	MatchOrder [][]int
}

// Launch runs one test iteration: it starts NProcs ranks, waits for them all
// (or the watchdog), and collects per-rank statuses and logs.
func Launch(spec Spec) RunResult {
	if spec.Timeout == 0 {
		spec.Timeout = time.Minute
	}
	start := time.Now()
	rt := newRuntime(spec.NProcs, spec.Schedules, spec.MatchOrder)
	cancelCause := &causeTracker{}

	results := make([]RankResult, spec.NProcs)
	var resMu sync.Mutex
	var wg sync.WaitGroup

	for rank := 0; rank < spec.NProcs; rank++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			cfg := spec.Conc(rank)
			var vars *conc.VarSpace
			if cfg.Mode == conc.Heavy {
				if spec.VarsFor != nil {
					vars = spec.VarsFor(rank)
				} else {
					vars = spec.Vars
				}
			}
			cp := conc.NewProc(rank, vars, spec.Inputs, cfg)
			p := &Proc{rt: rt, rank: rank, CC: cp}
			world := &Comm{id: 0, world: true, local: rank, concIdx: -1}
			world.ranks = make([]int, spec.NProcs)
			for i := range world.ranks {
				world.ranks[i] = i
			}
			p.world = world

			res := RankResult{Rank: rank}
			func() {
				defer func() {
					if r := recover(); r != nil {
						res.Status, res.Err = classify(rank, r, cancelCause)
						// A primary failure stops the whole job, as a
						// crashed rank does under a real MPI launcher.
						if res.Status == StatusCrash || res.Status == StatusHang {
							cancelCause.set(causePeer)
							rt.cancel()
						}
					}
				}()
				res.Exit = spec.Main(p)
				if res.Exit != 0 {
					cancelCause.set(causePeer)
					rt.cancel()
				}
			}()
			// Retire the rank from the wait-for graph. An unclean finish
			// stands the detector down: the job is already failing and
			// collateral blocking must keep reporting as Aborted.
			rt.det.finish(rank, res.Status == StatusOK && res.Err == nil && res.Exit == 0)
			res.Log = cp.Log()
			res.LogBytes = res.Log.EncodedSize()
			resMu.Lock()
			results[rank] = res
			resMu.Unlock()
		}(rank)
	}

	finished := make(chan struct{})
	go func() {
		wg.Wait()
		close(finished)
	}()

	select {
	case <-finished:
	case <-time.After(spec.Timeout):
		cancelCause.set(causeTimeout)
		rt.cancel()
		// Grace period for blocked ranks to unwind through ErrStopped.
		select {
		case <-finished:
		case <-time.After(5 * time.Second):
			// A rank is stuck in an uninstrumented loop; report it as a
			// hang without waiting further.
		}
	}

	resMu.Lock()
	out := make([]RankResult, spec.NProcs)
	copy(out, results)
	resMu.Unlock()
	for i := range out {
		if out[i].Log == nil {
			// Unfilled slot: the rank is still stuck past the grace period.
			out[i] = RankResult{Rank: i, Status: StatusHang, Err: &conc.ErrHang{Rank: i}}
		}
		out[i].Rank = i
	}
	return RunResult{Ranks: out, Elapsed: time.Since(start)}
}

type cancelCauseKind uint8

const (
	causeNone cancelCauseKind = iota
	causePeer
	causeTimeout
)

type causeTracker struct {
	mu sync.Mutex
	k  cancelCauseKind
}

func (c *causeTracker) set(k cancelCauseKind) {
	c.mu.Lock()
	if c.k == causeNone {
		c.k = k
	}
	c.mu.Unlock()
}

func (c *causeTracker) get() cancelCauseKind {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.k
}

// classify maps a recovered panic value to a rank status.
func classify(rank int, r any, cause *causeTracker) (RankStatus, error) {
	switch e := r.(type) {
	case *conc.ErrHang:
		return StatusHang, e
	case *conc.ErrAssert:
		return StatusCrash, e
	case *ErrDeadlock:
		return StatusDeadlock, e
	case *ErrAbort:
		return StatusAborted, e
	case *ErrStopped:
		// Blocked rank released by cancellation: a hang if the watchdog
		// fired, collateral damage if a peer failed first.
		if cause.get() == causeTimeout {
			return StatusHang, e
		}
		return StatusAborted, e
	case error:
		return StatusCrash, fmt.Errorf("rank %d: %w", rank, e)
	default:
		return StatusCrash, fmt.Errorf("rank %d: panic: %v", rank, e)
	}
}
