package mpi

// Request is a pending nonblocking operation, like MPI_Request. Send
// requests complete immediately (sends are buffered); receive requests are
// matched when waited on.
type Request struct {
	proc *Proc
	comm *Comm
	// receive matching
	src, tag int
	recv     bool
	// completed state
	done   bool
	data   []float64
	status Status
}

// Isend starts a nonblocking send. Like this runtime's Send, the message is
// buffered, so the request is already complete; Wait only retrieves status.
func (p *Proc) Isend(c *Comm, dest, tag int, data []float64) *Request {
	p.Send(c, dest, tag, data)
	return &Request{proc: p, comm: c, done: true, status: Status{Source: c.local, Tag: tag}}
}

// Irecv posts a nonblocking receive for a message with the given tag from
// local rank src (or AnySource) on c. The message is matched at Wait time.
func (p *Proc) Irecv(c *Comm, src, tag int) *Request {
	p.CC.Tick()
	return &Request{proc: p, comm: c, src: src, tag: tag, recv: true}
}

// Wait blocks until r completes and returns the received data (nil for send
// requests) and the envelope.
func (p *Proc) Wait(r *Request) ([]float64, Status) {
	if r.done {
		return r.data, r.status
	}
	if r.recv {
		r.data, r.status = p.Recv(r.comm, r.src, r.tag)
	}
	r.done = true
	return r.data, r.status
}

// Waitall completes every request, like MPI_Waitall. Results are retrieved
// per request with Data afterwards.
func (p *Proc) Waitall(rs []*Request) {
	for _, r := range rs {
		p.Wait(r)
	}
}

// Data returns the payload of a completed receive request (nil before Wait
// or for send requests).
func (r *Request) Data() []float64 { return r.data }

// Status returns the envelope of a completed request.
func (r *Request) Status() Status { return r.status }

// Done reports whether the request has completed.
func (r *Request) Done() bool { return r.done }

// Test is the nonblocking completion probe, like MPI_Test: it completes a
// receive if a matching message is already queued, without blocking.
func (p *Proc) Test(r *Request) bool {
	if r.done {
		return true
	}
	p.CC.Tick()
	if msg, ok := p.rt.mbox[p.rank].take(r.src, r.tag, r.comm.id); ok {
		r.data = msg.data
		r.status = Status{Source: msg.src, Tag: msg.tag}
		r.done = true
	}
	return r.done
}
