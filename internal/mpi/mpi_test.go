package mpi

import (
	"errors"
	"math/rand"
	"reflect"
	"testing"
	"time"

	"repro/internal/conc"
)

// run launches main on n ranks with rank 0 heavy and returns the result.
func run(t *testing.T, n int, main func(*Proc) int) RunResult {
	t.Helper()
	return Launch(Spec{
		NProcs: n,
		Main:   main,
		Vars:   conc.NewVarSpace(),
		Conc: func(rank int) conc.Config {
			mode := conc.Light
			if rank == 0 {
				mode = conc.Heavy
			}
			return conc.Config{Mode: mode, Reduction: true, Seed: 42, MaxTicks: 1 << 20}
		},
		Inputs:  map[string]int64{},
		Timeout: 10 * time.Second,
	})
}

func requireAllOK(t *testing.T, r RunResult) {
	t.Helper()
	for _, rr := range r.Ranks {
		if rr.Status != StatusOK || rr.Exit != 0 {
			t.Fatalf("rank %d: status=%v exit=%d err=%v", rr.Rank, rr.Status, rr.Exit, rr.Err)
		}
	}
}

func TestSendRecvBasic(t *testing.T) {
	res := run(t, 2, func(p *Proc) int {
		w := p.World()
		if p.Rank() == 0 {
			p.Send(w, 1, 7, []float64{1, 2, 3})
		} else {
			data, st := p.Recv(w, 0, 7)
			if st.Source != 0 || st.Tag != 7 {
				return 1
			}
			if !reflect.DeepEqual(data, []float64{1, 2, 3}) {
				return 2
			}
		}
		return 0
	})
	requireAllOK(t, res)
}

func TestRecvTagMatching(t *testing.T) {
	res := run(t, 2, func(p *Proc) int {
		w := p.World()
		if p.Rank() == 0 {
			p.Send(w, 1, 1, []float64{10})
			p.Send(w, 1, 2, []float64{20})
		} else {
			// Receive out of send order by tag.
			d2, _ := p.Recv(w, 0, 2)
			d1, _ := p.Recv(w, 0, 1)
			if d2[0] != 20 || d1[0] != 10 {
				return 1
			}
		}
		return 0
	})
	requireAllOK(t, res)
}

func TestRecvAnySource(t *testing.T) {
	res := run(t, 4, func(p *Proc) int {
		w := p.World()
		if p.Rank() == 0 {
			seen := map[int]bool{}
			for i := 0; i < 3; i++ {
				data, st := p.Recv(w, AnySource, 5)
				if int(data[0]) != st.Source {
					return 1
				}
				seen[st.Source] = true
			}
			if len(seen) != 3 {
				return 2
			}
		} else {
			p.Send(w, 0, 5, []float64{float64(p.Rank())})
		}
		return 0
	})
	requireAllOK(t, res)
}

func TestSendCopiesBuffer(t *testing.T) {
	res := run(t, 2, func(p *Proc) int {
		w := p.World()
		if p.Rank() == 0 {
			buf := []float64{1}
			p.Send(w, 1, 0, buf)
			buf[0] = 99 // must not affect the in-flight message
			p.Barrier(w)
		} else {
			p.Barrier(w)
			d, _ := p.Recv(w, 0, 0)
			if d[0] != 1 {
				return 1
			}
		}
		return 0
	})
	requireAllOK(t, res)
}

func TestBcast(t *testing.T) {
	res := run(t, 5, func(p *Proc) int {
		w := p.World()
		var data []float64
		if p.Rank() == 2 {
			data = []float64{3.5, -1}
		} else {
			data = []float64{0, 0}
		}
		got := p.Bcast(w, 2, data)
		if !reflect.DeepEqual(got, []float64{3.5, -1}) {
			return 1
		}
		return 0
	})
	requireAllOK(t, res)
}

func TestReduceAndAllreduce(t *testing.T) {
	for n := 1; n <= 6; n++ {
		res := run(t, n, func(p *Proc) int {
			w := p.World()
			me := []float64{float64(p.Rank() + 1), float64(p.Rank())}
			sum := p.Reduce(w, 0, OpSum, me)
			if p.Rank() == 0 {
				wantA := float64(n*(n+1)) / 2
				wantB := float64(n*(n-1)) / 2
				if sum[0] != wantA || sum[1] != wantB {
					return 1
				}
			} else if sum != nil {
				return 2
			}
			mx := p.Allreduce(w, OpMax, []float64{float64(p.Rank())})
			if mx[0] != float64(n-1) {
				return 3
			}
			mn := p.Allreduce(w, OpMin, []float64{float64(p.Rank())})
			if mn[0] != 0 {
				return 4
			}
			return 0
		})
		requireAllOK(t, res)
	}
}

func TestGatherScatterAllgatherAlltoall(t *testing.T) {
	const n = 4
	res := run(t, n, func(p *Proc) int {
		w := p.World()
		r := float64(p.Rank())
		g := p.Gather(w, 0, []float64{r, r})
		if p.Rank() == 0 {
			want := []float64{0, 0, 1, 1, 2, 2, 3, 3}
			if !reflect.DeepEqual(g, want) {
				return 1
			}
		}
		ag := p.Allgather(w, []float64{r})
		if !reflect.DeepEqual(ag, []float64{0, 1, 2, 3}) {
			return 2
		}
		var root []float64
		if p.Rank() == 1 {
			root = []float64{10, 11, 12, 13}
		}
		sc := p.Scatter(w, 1, root, 1)
		if sc[0] != float64(10+p.Rank()) {
			return 3
		}
		// Alltoall: rank i sends value 100*i + j to rank j.
		out := make([]float64, n)
		for j := 0; j < n; j++ {
			out[j] = 100*r + float64(j)
		}
		in := p.Alltoall(w, out, 1)
		for j := 0; j < n; j++ {
			if in[j] != 100*float64(j)+r {
				return 4
			}
		}
		return 0
	})
	requireAllOK(t, res)
}

func TestBarrierOrdering(t *testing.T) {
	// All ranks must observe every pre-barrier send after the barrier.
	res := run(t, 6, func(p *Proc) int {
		w := p.World()
		if p.Rank() != 0 {
			p.Send(w, 0, 9, []float64{1})
		}
		p.Barrier(w)
		if p.Rank() == 0 {
			for i := 1; i < 6; i++ {
				if _, ok := p.rt.mbox[0].take(AnySource, 9, 0); !ok {
					return 1
				}
			}
		}
		return 0
	})
	requireAllOK(t, res)
}

func TestSplitByParity(t *testing.T) {
	res := run(t, 6, func(p *Proc) int {
		w := p.World()
		sub := p.Split(w, p.Rank()%2, p.Rank())
		if sub.Size() != 3 {
			return 1
		}
		if sub.GlobalOf(sub.LocalRank()) != p.Rank() {
			return 2
		}
		// Members of a split communicate independently of world.
		sum := p.Allreduce(sub, OpSum, []float64{float64(p.Rank())})
		var want float64
		if p.Rank()%2 == 0 {
			want = 0 + 2 + 4
		} else {
			want = 1 + 3 + 5
		}
		if sum[0] != want {
			return 3
		}
		return 0
	})
	requireAllOK(t, res)
}

func TestSplitKeyOrdering(t *testing.T) {
	res := run(t, 4, func(p *Proc) int {
		w := p.World()
		// Reverse key order: global rank 3 becomes local 0, etc.
		sub := p.Split(w, 0, -p.Rank())
		if sub.GlobalOf(0) != 3 || sub.GlobalOf(3) != 0 {
			return 1
		}
		if sub.LocalRank() != 3-p.Rank() {
			return 2
		}
		return 0
	})
	requireAllOK(t, res)
}

func TestAutomaticMarkingWorld(t *testing.T) {
	res := run(t, 4, func(p *Proc) int {
		w := p.World()
		r := p.CommRank(w, "main:rank")
		s := p.CommSize(w, "main:size")
		if r.C != int64(p.Rank()) || s.C != 4 {
			return 1
		}
		if p.Rank() == 0 && (!r.IsSymbolic() || !s.IsSymbolic()) {
			return 2 // focus must see symbolic rw/sw
		}
		if p.Rank() != 0 && (r.IsSymbolic() || s.IsSymbolic()) {
			return 3 // non-focus must stay concrete
		}
		return 0
	})
	requireAllOK(t, res)
	log := res.Ranks[0].Log
	kinds := map[conc.VarKind]int{}
	for _, o := range log.Obs {
		kinds[o.Kind]++
	}
	if kinds[conc.KindRankWorld] != 1 || kinds[conc.KindSizeWorld] != 1 {
		t.Fatalf("focus observations: %+v", log.Obs)
	}
}

func TestAutomaticMarkingLocal(t *testing.T) {
	res := run(t, 6, func(p *Proc) int {
		w := p.World()
		sub := p.Split(w, p.Rank()%2, p.Rank())
		lr := p.CommRank(sub, "solver:lrank")
		ls := p.CommSize(sub, "solver:lsize")
		if lr.C != int64(sub.LocalRank()) || ls.C != 3 {
			return 1
		}
		if p.Rank() == 0 && !lr.IsSymbolic() {
			return 2
		}
		// Local sizes are never marked, per §III-A.
		if ls.IsSymbolic() {
			return 3
		}
		return 0
	})
	requireAllOK(t, res)
	log := res.Ranks[0].Log
	var rc *conc.VarObs
	for i, o := range log.Obs {
		if o.Kind == conc.KindRankLocal {
			rc = &log.Obs[i]
		}
	}
	if rc == nil {
		t.Fatal("no rc observation on focus")
	}
	if rc.CommSize != 3 || rc.CommIdx != 0 {
		t.Fatalf("rc obs: %+v", rc)
	}
	// Focus (global 0, even) group is {0,2,4}: mapping row must list them.
	if len(log.Mapping) != 1 || !reflect.DeepEqual(log.Mapping[0], []int32{0, 2, 4}) {
		t.Fatalf("mapping: %v", log.Mapping)
	}
}

func TestCrashStopsJob(t *testing.T) {
	res := run(t, 3, func(p *Proc) int {
		if p.Rank() == 1 {
			var s []float64
			_ = s[5] // index out of range: the segfault analogue
		}
		// Other ranks block forever; the crash must release them.
		p.Recv(p.World(), AnySource, 99)
		return 0
	})
	if !res.Failed() {
		t.Fatal("job must fail")
	}
	if res.Ranks[1].Status != StatusCrash {
		t.Fatalf("rank 1: %v", res.Ranks[1].Status)
	}
	for _, r := range []int{0, 2} {
		if res.Ranks[r].Status != StatusAborted {
			t.Fatalf("rank %d should be aborted, got %v", r, res.Ranks[r].Status)
		}
	}
	first, ok := res.FirstError()
	if !ok || first.Rank != 1 || first.Status != StatusCrash {
		t.Fatalf("first error: %+v ok=%v", first, ok)
	}
}

func TestAssertionFailureIsCrash(t *testing.T) {
	res := run(t, 2, func(p *Proc) int {
		p.Assert(p.Rank() != 1, "rank %d hit the bad path", p.Rank())
		p.Barrier(p.World())
		return 0
	})
	if res.Ranks[1].Status != StatusCrash {
		t.Fatalf("assert: %+v", res.Ranks[1])
	}
}

func TestDivideByZeroIsCrash(t *testing.T) {
	res := run(t, 2, func(p *Proc) int {
		d := p.Rank() // zero on rank 0
		x := 10 / d   // integer divide by zero: the FP-exception analogue
		_ = x
		p.Barrier(p.World())
		return 0
	})
	if res.Ranks[0].Status != StatusCrash {
		t.Fatalf("rank 0: %+v", res.Ranks[0])
	}
}

func TestTickBudgetHang(t *testing.T) {
	res := Launch(Spec{
		NProcs: 2,
		Main: func(p *Proc) int {
			if p.Rank() == 0 {
				for {
					p.Tick() // infinite loop caught by the tick budget
				}
			}
			p.Barrier(p.World())
			return 0
		},
		Vars: conc.NewVarSpace(),
		Conc: func(rank int) conc.Config {
			mode := conc.Light
			if rank == 0 {
				mode = conc.Heavy
			}
			return conc.Config{Mode: mode, Seed: 1, MaxTicks: 5000}
		},
		Timeout: 10 * time.Second,
	})
	if res.Ranks[0].Status != StatusHang {
		t.Fatalf("rank 0: %+v", res.Ranks[0])
	}
}

func TestDeadlockDetectedImmediately(t *testing.T) {
	// Both ranks receive first: classic deadlock. The wait-for-graph
	// detector must prove and report it the moment both ranks block — with
	// the cycle named — instead of burning the watchdog budget on a generic
	// hang. The generous timeout is the point: finishing fast is only
	// possible through detection.
	start := time.Now()
	res := Launch(Spec{
		NProcs: 2,
		Main: func(p *Proc) int {
			p.Recv(p.World(), 1-p.Rank(), 0)
			return 0
		},
		Vars: conc.NewVarSpace(),
		Conc: func(rank int) conc.Config {
			return conc.Config{Mode: conc.Light, Seed: 1}
		},
		Timeout: 30 * time.Second,
	})
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("deadlock took %s to surface; the detector should be immediate", elapsed)
	}
	for _, rr := range res.Ranks {
		if rr.Status != StatusDeadlock {
			t.Fatalf("rank %d: %v (want deadlock)", rr.Rank, rr.Status)
		}
		var dl *ErrDeadlock
		if !errors.As(rr.Err, &dl) {
			t.Fatalf("rank %d err: %v (want *ErrDeadlock)", rr.Rank, rr.Err)
		}
		if len(dl.Cycle) != 2 {
			t.Fatalf("rank %d cycle: %v (want both ranks)", rr.Rank, dl.Cycle)
		}
		if want := "wait-for cycle 0->1->0"; dl.Desc != want {
			t.Fatalf("rank %d desc: %q (want %q)", rr.Rank, dl.Desc, want)
		}
	}
	fe, ok := res.FirstError()
	if !ok || fe.Status != StatusDeadlock {
		t.Fatalf("FirstError = %+v, %v (want primary deadlock)", fe, ok)
	}
}

func TestTrueHangStaysHang(t *testing.T) {
	// One rank blocked on a never-sent message while another spins: no
	// quiescence, no cycle — the watchdog, not the detector, must end it.
	res := Launch(Spec{
		NProcs: 2,
		Main: func(p *Proc) int {
			if p.Rank() == 0 {
				p.Recv(p.World(), 1, 0)
				return 0
			}
			for {
				p.Tick()
			}
		},
		Vars: conc.NewVarSpace(),
		Conc: func(rank int) conc.Config {
			return conc.Config{Mode: conc.Light, Seed: 1, MaxTicks: 1 << 40}
		},
		Timeout: 300 * time.Millisecond,
	})
	for _, rr := range res.Ranks {
		if rr.Status == StatusDeadlock {
			t.Fatalf("rank %d: %v (a non-quiescent job is a hang, not a deadlock)", rr.Rank, rr.Status)
		}
	}
	if !res.Failed() {
		t.Fatal("hung run must fail")
	}
}

func TestAbort(t *testing.T) {
	res := run(t, 3, func(p *Proc) int {
		if p.Rank() == 2 {
			p.Abort(77)
		}
		p.Barrier(p.World())
		return 0
	})
	if res.Ranks[2].Status != StatusAborted {
		t.Fatalf("rank 2: %+v", res.Ranks[2])
	}
	if !res.Failed() {
		t.Fatal("abort must fail the run")
	}
}

func TestNonzeroExitFailsRun(t *testing.T) {
	res := run(t, 2, func(p *Proc) int {
		if p.Rank() == 0 {
			return 3
		}
		return 0
	})
	if !res.Failed() {
		t.Fatal("non-zero exit must fail the run")
	}
	fe, ok := res.FirstError()
	if !ok || fe.Exit != 3 {
		t.Fatalf("first error: %+v", fe)
	}
}

func TestSingleRankJob(t *testing.T) {
	res := run(t, 1, func(p *Proc) int {
		w := p.World()
		if p.Bcast(w, 0, []float64{5})[0] != 5 {
			return 1
		}
		if p.Allreduce(w, OpSum, []float64{2})[0] != 2 {
			return 2
		}
		p.Barrier(w)
		return 0
	})
	requireAllOK(t, res)
}

func TestReduceScatter(t *testing.T) {
	const n = 4
	res := run(t, n, func(p *Proc) int {
		w := p.World()
		// Rank r contributes vector [r, r, ..., r] of length n (chunk 1).
		data := make([]float64, n)
		for i := range data {
			data[i] = float64(p.Rank())
		}
		got := p.ReduceScatter(w, OpSum, data, 1)
		// Sum over ranks of r = 0+1+2+3 = 6 in every chunk.
		if len(got) != 1 || got[0] != 6 {
			return 1
		}
		return 0
	})
	requireAllOK(t, res)
}

func TestScanInclusivePrefix(t *testing.T) {
	const n = 5
	res := run(t, n, func(p *Proc) int {
		w := p.World()
		got := p.Scan(w, OpSum, []float64{float64(p.Rank() + 1)})
		want := float64((p.Rank() + 1) * (p.Rank() + 2) / 2)
		if got[0] != want {
			return 1
		}
		return 0
	})
	requireAllOK(t, res)
}

func TestScanSingleRank(t *testing.T) {
	res := run(t, 1, func(p *Proc) int {
		if p.Scan(p.World(), OpMax, []float64{7})[0] != 7 {
			return 1
		}
		return 0
	})
	requireAllOK(t, res)
}

// Property: Allreduce(SUM) over random per-rank vectors equals the serial sum.
func TestAllreduceSumProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 20; trial++ {
		n := 1 + rng.Intn(8)
		vecs := make([][]float64, n)
		want := make([]float64, 4)
		for i := range vecs {
			vecs[i] = make([]float64, 4)
			for j := range vecs[i] {
				vecs[i][j] = float64(rng.Intn(100))
				want[j] += vecs[i][j]
			}
		}
		res := run(t, n, func(p *Proc) int {
			got := p.Allreduce(p.World(), OpSum, vecs[p.Rank()])
			if !reflect.DeepEqual(got, want) {
				return 1
			}
			return 0
		})
		requireAllOK(t, res)
	}
}

func TestLogsCollectedFromAllRanks(t *testing.T) {
	res := run(t, 4, func(p *Proc) int {
		x := p.In("x")
		p.If(conc.CondID(1), conc.LT(x, conc.K(1000)))
		p.Barrier(p.World())
		return 0
	})
	requireAllOK(t, res)
	for _, rr := range res.Ranks {
		if rr.Log == nil || rr.LogBytes == 0 {
			t.Fatalf("rank %d missing log", rr.Rank)
		}
		found := false
		for _, b := range rr.Log.Covered {
			if b.Site() == 1 {
				found = true
			}
		}
		if !found {
			t.Fatalf("rank %d missing branch coverage", rr.Rank)
		}
	}
	if res.Ranks[0].Log.Mode != conc.Heavy || res.Ranks[1].Log.Mode != conc.Light {
		t.Fatal("modes wrong in logs")
	}
	if res.Ranks[1].LogBytes >= res.Ranks[0].LogBytes {
		t.Fatalf("light log (%dB) should be smaller than heavy (%dB)",
			res.Ranks[1].LogBytes, res.Ranks[0].LogBytes)
	}
}
