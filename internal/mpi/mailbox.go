package mpi

import "sync"

// message is one in-flight point-to-point payload.
type message struct {
	src  int
	tag  int
	comm int
	data []float64
}

// mailbox is one rank's incoming message queue. Sends are buffered (always
// complete immediately, as MPI permits for small messages); receives block
// until a matching message arrives or the job is cancelled.
type mailbox struct {
	mu     sync.Mutex
	queue  []message
	notify chan struct{}
}

func newMailbox() *mailbox {
	return &mailbox{notify: make(chan struct{}, 1)}
}

func (m *mailbox) put(msg message) {
	m.mu.Lock()
	m.queue = append(m.queue, msg)
	m.mu.Unlock()
	select {
	case m.notify <- struct{}{}:
	default:
	}
}

// wake sets the notify token without enqueueing anything; the detector uses
// it to deliver a quiescence match grant to a blocked wildcard receiver.
func (m *mailbox) wake() {
	select {
	case m.notify <- struct{}{}:
	default:
	}
}

// take removes and returns the first message matching (src, tag, comm);
// src may be AnySource. ok is false when no match is queued.
func (m *mailbox) take(src, tag, comm int) (message, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for i, msg := range m.queue {
		if !matches(msg, src, tag, comm) {
			continue
		}
		m.queue = append(m.queue[:i], m.queue[i+1:]...)
		return msg, true
	}
	return message{}, false
}

// hasMatch reports whether take(src, tag, comm) would succeed, without
// consuming anything. The deadlock detector peeks with it while holding its
// own lock (lock order: detector.mu, then mailbox.mu).
func (m *mailbox) hasMatch(src, tag, comm int) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, msg := range m.queue {
		if matches(msg, src, tag, comm) {
			return true
		}
	}
	return false
}

// candidateSources returns the distinct local source ranks with at least one
// queued (tag, comm) match, sorted ascending: the eligible set of a wildcard
// receive. Sorting by source (not queue position) keeps the set — and the
// index space MatchOrder directives address — independent of arrival order.
func (m *mailbox) candidateSources(tag, comm int) []int {
	m.mu.Lock()
	defer m.mu.Unlock()
	var srcs []int
	for _, msg := range m.queue {
		if msg.tag != tag || msg.comm != comm {
			continue
		}
		pos := len(srcs)
		dup := false
		for i, s := range srcs {
			if s == msg.src {
				dup = true
				break
			}
			if s > msg.src {
				pos = i
				break
			}
		}
		if dup {
			continue
		}
		srcs = append(srcs, 0)
		copy(srcs[pos+1:], srcs[pos:])
		srcs[pos] = msg.src
	}
	return srcs
}

func matches(msg message, src, tag, comm int) bool {
	if msg.comm != comm || msg.tag != tag {
		return false
	}
	return src == AnySource || msg.src == src
}
