package mpi

import "sync"

// message is one in-flight point-to-point payload.
type message struct {
	src  int
	tag  int
	comm int
	data []float64
}

// mailbox is one rank's incoming message queue. Sends are buffered (always
// complete immediately, as MPI permits for small messages); receives block
// until a matching message arrives or the job is cancelled.
type mailbox struct {
	mu     sync.Mutex
	queue  []message
	notify chan struct{}
}

func newMailbox() *mailbox {
	return &mailbox{notify: make(chan struct{}, 1)}
}

func (m *mailbox) put(msg message) {
	m.mu.Lock()
	m.queue = append(m.queue, msg)
	m.mu.Unlock()
	select {
	case m.notify <- struct{}{}:
	default:
	}
}

// take removes and returns the first message matching (src, tag, comm);
// src may be AnySource. ok is false when no match is queued.
func (m *mailbox) take(src, tag, comm int) (message, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for i, msg := range m.queue {
		if msg.comm != comm || msg.tag != tag {
			continue
		}
		if src != AnySource && msg.src != src {
			continue
		}
		m.queue = append(m.queue[:i], m.queue[i+1:]...)
		return msg, true
	}
	return message{}, false
}
