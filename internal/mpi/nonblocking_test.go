package mpi

import (
	"reflect"
	"testing"
	"time"
)

func TestIsendIrecvWait(t *testing.T) {
	res := run(t, 2, func(p *Proc) int {
		w := p.World()
		if p.Rank() == 0 {
			r := p.Isend(w, 1, 5, []float64{1, 2})
			if !r.Done() {
				return 1 // buffered sends complete immediately
			}
		} else {
			r := p.Irecv(w, 0, 5)
			if r.Done() {
				return 2 // not yet waited
			}
			data, st := p.Wait(r)
			if st.Source != 0 || st.Tag != 5 {
				return 3
			}
			if !reflect.DeepEqual(data, []float64{1, 2}) {
				return 4
			}
			if !reflect.DeepEqual(r.Data(), data) || r.Status() != st {
				return 5
			}
		}
		return 0
	})
	requireAllOK(t, res)
}

func TestWaitallOutOfOrder(t *testing.T) {
	res := run(t, 3, func(p *Proc) int {
		w := p.World()
		if p.Rank() == 0 {
			r1 := p.Irecv(w, 1, 9)
			r2 := p.Irecv(w, 2, 9)
			p.Waitall([]*Request{r2, r1})
			if r1.Data()[0] != 1 || r2.Data()[0] != 2 {
				return 1
			}
		} else {
			p.Send(w, 0, 9, []float64{float64(p.Rank())})
		}
		return 0
	})
	requireAllOK(t, res)
}

func TestTestProbe(t *testing.T) {
	res := run(t, 2, func(p *Proc) int {
		w := p.World()
		if p.Rank() == 0 {
			r := p.Irecv(w, 1, 3)
			if p.Test(r) {
				return 1 // nothing sent yet... (racy in general; rank 1 waits)
			}
			p.Send(w, 1, 4, []float64{0}) // let rank 1 proceed
			for !p.Test(r) {
				time.Sleep(100 * time.Microsecond) // poll without burning ticks
			}
			if r.Data()[0] != 7 {
				return 2
			}
		} else {
			p.Recv(w, 0, 4)
			p.Send(w, 0, 3, []float64{7})
		}
		return 0
	})
	requireAllOK(t, res)
}

func TestDoubleWaitIdempotent(t *testing.T) {
	res := run(t, 2, func(p *Proc) int {
		w := p.World()
		if p.Rank() == 0 {
			p.Send(w, 1, 1, []float64{42})
		} else {
			r := p.Irecv(w, 0, 1)
			d1, _ := p.Wait(r)
			d2, _ := p.Wait(r)
			if d1[0] != 42 || d2[0] != 42 {
				return 1
			}
		}
		return 0
	})
	requireAllOK(t, res)
}
