package mpi

// Varying-count collectives (the MPI-1 "v" variants). counts gives the
// per-local-rank element counts; displacements are implicit (packed in rank
// order), which is how the target applications use them.

// sumCounts validates and totals a counts vector for communicator c.
func sumCounts(c *Comm, counts []int) int {
	if len(counts) != c.Size() {
		panic("mpi: counts length does not match communicator size")
	}
	total := 0
	for _, n := range counts {
		if n < 0 {
			panic("mpi: negative count")
		}
		total += n
	}
	return total
}

// offsetOf returns the packed offset of local rank l.
func offsetOf(counts []int, l int) int {
	off := 0
	for i := 0; i < l; i++ {
		off += counts[i]
	}
	return off
}

// Gatherv collects counts[l] elements from each local rank l at root,
// packed in rank order; non-roots return nil.
func (p *Proc) Gatherv(c *Comm, root int, data []float64, counts []int) []float64 {
	p.CC.Tick()
	total := sumCounts(c, counts)
	if c.local != root {
		p.Send(c, root, internalTag, data)
		return nil
	}
	out := make([]float64, total)
	copy(out[offsetOf(counts, root):], data)
	for l := 0; l < c.Size(); l++ {
		if l == root {
			continue
		}
		buf, _ := p.Recv(c, l, internalTag)
		copy(out[offsetOf(counts, l):offsetOf(counts, l)+counts[l]], buf)
	}
	return out
}

// Allgatherv is Gatherv at local rank 0 followed by a broadcast.
func (p *Proc) Allgatherv(c *Comm, data []float64, counts []int) []float64 {
	out := p.Gatherv(c, 0, data, counts)
	if c.local != 0 {
		out = nil
	}
	return p.Bcast(c, 0, out)
}

// Scatterv distributes counts[l] elements of the root's packed buffer to
// each local rank l; every rank returns its chunk.
func (p *Proc) Scatterv(c *Comm, root int, data []float64, counts []int) []float64 {
	p.CC.Tick()
	sumCounts(c, counts)
	if c.local == root {
		for l := 0; l < c.Size(); l++ {
			if l == root {
				continue
			}
			off := offsetOf(counts, l)
			p.Send(c, l, internalTag, data[off:off+counts[l]])
		}
		off := offsetOf(counts, root)
		out := make([]float64, counts[root])
		copy(out, data[off:off+counts[root]])
		return out
	}
	buf, _ := p.Recv(c, root, internalTag)
	return buf
}

// Alltoallv exchanges sendCounts[l] elements with every local rank l: the
// send buffer is packed by destination, the result is packed by source with
// recvCounts[l] elements from rank l. recvCounts[l] must equal rank l's
// sendCounts for this rank.
func (p *Proc) Alltoallv(c *Comm, data []float64, sendCounts, recvCounts []int) []float64 {
	p.CC.Tick()
	sumCounts(c, sendCounts)
	total := sumCounts(c, recvCounts)
	for l := 0; l < c.Size(); l++ {
		if l == c.local {
			continue
		}
		off := offsetOf(sendCounts, l)
		p.Send(c, l, internalTag, data[off:off+sendCounts[l]])
	}
	out := make([]float64, total)
	selfOff := offsetOf(sendCounts, c.local)
	copy(out[offsetOf(recvCounts, c.local):], data[selfOff:selfOff+sendCounts[c.local]])
	for l := 0; l < c.Size(); l++ {
		if l == c.local {
			continue
		}
		buf, _ := p.Recv(c, l, internalTag)
		copy(out[offsetOf(recvCounts, l):offsetOf(recvCounts, l)+recvCounts[l]], buf)
	}
	return out
}
