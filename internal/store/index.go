package store

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/conc"
	"repro/internal/core"
	"repro/internal/mpi"
)

// This file is the campaign index: the store's queryable summary of every
// persisted campaign, one entry per canonical setup key. The index is what
// turns the store from a snapshot filer into a service — `compi report`
// answers "which setups found error X", "coverage by target", and "cache
// contribution by setup" from index.json alone, without replaying or even
// loading a snapshot.
//
// The index is derived data. Every entry is computed by one function
// (deriveIndexEntry) from exactly three sources — the setup key, its
// SetupRecord, and the campaign snapshot (params resolved from the batch
// manifests) — whether the entry is written incrementally at campaign
// completion (sched.runOne, the fleet coordinator) or rebuilt wholesale by
// Reindex. Incremental and rebuilt indexes are therefore byte-identical by
// construction, which the store tests pin, and a lost or corrupted
// index.json is never more than one Reindex away from recovery.
//
// index.json is schema-versioned and checksummed like the UNSAT cache:
// verification failure on load reports a descriptive error and the reader
// falls back to Reindex rather than serving garbage.

// IndexVersion is the index.json schema version.
const IndexVersion = 1

// IndexError is one distinct error key a campaign found: the rank status
// class plus the deduplicated message (the same key Result.DistinctErrors
// groups by).
type IndexError struct {
	Status string `json:"status"`
	Msg    string `json:"msg"`
}

// IndexEntry summarizes one campaign: identity (setup key, target, campaign
// file, batch), outcome (iterations, coverage, errors), and solver-cache
// economics (refutations contributed to the store-wide cache, solver calls
// skipped thanks to it).
type IndexEntry struct {
	Key      string `json:"key"`
	Target   string `json:"target"`
	Campaign string `json:"campaign"`
	Batch    string `json:"batch,omitempty"`
	Iters    int    `json:"iters"`

	// Branches is the campaign's covered-branch count and CoverageFP a
	// fingerprint over the exact covered branch and function sets — two
	// campaigns with equal fingerprints reached identical coverage.
	Branches   int    `json:"branches"`
	CoverageFP string `json:"coverageFP"`

	// Errors is the campaign's distinct error keys, sorted; Deadlocks
	// counts the distinct deadlock keys among them.
	Errors    []IndexError `json:"errors,omitempty"`
	Deadlocks int          `json:"deadlocks,omitempty"`

	// UnsatContrib is the number of proven refutations the campaign
	// contributed to the store-wide UNSAT cache; RefutedSkips the solver
	// calls it answered from its own refuted set without solving.
	UnsatContrib int `json:"unsatContrib,omitempty"`
	RefutedSkips int `json:"refutedSkips,omitempty"`

	// Params is the campaign parameter bag, resolved from the batch
	// manifest that ran the setup (params are part of the canonical key,
	// so any manifest entry with this key carries the same bag).
	Params map[string]int64 `json:"params,omitempty"`
}

// indexFile is the persisted index: schema version, entries sorted by key,
// and a checksum over their canonical serialization.
type indexFile struct {
	Version int          `json:"version"`
	Entries []IndexEntry `json:"entries"`
	Sum     string       `json:"sum"`
}

// indexSum checksums the canonical serialization of the entries (JSON, one
// line per entry; encoding/json sorts map keys, so the bytes are
// deterministic in the entry values).
func indexSum(entries []IndexEntry) string {
	h := sha256.New()
	for _, e := range entries {
		b, _ := json.Marshal(e)
		h.Write(b)
		h.Write([]byte{'\n'})
	}
	return fmt.Sprintf("%x", h.Sum(nil))
}

// CoverageFingerprint digests a snapshot's covered branch and function sets
// into the fingerprint index entries carry. Inputs are sorted internally, so
// the fingerprint depends only on the sets.
func CoverageFingerprint(covered []conc.BranchBit, funcs []string) string {
	bits := append([]conc.BranchBit(nil), covered...)
	sort.Slice(bits, func(i, j int) bool { return bits[i] < bits[j] })
	fns := append([]string(nil), funcs...)
	sort.Strings(fns)
	h := sha256.New()
	for _, b := range bits {
		fmt.Fprintf(h, "%d\n", b)
	}
	h.Write([]byte{0})
	for _, f := range fns {
		fmt.Fprintf(h, "%s\n", f)
	}
	return fmt.Sprintf("%x", h.Sum(nil)[:16])
}

func (s *Store) indexPath() string { return filepath.Join(s.dir, "index.json") }

// deriveIndexEntry computes the index entry for one campaign. It is the
// single derivation both the incremental writers and Reindex use.
func deriveIndexEntry(key string, rec SetupRecord, snap *core.Snapshot, params map[string]int64) IndexEntry {
	e := IndexEntry{
		Key:          key,
		Target:       snap.Program,
		Campaign:     rec.Campaign,
		Batch:        rec.Batch,
		Iters:        snap.Iters,
		Branches:     len(snap.Covered),
		CoverageFP:   CoverageFingerprint(snap.Covered, snap.Funcs),
		UnsatContrib: len(snap.Refuted),
		RefutedSkips: snap.RefutedSkips,
		Params:       params,
	}
	seen := map[IndexError]struct{}{}
	for _, rec := range snap.Errors {
		ie := IndexError{Status: rec.Status.String(), Msg: rec.Msg}
		if _, dup := seen[ie]; dup {
			continue
		}
		seen[ie] = struct{}{}
		e.Errors = append(e.Errors, ie)
		if rec.Status == mpi.StatusDeadlock {
			e.Deadlocks++
		}
	}
	sort.Slice(e.Errors, func(i, j int) bool {
		if e.Errors[i].Msg != e.Errors[j].Msg {
			return e.Errors[i].Msg < e.Errors[j].Msg
		}
		return e.Errors[i].Status < e.Errors[j].Status
	})
	return e
}

// lookupParamsLocked resolves a setup key's campaign parameter bag from the
// batch manifests. Params are hashed into the canonical key, so every
// manifest entry with this key carries the same bag; scanning batch IDs in
// sorted order just makes the (equal) answer deterministic.
func (s *Store) lookupParamsLocked(key string) map[string]int64 {
	ids, err := s.Batches()
	if err != nil {
		return nil
	}
	for _, id := range ids {
		man, err := s.LoadBatch(id)
		if err != nil || man == nil {
			continue
		}
		for _, e := range man.Entries {
			if e.Key == key && e.Spec != nil && len(e.Spec.Params) > 0 {
				return e.Spec.Params
			}
		}
	}
	return nil
}

// readIndexLocked loads and verifies index.json. A missing file is
// (nil, nil); a version mismatch, checksum mismatch, or malformed file is a
// descriptive error — the caller recovers with Reindex, never by trusting
// the bytes.
func (s *Store) readIndexLocked() ([]IndexEntry, error) {
	b, err := os.ReadFile(s.indexPath())
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	var f indexFile
	if err := json.Unmarshal(b, &f); err != nil {
		return nil, fmt.Errorf("store: campaign index: %w — run Reindex to rebuild", err)
	}
	if f.Version != IndexVersion {
		return nil, fmt.Errorf("store: campaign index has schema version %d, want %d — run Reindex to rebuild", f.Version, IndexVersion)
	}
	if got := indexSum(f.Entries); got != f.Sum {
		return nil, fmt.Errorf("store: campaign index checksum mismatch (%s != %s) — run Reindex to rebuild", got, f.Sum)
	}
	return f.Entries, nil
}

// writeIndexLocked sorts the entries by key and atomically rewrites
// index.json with a fresh checksum.
func (s *Store) writeIndexLocked(entries []IndexEntry) error {
	sort.Slice(entries, func(i, j int) bool { return entries[i].Key < entries[j].Key })
	return WriteAtomic(s.indexPath(), func(w io.Writer) error {
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		return enc.Encode(indexFile{Version: IndexVersion, Entries: entries, Sum: indexSum(entries)})
	})
}

// IndexCampaign upserts one campaign's index entry — the completion hook
// sched.runOne and the fleet coordinator call right after MarkExplored. A
// key the store cannot derive (empty: non-persistable spec) is a no-op. An
// unreadable or corrupted index is rebuilt from scratch instead of patched,
// so the incremental path can never propagate damage.
func (s *Store) IndexCampaign(key string, rec SetupRecord, snap *core.Snapshot) error {
	if key == "" {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	entries, err := s.readIndexLocked()
	if err != nil {
		_, err := s.reindexLocked()
		return err
	}
	e := deriveIndexEntry(key, rec, snap, s.lookupParamsLocked(key))
	replaced := false
	for i := range entries {
		if entries[i].Key == key {
			entries[i] = e
			replaced = true
			break
		}
	}
	if !replaced {
		entries = append(entries, e)
	}
	return s.writeIndexLocked(entries)
}

// Index returns the verified campaign index, sorted by setup key. A store
// without an index yet returns (nil, nil).
func (s *Store) Index() ([]IndexEntry, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.readIndexLocked()
}

// Reindex rebuilds index.json from the setup index and the campaign
// snapshots, returning the number of entries written. The rebuilt index is
// byte-identical to the incrementally maintained one — Reindex is the
// recovery path for a corrupted index and the upgrade path for a store
// written before the index existed.
func (s *Store) Reindex() (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.reindexLocked()
}

func (s *Store) reindexLocked() (int, error) {
	setups, err := s.readSetups()
	if err != nil {
		return 0, err
	}
	keys := make([]string, 0, len(setups))
	for k := range setups {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var entries []IndexEntry
	for _, key := range keys {
		rec := setups[key]
		snap, err := s.LoadCampaign(rec.Campaign)
		if err != nil {
			continue // no snapshot, nothing to summarize
		}
		entries = append(entries, deriveIndexEntry(key, rec, snap, s.lookupParamsLocked(key)))
	}
	if err := s.writeIndexLocked(entries); err != nil {
		return 0, err
	}
	return len(entries), nil
}

// SetupsWithError filters index entries to those whose distinct error set
// contains substr (substring match over the messages; empty matches any
// entry that found at least one error) — the "which setups found error X"
// query.
func SetupsWithError(entries []IndexEntry, substr string) []IndexEntry {
	var out []IndexEntry
	for _, e := range entries {
		for _, ie := range e.Errors {
			if substr == "" || strings.Contains(ie.Msg, substr) {
				out = append(out, e)
				break
			}
		}
	}
	return out
}

// TargetSummary is the per-target rollup ByTarget computes from the index:
// how many setups ran the target, the best single-campaign coverage, the
// distinct error keys across all setups, and the cache economics.
type TargetSummary struct {
	Target       string `json:"target"`
	Setups       int    `json:"setups"`
	Iters        int    `json:"iters"` // total across setups
	BestBranches int    `json:"bestBranches"`
	Errors       int    `json:"errors"` // distinct keys across setups
	Deadlocks    int    `json:"deadlocks"`
	UnsatContrib int    `json:"unsatContrib"`
	RefutedSkips int    `json:"refutedSkips"`
}

// ByTarget folds index entries into per-target summaries, sorted by target
// name — the "coverage by target" query.
func ByTarget(entries []IndexEntry) []TargetSummary {
	byName := map[string]*TargetSummary{}
	distinct := map[string]map[IndexError]struct{}{}
	for _, e := range entries {
		ts := byName[e.Target]
		if ts == nil {
			ts = &TargetSummary{Target: e.Target}
			byName[e.Target] = ts
			distinct[e.Target] = map[IndexError]struct{}{}
		}
		ts.Setups++
		ts.Iters += e.Iters
		if e.Branches > ts.BestBranches {
			ts.BestBranches = e.Branches
		}
		ts.UnsatContrib += e.UnsatContrib
		ts.RefutedSkips += e.RefutedSkips
		for _, ie := range e.Errors {
			distinct[e.Target][ie] = struct{}{}
		}
	}
	var out []TargetSummary
	for name, ts := range byName {
		ts.Errors = len(distinct[name])
		for ie := range distinct[name] {
			if ie.Status == mpi.StatusDeadlock.String() {
				ts.Deadlocks++
			}
		}
		out = append(out, *ts)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Target < out[j].Target })
	return out
}
