package store

import (
	"reflect"
	"testing"

	"repro/internal/core"
)

// TestCompactDropsSupersededOnly builds the superseded-file shape by hand: a
// setup re-explored under a new label leaves the old label's file behind,
// referenced only by the old batch manifest. Compact must redirect that
// manifest entry to the index's file, delete the old file, and touch nothing
// else.
func TestCompactDropsSupersededOnly(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	snap := func(iters int) *core.Snapshot {
		return &core.Snapshot{Version: core.SnapshotVersion, Program: "p", Iters: iters}
	}
	// Batch b1 explored key k1 to 10 iterations under label old.
	s.SaveCampaign("old-k1", snap(10))
	s.SaveBatch(&BatchManifest{ID: "b1", Entries: []BatchEntry{
		{Label: "old", Key: "k1", Status: StatusDone, Campaign: "old-k1", Iters: 10},
	}})
	// Batch b2 resumed k1 to 30 under label new; the index moved with it.
	s.SaveCampaign("new-k1", snap(30))
	s.SaveBatch(&BatchManifest{ID: "b2", Entries: []BatchEntry{
		{Label: "new", Key: "k1", Status: StatusDone, Campaign: "new-k1", Iters: 30},
	}})
	s.MarkExplored("k1", SetupRecord{Campaign: "new-k1", Iters: 30, Batch: "b2"})
	// An unrelated completed setup, and a checkpointing campaign mid-flight
	// (in a manifest, not yet in the index) — both must survive.
	s.SaveCampaign("solo-k2", snap(20))
	s.MarkExplored("k2", SetupRecord{Campaign: "solo-k2", Iters: 20, Batch: "b1"})
	s.SaveCampaign("running-k3", snap(4))
	s.SaveBatch(&BatchManifest{ID: "b3", Entries: []BatchEntry{
		{Label: "running", Key: "k3", Status: StatusRunning, Campaign: "running-k3", Iters: 0},
	}})

	st, err := s.Compact()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(st.Removed, []string{"old-k1"}) {
		t.Fatalf("removed %v, want exactly [old-k1]", st.Removed)
	}
	if st.Kept != 3 || st.Rewritten != 1 {
		t.Fatalf("kept=%d rewritten=%d, want 3 and 1", st.Kept, st.Rewritten)
	}
	names, _ := s.Campaigns()
	if !reflect.DeepEqual(names, []string{"new-k1", "running-k3", "solo-k2"}) {
		t.Fatalf("surviving campaigns %v", names)
	}
	// b1's entry now points at the file that actually holds k1's exploration.
	b1, _ := s.LoadBatch("b1")
	if b1.Entries[0].Campaign != "new-k1" {
		t.Fatalf("b1 entry not redirected: %+v", b1.Entries[0])
	}
	if got, err := s.LoadCampaign("new-k1"); err != nil || got.Iters != 30 {
		t.Fatalf("authoritative snapshot damaged: %v %v", got, err)
	}

	// Idempotent: a second pass finds nothing to do.
	st2, err := s.Compact()
	if err != nil || len(st2.Removed) != 0 || st2.Rewritten != 0 || st2.Kept != 3 {
		t.Fatalf("second compact not a no-op: %+v (%v)", st2, err)
	}
}
