package store

import (
	"sort"

	"repro/internal/conc"
	"repro/internal/core"
)

// MinimizeStats summarizes one Minimize pass.
type MinimizeStats struct {
	// Campaigns is the number of campaign snapshots rewritten (those with
	// at least one corpus entry dropped).
	Campaigns int
	// Dropped and Kept count corpus entries across all campaigns.
	Dropped int
	Kept    int
}

// Minimize drops, per campaign snapshot, the corpus entries whose branch
// sets are subsumed by the retained ones: a greedy set cover over the
// snapshot's per-setup coverage sets (CorpusCov) keeps the smallest
// easy-to-compute family of setups that still covers every branch the
// corpus ever touched, and everything outside it — setups whose every
// branch some retained setup also reaches — is deleted from Corpus and
// CorpusCov.
//
// Minimization is trajectory-safe by construction: the engine writes the
// corpus into snapshots but never reads it back into the exploration (the
// next inputs come from Snapshot.Inputs and the strategy position), so a
// resumed campaign's coverage and errors are identical with or without a
// Minimize between stop and resume — the pin the sched test suite holds.
// Snapshots without CorpusCov data (written before it existed) are left
// untouched: without attribution there is no subsumption proof.
func (s *Store) Minimize() (MinimizeStats, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	var st MinimizeStats
	names, err := s.Campaigns()
	if err != nil {
		return st, err
	}
	for _, name := range names {
		snap, err := s.LoadCampaign(name)
		if err != nil {
			continue // unreadable snapshots are Compact/Reindex business
		}
		dropped, kept := minimizeSnapshot(snap)
		st.Dropped += dropped
		st.Kept += kept
		if dropped == 0 {
			continue
		}
		if err := s.saveCampaignLocked(name, snap); err != nil {
			return st, err
		}
		st.Campaigns++
	}
	return st, nil
}

// minimizeSnapshot rewrites snap's corpus in place and reports how many
// corpus entries were dropped and kept. Exported logic kept separate from
// the store walk so benchmarks can drive it on in-memory snapshots.
func minimizeSnapshot(snap *core.Snapshot) (dropped, kept int) {
	if len(snap.CorpusCov) == 0 {
		return 0, len(snap.Corpus)
	}
	retained := coverRetained(snap.CorpusCov)
	for key := range snap.Corpus {
		if _, keep := retained[key]; keep {
			kept++
			continue
		}
		if _, known := snap.CorpusCov[key]; !known {
			kept++ // no attribution, no subsumption proof
			continue
		}
		delete(snap.Corpus, key)
		dropped++
	}
	for key := range snap.CorpusCov {
		if _, keep := retained[key]; !keep {
			delete(snap.CorpusCov, key)
		}
	}
	return dropped, kept
}

// coverRetained greedily picks setups until their branch sets cover the
// union of all sets: each round takes the setup covering the most
// still-uncovered branches, ties broken by the lexicographically smallest
// setup key, so the retained family is deterministic in the input.
func coverRetained(cov map[string][]conc.BranchBit) map[string]struct{} {
	uncovered := map[conc.BranchBit]struct{}{}
	for _, bits := range cov {
		for _, b := range bits {
			uncovered[b] = struct{}{}
		}
	}
	keys := make([]string, 0, len(cov))
	for k := range cov {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	retained := map[string]struct{}{}
	for len(uncovered) > 0 {
		best, bestGain := "", 0
		for _, k := range keys {
			if _, done := retained[k]; done {
				continue
			}
			gain := 0
			for _, b := range cov[k] {
				if _, miss := uncovered[b]; miss {
					gain++
				}
			}
			if gain > bestGain {
				best, bestGain = k, gain
			}
		}
		if bestGain == 0 {
			break // remaining sets add nothing (cannot happen, but terminate)
		}
		retained[best] = struct{}{}
		for _, b := range cov[best] {
			delete(uncovered, b)
		}
	}
	return retained
}

// saveCampaignLocked is SaveCampaign for callers already holding s.mu.
func (s *Store) saveCampaignLocked(name string, snap *core.Snapshot) error {
	return WriteAtomic(s.campaignPath(name), snap.Save)
}
