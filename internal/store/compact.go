package store

import (
	"encoding/json"
	"io"
	"os"
	"path/filepath"
)

// CompactStats summarizes one Compact pass.
type CompactStats struct {
	// Removed lists the campaign files deleted (names without .json), sorted.
	Removed []string
	// Kept is the number of campaign files retained.
	Kept int
	// Rewritten is the number of batch manifest entries redirected to the
	// setup index's authoritative campaign file.
	Rewritten int
}

// Compact drops superseded campaign snapshot files. A snapshot is superseded
// when the setup index points the same canonical setup at a different,
// at-least-as-far-explored campaign file — which happens whenever a later
// batch resumes a setup under a different label: the longer snapshot is saved
// under the new label's file and the index moves, leaving the old file as
// dead weight.
//
// The setup index is the resume path's single source of truth (sched.runOne
// loads snapshots only through Explored), so compaction keeps exactly what
// resume can reach: every index-referenced file survives, batch manifest
// entries pointing at a superseded file are rewritten to the index's
// authoritative file (so `compi store` inspection stays consistent), and only
// then are unreferenced files removed. Resuming after a Compact therefore
// reads the same snapshots as resuming before it — the equality the store
// test suite pins.
func (s *Store) Compact() (CompactStats, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	var st CompactStats

	setups, err := s.readSetups()
	if err != nil {
		return st, err
	}
	// iters of the index's file per campaign name, for the supersession check.
	indexIters := map[string]int{}
	referenced := map[string]bool{}
	for _, rec := range setups {
		if rec.Campaign != "" {
			referenced[rec.Campaign] = true
			if rec.Iters > indexIters[rec.Campaign] {
				indexIters[rec.Campaign] = rec.Iters
			}
		}
	}

	// Redirect batch entries whose file the index has superseded, then count
	// whatever the manifests still reference as live.
	ids, err := s.Batches()
	if err != nil {
		return st, err
	}
	for _, id := range ids {
		man, err := s.LoadBatch(id)
		if err != nil || man == nil {
			continue // an unreadable manifest pins nothing, but aborts nothing
		}
		changed := false
		for i := range man.Entries {
			e := &man.Entries[i]
			if e.Key == "" || e.Campaign == "" {
				continue
			}
			rec, ok := setups[e.Key]
			if ok && rec.Campaign != "" && rec.Campaign != e.Campaign && rec.Iters >= e.Iters {
				e.Campaign = rec.Campaign
				st.Rewritten++
				changed = true
			}
			referenced[e.Campaign] = true
		}
		if changed {
			if err := s.saveBatch(man); err != nil {
				return st, err
			}
		}
	}

	names, err := s.Campaigns()
	if err != nil {
		return st, err
	}
	for _, name := range names {
		if referenced[name] {
			st.Kept++
			continue
		}
		if err := os.Remove(filepath.Join(s.dir, "campaigns", name+".json")); err != nil && !os.IsNotExist(err) {
			return st, err
		}
		st.Removed = append(st.Removed, name)
	}
	return st, nil
}

// saveBatch is SaveBatch for callers already holding s.mu.
func (s *Store) saveBatch(m *BatchManifest) error {
	return WriteAtomic(filepath.Join(s.dir, "batches", m.ID+".json"), func(w io.Writer) error {
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		return enc.Encode(m)
	})
}
