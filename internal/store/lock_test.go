package store

import (
	"encoding/json"
	"errors"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

func TestLockRefusedWhileHeldByLiveProcess(t *testing.T) {
	dir := t.TempDir()
	// PID 1 is always alive (and usually unsignalable — EPERM must count as
	// alive), so a lockfile naming it simulates a live foreign holder.
	lockPath := filepath.Join(dir, lockFileName)
	b, _ := json.Marshal(lockInfo{PID: 1})
	if err := os.WriteFile(lockPath, b, 0o644); err != nil {
		t.Fatal(err)
	}
	_, err := Open(dir)
	var held *LockHeldError
	if !errors.As(err, &held) {
		t.Fatalf("Open under a foreign live lock: %v", err)
	}
	if held.PID != 1 || !strings.Contains(err.Error(), "process 1") {
		t.Fatalf("lock-held error does not name the holder: %v", err)
	}
}

func TestLockStolenFromDeadProcess(t *testing.T) {
	dir := t.TempDir()
	// A process we know is dead: run one to completion and take its PID.
	cmd := exec.Command("true")
	if err := cmd.Run(); err != nil {
		t.Skipf("no /bin/true: %v", err)
	}
	deadPID := cmd.Process.Pid
	b, _ := json.Marshal(lockInfo{PID: deadPID})
	if err := os.WriteFile(filepath.Join(dir, lockFileName), b, 0o644); err != nil {
		t.Fatal(err)
	}
	s, err := Open(dir)
	if err != nil {
		t.Fatalf("stale lock not reclaimed: %v", err)
	}
	defer s.Close()
	var info lockInfo
	lb, _ := os.ReadFile(filepath.Join(dir, lockFileName))
	if json.Unmarshal(lb, &info); info.PID != os.Getpid() {
		t.Fatalf("reclaimed lock names PID %d, want ours %d", info.PID, os.Getpid())
	}

	// Garbage lockfiles are treated as stale too.
	s.Close()
	os.WriteFile(filepath.Join(dir, lockFileName), []byte("}{"), 0o644)
	s2, err := Open(dir)
	if err != nil {
		t.Fatalf("garbage lock not reclaimed: %v", err)
	}
	s2.Close()
}

func TestLockReentrantWithinProcess(t *testing.T) {
	dir := t.TempDir()
	first, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	second, err := Open(dir)
	if err != nil {
		t.Fatalf("same-process reopen refused: %v", err)
	}
	// The non-owning handle's Close must not release the first handle's lock.
	if err := second.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, lockFileName)); err != nil {
		t.Fatalf("reentrant Close released the owner's lock: %v", err)
	}
	if err := first.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, lockFileName)); !os.IsNotExist(err) {
		t.Fatalf("owner Close left the lock behind: %v", err)
	}
	if err := first.Close(); err != nil { // idempotent
		t.Fatal(err)
	}

	// With the lock released, a fresh handle owns it again.
	third, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !third.ownsLock {
		t.Fatal("post-release reopen did not take ownership")
	}
	third.Close()
}
