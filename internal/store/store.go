// Package store is the campaign store: the versioned, atomically written
// persistence layer every level of the system shares — and the queryable
// system of record over it. COMPI operates through files between executions
// (§IV); the store is that idea grown up — one directory holding
// per-campaign snapshots, the store-wide proven-UNSAT cache keyed on
// canonical constraint forms (shared across targets and batches), batch
// manifests for resumable scheduler runs, a setup index that dedups
// identical shard setups across batches, and a campaign index (index.go)
// that answers cross-campaign questions — which setups found an error, what
// coverage each target reached, who contributed to the solver cache —
// without replaying anything.
//
// Layout of a store directory:
//
//	store.json        — store schema version + expr.CanonVersion at creation
//	campaigns/<name>.json — one core.Snapshot per campaign
//	solver.json       — merged store-wide UNSAT cache entries, checksummed
//	batches/<id>.json — one BatchManifest per scheduler batch
//	setups.json       — setup key → campaign file (cross-batch dedup index)
//	index.json        — per-campaign summary index, checksummed (index.go)
//
// Every write goes through WriteAtomic, so a killed process can truncate
// nothing: readers see the previous complete state. One process owns a store
// directory at a time — Open takes an advisory lockfile (see lock.go) and
// refuses directories another live process holds, naming the holder's PID.
// Within the owning process the store is goroutine-safe.
package store

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"repro/internal/core"
	"repro/internal/expr"
	"repro/internal/solver"
)

// Version is the store directory schema version.
const Version = 1

// Store is an open campaign store directory.
type Store struct {
	dir      string
	mu       sync.Mutex
	ownsLock bool
}

// storeManifest is the store.json header.
type storeManifest struct {
	Version int `json:"version"`
	Canon   int `json:"canon"`
}

// Open opens (creating if necessary) a campaign store at dir and takes the
// directory's advisory lock. It refuses directories written by a newer store
// schema, and directories locked by another live process (a *LockHeldError
// naming the holder PID). Release the lock with Close; locks left behind by
// dead processes are reclaimed automatically.
func Open(dir string) (*Store, error) {
	for _, d := range []string{dir, filepath.Join(dir, "campaigns"), filepath.Join(dir, "batches")} {
		if err := os.MkdirAll(d, 0o755); err != nil {
			return nil, err
		}
	}
	owns, err := acquireLock(dir)
	if err != nil {
		return nil, err
	}
	s := &Store{dir: dir, ownsLock: owns}
	manifestPath := filepath.Join(dir, "store.json")
	if b, err := os.ReadFile(manifestPath); err == nil {
		var m storeManifest
		if err := json.Unmarshal(b, &m); err != nil {
			s.Close()
			return nil, fmt.Errorf("store: %s: %w", manifestPath, err)
		}
		if m.Version > Version {
			s.Close()
			return nil, fmt.Errorf("store: %s has schema version %d, this build supports ≤ %d",
				dir, m.Version, Version)
		}
		return s, nil
	}
	if err := WriteAtomic(manifestPath, func(w io.Writer) error {
		return json.NewEncoder(w).Encode(storeManifest{Version: Version, Canon: expr.CanonVersion})
	}); err != nil {
		s.Close()
		return nil, err
	}
	return s, nil
}

// Dir returns the store's directory.
func (s *Store) Dir() string { return s.dir }

// CampaignName derives a filesystem-safe campaign file name from a label
// plus a disambiguating key suffix (labels alone may collide after
// sanitization).
func CampaignName(label, key string) string {
	var b strings.Builder
	for _, r := range label {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '.', r == '_', r == '-':
			b.WriteRune(r)
		default:
			b.WriteByte('-')
		}
	}
	name := b.String()
	if len(name) > 80 {
		name = name[:80]
	}
	if key != "" {
		if len(key) > 12 {
			key = key[:12]
		}
		name += "-" + key
	}
	return name
}

// campaignPath is the snapshot file a campaign name persists under.
func (s *Store) campaignPath(name string) string {
	return filepath.Join(s.dir, "campaigns", name+".json")
}

// SaveCampaign atomically writes one campaign snapshot under name.
func (s *Store) SaveCampaign(name string, snap *core.Snapshot) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return WriteAtomic(s.campaignPath(name), snap.Save)
}

// LoadCampaign reads a campaign snapshot saved under name.
func (s *Store) LoadCampaign(name string) (*core.Snapshot, error) {
	f, err := os.Open(s.campaignPath(name))
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return core.LoadSnapshot(f)
}

// Campaigns lists the stored campaign names, sorted.
func (s *Store) Campaigns() ([]string, error) {
	ents, err := os.ReadDir(filepath.Join(s.dir, "campaigns"))
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range ents {
		if n, ok := strings.CutSuffix(e.Name(), ".json"); ok && !strings.HasPrefix(n, ".") {
			names = append(names, n)
		}
	}
	sort.Strings(names)
	return names, nil
}

// solverFile is the persisted UNSAT cache: the entries plus everything
// needed to verify on load that serving them is still sound — the canonical-
// form algorithm version they were keyed under and a checksum over the
// entries. Verification failure discards the whole cache: a cold second run
// is always correct, a warm run against re-keyed or corrupted entries might
// not be.
type solverFile struct {
	Version int                 `json:"version"`
	Canon   int                 `json:"canon"`
	Entries []solver.UnsatEntry `json:"entries"`
	Sum     string              `json:"sum"`
}

// entrySum checksums the canonical serialization of the entries.
func entrySum(entries []solver.UnsatEntry) string {
	h := sha256.New()
	for _, e := range entries {
		fmt.Fprintf(h, "%s,%d,%d\n", e.Key, e.Lo, e.Hi)
	}
	return fmt.Sprintf("%x", h.Sum(nil))
}

// SaveSolverCache merges svc's proven-UNSAT cache into the store. The cache
// is store-wide, not per-batch: entries are keyed by expr.CanonicalKey,
// which is rename/reorder-invariant and carries no target identity, so a
// refutation proven under one target warms every later batch on any target.
// Saving therefore unions the service's entries with whatever solver.json
// already holds instead of overwriting it — batches accumulate into one
// shared cache, and a batch that imported nothing can never erase earlier
// batches' contributions. Unverifiable existing entries (stale canon
// version, checksum mismatch) are discarded during the merge, the same
// policy LoadSolverCacheInto applies on read.
func (s *Store) SaveSolverCache(svc *solver.Service) error {
	entries := svc.ExportUnsat()
	s.mu.Lock()
	defer s.mu.Unlock()
	if existing, err := s.readSolverEntriesLocked(); err == nil {
		seen := make(map[solver.UnsatEntry]struct{}, len(entries))
		for _, e := range entries {
			seen[e] = struct{}{}
		}
		for _, e := range existing {
			if _, dup := seen[e]; !dup {
				entries = append(entries, e)
			}
		}
		solver.SortUnsatEntries(entries)
	}
	return WriteAtomic(filepath.Join(s.dir, "solver.json"), func(w io.Writer) error {
		return json.NewEncoder(w).Encode(solverFile{
			Version: Version,
			Canon:   expr.CanonVersion,
			Entries: entries,
			Sum:     entrySum(entries),
		})
	})
}

// readSolverEntriesLocked loads and verifies solver.json, returning the
// entries. Missing file is (nil, nil); anything unverifiable is an error
// describing why the cache is unusable.
func (s *Store) readSolverEntriesLocked() ([]solver.UnsatEntry, error) {
	b, err := os.ReadFile(filepath.Join(s.dir, "solver.json"))
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	var sf solverFile
	if err := json.Unmarshal(b, &sf); err != nil {
		return nil, fmt.Errorf("store: solver cache: %w", err)
	}
	if sf.Version != Version {
		return nil, fmt.Errorf("store: solver cache has store version %d, want %d", sf.Version, Version)
	}
	if sf.Canon != expr.CanonVersion {
		return nil, fmt.Errorf("store: solver cache keyed under canon version %d, this build uses %d — discarding",
			sf.Canon, expr.CanonVersion)
	}
	if got := entrySum(sf.Entries); got != sf.Sum {
		return nil, fmt.Errorf("store: solver cache checksum mismatch (%s != %s) — discarding", got, sf.Sum)
	}
	return sf.Entries, nil
}

// LoadSolverCacheInto imports the persisted UNSAT cache into svc and returns
// the number of entries admitted. Verification-on-load: a missing file is
// (0, nil); a version or expr.CanonVersion mismatch, a checksum mismatch, or
// malformed entries discard the cache entirely — svc is left untouched and
// an error describes why. Stale entries can therefore never change results;
// the worst failure mode is a cold start.
func (s *Store) LoadSolverCacheInto(svc *solver.Service) (int, error) {
	s.mu.Lock()
	entries, err := s.readSolverEntriesLocked()
	s.mu.Unlock()
	if err != nil || entries == nil {
		return 0, err
	}
	return svc.ImportUnsat(entries), nil
}
