package store

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"syscall"
	"time"
)

// Multi-process locking. The store's writes are individually atomic, but two
// processes interleaving read-modify-write cycles (two schedulers resuming
// the same batch, a fleet coordinator plus a stray `compi sched`) would race
// each other's setup index and manifests. An advisory lockfile makes that a
// refused Open instead of silent corruption: the first opener creates
// LOCK (O_EXCL, so creation is the atomic acquire) recording its PID; later
// openers from other processes get a *LockHeldError naming the holder.
//
// The lock is self-cleaning: a holder that exited without Close leaves a
// LOCK whose PID no longer runs, and the next Open steals it. Liveness is
// probed with signal 0 — EPERM counts as alive (the process exists, we just
// may not signal it). Re-opening from the holder process itself succeeds
// without taking ownership, so one process may hold several *Store handles
// on a directory and the first handle's Close releases the lock.

// lockFileName is the advisory lockfile inside a store directory.
const lockFileName = "LOCK"

// lockInfo is the lockfile content: enough to name the holder in errors.
type lockInfo struct {
	PID      int    `json:"pid"`
	Acquired string `json:"acquired,omitempty"`
}

// LockHeldError reports that another live process holds a store's lock.
type LockHeldError struct {
	Dir string
	PID int
}

func (e *LockHeldError) Error() string {
	return fmt.Sprintf("store: %s is locked by running process %d (stale locks from dead processes are reclaimed automatically; remove %s only if that PID is not a store user)",
		e.Dir, e.PID, filepath.Join(e.Dir, lockFileName))
}

// pidAlive reports whether pid names a running process. Signal 0 performs
// the existence check without delivering anything; EPERM means the process
// exists but belongs to someone else, which still counts as alive.
func pidAlive(pid int) bool {
	if pid <= 0 {
		return false
	}
	err := syscall.Kill(pid, 0)
	return err == nil || err == syscall.EPERM
}

// acquireLock takes the store lock for this process. It returns owns=true
// when this call created the lockfile (and Close should remove it), and
// owns=false when the lock was already held by this same process. A lock
// held by another live process is a *LockHeldError.
func acquireLock(dir string) (owns bool, err error) {
	path := filepath.Join(dir, lockFileName)
	self := os.Getpid()
	for attempt := 0; attempt < 5; attempt++ {
		f, err := os.OpenFile(path, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
		if err == nil {
			enc := json.NewEncoder(f)
			werr := enc.Encode(lockInfo{PID: self, Acquired: time.Now().UTC().Format(time.RFC3339)})
			if cerr := f.Close(); werr == nil {
				werr = cerr
			}
			if werr != nil {
				os.Remove(path)
				return false, werr
			}
			return true, nil
		}
		if !os.IsExist(err) {
			return false, err
		}
		b, rerr := os.ReadFile(path)
		if rerr != nil {
			if os.IsNotExist(rerr) {
				continue // holder released between our O_EXCL failure and the read
			}
			return false, rerr
		}
		var info lockInfo
		if jerr := json.Unmarshal(b, &info); jerr == nil && info.PID == self {
			return false, nil // reentrant: this process already holds the lock
		} else if jerr == nil && pidAlive(info.PID) {
			return false, &LockHeldError{Dir: dir, PID: info.PID}
		}
		// Dead holder (or unparseable lockfile): steal. Remove and loop back
		// to the O_EXCL create, so concurrent stealers race on creation, not
		// on the write.
		if rmerr := os.Remove(path); rmerr != nil && !os.IsNotExist(rmerr) {
			return false, rmerr
		}
	}
	return false, fmt.Errorf("store: could not acquire %s after repeated contention", path)
}

// Close releases the store lock if this handle owns it. Safe to call more
// than once; handles that did not acquire ownership (reentrant opens) leave
// the lock for the owning handle.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.ownsLock {
		return nil
	}
	s.ownsLock = false
	err := os.Remove(filepath.Join(s.dir, lockFileName))
	if os.IsNotExist(err) {
		return nil
	}
	return err
}
