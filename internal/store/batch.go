package store

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/spec"
)

// Batch entry statuses. A batch whose process was killed leaves entries in
// StatusRunning; the campaign snapshot on disk (written every checkpoint)
// is the authoritative resume point, so at most the in-flight iteration is
// lost.
const (
	StatusPending = "pending"
	StatusRunning = "running"
	StatusDone    = "done"
	StatusReused  = "reused" // answered from a prior batch's campaign
	StatusError   = "error"  // spec error (unknown target etc.)
)

// BatchEntry is one campaign of a scheduler batch.
type BatchEntry struct {
	Label    string `json:"label"`
	Key      string `json:"key,omitempty"` // setup key; empty = not persistable
	Status   string `json:"status"`
	Campaign string `json:"campaign,omitempty"` // campaign file name (no .json)
	Iters    int    `json:"iters,omitempty"`
	Error    string `json:"error,omitempty"`

	// Spec is the portable campaign this entry ran, stamped by
	// sched.PrepareBatch so a manifest is self-describing: `compi store`
	// can show what a batch actually asked for, and a reloaded batch whose
	// spec drifted from the stored one is detected (and diffed) instead of
	// silently reattached. Nil for entries written before the spec layer
	// existed or for non-portable specs.
	Spec *spec.Campaign `json:"spec,omitempty"`
}

// BatchManifest records a scheduler batch: which campaigns it contains and
// how far each has come. sched.Run writes it when a store is attached and
// consults it (plus the setup index) to resume a partially-completed batch.
type BatchManifest struct {
	ID      string       `json:"id"`
	Entries []BatchEntry `json:"entries"`
}

// SaveBatch atomically writes the batch manifest.
func (s *Store) SaveBatch(m *BatchManifest) error {
	if m.ID == "" {
		return fmt.Errorf("store: batch manifest without ID")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return WriteAtomic(filepath.Join(s.dir, "batches", m.ID+".json"), func(w io.Writer) error {
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		return enc.Encode(m)
	})
}

// LoadBatch reads a batch manifest by ID; a missing batch returns
// (nil, nil).
func (s *Store) LoadBatch(id string) (*BatchManifest, error) {
	b, err := os.ReadFile(filepath.Join(s.dir, "batches", id+".json"))
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	var m BatchManifest
	if err := json.Unmarshal(b, &m); err != nil {
		return nil, fmt.Errorf("store: batch %s: %w", id, err)
	}
	return &m, nil
}

// Batches lists the stored batch IDs, sorted.
func (s *Store) Batches() ([]string, error) {
	ents, err := os.ReadDir(filepath.Join(s.dir, "batches"))
	if err != nil {
		return nil, err
	}
	var ids []string
	for _, e := range ents {
		if id, ok := strings.CutSuffix(e.Name(), ".json"); ok && !strings.HasPrefix(id, ".") {
			ids = append(ids, id)
		}
	}
	sort.Strings(ids)
	return ids, nil
}

// SetupRecord locates the stored exploration of one canonical campaign
// setup: which campaign file holds it, how many iterations it has run, and
// which batch ran it.
type SetupRecord struct {
	Campaign string `json:"campaign"`
	Iters    int    `json:"iters"`
	Batch    string `json:"batch,omitempty"`
}

// setupsPath is the setup index file.
func (s *Store) setupsPath() string { return filepath.Join(s.dir, "setups.json") }

func (s *Store) readSetups() (map[string]SetupRecord, error) {
	b, err := os.ReadFile(s.setupsPath())
	if os.IsNotExist(err) {
		return map[string]SetupRecord{}, nil
	}
	if err != nil {
		return nil, err
	}
	var m map[string]SetupRecord
	if err := json.Unmarshal(b, &m); err != nil {
		return nil, fmt.Errorf("store: setup index: %w", err)
	}
	if m == nil {
		m = map[string]SetupRecord{}
	}
	return m, nil
}

// MarkExplored records (read-modify-write) that the canonical setup key has
// been explored up to rec.Iters in rec.Campaign. Later batches consult this
// through Explored to skip or resume identical setups.
func (s *Store) MarkExplored(key string, rec SetupRecord) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	m, err := s.readSetups()
	if err != nil {
		return err
	}
	m[key] = rec
	return WriteAtomic(s.setupsPath(), func(w io.Writer) error {
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		return enc.Encode(m)
	})
}

// Explored looks up a canonical setup key in the index.
func (s *Store) Explored(key string) (SetupRecord, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	m, err := s.readSetups()
	if err != nil {
		return SetupRecord{}, false
	}
	rec, ok := m[key]
	return rec, ok
}

// Setups returns a copy of the whole setup index.
func (s *Store) Setups() (map[string]SetupRecord, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.readSetups()
}
