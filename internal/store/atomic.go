package store

import (
	"io"
	"os"
	"path/filepath"
)

// WriteAtomic writes a file by streaming into a temp file in the same
// directory, syncing, and renaming it over the destination. A crash at any
// point leaves either the old content or the new content, never a truncated
// mix — this is the primitive every store write (and `compi -state`) goes
// through. The write callback receives the temp file; if it returns an
// error, the destination is untouched.
func WriteAtomic(path string, write func(io.Writer) error) error {
	dir := filepath.Dir(path)
	f, err := os.CreateTemp(dir, "."+filepath.Base(path)+".tmp-*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	defer func() {
		if tmp != "" {
			os.Remove(tmp)
		}
	}()
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		return err
	}
	tmp = ""
	return nil
}
