package store

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/expr"
	"repro/internal/solver"
)

func TestWriteAtomicBasics(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "f.json")
	if err := WriteAtomic(path, func(w io.Writer) error {
		_, err := io.WriteString(w, "one")
		return err
	}); err != nil {
		t.Fatal(err)
	}
	if b, _ := os.ReadFile(path); string(b) != "one" {
		t.Fatalf("content %q", b)
	}

	// A failing write callback must leave the previous content and no temp
	// files behind.
	err := WriteAtomic(path, func(w io.Writer) error {
		io.WriteString(w, "gar")
		return fmt.Errorf("boom")
	})
	if err == nil || !strings.Contains(err.Error(), "boom") {
		t.Fatalf("err = %v", err)
	}
	if b, _ := os.ReadFile(path); string(b) != "one" {
		t.Fatalf("failed write clobbered destination: %q", b)
	}
	ents, _ := os.ReadDir(dir)
	if len(ents) != 1 {
		t.Fatalf("temp files left behind: %v", ents)
	}
}

func TestWriteAtomicConcurrent(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "f.txt")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			WriteAtomic(path, func(w io.Writer) error {
				_, err := fmt.Fprintf(w, "writer-%d", i)
				return err
			})
		}(i)
	}
	wg.Wait()
	// Whatever won, the file is one complete write, never interleaved.
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(b), "writer-") || len(b) > len("writer-9") {
		t.Fatalf("torn content: %q", b)
	}
}

func TestOpenCreatesAndValidatesManifest(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "store")
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if s.Dir() != dir {
		t.Fatalf("dir %q", s.Dir())
	}
	var m storeManifest
	b, err := os.ReadFile(filepath.Join(dir, "store.json"))
	if err != nil {
		t.Fatal(err)
	}
	if json.Unmarshal(b, &m); m.Version != Version || m.Canon != expr.CanonVersion {
		t.Fatalf("manifest %+v", m)
	}
	if _, err := Open(dir); err != nil {
		t.Fatalf("reopen: %v", err)
	}

	// A store written by a newer schema is refused.
	os.WriteFile(filepath.Join(dir, "store.json"),
		[]byte(fmt.Sprintf(`{"version":%d}`, Version+1)), 0o644)
	if _, err := Open(dir); err == nil || !strings.Contains(err.Error(), "schema version") {
		t.Fatalf("newer store accepted: %v", err)
	}
}

func TestCampaignRoundTrip(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	snap := &core.Snapshot{
		Version: core.SnapshotVersion, Program: "skeleton",
		Inputs: map[string]int64{"x": 7}, Prev: map[string]int64{"x": 7},
		Iters: 3, RNG: 42,
		Stats: []core.IterationStat{{Iter: 0}, {Iter: 1}, {Iter: 2}},
	}
	if err := s.SaveCampaign("camp-a", snap); err != nil {
		t.Fatal(err)
	}
	got, err := s.LoadCampaign("camp-a")
	if err != nil {
		t.Fatal(err)
	}
	if got.Program != "skeleton" || got.Iters != 3 || got.RNG != 42 || len(got.Stats) != 3 {
		t.Fatalf("round trip lost fields: %+v", got)
	}
	names, err := s.Campaigns()
	if err != nil || len(names) != 1 || names[0] != "camp-a" {
		t.Fatalf("campaigns %v (%v)", names, err)
	}
	if _, err := s.LoadCampaign("missing"); err == nil {
		t.Fatal("missing campaign load succeeded")
	}
}

func TestCampaignNameSanitizes(t *testing.T) {
	n := CampaignName("sked/np=8 focus:0", "abcdef0123456789")
	if strings.ContainsAny(n, "/=: ") {
		t.Fatalf("unsanitized name %q", n)
	}
	if !strings.HasSuffix(n, "-abcdef012345") {
		t.Fatalf("key suffix missing: %q", n)
	}
	long := CampaignName(strings.Repeat("x", 200), "k")
	if len(long) > 85 {
		t.Fatalf("name not truncated: %d chars", len(long))
	}
}

func TestBatchRoundTrip(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := s.SaveBatch(&BatchManifest{}); err == nil {
		t.Fatal("manifest without ID accepted")
	}
	m := &BatchManifest{ID: "batch-1", Entries: []BatchEntry{
		{Label: "a", Key: "k1", Status: StatusDone, Campaign: "a-k1", Iters: 10},
		{Label: "b", Status: StatusPending},
	}}
	if err := s.SaveBatch(m); err != nil {
		t.Fatal(err)
	}
	got, err := s.LoadBatch("batch-1")
	if err != nil || got == nil {
		t.Fatalf("load: %v %v", got, err)
	}
	if len(got.Entries) != 2 || got.Entries[0].Status != StatusDone {
		t.Fatalf("entries %+v", got.Entries)
	}
	if miss, err := s.LoadBatch("nope"); miss != nil || err != nil {
		t.Fatalf("missing batch: %v %v", miss, err)
	}
	ids, err := s.Batches()
	if err != nil || len(ids) != 1 || ids[0] != "batch-1" {
		t.Fatalf("batches %v (%v)", ids, err)
	}
}

func TestSetupIndex(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Explored("k1"); ok {
		t.Fatal("empty index reported a setup")
	}
	if err := s.MarkExplored("k1", SetupRecord{Campaign: "c1", Iters: 50, Batch: "b1"}); err != nil {
		t.Fatal(err)
	}
	if err := s.MarkExplored("k1", SetupRecord{Campaign: "c1", Iters: 100, Batch: "b2"}); err != nil {
		t.Fatal(err)
	}
	rec, ok := s.Explored("k1")
	if !ok || rec.Iters != 100 || rec.Batch != "b2" {
		t.Fatalf("record %+v ok=%v", rec, ok)
	}
	all, err := s.Setups()
	if err != nil || len(all) != 1 {
		t.Fatalf("setups %v (%v)", all, err)
	}
}

// warmService returns a service with n proven-UNSAT conjunctions cached.
func warmService(t *testing.T, n int64) *solver.Service {
	t.Helper()
	svc := solver.NewService(solver.ServiceConfig{})
	for i := int64(0); i < n; i++ {
		preds := []expr.Pred{
			expr.Compare(expr.VarRef(0), expr.Const(i), expr.LE),
			expr.Compare(expr.VarRef(0), expr.Const(i+1), expr.GE),
		}
		if _, ok := svc.SolveIncremental(preds, nil, solver.Options{Seed: 1}); ok {
			t.Fatalf("conjunction %d unexpectedly SAT", i)
		}
	}
	return svc
}

func TestSolverCacheRoundTrip(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	// No cache file yet: cold start, no error.
	fresh := solver.NewService(solver.ServiceConfig{})
	if n, err := s.LoadSolverCacheInto(fresh); n != 0 || err != nil {
		t.Fatalf("missing cache: n=%d err=%v", n, err)
	}

	if err := s.SaveSolverCache(warmService(t, 6)); err != nil {
		t.Fatal(err)
	}
	warm := solver.NewService(solver.ServiceConfig{})
	n, err := s.LoadSolverCacheInto(warm)
	if err != nil || n != 6 {
		t.Fatalf("load: n=%d err=%v", n, err)
	}
	if warm.UnsatLen() != 6 {
		t.Fatalf("UnsatLen %d", warm.UnsatLen())
	}
}

func TestSolverCacheVerificationOnLoad(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := s.SaveSolverCache(warmService(t, 4)); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(s.Dir(), "solver.json")
	orig, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	corrupt := func(mutate func(*solverFile)) error {
		var sf solverFile
		if err := json.Unmarshal(orig, &sf); err != nil {
			t.Fatal(err)
		}
		mutate(&sf)
		b, _ := json.Marshal(sf)
		os.WriteFile(path, b, 0o644)
		svc := solver.NewService(solver.ServiceConfig{})
		n, err := s.LoadSolverCacheInto(svc)
		if n != 0 || svc.UnsatLen() != 0 {
			t.Fatalf("corrupted cache admitted %d entries (UnsatLen %d)", n, svc.UnsatLen())
		}
		return err
	}

	// Tampered entry: checksum catches it.
	if err := corrupt(func(sf *solverFile) { sf.Entries[0].Lo++ }); err == nil ||
		!strings.Contains(err.Error(), "checksum") {
		t.Fatalf("tampered entries: %v", err)
	}
	// Canonical-form algorithm changed: keys may no longer mean the same.
	if err := corrupt(func(sf *solverFile) { sf.Canon++ }); err == nil ||
		!strings.Contains(err.Error(), "canon") {
		t.Fatalf("canon mismatch: %v", err)
	}
	// Different store schema version.
	if err := corrupt(func(sf *solverFile) { sf.Version++ }); err == nil ||
		!strings.Contains(err.Error(), "version") {
		t.Fatalf("version mismatch: %v", err)
	}
	// Not JSON at all.
	os.WriteFile(path, []byte("}{"), 0o644)
	if n, err := s.LoadSolverCacheInto(solver.NewService(solver.ServiceConfig{})); err == nil || n != 0 {
		t.Fatalf("garbage cache: n=%d err=%v", n, err)
	}
}
