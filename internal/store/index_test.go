package store

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"repro/internal/conc"
	"repro/internal/core"
	"repro/internal/expr"
	"repro/internal/mpi"
	"repro/internal/solver"
)

// indexedStore builds a store with two campaigns on different targets (one
// with a deadlock error) indexed incrementally, the way sched and the fleet
// coordinator do it at campaign completion.
func indexedStore(t *testing.T) *Store {
	t.Helper()
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	snapA := &core.Snapshot{
		Version: core.SnapshotVersion, Program: "stencil", Iters: 40,
		Covered: []conc.BranchBit{3, 1, 7}, Funcs: []string{"main", "halo"},
		Errors: []core.ErrorRecord{
			{Status: mpi.StatusCrash, Msg: "assert: halo mismatch"},
			{Status: mpi.StatusCrash, Msg: "assert: halo mismatch"}, // dup key
		},
		Refuted: []string{"r1", "r2"}, RefutedSkips: 5,
	}
	snapB := &core.Snapshot{
		Version: core.SnapshotVersion, Program: "mworder", Iters: 25,
		Covered: []conc.BranchBit{2, 9},
		Errors: []core.ErrorRecord{
			{Status: mpi.StatusDeadlock, Msg: "deadlock: wait-for cycle 0->2->0"},
		},
	}
	for name, snap := range map[string]*core.Snapshot{"camp-a": snapA, "camp-b": snapB} {
		if err := s.SaveCampaign(name, snap); err != nil {
			t.Fatal(err)
		}
	}
	recA := SetupRecord{Campaign: "camp-a", Iters: 40, Batch: "batch-1"}
	recB := SetupRecord{Campaign: "camp-b", Iters: 25, Batch: "batch-1"}
	if err := s.MarkExplored("key-a", recA); err != nil {
		t.Fatal(err)
	}
	if err := s.MarkExplored("key-b", recB); err != nil {
		t.Fatal(err)
	}
	if err := s.IndexCampaign("key-a", recA, snapA); err != nil {
		t.Fatal(err)
	}
	if err := s.IndexCampaign("key-b", recB, snapB); err != nil {
		t.Fatal(err)
	}
	return s
}

func TestIndexCampaignAndQueries(t *testing.T) {
	s := indexedStore(t)
	entries, err := s.Index()
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 2 || entries[0].Key != "key-a" || entries[1].Key != "key-b" {
		t.Fatalf("entries %+v", entries)
	}
	a := entries[0]
	if a.Target != "stencil" || a.Iters != 40 || a.Branches != 3 ||
		a.UnsatContrib != 2 || a.RefutedSkips != 5 {
		t.Fatalf("entry a %+v", a)
	}
	if len(a.Errors) != 1 {
		t.Fatalf("duplicate error keys not collapsed: %+v", a.Errors)
	}
	if a.CoverageFP != CoverageFingerprint([]conc.BranchBit{1, 3, 7}, []string{"halo", "main"}) {
		t.Fatal("fingerprint not order-invariant")
	}

	// "Which setups found error X."
	hits := SetupsWithError(entries, "wait-for cycle")
	if len(hits) != 1 || hits[0].Key != "key-b" {
		t.Fatalf("error query %+v", hits)
	}
	if all := SetupsWithError(entries, ""); len(all) != 2 {
		t.Fatalf("empty substring should match any erroring setup: %+v", all)
	}

	// "Coverage by target."
	byTarget := ByTarget(entries)
	if len(byTarget) != 2 || byTarget[0].Target != "mworder" || byTarget[1].Target != "stencil" {
		t.Fatalf("targets %+v", byTarget)
	}
	if byTarget[0].Deadlocks != 1 || byTarget[0].BestBranches != 2 {
		t.Fatalf("mworder summary %+v", byTarget[0])
	}
	if byTarget[1].UnsatContrib != 2 || byTarget[1].RefutedSkips != 5 {
		t.Fatalf("stencil cache economics %+v", byTarget[1])
	}
}

// TestIndexIncrementalEqualsRebuilt pins the derivation contract: the
// incrementally maintained index and a from-scratch Reindex produce
// byte-identical files.
func TestIndexIncrementalEqualsRebuilt(t *testing.T) {
	s := indexedStore(t)
	path := s.indexPath()
	incremental, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	n, err := s.Reindex()
	if err != nil || n != 2 {
		t.Fatalf("reindex: n=%d err=%v", n, err)
	}
	rebuilt, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(incremental) != string(rebuilt) {
		t.Fatalf("incremental and rebuilt indexes differ:\n%s\nvs\n%s", incremental, rebuilt)
	}
}

// TestIndexCorruptionDetectedAndRecovered pins verification-on-load: a
// truncated or garbage index.json is a descriptive error pointing at
// Reindex, and Reindex recovers the exact previous bytes.
func TestIndexCorruptionDetectedAndRecovered(t *testing.T) {
	s := indexedStore(t)
	path := s.indexPath()
	orig, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	for name, bytes := range map[string][]byte{
		"truncated": orig[:len(orig)/2],
		"garbage":   []byte("}{ not json"),
		"tampered":  []byte(strings.Replace(string(orig), `"iters": 40`, `"iters": 41`, 1)),
	} {
		if err := os.WriteFile(path, bytes, 0o644); err != nil {
			t.Fatal(err)
		}
		_, err := s.Index()
		if err == nil {
			t.Fatalf("%s index served", name)
		}
		if !strings.Contains(err.Error(), "Reindex") {
			t.Fatalf("%s error does not point at recovery: %v", name, err)
		}
	}

	if n, err := s.Reindex(); err != nil || n != 2 {
		t.Fatalf("reindex: n=%d err=%v", n, err)
	}
	recovered, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(recovered) != string(orig) {
		t.Fatal("reindex did not recover the exact index")
	}

	// The incremental writer self-heals too: an upsert over a corrupt index
	// rebuilds instead of patching.
	os.WriteFile(path, []byte("garbage"), 0o644)
	snap, err := s.LoadCampaign("camp-a")
	if err != nil {
		t.Fatal(err)
	}
	rec, _ := s.Explored("key-a")
	if err := s.IndexCampaign("key-a", rec, snap); err != nil {
		t.Fatal(err)
	}
	healed, _ := os.ReadFile(path)
	if string(healed) != string(orig) {
		t.Fatal("incremental writer did not heal the corrupt index")
	}
}

// TestSolverCacheMergeOnSave pins the store-wide cache semantics: saving a
// second service's cache unions with what solver.json already holds instead
// of overwriting it, so one batch can never erase another's refutations.
func TestSolverCacheMergeOnSave(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := s.SaveSolverCache(warmService(t, 4)); err != nil {
		t.Fatal(err)
	}
	// The second service overlaps the first (entries 0..5 vs 0..3): the
	// merged cache must hold the union, not either side alone.
	if err := s.SaveSolverCache(warmService(t, 6)); err != nil {
		t.Fatal(err)
	}
	svc := solver.NewService(solver.ServiceConfig{})
	if n, err := s.LoadSolverCacheInto(svc); err != nil || n != 6 {
		t.Fatalf("merged cache: n=%d err=%v", n, err)
	}
	// Saving a service with nothing new keeps the cache intact.
	if err := s.SaveSolverCache(solver.NewService(solver.ServiceConfig{})); err != nil {
		t.Fatal(err)
	}
	if n, err := s.LoadSolverCacheInto(solver.NewService(solver.ServiceConfig{})); err != nil || n != 6 {
		t.Fatalf("empty save erased entries: n=%d err=%v", n, err)
	}
	// A corrupt existing file is healed, not merged with.
	path := filepath.Join(s.Dir(), "solver.json")
	os.WriteFile(path, []byte("}{"), 0o644)
	if err := s.SaveSolverCache(warmService(t, 2)); err != nil {
		t.Fatal(err)
	}
	if n, err := s.LoadSolverCacheInto(solver.NewService(solver.ServiceConfig{})); err != nil || n != 2 {
		t.Fatalf("post-heal cache: n=%d err=%v", n, err)
	}
}

// TestUnsatCacheSharesAcrossTargets pins the cross-target mechanism: a
// refutation proven under one target answers the same constraint shape from
// another target — different variable IDs, different conjunct order — as a
// cache hit, because entries are keyed by the rename/reorder-invariant
// expr.CanonicalKey.
func TestUnsatCacheSharesAcrossTargets(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	// Target one proves x0 <= 3 ∧ x0 >= 4 UNSAT and persists the cache.
	one := solver.NewService(solver.ServiceConfig{})
	if _, ok := one.SolveIncremental([]expr.Pred{
		expr.Compare(expr.VarRef(0), expr.Const(3), expr.LE),
		expr.Compare(expr.VarRef(0), expr.Const(4), expr.GE),
	}, nil, solver.Options{Seed: 1}); ok {
		t.Fatal("conjunction unexpectedly SAT")
	}
	if err := s.SaveSolverCache(one); err != nil {
		t.Fatal(err)
	}

	// Target two derives the same shape over its own variable space:
	// different variable ID, conjuncts in the opposite order.
	two := solver.NewService(solver.ServiceConfig{})
	if n, err := s.LoadSolverCacheInto(two); err != nil || n == 0 {
		t.Fatalf("warm load: n=%d err=%v", n, err)
	}
	res, ok := two.SolveIncremental([]expr.Pred{
		expr.Compare(expr.VarRef(7), expr.Const(4), expr.GE),
		expr.Compare(expr.VarRef(7), expr.Const(3), expr.LE),
	}, nil, solver.Options{Seed: 9})
	if ok {
		t.Fatalf("renamed conjunction SAT: %+v", res)
	}
	if st := two.Stats(); st.UnsatHits != 1 || st.Misses != 0 {
		t.Fatalf("expected a pure cache hit, stats %+v", st)
	}
}

func TestMinimizeDropsSubsumedCorpus(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	snap := &core.Snapshot{
		Version: core.SnapshotVersion, Program: "stencil", Iters: 10,
		Corpus: map[string]map[string]int64{
			"4/0": {"x": 1}, // covers {1,2,3} — retained (biggest set)
			"4/1": {"x": 2}, // covers {1,2} — subsumed by 4/0
			"4/2": {"x": 3}, // covers {9} — retained (unique branch)
			"4/3": {"x": 4}, // no attribution — kept
		},
		CorpusCov: map[string][]conc.BranchBit{
			"4/0": {1, 2, 3},
			"4/1": {1, 2},
			"4/2": {9},
		},
	}
	if err := s.SaveCampaign("camp", snap); err != nil {
		t.Fatal(err)
	}
	stats, err := s.Minimize()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Campaigns != 1 || stats.Dropped != 1 || stats.Kept != 3 {
		t.Fatalf("stats %+v", stats)
	}
	got, err := s.LoadCampaign("camp")
	if err != nil {
		t.Fatal(err)
	}
	wantKeys := map[string]bool{"4/0": true, "4/2": true, "4/3": true}
	for k := range got.Corpus {
		if !wantKeys[k] {
			t.Fatalf("kept subsumed entry %q", k)
		}
		delete(wantKeys, k)
	}
	if len(wantKeys) != 0 {
		t.Fatalf("minimize dropped needed entries, missing %v", wantKeys)
	}
	if _, stale := got.CorpusCov["4/1"]; stale {
		t.Fatal("dropped entry's attribution survived")
	}
	// Idempotent: a second pass drops nothing.
	if stats, err := s.Minimize(); err != nil || stats.Dropped != 0 {
		t.Fatalf("second pass: %+v err=%v", stats, err)
	}
}

func TestCoverRetainedGreedy(t *testing.T) {
	// Greedy picks a (gain 4) first; b is then fully subsumed, and c and d
	// both gain exactly {5} — the lexicographic tie-break keeps c.
	retained := coverRetained(map[string][]conc.BranchBit{
		"a": {1, 2, 3, 4},
		"b": {1, 2},
		"c": {5},
		"d": {3, 4, 5},
	})
	want := map[string]struct{}{"a": {}, "c": {}}
	if !reflect.DeepEqual(retained, want) {
		t.Fatalf("retained %v, want %v", retained, want)
	}
	if got := coverRetained(nil); len(got) != 0 {
		t.Fatalf("empty cover retained %v", got)
	}
}
