package expr

import (
	"strconv"
	"strings"
	"sync"
)

// KeyMemo caches CanonicalKey results. Canonicalization (normalize, WL
// refinement, greedy minimal ordering) is the priciest per-proposal step in
// the engine's restart loop, and the loop re-derives literally identical
// predicate sequences over and over: every proposal shares the semantic
// constraints and the path prefix of the previous one, and every restart
// replays whole prefixes. A memo keyed on the exact sequence answers those
// repeats with a map lookup.
//
// Soundness: the memo key is the raw serialization of the predicate sequence
// — order-sensitive, raw variable IDs, fully parenthesized trees — which is
// injective on predicate sequences. Two sequences share a raw key only when
// they are the same predicates in the same order, and then CanonicalKey is
// trivially equal, so memoization can never produce a key a fresh
// CanonicalKey call would not. (The converse is deliberately not attempted:
// rename-equivalent sequences miss the memo and recompute — correctness
// never depends on memo hits.)
//
// Raw serialization itself is accelerated by a per-*Expr-pointer string
// cache: Expr trees are immutable by contract and heavily shared between the
// predicates of one campaign (every proposal's path prefix aliases the same
// trees), so each distinct tree is rendered once.
//
// A KeyMemo is safe for concurrent use. Memory is bounded: when either map
// exceeds the cap the memo resets (epoch flush) rather than evicting — the
// working set of a campaign is small and rebuilt in a few proposals.
type KeyMemo struct {
	mu    sync.Mutex
	cap   int
	keys  map[string]Key
	trees map[*Expr]string

	hits    int64
	lookups int64
}

// DefaultKeyMemoCap bounds the number of cached sequences (and cached tree
// renderings) before an epoch flush.
const DefaultKeyMemoCap = 1 << 14

// NewKeyMemo returns an empty memo holding at most cap entries per table
// (cap <= 0 selects DefaultKeyMemoCap).
func NewKeyMemo(cap int) *KeyMemo {
	if cap <= 0 {
		cap = DefaultKeyMemoCap
	}
	return &KeyMemo{
		cap:   cap,
		keys:  map[string]Key{},
		trees: map[*Expr]string{},
	}
}

// Key returns CanonicalKey(preds), from cache when this exact sequence was
// seen before. A nil memo computes fresh.
func (m *KeyMemo) Key(preds []Pred) Key {
	if m == nil {
		return CanonicalKey(preds)
	}
	m.mu.Lock()
	m.lookups++
	raw := m.rawLocked(preds)
	if k, ok := m.keys[raw]; ok {
		m.hits++
		m.mu.Unlock()
		return k
	}
	m.mu.Unlock()

	// Canonicalize outside the lock: it is the expensive part, and
	// recomputing on a racing miss is merely redundant, never wrong.
	k := CanonicalKey(preds)

	m.mu.Lock()
	if len(m.keys) >= m.cap {
		m.keys = map[string]Key{}
	}
	m.keys[raw] = k
	m.mu.Unlock()
	return k
}

// Stats reports (cache hits, total lookups).
func (m *KeyMemo) Stats() (hits, lookups int64) {
	if m == nil {
		return 0, 0
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.hits, m.lookups
}

// rawLocked serializes preds in order under raw variable IDs. Must be called
// with m.mu held (it reads and fills the tree cache).
func (m *KeyMemo) rawLocked(preds []Pred) string {
	var b strings.Builder
	for _, p := range preds {
		b.WriteByte(byte('0' + p.Rel))
		b.WriteByte(':')
		if p.E != nil {
			s, ok := m.trees[p.E]
			if !ok {
				var tb strings.Builder
				writeRaw(&tb, p.E)
				s = tb.String()
				if len(m.trees) >= m.cap {
					m.trees = map[*Expr]string{}
				}
				m.trees[p.E] = s
			}
			b.WriteString(s)
		}
		b.WriteByte(';')
	}
	return b.String()
}

// writeRaw renders e fully parenthesized with raw variable IDs — an injective
// serialization (distinct trees never render equal).
func writeRaw(b *strings.Builder, e *Expr) {
	switch e.Op {
	case OpConst:
		b.WriteByte('c')
		b.WriteString(strconv.FormatInt(e.K, 10))
	case OpVar:
		b.WriteByte('x')
		b.WriteString(strconv.FormatInt(int64(e.V), 10))
	case OpNeg:
		b.WriteString("n(")
		writeRaw(b, e.L)
		b.WriteByte(')')
	default:
		b.WriteByte('(')
		writeRaw(b, e.L)
		b.WriteByte(' ')
		b.WriteString(e.Op.String())
		b.WriteByte(' ')
		writeRaw(b, e.R)
		b.WriteByte(')')
	}
}
