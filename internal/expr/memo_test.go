package expr

import (
	"math/rand"
	"testing"
)

// TestKeyMemoMatchesFresh is the memo soundness property: for randomized
// predicate sets — including every prefix, the engine's actual access
// pattern — the memoized key equals a fresh CanonicalKey, on both the miss
// and the hit path. Reuses the canon test generators.
func TestKeyMemoMatchesFresh(t *testing.T) {
	r := rand.New(rand.NewSource(41))
	m := NewKeyMemo(0)
	for trial := 0; trial < 300; trial++ {
		preds := randPredSet(r)
		for n := 1; n <= len(preds); n++ {
			prefix := preds[:n]
			want := CanonicalKey(prefix)
			if got := m.Key(prefix); got != want {
				t.Fatalf("trial %d prefix %d: memo miss path %v != fresh %v", trial, n, got, want)
			}
			if got := m.Key(prefix); got != want {
				t.Fatalf("trial %d prefix %d: memo hit path %v != fresh %v", trial, n, got, want)
			}
		}
	}
	hits, lookups := m.Stats()
	if hits == 0 || lookups == 0 {
		t.Fatalf("property exercised no memo hits: hits=%d lookups=%d", hits, lookups)
	}
}

// TestKeyMemoRenamedSetsStayEquivalent: a renamed predicate set misses the
// raw memo (different variable IDs) but must still produce the same
// canonical key — the memo accelerates, never re-keys.
func TestKeyMemoRenamedSetsStayEquivalent(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	m := NewKeyMemo(0)
	for trial := 0; trial < 200; trial++ {
		preds := randPredSet(r)
		vs := map[Var]struct{}{}
		for _, p := range preds {
			p.Vars(vs)
		}
		ren := map[Var]Var{}
		off := Var(100 + r.Intn(100))
		for v := range vs {
			ren[v] = v + off
		}
		renamed := renamePreds(preds, ren)
		if m.Key(preds) != m.Key(renamed) {
			t.Fatalf("trial %d: memoized keys of rename-equivalent sets differ", trial)
		}
	}
}

// TestKeyMemoSliceReuse pins the scratch-buffer contract: the engine reuses
// one backing array for successive constraint sets, so the memo must key on
// the slice's contents at call time, never on its identity.
func TestKeyMemoSliceReuse(t *testing.T) {
	r := rand.New(rand.NewSource(43))
	m := NewKeyMemo(0)
	buf := make([]Pred, 0, 16)
	for trial := 0; trial < 200; trial++ {
		set := randPredSet(r)
		buf = append(buf[:0], set...)
		want := CanonicalKey(set)
		if got := m.Key(buf); got != want {
			t.Fatalf("trial %d: reused-buffer key %v != fresh %v", trial, got, want)
		}
	}
}

// TestKeyMemoCapResets: overflowing the cap flushes rather than grows, and
// keys stay correct across the flush.
func TestKeyMemoCapResets(t *testing.T) {
	m := NewKeyMemo(8)
	r := rand.New(rand.NewSource(44))
	sets := make([][]Pred, 32)
	for i := range sets {
		sets[i] = randPredSet(r)
	}
	for round := 0; round < 3; round++ {
		for _, s := range sets {
			if got, want := m.Key(s), CanonicalKey(s); got != want {
				t.Fatalf("round %d: %v != %v", round, got, want)
			}
		}
	}
	m.mu.Lock()
	nk, nt := len(m.keys), len(m.trees)
	m.mu.Unlock()
	if nk > 8 || nt > 8 {
		t.Fatalf("cap not enforced: %d keys, %d trees cached (cap 8)", nk, nt)
	}
}

// TestKeyMemoConcurrent exercises the memo from many goroutines under the
// race detector.
func TestKeyMemoConcurrent(t *testing.T) {
	m := NewKeyMemo(0)
	sets := make([][]Pred, 16)
	r := rand.New(rand.NewSource(45))
	for i := range sets {
		sets[i] = randPredSet(r)
	}
	want := make([]Key, len(sets))
	for i, s := range sets {
		want[i] = CanonicalKey(s)
	}
	done := make(chan error, 8)
	for w := 0; w < 8; w++ {
		go func(w int) {
			for i := 0; i < 200; i++ {
				j := (w + i) % len(sets)
				if m.Key(sets[j]) != want[j] {
					done <- errMismatch
					return
				}
			}
			done <- nil
		}(w)
	}
	for w := 0; w < 8; w++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}

var errMismatch = errString("memoized key diverged under concurrency")

type errString string

func (e errString) Error() string { return string(e) }

func BenchmarkCanonicalKey(b *testing.B) {
	r := rand.New(rand.NewSource(46))
	preds := make([]Pred, 0, 24)
	for len(preds) < 24 {
		preds = append(preds, randPredSet(r)...)
	}
	preds = preds[:24]
	b.Run("fresh", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			CanonicalKey(preds)
		}
	})
	b.Run("memo", func(b *testing.B) {
		m := NewKeyMemo(0)
		m.Key(preds)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			m.Key(preds)
		}
	})
}
