package expr

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func env(vals map[Var]int64) Env {
	return func(v Var) int64 { return vals[v] }
}

func TestConstFold(t *testing.T) {
	cases := []struct {
		e    *Expr
		want int64
	}{
		{Add(Const(2), Const(3)), 5},
		{Sub(Const(2), Const(3)), -1},
		{Mul(Const(4), Const(-3)), -12},
		{Div(Const(7), Const(2)), 3},
		{Div(Const(-7), Const(2)), -3}, // Go truncated division
		{Mod(Const(7), Const(3)), 1},
		{Mod(Const(-7), Const(3)), -1},
		{Neg(Const(5)), -5},
	}
	for _, c := range cases {
		k, ok := c.e.IsConst()
		if !ok {
			t.Fatalf("%v: not folded to const", c.e)
		}
		if k != c.want {
			t.Errorf("%v: got %d want %d", c.e, k, c.want)
		}
	}
}

func TestDivModByZeroLiteralNotFolded(t *testing.T) {
	e := Div(Const(3), Const(0))
	if _, ok := e.IsConst(); ok {
		t.Fatal("division by zero literal must not fold")
	}
	if _, ok := e.Eval(env(nil)); ok {
		t.Fatal("division by zero must fail Eval")
	}
	m := Mod(Const(3), Const(0))
	if _, ok := m.Eval(env(nil)); ok {
		t.Fatal("mod by zero must fail Eval")
	}
}

func TestEval(t *testing.T) {
	x, y := Var(0), Var(1)
	// (x*2 + y) - 7
	e := Sub(Add(Mul(VarRef(x), Const(2)), VarRef(y)), Const(7))
	got, ok := e.Eval(env(map[Var]int64{x: 10, y: 5}))
	if !ok || got != 18 {
		t.Fatalf("Eval = %d,%v want 18,true", got, ok)
	}
}

func TestEvalDivByZeroVariable(t *testing.T) {
	x := Var(0)
	e := Div(Const(10), VarRef(x))
	if _, ok := e.Eval(env(map[Var]int64{x: 0})); ok {
		t.Fatal("x=0 should make 10/x undefined")
	}
	got, ok := e.Eval(env(map[Var]int64{x: 2}))
	if !ok || got != 5 {
		t.Fatalf("10/2 = %d,%v", got, ok)
	}
}

func TestAsLinearBasics(t *testing.T) {
	x, y := Var(0), Var(1)
	// 3*x - 2*y + 5
	e := Add(Sub(Mul(Const(3), VarRef(x)), Mul(VarRef(y), Const(2))), Const(5))
	l, ok := e.AsLinear()
	if !ok {
		t.Fatal("expected linear")
	}
	if l.K != 5 || l.Terms[x] != 3 || l.Terms[y] != -2 {
		t.Fatalf("bad linear form: %v", l)
	}
}

func TestAsLinearCancellation(t *testing.T) {
	x := Var(0)
	// x - x must produce the constant 0 with no terms.
	l, ok := Sub(VarRef(x), VarRef(x)).AsLinear()
	if !ok || !l.IsConst() || l.K != 0 {
		t.Fatalf("x-x: got %v ok=%v", l, ok)
	}
}

func TestAsLinearRejectsNonlinear(t *testing.T) {
	x, y := Var(0), Var(1)
	if _, ok := Mul(VarRef(x), VarRef(y)).AsLinear(); ok {
		t.Fatal("x*y must not be linear")
	}
	if _, ok := Div(VarRef(x), Const(2)).AsLinear(); ok {
		t.Fatal("x/2 must not be linear")
	}
	if _, ok := Mod(VarRef(x), Const(2)).AsLinear(); ok {
		t.Fatal("x%2 must not be linear")
	}
}

func TestLinearNegScale(t *testing.T) {
	x := Var(3)
	e := Neg(Add(VarRef(x), Const(4)))
	l, ok := e.AsLinear()
	if !ok || l.K != -4 || l.Terms[x] != -1 {
		t.Fatalf("neg linear: %v ok=%v", l, ok)
	}
	z := l.Scale(0)
	if !z.IsConst() || z.K != 0 {
		t.Fatalf("scale by 0: %v", z)
	}
}

// Property: whenever AsLinear succeeds, the linear form evaluates identically
// to the tree under random environments.
func TestLinearAgreesWithTree(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 500; i++ {
		e := randExpr(rng, 4, true)
		l, ok := e.AsLinear()
		if !ok {
			continue
		}
		vals := map[Var]int64{}
		for v := Var(0); v < 6; v++ {
			vals[v] = int64(rng.Intn(201) - 100)
		}
		tv, tok := e.Eval(env(vals))
		if !tok {
			continue
		}
		if lv := l.Eval(env(vals)); lv != tv {
			t.Fatalf("linear %v != tree %v for %s (linear %s)", lv, tv, e, l)
		}
	}
}

// randExpr builds a random expression over vars x0..x5; linearOnly avoids
// Div/Mod so folding cannot fail.
func randExpr(rng *rand.Rand, depth int, linearOnly bool) *Expr {
	if depth == 0 || rng.Intn(3) == 0 {
		if rng.Intn(2) == 0 {
			return Const(int64(rng.Intn(21) - 10))
		}
		return VarRef(Var(rng.Intn(6)))
	}
	ops := []Op{OpAdd, OpSub, OpMul, OpNeg}
	if !linearOnly {
		ops = append(ops, OpDiv, OpMod)
	}
	op := ops[rng.Intn(len(ops))]
	l := randExpr(rng, depth-1, linearOnly)
	if op == OpNeg {
		return Neg(l)
	}
	r := randExpr(rng, depth-1, linearOnly)
	switch op {
	case OpAdd:
		return Add(l, r)
	case OpSub:
		return Sub(l, r)
	case OpMul:
		return Mul(l, r)
	case OpDiv:
		return Div(l, r)
	default:
		return Mod(l, r)
	}
}

func TestRelNegate(t *testing.T) {
	rels := []Rel{EQ, NE, LT, LE, GT, GE}
	for _, r := range rels {
		if r.Negate().Negate() != r {
			t.Errorf("double negation of %v", r)
		}
		for _, v := range []int64{-2, -1, 0, 1, 2} {
			if r.Holds(v) == r.Negate().Holds(v) {
				t.Errorf("%v and its negation agree on %d", r, v)
			}
		}
	}
}

// Property: a predicate and its negation never both hold.
func TestPredNegationExclusive(t *testing.T) {
	f := func(a, b int8, rel uint8) bool {
		x := Var(0)
		p := Compare(Add(VarRef(x), Const(int64(a))), Const(int64(b)), Rel(rel%6))
		e := env(map[Var]int64{x: int64(a) * int64(b) % 50})
		h1, ok1 := p.Eval(e)
		h2, ok2 := p.Negate().Eval(e)
		if !ok1 || !ok2 {
			return true
		}
		return h1 != h2
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCompareNormalization(t *testing.T) {
	x := Var(0)
	p := Compare(VarRef(x), Const(100), NE) // x != 100  →  (x-100) != 0
	hold, ok := p.Eval(env(map[Var]int64{x: 10}))
	if !ok || !hold {
		t.Fatal("x=10 should satisfy x != 100")
	}
	hold, _ = p.Eval(env(map[Var]int64{x: 100}))
	if hold {
		t.Fatal("x=100 should violate x != 100")
	}
	n := p.Negate() // x == 100
	hold, _ = n.Eval(env(map[Var]int64{x: 100}))
	if !hold {
		t.Fatal("negated predicate should hold at x=100")
	}
}

func TestVarsAndHasVar(t *testing.T) {
	x, y := Var(0), Var(1)
	e := Add(Mul(VarRef(x), Const(2)), Neg(VarRef(y)))
	set := map[Var]struct{}{}
	e.Vars(set)
	if len(set) != 2 {
		t.Fatalf("vars: %v", set)
	}
	if !e.HasVar(x) || !e.HasVar(y) || e.HasVar(Var(9)) {
		t.Fatal("HasVar wrong")
	}
}

func TestStringRendering(t *testing.T) {
	x := Var(0)
	p := Compare(Div(VarRef(x), Const(2)), Const(200), LE)
	if got := p.String(); got != "((x0 / 2) - 200) <= 0" {
		t.Errorf("render: %q", got)
	}
	l := NewLinear(3)
	l.AddTerm(x, -2)
	if got := l.String(); got != "3 - 2*x0" {
		t.Errorf("linear render: %q", got)
	}
}

func TestEqual(t *testing.T) {
	a := Add(VarRef(0), Const(1))
	b := Add(VarRef(0), Const(1))
	c := Add(VarRef(1), Const(1))
	if !Equal(a, b) || Equal(a, c) || !Equal(nil, nil) || Equal(a, nil) {
		t.Fatal("Equal wrong")
	}
}
