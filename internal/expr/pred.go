package expr

import "fmt"

// Rel is a comparison relation against zero: a predicate is "E Rel 0".
type Rel uint8

// Comparison relations.
const (
	EQ Rel = iota // E == 0
	NE            // E != 0
	LT            // E <  0
	LE            // E <= 0
	GT            // E >  0
	GE            // E >= 0
)

func (r Rel) String() string {
	switch r {
	case EQ:
		return "=="
	case NE:
		return "!="
	case LT:
		return "<"
	case LE:
		return "<="
	case GT:
		return ">"
	case GE:
		return ">="
	}
	return fmt.Sprintf("rel(%d)", uint8(r))
}

// Negate returns the complementary relation.
func (r Rel) Negate() Rel {
	switch r {
	case EQ:
		return NE
	case NE:
		return EQ
	case LT:
		return GE
	case LE:
		return GT
	case GT:
		return LE
	case GE:
		return LT
	}
	return r
}

// Holds reports whether "v Rel 0" is true.
func (r Rel) Holds(v int64) bool {
	switch r {
	case EQ:
		return v == 0
	case NE:
		return v != 0
	case LT:
		return v < 0
	case LE:
		return v <= 0
	case GT:
		return v > 0
	case GE:
		return v >= 0
	}
	return false
}

// Pred is the normalized constraint "E Rel 0". Comparisons between two
// expressions a OP b are normalized by the concolic runtime to (a-b) OP 0.
type Pred struct {
	E   *Expr
	Rel Rel
}

// Compare builds the normalized predicate "l rel r".
func Compare(l, r *Expr, rel Rel) Pred {
	return Pred{E: Sub(l, r), Rel: rel}
}

// Negate returns the complementary predicate over the same expression.
func (p Pred) Negate() Pred { return Pred{E: p.E, Rel: p.Rel.Negate()} }

// Eval reports whether p holds under env; the second result is false when the
// expression is undefined under env (division by zero).
func (p Pred) Eval(env Env) (bool, bool) {
	v, ok := p.E.Eval(env)
	if !ok {
		return false, false
	}
	return p.Rel.Holds(v), true
}

// Vars adds the variables of p to set.
func (p Pred) Vars(set map[Var]struct{}) { p.E.Vars(set) }

// String renders p for logs.
func (p Pred) String() string {
	return fmt.Sprintf("%s %s 0", p.E, p.Rel)
}
