package expr

import (
	"encoding/json"
	"testing"
)

func TestKeyTextRoundTrip(t *testing.T) {
	k := CanonicalKey([]Pred{
		{E: Add(VarRef(0), Const(3)), Rel: LE},
		{E: VarRef(1), Rel: NE},
	})
	text, err := k.MarshalText()
	if err != nil {
		t.Fatal(err)
	}
	if string(text) != k.String() {
		t.Fatalf("MarshalText %q differs from String %q", text, k.String())
	}
	got, err := ParseKey(string(text))
	if err != nil {
		t.Fatal(err)
	}
	if got != k {
		t.Fatalf("round trip changed the key: %v -> %v", k, got)
	}
}

func TestKeyJSONMapKey(t *testing.T) {
	k := CanonicalKey([]Pred{{E: VarRef(0), Rel: EQ}})
	m := map[Key]int{k: 7}
	b, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	var back map[Key]int
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if back[k] != 7 {
		t.Fatalf("JSON map round trip lost the entry: %s -> %v", b, back)
	}
}

func TestParseKeyRejectsGarbage(t *testing.T) {
	for _, bad := range []string{"", "zz", "0123", "not-hex-not-hex-not-hex-not-hex-", "0123456789abcdef0123456789abcdef00"} {
		if _, err := ParseKey(bad); err == nil {
			t.Errorf("ParseKey(%q) accepted garbage", bad)
		}
	}
}
