package expr

import (
	"encoding/hex"
	"fmt"
)

// CanonVersion identifies the canonicalization algorithm that produced a
// Key. Persisted canonical keys (the campaign store's cross-run UNSAT cache)
// are only meaningful under the algorithm that computed them: a normalization
// or numbering change silently re-keys every conjunction, so a stale cache
// would stop colliding at best and collide wrongly at worst. Bump this
// whenever canon.go changes the canonical form; loaders discard persisted
// keys whose recorded version differs.
const CanonVersion = 1

// MarshalText renders the key as lowercase hex, making Key usable directly
// in JSON values and JSON map keys for persistence.
func (k Key) MarshalText() ([]byte, error) {
	dst := make([]byte, hex.EncodedLen(len(k)))
	hex.Encode(dst, k[:])
	return dst, nil
}

// UnmarshalText parses the hex form written by MarshalText.
func (k *Key) UnmarshalText(text []byte) error {
	if hex.DecodedLen(len(text)) != len(k) {
		return fmt.Errorf("expr: key %q: want %d hex chars", text, hex.EncodedLen(len(k)))
	}
	_, err := hex.Decode(k[:], text)
	if err != nil {
		return fmt.Errorf("expr: key %q: %v", text, err)
	}
	return nil
}

// ParseKey parses the hex form of a key (Key.String / MarshalText).
func ParseKey(s string) (Key, error) {
	var k Key
	err := k.UnmarshalText([]byte(s))
	return k, err
}
