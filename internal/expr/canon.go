package expr

import (
	"crypto/sha256"
	"fmt"
	"sort"
	"strings"
)

// This file gives predicate sets a canonical form: a deterministic
// serialization that is invariant under renaming of the symbolic variables
// and under reordering of the predicates. Sharded campaigns on one target
// repeatedly negate overlapping path prefixes, so the same conjunction
// reaches the solver again and again with shuffled predicate order and
// (across engines) freshly numbered variables; the canonical key is what
// lets a solver cache collide those requests.
//
// The construction is sound by design: the canonical string spells out the
// complete normalized predicates under the canonical variable numbering, so
// two sets share a string only when they are literally identical up to a
// variable renaming — and therefore equisatisfiable. Completeness (every
// pair of rename-equivalent sets colliding) is best-effort: variable
// numbering uses Weisfeiler-Lehman-style refinement plus a greedy minimal
// ordering, which resolves every asymmetric case; residual ties are
// genuinely symmetric and either choice serializes identically.

// Key is the 128-bit fingerprint of a predicate set's canonical form.
type Key [16]byte

// String renders the key as hex for logs.
func (k Key) String() string { return fmt.Sprintf("%x", k[:]) }

// CanonicalKey returns the canonical-form fingerprint of preds. Renaming
// variables or reordering predicates preserves the key; changing any
// predicate (in particular, negating one) changes it.
func CanonicalKey(preds []Pred) Key {
	sum := sha256.Sum256([]byte(CanonicalString(preds)))
	var k Key
	copy(k[:], sum[:16])
	return k
}

// CanonicalString returns the canonical serialization the key hashes. It is
// exported so tests can assert invariance on the readable form; callers
// wanting a compact cache key should use CanonicalKey.
func CanonicalString(preds []Pred) string {
	n := make([]normPred, len(preds))
	for i, p := range preds {
		n[i] = normalize(p)
	}
	labels := refineLabels(n)
	return assemble(n, labels)
}

// normPred is one predicate after normalization. Linear predicates are
// rewritten to "Σ terms REL bound" with REL ∈ {≤, =, ≠} (strict and ≥-family
// relations are folded away over the integers) and coefficients divided by
// their gcd; variable-free predicates fold to true/false sentinels; anything
// else (division, remainder, overflow-risky coefficients) is kept as the
// raw tree, which is always sound.
type normPred struct {
	kind  byte // 'T' true, 'F' false, 'L' linear, 'X' raw tree
	rel   Rel  // 'L': LE, EQ or NE; 'X': the original relation
	bound int64
	terms map[Var]int64
	tree  *Expr
	vars  []Var // sorted occurrence set (both kinds)
}

// safeK bounds constants and coefficients so the ±1 and negation rewrites
// below cannot overflow; predicates outside the range stay raw trees.
const safeK = int64(1) << 61

func normalize(p Pred) normPred {
	if p.E == nil {
		return normPred{kind: 'X', rel: p.Rel}
	}
	if k, ok := p.E.IsConst(); ok {
		return constPred(p.Rel.Holds(k))
	}
	lin, ok := p.E.AsLinear()
	if ok && linSafe(lin) {
		if np, ok := normalizeLinear(lin, p.Rel); ok {
			return np
		}
	}
	vs := map[Var]struct{}{}
	p.E.Vars(vs)
	return normPred{kind: 'X', rel: p.Rel, tree: p.E, vars: sortedVars(vs)}
}

func constPred(holds bool) normPred {
	if holds {
		return normPred{kind: 'T'}
	}
	return normPred{kind: 'F'}
}

func linSafe(l Linear) bool {
	if l.K <= -safeK || l.K >= safeK {
		return false
	}
	for _, c := range l.Terms {
		if c <= -safeK || c >= safeK {
			return false
		}
	}
	return true
}

// normalizeLinear rewrites "K + Σc·x REL 0" into the canonical
// "Σc'·x REL' b" form. Over the integers every inequality folds to ≤:
//
//	Σ <  b  ≡  Σ ≤ b-1
//	Σ >  b  ≡  -Σ ≤ -b-1
//	Σ >= b  ≡  -Σ ≤ -b
//
// so "x < 6" and "x ≤ 5" collide, as do "-x ≤ -1" and "x ≥ 1". Dividing by
// the coefficient gcd then collides "2x ≤ 5" with "x ≤ 2" (floor division),
// and turns unsatisfiable equalities like "2x = 1" into the false sentinel.
func normalizeLinear(l Linear, rel Rel) (normPred, bool) {
	terms := make(map[Var]int64, len(l.Terms))
	for v, c := range l.Terms {
		terms[v] = c
	}
	if len(terms) == 0 {
		return constPred(rel.Holds(l.K)), true
	}
	var b int64
	switch rel {
	case LE: // Σ ≤ -K
		b = -l.K
	case LT: // Σ ≤ -K-1
		b = -l.K - 1
	case GE: // -Σ ≤ K
		negateTerms(terms)
		b = l.K
	case GT: // -Σ ≤ K-1
		negateTerms(terms)
		b = l.K - 1
	case EQ, NE: // Σ = / ≠ -K
		b = -l.K
	default:
		return normPred{}, false
	}
	nrel := rel
	if nrel == LT || nrel == GE || nrel == GT {
		nrel = LE
	}

	g := int64(0)
	for _, c := range terms {
		g = gcd(g, c)
	}
	if g > 1 {
		switch nrel {
		case LE:
			b = floorDiv(b, g)
		case EQ:
			if b%g != 0 {
				return constPred(false), true
			}
			b /= g
		case NE:
			if b%g != 0 {
				return constPred(true), true
			}
			b /= g
		}
		for v := range terms {
			terms[v] /= g
		}
	}

	vset := make(map[Var]struct{}, len(terms))
	for v := range terms {
		vset[v] = struct{}{}
	}
	return normPred{kind: 'L', rel: nrel, bound: b, terms: terms, vars: sortedVars(vset)}, true
}

func negateTerms(terms map[Var]int64) {
	for v, c := range terms {
		terms[v] = -c
	}
}

func gcd(a, b int64) int64 {
	if a < 0 {
		a = -a
	}
	if b < 0 {
		b = -b
	}
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

func floorDiv(a, b int64) int64 {
	q := a / b
	if a%b != 0 && (a < 0) != (b < 0) {
		q--
	}
	return q
}

func sortedVars(set map[Var]struct{}) []Var {
	vs := make([]Var, 0, len(set))
	for v := range set {
		vs = append(vs, v)
	}
	sort.Slice(vs, func(i, j int) bool { return vs[i] < vs[j] })
	return vs
}

// shape is the variable-independent summary of a predicate: relation, bound,
// and the sorted coefficient multiset (or the tree skeleton with variables
// blanked). Equalities and disequalities are sign-symmetric, so their shape
// takes the lexicographically smaller of the two sign variants.
func (np normPred) shape() string {
	switch np.kind {
	case 'T':
		return "T"
	case 'F':
		return "F"
	case 'L':
		s := linShape(np.rel, np.bound, np.terms, false)
		if np.rel == EQ || np.rel == NE {
			if alt := linShape(np.rel, np.bound, np.terms, true); alt < s {
				s = alt
			}
		}
		return s
	default:
		var b strings.Builder
		b.WriteString("X")
		b.WriteString(np.rel.String())
		writeTree(&b, np.tree, func(Var) string { return "?" })
		return b.String()
	}
}

func linShape(rel Rel, bound int64, terms map[Var]int64, neg bool) string {
	cs := make([]int64, 0, len(terms))
	for _, c := range terms {
		if neg {
			c = -c
		}
		cs = append(cs, c)
	}
	sort.Slice(cs, func(i, j int) bool { return cs[i] < cs[j] })
	b := bound
	if neg {
		b = -b
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "L%s;%d;", rel, b)
	for _, c := range cs {
		fmt.Fprintf(&sb, "%d,", c)
	}
	return sb.String()
}

// writeTree serializes a raw tree with each variable rendered through name.
func writeTree(b *strings.Builder, e *Expr, name func(Var) string) {
	if e == nil {
		b.WriteString("nil")
		return
	}
	switch e.Op {
	case OpConst:
		fmt.Fprintf(b, "%d", e.K)
	case OpVar:
		b.WriteString(name(e.V))
	case OpNeg:
		b.WriteString("-(")
		writeTree(b, e.L, name)
		b.WriteString(")")
	default:
		b.WriteString("(")
		writeTree(b, e.L, name)
		fmt.Fprintf(b, " %s ", e.Op)
		writeTree(b, e.R, name)
		b.WriteString(")")
	}
}

// refineLabels runs Weisfeiler-Lehman-style refinement over the variables:
// each round relabels every variable by (its current label, the sorted
// multiset of its roles across the predicates it occurs in, where a role
// records the predicate's shape, the variable's own coefficient or tree
// positions, and the labels of its co-occurring variables). Refinement is
// monotone, so it stabilizes; variables left with equal labels are
// symmetric as far as the predicate structure can tell.
func refineLabels(preds []normPred) map[Var]int {
	byVar := map[Var][]int{}
	for i, np := range preds {
		for _, v := range np.vars {
			byVar[v] = append(byVar[v], i)
		}
	}
	labels := make(map[Var]int, len(byVar))
	for v := range byVar {
		labels[v] = 0
	}
	distinct := 1
	rounds := len(byVar)
	if rounds > 8 {
		rounds = 8
	}
	for round := 0; round < rounds; round++ {
		sigs := make(map[Var]string, len(labels))
		for v, idxs := range byVar {
			roles := make([]string, 0, len(idxs))
			for _, i := range idxs {
				roles = append(roles, roleSig(preds[i], v, labels))
			}
			sort.Strings(roles)
			sigs[v] = fmt.Sprintf("%d|%s", labels[v], strings.Join(roles, "|"))
		}
		uniq := make([]string, 0, len(sigs))
		seen := map[string]struct{}{}
		for _, s := range sigs {
			if _, dup := seen[s]; !dup {
				seen[s] = struct{}{}
				uniq = append(uniq, s)
			}
		}
		sort.Strings(uniq)
		rank := make(map[string]int, len(uniq))
		for i, s := range uniq {
			rank[s] = i
		}
		for v, s := range sigs {
			labels[v] = rank[s]
		}
		if len(uniq) == distinct {
			break
		}
		distinct = len(uniq)
	}
	return labels
}

// roleSig describes v's role inside np under the current labels.
func roleSig(np normPred, v Var, labels map[Var]int) string {
	var b strings.Builder
	b.WriteString(np.shape())
	switch np.kind {
	case 'L':
		c := np.terms[v]
		if c < 0 {
			c = -c // sign-insensitive: EQ/NE variants must agree
		}
		fmt.Fprintf(&b, ";me=%d;", c)
		others := make([]string, 0, len(np.terms))
		for u, cu := range np.terms {
			if u == v {
				continue
			}
			if cu < 0 {
				cu = -cu
			}
			others = append(others, fmt.Sprintf("%d:%d", cu, labels[u]))
		}
		sort.Strings(others)
		b.WriteString(strings.Join(others, ","))
	case 'X':
		b.WriteString(";")
		writeTree(&b, np.tree, func(u Var) string {
			if u == v {
				return "*"
			}
			return fmt.Sprintf("l%d", labels[u])
		})
	}
	return b.String()
}

// assemble picks the canonical predicate order and variable numbering:
// repeatedly render every remaining predicate (numbered variables as "v<n>",
// unnumbered ones as "u<label>#<occurrence>"), choose the lexicographically
// smallest rendering, and commit numbers to its unnumbered variables in
// rendering order. Both the trial renderings and the choice depend only on
// rename-invariant data, so the final string does too.
func assemble(preds []normPred, labels map[Var]int) string {
	num := map[Var]int{}
	next := 0
	remaining := make([]int, len(preds))
	for i := range preds {
		remaining[i] = i
	}
	out := make([]string, 0, len(preds))
	for len(remaining) > 0 {
		best, bestStr := -1, ""
		for pos, i := range remaining {
			s := renderPred(preds[i], num, labels, nil)
			if best < 0 || s < bestStr {
				best, bestStr = pos, s
			}
		}
		chosen := remaining[best]
		remaining = append(remaining[:best], remaining[best+1:]...)
		// Re-render, this time committing numbers to new variables.
		final := renderPred(preds[chosen], num, labels, &next)
		out = append(out, final)
	}
	return strings.Join(out, " & ")
}

// renderPred serializes one normalized predicate under the partial
// numbering. When assign is non-nil, unnumbered variables are committed to
// fresh numbers (in rendering order) instead of rendered as placeholders.
func renderPred(np normPred, num map[Var]int, labels map[Var]int, assign *int) string {
	switch np.kind {
	case 'T':
		return "T"
	case 'F':
		return "F"
	case 'L':
		s := renderLinear(np, num, labels, false, nil)
		if np.rel == EQ || np.rel == NE {
			if alt := renderLinear(np, num, labels, true, nil); alt < s {
				if assign != nil {
					return renderLinear(np, num, labels, true, assign)
				}
				return alt
			}
		}
		if assign != nil {
			return renderLinear(np, num, labels, false, assign)
		}
		return s
	default:
		return renderTree(np, num, labels, assign)
	}
}

func renderLinear(np normPred, num map[Var]int, labels map[Var]int, neg bool, assign *int) string {
	type term struct {
		v Var
		c int64
	}
	ts := make([]term, 0, len(np.terms))
	for _, v := range np.vars { // deterministic input order
		c := np.terms[v]
		if neg {
			c = -c
		}
		ts = append(ts, term{v, c})
	}
	// Numbered variables first (by number), then unnumbered by (label,
	// coefficient). Fully tied unnumbered terms are symmetric: either order
	// renders identically.
	sort.SliceStable(ts, func(i, j int) bool {
		ni, iok := num[ts[i].v]
		nj, jok := num[ts[j].v]
		if iok != jok {
			return iok
		}
		if iok {
			return ni < nj
		}
		li, lj := labels[ts[i].v], labels[ts[j].v]
		if li != lj {
			return li < lj
		}
		return ts[i].c < ts[j].c
	})
	var b strings.Builder
	local := map[Var]int{}
	for _, t := range ts {
		fmt.Fprintf(&b, "%+d*%s", t.c, varName(t.v, num, labels, local, assign))
	}
	bound := np.bound
	if neg {
		bound = -bound
	}
	fmt.Fprintf(&b, " %s %d", np.rel, bound)
	return b.String()
}

func renderTree(np normPred, num map[Var]int, labels map[Var]int, assign *int) string {
	var b strings.Builder
	local := map[Var]int{}
	writeTree(&b, np.tree, func(v Var) string {
		return varName(v, num, labels, local, assign)
	})
	fmt.Fprintf(&b, " %s 0", np.rel)
	return b.String()
}

// varName renders v under the partial numbering; unnumbered variables show
// their refinement label plus a per-variable slot within this rendering
// (repeated occurrences of one variable share a slot, so "x*x" and "x*y"
// render differently), or are committed to the next free number when assign
// is non-nil.
func varName(v Var, num map[Var]int, labels map[Var]int, local map[Var]int, assign *int) string {
	if n, ok := num[v]; ok {
		return fmt.Sprintf("v%d", n)
	}
	if assign != nil {
		num[v] = *assign
		*assign++
		return fmt.Sprintf("v%d", num[v])
	}
	slot, ok := local[v]
	if !ok {
		slot = len(local) + 1
		local[v] = slot
	}
	return fmt.Sprintf("u%d#%d", labels[v], slot)
}
