// Package expr provides the symbolic expression representation used by the
// concolic execution runtime and the constraint solver.
//
// Expressions are trees over 64-bit signed integers. The concolic runtime
// keeps expressions linear whenever it can (nonlinear operations are
// concretized at the point they occur, which is the defining trade-off of
// concolic execution), but the representation itself is general so that the
// solver can still evaluate candidate assignments against arbitrary trees.
package expr

import (
	"fmt"
	"sort"
	"strings"
)

// Var identifies a symbolic variable. Variable IDs are allocated by the
// concolic runtime; the zero value is a valid variable.
type Var int32

// Op enumerates expression node kinds.
type Op uint8

// Expression node kinds.
const (
	OpConst Op = iota // integer literal
	OpVar             // symbolic variable reference
	OpAdd             // L + R
	OpSub             // L - R
	OpMul             // L * R
	OpDiv             // L / R (Go truncated division)
	OpMod             // L % R (Go remainder)
	OpNeg             // -L
)

func (o Op) String() string {
	switch o {
	case OpConst:
		return "const"
	case OpVar:
		return "var"
	case OpAdd:
		return "+"
	case OpSub:
		return "-"
	case OpMul:
		return "*"
	case OpDiv:
		return "/"
	case OpMod:
		return "%"
	case OpNeg:
		return "neg"
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// Expr is an immutable symbolic expression tree. Nodes must be constructed
// through the constructor functions below, which perform constant folding;
// callers must not mutate an Expr after construction.
type Expr struct {
	Op   Op
	K    int64 // literal value when Op == OpConst
	V    Var   // variable when Op == OpVar
	L, R *Expr // operands (R nil for OpNeg)
}

// Const returns a literal expression.
func Const(k int64) *Expr { return &Expr{Op: OpConst, K: k} }

// VarRef returns a reference to symbolic variable v.
func VarRef(v Var) *Expr { return &Expr{Op: OpVar, V: v} }

// IsConst reports whether e is a literal, and its value if so.
func (e *Expr) IsConst() (int64, bool) {
	if e != nil && e.Op == OpConst {
		return e.K, true
	}
	return 0, false
}

func binop(op Op, l, r *Expr) *Expr {
	if lk, ok := l.IsConst(); ok {
		if rk, ok := r.IsConst(); ok {
			if v, ok := foldConst(op, lk, rk); ok {
				return Const(v)
			}
		}
	}
	return &Expr{Op: op, L: l, R: r}
}

func foldConst(op Op, a, b int64) (int64, bool) {
	switch op {
	case OpAdd:
		return a + b, true
	case OpSub:
		return a - b, true
	case OpMul:
		return a * b, true
	case OpDiv:
		if b == 0 {
			return 0, false
		}
		return a / b, true
	case OpMod:
		if b == 0 {
			return 0, false
		}
		return a % b, true
	}
	return 0, false
}

// Add returns l + r.
func Add(l, r *Expr) *Expr { return binop(OpAdd, l, r) }

// Sub returns l - r.
func Sub(l, r *Expr) *Expr { return binop(OpSub, l, r) }

// Mul returns l * r.
func Mul(l, r *Expr) *Expr { return binop(OpMul, l, r) }

// Div returns l / r (truncated). Division by a zero literal is not folded and
// evaluates to an error at Eval time.
func Div(l, r *Expr) *Expr { return binop(OpDiv, l, r) }

// Mod returns l % r.
func Mod(l, r *Expr) *Expr { return binop(OpMod, l, r) }

// Neg returns -l.
func Neg(l *Expr) *Expr {
	if k, ok := l.IsConst(); ok {
		return Const(-k)
	}
	return &Expr{Op: OpNeg, L: l}
}

// Env supplies concrete values for variables during evaluation.
type Env func(Var) int64

// Eval evaluates e under env. The boolean result is false when evaluation is
// undefined (division or remainder by zero), in which case the candidate
// assignment cannot satisfy any predicate over e.
func (e *Expr) Eval(env Env) (int64, bool) {
	switch e.Op {
	case OpConst:
		return e.K, true
	case OpVar:
		return env(e.V), true
	case OpNeg:
		v, ok := e.L.Eval(env)
		return -v, ok
	}
	l, ok := e.L.Eval(env)
	if !ok {
		return 0, false
	}
	r, ok := e.R.Eval(env)
	if !ok {
		return 0, false
	}
	return foldConst(e.Op, l, r)
}

// Vars appends the variables occurring in e to set (a map used as a set).
func (e *Expr) Vars(set map[Var]struct{}) {
	switch e.Op {
	case OpConst:
	case OpVar:
		set[e.V] = struct{}{}
	case OpNeg:
		e.L.Vars(set)
	default:
		e.L.Vars(set)
		e.R.Vars(set)
	}
}

// HasVar reports whether v occurs in e.
func (e *Expr) HasVar(v Var) bool {
	switch e.Op {
	case OpConst:
		return false
	case OpVar:
		return e.V == v
	case OpNeg:
		return e.L.HasVar(v)
	default:
		return e.L.HasVar(v) || e.R.HasVar(v)
	}
}

// String renders e for logs and debugging.
func (e *Expr) String() string {
	var b strings.Builder
	e.write(&b)
	return b.String()
}

func (e *Expr) write(b *strings.Builder) {
	switch e.Op {
	case OpConst:
		fmt.Fprintf(b, "%d", e.K)
	case OpVar:
		fmt.Fprintf(b, "x%d", e.V)
	case OpNeg:
		b.WriteString("-(")
		e.L.write(b)
		b.WriteString(")")
	default:
		b.WriteString("(")
		e.L.write(b)
		fmt.Fprintf(b, " %s ", e.Op)
		e.R.write(b)
		b.WriteString(")")
	}
}

// Linear is the canonical linear form k + Σ coeff_i · var_i. Terms with zero
// coefficients are never stored.
type Linear struct {
	K     int64
	Terms map[Var]int64
}

// NewLinear returns the linear form of the constant k.
func NewLinear(k int64) Linear { return Linear{K: k, Terms: map[Var]int64{}} }

// Clone returns an independent copy of l.
func (l Linear) Clone() Linear {
	out := Linear{K: l.K, Terms: make(map[Var]int64, len(l.Terms))}
	for v, c := range l.Terms {
		out.Terms[v] = c
	}
	return out
}

// AddTerm adds c·v to l in place, dropping the term if it cancels.
func (l *Linear) AddTerm(v Var, c int64) {
	if c == 0 {
		return
	}
	n := l.Terms[v] + c
	if n == 0 {
		delete(l.Terms, v)
	} else {
		l.Terms[v] = n
	}
}

// IsConst reports whether l has no variable terms.
func (l Linear) IsConst() bool { return len(l.Terms) == 0 }

// Eval evaluates l under env.
func (l Linear) Eval(env Env) int64 {
	s := l.K
	for v, c := range l.Terms {
		s += c * env(v)
	}
	return s
}

// SortedVars returns the variables of l in ascending order, for deterministic
// iteration.
func (l Linear) SortedVars() []Var {
	vs := make([]Var, 0, len(l.Terms))
	for v := range l.Terms {
		vs = append(vs, v)
	}
	sort.Slice(vs, func(i, j int) bool { return vs[i] < vs[j] })
	return vs
}

// String renders l deterministically.
func (l Linear) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%d", l.K)
	for _, v := range l.SortedVars() {
		c := l.Terms[v]
		if c >= 0 {
			fmt.Fprintf(&b, " + %d*x%d", c, v)
		} else {
			fmt.Fprintf(&b, " - %d*x%d", -c, v)
		}
	}
	return b.String()
}

// AsLinear extracts the linear form of e. It succeeds for trees built from
// constants, variables, +, -, unary negation, and multiplication where at
// least one factor folds to a constant. Division and remainder nodes are not
// linear (the concolic runtime concretizes them before they reach here in the
// common path, but the solver tolerates them via Eval).
func (e *Expr) AsLinear() (Linear, bool) {
	switch e.Op {
	case OpConst:
		return NewLinear(e.K), true
	case OpVar:
		l := NewLinear(0)
		l.AddTerm(e.V, 1)
		return l, true
	case OpNeg:
		l, ok := e.L.AsLinear()
		if !ok {
			return Linear{}, false
		}
		return l.Scale(-1), true
	case OpAdd, OpSub:
		ll, ok := e.L.AsLinear()
		if !ok {
			return Linear{}, false
		}
		rl, ok := e.R.AsLinear()
		if !ok {
			return Linear{}, false
		}
		if e.Op == OpSub {
			rl = rl.Scale(-1)
		}
		out := ll.Clone()
		out.K += rl.K
		for v, c := range rl.Terms {
			out.AddTerm(v, c)
		}
		return out, true
	case OpMul:
		if k, ok := e.L.IsConst(); ok {
			rl, ok := e.R.AsLinear()
			if !ok {
				return Linear{}, false
			}
			return rl.Scale(k), true
		}
		if k, ok := e.R.IsConst(); ok {
			ll, ok := e.L.AsLinear()
			if !ok {
				return Linear{}, false
			}
			return ll.Scale(k), true
		}
		return Linear{}, false
	default:
		return Linear{}, false
	}
}

// Scale returns l multiplied by k.
func (l Linear) Scale(k int64) Linear {
	out := NewLinear(l.K * k)
	if k == 0 {
		return out
	}
	for v, c := range l.Terms {
		out.Terms[v] = c * k
	}
	return out
}

// Equal reports structural equality of two expressions.
func Equal(a, b *Expr) bool {
	if a == nil || b == nil {
		return a == b
	}
	if a.Op != b.Op || a.K != b.K || a.V != b.V {
		return false
	}
	switch a.Op {
	case OpConst, OpVar:
		return true
	case OpNeg:
		return Equal(a.L, b.L)
	default:
		return Equal(a.L, b.L) && Equal(a.R, b.R)
	}
}
