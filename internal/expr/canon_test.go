package expr

import (
	"math/rand"
	"testing"
)

// renameExpr rebuilds e with every variable mapped through m. Using the
// constructors keeps constant folding identical to the original build.
func renameExpr(e *Expr, m map[Var]Var) *Expr {
	if e == nil {
		return nil
	}
	switch e.Op {
	case OpConst:
		return Const(e.K)
	case OpVar:
		return VarRef(m[e.V])
	case OpNeg:
		return Neg(renameExpr(e.L, m))
	default:
		return &Expr{Op: e.Op, L: renameExpr(e.L, m), R: renameExpr(e.R, m)}
	}
}

func renamePreds(preds []Pred, m map[Var]Var) []Pred {
	out := make([]Pred, len(preds))
	for i, p := range preds {
		out[i] = Pred{E: renameExpr(p.E, m), Rel: p.Rel}
	}
	return out
}

// randPredSet generates a random conjunction mixing linear predicates and
// nonlinear (division/remainder) trees over a small variable pool.
func randPredSet(r *rand.Rand) []Pred {
	nvars := 2 + r.Intn(4)
	vars := make([]Var, nvars)
	for i := range vars {
		vars[i] = Var(i)
	}
	preds := make([]Pred, 1+r.Intn(6))
	for i := range preds {
		preds[i] = randPred(r, vars)
	}
	return preds
}

func randPred(r *rand.Rand, vars []Var) Pred {
	rels := []Rel{EQ, NE, LT, LE, GT, GE}
	rel := rels[r.Intn(len(rels))]
	v := func() *Expr { return VarRef(vars[r.Intn(len(vars))]) }
	coeff := func() int64 { return int64(r.Intn(9) - 4) }
	switch r.Intn(5) {
	case 0, 1, 2: // linear: c0 + Σ c_i * v_i
		e := Const(int64(r.Intn(41) - 20))
		for i := 0; i < 1+r.Intn(3); i++ {
			e = Add(e, Mul(Const(coeff()), v()))
		}
		return Pred{E: e, Rel: rel}
	case 3: // division
		return Pred{E: Add(Div(v(), Const(int64(2+r.Intn(5)))), v()), Rel: rel}
	default: // remainder
		return Pred{E: Sub(Mod(v(), Const(int64(2+r.Intn(5)))), Const(int64(r.Intn(3)))), Rel: rel}
	}
}

// TestCanonicalRenameReorderInvariance is the core property: applying a
// random variable bijection and shuffling the predicate order never changes
// the canonical form.
func TestCanonicalRenameReorderInvariance(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for trial := 0; trial < 500; trial++ {
		preds := randPredSet(r)
		want := CanonicalString(preds)
		wantKey := CanonicalKey(preds)

		// Random bijection onto fresh IDs.
		m := map[Var]Var{}
		used := map[Var]struct{}{}
		vs := map[Var]struct{}{}
		for _, p := range preds {
			p.Vars(vs)
		}
		for v := range vs {
			for {
				nv := Var(r.Intn(1000))
				if _, dup := used[nv]; !dup {
					used[nv] = struct{}{}
					m[v] = nv
					break
				}
			}
		}
		renamed := renamePreds(preds, m)
		r.Shuffle(len(renamed), func(i, j int) {
			renamed[i], renamed[j] = renamed[j], renamed[i]
		})

		if got := CanonicalString(renamed); got != want {
			t.Fatalf("trial %d: canonical form not invariant\noriginal: %s\nrenamed:  %s", trial, want, got)
		}
		if got := CanonicalKey(renamed); got != wantKey {
			t.Fatalf("trial %d: key not invariant", trial)
		}
	}
}

// TestCanonicalNegateLastChangesKey: negating the final predicate (the
// engine's freshly negated branch) must always produce a different key —
// a conjunction and its sibling branch may never collide.
func TestCanonicalNegateLastChangesKey(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	for trial := 0; trial < 500; trial++ {
		preds := randPredSet(r)
		key := CanonicalKey(preds)
		neg := append(append([]Pred{}, preds[:len(preds)-1]...), preds[len(preds)-1].Negate())
		if CanonicalKey(neg) == key {
			t.Fatalf("trial %d: negating last predicate kept the key\nset: %v", trial, preds)
		}
	}
}

// TestCanonicalCollisions pins the specific normalizations the UNSAT cache
// relies on: strict/≥-family folding, gcd reduction, and sign symmetry.
func TestCanonicalCollisions(t *testing.T) {
	x, y := VarRef(3), VarRef(8)
	cases := []struct {
		name string
		a, b Pred
	}{
		{"lt-vs-le", // x < 6  ≡  x ≤ 5
			Compare(x, Const(6), LT),
			Compare(x, Const(5), LE)},
		{"ge-vs-negated-le", // x ≥ 1  ≡  -x ≤ -1
			Compare(x, Const(1), GE),
			Compare(Neg(x), Const(-1), LE)},
		{"gcd-floor", // 2x ≤ 5  ≡  x ≤ 2
			Compare(Mul(Const(2), x), Const(5), LE),
			Compare(x, Const(2), LE)},
		{"eq-sign-flip", // x - y = 0  ≡  y - x = 0
			Compare(Sub(x, y), Const(0), EQ),
			Compare(Sub(y, x), Const(0), EQ)},
		{"eq-indivisible-is-false", // 2x = 1  ≡  false
			Compare(Mul(Const(2), x), Const(1), EQ),
			Pred{E: Const(1), Rel: EQ}},
		{"ne-indivisible-is-true", // 2x ≠ 1  ≡  true
			Compare(Mul(Const(2), x), Const(1), NE),
			Pred{E: Const(0), Rel: EQ}},
	}
	for _, tc := range cases {
		if CanonicalKey([]Pred{tc.a}) != CanonicalKey([]Pred{tc.b}) {
			t.Errorf("%s: %s and %s should share a canonical key\na: %s\nb: %s",
				tc.name, tc.a, tc.b,
				CanonicalString([]Pred{tc.a}), CanonicalString([]Pred{tc.b}))
		}
	}
}

// TestCanonicalDistinguishes pins sets that must NOT collide.
func TestCanonicalDistinguishes(t *testing.T) {
	x, y := VarRef(0), VarRef(1)
	cases := []struct {
		name string
		a, b []Pred
	}{
		{"different-bound",
			[]Pred{Compare(x, Const(5), LE)},
			[]Pred{Compare(x, Const(6), LE)}},
		{"different-rel",
			[]Pred{Compare(x, Const(5), LE)},
			[]Pred{Compare(x, Const(5), EQ)}},
		{"square-vs-product", // x*x and x*y are different shapes
			[]Pred{Compare(Mul(x, x), Const(4), LE)},
			[]Pred{Compare(Mul(x, y), Const(4), LE)}},
		{"duplicate-counts",
			[]Pred{Compare(x, Const(5), LE)},
			[]Pred{Compare(x, Const(5), LE), Compare(x, Const(5), LE)}},
		{"shared-vs-distinct-vars",
			[]Pred{Compare(x, Const(1), GE), Compare(x, Const(9), LE)},
			[]Pred{Compare(x, Const(1), GE), Compare(y, Const(9), LE)}},
	}
	for _, tc := range cases {
		if CanonicalKey(tc.a) == CanonicalKey(tc.b) {
			t.Errorf("%s: sets should not collide\na: %s\nb: %s",
				tc.name, CanonicalString(tc.a), CanonicalString(tc.b))
		}
	}
}

// TestCanonicalOverflowSafety: coefficients near the int64 edge must not be
// folded into the ±1 rewrites (which would overflow and alias inequivalent
// predicates); the raw-tree fallback keeps them distinct.
func TestCanonicalOverflowSafety(t *testing.T) {
	x := VarRef(0)
	huge := int64(1) << 62
	a := []Pred{Compare(Mul(Const(huge), x), Const(0), GT)}
	b := []Pred{Compare(Mul(Const(-huge), x), Const(-1), LE)}
	if CanonicalKey(a) == CanonicalKey(b) {
		t.Fatalf("overflow-range coefficients must stay raw trees:\na: %s\nb: %s",
			CanonicalString(a), CanonicalString(b))
	}
}

// decodePreds builds a predicate set from fuzz bytes via a tiny stack
// machine, so the fuzzer can reach arbitrary tree shapes.
func decodePreds(data []byte) []Pred {
	var stack []*Expr
	var preds []Pred
	pop := func() *Expr {
		if len(stack) == 0 {
			return Const(1)
		}
		e := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		return e
	}
	for i := 0; i < len(data); i++ {
		op := data[i] % 12
		arg := int64(int8(data[i] / 12))
		switch op {
		case 0:
			stack = append(stack, Const(arg))
		case 1:
			stack = append(stack, Const(arg*(int64(1)<<55)))
		case 2:
			stack = append(stack, VarRef(Var(arg&7)))
		case 3:
			stack = append(stack, Add(pop(), pop()))
		case 4:
			stack = append(stack, Sub(pop(), pop()))
		case 5:
			stack = append(stack, Mul(pop(), pop()))
		case 6:
			stack = append(stack, Div(pop(), pop()))
		case 7:
			stack = append(stack, Mod(pop(), pop()))
		case 8:
			stack = append(stack, Neg(pop()))
		default:
			preds = append(preds, Pred{E: pop(), Rel: Rel(op % 6)})
		}
		if len(preds) > 16 {
			break
		}
	}
	return preds
}

// FuzzCanonicalKey checks that canonicalization never panics, is
// deterministic, and is invariant under reversal (a reordering).
func FuzzCanonicalKey(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{2, 14, 0, 40, 3, 130, 9})
	f.Add([]byte{1, 1, 2, 5, 11, 2, 26, 6, 10})
	f.Fuzz(func(t *testing.T, data []byte) {
		preds := decodePreds(data)
		k1 := CanonicalKey(preds)
		if k2 := CanonicalKey(preds); k2 != k1 {
			t.Fatalf("key not deterministic: %s vs %s", k1, k2)
		}
		rev := make([]Pred, len(preds))
		for i, p := range preds {
			rev[len(preds)-1-i] = p
		}
		if k3 := CanonicalKey(rev); k3 != k1 {
			t.Fatalf("key not reorder-invariant: %s vs %s", k1, k3)
		}
	})
}
