package proto

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sync"
	"time"

	"repro/internal/conc"
	"repro/internal/core"
	"repro/internal/mpi"
	"repro/internal/target"
)

// Options configures how a Driver launches and supervises its target.
type Options struct {
	// Args are the target binary's command-line arguments.
	Args []string

	// Env entries are appended to the parent environment.
	Env []string

	// Stderr receives the target's stderr (diagnostics are out-of-band;
	// the protocol owns stdout). Defaults to this process's stderr.
	Stderr io.Writer

	// HandshakeTimeout bounds the wait for the opening handshake frame;
	// default 10s.
	HandshakeTimeout time.Duration

	// Grace is the frame-read watchdog slack added to each iteration's
	// timeout, mirroring the in-process runtime's grace period for blocked
	// ranks to unwind; default 5s.
	Grace time.Duration
}

// Driver is the engine side of the protocol: a supervised external target
// process plus the core.Backend implementation that replays the engine's
// concrete input assignments to it and feeds its branch events back.
//
// Failure semantics match the in-process MPI runtime's: a target that exits
// (crash capture: the exit code lands in the error message), writes garbage,
// or stops responding (frame-read watchdog) surfaces as a failed iteration
// with one non-OK focus rank, which the engine records as an error-inducing
// input. The first failure is sticky — the process is killed and every
// subsequent Launch returns the same failure immediately — so a dead target
// yields one deduplicated error record and never stalls a scheduler.
//
// A Driver belongs to exactly one engine (the protocol is a sequential
// session); the creator owns Close.
type Driver struct {
	bin    string
	cmd    *exec.Cmd
	stdin  io.WriteCloser
	frames chan frameOrErr
	grace  time.Duration

	manifest target.Manifest

	stop     chan struct{}
	stopOnce sync.Once
	waitOnce sync.Once
	waitErr  error

	mu     sync.Mutex
	dead   error
	deadSt mpi.RankStatus
}

type frameOrErr struct {
	f   Frame
	err error
}

// Start launches the target binary, performs the handshake, and returns a
// ready Driver. The handshake manifest is validated before anything runs: a
// target announcing a broken static model (duplicate branch IDs, §IV-A cap
// violations) is refused here.
func Start(bin string, opt Options) (*Driver, error) {
	cmd := exec.Command(bin, opt.Args...)
	cmd.Env = append(os.Environ(), opt.Env...)
	cmd.Stderr = opt.Stderr
	if cmd.Stderr == nil {
		cmd.Stderr = os.Stderr
	}
	stdin, err := cmd.StdinPipe()
	if err != nil {
		return nil, fmt.Errorf("proto: %v", err)
	}
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		return nil, fmt.Errorf("proto: %v", err)
	}
	if err := cmd.Start(); err != nil {
		return nil, fmt.Errorf("proto: starting target %q: %w", bin, err)
	}
	d := &Driver{
		bin:    bin,
		cmd:    cmd,
		stdin:  stdin,
		frames: make(chan frameOrErr),
		stop:   make(chan struct{}),
		grace:  opt.Grace,
	}
	if d.grace <= 0 {
		d.grace = 5 * time.Second
	}
	go d.readLoop(stdout)

	hsTimeout := opt.HandshakeTimeout
	if hsTimeout <= 0 {
		hsTimeout = 10 * time.Second
	}
	timer := time.NewTimer(hsTimeout)
	defer timer.Stop()
	select {
	case fr := <-d.frames:
		if fr.err != nil {
			d.kill()
			d.wait()
			return nil, fmt.Errorf("proto: target %q died before handshake: %v", d.name(), fr.err)
		}
		if fr.f.Type != FrameHandshake {
			d.kill()
			d.wait()
			return nil, fmt.Errorf("proto: target %q opened with a %q frame, want handshake", d.name(), fr.f.Type)
		}
		hs := fr.f.Handshake
		if hs.Proto != Version {
			d.kill()
			d.wait()
			return nil, fmt.Errorf("proto: target %q speaks protocol %d, driver speaks %d", d.name(), hs.Proto, Version)
		}
		if err := hs.Manifest.Validate(); err != nil {
			d.kill()
			d.wait()
			return nil, fmt.Errorf("proto: target %q handshake: %w", d.name(), err)
		}
		d.manifest = hs.Manifest
	case <-timer.C:
		d.kill()
		d.wait()
		return nil, fmt.Errorf("proto: target %q sent no handshake within %s", d.name(), hsTimeout)
	}
	return d, nil
}

// Manifest returns the static program model the target announced in its
// handshake.
func (d *Driver) Manifest() target.Manifest { return d.manifest }

// Program builds the engine-side target.Program from the handshake
// manifest — the program model a campaign over this driver runs against.
func (d *Driver) Program() (*target.Program, error) {
	return target.FromManifest(d.manifest)
}

func (d *Driver) name() string { return filepath.Base(d.bin) }

// readLoop pumps frames from the target's stdout to Launch. It exits on the
// first read error (pushed to the channel for classification) or when the
// driver stops.
func (d *Driver) readLoop(stdout io.Reader) {
	br := bufio.NewReaderSize(stdout, 1<<16)
	for {
		f, err := ReadFrame(br)
		select {
		case d.frames <- frameOrErr{f: f, err: err}:
		case <-d.stop:
			return
		}
		if err != nil {
			return
		}
	}
}

// Launch implements core.Backend: one engine iteration over the pipe.
func (d *Driver) Launch(s core.LaunchSpec) mpi.RunResult {
	start := time.Now()
	d.mu.Lock()
	dead, deadSt := d.dead, d.deadSt
	d.mu.Unlock()
	if dead != nil {
		return d.failResult(s, dead, deadSt, start)
	}

	err := WriteFrame(d.stdin, Frame{Type: FrameAssign, Assign: &Assign{
		Iter:       s.Iter,
		NProcs:     s.NProcs,
		Focus:      s.Focus,
		Seed:       s.Seed,
		TimeoutMS:  s.Timeout.Milliseconds(),
		MaxTicks:   s.MaxTicks,
		Reduction:  s.Reduction,
		OneWay:     s.OneWay,
		TraceHint:  s.TraceHint,
		Inputs:     s.Inputs,
		Params:     s.Params,
		Schedules:  s.Schedules,
		MatchOrder: s.MatchOrder,
	}})
	if err != nil {
		// The write half broke: the target is gone. Classify by exit code.
		err, st := d.exitFailure()
		return d.failResult(s, err, st, start)
	}

	timeout := s.Timeout
	if timeout <= 0 {
		timeout = time.Minute // mirror mpi.Launch's default
	}
	watchdog := timeout + d.grace
	ranks := make([]mpi.RankResult, s.NProcs)
	for i := range ranks {
		ranks[i].Rank = i
	}
	timer := time.NewTimer(watchdog)
	defer timer.Stop()
	for {
		select {
		case fr := <-d.frames:
			if fr.err != nil {
				var ferr error
				var st mpi.RankStatus
				if errors.Is(fr.err, io.EOF) {
					ferr, st = d.exitFailure()
				} else {
					ferr, st = d.fail(mpi.StatusCrash,
						fmt.Errorf("proto: unreadable frame from target %q: %v", d.name(), fr.err))
				}
				return d.failResult(s, ferr, st, start)
			}
			switch fr.f.Type {
			case FrameBranch:
				b := fr.f.Branch
				if b.Rank < 0 || b.Rank >= len(ranks) {
					ferr, st := d.fail(mpi.StatusCrash,
						fmt.Errorf("proto: target %q reported branch events for rank %d of %d", d.name(), b.Rank, len(ranks)))
					return d.failResult(s, ferr, st, start)
				}
				l, err := conc.Decode(b.Log)
				if err != nil {
					ferr, st := d.fail(mpi.StatusCrash,
						fmt.Errorf("proto: undecodable rank log from target %q: %v", d.name(), err))
					return d.failResult(s, ferr, st, start)
				}
				ranks[b.Rank].Log = l
				ranks[b.Rank].LogBytes = len(b.Log)
			case FrameError:
				ev := fr.f.Error
				if ev.Rank < 0 || ev.Rank >= len(ranks) {
					ferr, st := d.fail(mpi.StatusCrash,
						fmt.Errorf("proto: target %q reported an error for rank %d of %d", d.name(), ev.Rank, len(ranks)))
					return d.failResult(s, ferr, st, start)
				}
				ranks[ev.Rank].Status = mpi.RankStatus(ev.Status)
				ranks[ev.Rank].Exit = ev.Exit
				if ev.Msg != "" {
					ranks[ev.Rank].Err = errors.New(ev.Msg)
				}
			case FrameDone:
				return mpi.RunResult{Ranks: ranks, Elapsed: time.Since(start)}
			default:
				ferr, st := d.fail(mpi.StatusCrash,
					fmt.Errorf("proto: unexpected %q frame from target %q mid-iteration", fr.f.Type, d.name()))
				return d.failResult(s, ferr, st, start)
			}
		case <-timer.C:
			ferr, st := d.fail(mpi.StatusHang,
				fmt.Errorf("proto: target %q stopped responding (frame watchdog %s)", d.name(), watchdog))
			return d.failResult(s, ferr, st, start)
		}
	}
}

// exitFailure reaps the exited target and produces the crash-capture
// failure: the exit code becomes part of the (stable, dedupable) message.
func (d *Driver) exitFailure() (error, mpi.RankStatus) {
	d.kill()
	d.wait()
	code := -1
	if ps := d.cmd.ProcessState; ps != nil {
		code = ps.ExitCode()
	}
	var err error
	if code == 0 {
		err = fmt.Errorf("proto: target %q closed the session mid-campaign", d.name())
	} else {
		err = fmt.Errorf("proto: target %q exited with code %d mid-iteration", d.name(), code)
	}
	return d.fail(mpi.StatusAborted, err)
}

// fail kills the target and installs the sticky failure; the first failure
// wins, so every later iteration reports the identical error record and the
// engine's dedup collapses them to one distinct bug.
func (d *Driver) fail(st mpi.RankStatus, err error) (error, mpi.RankStatus) {
	d.kill()
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.dead == nil {
		d.dead, d.deadSt = err, st
	}
	return d.dead, d.deadSt
}

// failResult synthesizes the iteration outcome for a failed session: the
// focus rank carries the failure (matching where the in-process runtime
// pins primary failures), everything else is an empty OK rank with no log,
// which sends the engine through its restart path.
func (d *Driver) failResult(s core.LaunchSpec, err error, st mpi.RankStatus, start time.Time) mpi.RunResult {
	n := s.NProcs
	if n < 1 {
		n = 1
	}
	ranks := make([]mpi.RankResult, n)
	for i := range ranks {
		ranks[i].Rank = i
	}
	f := s.Focus
	if f < 0 || f >= n {
		f = 0
	}
	ranks[f].Status = st
	ranks[f].Err = err
	return mpi.RunResult{Ranks: ranks, Elapsed: time.Since(start)}
}

// kill terminates the target process and stops the read loop. Idempotent.
func (d *Driver) kill() {
	d.stopOnce.Do(func() {
		close(d.stop)
		if d.cmd.Process != nil {
			d.cmd.Process.Kill()
		}
	})
}

// wait reaps the process exactly once.
func (d *Driver) wait() error {
	d.waitOnce.Do(func() { d.waitErr = d.cmd.Wait() })
	return d.waitErr
}

// Close implements core.Backend: it ends the session by closing the
// target's stdin (a healthy Serve loop exits 0 on EOF), waits briefly, and
// kills the process if it lingers. It returns the target's abnormal exit
// only for sessions that had not already failed — a failure Launch reported
// is not reported twice.
func (d *Driver) Close() error {
	d.stdin.Close()
	done := make(chan error, 1)
	go func() { done <- d.wait() }()
	var werr error
	select {
	case werr = <-done:
	case <-time.After(5 * time.Second):
		d.kill()
		werr = <-done
	}
	d.kill() // stop the read loop even when the process exited on its own
	d.mu.Lock()
	dead := d.dead
	d.mu.Unlock()
	if dead != nil || werr == nil {
		return nil
	}
	return fmt.Errorf("proto: target %q: %w", d.name(), werr)
}
