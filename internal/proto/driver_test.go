package proto_test

import (
	"os"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/proto"
	"repro/internal/sched"
	"repro/internal/spec"
)

// startFault re-execs this test binary as a misbehaving protocol target (see
// TestMain) and wires a driver to it with a short watchdog.
func startFault(t *testing.T, mode string) *proto.Driver {
	t.Helper()
	drv, err := proto.Start(os.Args[0], proto.Options{
		Env:    []string{"COMPI_PROTO_FAULT=" + mode},
		Stderr: os.Stderr,
		Grace:  500 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("starting %q fault target: %v", mode, err)
	}
	t.Cleanup(func() { drv.Close() })
	return drv
}

// runFaultCampaign drives a short campaign against a fault target and returns
// the result. The run must terminate well inside the test timeout even though
// the target dies on iteration 0: the driver's sticky failure turns every
// later iteration into an immediate failed launch.
func runFaultCampaign(t *testing.T, drv *proto.Driver) core.Result {
	t.Helper()
	prog, err := drv.Program()
	if err != nil {
		t.Fatal(err)
	}
	if prog.Name != "mini" {
		t.Fatalf("handshake program = %q, want mini", prog.Name)
	}
	eng := core.NewEngine(core.Config{
		Program:      prog,
		Backend:      drv,
		Iterations:   4,
		InitialProcs: 2,
		MaxProcs:     4,
		Framework:    true,
		Seed:         1,
		RunTimeout:   time.Second,
	})
	return eng.Run()
}

// assertSingleFault checks the shared postcondition of every fault mode: the
// campaign completes its budget, every iteration fails through the restart
// path, and the dead target collapses to exactly one distinct error record.
func assertSingleFault(t *testing.T, res core.Result, wantMsg string) {
	t.Helper()
	if len(res.Iterations) != 4 {
		t.Fatalf("campaign ran %d iterations, want the full budget of 4", len(res.Iterations))
	}
	for _, it := range res.Iterations {
		if !it.Failed || !it.Restarted {
			t.Fatalf("iteration %d: Failed=%v Restarted=%v, want both true", it.Iter, it.Failed, it.Restarted)
		}
	}
	distinct := res.DistinctErrors()
	if len(distinct) != 1 {
		keys := make([]string, 0, len(distinct))
		for k := range distinct {
			keys = append(keys, k)
		}
		t.Fatalf("got %d distinct error keys %q, want exactly 1", len(distinct), keys)
	}
	for msg, recs := range distinct {
		if !strings.Contains(msg, wantMsg) {
			t.Fatalf("error key %q does not mention %q", msg, wantMsg)
		}
		if len(recs) != 4 {
			t.Fatalf("error key has %d records, want one per iteration (4)", len(recs))
		}
	}
}

func TestDriverTargetExitsMidIteration(t *testing.T) {
	res := runFaultCampaign(t, startFault(t, "exit-mid"))
	assertSingleFault(t, res, "exited with code 3")
}

func TestDriverTargetWritesGarbage(t *testing.T) {
	res := runFaultCampaign(t, startFault(t, "garbage"))
	assertSingleFault(t, res, "unreadable frame")
}

func TestDriverTargetStopsResponding(t *testing.T) {
	start := time.Now()
	res := runFaultCampaign(t, startFault(t, "stall"))
	assertSingleFault(t, res, "stopped responding")
	// Watchdog = RunTimeout (1s) + Grace (500ms), and only the first
	// iteration waits on it; the sticky failure short-circuits the rest.
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("stalled target held the campaign for %s; watchdog did not fire in time", elapsed)
	}
}

// TestSchedSurvivesDeadExternalTarget runs a dying external target through
// the scheduler next to nothing else: the batch must complete (no worker
// hang) with the campaign reporting its single deduplicated error.
func TestSchedSurvivesDeadExternalTarget(t *testing.T) {
	rep := sched.Run([]sched.Spec{{Campaign: spec.Campaign{
		Label: "fault/exit-mid",
		External: &spec.External{
			Bin: os.Args[0],
			Env: []string{"COMPI_PROTO_FAULT=exit-mid"},
		},
		Iterations:   4,
		InitialProcs: 2,
		MaxProcs:     4,
		Framework:    true,
		Seed:         1,
		RunTimeout:   time.Second,
	}}}, sched.Options{Workers: 2})

	c := rep.Campaigns[0]
	if c.Err != nil {
		t.Fatalf("campaign errored instead of recording the fault: %v", c.Err)
	}
	if c.Target != "mini" {
		t.Fatalf("target resolved to %q, want mini (from the handshake manifest)", c.Target)
	}
	if n := rep.DistinctErrorCount(); n != 1 {
		t.Fatalf("report has %d distinct errors, want 1", n)
	}
	for msg := range rep.Errors["mini"] {
		if !strings.Contains(msg, "exited with code 3") {
			t.Fatalf("merged error key %q does not carry the exit code", msg)
		}
	}
}
