package proto

import (
	"bytes"
	"encoding/binary"
	"io"
	"testing"

	"repro/internal/mpi"
	"repro/internal/target"
)

// FuzzDecodeFrame throws arbitrary bytes at the wire decoder. The decoder's
// contract under corruption — flipped length prefixes, truncated payloads,
// oversized claims — is to return an error: it must never panic, and it must
// reject an oversized length prefix before allocating the payload buffer, so
// hostile input cannot force unbounded allocation.
func FuzzDecodeFrame(f *testing.F) {
	b := target.NewBuilder("fuzz", 1)
	b.Cond("f", "x > 0")
	b.In("x")
	manifest := b.Build(func(*mpi.Proc) int { return 0 }).Manifest()

	for _, fr := range []Frame{
		{Type: FrameHandshake, Handshake: &Handshake{Proto: Version, Manifest: manifest}},
		{Type: FrameAssign, Assign: &Assign{Iter: 1, NProcs: 4, Focus: 1, Seed: 7,
			Inputs: map[string]int64{"x": 3}}},
		{Type: FrameBranch, Branch: &Branch{Iter: 1, Rank: 2, Log: []byte{0, 1, 2, 3}}},
		{Type: FrameError, Error: &ErrorEvent{Iter: 1, Rank: 0, Status: 3, Exit: 1, Msg: "boom"}},
		{Type: FrameDone, Done: &Done{Iter: 1, ElapsedUS: 42}},
	} {
		raw, err := EncodeFrame(fr)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(raw)
		f.Add(raw[:len(raw)-3]) // truncated payload
		f.Add(raw[:2])          // truncated length prefix
	}
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 0})             // zero-length frame
	f.Add([]byte{0xff, 0xff, 0xff, 0xff}) // 4 GiB length claim
	f.Add(append([]byte{0, 0, 0, 4}, "junk"...))
	f.Add(append([]byte{0, 0, 0, 2}, "{}"...)) // valid JSON, no type

	f.Fuzz(func(t *testing.T, data []byte) {
		fr, err := ReadFrame(bytes.NewReader(data))
		if err != nil {
			if err == io.EOF && len(data) != 0 {
				t.Fatalf("io.EOF for %d leftover bytes; EOF must mean a clean frame boundary", len(data))
			}
			return
		}
		// Anything the decoder accepts must re-encode: accepted frames are
		// well-formed envelopes by construction.
		raw, err := EncodeFrame(fr)
		if err != nil {
			t.Fatalf("decoded frame does not re-encode: %v", err)
		}
		if n := binary.BigEndian.Uint32(raw); int(n) != len(raw)-4 {
			t.Fatalf("re-encoded frame has bad length prefix %d for %d payload bytes", n, len(raw)-4)
		}
	})
}
