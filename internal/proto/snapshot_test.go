package proto_test

import (
	"bytes"
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/proto"
	"repro/internal/target"
)

// TestSnapshotConformance pins the persistence half of the protocol
// contract: a campaign driven over the pipe must snapshot to the same
// persistent state as its in-process twin — in particular the same Prev map,
// which with an external backend is learned from run logs (the engine-side
// variable space never allocated those names itself).
func TestSnapshotConformance(t *testing.T) {
	bin := targetBin(t)
	for _, name := range []string{"skeleton", "stencil"} {
		t.Run(name, func(t *testing.T) {
			prog, ok := target.Lookup(name)
			if !ok {
				t.Fatalf("target %q not registered", name)
			}
			cfg := conformanceConfig()
			cfg.Program = prog
			eIn := core.NewEngine(cfg)
			eIn.Run()
			snapIn := eIn.Snapshot()

			drv, err := proto.Start(bin, proto.Options{Args: []string{"-target", name}})
			if err != nil {
				t.Fatal(err)
			}
			defer drv.Close()
			remote, err := drv.Program()
			if err != nil {
				t.Fatal(err)
			}
			pcfg := conformanceConfig()
			pcfg.Program = remote
			pcfg.Backend = drv
			eExt := core.NewEngine(pcfg)
			eExt.Run()

			// The external snapshot goes through its serialized form, the
			// way the store and -state actually carry it.
			var buf bytes.Buffer
			if err := eExt.Snapshot().Save(&buf); err != nil {
				t.Fatal(err)
			}
			snapExt, err := core.LoadSnapshot(&buf)
			if err != nil {
				t.Fatal(err)
			}

			if !reflect.DeepEqual(snapExt.Prev, snapIn.Prev) {
				t.Fatalf("Prev maps diverged across the pipe:\nin-process: %v\npiped:      %v",
					snapIn.Prev, snapExt.Prev)
			}
			if !reflect.DeepEqual(snapExt.Inputs, snapIn.Inputs) {
				t.Fatalf("inputs diverged: %v vs %v", snapIn.Inputs, snapExt.Inputs)
			}
			if !reflect.DeepEqual(snapExt.Covered, snapIn.Covered) {
				t.Fatalf("coverage diverged: %d vs %d branches",
					len(snapIn.Covered), len(snapExt.Covered))
			}
			if snapExt.Iters != snapIn.Iters || snapExt.RNG != snapIn.RNG {
				t.Fatalf("campaign position diverged: iters %d/%d rng %d/%d",
					snapIn.Iters, snapExt.Iters, snapIn.RNG, snapExt.RNG)
			}
			if !reflect.DeepEqual(snapExt.Refuted, snapIn.Refuted) {
				t.Fatalf("refuted sets diverged:\nin-process: %v\npiped:      %v",
					snapIn.Refuted, snapExt.Refuted)
			}
		})
	}
}
