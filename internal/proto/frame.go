// Package proto is the out-of-process target protocol: the wire format and
// the two endpoints that let COMPI drive a program it did not compile.
//
// COMPI proper instruments arbitrary C MPI programs and runs them as
// separate processes under mpiexec, talking to them through files. This
// package is that process boundary for the reproduction: a length-prefixed
// JSON protocol over a pair of pipes (the target's stdin/stdout), with the
// engine side and the target side each holding one half.
//
//   - Frame/WriteFrame/ReadFrame: the wire format. Every frame is a 4-byte
//     big-endian length followed by one JSON object; ReadFrame refuses
//     zero-length and oversized frames before allocating anything.
//   - Driver: the engine side. It launches the target binary, performs the
//     handshake (the target announces its target.Manifest), and implements
//     core.Backend: each engine iteration becomes one assign-inputs frame
//     out and a stream of branch-event/error frames back, terminated by
//     iteration-done. A frame-read watchdog and exit-code capture translate
//     a crashed, garbage-spewing, or wedged target into the same error
//     records the in-process MPI runtime produces.
//   - Serve: the target side. Any Go binary that links a registered
//     target.Program (or builds one with internal/target's Builder) calls
//     Serve(os.Stdin, os.Stdout, prog) to become drivable; cmd/compi-target
//     is the reference binary exposing the built-in targets.
//
// Session lifecycle, from the driver's point of view:
//
//	start target process
//	<- handshake {proto, manifest}
//	repeat per engine iteration:
//	    -> assign-inputs {iter, nprocs, focus, seed, inputs, params, ...}
//	    <- branch-event {iter, rank, log}      (one per rank that produced a log)
//	    <- error {iter, rank, status, exit, msg}  (one per abnormal rank)
//	    <- iteration-done {iter, elapsed_us}
//	close stdin; target exits 0
//
// The target side executes each iteration through the exact same in-process
// backend the engine uses locally (core.NewInProcess), so a piped campaign
// and an in-process campaign over the same Config are bit-identical — the
// determinism contract the cross-process conformance suite pins.
package proto

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/target"
)

// Version is the protocol version carried in the handshake. The driver
// refuses a target speaking a different version: the frame schema is an
// interface contract, pinned by a golden-file test. Version 2 added the
// schedule-space fields to Assign (Schedules, MatchOrder) and the deadlock
// status to ErrorEvent's range — a v1 peer would silently drop the match
// directives, so the mismatch is a refusal, not a downgrade.
const Version = 2

// MaxFrameBytes bounds a single frame's JSON payload. Branch-event frames
// carry whole rank logs (the focus trace scales with the instrumentation
// tick budget), so the bound is generous; anything larger is a corrupt or
// hostile peer and is rejected before allocation.
const MaxFrameBytes = 64 << 20

// FrameType discriminates the protocol's frames.
type FrameType string

// The five frame types of protocol version 1.
const (
	// FrameHandshake opens a session (target → driver): protocol version
	// and the target's static manifest.
	FrameHandshake FrameType = "handshake"
	// FrameAssign starts one iteration (driver → target): the concrete
	// launch setup and input assignment.
	FrameAssign FrameType = "assign-inputs"
	// FrameBranch carries one rank's instrumentation log — its branch
	// events — back to the driver (target → driver).
	FrameBranch FrameType = "branch-event"
	// FrameError reports one rank's abnormal outcome (target → driver).
	FrameError FrameType = "error"
	// FrameDone ends one iteration (target → driver).
	FrameDone FrameType = "iteration-done"
)

// Frame is the wire envelope: a type tag plus exactly one payload, the one
// matching the type. ReadFrame enforces the pairing.
type Frame struct {
	Type      FrameType   `json:"type"`
	Handshake *Handshake  `json:"handshake,omitempty"`
	Assign    *Assign     `json:"assign,omitempty"`
	Branch    *Branch     `json:"branch,omitempty"`
	Error     *ErrorEvent `json:"error,omitempty"`
	Done      *Done       `json:"done,omitempty"`
}

// Handshake is the session-opening payload: the target announces which
// protocol it speaks and what program it serves. The manifest is the same
// artifact `compi targets --json` exports, and it is validated on receipt —
// a target with duplicate branch IDs or §IV-A-violating inputs is refused
// before any campaign starts.
type Handshake struct {
	Proto    int             `json:"proto"`
	Manifest target.Manifest `json:"manifest"`
}

// Assign is the per-iteration request: everything core.LaunchSpec carries,
// flattened to plain JSON values. Times travel as explicit units (ms) so
// both ends agree without sharing a clock.
type Assign struct {
	Iter      int              `json:"iter"`
	NProcs    int              `json:"nprocs"`
	Focus     int              `json:"focus"`
	Seed      int64            `json:"seed"`
	TimeoutMS int64            `json:"timeout_ms,omitempty"`
	MaxTicks  int64            `json:"max_ticks,omitempty"`
	Reduction bool             `json:"reduction,omitempty"`
	OneWay    bool             `json:"one_way,omitempty"`
	TraceHint int              `json:"trace_hint,omitempty"`
	Inputs    map[string]int64 `json:"inputs,omitempty"`
	Params    map[string]int64 `json:"params,omitempty"`

	// Schedules and MatchOrder (protocol v2) carry the schedule-space
	// dimension across the pipe: quiescent wildcard matching on, and the
	// per-rank match directives for this iteration (empty = default order).
	Schedules  bool    `json:"schedules,omitempty"`
	MatchOrder [][]int `json:"match_order,omitempty"`
}

// Branch carries one rank's branch events: the conc.Log wire encoding
// (base64 inside JSON), exactly the bytes the in-process runtime hands the
// engine, so coverage and the focus constraint path survive the pipe
// unchanged.
type Branch struct {
	Iter int    `json:"iter"`
	Rank int    `json:"rank"`
	Log  []byte `json:"log"`
}

// ErrorEvent reports one rank's abnormal end: the mpi.RankStatus enum value
// (1 crash, 2 hang, 3 aborted, 4 deadlock), the exit code, and the error
// message the in-process runtime would have recorded — the engine's
// error-dedup key. For deadlocks the message names the wait-for cycle.
type ErrorEvent struct {
	Iter   int    `json:"iter"`
	Rank   int    `json:"rank"`
	Status int    `json:"status"`
	Exit   int    `json:"exit,omitempty"`
	Msg    string `json:"msg,omitempty"`
}

// Done ends one iteration; elapsed is the target-side wall clock.
type Done struct {
	Iter      int   `json:"iter"`
	ElapsedUS int64 `json:"elapsed_us,omitempty"`
}

// validate checks the type tag is known and its payload present.
func (f *Frame) validate() error {
	var ok bool
	switch f.Type {
	case FrameHandshake:
		ok = f.Handshake != nil
	case FrameAssign:
		ok = f.Assign != nil
	case FrameBranch:
		ok = f.Branch != nil
	case FrameError:
		ok = f.Error != nil
	case FrameDone:
		ok = f.Done != nil
	default:
		return fmt.Errorf("proto: unknown frame type %q", f.Type)
	}
	if !ok {
		return fmt.Errorf("proto: %q frame without its payload", f.Type)
	}
	return nil
}

// EncodeRaw wraps an already-serialized payload in the wire form shared by
// every COMPI protocol: a 4-byte big-endian payload length, then the payload
// bytes. It is the codec layer under EncodeFrame, exported so other frame
// schemas (the fleet's campaign-dispatch protocol) reuse the exact same
// framing without adopting this package's frame envelope.
func EncodeRaw(payload []byte) ([]byte, error) {
	if len(payload) == 0 {
		return nil, fmt.Errorf("proto: refusing to encode a zero-length frame")
	}
	if len(payload) > MaxFrameBytes {
		return nil, fmt.Errorf("proto: frame of %d bytes exceeds limit %d", len(payload), MaxFrameBytes)
	}
	b := make([]byte, 4+len(payload))
	binary.BigEndian.PutUint32(b, uint32(len(payload)))
	copy(b[4:], payload)
	return b, nil
}

// WriteRaw writes one length-prefixed payload to w.
func WriteRaw(w io.Writer, payload []byte) error {
	b, err := EncodeRaw(payload)
	if err != nil {
		return err
	}
	_, err = w.Write(b)
	return err
}

// ReadRaw reads one length-prefixed payload from r. It returns io.EOF only
// on a clean frame boundary (no bytes before the length prefix); a frame cut
// off mid-way is io.ErrUnexpectedEOF. The length prefix is bounds-checked
// before the payload buffer is allocated, so corrupt input cannot force huge
// allocations.
func ReadRaw(r io.Reader) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if err == io.ErrUnexpectedEOF {
			return nil, fmt.Errorf("proto: truncated length prefix: %w", err)
		}
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n == 0 {
		return nil, fmt.Errorf("proto: zero-length frame")
	}
	if n > MaxFrameBytes {
		return nil, fmt.Errorf("proto: frame of %d bytes exceeds limit %d", n, MaxFrameBytes)
	}
	payload := make([]byte, n)
	if m, err := io.ReadFull(r, payload); err != nil {
		return nil, fmt.Errorf("proto: truncated frame payload (%d of %d bytes): %w", m, n, err)
	}
	return payload, nil
}

// EncodeFrame serializes f to its wire form: 4-byte big-endian payload
// length, then the JSON payload.
func EncodeFrame(f Frame) ([]byte, error) {
	if err := f.validate(); err != nil {
		return nil, err
	}
	payload, err := json.Marshal(f)
	if err != nil {
		return nil, fmt.Errorf("proto: encoding %q frame: %w", f.Type, err)
	}
	b, err := EncodeRaw(payload)
	if err != nil {
		return nil, fmt.Errorf("proto: %q frame: %w", f.Type, err)
	}
	return b, nil
}

// WriteFrame writes f to w as one wire frame.
func WriteFrame(w io.Writer, f Frame) error {
	b, err := EncodeFrame(f)
	if err != nil {
		return err
	}
	_, err = w.Write(b)
	return err
}

// ReadFrame reads one frame from r: one ReadRaw payload that must decode to
// exactly one valid frame envelope.
func ReadFrame(r io.Reader) (Frame, error) {
	payload, err := ReadRaw(r)
	if err != nil {
		return Frame{}, err
	}
	var f Frame
	if err := json.Unmarshal(payload, &f); err != nil {
		return Frame{}, fmt.Errorf("proto: bad frame payload: %w", err)
	}
	if err := f.validate(); err != nil {
		return Frame{}, err
	}
	return f, nil
}
