package proto_test

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"io"
	"reflect"
	"strings"
	"testing"

	"repro/internal/proto"
)

// handshakeGolden pins the on-the-wire schema of the session-opening frame
// (protocol version 2, which added the schedule-space Assign fields). It
// embeds the manifest schema `compi targets --json` exports, so drift in
// either layer is an explicit interface break for external targets: update
// deliberately, alongside README/DESIGN and the protocol Version.
const handshakeGolden = `{"type":"handshake","handshake":{"proto":2,"manifest":{"program":"mini","sloc":42,"total_branches":4,"functions":["sanity","solve","main"],"conds":[{"id":0,"func":"sanity","label":"x \u003e= 1"},{"id":1,"func":"solve","label":"i \u003c x"}],"calls":[{"id":0,"caller":"main","callee":"sanity"},{"id":1,"caller":"main","callee":"solve"}],"inputs":[{"name":"x","cap":100,"capped":true},{"name":"seed"}]}}}`

func TestHandshakeGolden(t *testing.T) {
	raw, err := proto.EncodeFrame(proto.Frame{Type: proto.FrameHandshake, Handshake: &proto.Handshake{
		Proto:    proto.Version,
		Manifest: fixtureProgram().Manifest(),
	}})
	if err != nil {
		t.Fatal(err)
	}
	if len(raw) < 4 {
		t.Fatalf("frame of %d bytes has no length prefix", len(raw))
	}
	if n := binary.BigEndian.Uint32(raw); int(n) != len(raw)-4 {
		t.Fatalf("length prefix says %d, payload is %d bytes", n, len(raw)-4)
	}
	if got := string(raw[4:]); got != handshakeGolden {
		t.Fatalf("handshake frame drifted from the golden wire form.\ngot:\n%s\nwant:\n%s", got, handshakeGolden)
	}
}

func TestFrameRoundTrip(t *testing.T) {
	frames := []proto.Frame{
		{Type: proto.FrameHandshake, Handshake: &proto.Handshake{Proto: proto.Version, Manifest: fixtureProgram().Manifest()}},
		{Type: proto.FrameAssign, Assign: &proto.Assign{
			Iter: 3, NProcs: 8, Focus: 2, Seed: 99, TimeoutMS: 10_000, MaxTicks: 5_000_000,
			Reduction: true, Inputs: map[string]int64{"x": 7}, Params: map[string]int64{"susy.dimcap": 4},
			Schedules: true, MatchOrder: [][]int{{1, 0}, nil, {2}},
		}},
		{Type: proto.FrameBranch, Branch: &proto.Branch{Iter: 3, Rank: 1, Log: []byte{1, 2, 3}}},
		{Type: proto.FrameError, Error: &proto.ErrorEvent{Iter: 3, Rank: 0, Status: 1, Exit: 2, Msg: "rank 0: boom"}},
		{Type: proto.FrameDone, Done: &proto.Done{Iter: 3, ElapsedUS: 1234}},
	}
	var buf bytes.Buffer
	for _, f := range frames {
		if err := proto.WriteFrame(&buf, f); err != nil {
			t.Fatal(err)
		}
	}
	for i, want := range frames {
		got, err := proto.ReadFrame(&buf)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		gb, _ := json.Marshal(got)
		wb, _ := json.Marshal(want)
		if !reflect.DeepEqual(gb, wb) {
			t.Fatalf("frame %d drifted through the wire:\ngot  %s\nwant %s", i, gb, wb)
		}
	}
	if _, err := proto.ReadFrame(&buf); err != io.EOF {
		t.Fatalf("clean stream end returned %v, want io.EOF", err)
	}
}

func TestReadFrameRejects(t *testing.T) {
	valid, err := proto.EncodeFrame(proto.Frame{Type: proto.FrameDone, Done: &proto.Done{Iter: 1}})
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		data []byte
		want string
	}{
		{"zero length", []byte{0, 0, 0, 0}, "zero-length"},
		{"oversized", []byte{0xff, 0xff, 0xff, 0xff}, "exceeds limit"},
		{"truncated prefix", valid[:2], "truncated length prefix"},
		{"truncated payload", valid[:len(valid)-3], "truncated frame payload"},
		{"not json", append([]byte{0, 0, 0, 4}, "junk"...), "bad frame payload"},
		{"unknown type", mustEncodeJSON(t, map[string]any{"type": "nonsense"}), "unknown frame type"},
		{"payload missing", mustEncodeJSON(t, map[string]any{"type": "iteration-done"}), "without its payload"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := proto.ReadFrame(bytes.NewReader(tc.data))
			if err == nil {
				t.Fatal("ReadFrame accepted corrupt input")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q, want substring %q", err, tc.want)
			}
		})
	}
}

// mustEncodeJSON frames an arbitrary JSON object with a correct length
// prefix, for protocol-level (rather than framing-level) rejection cases.
func mustEncodeJSON(t *testing.T, v any) []byte {
	t.Helper()
	payload, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	b := make([]byte, 4+len(payload))
	binary.BigEndian.PutUint32(b, uint32(len(payload)))
	copy(b[4:], payload)
	return b
}
