package proto_test

import (
	"testing"

	"repro/internal/binstat"
	"repro/internal/core"
	"repro/internal/proto"
	"repro/internal/target"
)

// TestProfilingConformance is the measurement-never-perturbs pin at the
// proto layer: a profiled campaign must be observationally identical to an
// unprofiled one on both sides of the pipe — in-process and driving an
// external compi-target process. Profiling lives entirely on the engine
// side, so the assign frames a profiled driver writes must be byte-for-byte
// what an unprofiled driver writes; any divergence here means measurement
// leaked into the protocol.
func TestProfilingConformance(t *testing.T) {
	bin := targetBin(t)
	for _, name := range []string{"skeleton", "stencil"} {
		t.Run(name, func(t *testing.T) {
			prog, ok := target.Lookup(name)
			if !ok {
				t.Fatalf("target %q not registered", name)
			}

			cfg := conformanceConfig()
			cfg.Program = prog
			plain := core.NewEngine(cfg).Run()

			pcfg := conformanceConfig()
			pcfg.Program = prog
			pcfg.Profiler = binstat.New()
			profiled := core.NewEngine(pcfg).Run()
			assertConformant(t, plain, profiled)

			drv, err := proto.Start(bin, proto.Options{Args: []string{"-target", name}})
			if err != nil {
				t.Fatal(err)
			}
			defer drv.Close()
			remote, err := drv.Program()
			if err != nil {
				t.Fatal(err)
			}
			xcfg := conformanceConfig()
			xcfg.Program = remote
			xcfg.Backend = drv
			xcfg.Profiler = binstat.New()
			piped := core.NewEngine(xcfg).Run()
			assertConformant(t, plain, piped)

			// The profiled piped run actually measured: the execute bin saw
			// every iteration.
			exe, ok := piped.Profile.Get("execute")
			if !ok || exe.Count != int64(len(piped.Iterations)) {
				t.Fatalf("piped campaign execute bin: %+v (want count %d)", exe, len(piped.Iterations))
			}
		})
	}
}
