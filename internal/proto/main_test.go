package proto_test

import (
	"fmt"
	"os"
	"testing"
	"time"

	"repro/internal/conc"
	"repro/internal/mpi"
	"repro/internal/proto"
	"repro/internal/target"
)

// TestMain doubles as the fault-injection target zoo: when re-executed with
// COMPI_PROTO_FAULT set, the test binary plays a misbehaving out-of-process
// target instead of running the tests. The driver tests exec os.Args[0] with
// the mode in the environment, so no extra binaries are needed to exercise
// every failure path across a real process boundary.
func TestMain(m *testing.M) {
	switch mode := os.Getenv("COMPI_PROTO_FAULT"); mode {
	case "":
		os.Exit(m.Run())
	case "exit-mid":
		// Dies mid-iteration after reporting one rank, like an
		// instrumented program crashing under mpiexec.
		writeHandshake()
		readAssign()
		mustWrite(proto.Frame{Type: proto.FrameBranch, Branch: &proto.Branch{
			Rank: 0, Log: (&conc.Log{Mode: conc.Light}).Encode(),
		}})
		os.Exit(3)
	case "garbage":
		// Answers the first iteration with bytes that are not a frame.
		writeHandshake()
		readAssign()
		os.Stdout.Write([]byte{0xff, 0xff, 0xff, 0xff, 'j', 'u', 'n', 'k'})
		os.Exit(0)
	case "stall":
		// Accepts the iteration and never answers: the driver's
		// frame-read watchdog must fire.
		writeHandshake()
		readAssign()
		time.Sleep(time.Hour)
		os.Exit(0)
	default:
		fmt.Fprintf(os.Stderr, "unknown COMPI_PROTO_FAULT mode %q\n", mode)
		os.Exit(2)
	}
}

// fixtureProgram builds the static model the protocol tests speak about —
// the same shape as internal/target's manifest fixture, unregistered.
func fixtureProgram() *target.Program {
	b := target.NewBuilder("mini", 42)
	b.Cond("sanity", "x >= 1")
	b.Cond("solve", "i < x")
	b.InCap("x", 100)
	b.In("seed")
	b.Call("main", "sanity")
	b.Call("main", "solve")
	return b.Build(func(*mpi.Proc) int { return 0 })
}

func writeHandshake() {
	mustWrite(proto.Frame{Type: proto.FrameHandshake, Handshake: &proto.Handshake{
		Proto:    proto.Version,
		Manifest: fixtureProgram().Manifest(),
	}})
}

func readAssign() proto.Frame {
	f, err := proto.ReadFrame(os.Stdin)
	if err != nil || f.Type != proto.FrameAssign {
		fmt.Fprintf(os.Stderr, "fault target: expected assign-inputs, got %v %v\n", f.Type, err)
		os.Exit(2)
	}
	return f
}

func mustWrite(f proto.Frame) {
	if err := proto.WriteFrame(os.Stdout, f); err != nil {
		fmt.Fprintf(os.Stderr, "fault target: %v\n", err)
		os.Exit(2)
	}
}
