package proto

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"time"

	"repro/internal/conc"
	"repro/internal/core"
	"repro/internal/mpi"
	"repro/internal/target"
)

// maxServeProcs bounds the per-iteration rank count a target accepts. The
// engine caps process counts at Config.MaxProcs (16 in the paper); anything
// past this is a confused or hostile driver, not a campaign.
const maxServeProcs = 1024

// Serve is the target side of the protocol: it turns the calling process
// into a drivable COMPI target for prog. It writes the handshake to w, then
// serves assign-inputs frames from r until EOF — each one executed through
// the same in-process backend the engine uses locally, with one variable
// space held for the whole session so symbolic variable IDs stay stable
// across iterations exactly as they do in-process.
//
// Any Go binary linking internal/conc-instrumented code can expose itself:
// build a target.Program (or look one up in the registry) and call
// Serve(os.Stdin, os.Stdout, prog). cmd/compi-target is the reference
// binary. Serve returns nil on a clean driver disconnect (EOF between
// iterations) and an error on a protocol violation, which the binary should
// turn into a non-zero exit so the driver's crash capture records it.
func Serve(r io.Reader, w io.Writer, prog *target.Program) error {
	if prog == nil {
		return fmt.Errorf("proto: Serve with a nil program")
	}
	bw := bufio.NewWriterSize(w, 1<<16)
	err := WriteFrame(bw, Frame{Type: FrameHandshake, Handshake: &Handshake{
		Proto:    Version,
		Manifest: prog.Manifest(),
	}})
	if err == nil {
		err = bw.Flush()
	}
	if err != nil {
		return fmt.Errorf("proto: writing handshake: %w", err)
	}

	backend := core.NewInProcess(prog, conc.NewVarSpace())
	defer backend.Close()

	br := bufio.NewReaderSize(r, 1<<16)
	for {
		f, err := ReadFrame(br)
		if errors.Is(err, io.EOF) {
			return nil // driver closed the session
		}
		if err != nil {
			return fmt.Errorf("proto: reading frame: %w", err)
		}
		if f.Type != FrameAssign {
			return fmt.Errorf("proto: unexpected %q frame from driver", f.Type)
		}
		a := f.Assign
		if a.NProcs < 1 || a.NProcs > maxServeProcs {
			return fmt.Errorf("proto: assign-inputs with nprocs %d (want 1..%d)", a.NProcs, maxServeProcs)
		}
		if a.Focus < 0 || a.Focus >= a.NProcs {
			return fmt.Errorf("proto: assign-inputs with focus %d outside 0..%d", a.Focus, a.NProcs-1)
		}

		run := backend.Launch(core.LaunchSpec{
			Iter:       a.Iter,
			NProcs:     a.NProcs,
			Focus:      a.Focus,
			Inputs:     a.Inputs,
			Params:     a.Params,
			Seed:       a.Seed,
			Timeout:    time.Duration(a.TimeoutMS) * time.Millisecond,
			MaxTicks:   a.MaxTicks,
			Reduction:  a.Reduction,
			OneWay:     a.OneWay,
			TraceHint:  a.TraceHint,
			Schedules:  a.Schedules,
			MatchOrder: a.MatchOrder,
		})

		for _, rr := range run.Ranks {
			if rr.Log == nil {
				continue // hard hang: the rank never produced a log
			}
			err := WriteFrame(bw, Frame{Type: FrameBranch, Branch: &Branch{
				Iter: a.Iter, Rank: rr.Rank, Log: rr.Log.Encode(),
			}})
			if err != nil {
				return fmt.Errorf("proto: writing branch-event: %w", err)
			}
		}
		for _, rr := range run.Ranks {
			if rr.Status == mpi.StatusOK && rr.Exit == 0 {
				continue
			}
			msg := ""
			if rr.Err != nil {
				msg = rr.Err.Error()
			}
			err := WriteFrame(bw, Frame{Type: FrameError, Error: &ErrorEvent{
				Iter: a.Iter, Rank: rr.Rank, Status: int(rr.Status),
				Exit: rr.Exit, Msg: msg,
			}})
			if err != nil {
				return fmt.Errorf("proto: writing error frame: %w", err)
			}
		}
		err = WriteFrame(bw, Frame{Type: FrameDone, Done: &Done{
			Iter: a.Iter, ElapsedUS: run.Elapsed.Microseconds(),
		}})
		if err == nil {
			err = bw.Flush()
		}
		if err != nil {
			return fmt.Errorf("proto: writing iteration-done: %w", err)
		}
	}
}
