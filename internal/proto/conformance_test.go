package proto_test

import (
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"reflect"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/proto"
	"repro/internal/sched"
	"repro/internal/spec"
	"repro/internal/target"

	_ "repro/internal/targets/hpl"
	_ "repro/internal/targets/imb"
	_ "repro/internal/targets/mworder"
	_ "repro/internal/targets/relay"
	_ "repro/internal/targets/skeleton"
	_ "repro/internal/targets/stencil"
	_ "repro/internal/targets/susy"
)

// The cross-process conformance suite: for every registered target, a piped
// campaign (engine here, program in a separate compi-target process) must
// yield exactly the outcome of the in-process campaign over the same Config —
// same coverage set, same error keys, same per-iteration trajectory. This is
// the protocol's determinism contract; a divergence means state leaked into
// or got lost across the process boundary.

var buildOnce struct {
	sync.Once
	bin string
	err error
}

// targetBin returns a compi-target binary: $COMPI_TARGET_BIN when set (CI
// builds it once), otherwise `go build` into a temp dir, once per test run.
func targetBin(t *testing.T) string {
	t.Helper()
	if bin := os.Getenv("COMPI_TARGET_BIN"); bin != "" {
		return bin
	}
	buildOnce.Do(func() {
		root, err := moduleRoot()
		if err != nil {
			buildOnce.err = err
			return
		}
		dir, err := os.MkdirTemp("", "compi-target-*")
		if err != nil {
			buildOnce.err = err
			return
		}
		bin := filepath.Join(dir, "compi-target")
		cmd := exec.Command("go", "build", "-o", bin, "./cmd/compi-target")
		cmd.Dir = root
		if out, err := cmd.CombinedOutput(); err != nil {
			buildOnce.err = fmt.Errorf("building compi-target: %v\n%s", err, out)
			return
		}
		buildOnce.bin = bin
	})
	if buildOnce.err != nil {
		t.Fatal(buildOnce.err)
	}
	return buildOnce.bin
}

func moduleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod above test working directory")
		}
		dir = parent
	}
}

// conformanceConfig is the shared campaign setup: framework on, reduction on,
// seeded bugs live (no fix params), enough iterations to cover solver-driven
// negation, restarts, and error logging on every target.
func conformanceConfig() core.Config {
	return core.Config{
		Iterations:   10,
		InitialProcs: 4,
		MaxProcs:     8,
		Reduction:    true,
		Framework:    true,
		DFSPhase:     4,
		Seed:         11,
		RunTimeout:   20 * time.Second,
		MaxTicks:     300_000,
	}
}

// conformanceSpec is conformanceConfig lifted into a scheduler spec; ext nil
// means in-process.
func conformanceSpec(label, name string, ext *spec.External) sched.Spec {
	return sched.Spec{Campaign: spec.Campaign{
		Label:        label,
		Target:       name,
		External:     ext,
		Iterations:   10,
		InitialProcs: 4,
		MaxProcs:     8,
		Reduction:    true,
		Framework:    true,
		DFSPhase:     4,
		Seed:         11,
		RunTimeout:   20 * time.Second,
		MaxTicks:     300_000,
	}}
}

// assertConformant fails the test unless the two campaign results are
// observationally identical (wall-clock fields excepted).
func assertConformant(t *testing.T, inproc, piped core.Result) {
	t.Helper()
	if got, want := len(piped.Iterations), len(inproc.Iterations); got != want {
		t.Fatalf("piped campaign ran %d iterations, in-process ran %d", got, want)
	}
	for i := range inproc.Iterations {
		a, b := inproc.Iterations[i], piped.Iterations[i]
		if a.NProcs != b.NProcs || a.Focus != b.Focus || a.Covered != b.Covered ||
			a.PathLen != b.PathLen || a.RawCount != b.RawCount ||
			a.LogBytes != b.LogBytes || a.Failed != b.Failed || a.Restarted != b.Restarted {
			t.Fatalf("iteration %d diverged across the pipe:\nin-process: %+v\npiped:      %+v", i, a, b)
		}
	}
	if !reflect.DeepEqual(inproc.Coverage.Branches(), piped.Coverage.Branches()) {
		t.Fatalf("coverage sets diverged: in-process %d branches, piped %d branches",
			inproc.Coverage.Count(), piped.Coverage.Count())
	}
	if got, want := errorKeys(piped), errorKeys(inproc); !reflect.DeepEqual(got, want) {
		t.Fatalf("error keys diverged:\nin-process: %q\npiped:      %q", want, got)
	}
	if inproc.Restarts != piped.Restarts {
		t.Fatalf("restarts diverged: in-process %d, piped %d", inproc.Restarts, piped.Restarts)
	}
	if !reflect.DeepEqual(inproc.RestartAt, piped.RestartAt) {
		t.Fatalf("restart positions diverged: in-process %v, piped %v",
			inproc.RestartAt, piped.RestartAt)
	}
	if inproc.SolverCall != piped.SolverCall || inproc.UnsatCalls != piped.UnsatCalls {
		t.Fatalf("solver trajectory diverged: in-process %d/%d calls/unsat, piped %d/%d",
			inproc.SolverCall, inproc.UnsatCalls, piped.SolverCall, piped.UnsatCalls)
	}
}

func errorKeys(r core.Result) []string {
	keys := make([]string, 0)
	for k := range r.DistinctErrors() {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func TestCrossProcessConformance(t *testing.T) {
	bin := targetBin(t)
	for _, name := range target.Names() {
		t.Run(name, func(t *testing.T) {
			prog, ok := target.Lookup(name)
			if !ok {
				t.Fatalf("target %q vanished from the registry", name)
			}

			cfg := conformanceConfig()
			cfg.Program = prog
			inproc := core.NewEngine(cfg).Run()

			drv, err := proto.Start(bin, proto.Options{Args: []string{"-target", name}})
			if err != nil {
				t.Fatal(err)
			}
			defer func() {
				if err := drv.Close(); err != nil {
					t.Errorf("closing driver: %v", err)
				}
			}()
			if got := drv.Manifest().Program; got != name {
				t.Fatalf("handshake announced program %q, want %q", got, name)
			}
			remote, err := drv.Program()
			if err != nil {
				t.Fatal(err)
			}

			pcfg := conformanceConfig()
			pcfg.Program = remote
			pcfg.Backend = drv
			piped := core.NewEngine(pcfg).Run()

			assertConformant(t, inproc, piped)
		})
	}
}

// TestScheduleConformance pins schedule-space exploration across the process
// boundary: a -schedules campaign over a piped target must be observationally
// identical to the in-process one. This exercises the protocol-v2 Assign
// fields (Schedules, MatchOrder) outbound and the match-record log section
// inbound — the engine can only grow the schedule frontier if the recorded
// choice points survive the wire — and checks the deadlock (status 4) error
// keys, cycle descriptions included, agree on both sides.
func TestScheduleConformance(t *testing.T) {
	bin := targetBin(t)
	for _, name := range []string{"mworder", "relay"} {
		t.Run(name, func(t *testing.T) {
			prog, ok := target.Lookup(name)
			if !ok {
				t.Fatalf("target %q vanished from the registry", name)
			}
			mkCfg := func() core.Config {
				return core.Config{
					Iterations:   25,
					InitialProcs: 3,
					MaxProcs:     3,
					Reduction:    true,
					Schedules:    true,
					Seed:         7,
					RunTimeout:   20 * time.Second,
				}
			}

			cfg := mkCfg()
			cfg.Program = prog
			inproc := core.NewEngine(cfg).Run()

			drv, err := proto.Start(bin, proto.Options{Args: []string{"-target", name}})
			if err != nil {
				t.Fatal(err)
			}
			defer func() {
				if err := drv.Close(); err != nil {
					t.Errorf("closing driver: %v", err)
				}
			}()
			remote, err := drv.Program()
			if err != nil {
				t.Fatal(err)
			}
			pcfg := mkCfg()
			pcfg.Program = remote
			pcfg.Backend = drv
			piped := core.NewEngine(pcfg).Run()

			assertConformant(t, inproc, piped)
			if inproc.Schedule != piped.Schedule {
				t.Fatalf("schedule stats diverged across the pipe: in-process %+v, piped %+v",
					inproc.Schedule, piped.Schedule)
			}
			if inproc.Schedule.Deadlocks != 1 {
				t.Fatalf("in-process campaign found %d deadlocks, want 1", inproc.Schedule.Deadlocks)
			}
			keys := errorKeys(inproc)
			if len(keys) == 0 || !strings.Contains(keys[0], "wait-for cycle") {
				t.Fatalf("error keys %q do not name a wait-for cycle", keys)
			}
		})
	}
}

// TestSchedMixedConformance runs the same in-process/piped pairs through the
// scheduler — all targets in one batch, at one and at four workers — and
// checks that each piped campaign matches its in-process twin and that the
// worker count changes nothing. External and in-process specs must mix.
func TestSchedMixedConformance(t *testing.T) {
	bin := targetBin(t)
	names := target.Names()
	specs := make([]sched.Spec, 0, 2*len(names))
	for _, name := range names {
		specs = append(specs,
			conformanceSpec(name+"/inproc", name, nil),
			conformanceSpec(name+"/piped", name,
				&spec.External{Bin: bin, Args: []string{"-target", name}}),
		)
	}

	var reports []*sched.Report
	for _, workers := range []int{1, 4} {
		rep := sched.Run(specs, sched.Options{Workers: workers})
		for i := 0; i < len(rep.Campaigns); i += 2 {
			in, ext := rep.Campaigns[i], rep.Campaigns[i+1]
			if in.Err != nil || ext.Err != nil {
				t.Fatalf("workers=%d: campaign errors: %v / %v", workers, in.Err, ext.Err)
			}
			t.Run(fmt.Sprintf("workers=%d/%s", workers, in.Target), func(t *testing.T) {
				assertConformant(t, in.Result, ext.Result)
			})
		}
		reports = append(reports, rep)
	}

	// -j1 and -j4 must merge to identical per-target outcomes.
	r1, r4 := reports[0], reports[1]
	if !reflect.DeepEqual(r1.Targets(), r4.Targets()) {
		t.Fatalf("worker counts saw different targets: %v vs %v", r1.Targets(), r4.Targets())
	}
	for _, name := range r1.Targets() {
		if !reflect.DeepEqual(r1.Coverage[name].Branches(), r4.Coverage[name].Branches()) {
			t.Errorf("%s: merged coverage differs between -j1 and -j4", name)
		}
		k1 := sortedKeys(r1.Errors[name])
		k4 := sortedKeys(r4.Errors[name])
		if !reflect.DeepEqual(k1, k4) {
			t.Errorf("%s: merged error keys differ between -j1 and -j4:\n%q\n%q", name, k1, k4)
		}
	}
}

// TestSchedShardedServiceConformance drives piped targets through a sharded
// batch on the shared solver service: every piped shard must remain
// observationally identical to its in-process twin (the service's caches are
// populated by both sides interleaved, so any cache-induced perturbation
// would show up here), and the merged shard-group rollups must agree between
// the two sides and across worker counts.
func TestSchedShardedServiceConformance(t *testing.T) {
	bin := targetBin(t)
	const nShards = 3
	names := []string{"skeleton", "stencil"}
	mkSpecs := func() []sched.Spec {
		var specs []sched.Spec
		for _, name := range names {
			in := conformanceSpec(name+"/in", name, nil)
			piped := conformanceSpec(name+"/piped", name,
				&spec.External{Bin: bin, Args: []string{"-target", name}})
			specs = append(specs, sched.Shard(in, nShards)...)
			specs = append(specs, sched.Shard(piped, nShards)...)
		}
		return specs
	}

	groupCov := map[int]map[string]int{} // workers -> group -> branch count
	for _, workers := range []int{1, 4} {
		rep := sched.Run(mkSpecs(), sched.Options{Workers: workers})
		if rep.Solver.Calls == 0 {
			t.Fatalf("workers=%d: shared solver service saw no calls", workers)
		}
		for ti, name := range names {
			base := ti * 2 * nShards
			for s := 0; s < nShards; s++ {
				in, ext := rep.Campaigns[base+s], rep.Campaigns[base+nShards+s]
				if in.Err != nil || ext.Err != nil {
					t.Fatalf("workers=%d %s shard %d: campaign errors: %v / %v",
						workers, name, s, in.Err, ext.Err)
				}
				t.Run(fmt.Sprintf("workers=%d/%s/shard%d", workers, name, s), func(t *testing.T) {
					assertConformant(t, in.Result, ext.Result)
				})
			}
		}
		cov := map[string]int{}
		groups := rep.Groups()
		if want := 2 * len(names); len(groups) != want {
			t.Fatalf("workers=%d: want %d shard groups, got %d", workers, want, len(groups))
		}
		for _, g := range groups {
			if g.Shards != nShards {
				t.Fatalf("workers=%d: group %s has %d shards", workers, g.Group, g.Shards)
			}
			cov[g.Group] = g.Coverage.Count()
		}
		for _, name := range names {
			if cov[name+"/in"] != cov[name+"/piped"] {
				t.Errorf("workers=%d: %s group rollups diverged: in-process %d branches, piped %d",
					workers, name, cov[name+"/in"], cov[name+"/piped"])
			}
		}
		groupCov[workers] = cov
	}
	if !reflect.DeepEqual(groupCov[1], groupCov[4]) {
		t.Errorf("shard-group rollups differ between -j1 and -j4:\n%v\n%v",
			groupCov[1], groupCov[4])
	}
}

func sortedKeys(m map[string][]core.ErrorRecord) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
