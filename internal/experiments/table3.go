package experiments

import (
	"fmt"

	"repro/internal/sched"
	"repro/internal/spec"
)

// TableIII reproduces Table III: the complexity of the target programs —
// SLOC, total branches from the instrumentation-time declarations, and the
// reachable-branch estimate (branches of every function encountered during a
// probe campaign, per the CREST FAQ methodology). The three probe campaigns
// are independent, so they run as one parallel scheduler batch.
func TableIII(s Scale) *Table {
	t := &Table{
		ID:     "table3",
		Title:  "Complexity of target programs",
		Header: []string{"Program", "SLOC", "Branches(total)", "Branches(reachable est.)"},
		Notes: []string{
			"paper: SUSY-HMC 19201/2870/2030, HPL 15699/3754/3468, IMB-MPI1 7092/1290/1114",
			"the mini applications are smaller by construction; the total>reachable shape is preserved",
		},
	}
	tns := tunings()
	specs := make([]sched.Spec, len(tns))
	for i, tn := range tns {
		specs[i] = campaignSpec(tn.name, tn, s, 1, func(c *spec.Campaign) {
			c.Iterations = s.Iters / 2
		})
	}
	rep := sched.Run(specs, s.schedOptions())
	for i, tn := range tns {
		prog := program(tn.name)
		res := rep.Campaigns[i].Result
		reach := prog.ReachableBranches(res.Coverage.Funcs())
		t.Rows = append(t.Rows, []string{
			tn.name,
			fmt.Sprint(prog.SLOC),
			fmt.Sprint(prog.TotalBranches()),
			fmt.Sprint(reach),
		})
	}
	return t
}
