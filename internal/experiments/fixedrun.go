package experiments

import (
	"time"

	"repro/internal/conc"
	"repro/internal/mpi"
	"repro/internal/target"
)

// fixedResult summarizes one fixed-input execution.
type fixedResult struct {
	elapsed   time.Duration
	focusLog  int // focus log bytes
	otherAvg  int // average non-focus log bytes
	covered   int // branches covered by this run (all ranks)
	rawCount  int64
	failed    bool
	firstErr  string
	focusPath int
}

// fixedRun launches prog once with pinned inputs — the "simulated testing"
// mode of §VI-C where dynamic input derivation is disabled. oneWay makes
// every rank heavy (the instrumentation ablation).
func fixedRun(prog *target.Program, inputs map[string]int64, nprocs, focus int, oneWay bool, timeout time.Duration) fixedResult {
	res := mpi.Launch(mpi.Spec{
		NProcs: nprocs,
		Main:   prog.Main,
		Vars:   conc.NewVarSpace(),
		VarsFor: func(rank int) *conc.VarSpace {
			return conc.NewVarSpace()
		},
		Inputs: inputs,
		Conc: func(rank int) conc.Config {
			mode := conc.Light
			if rank == focus || oneWay {
				mode = conc.Heavy
			}
			return conc.Config{Mode: mode, Reduction: true, Seed: 9, MaxTicks: 200_000_000}
		},
		Timeout: timeout,
	})
	out := fixedResult{elapsed: res.Elapsed, failed: res.Failed()}
	if fe, bad := res.FirstError(); bad && fe.Err != nil {
		out.firstErr = fe.Err.Error()
	}
	seen := map[conc.BranchBit]struct{}{}
	others, sum := 0, 0
	for _, rr := range res.Ranks {
		if rr.Log == nil {
			continue
		}
		for _, b := range rr.Log.Covered {
			seen[b] = struct{}{}
		}
		if rr.Rank == focus {
			out.focusLog = rr.LogBytes
			out.focusPath = len(rr.Log.Path)
			out.rawCount = rr.Log.RawCount
		} else {
			others++
			sum += rr.LogBytes
		}
	}
	if others > 0 {
		out.otherAvg = sum / others
	}
	out.covered = len(seen)
	return out
}
