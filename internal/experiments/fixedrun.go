package experiments

import (
	"strings"
	"time"

	"repro/internal/sched"
	"repro/internal/spec"
)

// fixedResult summarizes one fixed-input execution.
type fixedResult struct {
	elapsed   time.Duration
	focusLog  int // focus log bytes
	otherAvg  int // average non-focus log bytes
	covered   int // branches covered by this run (all ranks)
	rawCount  int64
	failed    bool
	firstErr  string
	focusPath int
}

// fixedSpec builds a campaign spec that executes a program exactly once
// with pinned inputs — the "simulated testing" mode of §VI-C where dynamic
// input derivation is disabled. oneWay makes every rank heavy (the
// instrumentation ablation). The fixed-configuration grids (Table IV,
// Figure 6) collect these specs and run them through one sched.Run.
func fixedSpec(label, progName string, inputs map[string]int64, nprocs, focus int,
	oneWay bool, params map[string]int64, timeout time.Duration) sched.Spec {
	return sched.Spec{Campaign: spec.Campaign{
		Label:        label,
		Target:       progName,
		Inputs:       inputs,
		Iterations:   1,
		PureRandom:   true, // one execution; no concolic step afterwards
		Reduction:    true,
		Framework:    true,
		OneWay:       oneWay,
		InitialProcs: nprocs,
		InitialFocus: focus,
		Seed:         9,
		RunTimeout:   timeout,
		MaxTicks:     200_000_000,
		Params:       params,
	}}
}

// fixedResultOf extracts the single execution's statistics from a scheduled
// fixed-spec campaign.
func fixedResultOf(c sched.Campaign) fixedResult {
	var out fixedResult
	if c.Err != nil || len(c.Result.Iterations) == 0 {
		out.failed = true
		return out
	}
	it := c.Result.Iterations[0]
	out.elapsed = it.RunTime
	out.focusLog = it.FocusLog
	out.covered = c.Result.Coverage.Count()
	out.rawCount = it.RawCount
	out.focusPath = it.PathLen
	out.failed = it.Failed
	if nonFocus := it.NProcs - 1; nonFocus > 0 {
		out.otherAvg = (it.LogBytes - it.FocusLog) / nonFocus
	}
	if len(c.Result.Errors) > 0 {
		if msg := c.Result.Errors[0].Msg; !strings.HasPrefix(msg, "exit=") {
			out.firstErr = msg
		}
	}
	return out
}
