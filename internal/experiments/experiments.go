// Package experiments regenerates every table and figure of the paper's
// evaluation (§VI). Each driver returns a Table whose rows mirror what the
// paper reports; EXPERIMENTS.md records the paper-vs-measured comparison.
//
// The paper's wall-clock budgets (1.5 h / 3.5 h / 34 min) are scaled to
// laptop-size iteration budgets; the reproduction target is the *shape* of
// each result (who wins, by what rough factor, where crossovers fall), not
// absolute numbers measured on the authors' cluster.
package experiments

import (
	"encoding/csv"
	"fmt"
	"io"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/sched"
	"repro/internal/spec"
	"repro/internal/store"
	"repro/internal/target"
	_ "repro/internal/targets/hpl"
	_ "repro/internal/targets/imb"
	_ "repro/internal/targets/skeleton"
	"repro/internal/targets/susy"
)

// Scale sets the iteration/repetition budgets. Full is the default for the
// CLI; Quick keeps the benchmark harness fast.
type Scale struct {
	Reps       int // repetitions per configuration (paper: 3 or 10)
	Iters      int // campaign iterations per repetition
	Fig4Iters  int // iterations per strategy in the Figure 4 comparison
	FixedRuns  int // fixed-input executions for Table IV (paper: 10)
	Fig6MaxN   int // largest matrix size in the Figure 6 sweep
	RunTimeout time.Duration
	// Budget caps each campaign's wall-clock time, the way the paper runs
	// its fixed-time-budget comparisons. Without it the non-reduction
	// variants can spend "tens of minutes to derive a set of inputs"
	// (§VI-D) — faithfully, but unhelpfully for a laptop run.
	Budget time.Duration
	// Workers bounds the campaign scheduler's concurrency for the drivers
	// that fan out through sched.Run (table3/table4/fig6/fig8); <= 0
	// selects GOMAXPROCS.
	Workers int

	// StateDir, when non-empty, attaches a campaign store (see
	// internal/store) to every driver that fans out through sched.Run: the
	// campaigns checkpoint as they go, a killed experiment run resumes
	// from its batch manifests instead of starting over, and fixed-budget
	// campaigns whose setups an earlier run already explored continue
	// from their snapshots.
	StateDir string
}

// storeCache keeps one open Store per directory, so every driver of an
// experiment run shares the same setup-index lock.
var storeCache = map[string]*store.Store{}

// schedOptions is the sched.Options the fan-out drivers run under.
func (s Scale) schedOptions() sched.Options {
	opt := sched.Options{Workers: s.Workers}
	if s.StateDir != "" {
		st, ok := storeCache[s.StateDir]
		if !ok {
			var err error
			if st, err = store.Open(s.StateDir); err != nil {
				panic("experiments: " + err.Error())
			}
			storeCache[s.StateDir] = st
		}
		opt.Store = st
	}
	return opt
}

// Full approximates the paper's budgets at laptop scale.
var Full = Scale{
	Reps: 3, Iters: 400, Fig4Iters: 400, FixedRuns: 10,
	Fig6MaxN: 1000, RunTimeout: 60 * time.Second, Budget: 60 * time.Second,
}

// Quick is for go test -bench and smoke runs.
var Quick = Scale{
	Reps: 2, Iters: 120, Fig4Iters: 120, FixedRuns: 3,
	Fig6MaxN: 400, RunTimeout: 30 * time.Second, Budget: 15 * time.Second,
}

// Table is a printable experiment result.
type Table struct {
	ID     string
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// Fprint renders t in the aligned plain-text form the CLI prints.
func (t *Table) Fprint(w io.Writer) {
	fmt.Fprintf(w, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		var b strings.Builder
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(c)
			if i < len(widths) {
				b.WriteString(strings.Repeat(" ", widths[i]-len(c)))
			}
		}
		fmt.Fprintln(w, strings.TrimRight(b.String(), " "))
	}
	line(t.Header)
	for _, r := range t.Rows {
		line(r)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "note: %s\n", n)
	}
	fmt.Fprintln(w)
}

// CSV writes the table as comma-separated values (header + rows), the form
// the paper's figures are plotted from.
func (t *Table) CSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(t.Header); err != nil {
		return err
	}
	if err := cw.WriteAll(t.Rows); err != nil {
		return err
	}
	cw.Flush()
	return cw.Error()
}

// program looks a target up or panics (experiment drivers are internal).
func program(name string) *target.Program {
	p, ok := target.Lookup(name)
	if !ok {
		panic("experiments: unknown program " + name)
	}
	return p
}

// perProgram holds the per-target tuning from §VI: the pure-DFS phase length
// and the explicit BoundedDFS depth bound (scaled down with the budgets).
type tuning struct {
	name     string
	dfsPhase int
	bound    int
	params   map[string]int64 // e.g. fixing the SUSY bugs for coverage campaigns
}

func tunings() []tuning {
	return []tuning{
		{name: "susy-hmc", dfsPhase: 30, bound: 120, params: susy.FixAll()},
		{name: "hpl", dfsPhase: 60, bound: 150},
		{name: "imb-mpi1", dfsPhase: 60, bound: 100},
	}
}

// campaignCfg assembles the standard campaign configuration for a tuning;
// the drivers either run it directly (campaign) or hand it to the parallel
// scheduler as part of a spec list.
func campaignCfg(tn tuning, s Scale, seed int64, mutate func(*core.Config)) core.Config {
	cfg := core.Config{
		Program:    program(tn.name),
		Iterations: s.Iters,
		TimeBudget: s.Budget,
		Reduction:  true,
		Framework:  true,
		Seed:       seed,
		DFSPhase:   tn.dfsPhase,
		DepthBound: tn.bound,
		RunTimeout: s.RunTimeout,
		Params:     tn.params,
	}
	if mutate != nil {
		mutate(&cfg)
	}
	return cfg
}

// campaignSpec is campaignCfg in sched.Spec form: the same standard tuning
// expressed as a data-only campaign for drivers that fan out through
// sched.Run.
func campaignSpec(label string, tn tuning, s Scale, seed int64, mutate func(*spec.Campaign)) sched.Spec {
	c := spec.Campaign{
		Label:      label,
		Target:     tn.name,
		Iterations: s.Iters,
		TimeBudget: s.Budget,
		Reduction:  true,
		Framework:  true,
		Seed:       seed,
		DFSPhase:   tn.dfsPhase,
		DepthBound: tn.bound,
		RunTimeout: s.RunTimeout,
		Params:     tn.params,
	}
	if mutate != nil {
		mutate(&c)
	}
	return sched.Spec{Campaign: c}
}

// campaign runs one COMPI campaign with the standard configuration.
func campaign(tn tuning, s Scale, seed int64, mutate func(*core.Config)) core.Result {
	return core.NewEngine(campaignCfg(tn, s, seed, mutate)).Run()
}

func pct(x float64) string { return fmt.Sprintf("%.1f%%", 100*x) }

// reachCache memoizes the per-program reachable-branch denominator: like the
// paper's Table III, one fixed estimate per program is used by every
// coverage-rate comparison, so weak variants (e.g. random testing) are not
// graded against a denominator shrunk to the little they reached.
var reachCache = map[string]int{}

func reachable(tn tuning, s Scale) int {
	if r, ok := reachCache[tn.name]; ok {
		return r
	}
	res := campaign(tn, s, 3, nil)
	r := program(tn.name).ReachableBranches(res.Coverage.Funcs())
	if r == 0 {
		r = program(tn.name).TotalBranches()
	}
	reachCache[tn.name] = r
	return r
}

// rateOf grades covered branches against the fixed denominator.
func rateOf(covered int, tn tuning, s Scale) float64 {
	return float64(covered) / float64(reachable(tn, s))
}

func avgMax(vals []float64) (avg, max float64) {
	for _, v := range vals {
		avg += v
		if v > max {
			max = v
		}
	}
	if len(vals) > 0 {
		avg /= float64(len(vals))
	}
	return avg, max
}
