package experiments

import (
	"fmt"

	"repro/internal/core"
)

// Fig4 reproduces Figure 4: HPL branch coverage under the four CREST search
// strategies. In the paper, BoundedDFS (default bound 1,000,000) and
// BoundedDFS (bound 100) cover over 1100 branches while random branch,
// uniform random, and CFG search cover at most 137 because they never pass
// the sanity check.
func Fig4(s Scale) *Table {
	t := &Table{
		ID:     "fig4",
		Title:  "HPL branch coverage by search strategy",
		Header: []string{"Strategy", "Covered branches", "Reached solver?"},
		Notes: []string{
			"paper: BoundedDFS(default/100) > 1100 covered; others <= 137 (sanity check not passed)",
		},
	}
	prog := program("hpl")
	mkCampaign := func(label string, strat func(cov *core.Engine) core.Strategy) {
		cfg := core.Config{
			Program:    prog,
			Iterations: s.Fig4Iters,
			Reduction:  true,
			Framework:  true,
			Seed:       11,
			RunTimeout: s.RunTimeout,
		}
		eng := core.NewEngine(cfg)
		// Strategy construction may need the live coverage tracker (CFG).
		eng.SetStrategy(strat(eng))
		res := eng.Run()
		_, solver := res.Coverage.Funcs()["pdgesv"]
		t.Rows = append(t.Rows, []string{
			label,
			fmt.Sprint(res.Coverage.Count()),
			fmt.Sprint(solver),
		})
	}
	mkCampaign("bounded-dfs(default 1e6)", func(e *core.Engine) core.Strategy {
		return core.NewBoundedDFS(core.Unbounded)
	})
	mkCampaign("bounded-dfs(100)", func(e *core.Engine) core.Strategy {
		return core.NewBoundedDFS(100)
	})
	mkCampaign("random-branch", func(e *core.Engine) core.Strategy {
		return core.NewRandomBranch(11)
	})
	mkCampaign("uniform-random", func(e *core.Engine) core.Strategy {
		return core.NewUniformRandom(11)
	})
	mkCampaign("cfg", func(e *core.Engine) core.Strategy {
		return core.NewCFG(prog, e.Coverage())
	})
	return t
}
