package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/coverage"
	"repro/internal/target"
)

// Fig4 reproduces Figure 4: HPL branch coverage under the four CREST search
// strategies. In the paper, BoundedDFS (default bound 1,000,000) and
// BoundedDFS (bound 100) cover over 1100 branches while random branch,
// uniform random, and CFG search cover at most 137 because they never pass
// the sanity check.
func Fig4(s Scale) *Table {
	t := &Table{
		ID:     "fig4",
		Title:  "HPL branch coverage by search strategy",
		Header: []string{"Strategy", "Covered branches", "Reached solver?"},
		Notes: []string{
			"paper: BoundedDFS(default/100) > 1100 covered; others <= 137 (sanity check not passed)",
		},
	}
	prog := program("hpl")
	mkCampaign := func(label string, strat func(p *target.Program, cov *coverage.Tracker) core.Strategy) {
		cfg := core.Config{
			Program: prog,
			// Strategy construction may need the live coverage tracker
			// (CFG), so it goes through the factory hook.
			NewStrategy: strat,
			Iterations:  s.Fig4Iters,
			Reduction:   true,
			Framework:   true,
			Seed:        11,
			RunTimeout:  s.RunTimeout,
		}
		res := core.NewEngine(cfg).Run()
		_, solver := res.Coverage.Funcs()["pdgesv"]
		t.Rows = append(t.Rows, []string{
			label,
			fmt.Sprint(res.Coverage.Count()),
			fmt.Sprint(solver),
		})
	}
	mkCampaign("bounded-dfs(default 1e6)", func(*target.Program, *coverage.Tracker) core.Strategy {
		return core.NewBoundedDFS(core.Unbounded)
	})
	mkCampaign("bounded-dfs(100)", func(*target.Program, *coverage.Tracker) core.Strategy {
		return core.NewBoundedDFS(100)
	})
	mkCampaign("random-branch", func(*target.Program, *coverage.Tracker) core.Strategy {
		return core.NewRandomBranch(11)
	})
	mkCampaign("uniform-random", func(*target.Program, *coverage.Tracker) core.Strategy {
		return core.NewUniformRandom(11)
	})
	mkCampaign("cfg", core.NewCFG)
	return t
}
