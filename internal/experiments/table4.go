package experiments

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/sched"
	"repro/internal/targets/hpl"
	"repro/internal/targets/imb"
	"repro/internal/targets/susy"
)

// TableIV reproduces Table IV: one-way vs. two-way instrumentation on
// simulated testing with inputs pinned to defaults (dynamic derivation
// disabled). For each program and problem size N, FixedRuns executions run
// once with every rank heavily instrumented (one-way) and once with only the
// focus heavy (two-way); the table reports the time saving and the average
// non-focus log sizes. The whole grid — configs × runs × {one-way,two-way} —
// is one scheduler batch; the enlarged caps and SUSY fixes ride along as
// per-campaign parameters instead of mutated globals.
func TableIV(s Scale) *Table {
	t := &Table{
		ID:    "table4",
		Title: "One-way vs. two-way instrumentation (fixed default inputs)",
		Header: []string{"Program", "N", "1-way time", "2-way time", "Saving",
			"1-way avg log (B)", "2-way avg log (B)"},
		Notes: []string{
			"paper: savings 47-53% (SUSY), 62-67% (HPL), 0-12.5% (IMB);",
			"non-focus logs: MBs one-way vs a few KB two-way",
		},
	}

	type config struct {
		progName string
		n        int64
		nprocs   int
		inputs   func(n int64) map[string]int64
	}
	params := core.MergeParams(
		susy.FixAll(), susy.CapParams(8),
		hpl.CapParams(1200), imb.CapParams(2000),
	)

	// Like the paper's platform, every job runs 8 processes (the savings of
	// two-way instrumentation come from relieving a fully subscribed
	// machine of N-1 heavy processes); the lattice's spatial dimensions
	// carry the problem size N while nt=8 satisfies the 8-way layout.
	susyInputs := func(n int64) map[string]int64 {
		in := susy.DefaultInputs()
		in["nx"], in["ny"], in["nz"], in["nt"] = n, n, n, 8
		// A full-length trajectory schedule, so the measured runs are long
		// enough for the instrumentation cost to dominate launch noise.
		in["trajecs"], in["nstep"], in["niter"] = 8, 10, 20
		return in
	}
	configs := []config{
		{"susy-hmc", 2, 8, susyInputs},
		{"susy-hmc", 4, 8, susyInputs},
		{"hpl", 300, 8, func(n int64) map[string]int64 {
			in := hpl.DefaultInputs()
			in["n"] = n
			return in
		}},
		{"hpl", 600, 8, func(n int64) map[string]int64 {
			in := hpl.DefaultInputs()
			in["n"] = n
			return in
		}},
		{"imb-mpi1", 100, 8, func(n int64) map[string]int64 {
			in := imb.DefaultInputs()
			in["niter"] = n
			return in
		}},
		{"imb-mpi1", 400, 8, func(n int64) map[string]int64 {
			in := imb.DefaultInputs()
			in["niter"] = n
			return in
		}},
		{"imb-mpi1", 1600, 8, func(n int64) map[string]int64 {
			in := imb.DefaultInputs()
			in["niter"] = n
			return in
		}},
	}

	var specs []sched.Spec
	for _, c := range configs {
		for _, oneWay := range []bool{true, false} {
			way := map[bool]string{true: "1way", false: "2way"}[oneWay]
			for i := 0; i < s.FixedRuns; i++ {
				label := fmt.Sprintf("%s/N%d/%s/r%d", c.progName, c.n, way, i)
				specs = append(specs, fixedSpec(label, c.progName, c.inputs(c.n),
					c.nprocs, 0, oneWay, params, s.RunTimeout))
			}
		}
	}
	rep := sched.Run(specs, s.schedOptions())

	next := 0
	for _, c := range configs {
		measure := func() (time.Duration, int) {
			var total time.Duration
			var logSum, logN int
			for i := 0; i < s.FixedRuns; i++ {
				fr := fixedResultOf(rep.Campaigns[next])
				next++
				total += fr.elapsed
				logSum += fr.otherAvg
				logN++
			}
			return total, logSum / logN
		}
		t1, l1 := measure()
		t2, l2 := measure()
		saving := "-"
		if t1 > 0 {
			saving = fmt.Sprintf("%.1f%%", 100*(1-t2.Seconds()/t1.Seconds()))
		}
		t.Rows = append(t.Rows, []string{
			c.progName, fmt.Sprint(c.n),
			t1.Round(time.Millisecond).String(), t2.Round(time.Millisecond).String(),
			saving, fmt.Sprint(l1), fmt.Sprint(l2),
		})
	}
	return t
}
