package experiments

import (
	"bytes"
	"strconv"
	"strings"
	"testing"
	"time"
)

// testScale keeps experiment tests fast while preserving the shapes.
var testScale = Scale{
	Reps: 1, Iters: 80, Fig4Iters: 100, FixedRuns: 2,
	Fig6MaxN: 300, RunTimeout: 30 * time.Second, Budget: 8 * time.Second,
}

func cell(t *testing.T, tab *Table, row, col int) string {
	t.Helper()
	if row >= len(tab.Rows) || col >= len(tab.Rows[row]) {
		t.Fatalf("table %s has no cell (%d,%d): %+v", tab.ID, row, col, tab.Rows)
	}
	return tab.Rows[row][col]
}

func num(t *testing.T, s string) float64 {
	t.Helper()
	s = strings.TrimSuffix(strings.TrimSuffix(s, "%"), "x")
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("cell %q is not numeric: %v", s, err)
	}
	return v
}

func TestTableIII(t *testing.T) {
	tab := TableIII(testScale)
	if len(tab.Rows) != 3 {
		t.Fatalf("rows: %d", len(tab.Rows))
	}
	for i := range tab.Rows {
		total := num(t, cell(t, tab, i, 2))
		reach := num(t, cell(t, tab, i, 3))
		if reach > total {
			t.Fatalf("%s: reachable %v > total %v", cell(t, tab, i, 0), reach, total)
		}
		if total < 50 {
			t.Fatalf("%s: too few branches (%v)", cell(t, tab, i, 0), total)
		}
	}
}

func TestFig4Shape(t *testing.T) {
	tab := Fig4(testScale)
	if len(tab.Rows) != 5 {
		t.Fatalf("rows: %d", len(tab.Rows))
	}
	// Both BoundedDFS rows must beat every non-systematic strategy and be
	// the only ones to reach the solver.
	dfsMin := num(t, cell(t, tab, 0, 1))
	if v := num(t, cell(t, tab, 1, 1)); v < dfsMin {
		dfsMin = v
	}
	for i := 2; i < 5; i++ {
		if got := num(t, cell(t, tab, i, 1)); got >= dfsMin {
			t.Fatalf("strategy %s (%v) not dominated by BoundedDFS (%v)",
				cell(t, tab, i, 0), got, dfsMin)
		}
		if cell(t, tab, i, 2) != "false" {
			t.Fatalf("strategy %s unexpectedly passed the sanity check", cell(t, tab, i, 0))
		}
	}
	if cell(t, tab, 0, 2) != "true" || cell(t, tab, 1, 2) != "true" {
		t.Fatal("BoundedDFS failed to pass the sanity check")
	}
}

func TestFig6Shape(t *testing.T) {
	tab := Fig6(testScale)
	if len(tab.Rows) < 3 {
		t.Fatalf("rows: %d", len(tab.Rows))
	}
	// Time must grow superlinearly in N while coverage stays near-flat
	// beyond the first row.
	last := num(t, cell(t, tab, len(tab.Rows)-1, 3))
	if last < 1.5 {
		if raceEnabled {
			t.Logf("time ratio at max N = %v under -race (timing noise tolerated)", last)
		} else {
			t.Fatalf("time ratio at max N = %v, want clear growth", last)
		}
	}
	covFirst := num(t, cell(t, tab, 1, 1))
	covLast := num(t, cell(t, tab, len(tab.Rows)-1, 1))
	if covLast < covFirst-3 || covLast > covFirst+10 {
		t.Fatalf("coverage not flat: %v vs %v", covFirst, covLast)
	}
}

func TestTableSchedHeadline(t *testing.T) {
	// The headline claim: within the same fixed budget, -schedules finds
	// both seeded wildcard-receive deadlocks (with the wait-for cycle
	// named), and input-only exploration finds neither.
	tab := TableSched(testScale)
	if len(tab.Rows) != 4 {
		t.Fatalf("rows: %d (%+v)", len(tab.Rows), tab.Rows)
	}
	wantCycle := map[string]string{
		"mworder": "wait-for cycle 0->2->0",
		"relay":   "wait-for cycle 0->2->1->0",
	}
	for i := range tab.Rows {
		name, mode := cell(t, tab, i, 0), cell(t, tab, i, 1)
		deadlocks, cycle := num(t, cell(t, tab, i, 5)), cell(t, tab, i, 6)
		switch mode {
		case "off":
			if deadlocks != 0 || cycle != "" {
				t.Fatalf("%s input-only found %v deadlocks (%q); the bug must be schedule-only", name, deadlocks, cycle)
			}
		case "on":
			if deadlocks != 1 {
				t.Fatalf("%s -schedules found %v deadlocks, want exactly 1", name, deadlocks)
			}
			if !strings.Contains(cycle, wantCycle[name]) {
				t.Fatalf("%s cycle %q, want %q", name, cycle, wantCycle[name])
			}
			if orders := num(t, cell(t, tab, i, 4)); orders < 1 {
				t.Fatalf("%s explored %v directed orders, want >= 1", name, orders)
			}
		default:
			t.Fatalf("row %d has mode %q", i, mode)
		}
	}
}

func TestBugsFindsAllFour(t *testing.T) {
	s := testScale
	s.Iters = 150
	tab := Bugs(s)
	if len(tab.Rows) != 4 {
		t.Fatalf("found %d bugs, want 4: %+v", len(tab.Rows), tab.Rows)
	}
	kinds := map[string]int{}
	for i := range tab.Rows {
		kinds[cell(t, tab, i, 1)]++
	}
	if kinds["segfault"] != 3 || kinds["FP exception"] != 1 {
		t.Fatalf("bug kinds: %v", kinds)
	}
	// The FP exception must have manifested with an even process count.
	for i := range tab.Rows {
		if cell(t, tab, i, 1) != "FP exception" {
			continue
		}
		np := int(num(t, cell(t, tab, i, 3)))
		if np%2 != 0 {
			t.Fatalf("divide-by-zero fired with %d processes; must be even", np)
		}
	}
}

func TestTableIVShape(t *testing.T) {
	tab := TableIV(testScale)
	if len(tab.Rows) != 7 {
		t.Fatalf("rows: %d", len(tab.Rows))
	}
	for i := range tab.Rows {
		oneWayLog := num(t, cell(t, tab, i, 5))
		twoWayLog := num(t, cell(t, tab, i, 6))
		if twoWayLog*3 > oneWayLog {
			t.Fatalf("%s N=%s: two-way log %v not ≪ one-way %v",
				cell(t, tab, i, 0), cell(t, tab, i, 1), twoWayLog, oneWayLog)
		}
	}
	// HPL at the larger N must show a substantial time saving. The race
	// detector's uniform overhead dilutes the heavy/light cost asymmetry,
	// so under -race the threshold is logged, not enforced.
	if sv := num(t, cell(t, tab, 3, 4)); sv < 25 {
		if raceEnabled {
			t.Logf("hpl N=600 saving %v%% under -race (timing noise tolerated)", sv)
		} else {
			t.Fatalf("hpl N=600 saving %v%%, want > 25%%", sv)
		}
	}
}

func TestTableVAndFig9Shape(t *testing.T) {
	t5, f9 := TableVFig9(testScale)
	if len(t5.Rows) != 3 || len(f9.Rows) != 9 {
		t.Fatalf("rows: %d / %d", len(t5.Rows), len(f9.Rows))
	}
	for i := range t5.Rows {
		r := num(t, cell(t, t5, i, 1))
		nrb := num(t, cell(t, t5, i, 3))
		nru := num(t, cell(t, t5, i, 5))
		if r+1 < nrb || r+1 < nru { // R within a point of (or above) NR
			t.Fatalf("%s: R %v%% below NR (%v%%, %v%%)", cell(t, t5, i, 0), r, nrb, nru)
		}
	}
	// Figure 9: NRUnl's max set must exceed R's max for hpl and imb.
	find := func(prog, variant string) float64 {
		for i := range f9.Rows {
			if cell(t, f9, i, 0) == prog && cell(t, f9, i, 1) == variant {
				return num(t, cell(t, f9, i, 4))
			}
		}
		t.Fatalf("row %s/%s missing", prog, variant)
		return 0
	}
	for _, prog := range []string{"hpl", "imb-mpi1"} {
		if find(prog, "NRUnl") <= find(prog, "R") {
			t.Fatalf("%s: NRUnl max not above R max", prog)
		}
	}
}

func TestTableVIShape(t *testing.T) {
	tab := TableVI(testScale)
	if len(tab.Rows) != 3 {
		t.Fatalf("rows: %d", len(tab.Rows))
	}
	for i := range tab.Rows {
		fwk := num(t, cell(t, tab, i, 1))
		nofwk := num(t, cell(t, tab, i, 3))
		random := num(t, cell(t, tab, i, 5))
		if fwk <= nofwk {
			t.Fatalf("%s: Fwk %v%% not above No_Fwk %v%%", cell(t, tab, i, 0), fwk, nofwk)
		}
		if fwk <= random {
			t.Fatalf("%s: Fwk %v%% not above Random %v%%", cell(t, tab, i, 0), fwk, random)
		}
	}
	// The SUSY No_Fwk collapse: the layout check is unsatisfiable with a
	// fixed 8-process job, so No_Fwk must stay far below Fwk.
	fwk := num(t, cell(t, tab, 0, 1))
	nofwk := num(t, cell(t, tab, 0, 3))
	if nofwk*1.5 > fwk {
		t.Fatalf("susy No_Fwk %v%% did not collapse vs Fwk %v%%", nofwk, fwk)
	}
}

func TestFig8Shape(t *testing.T) {
	s := testScale
	tab := Fig8(s)
	if len(tab.Rows) != 8 {
		t.Fatalf("rows: %d", len(tab.Rows))
	}
}

func TestTableFprint(t *testing.T) {
	tab := &Table{
		ID: "x", Title: "demo",
		Header: []string{"A", "Bee"},
		Rows:   [][]string{{"1", "2"}, {"333", "4"}},
		Notes:  []string{"n"},
	}
	var buf bytes.Buffer
	tab.Fprint(&buf)
	out := buf.String()
	for _, want := range []string{"== x: demo ==", "A    Bee", "333  4", "note: n"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
}

func TestTableCSV(t *testing.T) {
	tab := &Table{
		ID:     "x",
		Header: []string{"A", "B"},
		Rows:   [][]string{{"1", "with,comma"}},
	}
	var buf bytes.Buffer
	if err := tab.CSV(&buf); err != nil {
		t.Fatal(err)
	}
	want := "A,B\n1,\"with,comma\"\n"
	if buf.String() != want {
		t.Fatalf("csv: %q want %q", buf.String(), want)
	}
}

func TestScalesAreSane(t *testing.T) {
	for _, s := range []Scale{Full, Quick} {
		if s.Reps < 1 || s.Iters < 10 || s.RunTimeout <= 0 || s.Budget <= 0 {
			t.Fatalf("bad scale: %+v", s)
		}
	}
}

func TestRegistryAndIDs(t *testing.T) {
	ids := IDs()
	if len(ids) != len(Registry()) {
		t.Fatal("IDs/Registry mismatch")
	}
	want := map[string]bool{"table3": true, "fig4": true, "fig6": true, "bugs": true,
		"fig8": true, "table4": true, "table5": true, "fig9": true, "table6": true,
		"sched": true}
	for _, id := range ids {
		if !want[id] {
			t.Fatalf("unexpected ID %q", id)
		}
		delete(want, id)
	}
	if len(want) != 0 {
		t.Fatalf("missing IDs: %v", want)
	}
}
