//go:build race

package experiments

// raceEnabled reports whether the race detector is compiled in. Its
// instrumentation overhead swamps the wall-clock asymmetries the timing
// experiments measure, so tests relax time-threshold assertions under -race
// while keeping every deterministic shape check strict.
const raceEnabled = true
