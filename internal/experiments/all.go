package experiments

import (
	"fmt"
	"io"
	"sort"
)

// Runner produces one or more tables for an experiment ID.
type Runner func(s Scale) []*Table

// Registry maps experiment IDs (the -exp flag values) to their drivers.
func Registry() map[string]Runner {
	return map[string]Runner{
		"table3": func(s Scale) []*Table { return []*Table{TableIII(s)} },
		"fig4":   func(s Scale) []*Table { return []*Table{Fig4(s)} },
		"fig6":   func(s Scale) []*Table { return []*Table{Fig6(s)} },
		"bugs":   func(s Scale) []*Table { return []*Table{Bugs(s)} },
		"fig8":   func(s Scale) []*Table { return []*Table{Fig8(s)} },
		"table4": func(s Scale) []*Table { return []*Table{TableIV(s)} },
		"table5": func(s Scale) []*Table {
			t5, f9 := TableVFig9(s)
			return []*Table{t5, f9}
		},
		"fig9": func(s Scale) []*Table {
			t5, f9 := TableVFig9(s)
			return []*Table{t5, f9}
		},
		"table6": func(s Scale) []*Table { return []*Table{TableVI(s)} },
		"sched":  func(s Scale) []*Table { return []*Table{TableSched(s)} },
	}
}

// IDs returns the experiment IDs in a stable order.
func IDs() []string {
	reg := Registry()
	out := make([]string, 0, len(reg))
	for id := range reg {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// RunAll executes every experiment once (table5/fig9 share one run) and
// prints the tables to w.
func RunAll(w io.Writer, s Scale) {
	order := []string{"table3", "fig4", "fig6", "bugs", "fig8", "table4", "table5", "table6", "sched"}
	reg := Registry()
	for _, id := range order {
		fmt.Fprintf(w, "--- running %s ---\n", id)
		for _, t := range reg[id](s) {
			t.Fprint(w)
		}
	}
}
