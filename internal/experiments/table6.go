package experiments

import (
	"repro/internal/core"
	"repro/internal/coverage"
)

// TableVI reproduces Table VI: COMPI with its MPI framework (Fwk) against
// the framework-disabled ablation (No_Fwk: fixed focus, fixed 8 processes,
// focus-only coverage recording) and pure random testing under the same
// input caps.
func TableVI(s Scale) *Table {
	t := &Table{
		ID:    "table6",
		Title: "COMPI framework vs. No_Fwk vs. Random (coverage rate, avg/max)",
		Header: []string{"Program", "Fwk avg", "Fwk max", "No_Fwk avg", "No_Fwk max",
			"Random avg", "Random max"},
		Notes: []string{
			"paper: SUSY 84.7 vs 3.4 vs 38.3; HPL 69.4 vs 58.9 vs 2.2; IMB 69.0 vs 64.2 vs 1.8 (avg %)",
		},
	}
	for _, tn := range tunings() {
		row := []string{tn.name}

		// Fwk: COMPI itself.
		var rates []float64
		for rep := 0; rep < s.Reps; rep++ {
			res := campaign(tn, s, int64(900+rep*13), nil)
			rates = append(rates, rateOf(res.Coverage.Count(), tn, s))
		}
		avg, max := avgMax(rates)
		row = append(row, pct(avg), pct(max))

		// No_Fwk: fixed 8 processes, and — per the paper — the evaluation is
		// performed with each of the 8 ranks as the fixed focus, with the
		// per-focus coverages combined.
		rates = rates[:0]
		for rep := 0; rep < s.Reps; rep++ {
			covered := noFwkCombined(tn, s, int64(1700+rep*13))
			rates = append(rates, rateOf(covered, tn, s))
		}
		avg, max = avgMax(rates)
		row = append(row, pct(avg), pct(max))

		// Random testing under the same caps.
		rates = rates[:0]
		for rep := 0; rep < s.Reps; rep++ {
			res := campaign(tn, s, int64(2600+rep*13), func(c *core.Config) {
				c.PureRandom = true
			})
			rates = append(rates, rateOf(res.Coverage.Count(), tn, s))
		}
		avg, max = avgMax(rates)
		row = append(row, pct(avg), pct(max))

		t.Rows = append(t.Rows, row)
	}
	return t
}

// noFwkCombined runs the framework-disabled ablation once per focus rank
// (splitting the iteration budget), combines the focus-only coverages, and
// returns the combined branch count.
func noFwkCombined(tn tuning, s Scale, seed int64) int {
	const nprocs = 8
	union := coverage.New()
	for focus := 0; focus < nprocs; focus++ {
		res := campaign(tn, s, seed+int64(focus), func(c *core.Config) {
			c.Framework = false
			c.InitialProcs = nprocs
			c.InitialFocus = focus
			c.Iterations = s.Iters / nprocs
		})
		union.Merge(res.Coverage)
	}
	return union.Count()
}

