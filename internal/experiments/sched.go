package experiments

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/core"
	"repro/internal/mpi"
	_ "repro/internal/targets/mworder"
	_ "repro/internal/targets/relay"
)

// schedBudget is the fixed per-campaign iteration budget of the comparison.
// Both seeded bugs sit one match-order negation away from the default
// schedule, so a handful of iterations is ample with -schedules on — and no
// budget suffices with it off, which is the point of the table.
const schedBudget = 25

// TableSched is the schedule-space headline experiment: the match-order
// dimension finds the two seeded wildcard-receive deadlocks (mworder's
// master/worker ordering bug, relay's three-rank circular wait) that
// input-only concolic testing provably cannot reach — no input assignment
// changes the message match order, so the input-only rows stay at zero
// deadlocks under the same budget, seeds, and targets.
func TableSched(s Scale) *Table {
	t := &Table{
		ID:     "sched",
		Title:  "Schedule-space exploration: wildcard-receive deadlocks found",
		Header: []string{"Target", "Schedules", "Iters", "ChoicePts", "Orders", "Deadlocks", "Cycle"},
		Notes: []string{
			"both bugs are match-order-only: no input value can trigger them",
			fmt.Sprintf("fixed budget: %d iterations per campaign", schedBudget),
		},
	}
	for _, name := range []string{"mworder", "relay"} {
		for _, schedules := range []bool{false, true} {
			res := core.NewEngine(core.Config{
				Program:      program(name),
				Iterations:   schedBudget,
				InitialProcs: 3,
				MaxProcs:     3,
				Reduction:    true,
				Framework:    false, // pin the 3-rank protocol setup
				Schedules:    schedules,
				Seed:         7,
				RunTimeout:   s.RunTimeout,
			}).Run()
			var cycles []string
			for msg, recs := range res.DistinctErrors() {
				if recs[0].Status == mpi.StatusDeadlock {
					cycles = append(cycles, msg)
				}
			}
			sort.Strings(cycles)
			cycle := strings.Join(cycles, "; ")
			t.Rows = append(t.Rows, []string{
				name,
				map[bool]string{true: "on", false: "off"}[schedules],
				fmt.Sprint(len(res.Iterations)),
				fmt.Sprint(res.Schedule.ChoicePoints),
				fmt.Sprint(res.Schedule.Orders),
				fmt.Sprint(res.Schedule.Deadlocks),
				cycle,
			})
		}
	}
	return t
}
