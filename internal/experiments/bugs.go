package experiments

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/core"
	"repro/internal/targets/susy"
)

// Bugs reproduces §VI-A: COMPI's bug hunt on SUSY-HMC. Campaigns run with
// the seeded bugs live; whenever a new crash signature appears, the
// corresponding developer fix is applied (as the paper describes) and the
// hunt continues, until all four bugs — three wrong-malloc segfaults and the
// division-by-zero that needs 2 or 4 processes — are found.
func Bugs(s Scale) *Table {
	t := &Table{
		ID:     "bugs",
		Title:  "Bugs uncovered in SUSY-HMC",
		Header: []string{"Bug", "Kind", "Found", "NProcs", "Trigger inputs (excerpt)"},
		Notes: []string{
			"paper: 3 segfaults from wrong malloc sizes + 1 FP exception needing 2 or 4 processes",
		},
	}
	// The hunt's fix state is local: it becomes the campaign parameter bag
	// of each round, never global target state.
	var fixed susy.Fixes

	type hit struct {
		kind   string
		iter   int
		nprocs int
		inputs string
	}
	found := map[string]hit{}

	classify := func(rec core.ErrorRecord) (string, string) {
		switch {
		case strings.Contains(rec.Msg, "divide by zero"):
			return "update_h-divzero", "FP exception"
		case strings.Contains(rec.Msg, "out of range"):
			// Distinguish the three allocation bugs by which is still live.
			switch {
			case !fixed.RHMC:
				return "setup_rhmc-malloc", "segfault"
			case !fixed.Ploop:
				return "ploop-malloc", "segfault"
			default:
				return "congrad-malloc", "segfault"
			}
		}
		return "", ""
	}
	fixes := map[string]func(){
		"setup_rhmc-malloc": func() { fixed.RHMC = true },
		"ploop-malloc":      func() { fixed.Ploop = true },
		"congrad-malloc":    func() { fixed.Congrad = true },
		"update_h-divzero":  func() { fixed.DivZero = true },
	}

	for round := 0; round < 6 && len(found) < 4; round++ {
		res := core.NewEngine(core.Config{
			Program:    program("susy-hmc"),
			Iterations: s.Iters,
			Reduction:  true,
			Framework:  true,
			Seed:       int64(31 + round*17),
			DFSPhase:   30,
			DepthBound: 120,
			RunTimeout: s.RunTimeout,
			Params:     fixed.Params(),
		}).Run()
		// Classify with the fix-state the whole round ran under, and apply
		// at most one fix per round (triage one bug, fix, re-test — the
		// workflow the paper describes).
		for _, rec := range res.Errors {
			name, kind := classify(rec)
			if name == "" {
				continue
			}
			if _, dup := found[name]; dup {
				continue
			}
			var parts []string
			for _, k := range []string{"nroot", "nsrc", "nt", "trajecs"} {
				parts = append(parts, fmt.Sprintf("%s=%d", k, rec.Inputs[k]))
			}
			found[name] = hit{kind: kind, iter: rec.Iter, nprocs: rec.NProcs,
				inputs: strings.Join(parts, " ")}
			fixes[name]() // developer applies the fix; the hunt continues
			break
		}
	}

	names := make([]string, 0, len(found))
	for n := range found {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		h := found[n]
		t.Rows = append(t.Rows, []string{
			n, h.kind, fmt.Sprintf("iter %d", h.iter),
			fmt.Sprint(h.nprocs), h.inputs,
		})
	}
	t.Notes = append(t.Notes, fmt.Sprintf("found %d of 4 seeded bugs", len(found)))
	return t
}
