package experiments

import (
	"fmt"
	"sort"

	"repro/internal/core"
)

// reductionVariant is one arm of the §VI-D comparison.
type reductionVariant struct {
	label  string
	mutate func(tn tuning, c *core.Config)
}

func reductionVariants() []reductionVariant {
	return []reductionVariant{
		{"R", func(tn tuning, c *core.Config) {
			c.Reduction = true
		}},
		{"NRBound", func(tn tuning, c *core.Config) {
			c.Reduction = false // same depth bound as COMPI's default
		}},
		{"NRUnl", func(tn tuning, c *core.Config) {
			c.Reduction = false
			c.DepthBound = core.Unbounded
		}},
	}
}

// TableVFig9 reproduces Table V and Figure 9 from the same campaigns:
// COMPI with constraint set reduction (R) against the two non-reduction
// variants (NRBound, NRUnl), comparing coverage rates and the distribution
// of constraint-set sizes.
func TableVFig9(s Scale) (*Table, *Table) {
	tab5 := &Table{
		ID:    "table5",
		Title: "Constraint set reduction: coverage rate (avg/max over reps)",
		Header: []string{"Program", "R avg", "R max", "NRBound avg", "NRBound max",
			"NRUnl avg", "NRUnl max"},
		Notes: []string{
			"paper: SUSY 84.7/86.1 vs 80.0/82.0 vs 80.1/80.2; HPL 69.6/71.9 vs 59.0/59.6 vs 59.4/60.4; IMB all ~69.0",
		},
	}
	fig9 := &Table{
		ID:     "fig9",
		Title:  "Constraint set size distribution per variant",
		Header: []string{"Program", "Variant", "p50", "p90", "Max", ">500 sets"},
		Notes: []string{
			"paper: R always < 500; NR variants reach thousands (HPL > 1600, IMB > 2000 in 30% of iterations)",
		},
	}

	for _, tn := range tunings() {
		row5 := []string{tn.name}
		for _, v := range reductionVariants() {
			var rates []float64
			var sizes []int
			over := 0
			for rep := 0; rep < s.Reps; rep++ {
				res := campaign(tn, s, int64(500+rep*31), func(c *core.Config) {
					v.mutate(tn, c)
				})
				rates = append(rates, rateOf(res.Coverage.Count(), tn, s))
				for _, it := range res.Iterations {
					sizes = append(sizes, it.PathLen)
					if it.PathLen > 500 {
						over++
					}
				}
			}
			avg, max := avgMax(rates)
			row5 = append(row5, pct(avg), pct(max))
			sort.Ints(sizes)
			q := func(f float64) int {
				if len(sizes) == 0 {
					return 0
				}
				i := int(f * float64(len(sizes)-1))
				return sizes[i]
			}
			fig9.Rows = append(fig9.Rows, []string{
				tn.name, v.label,
				fmt.Sprint(q(0.5)), fmt.Sprint(q(0.9)), fmt.Sprint(q(1.0)),
				fmt.Sprint(over),
			})
		}
		tab5.Rows = append(tab5.Rows, row5)
	}
	return tab5, fig9
}
