package experiments

import (
	"fmt"

	"repro/internal/sched"
	"repro/internal/targets/hpl"
)

// Fig6 reproduces Figure 6: HPL run at matrix sizes 100, 200, ..., 1000 with
// all other inputs at their defaults. The paper observes a small coverage
// increase from 100 to 200, flat coverage beyond, and an execution-time cost
// at N=1000 of 27.2× the cost at N=200 — the motivation for input capping.
// The N sweep is one scheduler batch; the enlarged cap that admits the big
// matrices is a per-campaign parameter.
func Fig6(s Scale) *Table {
	t := &Table{
		ID:     "fig6",
		Title:  "HPL coverage and time cost vs. matrix size (defaults otherwise)",
		Header: []string{"N", "Covered branches", "Time", "Time / Time(200)"},
		Notes: []string{
			"paper: coverage nearly flat from 200 up; time(1000) ~= 27.2 x time(200)",
		},
	}
	params := hpl.CapParams(int64(s.Fig6MaxN))

	var specs []sched.Spec
	var sizes []int
	for n := 100; n <= s.Fig6MaxN; n += 100 {
		in := hpl.DefaultInputs()
		in["n"] = int64(n)
		specs = append(specs, fixedSpec(fmt.Sprintf("hpl/N%d", n), "hpl", in,
			8, 0, false, params, s.RunTimeout))
		sizes = append(sizes, n)
	}
	rep := sched.Run(specs, s.schedOptions())

	var base float64
	for i, n := range sizes {
		fr := fixedResultOf(rep.Campaigns[i])
		if n == 200 {
			base = fr.elapsed.Seconds()
		}
		ratio := "-"
		if base > 0 {
			ratio = fmt.Sprintf("%.1fx", fr.elapsed.Seconds()/base)
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(n),
			fmt.Sprint(fr.covered),
			fr.elapsed.Round(1000000).String(),
			ratio,
		})
	}
	return t
}
