package experiments

import (
	"fmt"

	"repro/internal/targets/hpl"
)

// Fig6 reproduces Figure 6: HPL run at matrix sizes 100, 200, ..., 1000 with
// all other inputs at their defaults. The paper observes a small coverage
// increase from 100 to 200, flat coverage beyond, and an execution-time cost
// at N=1000 of 27.2× the cost at N=200 — the motivation for input capping.
func Fig6(s Scale) *Table {
	t := &Table{
		ID:     "fig6",
		Title:  "HPL coverage and time cost vs. matrix size (defaults otherwise)",
		Header: []string{"N", "Covered branches", "Time", "Time / Time(200)"},
		Notes: []string{
			"paper: coverage nearly flat from 200 up; time(1000) ~= 27.2 x time(200)",
		},
	}
	prog := program("hpl")
	old := hpl.NCap
	hpl.NCap = int64(s.Fig6MaxN)
	defer func() { hpl.NCap = old }()

	var base float64
	for n := 100; n <= s.Fig6MaxN; n += 100 {
		in := hpl.DefaultInputs()
		in["n"] = int64(n)
		fr := fixedRun(prog, in, 8, 0, false, s.RunTimeout)
		if n == 200 {
			base = fr.elapsed.Seconds()
		}
		ratio := "-"
		if base > 0 {
			ratio = fmt.Sprintf("%.1fx", fr.elapsed.Seconds()/base)
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(n),
			fmt.Sprint(fr.covered),
			fr.elapsed.Round(1000000).String(),
			ratio,
		})
	}
	return t
}
