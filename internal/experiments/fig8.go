package experiments

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/sched"
	"repro/internal/spec"
	"repro/internal/targets/hpl"
	"repro/internal/targets/imb"
	"repro/internal/targets/susy"
)

// Fig8 reproduces Figure 8: the input-capping study. For each program, the
// dominant input's cap is varied (SUSY lattice dims 5 vs 10; HPL matrix size
// 300/600/1200; IMB iterations 50/100/400) and Reps campaigns measure the
// testing time against the achieved coverage. The paper's shape: bigger caps
// cost 4-7x more time for comparable coverage. Every (program, cap, rep)
// campaign carries its cap as a per-campaign parameter, so the full grid is
// one scheduler batch.
func Fig8(s Scale) *Table {
	t := &Table{
		ID:     "fig8",
		Title:  "Input capping: testing time vs. coverage at different caps",
		Header: []string{"Program", "Cap", "Avg time", "Max time", "Avg covered", "Max covered"},
		Notes: []string{
			"paper: SUSY 5->10 ~4x time; HPL 300->1200 up to ~7x (worst case); IMB 50->400 ~4x; coverage comparable",
		},
	}

	type study struct {
		tn    tuning
		caps  []int64
		capOf func(cap int64) map[string]int64
		iters int
	}
	studies := []study{
		{tn: tunings()[0], caps: []int64{5, 10},
			capOf: susy.CapParams, iters: s.Iters / 4},
		{tn: tunings()[1], caps: []int64{300, 600, 1200},
			capOf: hpl.CapParams, iters: s.Iters / 2},
		{tn: tunings()[2], caps: []int64{50, 100, 400},
			capOf: imb.CapParams, iters: s.Iters / 2},
	}

	var specs []sched.Spec
	for _, st := range studies {
		for _, cap := range st.caps {
			params := core.MergeParams(st.tn.params, st.capOf(cap))
			for rep := 0; rep < s.Reps; rep++ {
				label := fmt.Sprintf("%s/cap%d/r%d", st.tn.name, cap, rep)
				specs = append(specs, campaignSpec(label, st.tn, s, int64(100*rep+7), func(c *spec.Campaign) {
					c.Iterations = st.iters
					c.Params = params
				}))
			}
		}
	}
	rep := sched.Run(specs, s.schedOptions())

	next := 0
	for _, st := range studies {
		for _, cap := range st.caps {
			var times, covs []float64
			for r := 0; r < s.Reps; r++ {
				res := rep.Campaigns[next].Result
				next++
				times = append(times, res.Elapsed.Seconds())
				covs = append(covs, float64(res.Coverage.Count()))
			}
			at, mt := avgMax(times)
			ac, mc := avgMax(covs)
			t.Rows = append(t.Rows, []string{
				st.tn.name, fmt.Sprint(cap),
				(time.Duration(at * float64(time.Second))).Round(time.Millisecond).String(),
				(time.Duration(mt * float64(time.Second))).Round(time.Millisecond).String(),
				fmt.Sprintf("%.0f", ac), fmt.Sprintf("%.0f", mc),
			})
		}
	}
	return t
}
