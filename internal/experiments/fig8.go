package experiments

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/targets/hpl"
	"repro/internal/targets/imb"
	"repro/internal/targets/susy"
)

// Fig8 reproduces Figure 8: the input-capping study. For each program, the
// dominant input's cap is varied (SUSY lattice dims 5 vs 10; HPL matrix size
// 300/600/1200; IMB iterations 50/100/400) and Reps campaigns measure the
// testing time against the achieved coverage. The paper's shape: bigger caps
// cost 4-7x more time for comparable coverage.
func Fig8(s Scale) *Table {
	t := &Table{
		ID:     "fig8",
		Title:  "Input capping: testing time vs. coverage at different caps",
		Header: []string{"Program", "Cap", "Avg time", "Max time", "Avg covered", "Max covered"},
		Notes: []string{
			"paper: SUSY 5->10 ~4x time; HPL 300->1200 up to ~7x (worst case); IMB 50->400 ~4x; coverage comparable",
		},
	}

	type study struct {
		tn    tuning
		caps  []int64
		set   func(cap int64)
		iters int
	}
	studies := []study{
		{tn: tunings()[0], caps: []int64{5, 10},
			set: func(c int64) { susy.DimCap = c }, iters: s.Iters / 4},
		{tn: tunings()[1], caps: []int64{300, 600, 1200},
			set: func(c int64) { hpl.NCap = c }, iters: s.Iters / 2},
		{tn: tunings()[2], caps: []int64{50, 100, 400},
			set: func(c int64) { imb.IterCap = c }, iters: s.Iters / 2},
	}
	defer func() {
		susy.DimCap = 5
		hpl.NCap = 300
		imb.IterCap = 100
	}()

	for _, st := range studies {
		for _, cap := range st.caps {
			st.set(cap)
			var times, covs []float64
			for rep := 0; rep < s.Reps; rep++ {
				res := campaign(st.tn, s, int64(100*rep+7), func(c *core.Config) {
					c.Iterations = st.iters
				})
				times = append(times, res.Elapsed.Seconds())
				covs = append(covs, float64(res.Coverage.Count()))
			}
			at, mt := avgMax(times)
			ac, mc := avgMax(covs)
			t.Rows = append(t.Rows, []string{
				st.tn.name, fmt.Sprint(cap),
				(time.Duration(at * float64(time.Second))).Round(time.Millisecond).String(),
				(time.Duration(mt * float64(time.Second))).Round(time.Millisecond).String(),
				fmt.Sprintf("%.0f", ac), fmt.Sprintf("%.0f", mc),
			})
		}
	}
	return t
}
