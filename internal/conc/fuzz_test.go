package conc

import (
	"math/rand"
	"testing"
)

// FuzzDecode checks that the log decoder neither panics nor over-allocates
// on arbitrary input, and that valid logs re-encode to an equivalent form.
func FuzzDecode(f *testing.F) {
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 8; i++ {
		f.Add(randLog(rng).Encode())
	}
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x7f})
	f.Fuzz(func(t *testing.T, data []byte) {
		l, err := Decode(data)
		if err != nil {
			return
		}
		// A successfully decoded log must round-trip through Encode/Decode.
		again, err := Decode(l.Encode())
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if len(again.Covered) != len(l.Covered) || len(again.Path) != len(l.Path) {
			t.Fatal("re-decode changed shape")
		}
	})
}
