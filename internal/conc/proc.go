package conc

import (
	"fmt"
	"math/rand"
	"sort"
	"time"

	"repro/internal/expr"
)

// Mode selects the instrumentation level of a process — the two halves of
// COMPI's two-way instrumentation (§IV-B), plus an uninstrumented mode for
// baselines.
type Mode uint8

// Instrumentation modes.
const (
	// Off disables all recording (used by pure random testing baselines
	// when only the error outcome matters).
	Off Mode = iota
	// Light records branch coverage only — the "ex2" binary launched for
	// every non-focus process.
	Light
	// Heavy performs full symbolic execution — the "ex1" binary launched
	// for the focus process.
	Heavy
)

func (m Mode) String() string {
	switch m {
	case Off:
		return "off"
	case Light:
		return "light"
	case Heavy:
		return "heavy"
	}
	return fmt.Sprintf("mode(%d)", uint8(m))
}

// CondID identifies a static conditional site in a target program. Each site
// owns two branches: 2·id (true) and 2·id+1 (false).
type CondID int32

// BranchBit is one direction of a conditional site.
type BranchBit uint32

// Bit returns the branch bit for a site and outcome.
func Bit(site CondID, outcome bool) BranchBit {
	b := BranchBit(site) * 2
	if !outcome {
		b++
	}
	return b
}

// Site returns the conditional site owning bit b.
func (b BranchBit) Site() CondID { return CondID(b / 2) }

// Outcome reports which direction b is.
func (b BranchBit) Outcome() bool { return b%2 == 0 }

// VarKind classifies symbolic variables per Table I of the paper.
type VarKind uint8

// Variable kinds.
const (
	KindInput     VarKind = iota // regular input marked by the developer
	KindRankWorld                // rw: rank in MPI_COMM_WORLD
	KindRankLocal                // rc: rank in another communicator
	KindSizeWorld                // sw: size of MPI_COMM_WORLD
)

func (k VarKind) String() string {
	switch k {
	case KindInput:
		return "input"
	case KindRankWorld:
		return "rw"
	case KindRankLocal:
		return "rc"
	case KindSizeWorld:
		return "sw"
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// VarObs is one symbolic variable observation from a run: which variable,
// its concrete value this execution, and the metadata the engine needs to
// build MPI-semantics constraints and input caps.
type VarObs struct {
	V        expr.Var
	Name     string
	Val      int64
	Kind     VarKind
	HasCap   bool
	Cap      int64
	CommIdx  int32 // KindRankLocal: index into the rank mapping table
	CommSize int64 // KindRankLocal: concrete size of that communicator
}

// PathEntry is one recorded symbolic branch: the predicate that held during
// this execution at the given site.
type PathEntry struct {
	Site    CondID
	Outcome bool
	Pred    expr.Pred
}

// VarSpace allocates stable variable IDs for input names across the whole
// testing campaign. It is owned by the engine and shared with each focus
// process; accesses are single-threaded by construction (one focus).
type VarSpace struct {
	byName map[string]expr.Var
	names  []string
}

// NewVarSpace returns an empty variable space.
func NewVarSpace() *VarSpace {
	return &VarSpace{byName: map[string]expr.Var{}}
}

// Of returns the variable for name, allocating it on first use.
func (s *VarSpace) Of(name string) expr.Var {
	if v, ok := s.byName[name]; ok {
		return v
	}
	v := expr.Var(len(s.names))
	s.byName[name] = v
	s.names = append(s.names, name)
	return v
}

// Name returns the name of v, or "" if unallocated.
func (s *VarSpace) Name(v expr.Var) string {
	if int(v) < len(s.names) {
		return s.names[v]
	}
	return ""
}

// Len returns the number of allocated variables.
func (s *VarSpace) Len() int { return len(s.names) }

// Names returns the allocated names in variable-ID order. A campaign
// snapshot records this so a resumed engine can re-allocate the same IDs in
// the same order before any new name appears.
func (s *VarSpace) Names() []string { return append([]string(nil), s.names...) }

// ErrHang is the panic value raised when a process exceeds its deadline; the
// launch harness reports it as a hang (the paper's infinite-loop bugs).
type ErrHang struct{ Rank int }

func (e *ErrHang) Error() string { return fmt.Sprintf("rank %d: deadline exceeded (hang)", e.Rank) }

// ErrAssert is the panic value raised by a failed assertion (the paper's
// assertion-violation bugs).
type ErrAssert struct {
	Rank int
	Msg  string
}

func (e *ErrAssert) Error() string {
	return fmt.Sprintf("rank %d: assertion failed: %s", e.Rank, e.Msg)
}

// Config parameterizes a process's concolic runtime.
type Config struct {
	Mode      Mode
	Reduction bool // constraint set reduction (§IV-C); COMPI default on
	Seed      int64
	// RandomLo/Hi bound the values generated for inputs that were not
	// supplied by the engine (first iteration).
	RandomLo, RandomHi int64
	// Deadline aborts the run as a hang when exceeded; zero means none.
	Deadline time.Time
	// MaxTicks aborts the run as a hang after this many instrumentation
	// events; zero means no tick limit. It makes hang detection
	// deterministic for the seeded infinite-loop bugs.
	MaxTicks int64
	// Params is the campaign parameter bag: per-campaign target knobs
	// (input caps, seeded-bug fix toggles) that used to live in package
	// globals. The map is shared read-only across all ranks of a launch
	// and across iterations; it must not be mutated after the launch.
	Params map[string]int64
	// TraceHint is the expected branch-event count (typically the previous
	// iteration's trace length) used to pre-size the trace and covered
	// buffers. Purely an allocation hint: zero or wrong values change
	// nothing but reallocation counts.
	TraceHint int
}

// Proc is the per-process concolic runtime state. One Proc exists per MPI
// rank per test iteration; only the focus rank runs in Heavy mode.
type Proc struct {
	cfg  Config
	rank int
	vars *VarSpace // nil unless Heavy
	in   map[string]int64
	rng  *rand.Rand

	covered     map[BranchBit]struct{}
	trace       []BranchBit // heavy only: every branch event, in order
	path        []PathEntry
	rawCount    int64 // constraints that would exist without reduction
	obs         []VarObs
	obsSeen     map[expr.Var]struct{}
	lastOutcome map[CondID]bool
	mapping     [][]int32 // local→global rank rows, one per sub-communicator
	matches     []MatchRec
	funcsHit    map[string]struct{}
	ticks       int64
	tickCheck   int64
	exprOps     int64
	exprMix     uint64
}

// NewProc creates the runtime for one rank. inputs maps symbolic input names
// to the engine-chosen values; missing names receive deterministic
// pseudo-random values (identical across ranks, since every rank is seeded
// the same and SPMD programs read inputs in a uniform order). vars may be
// nil unless cfg.Mode is Heavy.
func NewProc(rank int, vars *VarSpace, inputs map[string]int64, cfg Config) *Proc {
	if cfg.RandomLo == 0 && cfg.RandomHi == 0 {
		cfg.RandomLo, cfg.RandomHi = -10, 100
	}
	if cfg.Mode == Heavy && vars == nil {
		panic("conc: Heavy mode requires a VarSpace")
	}
	p := &Proc{
		cfg:         cfg,
		rank:        rank,
		vars:        vars,
		in:          inputs,
		rng:         rand.New(rand.NewSource(cfg.Seed)),
		covered:     make(map[BranchBit]struct{}, coveredHint(cfg.TraceHint)),
		obsSeen:     map[expr.Var]struct{}{},
		lastOutcome: map[CondID]bool{},
		funcsHit:    map[string]struct{}{},
	}
	if cfg.Mode == Heavy && cfg.TraceHint > 0 {
		p.trace = make([]BranchBit, 0, cfg.TraceHint)
	}
	return p
}

// coveredHint sizes the covered set from the trace hint: distinct branches
// are a small fraction of branch events, and over-reserving a map wastes
// memory per rank per iteration.
func coveredHint(traceHint int) int {
	h := traceHint / 8
	if h > 4096 {
		h = 4096
	}
	return h
}

// Rank returns the global rank this runtime belongs to.
func (p *Proc) Rank() int { return p.rank }

// Param returns the campaign parameter name, or def when the campaign did
// not set it. Parameters are concrete per-campaign knobs (caps, fix
// toggles), never symbolic inputs.
func (p *Proc) Param(name string, def int64) int64 {
	if v, ok := p.cfg.Params[name]; ok {
		return v
	}
	return def
}

// ParamBool is Param for boolean knobs: any non-zero value is true.
func (p *Proc) ParamBool(name string, def bool) bool {
	if v, ok := p.cfg.Params[name]; ok {
		return v != 0
	}
	return def
}

// Mode returns the instrumentation mode.
func (p *Proc) Mode() Mode { return p.cfg.Mode }

// Tick is the per-event heartbeat: it advances the hang watchdog. Targets
// with instrumentation-free tight loops call it explicitly; every Branch and
// MPI operation calls it implicitly.
func (p *Proc) Tick() {
	p.ticks++
	if p.cfg.MaxTicks > 0 && p.ticks > p.cfg.MaxTicks {
		panic(&ErrHang{Rank: p.rank})
	}
	if !p.cfg.Deadline.IsZero() {
		p.tickCheck++
		if p.tickCheck >= 1024 {
			p.tickCheck = 0
			if time.Now().After(p.cfg.Deadline) {
				panic(&ErrHang{Rank: p.rank})
			}
		}
	}
}

// Ticks returns the number of instrumentation events so far.
func (p *Proc) Ticks() int64 { return p.ticks }

// Exprs models n instrumented expression evaluations. CREST's heavy
// instrumentation intercepts every load, store, and arithmetic operation of
// the program, so a Heavy process pays the symbolic interpreter's
// bookkeeping for each of them; a Light process (branch recording only)
// skips that work entirely — the cost asymmetry behind two-way
// instrumentation (§IV-B). Targets call it from their compute kernels with
// the kernel's operation count.
func (p *Proc) Exprs(n int) {
	p.Tick()
	if p.cfg.Mode != Heavy {
		return
	}
	mix := p.exprMix
	for i := 0; i < n; i++ {
		// Two dependent integer ops approximate the per-operation overhead
		// of the symbolic interpreter's stack maintenance.
		mix = mix*6364136223846793005 + 1442695040888963407
		mix ^= mix >> 29
	}
	p.exprMix = mix
	p.exprOps += int64(n)
	// Large kernels advance the watchdog proportionally, so a compute-bound
	// infinite loop exhausts the tick budget like any other.
	p.ticks += int64(n / 64)
}

// ExprOps returns the number of instrumented expression evaluations so far.
func (p *Proc) ExprOps() int64 { return p.exprOps }

// EnterFunc records that a function was reached, for the reachable-branch
// estimate (sum of branches of all encountered functions, per the CREST FAQ
// methodology the paper uses).
func (p *Proc) EnterFunc(name string) {
	if p.cfg.Mode == Off {
		return
	}
	p.funcsHit[name] = struct{}{}
}

// InputInt reads the symbolic integer input called name (a variable the
// developer marked). In Heavy mode the returned value is symbolic.
func (p *Proc) InputInt(name string) Value { return p.input(name, 0, false) }

// InputIntCap is COMPI_int_with_limit (§IV-A): like InputInt but registers
// cap as an upper bound the solver must respect.
func (p *Proc) InputIntCap(name string, cap int64) Value { return p.input(name, cap, true) }

func (p *Proc) input(name string, cap int64, hasCap bool) Value {
	p.Tick()
	val, ok := p.in[name]
	if !ok {
		val = p.randomValue(cap, hasCap)
	}
	if hasCap && val > cap {
		// The engine always respects caps when solving; this guards the
		// first, random iteration.
		val = cap
	}
	if p.cfg.Mode != Heavy {
		return Value{C: val}
	}
	v := p.vars.Of(name)
	p.observe(VarObs{V: v, Name: name, Val: val, Kind: KindInput, HasCap: hasCap, Cap: cap})
	return Value{C: val, E: expr.VarRef(v)}
}

func (p *Proc) randomValue(cap int64, hasCap bool) int64 {
	lo, hi := p.cfg.RandomLo, p.cfg.RandomHi
	if hasCap && cap < hi {
		hi = cap
	}
	if hi < lo {
		return hi
	}
	return lo + p.rng.Int63n(hi-lo+1)
}

func (p *Proc) observe(o VarObs) {
	if _, dup := p.obsSeen[o.V]; dup {
		return
	}
	p.obsSeen[o.V] = struct{}{}
	p.obs = append(p.obs, o)
}

// MarkRankWorld is called by the MPI runtime at each MPI_Comm_rank
// invocation on MPI_COMM_WORLD (automatic marking, §III-A). site names the
// static callsite.
func (p *Proc) MarkRankWorld(site string, concrete int) Value {
	p.Tick()
	if p.cfg.Mode != Heavy {
		return Value{C: int64(concrete)}
	}
	v := p.vars.Of("rw:" + site)
	p.observe(VarObs{V: v, Name: "rw:" + site, Val: int64(concrete), Kind: KindRankWorld})
	return Value{C: int64(concrete), E: expr.VarRef(v)}
}

// MarkSizeWorld is the automatic marking at MPI_Comm_size on
// MPI_COMM_WORLD.
func (p *Proc) MarkSizeWorld(site string, concrete int) Value {
	p.Tick()
	if p.cfg.Mode != Heavy {
		return Value{C: int64(concrete)}
	}
	v := p.vars.Of("sw:" + site)
	p.observe(VarObs{V: v, Name: "sw:" + site, Val: int64(concrete), Kind: KindSizeWorld})
	return Value{C: int64(concrete), E: expr.VarRef(v)}
}

// MarkRankLocal is the automatic marking at MPI_Comm_rank on a non-default
// communicator. commIdx indexes the local→global mapping row registered via
// AddCommRow; commSize is the concrete size of that communicator this run.
func (p *Proc) MarkRankLocal(site string, concrete, commIdx, commSize int) Value {
	p.Tick()
	if p.cfg.Mode != Heavy {
		return Value{C: int64(concrete)}
	}
	v := p.vars.Of("rc:" + site)
	p.observe(VarObs{
		V: v, Name: "rc:" + site, Val: int64(concrete), Kind: KindRankLocal,
		CommIdx: int32(commIdx), CommSize: int64(commSize),
	})
	return Value{C: int64(concrete), E: expr.VarRef(v)}
}

// AddCommRow registers the global ranks of a newly created communicator,
// ordered by local rank (§III-D, Table II), and returns its index.
func (p *Proc) AddCommRow(globalRanks []int32) int {
	row := make([]int32, len(globalRanks))
	copy(row, globalRanks)
	p.mapping = append(p.mapping, row)
	return len(p.mapping) - 1
}

// Branch records the conditional site and, in Heavy mode, the path
// constraint, applying constraint set reduction when enabled: a constraint
// is kept only on the site's first encounter or when the outcome flips
// relative to the previous observation (§IV-C).
func (p *Proc) Branch(site CondID, c Cond) bool {
	p.Tick()
	if p.cfg.Mode == Off {
		return c.B
	}
	p.covered[Bit(site, c.B)] = struct{}{}
	if p.cfg.Mode == Heavy {
		// Full symbolic execution logs the entire branch trace (CREST's
		// szd_execution file); this is the bulk of the heavy process's
		// memory and I/O cost that two-way instrumentation avoids on
		// non-focus ranks.
		p.trace = append(p.trace, Bit(site, c.B))
	}
	if p.cfg.Mode == Heavy && c.P != nil {
		p.rawCount++
		record := true
		if p.cfg.Reduction {
			if last, seen := p.lastOutcome[site]; seen && last == c.B {
				record = false
			}
		}
		if record {
			pred := *c.P
			if !c.B {
				pred = pred.Negate()
			}
			p.path = append(p.path, PathEntry{Site: site, Outcome: c.B, Pred: pred})
		}
	}
	p.lastOutcome[site] = c.B
	return c.B
}

// Assert panics with an assertion-violation error when ok is false, modelling
// the C assert() failures COMPI exposes.
func (p *Proc) Assert(ok bool, format string, args ...any) {
	if !ok {
		panic(&ErrAssert{Rank: p.rank, Msg: fmt.Sprintf(format, args...)})
	}
}

// Log assembles this process's end-of-run output — the file a COMPI-
// instrumented process writes for the testing framework to read back.
func (p *Proc) Log() *Log {
	covered := make([]BranchBit, 0, len(p.covered))
	for b := range p.covered {
		covered = append(covered, b)
	}
	sort.Slice(covered, func(i, j int) bool { return covered[i] < covered[j] })
	funcs := make([]string, 0, len(p.funcsHit))
	for f := range p.funcsHit {
		funcs = append(funcs, f)
	}
	sort.Strings(funcs)
	l := &Log{
		Mode:     p.cfg.Mode,
		Rank:     p.rank,
		Covered:  covered,
		Funcs:    funcs,
		RawCount: p.rawCount,
	}
	if p.cfg.Mode == Heavy {
		l.Path = p.path
		l.Obs = p.obs
		l.Mapping = p.mapping
		l.Trace = p.trace
	}
	l.Matches = p.matches
	return l
}

// RecordMatch appends one wildcard-receive choice point to the log. Unlike
// the trace, matches are recorded in every mode: the engine enumerates
// untried match indices across all ranks, not just the focus.
func (p *Proc) RecordMatch(m MatchRec) {
	p.matches = append(p.matches, m)
}
