// Package conc implements the concolic execution runtime that target
// programs are written against. It plays the role of CREST's runtime library
// after CIL instrumentation: values carry a concrete 64-bit integer and,
// when the process is the focus, a symbolic expression; comparisons produce
// conditions whose predicates are recorded at branch callsites.
//
// The package implements the three practicality techniques of COMPI §IV:
// input capping (InputIntCap), two-way instrumentation (the Heavy/Light
// process modes), and constraint set reduction (the record-on-first-visit-
// or-flip heuristic in Branch).
package conc

import "repro/internal/expr"

// Value is a concolic integer: a concrete value plus an optional symbolic
// expression. E == nil means the value is purely concrete (always the case in
// Light mode, and in Heavy mode whenever an operation had to concretize).
type Value struct {
	C int64
	E *expr.Expr
}

// K returns a concrete constant value.
func K(v int64) Value { return Value{C: v} }

// IsSymbolic reports whether v carries a symbolic expression.
func (v Value) IsSymbolic() bool { return v.E != nil }

// exprOf returns the symbolic expression for v, falling back to its concrete
// literal.
func exprOf(v Value) *expr.Expr {
	if v.E != nil {
		return v.E
	}
	return expr.Const(v.C)
}

// Add returns a + b, symbolically when either operand is symbolic.
func Add(a, b Value) Value {
	out := Value{C: a.C + b.C}
	if a.E != nil || b.E != nil {
		out.E = expr.Add(exprOf(a), exprOf(b))
	}
	return out
}

// Sub returns a - b.
func Sub(a, b Value) Value {
	out := Value{C: a.C - b.C}
	if a.E != nil || b.E != nil {
		out.E = expr.Sub(exprOf(a), exprOf(b))
	}
	return out
}

// Mul returns a * b. Multiplication of two symbolic operands is concretized
// on the right (the defining concolic simplification: the result stays
// linear, as when CREST hands constraints to Yices).
func Mul(a, b Value) Value {
	out := Value{C: a.C * b.C}
	switch {
	case a.E != nil && b.E != nil:
		out.E = expr.Mul(a.E, expr.Const(b.C))
	case a.E != nil:
		out.E = expr.Mul(a.E, expr.Const(b.C))
	case b.E != nil:
		out.E = expr.Mul(expr.Const(a.C), b.E)
	}
	return out
}

// Div returns a / b (truncated). Division by a concrete value keeps the
// dividend symbolic (the paper's own example negates "x/2 + y <= 200");
// division by a symbolic divisor concretizes. Division by zero panics like
// the hardware fault it models (the harness reports it as a crash).
func Div(a, b Value) Value {
	out := Value{C: a.C / b.C}
	if a.E != nil {
		out.E = expr.Div(a.E, expr.Const(b.C))
	}
	return out
}

// Mod returns a % b, with the same concretization rule as Div.
func Mod(a, b Value) Value {
	out := Value{C: a.C % b.C}
	if a.E != nil {
		out.E = expr.Mod(a.E, expr.Const(b.C))
	}
	return out
}

// Neg returns -a.
func Neg(a Value) Value {
	out := Value{C: -a.C}
	if a.E != nil {
		out.E = expr.Neg(a.E)
	}
	return out
}

// Cond is the result of a comparison: the concrete truth value plus, when
// either operand was symbolic, the predicate that holds iff B is true.
type Cond struct {
	B bool
	P *expr.Pred
}

func compare(a, b Value, rel expr.Rel, hold bool) Cond {
	c := Cond{B: hold}
	if a.E != nil || b.E != nil {
		p := expr.Compare(exprOf(a), exprOf(b), rel)
		if _, constant := p.E.IsConst(); !constant {
			c.P = &p
		}
	}
	return c
}

// LT returns the condition a < b.
func LT(a, b Value) Cond { return compare(a, b, expr.LT, a.C < b.C) }

// LE returns the condition a <= b.
func LE(a, b Value) Cond { return compare(a, b, expr.LE, a.C <= b.C) }

// GT returns the condition a > b.
func GT(a, b Value) Cond { return compare(a, b, expr.GT, a.C > b.C) }

// GE returns the condition a >= b.
func GE(a, b Value) Cond { return compare(a, b, expr.GE, a.C >= b.C) }

// EQ returns the condition a == b.
func EQ(a, b Value) Cond { return compare(a, b, expr.EQ, a.C == b.C) }

// NE returns the condition a != b.
func NE(a, b Value) Cond { return compare(a, b, expr.NE, a.C != b.C) }

// Not returns the logical negation of c.
func Not(c Cond) Cond {
	out := Cond{B: !c.B}
	if c.P != nil {
		p := c.P.Negate()
		out.P = &p
	}
	return out
}

// True is a concrete condition, useful for loop guards instrumented only for
// coverage.
func True(b bool) Cond { return Cond{B: b} }
