package conc

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/expr"
)

// TestEncodedSizeMatchesEncode pins EncodedSize == len(Encode()) — the
// iteration loop reports log sizes without serializing, so the two paths
// must never drift. Randomized logs plus a varint-extremes case (negative
// and max-magnitude values exercise the zig-zag length arithmetic).
func TestEncodedSizeMatchesEncode(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for i := 0; i < 300; i++ {
		l := randLog(rng)
		// randLog leaves Trace empty; the trace section dominates real Heavy
		// logs, so size it too.
		prev := BranchBit(0)
		for j := 0; j < rng.Intn(50); j++ {
			prev += BranchBit(1 + rng.Intn(300))
			l.Trace = append(l.Trace, prev)
		}
		if got, want := l.EncodedSize(), len(l.Encode()); got != want {
			t.Fatalf("log %d: EncodedSize %d != len(Encode) %d", i, got, want)
		}
	}

	extreme := &Log{
		Mode:     Heavy,
		Rank:     math.MaxInt32,
		Covered:  []BranchBit{0, math.MaxUint32},
		Funcs:    []string{"", "long-function-name-with-more-than-127-bytes-" + string(make([]byte, 200))},
		RawCount: math.MinInt64,
		Path: []PathEntry{{
			Site:    -1,
			Outcome: true,
			Pred: expr.Pred{
				E:   expr.Mod(expr.Neg(expr.VarRef(expr.Var(math.MaxInt32))), expr.Const(math.MinInt64)),
				Rel: expr.NE,
			},
		}},
		Obs: []VarObs{{
			V: 0, Name: "n", Val: math.MaxInt64, HasCap: true,
			Cap: math.MinInt64, CommIdx: -1, CommSize: math.MaxInt64,
		}},
		Mapping: [][]int32{{-1, math.MaxInt32, math.MinInt32}, {}},
		Trace:   []BranchBit{math.MaxUint32, 0, 127, 128},
	}
	if got, want := extreme.EncodedSize(), len(extreme.Encode()); got != want {
		t.Fatalf("extreme log: EncodedSize %d != len(Encode) %d", got, want)
	}

	empty := &Log{}
	if got, want := empty.EncodedSize(), len(empty.Encode()); got != want {
		t.Fatalf("empty log: EncodedSize %d != len(Encode) %d", got, want)
	}
}
