package conc

import (
	"math/rand"
	"testing"

	"repro/internal/expr"
)

// TestConcolicMirrorInvariant checks the defining invariant of concolic
// execution: for any sequence of operations over symbolic inputs, the
// symbolic expression — evaluated under the actual input values — equals the
// concrete value carried alongside it. Concretization may *drop* symbolic
// information (Div/Mod/Mul of two symbolics) but must never make the two
// disagree.
func TestConcolicMirrorInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 300; trial++ {
		vs := NewVarSpace()
		inputs := map[string]int64{
			"a": int64(rng.Intn(41) - 20),
			"b": int64(rng.Intn(41) - 20),
			"c": int64(rng.Intn(41) - 20),
		}
		p := NewProc(0, vs, inputs, Config{Mode: Heavy, Seed: int64(trial)})
		env := expr.Env(func(v expr.Var) int64 { return inputs[vs.Name(v)] })

		pool := []Value{
			p.InputInt("a"), p.InputInt("b"), p.InputInt("c"),
			K(int64(rng.Intn(11) - 5)),
		}
		for step := 0; step < 12; step++ {
			a := pool[rng.Intn(len(pool))]
			b := pool[rng.Intn(len(pool))]
			var out Value
			switch rng.Intn(6) {
			case 0:
				out = Add(a, b)
			case 1:
				out = Sub(a, b)
			case 2:
				out = Mul(a, b)
			case 3:
				if b.C == 0 {
					continue
				}
				out = Div(a, b)
			case 4:
				if b.C == 0 {
					continue
				}
				out = Mod(a, b)
			default:
				out = Neg(a)
			}
			if out.E != nil {
				got, ok := out.E.Eval(env)
				if !ok {
					t.Fatalf("trial %d step %d: symbolic expr undefined: %s",
						trial, step, out.E)
				}
				if got != out.C {
					t.Fatalf("trial %d step %d: symbolic %d != concrete %d for %s",
						trial, step, got, out.C, out.E)
				}
			}
			pool = append(pool, out)
		}
	}
}

// TestCondMirrorInvariant is the comparison-level version: a recorded
// predicate must hold under the input values exactly when the concrete
// comparison was true.
func TestCondMirrorInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	for trial := 0; trial < 300; trial++ {
		vs := NewVarSpace()
		inputs := map[string]int64{
			"a": int64(rng.Intn(21) - 10),
			"b": int64(rng.Intn(21) - 10),
		}
		p := NewProc(0, vs, inputs, Config{Mode: Heavy, Seed: int64(trial)})
		env := expr.Env(func(v expr.Var) int64 { return inputs[vs.Name(v)] })
		a, b := p.InputInt("a"), p.InputInt("b")
		x := Add(Mul(a, K(int64(rng.Intn(5)-2))), b)
		y := Sub(b, K(int64(rng.Intn(9))))
		conds := []Cond{LT(x, y), LE(x, y), GT(x, y), GE(x, y), EQ(x, y), NE(x, y)}
		for i, c := range conds {
			if c.P == nil {
				continue
			}
			hold, ok := c.P.Eval(env)
			if !ok || hold != c.B {
				t.Fatalf("trial %d cond %d: predicate %s hold=%v ok=%v but concrete %v",
					trial, i, c.P, hold, ok, c.B)
			}
			n := Not(c)
			if nh, _ := n.P.Eval(env); nh != n.B {
				t.Fatalf("trial %d cond %d: negation inconsistent", trial, i)
			}
		}
	}
}
