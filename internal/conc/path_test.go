package conc

import (
	"reflect"
	"testing"

	"repro/internal/expr"
)

func TestEncodeDecodePathRoundTrip(t *testing.T) {
	path := []PathEntry{
		{Site: 3, Outcome: true,
			Pred: expr.Pred{E: expr.Add(expr.VarRef(0), expr.Const(4)), Rel: expr.LE}},
		{Site: 9, Outcome: false,
			Pred: expr.Pred{E: expr.Mul(expr.VarRef(2), expr.VarRef(1)), Rel: expr.NE}},
		{Site: 1, Outcome: true,
			Pred: expr.Pred{E: expr.Neg(expr.VarRef(5)), Rel: expr.GT}},
	}
	got, err := DecodePath(EncodePath(path))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, path) {
		t.Fatalf("round trip changed the path:\nwant %+v\ngot  %+v", path, got)
	}

	empty, err := DecodePath(EncodePath(nil))
	if err != nil || len(empty) != 0 {
		t.Fatalf("empty path round trip: %v %v", empty, err)
	}
}

func TestDecodePathRejectsCorruptInput(t *testing.T) {
	b := EncodePath([]PathEntry{{Site: 1, Outcome: true,
		Pred: expr.Pred{E: expr.VarRef(0), Rel: expr.EQ}}})
	if _, err := DecodePath(b[:len(b)-1]); err == nil {
		t.Error("truncated path decoded without error")
	}
	if _, err := DecodePath(append(append([]byte(nil), b...), 0xff)); err == nil {
		t.Error("trailing bytes decoded without error")
	}
}
