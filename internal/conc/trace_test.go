package conc

import (
	"reflect"
	"testing"
)

func TestHeavyRecordsTrace(t *testing.T) {
	vs := NewVarSpace()
	p := NewProc(0, vs, map[string]int64{"x": 1}, Config{Mode: Heavy, Reduction: true, Seed: 1})
	x := p.InputInt("x")
	p.Branch(CondID(1), LT(x, K(10)))
	p.Branch(CondID(2), GT(x, K(10)))
	p.Branch(CondID(1), LT(x, K(10))) // repeated event stays in the trace
	log := p.Log()
	want := []BranchBit{Bit(1, true), Bit(2, false), Bit(1, true)}
	if !reflect.DeepEqual(log.Trace, want) {
		t.Fatalf("trace: %v want %v", log.Trace, want)
	}
	// Reduction prunes the constraint path but never the trace.
	if len(log.Path) >= len(log.Trace) {
		t.Fatalf("path %d should be shorter than trace %d", len(log.Path), len(log.Trace))
	}
}

func TestLightRecordsNoTrace(t *testing.T) {
	p := NewProc(1, nil, nil, Config{Mode: Light, Seed: 1})
	p.Branch(CondID(1), True(true))
	if len(p.Log().Trace) != 0 {
		t.Fatal("light mode recorded a trace")
	}
}

func TestTraceRoundTripsThroughEncode(t *testing.T) {
	vs := NewVarSpace()
	p := NewProc(0, vs, nil, Config{Mode: Heavy, Seed: 1})
	for i := 0; i < 100; i++ {
		p.Branch(CondID(i%7), True(i%3 == 0))
	}
	log := p.Log()
	got, err := Decode(log.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Trace, log.Trace) {
		t.Fatal("trace lost in encode/decode")
	}
}

func TestExprsOnlyCostsHeavy(t *testing.T) {
	vs := NewVarSpace()
	heavy := NewProc(0, vs, nil, Config{Mode: Heavy, Seed: 1})
	light := NewProc(1, nil, nil, Config{Mode: Light, Seed: 1})
	heavy.Exprs(1000)
	light.Exprs(1000)
	if heavy.ExprOps() != 1000 {
		t.Fatalf("heavy ops: %d", heavy.ExprOps())
	}
	if light.ExprOps() != 0 {
		t.Fatalf("light ops: %d", light.ExprOps())
	}
}

func TestExprsAdvancesWatchdog(t *testing.T) {
	p := NewProc(0, NewVarSpace(), nil, Config{Mode: Heavy, Seed: 1, MaxTicks: 100})
	defer func() {
		if _, ok := recover().(*ErrHang); !ok {
			t.Fatal("expected hang")
		}
	}()
	for i := 0; i < 10000; i++ {
		p.Exprs(6400) // 6400/64 = 100 ticks per call
	}
	t.Fatal("unreachable")
}
