package conc

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/expr"
)

func heavyProc(t *testing.T) (*Proc, *VarSpace) {
	t.Helper()
	vs := NewVarSpace()
	p := NewProc(0, vs, map[string]int64{}, Config{Mode: Heavy, Reduction: true, Seed: 1})
	return p, vs
}

func TestValueArithmetic(t *testing.T) {
	a, b := K(6), K(4)
	if v := Add(a, b); v.C != 10 || v.IsSymbolic() {
		t.Fatalf("Add: %+v", v)
	}
	if v := Sub(a, b); v.C != 2 {
		t.Fatalf("Sub: %+v", v)
	}
	if v := Mul(a, b); v.C != 24 {
		t.Fatalf("Mul: %+v", v)
	}
	if v := Div(a, b); v.C != 1 {
		t.Fatalf("Div: %+v", v)
	}
	if v := Mod(a, b); v.C != 2 {
		t.Fatalf("Mod: %+v", v)
	}
	if v := Neg(a); v.C != -6 {
		t.Fatalf("Neg: %+v", v)
	}
}

func TestSymbolicPropagation(t *testing.T) {
	p, vs := heavyProc(t)
	x := p.InputInt("x")
	if !x.IsSymbolic() {
		t.Fatal("heavy input must be symbolic")
	}
	y := Add(Mul(x, K(3)), K(1)) // 3x+1 stays linear
	l, ok := y.E.AsLinear()
	if !ok || l.Terms[vs.Of("x")] != 3 || l.K != 1 {
		t.Fatalf("3x+1 linear form: %v ok=%v", l, ok)
	}
}

func TestConcolicConcretization(t *testing.T) {
	p, _ := heavyProc(t)
	x := p.InputInt("x")
	y := p.InputInt("y")
	// x*y: one side is concretized so the result stays linear.
	v := Mul(x, y)
	if v.E == nil {
		t.Fatal("x*y should keep one symbolic factor")
	}
	if _, ok := v.E.AsLinear(); !ok {
		t.Fatalf("x*y must concretize to a linear form, got %s", v.E)
	}
	// x/const keeps the dividend symbolic (paper Figure 1 negates x/2+y<=200).
	d := Div(x, K(2))
	if d.E == nil {
		t.Fatal("x/2 must stay symbolic")
	}
	// const/x concretizes entirely.
	c := Div(K(100), Add(x, K(1)))
	if c.E != nil {
		t.Fatal("100/(x+1) must concretize")
	}
}

func TestDivideByZeroPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Div(K(1), K(0))
}

func TestCondAndNot(t *testing.T) {
	p, _ := heavyProc(t)
	x := p.InputInt("x") // random in [-10,100]
	c := LT(x, K(1000))
	if !c.B || c.P == nil {
		t.Fatalf("cond: %+v", c)
	}
	n := Not(c)
	if n.B || n.P == nil || n.P.Rel != c.P.Rel.Negate() {
		t.Fatalf("not: %+v", n)
	}
	// Concrete comparison carries no predicate.
	cc := EQ(K(1), K(1))
	if !cc.B || cc.P != nil {
		t.Fatalf("concrete cond: %+v", cc)
	}
}

func TestInputValuesAndCaps(t *testing.T) {
	vs := NewVarSpace()
	p := NewProc(0, vs, map[string]int64{"n": 250}, Config{Mode: Heavy, Seed: 3})
	n := p.InputIntCap("n", 300)
	if n.C != 250 {
		t.Fatalf("supplied input ignored: %d", n.C)
	}
	// A supplied value above the cap is clamped (guards the random first run).
	p2 := NewProc(0, NewVarSpace(), map[string]int64{"n": 999}, Config{Mode: Heavy, Seed: 3})
	if got := p2.InputIntCap("n", 300); got.C != 300 {
		t.Fatalf("cap not enforced: %d", got.C)
	}
	// Cap recorded in observations for the solver.
	log := p.Log()
	if len(log.Obs) != 1 || !log.Obs[0].HasCap || log.Obs[0].Cap != 300 {
		t.Fatalf("cap observation: %+v", log.Obs)
	}
}

func TestMissingInputsDeterministicAcrossRanks(t *testing.T) {
	// Two ranks with the same seed must derive identical values for inputs
	// the engine did not supply (first iteration), or SPMD control flow
	// would diverge.
	vs := NewVarSpace()
	a := NewProc(0, vs, nil, Config{Mode: Heavy, Seed: 7})
	b := NewProc(1, nil, nil, Config{Mode: Light, Seed: 7})
	for _, name := range []string{"p", "q", "r"} {
		va, vb := a.InputInt(name), b.InputInt(name)
		if va.C != vb.C {
			t.Fatalf("input %q diverged: %d vs %d", name, va.C, vb.C)
		}
	}
}

func TestVarSpaceStability(t *testing.T) {
	vs := NewVarSpace()
	v1 := vs.Of("x")
	_ = vs.Of("y")
	if vs.Of("x") != v1 {
		t.Fatal("variable ID not stable")
	}
	if vs.Name(v1) != "x" || vs.Len() != 2 {
		t.Fatal("name table wrong")
	}
}

func TestBranchCoverageBothModes(t *testing.T) {
	for _, mode := range []Mode{Light, Heavy} {
		var vs *VarSpace
		if mode == Heavy {
			vs = NewVarSpace()
		}
		p := NewProc(0, vs, nil, Config{Mode: mode, Seed: 1})
		x := p.InputInt("x")
		p.Branch(CondID(5), LT(x, K(1000))) // true branch
		p.Branch(CondID(6), GT(x, K(1000))) // false branch
		log := p.Log()
		want := []BranchBit{Bit(5, true), Bit(6, false)}
		if !reflect.DeepEqual(log.Covered, want) {
			t.Fatalf("%v covered = %v want %v", mode, log.Covered, want)
		}
		if mode == Light && len(log.Path) != 0 {
			t.Fatal("light mode must not record constraints")
		}
		if mode == Heavy && len(log.Path) != 2 {
			t.Fatalf("heavy mode path: %+v", log.Path)
		}
	}
}

func TestOffModeRecordsNothing(t *testing.T) {
	p := NewProc(0, nil, nil, Config{Mode: Off, Seed: 1})
	p.Branch(CondID(1), True(true))
	p.EnterFunc("f")
	log := p.Log()
	if len(log.Covered) != 0 || len(log.Funcs) != 0 {
		t.Fatalf("off mode recorded: %+v", log)
	}
}

// TestConstraintSetReductionFigure7 reproduces the paper's Figure 7: a loop
// "for(i=0;i<100;i++) if (x+i < 100) ..." generates 101 constraints from one
// conditional; with reduction only the first and the flip survive.
func TestConstraintSetReductionFigure7(t *testing.T) {
	run := func(reduction bool) *Log {
		vs := NewVarSpace()
		p := NewProc(0, vs, map[string]int64{"x": 0}, Config{Mode: Heavy, Reduction: reduction, Seed: 1})
		x := p.InputInt("x")
		site := CondID(9)
		for i := int64(0); i <= 100; i++ {
			p.Branch(site, LT(Add(x, K(i)), K(100)))
		}
		return p.Log()
	}
	with := run(true)
	without := run(false)
	if len(without.Path) != 101 {
		t.Fatalf("unreduced path length = %d, want 101", len(without.Path))
	}
	if len(with.Path) != 2 {
		t.Fatalf("reduced path length = %d, want 2 (first + flip)", len(with.Path))
	}
	if with.Path[0].Outcome != true || with.Path[1].Outcome != false {
		t.Fatalf("reduced path outcomes: %+v", with.Path)
	}
	if with.RawCount != 101 {
		t.Fatalf("raw count = %d, want 101", with.RawCount)
	}
}

func TestReductionKeepsReencounterAfterFlip(t *testing.T) {
	vs := NewVarSpace()
	p := NewProc(0, vs, map[string]int64{"x": 5}, Config{Mode: Heavy, Reduction: true, Seed: 1})
	x := p.InputInt("x")
	site := CondID(3)
	p.Branch(site, LT(x, K(10))) // true: recorded (first)
	p.Branch(site, LT(x, K(3)))  // false: recorded (flip)
	p.Branch(site, LT(x, K(2)))  // false: suppressed (same outcome)
	p.Branch(site, LT(x, K(10))) // true: recorded (flip back)
	if got := len(p.Log().Path); got != 3 {
		t.Fatalf("path length = %d, want 3", got)
	}
}

func TestMPIMarking(t *testing.T) {
	p, vs := heavyProc(t)
	r := p.MarkRankWorld("main:1", 3)
	s := p.MarkSizeWorld("main:2", 8)
	idx := p.AddCommRow([]int32{0, 4, 2})
	l := p.MarkRankLocal("split:1", 1, idx, 3)
	if r.C != 3 || s.C != 8 || l.C != 1 {
		t.Fatal("concrete values wrong")
	}
	if !r.IsSymbolic() || !s.IsSymbolic() || !l.IsSymbolic() {
		t.Fatal("marks must be symbolic on the focus")
	}
	log := p.Log()
	if len(log.Obs) != 3 {
		t.Fatalf("obs: %+v", log.Obs)
	}
	kinds := map[VarKind]VarObs{}
	for _, o := range log.Obs {
		kinds[o.Kind] = o
	}
	if kinds[KindRankWorld].Val != 3 || kinds[KindSizeWorld].Val != 8 {
		t.Fatal("rank/size obs wrong")
	}
	rc := kinds[KindRankLocal]
	if rc.CommIdx != 0 || rc.CommSize != 3 {
		t.Fatalf("rc obs: %+v", rc)
	}
	if len(log.Mapping) != 1 || log.Mapping[0][1] != 4 {
		t.Fatalf("mapping: %+v", log.Mapping)
	}
	if vs.Len() != 3 {
		t.Fatalf("vars allocated: %d", vs.Len())
	}
	// Re-marking the same site must not duplicate observations.
	p.MarkRankWorld("main:1", 3)
	if got := len(p.Log().Obs); got != 3 {
		t.Fatalf("duplicate obs: %d", got)
	}
}

func TestLightModeMarksAreConcrete(t *testing.T) {
	p := NewProc(2, nil, nil, Config{Mode: Light, Seed: 1})
	if p.MarkRankWorld("s", 2).IsSymbolic() {
		t.Fatal("light rank mark must be concrete")
	}
}

func TestTickHangDetection(t *testing.T) {
	p := NewProc(1, nil, nil, Config{Mode: Light, Seed: 1, MaxTicks: 10})
	defer func() {
		r := recover()
		h, ok := r.(*ErrHang)
		if !ok {
			t.Fatalf("want ErrHang, got %v", r)
		}
		if h.Rank != 1 {
			t.Fatalf("hang rank = %d", h.Rank)
		}
	}()
	for i := 0; i < 100; i++ {
		p.Tick()
	}
	t.Fatal("unreachable")
}

func TestAssert(t *testing.T) {
	p := NewProc(0, nil, nil, Config{Mode: Light, Seed: 1})
	p.Assert(true, "fine")
	defer func() {
		e, ok := recover().(*ErrAssert)
		if !ok || e.Msg != "n = 7" {
			t.Fatalf("assert panic: %v", e)
		}
	}()
	p.Assert(false, "n = %d", 7)
}

func TestBitSiteOutcome(t *testing.T) {
	b := Bit(CondID(21), false)
	if b.Site() != 21 || b.Outcome() {
		t.Fatalf("bit roundtrip: %v", b)
	}
	b = Bit(CondID(21), true)
	if b.Site() != 21 || !b.Outcome() {
		t.Fatalf("bit roundtrip: %v", b)
	}
}

func TestEnterFuncRecorded(t *testing.T) {
	p := NewProc(0, nil, nil, Config{Mode: Light, Seed: 1})
	p.EnterFunc("solve")
	p.EnterFunc("init")
	p.EnterFunc("solve")
	log := p.Log()
	if !reflect.DeepEqual(log.Funcs, []string{"init", "solve"}) {
		t.Fatalf("funcs: %v", log.Funcs)
	}
}

func randLog(rng *rand.Rand) *Log {
	l := &Log{Mode: Heavy, Rank: rng.Intn(16)}
	prev := BranchBit(0)
	for i := 0; i < rng.Intn(20); i++ {
		prev += BranchBit(1 + rng.Intn(9))
		l.Covered = append(l.Covered, prev)
	}
	for i := 0; i < rng.Intn(5); i++ {
		l.Funcs = append(l.Funcs, string(rune('a'+i)))
	}
	l.RawCount = int64(rng.Intn(1000))
	for i := 0; i < rng.Intn(8); i++ {
		e := expr.Sub(expr.Mul(expr.Const(int64(rng.Intn(9)-4)), expr.VarRef(expr.Var(rng.Intn(5)))), expr.Const(int64(rng.Intn(100))))
		l.Path = append(l.Path, PathEntry{
			Site:    CondID(rng.Intn(100)),
			Outcome: rng.Intn(2) == 0,
			Pred:    expr.Pred{E: e, Rel: expr.Rel(rng.Intn(6))},
		})
	}
	for i := 0; i < rng.Intn(4); i++ {
		l.Obs = append(l.Obs, VarObs{
			V: expr.Var(i), Name: "v", Val: int64(rng.Intn(100) - 50),
			Kind: VarKind(rng.Intn(4)), HasCap: rng.Intn(2) == 0, Cap: 300,
			CommIdx: int32(rng.Intn(3)), CommSize: int64(rng.Intn(8)),
		})
	}
	for i := 0; i < rng.Intn(3); i++ {
		row := make([]int32, rng.Intn(5))
		for j := range row {
			row[j] = int32(rng.Intn(16))
		}
		l.Mapping = append(l.Mapping, row)
	}
	return l
}

// Property: Encode/Decode round-trips arbitrary logs.
func TestLogRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 200; i++ {
		l := randLog(rng)
		got, err := Decode(l.Encode())
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		if got.Mode != l.Mode || got.Rank != l.Rank || got.RawCount != l.RawCount {
			t.Fatalf("header mismatch: %+v vs %+v", got, l)
		}
		if !reflect.DeepEqual(got.Covered, l.Covered) {
			t.Fatalf("covered mismatch: %v vs %v", got.Covered, l.Covered)
		}
		if len(got.Path) != len(l.Path) {
			t.Fatalf("path length mismatch")
		}
		for j := range got.Path {
			if got.Path[j].Site != l.Path[j].Site || got.Path[j].Outcome != l.Path[j].Outcome {
				t.Fatalf("path entry mismatch at %d", j)
			}
			if !expr.Equal(got.Path[j].Pred.E, l.Path[j].Pred.E) || got.Path[j].Pred.Rel != l.Path[j].Pred.Rel {
				t.Fatalf("pred mismatch at %d: %s vs %s", j, got.Path[j].Pred, l.Path[j].Pred)
			}
		}
		if !reflect.DeepEqual(got.Obs, l.Obs) {
			t.Fatalf("obs mismatch: %+v vs %+v", got.Obs, l.Obs)
		}
		if len(got.Mapping) != len(l.Mapping) {
			t.Fatal("mapping mismatch")
		}
	}
}

func TestDecodeTruncated(t *testing.T) {
	l := randLog(rand.New(rand.NewSource(2)))
	enc := l.Encode()
	for _, cut := range []int{0, 1, len(enc) / 2, len(enc) - 1} {
		if cut >= len(enc) {
			continue
		}
		if _, err := Decode(enc[:cut]); err == nil {
			// Some prefixes happen to decode if trailing sections are empty;
			// only a strict prefix of a non-empty section must fail. Accept
			// nil error only when the cut kept all mandatory sections.
			if cut < 3 {
				t.Fatalf("cut=%d decoded successfully", cut)
			}
		}
	}
}

func TestLightLogSmallerThanHeavy(t *testing.T) {
	// The essence of Table IV: a non-focus (light) log must be a tiny
	// fraction of the focus (heavy) log for constraint-heavy runs.
	vs := NewVarSpace()
	heavy := NewProc(0, vs, map[string]int64{"x": 0}, Config{Mode: Heavy, Reduction: false, Seed: 1})
	light := NewProc(1, nil, map[string]int64{"x": 0}, Config{Mode: Light, Seed: 1})
	hx := heavy.InputInt("x")
	lx := light.InputInt("x")
	for i := int64(0); i < 2000; i++ {
		heavy.Branch(CondID(1), LT(Add(hx, K(i)), K(5000)))
		light.Branch(CondID(1), LT(Add(lx, K(i)), K(5000)))
	}
	hs := len(heavy.Log().Encode())
	ls := len(light.Log().Encode())
	if ls*10 > hs {
		t.Fatalf("light log %dB not ≪ heavy log %dB", ls, hs)
	}
}
