package conc

import (
	"encoding/binary"
	"errors"
	"fmt"

	"repro/internal/expr"
)

// Log is what one process writes at the end of a test execution and the
// testing framework reads back — the I/O channel whose volume the two-way
// instrumentation experiment (Table IV) measures. Light processes carry only
// the covered-branch set; the Heavy (focus) process additionally carries the
// constraint path, variable observations, and the local→global rank mapping.
type Log struct {
	Mode     Mode
	Rank     int
	Covered  []BranchBit
	Funcs    []string
	RawCount int64 // constraints generated before reduction (statistics)
	Path     []PathEntry
	Obs      []VarObs
	Mapping  [][]int32
	// Trace is the complete ordered branch-event log of a Heavy process
	// (CREST's execution file). Its size scales with the work the program
	// did, which is why one-way instrumentation makes every rank's log
	// balloon (Table IV).
	Trace []BranchBit
	// Matches are this rank's wildcard-receive choice points (schedule-mode
	// runs only): each quiescent wildcard match with more than one eligible
	// sender records the eligible-set fingerprint and the index chosen. The
	// engine negates these indices the way it negates branch predicates.
	// Recorded by every mode — the engine needs all ranks' choice points,
	// not just the focus's.
	Matches []MatchRec
}

// MatchRec is one recorded wildcard-receive choice point.
type MatchRec struct {
	Seq    int32   // global grant sequence within the run (total order)
	Comm   int32   // communicator the receive matched on
	Tag    int32   // receive tag
	Srcs   []int32 // eligible local source ranks, sorted ascending
	Choice int32   // index into Srcs actually matched
}

var errTruncated = errors.New("conc: truncated log")

// Encode serializes l to the on-disk format. The byte count of the result is
// the "log size" reported in the instrumentation experiments.
func (l *Log) Encode() []byte {
	var b []byte
	b = append(b, byte(l.Mode))
	b = binary.AppendUvarint(b, uint64(l.Rank))
	b = binary.AppendUvarint(b, uint64(len(l.Covered)))
	prev := uint64(0)
	for _, c := range l.Covered {
		// Delta-encode the sorted branch set.
		b = binary.AppendUvarint(b, uint64(c)-prev)
		prev = uint64(c)
	}
	b = binary.AppendUvarint(b, uint64(len(l.Funcs)))
	for _, f := range l.Funcs {
		b = appendString(b, f)
	}
	b = binary.AppendVarint(b, l.RawCount)
	b = appendPath(b, l.Path)
	b = binary.AppendUvarint(b, uint64(len(l.Obs)))
	for _, o := range l.Obs {
		b = binary.AppendUvarint(b, uint64(o.V))
		b = appendString(b, o.Name)
		b = binary.AppendVarint(b, o.Val)
		b = append(b, byte(o.Kind))
		if o.HasCap {
			b = append(b, 1)
		} else {
			b = append(b, 0)
		}
		b = binary.AppendVarint(b, o.Cap)
		b = binary.AppendVarint(b, int64(o.CommIdx))
		b = binary.AppendVarint(b, o.CommSize)
	}
	b = binary.AppendUvarint(b, uint64(len(l.Mapping)))
	for _, row := range l.Mapping {
		b = binary.AppendUvarint(b, uint64(len(row)))
		for _, g := range row {
			b = binary.AppendVarint(b, int64(g))
		}
	}
	b = binary.AppendUvarint(b, uint64(len(l.Trace)))
	for _, e := range l.Trace {
		b = binary.AppendUvarint(b, uint64(e))
	}
	// The match-choice section is appended only when non-empty, so logs from
	// schedule-off runs stay byte-identical to the pre-schedule format (and
	// old decoders' exact-consumption property carries over: Decode reads
	// the section iff bytes remain).
	if len(l.Matches) > 0 {
		b = binary.AppendUvarint(b, uint64(len(l.Matches)))
		for _, m := range l.Matches {
			b = binary.AppendUvarint(b, uint64(m.Seq))
			b = binary.AppendVarint(b, int64(m.Comm))
			b = binary.AppendVarint(b, int64(m.Tag))
			b = binary.AppendUvarint(b, uint64(len(m.Srcs)))
			for _, s := range m.Srcs {
				b = binary.AppendVarint(b, int64(s))
			}
			b = binary.AppendUvarint(b, uint64(m.Choice))
		}
	}
	return b
}

// EncodedSize returns len(l.Encode()) without building the buffer. The
// framework reports every rank's log size every iteration (the Table IV
// statistic) but only ever decodes the focus log, so sizing without
// serializing removes a per-rank allocation proportional to the trace length
// from the iteration loop. Pinned equal to len(Encode()) by tests.
func (l *Log) EncodedSize() int {
	n := 1 // mode byte
	n += uvarintLen(uint64(l.Rank))
	n += uvarintLen(uint64(len(l.Covered)))
	prev := uint64(0)
	for _, c := range l.Covered {
		n += uvarintLen(uint64(c) - prev)
		prev = uint64(c)
	}
	n += uvarintLen(uint64(len(l.Funcs)))
	for _, f := range l.Funcs {
		n += uvarintLen(uint64(len(f))) + len(f)
	}
	n += varintLen(l.RawCount)
	n += uvarintLen(uint64(len(l.Path)))
	for _, e := range l.Path {
		n += varintLen(int64(e.Site)) + 1 + predSize(e.Pred)
	}
	n += uvarintLen(uint64(len(l.Obs)))
	for _, o := range l.Obs {
		n += uvarintLen(uint64(o.V))
		n += uvarintLen(uint64(len(o.Name))) + len(o.Name)
		n += varintLen(o.Val)
		n += 2 // kind, hasCap
		n += varintLen(o.Cap)
		n += varintLen(int64(o.CommIdx))
		n += varintLen(o.CommSize)
	}
	n += uvarintLen(uint64(len(l.Mapping)))
	for _, row := range l.Mapping {
		n += uvarintLen(uint64(len(row)))
		for _, g := range row {
			n += varintLen(int64(g))
		}
	}
	n += uvarintLen(uint64(len(l.Trace)))
	for _, e := range l.Trace {
		n += uvarintLen(uint64(e))
	}
	if len(l.Matches) > 0 {
		n += uvarintLen(uint64(len(l.Matches)))
		for _, m := range l.Matches {
			n += uvarintLen(uint64(m.Seq))
			n += varintLen(int64(m.Comm))
			n += varintLen(int64(m.Tag))
			n += uvarintLen(uint64(len(m.Srcs)))
			for _, s := range m.Srcs {
				n += varintLen(int64(s))
			}
			n += uvarintLen(uint64(m.Choice))
		}
	}
	return n
}

// uvarintLen is the byte length of binary.AppendUvarint(nil, v).
func uvarintLen(v uint64) int {
	n := 1
	for v >= 0x80 {
		v >>= 7
		n++
	}
	return n
}

// varintLen is the byte length of binary.AppendVarint(nil, v) (zig-zag).
func varintLen(v int64) int {
	uv := uint64(v) << 1
	if v < 0 {
		uv = ^uv
	}
	return uvarintLen(uv)
}

func predSize(p expr.Pred) int { return 1 + exprSize(p.E) }

func exprSize(e *expr.Expr) int {
	switch e.Op {
	case expr.OpConst:
		return 1 + varintLen(e.K)
	case expr.OpVar:
		return 1 + uvarintLen(uint64(e.V))
	case expr.OpNeg:
		return 1 + exprSize(e.L)
	default:
		return 1 + exprSize(e.L) + exprSize(e.R)
	}
}

// Decode parses a log written by Encode.
func Decode(b []byte) (*Log, error) {
	d := &decoder{b: b}
	l := &Log{}
	l.Mode = Mode(d.byte())
	l.Rank = int(d.uvarint())
	n := d.count()
	prev := uint64(0)
	for i := uint64(0); i < n; i++ {
		prev += d.uvarint()
		l.Covered = append(l.Covered, BranchBit(prev))
	}
	n = d.count()
	for i := uint64(0); i < n; i++ {
		l.Funcs = append(l.Funcs, d.str())
	}
	l.RawCount = d.varint()
	l.Path = d.path()
	n = d.count()
	for i := uint64(0); i < n; i++ {
		var o VarObs
		o.V = expr.Var(d.uvarint())
		o.Name = d.str()
		o.Val = d.varint()
		o.Kind = VarKind(d.byte())
		o.HasCap = d.byte() == 1
		o.Cap = d.varint()
		o.CommIdx = int32(d.varint())
		o.CommSize = d.varint()
		l.Obs = append(l.Obs, o)
	}
	n = d.count()
	for i := uint64(0); i < n; i++ {
		m := d.count()
		row := make([]int32, m)
		for j := range row {
			row[j] = int32(d.varint())
		}
		l.Mapping = append(l.Mapping, row)
	}
	n = d.count()
	for i := uint64(0); i < n; i++ {
		l.Trace = append(l.Trace, BranchBit(d.uvarint()))
	}
	if len(d.b) > 0 { // optional trailing match-choice section
		n = d.count()
		for i := uint64(0); i < n; i++ {
			var m MatchRec
			m.Seq = int32(d.uvarint())
			m.Comm = int32(d.varint())
			m.Tag = int32(d.varint())
			k := d.count()
			for j := uint64(0); j < k; j++ {
				m.Srcs = append(m.Srcs, int32(d.varint()))
			}
			m.Choice = int32(d.uvarint())
			l.Matches = append(l.Matches, m)
		}
	}
	if d.err != nil {
		return nil, d.err
	}
	return l, nil
}

func appendString(b []byte, s string) []byte {
	b = binary.AppendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

// appendPath writes a constraint path (count + entries) in the log wire
// format.
func appendPath(b []byte, path []PathEntry) []byte {
	b = binary.AppendUvarint(b, uint64(len(path)))
	for _, e := range path {
		b = binary.AppendVarint(b, int64(e.Site))
		if e.Outcome {
			b = append(b, 1)
		} else {
			b = append(b, 0)
		}
		b = appendPred(b, e.Pred)
	}
	return b
}

// path reads what appendPath wrote.
func (d *decoder) path() []PathEntry {
	n := d.count()
	var path []PathEntry
	for i := uint64(0); i < n; i++ {
		var e PathEntry
		e.Site = CondID(d.varint())
		e.Outcome = d.byte() == 1
		e.Pred = d.pred()
		path = append(path, e)
	}
	return path
}

// EncodePath serializes one constraint path standalone, in the same wire
// format Log.Encode uses for its path section. Search-strategy persistence
// (core.PersistentStrategy) uses it to carry DFS stacks — paths with their
// predicate trees — inside a campaign snapshot.
func EncodePath(path []PathEntry) []byte {
	return appendPath(nil, path)
}

// DecodePath parses a path written by EncodePath.
func DecodePath(b []byte) ([]PathEntry, error) {
	d := &decoder{b: b}
	path := d.path()
	if d.err != nil {
		return nil, d.err
	}
	if len(d.b) != 0 {
		return nil, fmt.Errorf("conc: %d trailing bytes after path", len(d.b))
	}
	return path, nil
}

func appendPred(b []byte, p expr.Pred) []byte {
	b = append(b, byte(p.Rel))
	return appendExpr(b, p.E)
}

// appendExpr writes e in preorder.
func appendExpr(b []byte, e *expr.Expr) []byte {
	b = append(b, byte(e.Op))
	switch e.Op {
	case expr.OpConst:
		return binary.AppendVarint(b, e.K)
	case expr.OpVar:
		return binary.AppendUvarint(b, uint64(e.V))
	case expr.OpNeg:
		return appendExpr(b, e.L)
	default:
		b = appendExpr(b, e.L)
		return appendExpr(b, e.R)
	}
}

type decoder struct {
	b   []byte
	err error
}

func (d *decoder) fail() {
	if d.err == nil {
		d.err = errTruncated
	}
}

func (d *decoder) byte() byte {
	if d.err != nil || len(d.b) == 0 {
		d.fail()
		return 0
	}
	v := d.b[0]
	d.b = d.b[1:]
	return v
}

func (d *decoder) uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.b)
	if n <= 0 {
		d.fail()
		return 0
	}
	d.b = d.b[n:]
	return v
}

// count reads a collection length and bounds it by the remaining bytes
// (every element costs at least one byte), so corrupt input cannot force
// huge allocations.
func (d *decoder) count() uint64 {
	n := d.uvarint()
	if d.err == nil && n > uint64(len(d.b)) {
		d.fail()
		return 0
	}
	return n
}

func (d *decoder) varint() int64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.b)
	if n <= 0 {
		d.fail()
		return 0
	}
	d.b = d.b[n:]
	return v
}

func (d *decoder) str() string {
	n := d.count()
	if d.err != nil || uint64(len(d.b)) < n {
		d.fail()
		return ""
	}
	s := string(d.b[:n])
	d.b = d.b[n:]
	return s
}

func (d *decoder) pred() expr.Pred {
	rel := expr.Rel(d.byte())
	e := d.expr(0)
	return expr.Pred{E: e, Rel: rel}
}

const maxExprDepth = 10000

func (d *decoder) expr(depth int) *expr.Expr {
	if d.err != nil || depth > maxExprDepth {
		d.fail()
		return expr.Const(0)
	}
	op := expr.Op(d.byte())
	switch op {
	case expr.OpConst:
		return expr.Const(d.varint())
	case expr.OpVar:
		return expr.VarRef(expr.Var(d.uvarint()))
	case expr.OpNeg:
		return &expr.Expr{Op: expr.OpNeg, L: d.expr(depth + 1)}
	case expr.OpAdd, expr.OpSub, expr.OpMul, expr.OpDiv, expr.OpMod:
		l := d.expr(depth + 1)
		r := d.expr(depth + 1)
		return &expr.Expr{Op: op, L: l, R: r}
	default:
		if d.err == nil {
			d.err = fmt.Errorf("conc: bad expr op %d", op)
		}
		return expr.Const(0)
	}
}
