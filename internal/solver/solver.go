// Package solver solves conjunctions of integer constraints over bounded
// domains. It replaces the Yices SMT solver that COMPI/CREST use.
//
// The concolic runtime only produces constraints that are linear except where
// the target program used division or remainder (CREST concretizes most such
// operations, and so does our runtime, but divisions by constants are kept
// symbolic because the paper's own Figure 1 example negates "x/2 + y <= 200").
// The solver therefore combines:
//
//   - interval (bounds) propagation for linear constraints,
//   - backtracking search with previous-value preference, and
//   - candidate enumeration for the residual nonlinear constraints.
//
// It also reproduces the *incremental solving property* of §III-C: only the
// constraints transitively sharing variables with the negated (last)
// constraint are re-solved; every other variable keeps its previous value.
// Callers can therefore distinguish "most up-to-date" values from stale ones,
// which is exactly what COMPI's conflict resolution relies on.
package solver

import (
	"math"
	"math/rand"
	"sort"

	"repro/internal/expr"
)

// Options configures a solving attempt.
type Options struct {
	// Lo and Hi bound every variable's domain. The zero value selects
	// [-DefaultBound, DefaultBound].
	Lo, Hi int64
	// MaxNodes bounds the number of search-tree nodes explored before the
	// solver reports "unsatisfiable (budget)". Zero selects DefaultMaxNodes.
	MaxNodes int
	// Seed seeds the random value sampler so campaigns are reproducible.
	Seed int64
}

// Defaults for Options.
const (
	DefaultBound    = int64(1) << 31
	DefaultMaxNodes = 50000
)

func (o Options) normalized() Options {
	if o.Lo == 0 && o.Hi == 0 {
		o.Lo, o.Hi = -DefaultBound, DefaultBound
	}
	if o.MaxNodes == 0 {
		o.MaxNodes = DefaultMaxNodes
	}
	return o
}

// Result is a satisfying assignment. Changed records the variables whose
// value differs from the previous assignment (or that had no previous value);
// per the incremental solving property these are the "most up-to-date" ones.
type Result struct {
	Values  map[expr.Var]int64
	Changed map[expr.Var]bool

	// Proven is meaningful only on an unsatisfiable return (ok=false): true
	// means the conjunction was *refuted* — a constant-false predicate, or
	// bounds propagation emptying a variable's domain — rather than merely
	// exhausting the search budget. Refutation is independent of previous
	// values, seed and budget, which is what makes a proven UNSAT safe to
	// cache across runs and to dedup inside the engine's restart loop.
	Proven bool
}

// Solve finds an assignment satisfying every predicate in preds, preferring
// values from prev. It returns ok=false if the conjunction is unsatisfiable
// or the search budget is exhausted.
func Solve(preds []expr.Pred, prev map[expr.Var]int64, opt Options) (Result, bool) {
	opt = opt.normalized()
	p := newProblem(preds, prev, opt)
	vals, ok, proven := p.solve()
	if !ok {
		return Result{Proven: proven}, false
	}
	return makeResult(vals, prev), true
}

// SolveIncremental solves preds assuming the LAST predicate is the freshly
// negated constraint. Only the subset of predicates transitively connected to
// it through shared variables is re-solved; all other variables keep their
// previous values (which satisfied those constraints in the prior execution).
func SolveIncremental(preds []expr.Pred, prev map[expr.Var]int64, opt Options) (Result, bool) {
	opt = opt.normalized()
	if len(preds) == 0 {
		vals := make(map[expr.Var]int64, len(prev))
		for v, x := range prev {
			vals[v] = x
		}
		return makeResult(vals, prev), true
	}
	sub := incrementalSubset(preds)
	p := newProblem(sub, prev, opt)
	vals, ok, proven := p.solve()
	if !ok {
		return Result{Proven: proven}, false
	}
	return carryStale(vals, prev), true
}

// incrementalSubset extracts the predicates transitively connected to the
// last (freshly negated) one — the partition SolveIncremental re-solves.
func incrementalSubset(preds []expr.Pred) []expr.Pred {
	dep := dependentSet(preds, len(preds)-1)
	sub := make([]expr.Pred, 0, len(dep))
	for _, i := range dep {
		sub = append(sub, preds[i])
	}
	return sub
}

// carryStale completes a partition solution with the previous values of
// every variable outside the re-solved partition, then derives Changed.
func carryStale(vals, prev map[expr.Var]int64) Result {
	for v, x := range prev {
		if _, done := vals[v]; !done {
			vals[v] = x
		}
	}
	return makeResult(vals, prev)
}

func makeResult(vals, prev map[expr.Var]int64) Result {
	changed := map[expr.Var]bool{}
	for v, x := range vals {
		if old, ok := prev[v]; !ok || old != x {
			changed[v] = true
		}
	}
	return Result{Values: vals, Changed: changed}
}

// dependentSet returns the indices of predicates transitively sharing
// variables with preds[seed], in their original order.
func dependentSet(preds []expr.Pred, seed int) []int {
	varsOf := make([]map[expr.Var]struct{}, len(preds))
	byVar := map[expr.Var][]int{}
	for i, p := range preds {
		s := map[expr.Var]struct{}{}
		p.Vars(s)
		varsOf[i] = s
		for v := range s {
			byVar[v] = append(byVar[v], i)
		}
	}
	inSet := make([]bool, len(preds))
	queue := []int{seed}
	inSet[seed] = true
	for len(queue) > 0 {
		i := queue[0]
		queue = queue[1:]
		for v := range varsOf[i] {
			for _, j := range byVar[v] {
				if !inSet[j] {
					inSet[j] = true
					queue = append(queue, j)
				}
			}
		}
	}
	var out []int
	for i, in := range inSet {
		if in {
			out = append(out, i)
		}
	}
	return out
}

// iv is a closed integer interval.
type iv struct{ lo, hi int64 }

func (a iv) empty() bool { return a.lo > a.hi }

func (a iv) clampTo(b iv) iv {
	if b.lo > a.lo {
		a.lo = b.lo
	}
	if b.hi < a.hi {
		a.hi = b.hi
	}
	return a
}

// constraint is a predicate with its cached linear form.
type constraint struct {
	pred  expr.Pred
	lin   expr.Linear
	isLin bool
	vars  []expr.Var
}

type problem struct {
	cons  []constraint
	vars  []expr.Var
	dom   map[expr.Var]iv
	prev  map[expr.Var]int64
	rng   *rand.Rand
	nodes int
	max   int
}

func newProblem(preds []expr.Pred, prev map[expr.Var]int64, opt Options) *problem {
	p := &problem{
		dom:  map[expr.Var]iv{},
		prev: prev,
		rng:  rand.New(rand.NewSource(opt.Seed)),
		max:  opt.MaxNodes,
	}
	seen := map[expr.Var]struct{}{}
	for _, pr := range preds {
		c := constraint{pred: pr}
		c.lin, c.isLin = pr.E.AsLinear()
		vs := map[expr.Var]struct{}{}
		pr.Vars(vs)
		for v := range vs {
			c.vars = append(c.vars, v)
			if _, ok := seen[v]; !ok {
				seen[v] = struct{}{}
				p.vars = append(p.vars, v)
				p.dom[v] = iv{opt.Lo, opt.Hi}
			}
		}
		sort.Slice(c.vars, func(i, j int) bool { return c.vars[i] < c.vars[j] })
		p.cons = append(p.cons, c)
	}
	sort.Slice(p.vars, func(i, j int) bool { return p.vars[i] < p.vars[j] })
	return p
}

// solve runs propagation then backtracking search. provenUnsat is true only
// when the conjunction is *refuted* — a constant-false predicate or root
// bounds propagation emptying a domain — which, unlike a failed search (an
// incomplete enumeration under a node budget), holds for every choice of
// previous values, seed and budget. The solver service's UNSAT cache relies
// on exactly that distinction.
func (p *problem) solve() (vals map[expr.Var]int64, ok, provenUnsat bool) {
	// Trivially reject constant-false predicates.
	for _, c := range p.cons {
		if k, ok := c.pred.E.IsConst(); ok {
			if !c.pred.Rel.Holds(k) {
				return nil, false, true
			}
		}
	}
	dom := copyDom(p.dom)
	if !p.propagate(dom) {
		return nil, false, true
	}
	asg := map[expr.Var]int64{}
	if !p.search(dom, asg) {
		return nil, false, false
	}
	return asg, true, false
}

func copyDom(d map[expr.Var]iv) map[expr.Var]iv {
	out := make(map[expr.Var]iv, len(d))
	for v, x := range d {
		out[v] = x
	}
	return out
}

// satMul multiplies with saturation so interval arithmetic cannot overflow.
func satMul(a, b int64) int64 {
	if a == 0 || b == 0 {
		return 0
	}
	c := a * b
	if a != c/b || (a == -1 && b == math.MinInt64) || (b == -1 && a == math.MinInt64) {
		if (a > 0) == (b > 0) {
			return math.MaxInt64 / 4
		}
		return math.MinInt64 / 4
	}
	// Keep headroom for sums.
	if c > math.MaxInt64/4 {
		return math.MaxInt64 / 4
	}
	if c < math.MinInt64/4 {
		return math.MinInt64 / 4
	}
	return c
}

func satAdd(a, b int64) int64 {
	c := a + b
	if a > 0 && b > 0 && c < 0 {
		return math.MaxInt64 / 2
	}
	if a < 0 && b < 0 && c >= 0 {
		return math.MinInt64 / 2
	}
	return c
}

// termBounds returns the min and max of c·x over x in d.
func termBounds(c int64, d iv) (int64, int64) {
	a, b := satMul(c, d.lo), satMul(c, d.hi)
	if a > b {
		a, b = b, a
	}
	return a, b
}

// propagate narrows dom to bounds consistency over the linear constraints.
// It returns false when some domain becomes empty (conjunction unsat).
func (p *problem) propagate(dom map[expr.Var]iv) bool {
	const maxRounds = 64
	for round := 0; round < maxRounds; round++ {
		changed := false
		for _, c := range p.cons {
			if !c.isLin {
				continue
			}
			ch, ok := p.tighten(c, dom)
			if !ok {
				return false
			}
			changed = changed || ch
		}
		if !changed {
			return true
		}
	}
	return true
}

// tighten applies bounds propagation for one linear constraint. A predicate
// "K + Σ c_i·x_i REL 0" is decomposed into at most two inequalities
// "Σ c_i·x_i ≤ B" and/or "Σ c_i·x_i ≥ B'".
func (p *problem) tighten(c constraint, dom map[expr.Var]iv) (changed, ok bool) {
	k := c.lin.K
	type bound struct {
		b     int64
		upper bool // Σ ≤ b when true, Σ ≥ b when false
	}
	var bounds []bound
	switch c.pred.Rel {
	case expr.LE:
		bounds = []bound{{-k, true}}
	case expr.LT:
		bounds = []bound{{-k - 1, true}}
	case expr.GE:
		bounds = []bound{{-k, false}}
	case expr.GT:
		bounds = []bound{{-k + 1, false}}
	case expr.EQ:
		bounds = []bound{{-k, true}, {-k, false}}
	case expr.NE:
		// Only a point domain can be pruned; handled in search.
		return false, true
	}
	for _, bd := range bounds {
		ch, alive := p.tightenOne(c, dom, bd.b, bd.upper)
		if !alive {
			return false, false
		}
		changed = changed || ch
	}
	return changed, true
}

func (p *problem) tightenOne(c constraint, dom map[expr.Var]iv, b int64, upper bool) (changed, ok bool) {
	// For upper (Σ ≤ b): x_j ≤ (b - minOther)/c_j when c_j>0, ≥ ceil when c_j<0.
	// For lower (Σ ≥ b): symmetric with maxOther.
	for _, v := range c.vars {
		cj := c.lin.Terms[v]
		if cj == 0 {
			continue
		}
		rest := int64(0)
		for _, u := range c.vars {
			if u == v {
				continue
			}
			cu := c.lin.Terms[u]
			if cu == 0 {
				continue
			}
			mn, mx := termBounds(cu, dom[u])
			if upper {
				rest = satAdd(rest, mn)
			} else {
				rest = satAdd(rest, mx)
			}
		}
		d := dom[v]
		slack := satAdd(b, -rest)
		if upper {
			if cj > 0 {
				hi := floorDiv(slack, cj)
				if hi < d.hi {
					d.hi = hi
					changed = true
				}
			} else {
				lo := ceilDiv(slack, cj)
				if lo > d.lo {
					d.lo = lo
					changed = true
				}
			}
		} else {
			if cj > 0 {
				lo := ceilDiv(slack, cj)
				if lo > d.lo {
					d.lo = lo
					changed = true
				}
			} else {
				hi := floorDiv(slack, cj)
				if hi < d.hi {
					d.hi = hi
					changed = true
				}
			}
		}
		if d.empty() {
			return changed, false
		}
		dom[v] = d
	}
	return changed, true
}

// floorDiv and ceilDiv implement mathematical floor/ceil division for any
// sign combination (Go's / truncates toward zero).
func floorDiv(a, b int64) int64 {
	q := a / b
	if (a%b != 0) && ((a < 0) != (b < 0)) {
		q--
	}
	return q
}

func ceilDiv(a, b int64) int64 {
	q := a / b
	if (a%b != 0) && ((a < 0) == (b < 0)) {
		q++
	}
	return q
}

// search assigns variables one at a time (smallest domain first), propagating
// after each assignment, and validates every constraint once its variables
// are fully assigned.
func (p *problem) search(dom map[expr.Var]iv, asg map[expr.Var]int64) bool {
	p.nodes++
	if p.nodes > p.max {
		return false
	}
	v, ok := p.pickVar(dom, asg)
	if !ok {
		return p.checkAll(asg)
	}
	for _, cand := range p.candidates(v, dom, asg) {
		asg[v] = cand
		nd := copyDom(dom)
		nd[v] = iv{cand, cand}
		if p.propagate(nd) && p.checkReady(asg, v) && p.search(nd, asg) {
			return true
		}
		delete(asg, v)
		if p.nodes > p.max {
			return false
		}
	}
	return false
}

// pickVar selects the unassigned variable with the smallest domain.
func (p *problem) pickVar(dom map[expr.Var]iv, asg map[expr.Var]int64) (expr.Var, bool) {
	var best expr.Var
	bestSize := int64(math.MaxInt64)
	found := false
	for _, v := range p.vars {
		if _, done := asg[v]; done {
			continue
		}
		d := dom[v]
		size := d.hi - d.lo
		if size < 0 {
			size = 0
		}
		if !found || size < bestSize {
			best, bestSize, found = v, size, true
		}
	}
	return best, found
}

// checkReady validates constraints that became fully assigned with v.
func (p *problem) checkReady(asg map[expr.Var]int64, v expr.Var) bool {
	env := func(u expr.Var) int64 { return asg[u] }
	for _, c := range p.cons {
		relevant := false
		ready := true
		for _, u := range c.vars {
			if u == v {
				relevant = true
			}
			if _, done := asg[u]; !done {
				ready = false
				break
			}
		}
		if !relevant || !ready {
			continue
		}
		hold, ok := c.pred.Eval(env)
		if !ok || !hold {
			return false
		}
	}
	return true
}

// checkAll re-validates every constraint on a complete assignment.
func (p *problem) checkAll(asg map[expr.Var]int64) bool {
	env := func(u expr.Var) int64 { return asg[u] }
	for _, c := range p.cons {
		hold, ok := c.pred.Eval(env)
		if !ok || !hold {
			return false
		}
	}
	return true
}

// candidates produces the value order for v: previous value first (stability
// is what makes incremental solving meaningful), then structurally promising
// values, then a bounded scan that covers residue classes for the nonlinear
// (division/remainder) constraints, then random probes.
func (p *problem) candidates(v expr.Var, dom map[expr.Var]iv, asg map[expr.Var]int64) []int64 {
	d := dom[v]
	var forbidden []int64 // single-variable != constraints
	for _, c := range p.cons {
		if c.pred.Rel == expr.NE && c.isLin && len(c.vars) == 1 && c.vars[0] == v {
			cj := c.lin.Terms[v]
			if cj != 0 && (-c.lin.K)%cj == 0 {
				forbidden = append(forbidden, -c.lin.K/cj)
			}
		}
	}
	seen := map[int64]struct{}{}
	var out []int64
	add := func(x int64) {
		if x < d.lo || x > d.hi {
			return
		}
		for _, f := range forbidden {
			if x == f {
				return
			}
		}
		if _, dup := seen[x]; dup {
			return
		}
		seen[x] = struct{}{}
		out = append(out, x)
	}
	if pv, ok := p.prev[v]; ok {
		add(pv)
		add(pv + 1)
		add(pv - 1)
	}
	// Small-magnitude values before the domain extremes: testing inputs are
	// overwhelmingly small, and huge boundary values tend to trip unrelated
	// guards in the program under test.
	add(0)
	add(1)
	add(2)
	add(-1)
	// Values solving linear equalities for v given current bounds of others.
	for _, c := range p.cons {
		if !c.isLin || c.pred.Rel != expr.EQ {
			continue
		}
		cj := c.lin.Terms[v]
		if cj == 0 {
			continue
		}
		rest := c.lin.K
		solvable := true
		for _, u := range c.vars {
			if u == v {
				continue
			}
			cu := c.lin.Terms[u]
			if x, done := asg[u]; done {
				rest = satAdd(rest, satMul(cu, x))
			} else if du := dom[u]; du.lo == du.hi {
				rest = satAdd(rest, satMul(cu, du.lo))
			} else {
				solvable = false
				break
			}
		}
		if solvable && rest%cj == 0 {
			add(-rest / cj)
		}
	}
	// A short consecutive scan from the low end and from zero covers every
	// residue class of small-modulus remainder constraints.
	if p.hasNonlinearOn(v) {
		for i := int64(0); i < 128; i++ {
			add(d.lo + i)
			add(i)
		}
	}
	if d.hi > d.lo {
		add(d.lo + (d.hi-d.lo)/2)
	}
	add(d.lo)
	add(d.hi)
	// Random probes.
	span := d.hi - d.lo
	for i := 0; i < 8 && span > 0; i++ {
		add(d.lo + p.rng.Int63n(span+1))
	}
	return out
}

func (p *problem) hasNonlinearOn(v expr.Var) bool {
	for _, c := range p.cons {
		if c.isLin {
			continue
		}
		for _, u := range c.vars {
			if u == v {
				return true
			}
		}
	}
	return false
}
