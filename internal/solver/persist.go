package solver

import (
	"bytes"
	"sort"

	"repro/internal/expr"
)

// The UNSAT cache is the only part of a Service worth persisting: its
// entries are *proven* refutations keyed on canonical forms, so they are
// independent of previous values, seed and search budget — serving one in a
// later run is indistinguishable from solving live. The SAT memo, by
// contrast, is keyed on the exact solving input including the seed, so it
// only ever collides within one campaign and is left to warm up naturally.

// UnsatEntry is one persisted proven refutation: the canonical key of the
// refuted conjunction and the variable-domain bounds it was refuted under
// (bounds propagation depends on the domain, so the bounds are part of the
// identity).
type UnsatEntry struct {
	Key expr.Key `json:"key"`
	Lo  int64    `json:"lo"`
	Hi  int64    `json:"hi"`
}

// ExportUnsat returns the UNSAT cache's entries sorted by (Key, Lo, Hi), so
// repeated exports of the same cache serialize identically.
func (s *Service) ExportUnsat() []UnsatEntry {
	s.mu.Lock()
	keys := s.unsat.keys()
	s.mu.Unlock()
	out := make([]UnsatEntry, 0, len(keys))
	for _, k := range keys {
		out = append(out, UnsatEntry{Key: k.canon, Lo: k.lo, Hi: k.hi})
	}
	SortUnsatEntries(out)
	return out
}

// ImportUnsat admits previously exported refutations into the UNSAT cache
// and returns how many were admitted (entries beyond the cache bound evict
// older ones, like live inserts). The caller is responsible for only feeding
// entries produced under the same expr.CanonVersion — the campaign store
// verifies that on load.
func (s *Service) ImportUnsat(entries []UnsatEntry) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for _, e := range entries {
		s.stats.Evicted += s.unsat.add(unsatKey{canon: e.Key, lo: e.Lo, hi: e.Hi}, struct{}{})
		n++
	}
	return n
}

// UnsatLen reports the current UNSAT cache size.
func (s *Service) UnsatLen() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.unsat.len()
}

// SortUnsatEntries orders entries by (Key, Lo, Hi) in place — the canonical
// order ExportUnsat emits and the store's checksum assumes.
func SortUnsatEntries(entries []UnsatEntry) {
	sort.Slice(entries, func(i, j int) bool {
		a, b := entries[i], entries[j]
		if a.Key != b.Key {
			return bytes.Compare(a.Key[:], b.Key[:]) < 0
		}
		if a.Lo != b.Lo {
			return a.Lo < b.Lo
		}
		return a.Hi < b.Hi
	})
}
