package solver

import (
	"math/rand"
	"testing"

	"repro/internal/expr"
)

var x0, x1, x2, y0, z0 = expr.Var(0), expr.Var(1), expr.Var(2), expr.Var(3), expr.Var(4)

func v(id expr.Var) *expr.Expr { return expr.VarRef(id) }
func k(n int64) *expr.Expr     { return expr.Const(n) }
func opts(seed int64) Options  { return Options{Seed: seed} }
func env(m map[expr.Var]int64) expr.Env {
	return func(u expr.Var) int64 { return m[u] }
}

func checkSat(t *testing.T, preds []expr.Pred, vals map[expr.Var]int64) {
	t.Helper()
	for _, p := range preds {
		hold, ok := p.Eval(env(vals))
		if !ok || !hold {
			t.Fatalf("assignment %v violates %s", vals, p)
		}
	}
}

func TestSolveSimpleEquality(t *testing.T) {
	// Negating x != 100 yields x == 100.
	preds := []expr.Pred{expr.Compare(v(x0), k(100), expr.EQ)}
	res, ok := Solve(preds, map[expr.Var]int64{x0: 10}, opts(1))
	if !ok {
		t.Fatal("unsat")
	}
	if res.Values[x0] != 100 {
		t.Fatalf("x0 = %d, want 100", res.Values[x0])
	}
	if !res.Changed[x0] {
		t.Fatal("x0 should be marked changed")
	}
}

func TestSolvePaperFigure1(t *testing.T) {
	// {x == 100, x/2 + y <= 200} with previous inputs {x:10, y:50}.
	// The expected outcome from the paper is {x:100, y:50}: y keeps its
	// previous value because it still satisfies the second constraint.
	preds := []expr.Pred{
		expr.Compare(expr.Add(expr.Div(v(x0), k(2)), v(y0)), k(200), expr.LE),
		expr.Compare(v(x0), k(100), expr.EQ),
	}
	res, ok := SolveIncremental(preds, map[expr.Var]int64{x0: 10, y0: 50}, opts(1))
	if !ok {
		t.Fatal("unsat")
	}
	checkSat(t, preds, res.Values)
	if res.Values[x0] != 100 {
		t.Fatalf("x0 = %d, want 100", res.Values[x0])
	}
	if res.Values[y0] != 50 {
		t.Fatalf("y0 = %d, want previous value 50", res.Values[y0])
	}
	if res.Changed[y0] {
		t.Fatal("y0 kept its value and must not be marked changed")
	}
}

func TestSolveUnsat(t *testing.T) {
	preds := []expr.Pred{
		expr.Compare(v(x0), k(0), expr.LT),
		expr.Compare(v(x0), k(0), expr.GT),
	}
	if _, ok := Solve(preds, nil, opts(1)); ok {
		t.Fatal("x<0 && x>0 must be unsat")
	}
}

func TestSolveConstantFalse(t *testing.T) {
	preds := []expr.Pred{expr.Compare(k(1), k(2), expr.EQ)}
	if _, ok := Solve(preds, nil, opts(1)); ok {
		t.Fatal("1 == 2 must be unsat")
	}
}

func TestSolveMPISemanticsPattern(t *testing.T) {
	// The §III-B constraint family: x0 == x1 (rw equal), x0 < z0 (rank < size),
	// x0 >= 0, z0 >= 1, z0 <= 16 (nprocs cap), plus the negated branch x0 == 3.
	preds := []expr.Pred{
		expr.Compare(expr.Sub(v(x0), v(x1)), k(0), expr.EQ),
		expr.Compare(expr.Sub(v(x0), v(z0)), k(0), expr.LT),
		expr.Compare(v(x0), k(0), expr.GE),
		expr.Compare(v(z0), k(1), expr.GE),
		expr.Compare(v(z0), k(16), expr.LE),
		expr.Compare(v(x0), k(3), expr.EQ),
	}
	prev := map[expr.Var]int64{x0: 0, x1: 0, z0: 8}
	res, ok := SolveIncremental(preds, prev, opts(1))
	if !ok {
		t.Fatal("unsat")
	}
	checkSat(t, preds, res.Values)
	if res.Values[x0] != 3 || res.Values[x1] != 3 {
		t.Fatalf("ranks must both become 3: %v", res.Values)
	}
	if res.Values[z0] != 8 {
		t.Fatalf("size should keep previous value 8, got %d", res.Values[z0])
	}
}

func TestIncrementalKeepsUnrelatedPartition(t *testing.T) {
	// Two disjoint groups: {x0}, {y0}. Negated constraint touches x0 only, so
	// y0 must keep its previous value even though re-solving could move it.
	preds := []expr.Pred{
		expr.Compare(v(y0), k(1000), expr.LE),
		expr.Compare(v(x0), k(42), expr.EQ),
	}
	prev := map[expr.Var]int64{x0: 7, y0: 999}
	res, ok := SolveIncremental(preds, prev, opts(1))
	if !ok {
		t.Fatal("unsat")
	}
	if res.Values[y0] != 999 {
		t.Fatalf("y0 = %d, want stale 999", res.Values[y0])
	}
	if res.Values[x0] != 42 {
		t.Fatalf("x0 = %d, want 42", res.Values[x0])
	}
	if res.Changed[y0] || !res.Changed[x0] {
		t.Fatalf("changed set wrong: %v", res.Changed)
	}
}

func TestSolveChainedEqualities(t *testing.T) {
	// x0 == x1, x1 == x2, x2 == 5.
	preds := []expr.Pred{
		expr.Compare(expr.Sub(v(x0), v(x1)), k(0), expr.EQ),
		expr.Compare(expr.Sub(v(x1), v(x2)), k(0), expr.EQ),
		expr.Compare(v(x2), k(5), expr.EQ),
	}
	res, ok := Solve(preds, nil, opts(1))
	if !ok {
		t.Fatal("unsat")
	}
	checkSat(t, preds, res.Values)
	if res.Values[x0] != 5 || res.Values[x1] != 5 {
		t.Fatalf("equality chain not propagated: %v", res.Values)
	}
}

func TestSolveStrictInequalityNarrowing(t *testing.T) {
	// 3*x0 > 17 and x0 < 7  →  x0 = 6.
	preds := []expr.Pred{
		expr.Compare(expr.Mul(k(3), v(x0)), k(17), expr.GT),
		expr.Compare(v(x0), k(7), expr.LT),
	}
	res, ok := Solve(preds, nil, opts(1))
	if !ok {
		t.Fatal("unsat")
	}
	if res.Values[x0] != 6 {
		t.Fatalf("x0 = %d, want 6", res.Values[x0])
	}
}

func TestSolveNotEqualAvoidsForbiddenValue(t *testing.T) {
	preds := []expr.Pred{
		expr.Compare(v(x0), k(5), expr.GE),
		expr.Compare(v(x0), k(5), expr.LE+0), // pin domain to {5,6}
		expr.Compare(v(x0), k(6), expr.LE),
		expr.Compare(v(x0), k(5), expr.NE),
	}
	// Remove the accidental pin: build properly — x0 in [5,6], x0 != 5.
	preds = []expr.Pred{
		expr.Compare(v(x0), k(5), expr.GE),
		expr.Compare(v(x0), k(6), expr.LE),
		expr.Compare(v(x0), k(5), expr.NE),
	}
	res, ok := Solve(preds, map[expr.Var]int64{x0: 5}, opts(1))
	if !ok {
		t.Fatal("unsat")
	}
	if res.Values[x0] != 6 {
		t.Fatalf("x0 = %d, want 6", res.Values[x0])
	}
}

func TestSolveRemainderConstraint(t *testing.T) {
	// x0 % 7 == 3, x0 in [0, 100].
	preds := []expr.Pred{
		expr.Compare(v(x0), k(0), expr.GE),
		expr.Compare(v(x0), k(100), expr.LE),
		expr.Compare(expr.Mod(v(x0), k(7)), k(3), expr.EQ),
	}
	res, ok := Solve(preds, nil, opts(1))
	if !ok {
		t.Fatal("unsat")
	}
	checkSat(t, preds, res.Values)
	if res.Values[x0]%7 != 3 {
		t.Fatalf("x0 = %d does not have residue 3 mod 7", res.Values[x0])
	}
}

func TestSolveDivisionConstraint(t *testing.T) {
	// x0 / 4 == 25 has solutions 100..103.
	preds := []expr.Pred{
		expr.Compare(v(x0), k(0), expr.GE),
		expr.Compare(v(x0), k(1000), expr.LE),
		expr.Compare(expr.Div(v(x0), k(4)), k(25), expr.EQ),
	}
	res, ok := Solve(preds, nil, opts(1))
	if !ok {
		t.Fatal("unsat")
	}
	got := res.Values[x0]
	if got < 100 || got > 103 {
		t.Fatalf("x0 = %d, want in [100,103]", got)
	}
}

func TestSolveInputCapPattern(t *testing.T) {
	// §IV-A: the cap becomes "x <= cap". With a lower bound from a sanity
	// check, the solution must land inside.
	preds := []expr.Pred{
		expr.Compare(v(x0), k(1), expr.GE),
		expr.Compare(v(x0), k(300), expr.LE),
		expr.Compare(v(x0), k(200), expr.GT), // negated branch "x <= 200"
	}
	res, ok := Solve(preds, map[expr.Var]int64{x0: 100}, opts(1))
	if !ok {
		t.Fatal("unsat")
	}
	if got := res.Values[x0]; got <= 200 || got > 300 {
		t.Fatalf("x0 = %d, want in (200,300]", got)
	}
}

func TestSolveBudgetExhaustion(t *testing.T) {
	// An adversarial nonlinear system with a tiny budget must fail cleanly,
	// not hang.
	preds := []expr.Pred{
		expr.Compare(expr.Mul(v(x0), v(x1)), k(7919*7907), expr.EQ),
		expr.Compare(v(x0), k(2), expr.GE),
		expr.Compare(v(x1), k(2), expr.GE),
	}
	_, ok := Solve(preds, nil, Options{MaxNodes: 5, Seed: 1})
	_ = ok // Either result is acceptable; the test is that it terminates fast.
}

func TestSolveEmpty(t *testing.T) {
	res, ok := SolveIncremental(nil, map[expr.Var]int64{x0: 3}, opts(1))
	if !ok {
		t.Fatal("empty set must be sat")
	}
	if res.Values[x0] != 3 {
		t.Fatal("previous values must carry over")
	}
}

func TestDependentSet(t *testing.T) {
	preds := []expr.Pred{
		expr.Compare(v(x0), k(1), expr.GE),                  // group A
		expr.Compare(v(y0), k(1), expr.GE),                  // group B
		expr.Compare(expr.Sub(v(x0), v(x1)), k(0), expr.EQ), // group A
		expr.Compare(v(x1), k(5), expr.EQ),                  // group A (seed)
	}
	got := dependentSet(preds, 3)
	want := []int{0, 2, 3}
	if len(got) != len(want) {
		t.Fatalf("dependent set %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("dependent set %v, want %v", got, want)
		}
	}
}

func TestFloorCeilDiv(t *testing.T) {
	cases := []struct{ a, b, fl, ce int64 }{
		{7, 2, 3, 4}, {-7, 2, -4, -3}, {7, -2, -4, -3}, {-7, -2, 3, 4},
		{6, 3, 2, 2}, {-6, 3, -2, -2}, {0, 5, 0, 0},
	}
	for _, c := range cases {
		if f := floorDiv(c.a, c.b); f != c.fl {
			t.Errorf("floorDiv(%d,%d) = %d, want %d", c.a, c.b, f, c.fl)
		}
		if e := ceilDiv(c.a, c.b); e != c.ce {
			t.Errorf("ceilDiv(%d,%d) = %d, want %d", c.a, c.b, e, c.ce)
		}
	}
}

// Property: every assignment the solver returns satisfies every input
// predicate, across randomly generated satisfiable-ish linear systems.
func TestSolveSoundnessProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	vars := []expr.Var{x0, x1, x2, y0, z0}
	for trial := 0; trial < 300; trial++ {
		// Random witness — guarantees satisfiability of the generated system.
		witness := map[expr.Var]int64{}
		for _, u := range vars {
			witness[u] = int64(rng.Intn(201) - 100)
		}
		n := 1 + rng.Intn(5)
		var preds []expr.Pred
		for i := 0; i < n; i++ {
			l := expr.NewLinear(0)
			for _, u := range vars {
				if rng.Intn(2) == 0 {
					l.AddTerm(u, int64(rng.Intn(7)-3))
				}
			}
			e := expr.Const(l.K)
			for _, u := range l.SortedVars() {
				e = expr.Add(e, expr.Mul(expr.Const(l.Terms[u]), expr.VarRef(u)))
			}
			val := l.Eval(env(witness))
			// Pick a relation that the witness satisfies.
			var rel expr.Rel
			switch {
			case val == 0:
				rel = []expr.Rel{expr.EQ, expr.LE, expr.GE}[rng.Intn(3)]
			case val < 0:
				rel = []expr.Rel{expr.LT, expr.LE, expr.NE}[rng.Intn(3)]
			default:
				rel = []expr.Rel{expr.GT, expr.GE, expr.NE}[rng.Intn(3)]
			}
			preds = append(preds, expr.Pred{E: e, Rel: rel})
		}
		res, ok := Solve(preds, nil, Options{Seed: int64(trial), Lo: -1000, Hi: 1000})
		if !ok {
			t.Fatalf("trial %d: solver failed on a satisfiable system (witness %v): %v",
				trial, witness, preds)
		}
		checkSat(t, preds, res.Values)
	}
}

// Property: incremental solving never disturbs variables outside the negated
// constraint's dependency partition.
func TestIncrementalStalenessProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 100; trial++ {
		// Group A over x0; group B over y0 with arbitrary satisfied bounds.
		prevY := int64(rng.Intn(100))
		target := int64(rng.Intn(100))
		preds := []expr.Pred{
			expr.Compare(v(y0), k(prevY+1), expr.LT),
			expr.Compare(v(x0), k(target), expr.EQ),
		}
		prev := map[expr.Var]int64{x0: -1, y0: prevY}
		res, ok := SolveIncremental(preds, prev, opts(int64(trial)))
		if !ok {
			t.Fatalf("trial %d unsat", trial)
		}
		if res.Values[y0] != prevY {
			t.Fatalf("trial %d: y0 moved from %d to %d", trial, prevY, res.Values[y0])
		}
		if res.Values[x0] != target {
			t.Fatalf("trial %d: x0 = %d want %d", trial, res.Values[x0], target)
		}
	}
}
