package solver

import (
	"fmt"
	"math/rand"
	"reflect"
	"sync"
	"testing"

	"repro/internal/expr"
)

// cmp builds the predicate "l rel r" the way the runtime does; the v and k
// expression helpers live in solver_test.go.
func cmp(l, r *expr.Expr, rel expr.Rel) expr.Pred { return expr.Compare(l, r, rel) }

// TestServiceMatchesFreeFunctions: hit or miss, the service must return
// exactly what the package-level functions return — this is the contract
// that makes cache sharing invisible to engine trajectories.
func TestServiceMatchesFreeFunctions(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	svc := NewService(ServiceConfig{})
	for trial := 0; trial < 300; trial++ {
		nvars := 1 + r.Intn(4)
		var preds []expr.Pred
		for i := 0; i < 1+r.Intn(5); i++ {
			a := v(expr.Var(r.Intn(nvars)))
			b := k(int64(r.Intn(21) - 10))
			rel := expr.Rel(r.Intn(6))
			if r.Intn(4) == 0 {
				a = expr.Add(a, expr.Mul(k(int64(r.Intn(5)-2)), v(expr.Var(r.Intn(nvars)))))
			}
			preds = append(preds, cmp(a, b, rel))
		}
		prev := map[expr.Var]int64{}
		for i := 0; i < nvars; i++ {
			if r.Intn(2) == 0 {
				prev[expr.Var(i)] = int64(r.Intn(11) - 5)
			}
		}
		opt := Options{Seed: int64(trial), MaxNodes: 2000}

		wantRes, wantOK := SolveIncremental(preds, prev, opt)
		gotRes, gotOK := svc.SolveIncremental(preds, prev, opt)
		if wantOK != gotOK || !reflect.DeepEqual(wantRes, gotRes) {
			t.Fatalf("trial %d: service diverged from free function\nfree: %v %v\nsvc:  %v %v",
				trial, wantRes, wantOK, gotRes, gotOK)
		}
		// Second call exercises the cache path; must still be identical.
		gotRes2, gotOK2 := svc.SolveIncremental(preds, prev, opt)
		if wantOK != gotOK2 || !reflect.DeepEqual(wantRes, gotRes2) {
			t.Fatalf("trial %d: cached result diverged\nfree: %v %v\nsvc:  %v %v",
				trial, wantRes, wantOK, gotRes2, gotOK2)
		}
	}
	st := svc.Stats()
	if st.SATHits+st.UnsatHits == 0 {
		t.Fatalf("repeat calls never hit the cache: %+v", st)
	}
}

// TestServiceSATMemo: an identical repeat call is served from the SAT memo
// and the returned map is a private copy.
func TestServiceSATMemo(t *testing.T) {
	svc := NewService(ServiceConfig{})
	preds := []expr.Pred{cmp(v(0), k(5), expr.GT), cmp(v(0), k(100), expr.LT)}
	opt := Options{Seed: 1}

	r1, ok := svc.SolveIncremental(preds, nil, opt)
	if !ok {
		t.Fatal("expected SAT")
	}
	r2, ok := svc.SolveIncremental(preds, nil, opt)
	if !ok || !reflect.DeepEqual(r1, r2) {
		t.Fatalf("memo hit differs: %v vs %v", r1, r2)
	}
	st := svc.Stats()
	if st.Calls != 2 || st.SATHits != 1 || st.Misses != 1 {
		t.Fatalf("unexpected stats: %+v", st)
	}
	// Mutating the returned map must not poison the cache.
	r2.Values[0] = -999
	r3, ok := svc.SolveIncremental(preds, nil, opt)
	if !ok || !reflect.DeepEqual(r1, r3) {
		t.Fatalf("cache poisoned by caller mutation: %v vs %v", r1, r3)
	}
}

// TestServiceUnsatCanonicalHit: a proven-UNSAT set hits the cache again even
// after variable renaming and predicate reordering — the canonical key is
// doing the colliding.
func TestServiceUnsatCanonicalHit(t *testing.T) {
	svc := NewService(ServiceConfig{})
	// x ≤ 0 ∧ x ≥ 1: bounds propagation empties the domain (proven UNSAT).
	a := []expr.Pred{cmp(v(4), k(0), expr.LE), cmp(v(4), k(1), expr.GE)}
	if _, ok := svc.SolveIncremental(a, nil, Options{Seed: 9}); ok {
		t.Fatal("expected UNSAT")
	}
	// Renamed (x→y), reordered, different seed and prev: still a hit.
	b := []expr.Pred{cmp(v(77), k(1), expr.GE), cmp(v(77), k(0), expr.LE)}
	if _, ok := svc.SolveIncremental(b, map[expr.Var]int64{77: 3}, Options{Seed: 42}); ok {
		t.Fatal("expected UNSAT")
	}
	st := svc.Stats()
	if st.UnsatHits != 1 || st.Misses != 1 {
		t.Fatalf("renamed/reordered unsat set missed the canonical cache: %+v", st)
	}
}

// TestServiceSearchFailureNotCached: an unsatisfiable nonlinear set the
// search gives up on without a refutation proof must NOT enter the UNSAT
// cache — exhaustion depends on the budget and seed, so caching it would be
// unsound.
func TestServiceSearchFailureNotCached(t *testing.T) {
	svc := NewService(ServiceConfig{})
	// x%2 = 0 ∧ x%2 = 1: nonlinear, so no bounds refutation; the search
	// exhausts its candidates without a proof.
	preds := []expr.Pred{
		cmp(expr.Mod(v(0), k(2)), k(0), expr.EQ),
		cmp(expr.Mod(v(0), k(2)), k(1), expr.EQ),
	}
	for i := 0; i < 2; i++ {
		if _, ok := svc.SolveIncremental(preds, nil, Options{Seed: 5, MaxNodes: 500}); ok {
			t.Fatal("expected failure")
		}
	}
	st := svc.Stats()
	if st.UnsatHits != 0 || st.Misses != 2 {
		t.Fatalf("budget-dependent failure was cached as UNSAT: %+v", st)
	}
}

// TestServiceEviction: the SAT memo is bounded and reports evictions.
func TestServiceEviction(t *testing.T) {
	svc := NewService(ServiceConfig{MaxSAT: 2})
	for i := int64(0); i < 4; i++ {
		preds := []expr.Pred{cmp(v(0), k(i*10), expr.GT)}
		if _, ok := svc.SolveIncremental(preds, nil, Options{}); !ok {
			t.Fatalf("set %d: expected SAT", i)
		}
	}
	st := svc.Stats()
	if st.Evicted != 2 {
		t.Fatalf("want 2 evictions from a size-2 memo after 4 inserts, got %+v", st)
	}
	if svc.sat.len() != 2 {
		t.Fatalf("memo exceeded its bound: %d entries", svc.sat.len())
	}
}

// TestServiceDisabledCaches: negative bounds disable caching entirely; the
// service still answers correctly.
func TestServiceDisabledCaches(t *testing.T) {
	svc := NewService(ServiceConfig{MaxSAT: -1, MaxUnsat: -1})
	preds := []expr.Pred{cmp(v(0), k(3), expr.GE)}
	for i := 0; i < 2; i++ {
		res, ok := svc.SolveIncremental(preds, nil, Options{})
		if !ok || res.Values[0] < 3 {
			t.Fatalf("wrong answer with caches disabled: %v %v", res, ok)
		}
	}
	st := svc.Stats()
	if st.SATHits != 0 || st.Misses != 2 {
		t.Fatalf("disabled cache still hit: %+v", st)
	}
}

func TestStatsDeltaAndSummary(t *testing.T) {
	a := Stats{Calls: 10, SATHits: 4, UnsatHits: 1, Misses: 5, Evicted: 2}
	b := Stats{Calls: 25, SATHits: 9, UnsatHits: 4, Misses: 12, Evicted: 2}
	d := b.Delta(a)
	if d.Calls != 15 || d.SATHits != 5 || d.UnsatHits != 3 || d.Misses != 7 || d.Evicted != 0 {
		t.Fatalf("bad delta: %+v", d)
	}
	if got := d.HitRate(); got < 0.52 || got > 0.54 {
		t.Fatalf("bad hit rate: %v", got)
	}
	if s := d.Summary(); s == "" || s == "solver service: no calls" {
		t.Fatalf("bad summary: %q", s)
	}
	if s := (Stats{}).Summary(); s != "solver service: no calls" {
		t.Fatalf("bad empty summary: %q", s)
	}
}

// TestServiceConcurrent hammers one service from many goroutines (run under
// -race in CI) and checks every result against a fresh live solve.
func TestServiceConcurrent(t *testing.T) {
	svc := NewService(ServiceConfig{MaxSAT: 32, MaxUnsat: 32})
	// A small pool of problems so goroutines collide on cache entries.
	type job struct {
		preds []expr.Pred
		opt   Options
	}
	var jobs []job
	for i := int64(0); i < 8; i++ {
		jobs = append(jobs, job{
			preds: []expr.Pred{cmp(v(0), k(i), expr.GT), cmp(expr.Add(v(0), v(1)), k(i*3), expr.LE)},
			opt:   Options{Seed: i},
		})
		jobs = append(jobs, job{ // proven unsat
			preds: []expr.Pred{cmp(v(2), k(i), expr.LT), cmp(v(2), k(i), expr.GT)},
			opt:   Options{Seed: i},
		})
	}
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			r := rand.New(rand.NewSource(int64(g)))
			for i := 0; i < 200; i++ {
				j := jobs[r.Intn(len(jobs))]
				want, wantOK := SolveIncremental(j.preds, nil, j.opt)
				got, gotOK := svc.SolveIncremental(j.preds, nil, j.opt)
				if wantOK != gotOK || !reflect.DeepEqual(want, got) {
					select {
					case errs <- fmt.Errorf("goroutine %d: diverged on %v", g, j.preds):
					default:
					}
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}
