package solver

import (
	"container/list"
	"crypto/sha256"
	"fmt"
	"io"
	"sort"
	"sync"
	"time"

	"repro/internal/binstat"
	"repro/internal/expr"
)

// Service is the shared, concurrency-safe solving front end. It wraps the
// free functions Solve/SolveIncremental with two caches:
//
//   - a SAT-result memo, keyed on the exact solving input (the literal
//     predicate partition, the previous values it can see, and the options).
//     The backtracking search is sensitive to predicate order, variable
//     identity and seed, so only an exact match is guaranteed to reproduce
//     the live result; a hit therefore returns bit-for-bit what the live
//     solver would have returned. Cached assignments are re-verified against
//     the full predicate set before reuse and fall back to a live solve on
//     mismatch.
//
//   - an UNSAT-set cache, keyed on the canonical form of the partition
//     (expr.CanonicalKey): renamed or reordered but equivalent constraint
//     sets collide. Only *refuted* conjunctions enter this cache — a
//     constant-false predicate or bounds propagation emptying a domain —
//     because refutation is independent of previous values, seed and search
//     budget, so serving a cached UNSAT is indistinguishable from solving
//     live. An UNSAT hit lets the engine Reject a proposal without touching
//     the search at all.
//
// Because every hit returns exactly what the live call would have, a Service
// never perturbs an engine's trajectory: campaigns sharing one Service are
// byte-identical to campaigns solving privately, which is what lets the
// scheduler wire a single Service across a whole sharded batch without
// breaking its determinism contract.
type Service struct {
	mu    sync.Mutex
	sat   *lru[[32]byte, map[expr.Var]int64]
	unsat *lru[unsatKey, struct{}]
	stats Stats

	// memo caches canonical keys: solveCached needs the canonical form of
	// every conjunction for the UNSAT cache, and engines re-submit the same
	// incremental subsets throughout a campaign. Self-locking, shared by all
	// callers of the service.
	memo *expr.KeyMemo

	// prof, when non-nil, receives the service's own bins ("solver.canon",
	// "solver.live"). Purely observational.
	prof *binstat.Profiler
}

// unsatKey is a refuted canonical form. Bounds propagation depends on the
// variable domain, so the domain bounds are part of the key.
type unsatKey struct {
	canon  expr.Key
	lo, hi int64
}

// ServiceConfig sizes the Service caches. Zero values select the defaults.
type ServiceConfig struct {
	// MaxSAT and MaxUnsat bound the entry counts of the two caches
	// (least-recently-used eviction). Negative disables that cache.
	MaxSAT   int
	MaxUnsat int

	// Profiler, when non-nil, receives the service's wall-clock bins:
	// "solver.canon" (canonical-key computation per call, memo hits
	// included) and "solver.live" (live backtracking solves). Profiling is
	// purely observational and the profiler may be shared with the engines
	// using this service.
	Profiler *binstat.Profiler
}

// Default cache bounds.
const (
	DefaultMaxSAT   = 4096
	DefaultMaxUnsat = 4096
)

// NewService returns an empty solver service.
func NewService(cfg ServiceConfig) *Service {
	if cfg.MaxSAT == 0 {
		cfg.MaxSAT = DefaultMaxSAT
	}
	if cfg.MaxUnsat == 0 {
		cfg.MaxUnsat = DefaultMaxUnsat
	}
	return &Service{
		sat:   newLRU[[32]byte, map[expr.Var]int64](cfg.MaxSAT),
		unsat: newLRU[unsatKey, struct{}](cfg.MaxUnsat),
		memo:  expr.NewKeyMemo(0),
		prof:  cfg.Profiler,
	}
}

// Stats is the service's counter snapshot. All counters are cumulative;
// subtract two snapshots (Delta) for a window.
type Stats struct {
	Calls     int64 // solve requests through the service
	SATHits   int64 // answered from the SAT memo
	UnsatHits int64 // rejected from the UNSAT cache without solving
	Misses    int64 // live solves
	Evicted   int64 // cache entries evicted (both caches)
	LiveTime  time.Duration
}

// Delta returns the counters accumulated since the earlier snapshot.
func (s Stats) Delta(since Stats) Stats {
	return Stats{
		Calls:     s.Calls - since.Calls,
		SATHits:   s.SATHits - since.SATHits,
		UnsatHits: s.UnsatHits - since.UnsatHits,
		Misses:    s.Misses - since.Misses,
		Evicted:   s.Evicted - since.Evicted,
		LiveTime:  s.LiveTime - since.LiveTime,
	}
}

// HitRate is the fraction of calls served from either cache.
func (s Stats) HitRate() float64 {
	if s.Calls == 0 {
		return 0
	}
	return float64(s.SATHits+s.UnsatHits) / float64(s.Calls)
}

// Summary renders the one-line service report the CLIs print.
func (s Stats) Summary() string {
	if s.Calls == 0 {
		return "solver service: no calls"
	}
	avg := time.Duration(0)
	if s.Misses > 0 {
		avg = s.LiveTime / time.Duration(s.Misses)
	}
	return fmt.Sprintf(
		"solver service: %d calls, %d sat hits, %d unsat hits (%.1f%% cached), %d live solves (avg %s), %d evicted",
		s.Calls, s.SATHits, s.UnsatHits, 100*s.HitRate(), s.Misses,
		avg.Round(time.Microsecond), s.Evicted)
}

// Stats returns a snapshot of the service counters.
func (s *Service) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// SolveIncremental is the cached equivalent of the package-level
// SolveIncremental: identical inputs yield identical results, hit or miss.
func (s *Service) SolveIncremental(preds []expr.Pred, prev map[expr.Var]int64, opt Options) (Result, bool) {
	opt = opt.normalized()
	if len(preds) == 0 {
		return carryStale(map[expr.Var]int64{}, prev), true
	}
	sub := incrementalSubset(preds)
	vals, ok, proven := s.solveCached(sub, prev, opt)
	if !ok {
		return Result{Proven: proven}, false
	}
	return carryStale(vals, prev), true
}

// Solve is the cached equivalent of the package-level Solve.
func (s *Service) Solve(preds []expr.Pred, prev map[expr.Var]int64, opt Options) (Result, bool) {
	opt = opt.normalized()
	vals, ok, proven := s.solveCached(preds, prev, opt)
	if !ok {
		return Result{Proven: proven}, false
	}
	return makeResult(vals, prev), true
}

// solveCached answers one conjunction from the caches or a live solve. The
// returned map is private to the caller. On an unsatisfiable answer the
// third return reports whether the UNSAT was proven (an UNSAT-cache hit is
// by construction a proven refutation).
func (s *Service) solveCached(sub []expr.Pred, prev map[expr.Var]int64, opt Options) (map[expr.Var]int64, bool, bool) {
	csp := s.prof.Time("solver.canon")
	uk := unsatKey{canon: s.memo.Key(sub), lo: opt.Lo, hi: opt.Hi}
	csp.End()
	sk := satFingerprint(sub, prev, opt)

	s.mu.Lock()
	s.stats.Calls++
	if _, hit := s.unsat.get(uk); hit {
		s.stats.UnsatHits++
		s.mu.Unlock()
		return nil, false, true
	}
	if vals, hit := s.sat.get(sk); hit {
		if satisfiesAll(sub, vals) {
			s.stats.SATHits++
			s.mu.Unlock()
			return cloneVals(vals), true, false
		}
		// A verification miss means the memo entry is stale or corrupt;
		// drop it and solve live.
		s.sat.remove(sk)
	}
	s.stats.Misses++
	s.mu.Unlock()

	start := time.Now()
	p := newProblem(sub, prev, opt)
	vals, ok, proven := p.solve()
	elapsed := time.Since(start)
	s.prof.Observe("solver.live", elapsed)

	s.mu.Lock()
	s.stats.LiveTime += elapsed
	switch {
	case ok:
		s.stats.Evicted += s.sat.add(sk, cloneVals(vals))
	case proven:
		s.stats.Evicted += s.unsat.add(uk, struct{}{})
	}
	s.mu.Unlock()
	if !ok {
		return nil, false, proven
	}
	return vals, true, false
}

// satisfiesAll re-verifies a cached assignment against the predicate set.
func satisfiesAll(preds []expr.Pred, vals map[expr.Var]int64) bool {
	env := func(v expr.Var) int64 { return vals[v] }
	for _, p := range preds {
		vs := map[expr.Var]struct{}{}
		p.Vars(vs)
		for v := range vs {
			if _, ok := vals[v]; !ok {
				return false
			}
		}
		hold, ok := p.Eval(env)
		if !ok || !hold {
			return false
		}
	}
	return true
}

func cloneVals(vals map[expr.Var]int64) map[expr.Var]int64 {
	out := make(map[expr.Var]int64, len(vals))
	for v, x := range vals {
		out[v] = x
	}
	return out
}

// satFingerprint keys the SAT memo: the literal predicate serialization (in
// order — the search is order-sensitive), the previous values projected onto
// the partition's variables (the only ones the search can read), and the
// normalized options including the seed.
func satFingerprint(sub []expr.Pred, prev map[expr.Var]int64, opt Options) [32]byte {
	h := sha256.New()
	vs := map[expr.Var]struct{}{}
	for _, p := range sub {
		io.WriteString(h, p.String())
		io.WriteString(h, "\n")
		p.Vars(vs)
	}
	vars := make([]expr.Var, 0, len(vs))
	for v := range vs {
		vars = append(vars, v)
	}
	sort.Slice(vars, func(i, j int) bool { return vars[i] < vars[j] })
	for _, v := range vars {
		if x, ok := prev[v]; ok {
			fmt.Fprintf(h, "p%d=%d\n", v, x)
		}
	}
	fmt.Fprintf(h, "o%d,%d,%d,%d", opt.Lo, opt.Hi, opt.MaxNodes, opt.Seed)
	var out [32]byte
	copy(out[:], h.Sum(nil))
	return out
}

// lru is a minimal mutex-free (caller-locked) LRU map with bounded size.
type lru[K comparable, V any] struct {
	max   int
	ll    *list.List
	items map[K]*list.Element
}

type lruEntry[K comparable, V any] struct {
	key K
	val V
}

func newLRU[K comparable, V any](max int) *lru[K, V] {
	return &lru[K, V]{max: max, ll: list.New(), items: map[K]*list.Element{}}
}

func (c *lru[K, V]) get(k K) (V, bool) {
	if el, ok := c.items[k]; ok {
		c.ll.MoveToFront(el)
		return el.Value.(lruEntry[K, V]).val, true
	}
	var zero V
	return zero, false
}

// add inserts or refreshes an entry and returns the number of evictions.
func (c *lru[K, V]) add(k K, v V) int64 {
	if c.max < 0 {
		return 0
	}
	if el, ok := c.items[k]; ok {
		el.Value = lruEntry[K, V]{k, v}
		c.ll.MoveToFront(el)
		return 0
	}
	c.items[k] = c.ll.PushFront(lruEntry[K, V]{k, v})
	var evicted int64
	for c.ll.Len() > c.max {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.items, oldest.Value.(lruEntry[K, V]).key)
		evicted++
	}
	return evicted
}

func (c *lru[K, V]) remove(k K) {
	if el, ok := c.items[k]; ok {
		c.ll.Remove(el)
		delete(c.items, k)
	}
}

func (c *lru[K, V]) len() int { return len(c.items) }

// keys returns every key currently cached, in no particular order.
func (c *lru[K, V]) keys() []K {
	out := make([]K, 0, len(c.items))
	for k := range c.items {
		out = append(out, k)
	}
	return out
}
