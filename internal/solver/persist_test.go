package solver

import (
	"reflect"
	"testing"

	"repro/internal/expr"
)

// unsatConjunction returns the i-th of a family of proven-UNSAT sets:
// x ≤ i ∧ x ≥ i+1 empties the domain under bounds propagation.
func unsatConjunction(i int64) []expr.Pred {
	return []expr.Pred{cmp(v(0), k(i), expr.LE), cmp(v(0), k(i+1), expr.GE)}
}

func TestExportImportUnsat(t *testing.T) {
	a := NewService(ServiceConfig{})
	for i := int64(0); i < 5; i++ {
		if _, ok := a.SolveIncremental(unsatConjunction(i), nil, Options{Seed: 3}); ok {
			t.Fatalf("conjunction %d unexpectedly SAT", i)
		}
	}
	entries := a.ExportUnsat()
	if len(entries) != 5 {
		t.Fatalf("exported %d entries, want 5", len(entries))
	}
	// Deterministic export order.
	if again := a.ExportUnsat(); !reflect.DeepEqual(entries, again) {
		t.Fatal("two exports of the same cache differ")
	}

	// A fresh service warmed with the export answers every conjunction from
	// the cache, including under renaming (canonical keys traveled).
	b := NewService(ServiceConfig{})
	if n := b.ImportUnsat(entries); n != 5 {
		t.Fatalf("imported %d entries, want 5", n)
	}
	if b.UnsatLen() != 5 {
		t.Fatalf("UnsatLen = %d after import, want 5", b.UnsatLen())
	}
	for i := int64(0); i < 5; i++ {
		renamed := []expr.Pred{cmp(v(9), k(i+1), expr.GE), cmp(v(9), k(i), expr.LE)}
		if _, ok := b.SolveIncremental(renamed, nil, Options{Seed: 99}); ok {
			t.Fatalf("warmed service solved refuted conjunction %d", i)
		}
	}
	st := b.Stats()
	if st.UnsatHits != 5 || st.Misses != 0 {
		t.Fatalf("warmed service did not answer from the cache: %+v", st)
	}
}

func TestImportUnsatRespectsBound(t *testing.T) {
	a := NewService(ServiceConfig{})
	for i := int64(0); i < 8; i++ {
		a.SolveIncremental(unsatConjunction(i), nil, Options{Seed: 1})
	}
	entries := a.ExportUnsat()

	b := NewService(ServiceConfig{MaxUnsat: 3})
	b.ImportUnsat(entries)
	if got := b.UnsatLen(); got != 3 {
		t.Fatalf("bounded cache holds %d entries after import, want 3", got)
	}
	if b.Stats().Evicted == 0 {
		t.Fatal("over-capacity import recorded no evictions")
	}
}
