package solver

import (
	"math"
	"testing"

	"repro/internal/expr"
)

func TestSaturatingArithmetic(t *testing.T) {
	if got := satMul(math.MaxInt64/2, 4); got != math.MaxInt64/4 {
		t.Fatalf("satMul overflow: %d", got)
	}
	if got := satMul(math.MinInt64/2, 4); got != math.MinInt64/4 {
		t.Fatalf("satMul underflow: %d", got)
	}
	if satMul(0, math.MaxInt64) != 0 || satMul(math.MaxInt64, 0) != 0 {
		t.Fatal("satMul zero")
	}
	if got := satMul(3, 4); got != 12 {
		t.Fatalf("satMul plain: %d", got)
	}
	if got := satAdd(math.MaxInt64/4*3, math.MaxInt64/4*3); got != math.MaxInt64/2 {
		t.Fatalf("satAdd overflow: %d", got)
	}
	if got := satAdd(-(math.MaxInt64 / 4 * 3), -(math.MaxInt64 / 4 * 3)); got != math.MinInt64/2 {
		t.Fatalf("satAdd underflow: %d", got)
	}
	if got := satAdd(-5, 3); got != -2 {
		t.Fatalf("satAdd plain: %d", got)
	}
}

func TestSolverPrefersSmallMagnitudeValues(t *testing.T) {
	// With only an upper bound, the solution should be a small value, not
	// the domain floor (huge boundary values trip unrelated guards in
	// programs under test).
	preds := []expr.Pred{expr.Compare(v(x0), k(1), expr.LE)}
	res, ok := Solve(preds, nil, opts(1))
	if !ok {
		t.Fatal("unsat")
	}
	if got := res.Values[x0]; got < -10 || got > 1 {
		t.Fatalf("x0 = %d, want a small value", got)
	}
}

func TestSolveNegativeCoefficients(t *testing.T) {
	// -3*x0 + 7 <= 0  →  x0 >= 3 (ceil of 7/3).
	preds := []expr.Pred{
		{E: expr.Add(expr.Mul(expr.Const(-3), v(x0)), k(7)), Rel: expr.LE},
		expr.Compare(v(x0), k(5), expr.LE),
	}
	res, ok := Solve(preds, nil, opts(1))
	if !ok {
		t.Fatal("unsat")
	}
	if got := res.Values[x0]; got < 3 || got > 5 {
		t.Fatalf("x0 = %d, want in [3,5]", got)
	}
}

func TestSolveMixedSignSystem(t *testing.T) {
	// 2*x0 - 3*x1 == 1 with both in [0, 10].
	preds := []expr.Pred{
		{E: expr.Sub(expr.Sub(expr.Mul(k(2), v(x0)), expr.Mul(k(3), v(x1))), k(1)), Rel: expr.EQ},
		expr.Compare(v(x0), k(0), expr.GE),
		expr.Compare(v(x0), k(10), expr.LE),
		expr.Compare(v(x1), k(0), expr.GE),
		expr.Compare(v(x1), k(10), expr.LE),
	}
	res, ok := Solve(preds, nil, opts(1))
	if !ok {
		t.Fatal("unsat")
	}
	checkSat(t, preds, res.Values)
}

func TestSolveTightBox(t *testing.T) {
	// Exactly one solution: x0 == 4 via two inequalities.
	preds := []expr.Pred{
		expr.Compare(v(x0), k(4), expr.GE),
		expr.Compare(v(x0), k(4), expr.LE),
	}
	res, ok := Solve(preds, map[expr.Var]int64{x0: 100}, opts(1))
	if !ok || res.Values[x0] != 4 {
		t.Fatalf("x0 = %v ok=%v", res.Values[x0], ok)
	}
	if !res.Changed[x0] {
		t.Fatal("forced move not marked changed")
	}
}

func TestIncrementalPrevSatisfiesWholeSet(t *testing.T) {
	// When the previous assignment already satisfies the negated constraint
	// (degenerate but possible after divergence), nothing should move.
	preds := []expr.Pred{
		expr.Compare(v(x0), k(0), expr.GE),
		expr.Compare(v(x0), k(50), expr.LE),
	}
	prev := map[expr.Var]int64{x0: 7}
	res, ok := SolveIncremental(preds, prev, opts(1))
	if !ok || res.Values[x0] != 7 || res.Changed[x0] {
		t.Fatalf("res = %+v ok=%v", res, ok)
	}
}

func TestSolveManyVariablesScales(t *testing.T) {
	// A 40-variable chain x_{i+1} = x_i + 1 anchored at x_0 = 0 must solve
	// well inside the node budget.
	var preds []expr.Pred
	preds = append(preds, expr.Compare(expr.VarRef(0), k(0), expr.EQ))
	for i := 0; i < 40; i++ {
		d := expr.Sub(expr.VarRef(expr.Var(i+1)), expr.VarRef(expr.Var(i)))
		preds = append(preds, expr.Compare(d, k(1), expr.EQ))
	}
	res, ok := Solve(preds, nil, opts(1))
	if !ok {
		t.Fatal("unsat")
	}
	if res.Values[expr.Var(40)] != 40 {
		t.Fatalf("x40 = %d", res.Values[expr.Var(40)])
	}
}
