package fleet

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/sched"
	"repro/internal/target"
)

// WireSpec is a sched.Spec flattened to plain JSON values, the form a lease
// frame dispatches. Everything core.Config can carry as data travels;
// everything it can carry as live objects (strategies, backends, solver
// services, trace/checkpoint callbacks) cannot be named on a wire, so
// SpecToWire refuses such specs up front — the same boundary sched.SetupKey
// draws for the store, for the same reason: a config the coordinator cannot
// fully describe is a trajectory the worker cannot be trusted to reproduce.
type WireSpec struct {
	Label    string        `json:"label,omitempty"`
	Target   string        `json:"target"`
	Seed     int64         `json:"seed,omitempty"`
	Group    string        `json:"group,omitempty"`
	External *WireExternal `json:"external,omitempty"`
	Config   WireConfig    `json:"config"`
}

// WireExternal identifies an out-of-process target binary. The path must
// resolve on the worker's machine.
type WireExternal struct {
	Bin  string   `json:"bin"`
	Args []string `json:"args,omitempty"`
	Env  []string `json:"env,omitempty"`
}

// WireConfig carries core.Config's data fields. Durations travel as explicit
// milliseconds.
type WireConfig struct {
	Params         map[string]int64 `json:"params,omitempty"`
	Inputs         map[string]int64 `json:"inputs,omitempty"`
	Iterations     int              `json:"iterations,omitempty"`
	TimeBudgetMS   int64            `json:"time_budget_ms,omitempty"`
	InitialProcs   int              `json:"initial_procs,omitempty"`
	InitialFocus   int              `json:"initial_focus,omitempty"`
	MaxProcs       int              `json:"max_procs,omitempty"`
	Reduction      bool             `json:"reduction,omitempty"`
	DepthBound     int              `json:"depth_bound,omitempty"`
	DFSPhase       int              `json:"dfs_phase,omitempty"`
	OneWay         bool             `json:"one_way,omitempty"`
	Framework      bool             `json:"framework,omitempty"`
	PureRandom     bool             `json:"pure_random,omitempty"`
	Schedules      bool             `json:"schedules,omitempty"`
	Seed           int64            `json:"seed,omitempty"`
	RunTimeoutMS   int64            `json:"run_timeout_ms,omitempty"`
	MaxTicks       int64            `json:"max_ticks,omitempty"`
	SolverMaxNodes int              `json:"solver_max_nodes,omitempty"`
}

// SpecToWire converts a scheduler spec to its dispatchable wire form. Specs
// carrying live objects are refused with an error naming the field; the
// caller (the coordinator's constructor) surfaces that as a per-shard spec
// error rather than leasing an unrunnable shard.
func SpecToWire(sp sched.Spec) (WireSpec, error) {
	cfg := sp.Config
	for _, live := range []struct {
		field   string
		present bool
	}{
		{"Config.Strategy", cfg.Strategy != nil},
		{"Config.NewStrategy", cfg.NewStrategy != nil},
		{"Config.Backend", cfg.Backend != nil},
		{"Config.Solver", cfg.Solver != nil},
		{"Config.Trace", cfg.Trace != nil},
		{"Config.Checkpoint", cfg.Checkpoint != nil},
		{"Config.ErrorLog", cfg.ErrorLog != nil},
		{"Config.Profiler", cfg.Profiler != nil},
	} {
		if live.present {
			return WireSpec{}, fmt.Errorf("fleet: spec %q carries a live %s and cannot be dispatched", sp.DisplayLabel(), live.field)
		}
	}
	targetName := sp.Target
	if cfg.Program != nil {
		// A literal program pointer dispatches by name: the worker runs the
		// same binary, so the registry resolves the identical program.
		if _, ok := target.Lookup(cfg.Program.Name); !ok {
			return WireSpec{}, fmt.Errorf("fleet: spec %q uses unregistered program %q and cannot be dispatched",
				sp.DisplayLabel(), cfg.Program.Name)
		}
		targetName = cfg.Program.Name
	}
	if targetName == "" && sp.External == nil {
		return WireSpec{}, fmt.Errorf("fleet: spec %q names no target", sp.DisplayLabel())
	}
	w := WireSpec{
		Label:  sp.Label,
		Target: targetName,
		Seed:   sp.Seed,
		Group:  sp.Group,
		Config: WireConfig{
			Params:         cfg.Params,
			Inputs:         cfg.Inputs,
			Iterations:     cfg.Iterations,
			TimeBudgetMS:   cfg.TimeBudget.Milliseconds(),
			InitialProcs:   cfg.InitialProcs,
			InitialFocus:   cfg.InitialFocus,
			MaxProcs:       cfg.MaxProcs,
			Reduction:      cfg.Reduction,
			DepthBound:     cfg.DepthBound,
			DFSPhase:       cfg.DFSPhase,
			OneWay:         cfg.OneWay,
			Framework:      cfg.Framework,
			PureRandom:     cfg.PureRandom,
			Schedules:      cfg.Schedules,
			Seed:           cfg.Seed,
			RunTimeoutMS:   cfg.RunTimeout.Milliseconds(),
			MaxTicks:       cfg.MaxTicks,
			SolverMaxNodes: cfg.SolverMaxNodes,
		},
	}
	if sp.External != nil {
		w.External = &WireExternal{Bin: sp.External.Bin, Args: sp.External.Args, Env: sp.External.Env}
	}
	return w, nil
}

// SpecFromWire reconstructs the scheduler spec a wire spec describes. The
// round trip SpecToWire → SpecFromWire is the identity on every dispatchable
// spec (pinned by test), which is what makes the worker's engine runs
// interchangeable with the coordinator running sched.Run locally.
func SpecFromWire(w WireSpec) sched.Spec {
	sp := sched.Spec{
		Label:  w.Label,
		Target: w.Target,
		Seed:   w.Seed,
		Group:  w.Group,
		Config: core.Config{
			Params:         w.Config.Params,
			Inputs:         w.Config.Inputs,
			Iterations:     w.Config.Iterations,
			TimeBudget:     time.Duration(w.Config.TimeBudgetMS) * time.Millisecond,
			InitialProcs:   w.Config.InitialProcs,
			InitialFocus:   w.Config.InitialFocus,
			MaxProcs:       w.Config.MaxProcs,
			Reduction:      w.Config.Reduction,
			DepthBound:     w.Config.DepthBound,
			DFSPhase:       w.Config.DFSPhase,
			OneWay:         w.Config.OneWay,
			Framework:      w.Config.Framework,
			PureRandom:     w.Config.PureRandom,
			Schedules:      w.Config.Schedules,
			Seed:           w.Config.Seed,
			RunTimeout:     time.Duration(w.Config.RunTimeoutMS) * time.Millisecond,
			MaxTicks:       w.Config.MaxTicks,
			SolverMaxNodes: w.Config.SolverMaxNodes,
		},
	}
	if w.External != nil {
		sp.External = &sched.External{Bin: w.External.Bin, Args: w.External.Args, Env: w.External.Env}
	}
	return sp
}
