package fleet_test

import (
	"bytes"
	"net"
	"os"
	"os/exec"
	"reflect"
	"regexp"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/conc"
	"repro/internal/core"
	"repro/internal/expr"
	"repro/internal/fleet"
	"repro/internal/sched"
	"repro/internal/solver"
	"repro/internal/spec"
	"repro/internal/store"
	"repro/internal/targets/stencil"
	"repro/internal/targets/susy"
)

// fleetSpecs is the test grid: two skeleton seeds, a stencil campaign, and
// an unfixed SUSY campaign whose seeded bug produces error records — so the
// equality checks cover coverage, iteration history, and error dedup alike.
func fleetSpecs(iters int) []sched.Spec {
	mk := func(target string, seed int64, c spec.Campaign) sched.Spec {
		c.Target = target
		c.Seed = seed
		c.Iterations = iters
		c.Reduction = true
		c.Framework = true
		if c.RunTimeout == 0 {
			c.RunTimeout = 10 * time.Second
		}
		return sched.Spec{Campaign: c}
	}
	return []sched.Spec{
		mk("skeleton", 3, spec.Campaign{}),
		mk("skeleton", 4, spec.Campaign{}),
		mk("stencil", 11, spec.Campaign{Params: stencil.FixAll(), DFSPhase: 10, MaxTicks: 3_000_000}),
		mk("susy-hmc", 21, spec.Campaign{Params: susy.UnfixAll(), Inputs: susy.DefaultInputs()}),
	}
}

// fingerprint reduces a report to what the determinism contract covers —
// the same dimensions sched's own tests pin, plus per-campaign iteration
// counts (resumed shards must report whole campaigns, not their tail).
type fingerprint struct {
	campaignCov   [][]conc.BranchBit
	campaignIters [][]core.IterationStat // wall-clock zeroed
	solverCalls   []int
	unsatCalls    []int
	mergedCov     map[string][]conc.BranchBit
	errorKeys     map[string][]string
}

func fingerprintOf(r *sched.Report) fingerprint {
	fp := fingerprint{
		mergedCov: map[string][]conc.BranchBit{},
		errorKeys: map[string][]string{},
	}
	for _, c := range r.Campaigns {
		fp.campaignCov = append(fp.campaignCov, c.Result.Coverage.Branches())
		its := append([]core.IterationStat(nil), c.Result.Iterations...)
		for i := range its {
			its[i].Elapsed, its[i].RunTime = 0, 0
		}
		fp.campaignIters = append(fp.campaignIters, its)
		fp.solverCalls = append(fp.solverCalls, c.Result.SolverCall)
		fp.unsatCalls = append(fp.unsatCalls, c.Result.UnsatCalls)
	}
	for name, cov := range r.Coverage {
		fp.mergedCov[name] = cov.Branches()
	}
	for name, byMsg := range r.Errors {
		var msgs []string
		for msg := range byMsg {
			msgs = append(msgs, msg)
		}
		sort.Strings(msgs)
		fp.errorKeys[name] = msgs
	}
	return fp
}

// deterministicSummary renders the report's deterministic lines: the
// per-target rollups and per-error-key lines WriteSummary prints, excluding
// everything wall-clock. Byte-equality of this rendering is the "merged
// report byte-equal to an uninterrupted single-process run" contract.
func deterministicSummary(r *sched.Report) string {
	var buf bytes.Buffer
	r.WriteSummary(&buf)
	var keep []string
	for _, line := range strings.Split(buf.String(), "\n") {
		if strings.Contains(line, "branches covered") || strings.HasPrefix(line, "  [") {
			keep = append(keep, line)
		}
	}
	return strings.Join(keep, "\n")
}

// startFleet serves a coordinator on a loopback listener.
func startFleet(t *testing.T, specs []sched.Spec, opt fleet.Options) (*fleet.Coordinator, string) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	if testing.Verbose() {
		opt.Logf = t.Logf
	}
	c := fleet.NewCoordinator(specs, opt)
	go c.Serve(ln)
	return c, ln.Addr().String()
}

// workInProcess runs n worker loops in-process and waits for them.
func workInProcess(t *testing.T, addr string, n int) {
	t.Helper()
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if err := fleet.Work(addr, fleet.WorkerOptions{Name: t.Name()}); err != nil {
				t.Errorf("worker %d: %v", i, err)
			}
		}(i)
	}
	wg.Wait()
}

// zooWorker re-execs the test binary as a fleet worker (or fault mode).
func zooWorker(t *testing.T, addr, mode, name string) *exec.Cmd {
	t.Helper()
	cmd := exec.Command(os.Args[0])
	cmd.Env = append(os.Environ(),
		"COMPI_FLEET_FAULT="+mode,
		"COMPI_FLEET_ADDR="+addr,
		"COMPI_FLEET_NAME="+name,
	)
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	return cmd
}

// TestFleetMatchesSched is the fleet determinism contract: a coordinator
// plus two workers produce the same report as a single-process sched.Run
// over the same specs — same per-campaign coverage, same merged rollups,
// same error keys, byte-identical deterministic summary.
func TestFleetMatchesSched(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign test")
	}
	const iters = 30
	ref := sched.Run(fleetSpecs(iters), sched.Options{Workers: 2})
	want := fingerprintOf(ref)

	c, addr := startFleet(t, fleetSpecs(iters), fleet.Options{})
	workInProcess(t, addr, 2)
	rep := c.Wait()
	for _, camp := range rep.Campaigns {
		if camp.Err != nil {
			t.Fatalf("fleet campaign %q: %v", camp.Label, camp.Err)
		}
	}
	if got := fingerprintOf(rep); !reflect.DeepEqual(got, want) {
		t.Fatal("fleet report diverged from single-process sched.Run")
	}
	if got, wantS := deterministicSummary(rep), deterministicSummary(ref); got != wantS {
		t.Fatalf("summaries differ:\n--- fleet ---\n%s\n--- sched ---\n%s", got, wantS)
	}
}

// TestFleetWorkerKilledMidLease is the crash-recovery contract: a re-exec'd
// worker process is SIGKILLed while it holds a lease mid-campaign; the
// coordinator reclaims the shard on connection loss, re-leases it to a
// replacement worker resuming from the last streamed snapshot, and the final
// report is identical — including error records recorded once, not once per
// lease — to the uninterrupted single-process run.
func TestFleetWorkerKilledMidLease(t *testing.T) {
	if testing.Short() {
		t.Skip("cross-process campaign test")
	}
	const iters = 60
	ref := sched.Run(fleetSpecs(iters), sched.Options{Workers: 2})
	want := fingerprintOf(ref)

	c, addr := startFleet(t, fleetSpecs(iters), fleet.Options{
		SnapshotEvery: 2, // checkpoint densely so the kill lands mid-campaign with progress behind it
	})
	victim := zooWorker(t, addr, "worker", "victim")

	// Kill once the victim has streamed progress on some lease: poll the
	// status text for a shard that is leased AND past iteration zero.
	midLease := regexp.MustCompile(`leased\s+iters=[1-9]`)
	deadline := time.Now().Add(30 * time.Second)
	for {
		st := c.StatusText()
		if midLease.MatchString(st) {
			break
		}
		if time.Now().After(deadline) {
			victim.Process.Kill()
			t.Fatalf("victim never made progress; status:\n%s", st)
		}
		time.Sleep(time.Millisecond)
	}
	victim.Process.Kill()
	victim.Wait()

	// A replacement finishes the batch.
	workInProcess(t, addr, 2)
	rep := c.Wait()
	for _, camp := range rep.Campaigns {
		if camp.Err != nil {
			t.Fatalf("campaign %q: %v", camp.Label, camp.Err)
		}
	}
	if got := fingerprintOf(rep); !reflect.DeepEqual(got, want) {
		t.Fatal("report after mid-lease kill diverged from the uninterrupted run")
	}
	if got, wantS := deterministicSummary(rep), deterministicSummary(ref); got != wantS {
		t.Fatalf("summaries differ after kill:\n--- fleet ---\n%s\n--- sched ---\n%s", got, wantS)
	}
	// The victim's death must have reclaimed at least one shard.
	if st := c.StatusText(); !strings.Contains(st, "reclaims=") {
		t.Fatalf("no shard was reclaimed; status:\n%s", st)
	}
}

// TestFleetFaultyWorkersReclaimed: a worker that takes a lease and stalls
// (never renews) loses it to the deadline reaper; one that emits garbage
// loses its connection — and therefore its lease — immediately. Either way
// a healthy worker finishes the batch with the reference result.
func TestFleetFaultyWorkersReclaimed(t *testing.T) {
	if testing.Short() {
		t.Skip("cross-process campaign test")
	}
	const iters = 20
	ref := sched.Run(fleetSpecs(iters), sched.Options{Workers: 2})
	want := fingerprintOf(ref)

	for _, mode := range []string{"stall", "garbage"} {
		t.Run(mode, func(t *testing.T) {
			c, addr := startFleet(t, fleetSpecs(iters), fleet.Options{
				TTL:   500 * time.Millisecond, // stalled leases must expire within the test
				Retry: 50 * time.Millisecond,
			})
			faulty := zooWorker(t, addr, mode, mode)
			defer func() {
				faulty.Process.Kill()
				faulty.Wait()
			}()

			// Wait until the faulty worker actually holds a lease (its name
			// shows in the status) or already lost one (a reclaim happened —
			// no other worker exists yet, so it must have leased first). Only
			// then may the healthy workers start, so the faulty one cannot be
			// starved of shards.
			deadline := time.Now().Add(30 * time.Second)
			for {
				st := c.StatusText()
				if strings.Contains(st, mode) || strings.Contains(st, "reclaims=") {
					break
				}
				if time.Now().After(deadline) {
					t.Fatalf("faulty worker never leased; status:\n%s", st)
				}
				time.Sleep(time.Millisecond)
			}

			workInProcess(t, addr, 2)
			rep := c.Wait()
			for _, camp := range rep.Campaigns {
				if camp.Err != nil {
					t.Fatalf("campaign %q: %v", camp.Label, camp.Err)
				}
			}
			if got := fingerprintOf(rep); !reflect.DeepEqual(got, want) {
				t.Fatalf("report after %s worker diverged from reference", mode)
			}
			if !strings.Contains(c.StatusText(), "reclaims=") {
				t.Fatalf("%s worker's lease was never reclaimed", mode)
			}
		})
	}
}

// TestFleetStoreResumeAndReuse: a store-backed fleet behaves like a
// store-backed sched.Run — a second fleet over the same specs answers every
// shard from the store, and a longer fleet resumes rather than restarts,
// landing on the uninterrupted reference.
func TestFleetStoreResumeAndReuse(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign test")
	}
	const k, n = 10, 25
	want := fingerprintOf(sched.Run(fleetSpecs(n), sched.Options{Workers: 2}))

	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	c1, addr1 := startFleet(t, fleetSpecs(k), fleet.Options{Store: st})
	workInProcess(t, addr1, 2)
	rep1 := c1.Wait()
	if rep1.BatchID == "" {
		t.Fatal("store-backed fleet reported no batch ID")
	}

	// Same specs again: all reused, no engine runs on any worker.
	c2, addr2 := startFleet(t, fleetSpecs(k), fleet.Options{Store: st})
	workInProcess(t, addr2, 1)
	rep2 := c2.Wait()
	for _, camp := range rep2.Campaigns {
		if !camp.Reused {
			t.Fatalf("campaign %q not reused on identical re-run", camp.Label)
		}
	}
	if !reflect.DeepEqual(fingerprintOf(rep2), fingerprintOf(rep1)) {
		t.Fatal("reused fleet report differs from the original")
	}

	// Longer budget: resumed from the stored snapshots, equal to fresh.
	c3, addr3 := startFleet(t, fleetSpecs(n), fleet.Options{Store: st})
	workInProcess(t, addr3, 2)
	rep3 := c3.Wait()
	if got := fingerprintOf(rep3); !reflect.DeepEqual(got, want) {
		t.Fatal("resumed fleet diverged from the uninterrupted reference")
	}

	// The manifests a fleet writes are the same shape sched.Run writes.
	man, err := st.LoadBatch(rep3.BatchID)
	if err != nil || man == nil {
		t.Fatalf("manifest: %v %v", man, err)
	}
	for _, e := range man.Entries {
		if e.Status != store.StatusDone || e.Iters != n {
			t.Fatalf("manifest entry %+v not done at %d", e, n)
		}
	}
}

// TestFleetUndispatchableSpecFails: a spec carrying live objects fails its
// shard up front with a descriptive error while the rest of the batch runs.
func TestFleetUndispatchableSpecFails(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign test")
	}
	specs := fleetSpecs(5)[:2]
	specs[1].Label = "live"
	specs[1].Overrides.Solver = dummySolver{}
	c, addr := startFleet(t, specs, fleet.Options{})
	workInProcess(t, addr, 1)
	rep := c.Wait()
	if rep.Campaigns[0].Err != nil {
		t.Fatalf("plain campaign failed: %v", rep.Campaigns[0].Err)
	}
	if err := rep.Campaigns[1].Err; err == nil || !strings.Contains(err.Error(), "Config.Solver") {
		t.Fatalf("live-solver campaign error = %v", err)
	}
}

type dummySolver struct{}

func (dummySolver) SolveIncremental(preds []expr.Pred, prev map[expr.Var]int64, opt solver.Options) (solver.Result, bool) {
	return solver.Result{}, false
}
func (dummySolver) Stats() solver.Stats { return solver.Stats{} }

// TestFleetStatusText sanity-checks the status rendering mid-run without
// depending on timing: a coordinator with no workers shows its shards
// pending, then resolved after a worker drains the batch.
func TestFleetStatusText(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign test")
	}
	specs := fleetSpecs(3)[:2]
	c, addr := startFleet(t, specs, fleet.Options{})
	st := c.StatusText()
	if !strings.Contains(st, "0/2 shards resolved") || !strings.Contains(st, "pending") {
		t.Fatalf("pending status:\n%s", st)
	}
	workInProcess(t, addr, 1)
	c.Wait()
	st = c.StatusText()
	if !strings.Contains(st, "2/2 shards resolved") || strings.Contains(st, "pending") {
		t.Fatalf("drained status:\n%s", st)
	}
}

// TestFleetProfileRollup: a coordinator with Profile on makes its workers
// run engines under phase profilers, aggregates the shipped per-shard
// reports, surfaces the top bins on the status endpoint, and — because
// profiling is observational — produces a report fingerprint identical to
// an unprofiled single-process sched.Run.
func TestFleetProfileRollup(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign test")
	}
	const iters = 5
	specs := fleetSpecs(iters)[:2] // two skeleton shards
	ref := sched.Run(fleetSpecs(iters)[:2], sched.Options{Workers: 1})
	want := fingerprintOf(ref)

	c, addr := startFleet(t, specs, fleet.Options{Profile: true})
	workInProcess(t, addr, 1)
	rep := c.Wait()
	for _, camp := range rep.Campaigns {
		if camp.Err != nil {
			t.Fatalf("fleet campaign %q: %v", camp.Label, camp.Err)
		}
	}
	if got := fingerprintOf(rep); !reflect.DeepEqual(got, want) {
		t.Fatal("profiled fleet report diverged from unprofiled sched.Run")
	}

	exe, ok := rep.Profile.Get("execute")
	if !ok {
		t.Fatalf("fleet profile has no execute bin: %v", rep.Profile)
	}
	total := 0
	for _, camp := range rep.Campaigns {
		total += len(camp.Result.Iterations)
	}
	if exe.Count != int64(total) {
		t.Fatalf("fleet execute bin count %d, want %d (one per iteration across shards)", exe.Count, total)
	}
	if st := c.StatusText(); !strings.Contains(st, "profile: ") || !strings.Contains(st, "execute=") {
		t.Fatalf("status text missing profile line:\n%s", st)
	}
}
