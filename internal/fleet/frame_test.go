package fleet_test

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"strings"
	"testing"
	"time"

	"repro/internal/conc"
	"repro/internal/core"
	"repro/internal/coverage"
	"repro/internal/fleet"
	"repro/internal/sched"
	"repro/internal/spec"
	"repro/internal/target"
)

// The dispatch handshake's wire bytes are an interface contract between
// coordinator and worker builds: golden-pinned, like the target protocol's
// handshake. Changing either golden constant means the protocol changed and
// Version must be bumped.
const (
	helloGolden   = `{"type":"hello","hello":{"proto":2,"name":"w1"}}`
	welcomeGolden = `{"type":"welcome","welcome":{"proto":2,"worker":3,"batch":"batch-0abc","ttl_ms":10000,"retry_ms":200,"snapshot_every":8}}`
)

func TestHandshakeGolden(t *testing.T) {
	pin := func(f fleet.Frame, golden string) {
		t.Helper()
		var buf bytes.Buffer
		if err := fleet.WriteFrame(&buf, f); err != nil {
			t.Fatal(err)
		}
		raw := buf.Bytes()
		if n := binary.BigEndian.Uint32(raw[:4]); int(n) != len(raw)-4 {
			t.Fatalf("length prefix %d for %d payload bytes", n, len(raw)-4)
		}
		if got := string(raw[4:]); got != golden {
			t.Fatalf("wire bytes changed:\n got  %s\n want %s", got, golden)
		}
		back, err := fleet.ReadFrame(bytes.NewReader(raw))
		if err != nil {
			t.Fatal(err)
		}
		if back.Type != f.Type {
			t.Fatalf("round trip changed type: %q", back.Type)
		}
	}
	pin(fleet.Frame{Type: fleet.FrameHello, Hello: &fleet.Hello{Proto: 2, Name: "w1"}}, helloGolden)
	pin(fleet.Frame{Type: fleet.FrameWelcome, Welcome: &fleet.Welcome{
		Proto: 2, Worker: 3, Batch: "batch-0abc", TTLMS: 10000, RetryMS: 200, SnapshotEvery: 8,
	}}, welcomeGolden)
}

func TestFrameValidation(t *testing.T) {
	var buf bytes.Buffer
	// Unknown type and missing payload are refused on write...
	if err := fleet.WriteFrame(&buf, fleet.Frame{Type: "bogus"}); err == nil ||
		!strings.Contains(err.Error(), "unknown frame type") {
		t.Fatalf("bogus type: %v", err)
	}
	if err := fleet.WriteFrame(&buf, fleet.Frame{Type: fleet.FrameRenew}); err == nil ||
		!strings.Contains(err.Error(), "without its payload") {
		t.Fatalf("missing payload: %v", err)
	}
	// ...and on read, even when the bytes frame correctly.
	payload, _ := json.Marshal(map[string]any{"type": "merge"})
	var raw bytes.Buffer
	raw.Write(binary.BigEndian.AppendUint32(nil, uint32(len(payload))))
	raw.Write(payload)
	if _, err := fleet.ReadFrame(&raw); err == nil || !strings.Contains(err.Error(), "without its payload") {
		t.Fatalf("payloadless merge read: %v", err)
	}
	// Non-frame garbage is rejected by the shared codec's bounds check.
	if _, err := fleet.ReadFrame(bytes.NewReader([]byte{0xff, 0xff, 0xff, 0xff, 'j'})); err == nil {
		t.Fatal("garbage accepted")
	}
}

// TestLeaseSpecRoundTrip pins the v2 wire contract: leases ship the
// canonical spec.Campaign verbatim, so a portable spec must survive JSON
// unchanged, and a spec carrying a live object must be refused naming the
// offending field with the same text the old wire layer used.
func TestLeaseSpecRoundTrip(t *testing.T) {
	sp := sched.Spec{Campaign: spec.Campaign{
		Label:  "shard-3",
		Target: "skeleton",
		Seed:   7,
		Group:  "grid",
		External: &spec.External{
			Bin: "/usr/bin/compi-target", Args: []string{"-t", "x"}, Env: []string{"A=1"},
		},
		Params:       map[string]int64{"cap": 9},
		Inputs:       map[string]int64{"x": 4},
		Iterations:   55,
		TimeBudget:   1500 * time.Millisecond,
		InitialProcs: 8, InitialFocus: 1, MaxProcs: 16,
		Reduction: true, DepthBound: 6, DFSPhase: 10,
		OneWay: true, Framework: true, PureRandom: true,
		Schedules:  true,
		RunTimeout: 5 * time.Second, MaxTicks: 1 << 20,
		SolverMaxNodes: 4096,
	}}
	w, err := sp.Portable()
	if err != nil {
		t.Fatal(err)
	}
	// The portable form must survive JSON (that is its whole job).
	b, err := json.Marshal(w)
	if err != nil {
		t.Fatal(err)
	}
	var w2 spec.Campaign
	if err := json.Unmarshal(b, &w2); err != nil {
		t.Fatal(err)
	}
	b2, _ := json.Marshal(w2)
	if string(b) != string(b2) {
		t.Fatalf("round trip changed the spec:\n got  %s\n want %s", b2, b)
	}
	if w.Canonical() != w2.Canonical() {
		t.Fatal("round trip changed the canonical setup key")
	}

	// Live objects are refused, naming the field — same error text the old
	// bespoke wire layer produced.
	live := sp
	live.External = nil
	live.Overrides.NewStrategy = func(p *target.Program, c *coverage.Tracker) core.Strategy { return nil }
	if _, err := live.Portable(); err == nil ||
		!strings.Contains(err.Error(), "Config.NewStrategy") ||
		!strings.Contains(err.Error(), "cannot be dispatched") {
		t.Fatalf("live strategy factory: %v", err)
	}
}

// TestMergeFrameIsONewBranches pins the merge-frame size property at the
// protocol level: after a shard has covered a large corpus, an iteration
// that finds three new branches produces a merge frame a few hundred bytes
// long, where shipping the whole corpus would cost kilobytes. (The tracker-
// level guarantee lives in coverage's delta tests; this asserts the frame
// encoding keeps it.)
func TestMergeFrameIsONewBranches(t *testing.T) {
	tr := coverage.New()
	tr.StartJournal()
	for b := 0; b < 10_000; b++ {
		tr.AddBranch(conc.BranchBit(b))
	}
	tr.DrainDelta() // corpus already streamed in earlier frames
	tr.AddBranch(10_001)
	tr.AddBranch(10_002)
	tr.AddBranch(10_003)

	var frame bytes.Buffer
	err := fleet.WriteFrame(&frame, fleet.Frame{Type: fleet.FrameMerge, Merge: &fleet.Merge{
		Lease: "shard0.g1", Iters: 4242, Delta: tr.DrainDelta(),
	}})
	if err != nil {
		t.Fatal(err)
	}
	full, _ := json.Marshal(tr.Branches()) // the O(corpus) alternative
	if frame.Len() >= len(full)/10 {
		t.Fatalf("merge frame is %d bytes; full-corpus encoding is %d — delta lost its O(new) property",
			frame.Len(), len(full))
	}
	if frame.Len() > 512 {
		t.Fatalf("merge frame for 3 new branches is %d bytes", frame.Len())
	}
}
