package fleet

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"os"
	"sync"
	"time"

	"repro/internal/binstat"
	"repro/internal/core"
	"repro/internal/proto"
	"repro/internal/sched"
	"repro/internal/target"
)

// WorkerOptions configures Work.
type WorkerOptions struct {
	// Name identifies this worker in coordinator logs and status output;
	// defaults to "pid<pid>".
	Name string

	// Jobs is the number of campaign slots — parallel engines, each with
	// its own coordinator connection. Default 1.
	Jobs int

	// DialWindow is how long to keep retrying the initial connection (the
	// coordinator may start after the workers). Default 10s.
	DialWindow time.Duration

	// Profile runs every leased engine under a phase profiler and ships the
	// per-shard report with the complete frame. The coordinator's welcome
	// can also switch this on fleet-wide; either source enables it.
	Profile bool

	// Logf, when non-nil, receives worker event lines.
	Logf func(format string, args ...any)
}

// Work runs campaigns leased from the coordinator at addr until the batch
// drains or the coordinator goes away, whichever comes first — both are
// clean exits: a missing coordinator means the batch is finished (or will be
// re-run), never that this worker should fail. Only a handshake that never
// succeeds returns an error.
func Work(addr string, opt WorkerOptions) error {
	if opt.Name == "" {
		opt.Name = fmt.Sprintf("pid%d", os.Getpid())
	}
	if opt.Jobs <= 0 {
		opt.Jobs = 1
	}
	if opt.DialWindow <= 0 {
		opt.DialWindow = 10 * time.Second
	}
	if opt.Jobs == 1 {
		return workOne(addr, opt.Name, opt)
	}
	var wg sync.WaitGroup
	errs := make([]error, opt.Jobs)
	for j := 0; j < opt.Jobs; j++ {
		wg.Add(1)
		go func(j int) {
			defer wg.Done()
			errs[j] = workOne(addr, fmt.Sprintf("%s/%d", opt.Name, j), opt)
		}(j)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// workOne is one campaign slot: one connection, one engine at a time.
func workOne(addr, name string, opt WorkerOptions) error {
	conn, err := dialRetry(addr, opt.DialWindow)
	if err != nil {
		return fmt.Errorf("fleet: worker %s: %w", name, err)
	}
	defer conn.Close()
	var wmu sync.Mutex // conn writes: job loop, per-iteration callbacks, renew timer
	write := func(f Frame) error {
		wmu.Lock()
		defer wmu.Unlock()
		return WriteFrame(conn, f)
	}
	logf := func(format string, args ...any) {
		if opt.Logf != nil {
			opt.Logf(format, args...)
		}
	}

	if err := write(Frame{Type: FrameHello, Hello: &Hello{Proto: Version, Name: name}}); err != nil {
		return fmt.Errorf("fleet: worker %s: hello: %w", name, err)
	}
	f, err := ReadFrame(conn)
	if err != nil || f.Type != FrameWelcome {
		return fmt.Errorf("fleet: worker %s: no welcome from %s (%v)", name, addr, err)
	}
	if f.Welcome.Proto != Version {
		return fmt.Errorf("fleet: worker %s: coordinator speaks protocol %d, this build speaks %d",
			name, f.Welcome.Proto, Version)
	}
	w := *f.Welcome
	ttl := time.Duration(w.TTLMS) * time.Millisecond
	logf("fleet: worker %s: session %d on batch %q", name, w.Worker, w.Batch)

	for {
		if err := write(Frame{Type: FrameLeaseRequest, LeaseReq: &LeaseRequest{}}); err != nil {
			return nil // coordinator gone: batch is over as far as we're concerned
		}
		f, err := ReadFrame(conn)
		if err != nil || f.Type != FrameLease {
			return nil
		}
		lease := f.Lease
		switch lease.Status {
		case LeaseDrained:
			logf("fleet: worker %s: batch drained", name)
			return nil
		case LeaseWait:
			retry := time.Duration(lease.RetryMS) * time.Millisecond
			if retry <= 0 {
				retry = 200 * time.Millisecond
			}
			time.Sleep(retry)
		case LeaseGranted:
			runLease(write, lease, ttl, w.SnapshotEvery, opt.Profile || w.Profile, logf)
		default:
			return nil
		}
	}
}

// dialRetry dials addr, retrying for up to window.
func dialRetry(addr string, window time.Duration) (net.Conn, error) {
	deadline := time.Now().Add(window)
	for {
		conn, err := net.Dial("tcp", addr)
		if err == nil {
			return conn, nil
		}
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("dialing coordinator %s: %w", addr, err)
		}
		time.Sleep(100 * time.Millisecond)
	}
}

// errorTail collects the engine's live error records (Config.ErrorLog writes
// one JSON line per record) so merge frames can ship only the new ones.
type errorTail struct {
	mu   sync.Mutex
	buf  bytes.Buffer
	recs []core.ErrorRecord
}

func (t *errorTail) Write(p []byte) (int, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.buf.Write(p)
	for {
		line, err := t.buf.ReadBytes('\n')
		if err != nil {
			t.buf.Write(line) // partial line: keep for the next write
			break
		}
		var rec core.ErrorRecord
		if json.Unmarshal(line, &rec) == nil {
			t.recs = append(t.recs, rec)
		}
	}
	return len(p), nil
}

func (t *errorTail) drain() []core.ErrorRecord {
	t.mu.Lock()
	defer t.mu.Unlock()
	recs := t.recs
	t.recs = nil
	return recs
}

// runLease executes one granted shard: restore the resume snapshot if any,
// journal coverage, stream per-iteration merges and periodic progress
// snapshots, renew the lease on a timer, and finish with the final snapshot.
// Deterministic spec failures (unknown target, unstartable external binary)
// are reported as error frames; transport failures are simply dropped — the
// coordinator's lease deadline handles a worker that can no longer speak.
func runLease(write func(Frame) error, lease *Lease, ttl time.Duration, snapshotEvery int, profile bool, logf func(string, ...any)) {
	sp := sched.Spec{Campaign: *lease.Spec}
	fail := func(err error) {
		logf("fleet: lease %s: %v", lease.ID, err)
		write(Frame{Type: FrameError, Error: &ErrorReport{Lease: lease.ID, Msg: err.Error()}})
	}
	cfg, err := sp.Config()
	if err != nil {
		fail(fmt.Errorf("sched: spec %q: %w", sp.DisplayLabel(), err))
		return
	}
	if profile && cfg.Profiler == nil {
		// One profiler per lease: the complete frame then carries exactly
		// this shard's bins, and the coordinator does the fleet-wide rollup.
		cfg.Profiler = binstat.New()
	}
	if sp.External != nil {
		drv, err := proto.Start(sp.External.Bin, proto.Options{Args: sp.External.Args, Env: sp.External.Env})
		if err != nil {
			fail(fmt.Errorf("sched: external target for %q: %w", sp.DisplayLabel(), err))
			return
		}
		defer drv.Close()
		cfg.Backend = drv
		if cfg.Program == nil && sp.Target == "" {
			prog, err := drv.Program()
			if err != nil {
				fail(fmt.Errorf("sched: external target for %q: %w", sp.DisplayLabel(), err))
				return
			}
			cfg.Program = prog
		}
	}
	if cfg.Program == nil {
		prog, ok := target.Lookup(sp.Target)
		if !ok {
			fail(fmt.Errorf("sched: unknown target %q", sp.Target))
			return
		}
		cfg.Program = prog
	}

	// Per-iteration callbacks. The engine is built after the closures, so
	// they capture the tracker through a variable assigned below; the engine
	// never fires them before Run.
	tail := &errorTail{}
	cfg.ErrorLog = tail
	var eng *core.Engine
	if snapshotEvery <= 0 {
		snapshotEvery = 8
	}
	cfg.CheckpointEvery = snapshotEvery
	cfg.Checkpoint = func(snap *core.Snapshot) {
		write(Frame{Type: FrameProgress, Progress: &Progress{
			Lease: lease.ID, Iters: snap.Iters, Snapshot: snap,
		}})
	}
	cfg.Trace = func(it core.IterationStat) {
		write(Frame{Type: FrameMerge, Merge: &Merge{
			Lease:  lease.ID,
			Iters:  it.Iter + 1,
			Delta:  eng.Coverage().DrainDelta(),
			Errors: tail.drain(),
		}})
	}

	eng = core.NewEngine(cfg)
	if lease.Snapshot != nil {
		if err := eng.Restore(lease.Snapshot); err != nil {
			// A stale or corrupt snapshot must never fail the shard: discard
			// it and run cold, exactly as sched.runOne does.
			logf("fleet: lease %s: discarding resume snapshot: %v", lease.ID, err)
			eng = core.NewEngine(cfg)
		}
	}
	// Journal only what this session adds: restored coverage is already on
	// the coordinator's side of the ledger.
	eng.Coverage().StartJournal()

	renewEvery := ttl / 3
	if renewEvery <= 0 {
		renewEvery = time.Second
	}
	stopRenew := make(chan struct{})
	go func() {
		tick := time.NewTicker(renewEvery)
		defer tick.Stop()
		for {
			select {
			case <-stopRenew:
				return
			case <-tick.C:
				write(Frame{Type: FrameRenew, Renew: &Renew{Lease: lease.ID}})
			}
		}
	}()
	logf("fleet: running lease %s (%s)", lease.ID, sp.DisplayLabel())
	eng.Run()
	close(stopRenew)
	final := eng.Snapshot()
	write(Frame{Type: FrameComplete, Complete: &Complete{
		Lease: lease.ID, Snapshot: final, Profile: cfg.Profiler.Report(),
	}})
	logf("fleet: lease %s complete at %d iterations", lease.ID, final.Iters)
}

var _ io.Writer = (*errorTail)(nil) // Config.ErrorLog contract
