// Package fleet is the coordinator/worker campaign fleet: one long-running
// `compi serve` process owns a scheduler batch and its campaign store, and
// any number of `compi work` processes — on the same machine or not — lease
// campaign shards from it over a TCP dispatch protocol, stream incremental
// coverage and error merges back, and return final snapshots.
//
// The protocol reuses the out-of-process target protocol's wire form
// (internal/proto's 4-byte big-endian length prefix + one JSON object per
// frame, via proto.ReadRaw/WriteRaw) with its own frame schema. A session:
//
//	worker connects
//	-> hello   {proto, name}
//	<- welcome {proto, worker, batch, ttl_ms, retry_ms, snapshot_every}
//	repeat until drained:
//	    -> lease-request {}
//	    <- lease {status, id, shard, spec, snapshot?, ttl_ms, retry_ms}
//	         status granted: run the shard —
//	             -> lease-renew {lease}          (ttl/3 cadence, keeps the lease)
//	             -> merge {lease, iters, delta, errors}   (per iteration, O(new))
//	             -> progress {lease, iters, snapshot}     (every snapshot_every)
//	             -> complete {lease, snapshot}            (final snapshot)
//	           or
//	             -> error {lease, msg}           (deterministic spec error)
//	         status wait: sleep retry_ms, request again
//	         status drained: exit 0
//
// Frames from the worker after its lease has been reclaimed (the coordinator
// saw the deadline expire, or the connection dropped and the shard was
// re-leased) carry a stale lease ID and are discarded — re-leased shards
// resume from the last progress snapshot, and since coverage deltas are set
// unions, replaying an overlapping stream can never double-count.
//
// Determinism: the coordinator's final report is assembled from per-shard
// FINAL snapshots merged in spec order through sched.BuildReport — exactly
// how sched.Run builds its report — so a fleet's result is pinned equal to a
// single-process sched.Run over the same specs, regardless of worker count,
// scheduling order, or how many times shards were reclaimed mid-flight. The
// streamed merge deltas feed only the live status endpoint.
package fleet

import (
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/binstat"
	"repro/internal/core"
	"repro/internal/coverage"
	"repro/internal/proto"
	"repro/internal/spec"
)

// Version is the campaign-dispatch protocol version, independent of the
// target protocol's. The coordinator refuses a worker speaking a different
// version; the frame schema is pinned by a golden-bytes test. Version 2
// replaced the lease frame's bespoke wire spec with the canonical
// spec.Campaign schema.
const Version = 2

// FrameType discriminates the dispatch protocol's frames.
type FrameType string

// The frame types of dispatch protocol version 1.
const (
	// FrameHello opens a session (worker → coordinator).
	FrameHello FrameType = "hello"
	// FrameWelcome accepts a session (coordinator → worker): the worker's
	// ID and the batch's pacing parameters.
	FrameWelcome FrameType = "welcome"
	// FrameLeaseRequest asks for a shard (worker → coordinator).
	FrameLeaseRequest FrameType = "lease-request"
	// FrameLease answers a request (coordinator → worker): a granted shard,
	// a wait backoff, or the batch-drained signal.
	FrameLease FrameType = "lease"
	// FrameRenew extends a lease's deadline (worker → coordinator).
	FrameRenew FrameType = "lease-renew"
	// FrameProgress checkpoints a shard (worker → coordinator): the current
	// engine snapshot, which is both the coordinator's store checkpoint and
	// the resume point should this lease be reclaimed.
	FrameProgress FrameType = "progress"
	// FrameMerge streams one iteration's incremental results (worker →
	// coordinator): the coverage delta (only newly covered branches and
	// functions — O(new), never the corpus) and any new error records.
	FrameMerge FrameType = "merge"
	// FrameComplete finishes a shard (worker → coordinator): the final
	// snapshot the report row is built from.
	FrameComplete FrameType = "complete"
	// FrameError fails a shard deterministically (worker → coordinator):
	// the spec itself is unrunnable (unknown target, dead external binary).
	FrameError FrameType = "error"
)

// Frame is the wire envelope: a type tag plus exactly one payload, the one
// matching the type.
type Frame struct {
	Type     FrameType     `json:"type"`
	Hello    *Hello        `json:"hello,omitempty"`
	Welcome  *Welcome      `json:"welcome,omitempty"`
	LeaseReq *LeaseRequest `json:"lease_request,omitempty"`
	Lease    *Lease        `json:"lease,omitempty"`
	Renew    *Renew        `json:"renew,omitempty"`
	Progress *Progress     `json:"progress,omitempty"`
	Merge    *Merge        `json:"merge,omitempty"`
	Complete *Complete     `json:"complete,omitempty"`
	Error    *ErrorReport  `json:"error,omitempty"`
}

// Hello opens a worker session.
type Hello struct {
	Proto int    `json:"proto"`
	Name  string `json:"name,omitempty"`
}

// Welcome accepts a worker session. Times travel as explicit units (ms) so
// both ends agree without sharing a clock.
type Welcome struct {
	Proto int `json:"proto"`
	// Worker is the coordinator-assigned session ID, used in status output.
	Worker int `json:"worker"`
	// Batch is the store batch this fleet is running.
	Batch string `json:"batch,omitempty"`
	// TTLMS is the lease time-to-live: a lease not renewed or advanced for
	// this long is reclaimed and re-leased to another worker.
	TTLMS int64 `json:"ttl_ms"`
	// RetryMS is the backoff before re-requesting after a wait lease.
	RetryMS int64 `json:"retry_ms"`
	// SnapshotEvery is the progress-snapshot cadence in iterations.
	SnapshotEvery int `json:"snapshot_every"`
	// Profile asks workers to run their engines under a phase profiler and
	// ship the per-shard report in the complete frame. Profiling is
	// observational — trajectories are pinned byte-identical either way — so
	// a worker may also enable it locally; this flag just lets one
	// coordinator switch the whole fleet.
	Profile bool `json:"profile,omitempty"`
}

// LeaseRequest asks for the next shard.
type LeaseRequest struct{}

// Lease statuses.
const (
	// LeaseGranted carries a shard to run.
	LeaseGranted = "granted"
	// LeaseWait means every remaining shard is leased elsewhere; retry
	// after RetryMS.
	LeaseWait = "wait"
	// LeaseDrained means every shard is resolved; the worker should exit.
	LeaseDrained = "drained"
)

// Lease answers a lease request.
type Lease struct {
	Status string `json:"status"`
	// ID names the lease ("shard<i>.g<generation>"); every later frame about
	// this shard must carry it, and a reclaimed lease's ID never validates
	// again.
	ID string `json:"id,omitempty"`
	// Shard is the spec index in the coordinator's batch.
	Shard int `json:"shard,omitempty"`
	// Spec is the campaign to run: the canonical data-only schema
	// (internal/spec). Specs carrying live objects never reach the wire —
	// the coordinator refuses them at batch build (spec.Portable).
	Spec *spec.Campaign `json:"spec,omitempty"`
	// Snapshot, when non-nil, is the shard's resume point: the store's (or a
	// reclaimed predecessor's) last checkpoint. The worker restores it
	// before running, making re-leased work continue instead of restart.
	Snapshot *core.Snapshot `json:"snapshot,omitempty"`
	TTLMS    int64          `json:"ttl_ms,omitempty"`
	RetryMS  int64          `json:"retry_ms,omitempty"`
}

// Renew extends a lease.
type Renew struct {
	Lease string `json:"lease"`
}

// Progress checkpoints a running shard.
type Progress struct {
	Lease    string         `json:"lease"`
	Iters    int            `json:"iters"`
	Snapshot *core.Snapshot `json:"snapshot"`
}

// Merge streams one iteration's incremental results. Delta carries only the
// branches and functions newly covered since the previous merge frame —
// coverage.Tracker's journal guarantees O(new branches), not O(corpus) — and
// Errors only the error records recorded since the previous frame.
type Merge struct {
	Lease  string             `json:"lease"`
	Iters  int                `json:"iters"`
	Delta  coverage.Delta     `json:"delta"`
	Errors []core.ErrorRecord `json:"errors,omitempty"`
}

// Complete finishes a shard with its final snapshot. Profile, when present,
// is the shard engine's phase-profile report (the worker ran with profiling
// on); the coordinator folds it into the fleet-wide aggregate shown by the
// status endpoint.
type Complete struct {
	Lease    string         `json:"lease"`
	Snapshot *core.Snapshot `json:"snapshot"`
	Profile  binstat.Report `json:"profile,omitempty"`
}

// ErrorReport fails a shard: the spec cannot run, deterministically, on any
// worker (unknown target, unstartable external binary). Msg becomes the
// campaign's report error, matching what sched.Run would record.
type ErrorReport struct {
	Lease string `json:"lease"`
	Msg   string `json:"msg"`
}

// validate checks the type tag is known and its payload present.
func (f *Frame) validate() error {
	var ok bool
	switch f.Type {
	case FrameHello:
		ok = f.Hello != nil
	case FrameWelcome:
		ok = f.Welcome != nil
	case FrameLeaseRequest:
		ok = f.LeaseReq != nil
	case FrameLease:
		ok = f.Lease != nil
	case FrameRenew:
		ok = f.Renew != nil
	case FrameProgress:
		ok = f.Progress != nil
	case FrameMerge:
		ok = f.Merge != nil
	case FrameComplete:
		ok = f.Complete != nil
	case FrameError:
		ok = f.Error != nil
	default:
		return fmt.Errorf("fleet: unknown frame type %q", f.Type)
	}
	if !ok {
		return fmt.Errorf("fleet: %q frame without its payload", f.Type)
	}
	return nil
}

// WriteFrame writes f to w in the shared length-prefixed wire form.
func WriteFrame(w io.Writer, f Frame) error {
	if err := f.validate(); err != nil {
		return err
	}
	payload, err := json.Marshal(f)
	if err != nil {
		return fmt.Errorf("fleet: encoding %q frame: %w", f.Type, err)
	}
	return proto.WriteRaw(w, payload)
}

// ReadFrame reads one frame from r: one length-prefixed payload that must
// decode to exactly one valid frame envelope.
func ReadFrame(r io.Reader) (Frame, error) {
	payload, err := proto.ReadRaw(r)
	if err != nil {
		return Frame{}, err
	}
	var f Frame
	if err := json.Unmarshal(payload, &f); err != nil {
		return Frame{}, fmt.Errorf("fleet: bad frame payload: %w", err)
	}
	if err := f.validate(); err != nil {
		return Frame{}, err
	}
	return f, nil
}
