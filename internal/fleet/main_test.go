package fleet_test

import (
	"fmt"
	"net"
	"os"
	"testing"
	"time"

	"repro/internal/fleet"
	_ "repro/internal/targets/skeleton"
	_ "repro/internal/targets/stencil"
	_ "repro/internal/targets/susy"
)

// TestMain doubles as the fleet's fault-injection worker zoo: re-executed
// with COMPI_FLEET_FAULT set, the test binary plays a worker instead of
// running the tests — a real one (mode "worker", the process the kill tests
// murder mid-lease), one that takes a lease and goes silent ("stall"), and
// one that takes a lease and then spews non-protocol bytes ("garbage"). The
// fleet tests exec os.Args[0] with the mode and the coordinator address in
// the environment, so every failure path crosses a real process boundary —
// the same pattern as internal/proto's target zoo.
func TestMain(m *testing.M) {
	addr := os.Getenv("COMPI_FLEET_ADDR")
	switch mode := os.Getenv("COMPI_FLEET_FAULT"); mode {
	case "":
		os.Exit(m.Run())
	case "worker":
		err := fleet.Work(addr, fleet.WorkerOptions{Name: os.Getenv("COMPI_FLEET_NAME")})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		os.Exit(0)
	case "stall":
		conn := zooHandshake(addr)
		zooLease(conn) // take the lease...
		time.Sleep(time.Hour)
	case "garbage":
		conn := zooHandshake(addr)
		zooLease(conn)
		conn.Write([]byte{0xff, 0xff, 0xff, 0xff, 'j', 'u', 'n', 'k'})
		time.Sleep(time.Hour) // hold the conn open so only the garbage kills it
	default:
		fmt.Fprintf(os.Stderr, "unknown COMPI_FLEET_FAULT mode %q\n", mode)
		os.Exit(2)
	}
}

// zooHandshake opens a worker session for a fault mode.
func zooHandshake(addr string) net.Conn {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	fleet.WriteFrame(conn, fleet.Frame{Type: fleet.FrameHello, Hello: &fleet.Hello{
		Proto: fleet.Version, Name: os.Getenv("COMPI_FLEET_NAME"),
	}})
	if f, err := fleet.ReadFrame(conn); err != nil || f.Type != fleet.FrameWelcome {
		fmt.Fprintf(os.Stderr, "no welcome: %v\n", err)
		os.Exit(2)
	}
	return conn
}

// zooLease requests until a lease is granted, then returns holding it.
func zooLease(conn net.Conn) {
	for {
		fleet.WriteFrame(conn, fleet.Frame{Type: fleet.FrameLeaseRequest, LeaseReq: &fleet.LeaseRequest{}})
		f, err := fleet.ReadFrame(conn)
		if err != nil || f.Type != fleet.FrameLease {
			fmt.Fprintf(os.Stderr, "no lease: %v\n", err)
			os.Exit(2)
		}
		switch f.Lease.Status {
		case fleet.LeaseGranted:
			return
		case fleet.LeaseWait:
			time.Sleep(50 * time.Millisecond)
		default:
			os.Exit(2)
		}
	}
}
