package fleet

import (
	"errors"
	"fmt"
	"io"
	"net"
	"sort"
	"sync"
	"time"

	"repro/internal/binstat"
	"repro/internal/core"
	"repro/internal/coverage"
	"repro/internal/sched"
	"repro/internal/spec"
	"repro/internal/store"
)

// Options configures a coordinator.
type Options struct {
	// Store, when non-nil, makes the fleet durable exactly like a
	// store-backed sched.Run: progress snapshots are checkpointed into it,
	// already-explored setups are reused or resumed from it, and a batch
	// manifest tracks the fleet's shards. The coordinator owns the store
	// (workers never touch it), so the store's single-process lock composes
	// with any number of workers.
	Store *store.Store

	// BatchID names the store batch; empty derives a stable ID from the
	// specs (sched.DeriveBatchID), so restarting a coordinator resumes its
	// own batch.
	BatchID string

	// TTL is the lease time-to-live. A lease not renewed and not advanced
	// by progress for TTL is reclaimed and its shard re-leased. Default 10s.
	TTL time.Duration

	// Retry is the backoff workers are told to wait before re-requesting
	// when every remaining shard is leased. Default 200ms.
	Retry time.Duration

	// SnapshotEvery is the progress-snapshot cadence in iterations.
	// Default 8. Merge deltas flow every iteration regardless; this only
	// paces the O(corpus) snapshot frames.
	SnapshotEvery int

	// Profile asks every worker (via the welcome frame) to run its engines
	// under a phase profiler and ship per-shard reports; the coordinator
	// aggregates them fleet-wide, shows the top bins on the status endpoint,
	// and attaches the rollup to the final report. Workers profiling on
	// their own (-profile on `compi work`) feed the same aggregate even when
	// this is off.
	Profile bool

	// Logf, when non-nil, receives coordinator event lines (leases granted,
	// reclaims, completions).
	Logf func(format string, args ...any)
}

// Shard lease states, as shown by the status endpoint.
const (
	shardPending = "pending"
	shardLeased  = "leased"
	shardDone    = "done"
	shardFailed  = "failed"
)

// shardState is the coordinator's view of one spec's campaign.
type shardState struct {
	state      string
	gen        int    // lease generation; bumped on every grant
	leaseID    string // current lease, "" unless leased
	worker     int    // session ID holding the lease
	workerName string
	deadline   time.Time      // lease expiry; advanced by renew/progress/merge
	iters      int            // latest reported iteration count
	errCount   int            // streamed error records (status only)
	reclaims   int            // times this shard's lease was reclaimed
	resume     *core.Snapshot // last progress snapshot: the reclaim-resume point
	camp       sched.Campaign // filled when done or failed
	campName   string         // store campaign file name (persisted shards)
}

// Coordinator owns one fleet batch: the specs, their shard lease state, the
// optional campaign store, and the listeners. Create with NewCoordinator,
// drive with Serve (and optionally ServeStatus), collect with Wait.
type Coordinator struct {
	opt   Options
	specs []sched.Spec
	wire  []spec.Campaign // portable form of each spec, shipped in leases
	keys  []string        // sched.SetupKey per spec; "" = not persistable

	prof *binstat.Profiler // fleet-wide rollup of worker-shipped reports

	mu         sync.Mutex
	shards     []shardState
	sessions   map[int]*session
	nextSess   int
	man        *store.BatchManifest
	cov        map[string]*coverage.Tracker // live status trackers
	start      time.Time
	resolved   int
	done       chan struct{}
	doneClosed bool

	lnMu     sync.Mutex
	ln       net.Listener
	statusLn net.Listener
}

// session is one connected worker conn.
type session struct {
	id   int
	name string
	conn net.Conn
}

// NewCoordinator prepares a fleet over specs. Specs that cannot be
// dispatched (live strategy objects and the like — see spec.Portable) fail
// their shard immediately; everything else starts pending.
func NewCoordinator(specs []sched.Spec, opt Options) *Coordinator {
	if opt.TTL <= 0 {
		opt.TTL = 10 * time.Second
	}
	if opt.Retry <= 0 {
		opt.Retry = 200 * time.Millisecond
	}
	if opt.SnapshotEvery <= 0 {
		opt.SnapshotEvery = 8
	}
	c := &Coordinator{
		opt:      opt,
		prof:     binstat.New(),
		specs:    specs,
		wire:     make([]spec.Campaign, len(specs)),
		keys:     make([]string, len(specs)),
		shards:   make([]shardState, len(specs)),
		sessions: map[int]*session{},
		cov:      map[string]*coverage.Tracker{},
		start:    time.Now(),
		done:     make(chan struct{}),
	}
	for i, sp := range specs {
		c.shards[i].state = shardPending
		c.shards[i].camp.Spec = sp
		c.shards[i].camp.Label = sp.DisplayLabel()
		c.shards[i].camp.Target = sp.TargetName()
		w, err := sp.Portable()
		if err != nil {
			c.failShardLocked(i, fmt.Errorf("fleet: %w", err))
			continue
		}
		c.wire[i] = w
		c.keys[i], _ = sched.SetupKey(sp)
	}
	if opt.Store != nil {
		c.openBatch()
	}
	c.mu.Lock()
	c.checkDoneLocked()
	c.mu.Unlock()
	return c
}

// openBatch creates (or reloads) the store batch manifest through
// sched.PrepareBatch — the same path sched.Run takes — so a fleet store and
// a sched store are interchangeable.
func (c *Coordinator) openBatch() {
	c.man, c.keys = sched.PrepareBatch(c.opt.Store, c.opt.BatchID, c.specs)
}

// BatchID returns the store batch ID ("" without a store).
func (c *Coordinator) BatchID() string {
	if c.man == nil {
		return ""
	}
	return c.man.ID
}

func (c *Coordinator) logf(format string, args ...any) {
	if c.opt.Logf != nil {
		c.opt.Logf(format, args...)
	}
}

// updateEntry mutates shard i's manifest entry and persists the manifest.
// Callers hold c.mu.
func (c *Coordinator) updateEntryLocked(i int, fn func(*store.BatchEntry)) {
	if c.man == nil {
		return
	}
	fn(&c.man.Entries[i])
	c.opt.Store.SaveBatch(c.man)
}

// failShardLocked resolves shard i with a deterministic error.
func (c *Coordinator) failShardLocked(i int, err error) {
	sh := &c.shards[i]
	if sh.state == shardDone || sh.state == shardFailed {
		return
	}
	sh.state = shardFailed
	sh.leaseID = ""
	sh.camp.Err = err
	c.updateEntryLocked(i, func(e *store.BatchEntry) {
		e.Status = store.StatusError
		e.Error = err.Error()
	})
	c.logf("fleet: shard %d (%s) failed: %v", i, sh.camp.Label, err)
	c.resolved++
	c.checkDoneLocked()
}

// completeShardLocked resolves shard i from its final snapshot.
func (c *Coordinator) completeShardLocked(i int, snap *core.Snapshot) {
	sh := &c.shards[i]
	if sh.state == shardDone || sh.state == shardFailed {
		return
	}
	sh.state = shardDone
	sh.leaseID = ""
	sh.resume = nil
	sh.iters = snap.Iters
	sh.camp.Result = snap.Result()
	sh.errCount = len(snap.Errors)
	c.mergeSnapshotCovLocked(sh.camp.Target, snap)
	if c.opt.Store != nil && c.keys[i] != "" {
		name := sh.campName
		if name == "" {
			name = store.CampaignName(c.specs[i].DisplayLabel(), c.keys[i])
		}
		c.opt.Store.SaveCampaign(name, snap)
		rec := store.SetupRecord{Campaign: name, Iters: snap.Iters, Batch: c.man.ID}
		c.opt.Store.MarkExplored(c.keys[i], rec)
		c.opt.Store.IndexCampaign(c.keys[i], rec, snap)
		c.updateEntryLocked(i, func(e *store.BatchEntry) {
			e.Status = store.StatusDone
			e.Campaign = name
			e.Iters = snap.Iters
		})
	}
	c.logf("fleet: shard %d (%s) complete at %d iterations", i, sh.camp.Label, snap.Iters)
	c.resolved++
	c.checkDoneLocked()
}

// reuseShardLocked resolves shard i from the store without leasing it.
func (c *Coordinator) reuseShardLocked(i int, rec store.SetupRecord, snap *core.Snapshot) {
	sh := &c.shards[i]
	sh.state = shardDone
	sh.iters = snap.Iters
	sh.camp.Result = snap.Result()
	sh.camp.Reused = true
	sh.errCount = len(snap.Errors)
	c.mergeSnapshotCovLocked(sh.camp.Target, snap)
	// Same idempotent index upsert as sched.runOne's reuse path: pre-index
	// stores heal as they are read.
	c.opt.Store.IndexCampaign(c.keys[i], rec, snap)
	c.updateEntryLocked(i, func(e *store.BatchEntry) {
		e.Status = store.StatusReused
		e.Campaign = rec.Campaign
		e.Iters = snap.Iters
	})
	c.logf("fleet: shard %d (%s) reused from store (%d iterations)", i, sh.camp.Label, snap.Iters)
	c.resolved++
	c.checkDoneLocked()
}

func (c *Coordinator) checkDoneLocked() {
	if c.resolved == len(c.shards) && !c.doneClosed {
		c.doneClosed = true
		close(c.done)
	}
}

// mergeSnapshotCovLocked folds a snapshot's coverage into the live status
// tracker for target.
func (c *Coordinator) mergeSnapshotCovLocked(target string, snap *core.Snapshot) {
	tr := c.statusTrackerLocked(target)
	for _, b := range snap.Covered {
		tr.AddBranch(b)
	}
	for _, f := range snap.Funcs {
		tr.AddFunc(f)
	}
}

func (c *Coordinator) statusTrackerLocked(target string) *coverage.Tracker {
	tr := c.cov[target]
	if tr == nil {
		tr = coverage.New()
		c.cov[target] = tr
	}
	return tr
}

// Serve accepts worker connections on ln until the batch drains (or ln is
// closed). It blocks; run it in a goroutine and use Wait for the report.
func (c *Coordinator) Serve(ln net.Listener) error {
	c.lnMu.Lock()
	c.ln = ln
	c.lnMu.Unlock()
	go func() {
		// Reaper: reclaim leases whose deadline passed (dead or stalled
		// workers that still hold a connection open).
		tick := time.NewTicker(c.opt.TTL / 4)
		defer tick.Stop()
		for {
			select {
			case <-c.done:
				return
			case now := <-tick.C:
				c.reapExpired(now)
			}
		}
	}()
	go func() {
		<-c.done
		ln.Close() // unblock Accept; worker conns see EOF and exit
	}()
	for {
		conn, err := ln.Accept()
		if err != nil {
			select {
			case <-c.done:
				return nil
			default:
				return err
			}
		}
		go c.handle(conn)
	}
}

// reapExpired reclaims every lease whose deadline has passed.
func (c *Coordinator) reapExpired(now time.Time) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for i := range c.shards {
		sh := &c.shards[i]
		if sh.state == shardLeased && now.After(sh.deadline) {
			c.reclaimShardLocked(i, "lease expired")
		}
	}
}

// reclaimShardLocked returns a leased shard to the pending pool. The resume
// snapshot (last progress) is kept, so the next lease continues from it; the
// lease ID is retired, so any frames the previous holder still sends are
// discarded as stale.
func (c *Coordinator) reclaimShardLocked(i int, why string) {
	sh := &c.shards[i]
	if sh.state != shardLeased {
		return
	}
	c.logf("fleet: reclaiming shard %d (%s) from worker %d (%s): %s",
		i, sh.camp.Label, sh.worker, sh.workerName, why)
	sh.state = shardPending
	sh.leaseID = ""
	sh.worker = 0
	sh.workerName = ""
	sh.reclaims++
	c.updateEntryLocked(i, func(e *store.BatchEntry) { e.Status = store.StatusPending })
}

// handle runs one worker session: handshake, then the frame loop. Any
// protocol violation — a garbage frame, a wrong-version hello — drops the
// connection; the session's leases are reclaimed either way.
func (c *Coordinator) handle(conn net.Conn) {
	defer conn.Close()
	f, err := ReadFrame(conn)
	if err != nil || f.Type != FrameHello {
		return
	}
	if f.Hello.Proto != Version {
		return
	}
	c.mu.Lock()
	c.nextSess++
	s := &session{id: c.nextSess, name: f.Hello.Name, conn: conn}
	if s.name == "" {
		s.name = fmt.Sprintf("worker-%d", s.id)
	}
	c.sessions[s.id] = s
	batch := ""
	if c.man != nil {
		batch = c.man.ID
	}
	c.mu.Unlock()
	c.logf("fleet: worker %d (%s) connected from %s", s.id, s.name, conn.RemoteAddr())

	defer func() {
		c.mu.Lock()
		delete(c.sessions, s.id)
		for i := range c.shards {
			if c.shards[i].state == shardLeased && c.shards[i].worker == s.id {
				c.reclaimShardLocked(i, "connection lost")
			}
		}
		c.mu.Unlock()
		c.logf("fleet: worker %d (%s) disconnected", s.id, s.name)
	}()

	err = WriteFrame(conn, Frame{Type: FrameWelcome, Welcome: &Welcome{
		Proto:         Version,
		Worker:        s.id,
		Batch:         batch,
		TTLMS:         c.opt.TTL.Milliseconds(),
		RetryMS:       c.opt.Retry.Milliseconds(),
		SnapshotEvery: c.opt.SnapshotEvery,
		Profile:       c.opt.Profile,
	}})
	if err != nil {
		return
	}

	for {
		f, err := ReadFrame(conn)
		if err != nil {
			return // EOF, dead peer, or garbage: leases reclaimed by the defer
		}
		switch f.Type {
		case FrameLeaseRequest:
			if err := WriteFrame(conn, c.grant(s)); err != nil {
				return
			}
		case FrameRenew:
			c.renew(f.Renew.Lease)
		case FrameMerge:
			c.applyMerge(f.Merge)
		case FrameProgress:
			c.applyProgress(f.Progress)
		case FrameComplete:
			c.applyComplete(f.Complete)
		case FrameError:
			c.applyError(f.Error)
		default:
			return // coordinator-bound frames only; anything else is protocol abuse
		}
	}
}

// grant answers a lease request: the first pending shard, after answering
// any store-reusable shards in place.
func (c *Coordinator) grant(s *session) Frame {
	c.mu.Lock()
	defer c.mu.Unlock()
	for i := range c.shards {
		sh := &c.shards[i]
		if sh.state != shardPending {
			continue
		}
		// Store consult, exactly sched.runOne's: a stored exploration that
		// covers the request resolves the shard as reused without leasing;
		// a shorter one becomes the lease's resume snapshot.
		if sh.resume == nil && c.opt.Store != nil && c.keys[i] != "" {
			if rec, ok := c.opt.Store.Explored(c.keys[i]); ok {
				if snap, err := c.opt.Store.LoadCampaign(rec.Campaign); err == nil {
					if c.specs[i].TimeBudget == 0 && snap.Iters >= sched.WantedIters(c.specs[i].Iterations) {
						c.reuseShardLocked(i, rec, snap)
						continue
					}
					sh.resume = snap
				}
			}
		}
		sh.gen++
		sh.state = shardLeased
		sh.leaseID = fmt.Sprintf("shard%d.g%d", i, sh.gen)
		sh.worker = s.id
		sh.workerName = s.name
		sh.deadline = time.Now().Add(c.opt.TTL)
		if c.opt.Store != nil && c.keys[i] != "" {
			sh.campName = store.CampaignName(c.specs[i].DisplayLabel(), c.keys[i])
			c.updateEntryLocked(i, func(e *store.BatchEntry) {
				e.Status = store.StatusRunning
				e.Campaign = sh.campName
			})
		}
		lease := &Lease{
			Status:  LeaseGranted,
			ID:      sh.leaseID,
			Shard:   i,
			Spec:    &c.wire[i],
			TTLMS:   c.opt.TTL.Milliseconds(),
			RetryMS: c.opt.Retry.Milliseconds(),
		}
		if sh.resume != nil {
			lease.Snapshot = sh.resume
			// The live status tracker sees resumed coverage up front; the
			// worker's journal will then only re-ship what its own
			// iterations add.
			c.mergeSnapshotCovLocked(sh.camp.Target, sh.resume)
		}
		c.logf("fleet: leased shard %d (%s) to worker %d (%s) as %s",
			i, sh.camp.Label, s.id, s.name, sh.leaseID)
		return Frame{Type: FrameLease, Lease: lease}
	}
	if c.resolved == len(c.shards) {
		return Frame{Type: FrameLease, Lease: &Lease{Status: LeaseDrained}}
	}
	return Frame{Type: FrameLease, Lease: &Lease{Status: LeaseWait, RetryMS: c.opt.Retry.Milliseconds()}}
}

// findLocked resolves a lease ID to its shard index, or -1 for stale or
// unknown leases.
func (c *Coordinator) findLocked(leaseID string) int {
	if leaseID == "" {
		return -1
	}
	for i := range c.shards {
		if c.shards[i].state == shardLeased && c.shards[i].leaseID == leaseID {
			return i
		}
	}
	return -1
}

func (c *Coordinator) renew(leaseID string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if i := c.findLocked(leaseID); i >= 0 {
		c.shards[i].deadline = time.Now().Add(c.opt.TTL)
	}
}

// applyMerge folds a streamed iteration delta into the live status
// trackers. Stale leases are discarded; and because deltas are set unions,
// replays from a reclaimed-then-re-leased shard cannot double-count.
func (c *Coordinator) applyMerge(m *Merge) {
	c.mu.Lock()
	defer c.mu.Unlock()
	i := c.findLocked(m.Lease)
	if i < 0 {
		return
	}
	sh := &c.shards[i]
	sh.deadline = time.Now().Add(c.opt.TTL)
	sh.iters = m.Iters
	sh.errCount += len(m.Errors)
	c.statusTrackerLocked(sh.camp.Target).ApplyDelta(m.Delta)
}

// applyProgress checkpoints a shard: the snapshot becomes the store
// checkpoint and the reclaim-resume point.
func (c *Coordinator) applyProgress(p *Progress) {
	if p.Snapshot == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	i := c.findLocked(p.Lease)
	if i < 0 {
		return
	}
	sh := &c.shards[i]
	sh.deadline = time.Now().Add(c.opt.TTL)
	sh.iters = p.Iters
	sh.resume = p.Snapshot
	if c.opt.Store != nil && sh.campName != "" {
		c.opt.Store.SaveCampaign(sh.campName, p.Snapshot)
	}
}

func (c *Coordinator) applyComplete(cp *Complete) {
	if cp.Snapshot == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if i := c.findLocked(cp.Lease); i >= 0 {
		c.completeShardLocked(i, cp.Snapshot)
		// Fold after resolving the shard: stale leases (reclaimed shards
		// whose first holder reports late) are discarded above, so a
		// re-leased shard's bins land exactly once.
		c.prof.AddReport(cp.Profile)
	}
}

func (c *Coordinator) applyError(e *ErrorReport) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if i := c.findLocked(e.Lease); i >= 0 {
		c.failShardLocked(i, errors.New(e.Msg))
	}
}

// Wait blocks until every shard is resolved and returns the merged report,
// built from the per-shard final snapshots in spec order via
// sched.BuildReport — the identical merge sched.Run performs, which is what
// pins fleet == single-process equality.
func (c *Coordinator) Wait() *sched.Report {
	<-c.done
	c.mu.Lock()
	defer c.mu.Unlock()
	campaigns := make([]sched.Campaign, len(c.shards))
	maxWorkers := c.nextSess
	for i := range c.shards {
		campaigns[i] = c.shards[i].camp
	}
	rep := sched.BuildReport(campaigns, maxWorkers)
	rep.Elapsed = time.Since(c.start)
	if c.man != nil {
		rep.BatchID = c.man.ID
	}
	rep.Profile = c.prof.Report()
	return rep
}

// Done exposes the batch-drained signal.
func (c *Coordinator) Done() <-chan struct{} { return c.done }

// ServeStatus answers every connection on ln with one plain-text status
// dump and closes it — `nc host port` is the whole client.
func (c *Coordinator) ServeStatus(ln net.Listener) error {
	c.lnMu.Lock()
	c.statusLn = ln
	c.lnMu.Unlock()
	go func() {
		<-c.done
		// Give a final status readout a grace window? No: drained fleets
		// report through Wait; the endpoint dies with the batch.
		ln.Close()
	}()
	for {
		conn, err := ln.Accept()
		if err != nil {
			select {
			case <-c.done:
				return nil
			default:
				return err
			}
		}
		go func(conn net.Conn) {
			defer conn.Close()
			io.WriteString(conn, c.StatusText())
		}(conn)
	}
}

// StatusText renders the fleet's live state: per-shard lease state, live
// coverage counters per target, and worker liveness.
func (c *Coordinator) StatusText() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	var b []byte
	app := func(format string, args ...any) { b = fmt.Appendf(b, format, args...) }
	batch := "(none)"
	if c.man != nil {
		batch = c.man.ID
	}
	app("fleet batch %s: %d/%d shards resolved, up %s\n",
		batch, c.resolved, len(c.shards), time.Since(c.start).Round(time.Second))
	if prof := c.prof.Report(); len(prof) > 0 {
		app("%s\n", prof.Line(6))
	}
	app("\nshards:\n")
	for i := range c.shards {
		sh := &c.shards[i]
		line := fmt.Sprintf("  %-3d %-28s %-8s iters=%-5d errors=%-3d", i, sh.camp.Label, sh.state, sh.iters, sh.errCount)
		switch {
		case sh.state == shardLeased:
			line += fmt.Sprintf(" lease=%s worker=%d(%s) deadline=%s",
				sh.leaseID, sh.worker, sh.workerName, time.Until(sh.deadline).Round(time.Millisecond))
		case sh.state == shardDone && sh.camp.Reused:
			line += " (store)"
		case sh.state == shardFailed:
			line += fmt.Sprintf(" err=%v", sh.camp.Err)
		}
		if sh.reclaims > 0 {
			line += fmt.Sprintf(" reclaims=%d", sh.reclaims)
		}
		app("%s\n", line)
	}
	targets := make([]string, 0, len(c.cov))
	for name := range c.cov {
		targets = append(targets, name)
	}
	sort.Strings(targets)
	app("\ncoverage:\n")
	for _, name := range targets {
		app("  %-12s %d branches, %d functions\n", name, c.cov[name].Count(), len(c.cov[name].Funcs()))
	}
	ids := make([]int, 0, len(c.sessions))
	for id := range c.sessions {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	app("\nworkers: %d connected\n", len(ids))
	for _, id := range ids {
		s := c.sessions[id]
		held := 0
		for i := range c.shards {
			if c.shards[i].state == shardLeased && c.shards[i].worker == id {
				held++
			}
		}
		app("  %-3d %-16s %s leases=%d\n", id, s.name, s.conn.RemoteAddr(), held)
	}
	return string(b)
}
