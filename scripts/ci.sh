#!/usr/bin/env bash
# Tier-1 verification: what CI runs and what every PR must keep green.
# The go build step alone would have caught the seed's missing-package
# regression (7 of 10 packages failed to compile); vet and the full test
# suite catch the rest.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== go build ./... =="
go build ./...

echo "== go vet ./... =="
go vet ./...

echo "== go build compi-target =="
BIN_DIR="$(mktemp -d)"
trap 'rm -rf "$BIN_DIR"' EXIT
go build -o "$BIN_DIR/compi-target" ./cmd/compi-target
# The cross-process conformance suite drives this binary; exporting the
# path keeps the test from rebuilding it per package run.
export COMPI_TARGET_BIN="$BIN_DIR/compi-target"

echo "== go build compi =="
# Built once here; the kill-and-resume and fleet steps below all drive it.
go build -o "$BIN_DIR/compi" ./cmd/compi

echo "== CLI mode registry smoke (every mode's -h exits 0 and names the mode) =="
# main.go is dispatch only — mode logic lives in per-mode files. The line
# guard keeps it from silently re-accreting.
MAIN_LINES="$(wc -l < cmd/compi/main.go)"
if [ "$MAIN_LINES" -gt 150 ]; then
  echo "cmd/compi/main.go is $MAIN_LINES lines (max 150); move mode logic into per-mode files" >&2
  exit 1
fi
for m in $("$BIN_DIR/compi" help -names); do
  USAGE="$("$BIN_DIR/compi" "$m" -h 2>&1)" || {
    echo "compi $m -h exited non-zero" >&2; exit 1; }
  echo "$USAGE" | grep -qi -- "$m" || {
    echo "compi $m -h usage does not mention the mode:" >&2
    echo "$USAGE" >&2
    exit 1
  }
done

echo "== go test ./... =="
go test ./...

echo "== go test -race ./internal/proto =="
go test -race ./internal/proto

echo "== go test -race ./internal/target/... =="
go test -race ./internal/target/...

echo "== go test -race ./internal/solver ./internal/sched ./internal/coverage ./internal/store =="
go test -race ./internal/solver ./internal/sched ./internal/coverage ./internal/store

echo "== go test -race ./internal/binstat ./internal/expr =="
# The profiler's concurrent bin updates and the canonical-key memo are both
# lock-striped hot paths; the race detector is the test that matters.
go test -race ./internal/binstat ./internal/expr

echo "== go test -race ./internal/fleet =="
go test -race ./internal/fleet

echo "== go test -race ./internal/mpi =="
# The quiescent match grant protocol and the wait-for-graph detector span
# two mutexes (detector, mailbox) across all rank goroutines; the race
# detector is the test that matters for the schedule-space machinery.
go test -race ./internal/mpi

echo "== cross-process conformance (piped == in-process) =="
go test ./internal/proto -run 'TestCrossProcessConformance|TestScheduleConformance|TestSchedMixedConformance|TestSchedShardedServiceConformance|TestSnapshotConformance' -count=1

echo "== kill-and-resume determinism (compi -state / sched store) =="
# A campaign stopped at iteration k and resumed from its state file must
# equal the uninterrupted run; the sched half is covered by the store tests.
STATE_DIR="$(mktemp -d)"
"$BIN_DIR/compi" -target skeleton -iters 200 -seed 7 > "$STATE_DIR/full.out"
"$BIN_DIR/compi" -target skeleton -iters 80 -seed 7 -state "$STATE_DIR/state.json" > /dev/null
"$BIN_DIR/compi" -target skeleton -iters 200 -seed 7 -state "$STATE_DIR/state.json" > "$STATE_DIR/resumed.out"
if ! diff <(grep -E '^(iterations|covered|solver calls|error kinds)' "$STATE_DIR/full.out") \
          <(grep -E '^(iterations|covered|solver calls|error kinds)' "$STATE_DIR/resumed.out"); then
  echo "kill-and-resume run diverged from the uninterrupted run" >&2
  exit 1
fi
"$BIN_DIR/compi" sched -targets skeleton -seeds 3,4 -iters 60 -state-dir "$STATE_DIR/store" > /dev/null
"$BIN_DIR/compi" store -dir "$STATE_DIR/store" | grep -q 'solver cache' || {
  echo "compi store could not read back the state dir" >&2; exit 1; }
go test ./internal/sched -run 'TestStoreBatchResumeEqualsFresh|TestStoreCrossBatchReuse' -count=1
rm -rf "$STATE_DIR"

echo "== corpus minimization preserves resume (store minimize between batches) =="
# Minimizing the corpus between a short batch and its longer resume must not
# change the resumed trajectory: the engine writes the corpus but never reads
# it back into the exploration.
MIN_DIR="$(mktemp -d)"
"$BIN_DIR/compi" sched -targets skeleton -seeds 3,4 -iters 40 -state-dir "$MIN_DIR/store" > /dev/null
"$BIN_DIR/compi" store minimize -dir "$MIN_DIR/store" | grep -q '^minimized' || {
  echo "compi store minimize reported nothing" >&2; exit 1; }
"$BIN_DIR/compi" sched -targets skeleton -seeds 3,4 -iters 80 -state-dir "$MIN_DIR/store" > "$MIN_DIR/resumed.out"
"$BIN_DIR/compi" sched -targets skeleton -seeds 3,4 -iters 80 > "$MIN_DIR/fresh.out"
if ! diff <(grep -E 'branches covered|^  \[' "$MIN_DIR/resumed.out") \
          <(grep -E 'branches covered|^  \[' "$MIN_DIR/fresh.out"); then
  echo "resume after store minimize diverged from the storeless run" >&2
  exit 1
fi
rm -rf "$MIN_DIR"

echo "== compi report smoke (index queries on a two-target -schedules batch) =="
# The campaign index must answer "which setups found error X" and "coverage
# by target" without replaying: a batch spanning mworder and relay (both
# deadlocking in schedule space) feeds compi report, whose answers must name
# both targets; store reindex must restore the index after deletion.
REP_DIR="$(mktemp -d)"
"$BIN_DIR/compi" sched -targets mworder,relay -seeds 7 -iters 40 -np 3 -max-np 3 \
  -schedules -j 2 -state-dir "$REP_DIR/store" > /dev/null
"$BIN_DIR/compi" report -dir "$REP_DIR/store" > "$REP_DIR/report.out"
grep -q 'coverage by target' "$REP_DIR/report.out" || {
  echo "compi report printed no per-target rollup" >&2; exit 1; }
for tgt in mworder relay; do
  grep -q "$tgt" "$REP_DIR/report.out" || {
    echo "compi report missed target $tgt" >&2; exit 1; }
done
"$BIN_DIR/compi" report -dir "$REP_DIR/store" -error 'wait-for cycle' > "$REP_DIR/errors.out"
for tgt in mworder relay; do
  grep -q "$tgt" "$REP_DIR/errors.out" || {
    echo "compi report -error did not attribute the deadlock to $tgt" >&2; exit 1; }
done
rm "$REP_DIR/store/index.json"
"$BIN_DIR/compi" store reindex -dir "$REP_DIR/store" | grep -q '^reindexed' || {
  echo "compi store reindex failed on a deleted index" >&2; exit 1; }
"$BIN_DIR/compi" report -dir "$REP_DIR/store" -error 'wait-for cycle' | grep -q mworder || {
  echo "compi report broken after reindex" >&2; exit 1; }
rm -rf "$REP_DIR"

echo "== profiling determinism (compi drive -bin with and without -profile) =="
# Measurement must never perturb the campaign: a profiled drive of an
# out-of-process target must report the same iterations/coverage/solver/error
# summary as the unprofiled drive. (The core- and proto-layer versions of
# this pin are tests; this one exercises the actual CLI flag.)
PROF_DIR="$(mktemp -d)"
"$BIN_DIR/compi" drive -bin "$COMPI_TARGET_BIN" -iters 60 -seed 9 -- -target stencil \
  > "$PROF_DIR/plain.out"
"$BIN_DIR/compi" drive -bin "$COMPI_TARGET_BIN" -iters 60 -seed 9 -profile -- -target stencil \
  > "$PROF_DIR/profiled.out"
if ! diff <(grep -E '^(iterations|covered|solver calls|error kinds)' "$PROF_DIR/plain.out") \
          <(grep -E '^(iterations|covered|solver calls|error kinds)' "$PROF_DIR/profiled.out"); then
  echo "profiled drive diverged from the unprofiled drive" >&2
  exit 1
fi
grep -q '^bin ' "$PROF_DIR/profiled.out" || grep -qE '^execute|^solve' "$PROF_DIR/profiled.out" || {
  echo "profiled drive printed no profile table" >&2; exit 1; }
rm -rf "$PROF_DIR"

echo "== deadlock detection smoke (drive -schedules reports deadlock, not hang) =="
# The seeded match-order bug must classify as a deadlock with the wait-for
# cycle named — a hang report here means the detector regressed to the
# timeout watchdog.
SCHED_DIR="$(mktemp -d)"
"$BIN_DIR/compi" drive -bin "$COMPI_TARGET_BIN" -iters 60 -seed 7 -np 3 -max-np 3 \
  -schedules -- -target mworder > "$SCHED_DIR/drive.out"
grep -q '\[deadlock\] rank 0: deadlock: wait-for cycle 0->2->0' "$SCHED_DIR/drive.out" || {
  echo "drive -schedules did not report the named deadlock cycle" >&2; exit 1; }
if grep -q '\[hang\]' "$SCHED_DIR/drive.out"; then
  echo "drive -schedules reported a hang; deadlock detector regressed" >&2; exit 1
fi

echo "== schedule-space fingerprints (serve + 2 workers == sched -j2, -schedules) =="
# Match-order exploration must survive the fleet protocol unchanged: the
# coordinator/worker run and the in-process scheduler must report identical
# coverage and error lines (deadlock cycles included) with -schedules on.
"$BIN_DIR/compi" sched -targets mworder,relay -seeds 7 -iters 40 -np 3 -max-np 3 \
  -schedules -j 2 > "$SCHED_DIR/sched.out"
"$BIN_DIR/compi" serve -targets mworder,relay -seeds 7 -iters 40 -np 3 -max-np 3 \
  -schedules -addr-file "$SCHED_DIR/addr" > "$SCHED_DIR/fleet.out" 2> "$SCHED_DIR/fleet.err" &
SCHED_SERVE=$!
for _ in $(seq 1 100); do [ -s "$SCHED_DIR/addr" ] && break; sleep 0.1; done
[ -s "$SCHED_DIR/addr" ] || { echo "compi serve never published its address" >&2; exit 1; }
SCHED_ADDR="$(cat "$SCHED_DIR/addr")"
"$BIN_DIR/compi" work -connect "$SCHED_ADDR" -name ci-sw1 &
SW1=$!
"$BIN_DIR/compi" work -connect "$SCHED_ADDR" -name ci-sw2 &
SW2=$!
wait "$SW1" "$SW2" "$SCHED_SERVE"
if ! diff <(grep -E 'branches covered|^  \[' "$SCHED_DIR/fleet.out") \
          <(grep -E 'branches covered|^  \[' "$SCHED_DIR/sched.out"); then
  echo "-schedules fleet run diverged from the single-process scheduler" >&2
  exit 1
fi
rm -rf "$SCHED_DIR"

echo "== fleet determinism (serve + 2 workers == sched -j2) =="
# A coordinator leasing shards to two worker processes must land on the
# same per-target rollups and error lines as the in-process scheduler.
FLEET_DIR="$(mktemp -d)"
"$BIN_DIR/compi" serve -targets skeleton,stencil -seeds 5,6 -iters 40 \
  -addr-file "$FLEET_DIR/addr" > "$FLEET_DIR/fleet.out" 2> "$FLEET_DIR/fleet.err" &
SERVE_PID=$!
for _ in $(seq 1 100); do [ -s "$FLEET_DIR/addr" ] && break; sleep 0.1; done
[ -s "$FLEET_DIR/addr" ] || { echo "compi serve never published its address" >&2; exit 1; }
ADDR="$(cat "$FLEET_DIR/addr")"
"$BIN_DIR/compi" work -connect "$ADDR" -name ci-w1 &
W1=$!
"$BIN_DIR/compi" work -connect "$ADDR" -name ci-w2 &
W2=$!
wait "$W1" "$W2" "$SERVE_PID"
"$BIN_DIR/compi" sched -targets skeleton,stencil -seeds 5,6 -iters 40 -j 2 > "$FLEET_DIR/sched.out"
if ! diff <(grep -E 'branches covered|^  \[' "$FLEET_DIR/fleet.out") \
          <(grep -E 'branches covered|^  \[' "$FLEET_DIR/sched.out"); then
  echo "fleet run diverged from the single-process scheduler" >&2
  exit 1
fi
rm -rf "$FLEET_DIR"

echo "== benchmarks (sched speedup, solver cache, warm resume, fleet merge delta) =="
BENCH_OUT="$(mktemp)"
go test -run '^$' \
  -bench 'BenchmarkSchedSpeedup|BenchmarkSolverCache|BenchmarkWarmResume|BenchmarkFleetMergeDelta' \
  -benchtime 5x . | tee "$BENCH_OUT"
# Persist the trajectory: one JSON object per benchmark line, value keyed by
# its unit (ns/op, bytes/frame, hit/call, ...).
{
  echo '['
  awk '/^Benchmark/ {
    printf "%s  {\"name\":\"%s\",\"n\":%s", sep, $1, $2
    for (i = 3; i < NF; i += 2) printf ",\"%s\":%s", $(i+1), $i
    printf "}"
    sep = ",\n"
  } END { print "" }' "$BENCH_OUT"
  echo ']'
} > BENCH_fleet.json
rm -f "$BENCH_OUT"
echo "wrote BENCH_fleet.json"

echo "== engine throughput trajectory (BENCH_engine.json) =="
# Iterations per second per core on the paper's two headline targets, with
# profiling off and on (the pair doubles as the disabled-profiler overhead
# pin). compi-bench appends to the committed trajectory file and prints each
# metric's delta against the previous CI run.
go build -o "$BIN_DIR/compi-bench" ./cmd/compi-bench
go test -run '^$' -bench 'BenchmarkEngine' -benchtime 5x . \
  | "$BIN_DIR/compi-bench" -out BENCH_engine.json
echo "wrote BENCH_engine.json"

echo "== store service trajectory (BENCH_store.json) =="
# Index query latency (the compi report read path) and corpus-minimization
# throughput, tracked run-over-run like the engine numbers.
go test -run '^$' -bench 'BenchmarkStoreQuery|BenchmarkMinimize' -benchtime 5x . \
  | "$BIN_DIR/compi-bench" -out BENCH_store.json
echo "wrote BENCH_store.json"

echo "CI green."
