#!/usr/bin/env bash
# Tier-1 verification: what CI runs and what every PR must keep green.
# The go build step alone would have caught the seed's missing-package
# regression (7 of 10 packages failed to compile); vet and the full test
# suite catch the rest.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== go build ./... =="
go build ./...

echo "== go vet ./... =="
go vet ./...

echo "== go build compi-target =="
BIN_DIR="$(mktemp -d)"
trap 'rm -rf "$BIN_DIR"' EXIT
go build -o "$BIN_DIR/compi-target" ./cmd/compi-target
# The cross-process conformance suite drives this binary; exporting the
# path keeps the test from rebuilding it per package run.
export COMPI_TARGET_BIN="$BIN_DIR/compi-target"

echo "== go test ./... =="
go test ./...

echo "== go test -race ./internal/proto =="
go test -race ./internal/proto

echo "== go test -race ./internal/target/... =="
go test -race ./internal/target/...

echo "== go test -race ./internal/solver ./internal/sched ./internal/coverage ./internal/store =="
go test -race ./internal/solver ./internal/sched ./internal/coverage ./internal/store

echo "== cross-process conformance (piped == in-process) =="
go test ./internal/proto -run 'TestCrossProcessConformance|TestSchedMixedConformance|TestSchedShardedServiceConformance|TestSnapshotConformance' -count=1

echo "== kill-and-resume determinism (compi -state / sched store) =="
# A campaign stopped at iteration k and resumed from its state file must
# equal the uninterrupted run; the sched half is covered by the store tests.
STATE_DIR="$(mktemp -d)"
go build -o "$BIN_DIR/compi" ./cmd/compi
"$BIN_DIR/compi" -target skeleton -iters 200 -seed 7 > "$STATE_DIR/full.out"
"$BIN_DIR/compi" -target skeleton -iters 80 -seed 7 -state "$STATE_DIR/state.json" > /dev/null
"$BIN_DIR/compi" -target skeleton -iters 200 -seed 7 -state "$STATE_DIR/state.json" > "$STATE_DIR/resumed.out"
if ! diff <(grep -E '^(iterations|covered|solver calls|error kinds)' "$STATE_DIR/full.out") \
          <(grep -E '^(iterations|covered|solver calls|error kinds)' "$STATE_DIR/resumed.out"); then
  echo "kill-and-resume run diverged from the uninterrupted run" >&2
  exit 1
fi
"$BIN_DIR/compi" sched -targets skeleton -seeds 3,4 -iters 60 -state-dir "$STATE_DIR/store" > /dev/null
"$BIN_DIR/compi" store -dir "$STATE_DIR/store" | grep -q 'solver cache' || {
  echo "compi store could not read back the state dir" >&2; exit 1; }
go test ./internal/sched -run 'TestStoreBatchResumeEqualsFresh|TestStoreCrossBatchReuse' -count=1
rm -rf "$STATE_DIR"

echo "== solver cache benchmarks (cold vs warm) =="
go test -run '^$' -bench 'BenchmarkSolverCache|BenchmarkWarmResume' -benchtime 5x .

echo "CI green."
