#!/usr/bin/env bash
# Tier-1 verification: what CI runs and what every PR must keep green.
# The go build step alone would have caught the seed's missing-package
# regression (7 of 10 packages failed to compile); vet and the full test
# suite catch the rest.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== go build ./... =="
go build ./...

echo "== go vet ./... =="
go vet ./...

echo "== go build compi-target =="
BIN_DIR="$(mktemp -d)"
trap 'rm -rf "$BIN_DIR"' EXIT
go build -o "$BIN_DIR/compi-target" ./cmd/compi-target
# The cross-process conformance suite drives this binary; exporting the
# path keeps the test from rebuilding it per package run.
export COMPI_TARGET_BIN="$BIN_DIR/compi-target"

echo "== go test ./... =="
go test ./...

echo "== go test -race ./internal/proto =="
go test -race ./internal/proto

echo "== go test -race ./internal/target/... =="
go test -race ./internal/target/...

echo "== go test -race ./internal/solver ./internal/sched ./internal/coverage =="
go test -race ./internal/solver ./internal/sched ./internal/coverage

echo "== cross-process conformance (piped == in-process) =="
go test ./internal/proto -run 'TestCrossProcessConformance|TestSchedMixedConformance|TestSchedShardedServiceConformance' -count=1

echo "== solver cache benchmark (cold vs warm) =="
go test -run '^$' -bench BenchmarkSolverCache -benchtime 5x .

echo "CI green."
