#!/usr/bin/env bash
# Tier-1 verification: what CI runs and what every PR must keep green.
# The go build step alone would have caught the seed's missing-package
# regression (7 of 10 packages failed to compile); vet and the full test
# suite catch the rest.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== go build ./... =="
go build ./...

echo "== go vet ./... =="
go vet ./...

echo "== go test ./... =="
go test ./...

echo "== go test -race ./internal/target/... =="
go test -race ./internal/target/...

echo "== go test -race ./internal/sched ./internal/coverage =="
go test -race ./internal/sched ./internal/coverage

echo "CI green."
