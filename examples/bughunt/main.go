// bughunt: reproducing the paper's SUSY-HMC bug hunt (§VI-A).
//
// The mini SUSY-HMC ships with the four bugs COMPI found in the real code:
// three wrong-malloc segfaults and a division by zero that only manifests
// when the job runs with exactly 2·nsrc processes (2 or 4 for small nsrc —
// never 1 or 3). This example hunts them the way a developer would: test,
// triage the crash, apply the fix, keep testing.
//
//	go run ./examples/bughunt
package main

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/target"
	"repro/internal/targets/susy"
)

func main() {
	prog, _ := target.Lookup("susy-hmc")
	// The fix state is local and rides on each round's campaign parameters.
	var applied susy.Fixes

	fixes := []struct {
		name  string
		apply func()
		done  func() bool
	}{
		{"setup_rhmc wrong malloc", func() { applied.RHMC = true }, func() bool { return applied.RHMC }},
		{"ploop wrong malloc", func() { applied.Ploop = true }, func() bool { return applied.Ploop }},
		{"congrad wrong malloc", func() { applied.Congrad = true }, func() bool { return applied.Congrad }},
		{"update_h divide-by-zero", func() { applied.DivZero = true }, func() bool { return applied.DivZero }},
	}

	for round := 1; ; round++ {
		res := core.NewEngine(core.Config{
			Program:    prog,
			Params:     applied.Params(),
			Iterations: 150,
			Reduction:  true,
			Framework:  true,
			Seed:       int64(round * 37),
			DFSPhase:   30,
			RunTimeout: 15 * time.Second,
		}).Run()

		var crash *core.ErrorRecord
		for i, rec := range res.Errors {
			if strings.Contains(rec.Msg, "out of range") ||
				strings.Contains(rec.Msg, "divide by zero") {
				crash = &res.Errors[i]
				break
			}
		}
		if crash == nil {
			fmt.Printf("round %d: no crashes left — all bugs fixed\n", round)
			break
		}
		fmt.Printf("round %d: crash at iteration %d on %d processes\n",
			round, crash.Iter, crash.NProcs)
		fmt.Printf("  %s\n", crash.Msg)
		fmt.Printf("  error-inducing inputs: %v\n", crash.Inputs)

		// Triage: the first still-live bug matching the signature.
		for _, f := range fixes {
			if f.done() {
				continue
			}
			isDiv := strings.Contains(crash.Msg, "divide by zero")
			if isDiv != (f.name == "update_h divide-by-zero") {
				continue
			}
			fmt.Printf("  -> developer fixes: %s\n\n", f.name)
			f.apply()
			break
		}
		if round > 10 {
			fmt.Println("giving up")
			break
		}
	}
}
