// Quickstart: concolic testing of the paper's running example (Figure 2).
//
// The skeleton program reads two inputs, sanity-checks them, branches on the
// MPI rank, and hides a bug behind x == 100. COMPI finds the bug and reaches
// full branch coverage in well under a hundred test iterations — including
// the branches that need a different focus process (y >= 100 on rank != 0)
// and a different process count (nprocs < 4).
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/mpi"
	"repro/internal/target"
	_ "repro/internal/targets/skeleton"
)

func main() {
	prog, _ := target.Lookup("skeleton")

	eng := core.NewEngine(core.Config{
		Program:    prog,
		Iterations: 100,
		Reduction:  true,
		Framework:  true,
		Seed:       1,
		RunTimeout: 10 * time.Second,
		Trace: func(it core.IterationStat) {
			marker := ""
			if it.Failed {
				marker = "  <- error-inducing input logged"
			}
			fmt.Printf("iter %3d: np=%d focus=%d covered=%2d/%d%s\n",
				it.Iter, it.NProcs, it.Focus, it.Covered, prog.TotalBranches(), marker)
		},
	})
	res := eng.Run()

	fmt.Printf("\ncovered %d of %d branches in %s\n",
		res.Coverage.Count(), prog.TotalBranches(), res.Elapsed.Round(time.Millisecond))
	for msg, recs := range res.DistinctErrors() {
		r := recs[0]
		if r.Status == mpi.StatusCrash || r.Status == mpi.StatusHang {
			fmt.Printf("bug: %s\n     first triggered at iteration %d with inputs %v on %d processes\n",
				msg, r.Iter, r.Inputs, r.NProcs)
		}
	}
}
