// capstudy: the effect of input capping (§IV-A, Figures 6 and 8).
//
// IMB-MPI1's dominant input is the iteration count N. Without a cap the
// solver is free to propose enormous values and every test execution slows
// to a crawl; with a cap the same coverage arrives in a fraction of the
// time. This example runs the same campaign at three caps and prints the
// time/coverage trade-off.
//
//	go run ./examples/capstudy
package main

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/target"
	"repro/internal/targets/imb"
)

func main() {
	prog, _ := target.Lookup("imb-mpi1")

	fmt.Printf("%-8s %-12s %-10s\n", "cap", "time", "covered")
	for _, cap := range []int64{50, 100, 400, 1600} {
		res := core.NewEngine(core.Config{
			Program:    prog,
			Params:     imb.CapParams(cap),
			Iterations: 150,
			Reduction:  true,
			Framework:  true,
			Seed:       5,
			DFSPhase:   40,
			RunTimeout: 60 * time.Second,
		}).Run()
		fmt.Printf("%-8d %-12s %-10d\n",
			cap, res.Elapsed.Round(time.Millisecond), res.Coverage.Count())
	}
	fmt.Println("\nbigger caps buy little coverage for a lot of testing time —")
	fmt.Println("the reason COMPI exposes COMPI_int_with_limit to developers.")
}
