// hangdetect: exposing an infinite-loop bug via COMPI's per-test timeout.
//
// The stencil solver supports maxiter=0, meaning "iterate until
// convergence". With tol=0 that never happens — a non-terminating
// configuration the engine exposes by deriving maxiter=0 from the
// "run-to-convergence" branch and a zero tolerance from the symbolic
// convergence check, then reporting the stuck execution as a hang when the
// watchdog fires. The recorded triggering condition is replayed afterwards,
// the way the paper's authors handed bug conditions to the SUSY developers.
//
//	go run ./examples/hangdetect
package main

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/mpi"
	"repro/internal/target"
	"repro/internal/targets/stencil"
)

func main() {
	prog, _ := target.Lookup("stencil")

	fmt.Println("hunting for non-terminating configurations of the stencil solver...")
	var hang *core.ErrorRecord
	for round := 0; round < 8 && hang == nil; round++ {
		res := core.NewEngine(core.Config{
			Program:    prog,
			Params:     stencil.UnfixAll(), // hunt with both seeded bugs live
			Iterations: 150,
			Reduction:  true,
			Framework:  true,
			Seed:       int64(41 + 19*round),
			DFSPhase:   40,
			RunTimeout: 2 * time.Second, // the per-test timeout COMPI exposes
			MaxTicks:   1_500_000,
		}).Run()
		for i, rec := range res.Errors {
			if rec.Status == mpi.StatusHang {
				hang = &res.Errors[i]
				break
			}
		}
	}
	if hang == nil {
		fmt.Println("no hang found in this budget — rerun with more iterations")
		return
	}

	fmt.Printf("\nhang found at campaign iteration %d on %d processes\n", hang.Iter, hang.NProcs)
	fmt.Printf("triggering inputs: %v\n", hang.Inputs)

	fmt.Println("\nreplaying the triggering condition (developer reproduction)...")
	rerun := core.Replay(prog, *hang, 2*time.Second)
	fe, _ := rerun.FirstError()
	fmt.Printf("replay outcome: %v\n", fe.Status)

	fmt.Println("\napplying the developer fix and replaying again...")
	hang.Params = stencil.FixAll()
	rerun = core.Replay(prog, *hang, 5*time.Second)
	if fe, bad := rerun.FirstError(); bad {
		fmt.Printf("fixed program outcome: %v exit=%d (cleanly rejects the config)\n",
			fe.Status, fe.Exit)
	} else {
		fmt.Println("fixed program ran cleanly")
	}
}
