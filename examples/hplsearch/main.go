// hplsearch: why search strategy choice matters for MPI programs (Figure 4).
//
// Mini-HPL validates 28 input parameters before it will factorize anything.
// Only a systematic strategy (BoundedDFS) negates the sanity checks in
// execution order and gets through; random and CFG-directed search keep
// re-breaking the top of the chain and never reach the solver.
//
//	go run ./examples/hplsearch
package main

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/target"
	_ "repro/internal/targets/hpl"
)

func main() {
	prog, _ := target.Lookup("hpl")

	run := func(label string, strat func(e *core.Engine) core.Strategy) {
		eng := core.NewEngine(core.Config{
			Program:    prog,
			Iterations: 300,
			Reduction:  true,
			Framework:  true,
			Seed:       11,
			RunTimeout: 30 * time.Second,
		})
		eng.SetStrategy(strat(eng))
		res := eng.Run()
		_, reachedSolver := res.Coverage.Funcs()["pdgesv"]
		verdict := "stuck in the sanity check"
		if reachedSolver {
			verdict = "passed the sanity check and tested the solver"
		}
		fmt.Printf("%-26s %4d branches covered  (%s)\n",
			label, res.Coverage.Count(), verdict)
	}

	run("bounded-dfs (default)", func(e *core.Engine) core.Strategy {
		return core.NewBoundedDFS(core.Unbounded)
	})
	run("bounded-dfs (bound 100)", func(e *core.Engine) core.Strategy {
		return core.NewBoundedDFS(100)
	})
	run("random-branch", func(e *core.Engine) core.Strategy {
		return core.NewRandomBranch(11)
	})
	run("uniform-random", func(e *core.Engine) core.Strategy {
		return core.NewUniformRandom(11)
	})
	run("cfg-directed", func(e *core.Engine) core.Strategy {
		return core.NewCFG(prog, e.Coverage())
	})
}
