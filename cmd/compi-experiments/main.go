// Command compi-experiments regenerates the tables and figures of the COMPI
// paper's evaluation (§VI) on the Go reproduction.
//
// Usage:
//
//	compi-experiments                 # run everything at full scale
//	compi-experiments -exp fig4       # one experiment
//	compi-experiments -quick          # reduced budgets (CI-sized)
//	compi-experiments -list           # available experiment IDs
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/experiments"
)

func main() {
	var (
		exp      = flag.String("exp", "", "experiment ID (default: all); see -list")
		quick    = flag.Bool("quick", false, "use reduced budgets")
		list     = flag.Bool("list", false, "list experiment IDs")
		csvOut   = flag.Bool("csv", false, "emit CSV instead of aligned tables")
		stateDir = flag.String("state-dir", "", "campaign store directory: a killed run resumes its campaign batches instead of starting over")
	)
	flag.Parse()

	if *list {
		fmt.Println(strings.Join(experiments.IDs(), "\n"))
		return
	}
	scale := experiments.Full
	if *quick {
		scale = experiments.Quick
	}
	scale.StateDir = *stateDir
	if *exp == "" {
		experiments.RunAll(os.Stdout, scale)
		return
	}
	runner, ok := experiments.Registry()[*exp]
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown experiment %q; available: %s\n",
			*exp, strings.Join(experiments.IDs(), ", "))
		os.Exit(2)
	}
	for _, t := range runner(scale) {
		if *csvOut {
			if err := t.CSV(os.Stdout); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			continue
		}
		t.Fprint(os.Stdout)
	}
}
