// Command compi-audit checks a target program's static declarations against
// dynamic behavior: it runs a short COMPI campaign and reports, per function,
// how many declared branches were exercised and which conditional sites never
// fired in either direction. Target authors use it to find dead declarations
// and unreachable regions — the dynamic analogue of the reachable-branch
// methodology behind Table III.
//
// Usage:
//
//	compi-audit                       # audit every registered target
//	compi-audit -target hpl -iters 400
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/conc"
	"repro/internal/core"
	"repro/internal/target"
	_ "repro/internal/targets/hpl"
	_ "repro/internal/targets/imb"
	_ "repro/internal/targets/skeleton"
	"repro/internal/targets/stencil"
	"repro/internal/targets/susy"
)

func main() {
	var (
		name  = flag.String("target", "", "program to audit (default: all)")
		iters = flag.Int("iters", 250, "campaign iterations per program")
		seed  = flag.Int64("seed", 1, "campaign seed")
	)
	flag.Parse()
	// Audit the fixed programs: the seeded bugs would otherwise abort the
	// probe campaigns early.
	params := core.MergeParams(susy.FixAll(), stencil.FixAll())

	names := target.Names()
	if *name != "" {
		names = []string{*name}
	}
	exit := 0
	for _, n := range names {
		prog, ok := target.Lookup(n)
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown target %q\n", n)
			os.Exit(2)
		}
		if !audit(prog, params, *iters, *seed) {
			exit = 1
		}
	}
	os.Exit(exit)
}

// audit runs the campaign and prints the per-function report; it returns
// false when any function was never entered (a likely declaration bug).
func audit(prog *target.Program, params map[string]int64, iters int, seed int64) bool {
	res := core.NewEngine(core.Config{
		Program:    prog,
		Params:     params,
		Iterations: iters,
		Reduction:  true,
		Framework:  true,
		Seed:       seed,
		DFSPhase:   iters / 5,
		RunTimeout: 15 * time.Second,
	}).Run()

	fmt.Printf("== %s: %d/%d branches covered in %d iterations ==\n",
		prog.Name, res.Coverage.Count(), prog.TotalBranches(), len(res.Iterations))

	perFn := map[string][]target.CondDecl{}
	for _, c := range prog.Conds() {
		perFn[c.Func] = append(perFn[c.Func], c)
	}
	healthy := true
	for _, fn := range prog.Functions() {
		conds := perFn[fn]
		_, entered := res.Coverage.Funcs()[fn]
		covered, unexercised := 0, []string{}
		for _, c := range conds {
			t := res.Coverage.Covered(conc.Bit(c.ID, true))
			f := res.Coverage.Covered(conc.Bit(c.ID, false))
			if t {
				covered++
			}
			if f {
				covered++
			}
			if !t && !f {
				unexercised = append(unexercised, c.Label)
			}
		}
		marker := ""
		if !entered {
			marker = "  <- function never entered"
			healthy = false
		}
		fmt.Printf("  %-12s %3d/%3d branches%s\n", fn, covered, 2*len(conds), marker)
		for _, l := range unexercised {
			fmt.Printf("      never fired: %s\n", l)
		}
	}
	fmt.Println()
	return healthy
}
