// Command compi-bench maintains a benchmark trajectory file: it parses `go
// test -bench` output, appends one JSON object per benchmark line to a
// trajectory file (the same schema ci.sh's awk writes for BENCH_fleet.json:
// {"name":..., "n":..., "<unit>": value, ...}), and prints each metric's
// delta against the previous entry of the same benchmark — so a regression
// in engine throughput shows up as a signed percentage in the CI log, not as
// a profile diff someone has to remember to take.
//
// Usage:
//
//	go test -run '^$' -bench 'BenchmarkEngine' . | compi-bench -out BENCH_engine.json
//	compi-bench -out BENCH_engine.json bench.txt
//
// The trajectory file is a JSON array in append order; runs are separated by
// each benchmark's recurrence. The deltas compare against the most recent
// prior entry with the same name.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

// entry is one benchmark measurement. Metrics are keyed by their unit
// (ns/op, B/op, iters/s/core, ...), matching the BENCH_fleet.json schema.
type entry struct {
	Name    string
	N       int64
	Metrics map[string]float64
}

// MarshalJSON writes the flat {"name","n",unit:value} object with units in
// sorted order, so the file is deterministic given the measurements.
func (e entry) MarshalJSON() ([]byte, error) {
	var b strings.Builder
	b.WriteString("{\"name\":")
	name, _ := json.Marshal(e.Name)
	b.Write(name)
	fmt.Fprintf(&b, ",\"n\":%d", e.N)
	units := make([]string, 0, len(e.Metrics))
	for u := range e.Metrics {
		units = append(units, u)
	}
	sort.Strings(units)
	for _, u := range units {
		key, _ := json.Marshal(u)
		b.WriteString(",")
		b.Write(key)
		b.WriteString(":")
		b.WriteString(strconv.FormatFloat(e.Metrics[u], 'g', -1, 64))
	}
	b.WriteString("}")
	return []byte(b.String()), nil
}

func (e *entry) UnmarshalJSON(data []byte) error {
	raw := map[string]any{}
	if err := json.Unmarshal(data, &raw); err != nil {
		return err
	}
	e.Metrics = map[string]float64{}
	for k, v := range raw {
		switch k {
		case "name":
			s, ok := v.(string)
			if !ok {
				return fmt.Errorf("entry name is %T, not a string", v)
			}
			e.Name = s
		case "n":
			f, ok := v.(float64)
			if !ok {
				return fmt.Errorf("entry n is %T, not a number", v)
			}
			e.N = int64(f)
		default:
			if f, ok := v.(float64); ok {
				e.Metrics[k] = f
			}
		}
	}
	return nil
}

// parseBench extracts benchmark entries from `go test -bench` output. A
// benchmark line is NAME N, then (value unit) pairs:
//
//	BenchmarkEngineHPL/profile=off  2  8581890 ns/op  4661 iters/s/core ...
func parseBench(r io.Reader) ([]entry, error) {
	var out []entry
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	for sc.Scan() {
		f := strings.Fields(sc.Text())
		if len(f) < 4 || !strings.HasPrefix(f[0], "Benchmark") {
			continue
		}
		n, err := strconv.ParseInt(f[1], 10, 64)
		if err != nil {
			continue
		}
		e := entry{Name: f[0], N: n, Metrics: map[string]float64{}}
		for i := 2; i+1 < len(f); i += 2 {
			v, err := strconv.ParseFloat(f[i], 64)
			if err != nil {
				break
			}
			e.Metrics[f[i+1]] = v
		}
		if len(e.Metrics) > 0 {
			out = append(out, e)
		}
	}
	return out, sc.Err()
}

// loadTrajectory reads the existing trajectory file; a missing file is an
// empty trajectory, anything unreadable is an error (never silently dropped:
// overwriting a corrupt history would erase the record a human needs).
func loadTrajectory(path string) ([]entry, error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	var out []entry
	if err := json.Unmarshal(data, &out); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return out, nil
}

// lastOf returns the most recent entry named name, scanning backwards.
func lastOf(hist []entry, name string) (entry, bool) {
	for i := len(hist) - 1; i >= 0; i-- {
		if hist[i].Name == name {
			return hist[i], true
		}
	}
	return entry{}, false
}

// printDelta writes one line per metric: value, previous value, and signed
// percentage change.
func printDelta(w io.Writer, e entry, prev entry, found bool) {
	units := make([]string, 0, len(e.Metrics))
	for u := range e.Metrics {
		units = append(units, u)
	}
	sort.Strings(units)
	for _, u := range units {
		v := e.Metrics[u]
		if !found {
			fmt.Fprintf(w, "%-44s %-14s %14.6g  (no previous entry)\n", e.Name, u, v)
			continue
		}
		pv, ok := prev.Metrics[u]
		if !ok || pv == 0 {
			fmt.Fprintf(w, "%-44s %-14s %14.6g  (no previous value)\n", e.Name, u, v)
			continue
		}
		fmt.Fprintf(w, "%-44s %-14s %14.6g  prev %.6g  %+.1f%%\n",
			e.Name, u, v, pv, 100*(v-pv)/pv)
	}
}

func main() {
	out := flag.String("out", "", "trajectory file to append to (omit to only print deltas)")
	flag.Parse()

	in := io.Reader(os.Stdin)
	if flag.NArg() == 1 {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			fmt.Fprintf(os.Stderr, "compi-bench: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		in = f
	} else if flag.NArg() > 1 {
		fmt.Fprintln(os.Stderr, "compi-bench: at most one input file")
		os.Exit(2)
	}

	entries, err := parseBench(in)
	if err != nil {
		fmt.Fprintf(os.Stderr, "compi-bench: reading input: %v\n", err)
		os.Exit(1)
	}
	if len(entries) == 0 {
		fmt.Fprintln(os.Stderr, "compi-bench: no benchmark lines in input")
		os.Exit(1)
	}

	var hist []entry
	if *out != "" {
		hist, err = loadTrajectory(*out)
		if err != nil {
			fmt.Fprintf(os.Stderr, "compi-bench: %v\n", err)
			os.Exit(1)
		}
	}
	for _, e := range entries {
		prev, found := lastOf(hist, e.Name)
		printDelta(os.Stdout, e, prev, found)
	}
	if *out != "" {
		hist = append(hist, entries...)
		data, err := json.MarshalIndent(hist, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "compi-bench: %v\n", err)
			os.Exit(1)
		}
		tmp := *out + ".tmp"
		if err := os.WriteFile(tmp, append(data, '\n'), 0o644); err == nil {
			err = os.Rename(tmp, *out)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "compi-bench: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("appended %d entries to %s (%d total)\n", len(entries), *out, len(hist))
	}
}
