package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/spec"
	"repro/internal/target"
)

// replayMode re-executes one recorded failing input set deterministically,
// either from a spec file (`-spec failure.json`, the JSON shape `-emit`
// prints) or from flags. Exit code 1 means the replay reproduced a failure.
type replayMode struct {
	fs *flag.FlagSet

	specFile *string
	name     *string
	inputs   *string
	procs    *int
	focus    *int
	timeout  *time.Duration
	bugs     *bool
	emit     *bool
}

func newReplayMode() *replayMode {
	fs := newFlagSet("replay")
	m := &replayMode{fs: fs}
	m.specFile = fs.String("spec", "", "replay campaign spec file (JSON, as printed by -emit)")
	m.name = fs.String("target", "skeleton", "program under test")
	m.inputs = fs.String("inputs", "", `input set to replay, e.g. "x=100,y=50"`)
	m.procs = fs.Int("np", 8, "number of processes")
	m.focus = fs.Int("focus", 0, "focused rank of the recorded failure")
	m.timeout = fs.Duration("timeout", 30*time.Second, "per-execution watchdog")
	m.bugs = fs.Bool("bugs", false, "leave the seeded bugs live")
	m.emit = fs.Bool("emit", false, "print the canonical replay spec as JSON instead of executing it")
	return m
}

func (m *replayMode) Name() string { return "replay" }
func (m *replayMode) Synopsis() string {
	return "re-execute a recorded failing input set from a spec file or flags"
}
func (m *replayMode) Flags() *flag.FlagSet { return m.fs }

// Excluded maps the campaign-shaping flags replay has no use for: a replay
// is a single deterministic execution, not an exploration.
func (m *replayMode) Excluded() map[string]string {
	ex := map[string]string{}
	for _, name := range spec.CampaignFlagNames() {
		switch name {
		case "target", "np", "timeout", "bugs":
			continue // bound above with replay-specific meaning
		}
		ex[name] = "replay executes one recorded input set; exploration flags do not apply"
	}
	return ex
}

func (m *replayMode) Run(args []string) int {
	m.fs.Parse(args)

	var rc spec.Campaign
	if *m.specFile != "" {
		f, err := os.Open(*m.specFile)
		if err != nil {
			return fatalf("compi replay: %v", err)
		}
		rc, err = spec.Decode(f)
		f.Close()
		if err != nil {
			return fatalf("compi replay: %s: %v", *m.specFile, err)
		}
	} else {
		params := map[string]int64{}
		if !*m.bugs {
			params = fixParams()
		}
		rec := core.ErrorRecord{NProcs: *m.procs, Focus: *m.focus,
			Inputs: map[string]int64{}, Params: params}
		for _, kv := range strings.Split(*m.inputs, ",") {
			kv = strings.TrimSpace(kv)
			if kv == "" {
				continue
			}
			k, v, ok := strings.Cut(kv, "=")
			if !ok {
				return usagef("bad -inputs entry %q", kv)
			}
			n, err := strconv.ParseInt(v, 10, 64)
			if err != nil {
				return usagef("bad -inputs value %q: %v", kv, err)
			}
			rec.Inputs[k] = n
		}
		rc = spec.FromErrorRecord(*m.name, rec)
		rc.RunTimeout = *m.timeout
		if err := rc.Validate(); err != nil {
			return usagef("%v", err)
		}
	}

	prog, ok := target.Lookup(rc.Target)
	if !ok {
		return usagef("unknown target %q; available: %s",
			rc.Target, strings.Join(target.Names(), ", "))
	}

	if *m.emit {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rc); err != nil {
			return fatalf("compi replay: %v", err)
		}
		return 0
	}
	return replayCampaign(prog, rc, rc.RunTimeout)
}

// replayCampaign executes the replay campaign's recorded input set once and
// reports each rank's outcome; shared with `compi run -replay`.
func replayCampaign(prog *target.Program, rc spec.Campaign, timeout time.Duration) int {
	res := core.Replay(prog, rc.ErrorRecord(), timeout)
	for _, rr := range res.Ranks {
		fmt.Printf("rank %d: %v", rr.Rank, rr.Status)
		if rr.Err != nil {
			fmt.Printf("  %v", rr.Err)
		} else if rr.Exit != 0 {
			fmt.Printf("  exit=%d", rr.Exit)
		}
		fmt.Println()
	}
	if res.Failed() {
		return 1
	}
	return 0
}
