package main

import (
	"flag"
	"strings"
	"testing"

	"repro/internal/spec"
)

// TestCampaignFlagParity is the registry-walking parity test: every mode
// that shapes campaigns must bind every canonical campaign flag or exclude
// it with a reason string. This is what keeps "-schedules exists on sched
// but not drive"-style drift from coming back — adding a campaign flag to
// spec.CampaignFlagNames makes every mode account for it or fail here.
func TestCampaignFlagParity(t *testing.T) {
	sawCampaignMode := false
	for _, m := range modes() {
		cm, ok := m.(campaignMode)
		if !ok {
			continue
		}
		sawCampaignMode = true
		excluded := cm.Excluded()
		for _, name := range spec.CampaignFlagNames() {
			bound := cm.Flags().Lookup(name) != nil
			reason, hasReason := excluded[name]
			switch {
			case bound && hasReason:
				t.Errorf("%s: flag -%s both bound and excluded (%q)", m.Name(), name, reason)
			case !bound && !hasReason:
				t.Errorf("%s: campaign flag -%s neither bound nor excluded with a reason", m.Name(), name)
			case !bound && reason == "":
				t.Errorf("%s: flag -%s excluded without a reason", m.Name(), name)
			}
		}
		// Exclusions must only name canonical campaign flags — a stale entry
		// means the canonical list and the mode drifted apart.
		canon := map[string]bool{}
		for _, name := range spec.CampaignFlagNames() {
			canon[name] = true
		}
		for name := range excluded {
			if !canon[name] {
				t.Errorf("%s: excludes %q, which is not a campaign flag", m.Name(), name)
			}
		}
	}
	if !sawCampaignMode {
		t.Fatal("no campaign modes in the registry")
	}
}

// TestRegistryShape pins the registry's structural invariants: unique,
// well-formed names; FlagSets named "compi <mode>" so -h output mentions the
// mode; and the generated usage text listing every mode.
func TestRegistryShape(t *testing.T) {
	seen := map[string]bool{}
	usage := usageText()
	for _, m := range modes() {
		name := m.Name()
		if name == "" || strings.ContainsAny(name, " -") {
			t.Errorf("bad mode name %q", name)
		}
		if seen[name] {
			t.Errorf("duplicate mode %q", name)
		}
		seen[name] = true
		if m.Synopsis() == "" {
			t.Errorf("%s: empty synopsis", name)
		}
		if got, want := m.Flags().Name(), "compi "+name; got != want {
			t.Errorf("%s: FlagSet named %q, want %q", name, got, want)
		}
		if !strings.Contains(usage, name) {
			t.Errorf("usage text omits mode %q:\n%s", name, usage)
		}
	}
	// The default mode must exist: bare `compi -target x` dispatches to it.
	if !seen["run"] {
		t.Error("registry has no run mode")
	}
}

// TestModeFlagSetsErrorHandling: every mode's FlagSet uses ExitOnError, the
// contract behind the CI smoke loop (`compi <mode> -h` exits 0, bad flags
// exit 2).
func TestModeFlagSetsErrorHandling(t *testing.T) {
	for _, m := range modes() {
		if got := m.Flags().ErrorHandling(); got != flag.ExitOnError {
			t.Errorf("%s: flag error handling %v, want ExitOnError", m.Name(), got)
		}
	}
}
