package main

import (
	"flag"
	"os"

	"repro/internal/binstat"
	"repro/internal/sched"
	"repro/internal/spec"
)

// schedMode runs a grid of campaigns (every requested target × every seed,
// optionally sharded) concurrently through the parallel scheduler, with a
// merged per-target summary at the end.
type schedMode struct {
	fs     *flag.FlagSet
	binder *spec.FlagBinder

	workers  *int
	stateDir *string
	batchID  *string
	verbose  *bool
}

func newSchedMode() *schedMode {
	fs := newFlagSet("sched")
	m := &schedMode{fs: fs, binder: spec.Bind(fs, true, nil)}
	m.workers = fs.Int("j", 0, "concurrently running campaigns (0 = GOMAXPROCS)")
	m.stateDir = fs.String("state-dir", "", "campaign store directory: checkpoint campaigns, resume interrupted batches, reuse setups explored by prior batches")
	m.batchID = fs.String("batch", "", "batch manifest name in the store (default: derived from the spec list)")
	m.verbose = fs.Bool("v", false, "per-iteration trace")
	return m
}

func (m *schedMode) Name() string { return "sched" }
func (m *schedMode) Synopsis() string {
	return "run a campaign grid in-process through the parallel scheduler"
}
func (m *schedMode) Flags() *flag.FlagSet        { return m.fs }
func (m *schedMode) Excluded() map[string]string { return m.binder.Excluded() }

func (m *schedMode) Run(args []string) int {
	m.fs.Parse(args)
	cs, err := m.binder.Campaigns(fixParams())
	if err != nil {
		return usagef("%v", err)
	}

	opt := sched.Options{Workers: *m.workers, BatchID: *m.batchID}
	if m.binder.Profile() {
		opt.Profiler = binstat.New()
	}
	if *m.stateDir != "" {
		st := openStateDir(*m.stateDir)
		defer st.Close()
		opt.Store = st
	}
	if *m.verbose {
		opt.Trace = labelTrace()
	}
	sched.Run(toSpecs(cs), opt).WriteSummary(os.Stdout)
	return 0
}
