package main

import (
	"flag"
	"fmt"
)

// helpMode prints the registry-generated mode listing. -names emits bare
// mode names one per line, which the CI smoke loop walks.
type helpMode struct {
	fs    *flag.FlagSet
	names *bool
}

func newHelpMode() *helpMode {
	fs := newFlagSet("help")
	m := &helpMode{fs: fs}
	m.names = fs.Bool("names", false, "print registered mode names, one per line")
	return m
}

func (m *helpMode) Name() string           { return "help" }
func (m *helpMode) Synopsis() string       { return "list the registered modes" }
func (m *helpMode) Flags() *flag.FlagSet   { return m.fs }
func (m *helpMode) Run(args []string) int {
	m.fs.Parse(args)
	if *m.names {
		for _, mode := range modes() {
			fmt.Println(mode.Name())
		}
		return 0
	}
	fmt.Print(usageText())
	return 0
}
