package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/fleet"
	"repro/internal/spec"
)

// workMode is a fleet worker that leases shards from a `compi serve`
// coordinator until the batch drains or the coordinator goes away. It takes
// no campaign flags of its own: the specs arrive fully formed inside leases.
type workMode struct {
	fs *flag.FlagSet

	connect *string
	jobs    *int
	name    *string
	window  *time.Duration
	verbose *bool
	profile *bool
}

func newWorkMode() *workMode {
	fs := newFlagSet("work")
	m := &workMode{fs: fs}
	m.connect = fs.String("connect", "", "coordinator dispatch address (required)")
	m.jobs = fs.Int("j", 1, "parallel campaign slots")
	m.name = fs.String("name", "", "worker name in coordinator logs and status (default pid<n>)")
	m.window = fs.Duration("dial-window", 10*time.Second, "how long to retry the initial connection")
	m.verbose = fs.Bool("v", false, "log worker events to stderr")
	m.profile = fs.Bool("profile", false, "profile every leased engine and ship the per-shard reports to the coordinator")
	return m
}

func (m *workMode) Name() string { return "work" }
func (m *workMode) Synopsis() string {
	return "run campaign shards leased from a coordinator"
}
func (m *workMode) Flags() *flag.FlagSet { return m.fs }

// Excluded explains why the worker binds no campaign flags: the campaign
// specs arrive from the coordinator's leases, so shaping them locally would
// silently diverge from what the fleet agreed to run. -profile stays local
// (it shapes the worker's engines, not the campaigns) and is bound above.
func (m *workMode) Excluded() map[string]string {
	ex := map[string]string{}
	for _, name := range spec.CampaignFlagNames() {
		if name == "profile" {
			continue // bound locally: profiling is a worker decision
		}
		ex[name] = "campaign specs arrive from the coordinator's leases"
	}
	return ex
}

func (m *workMode) Run(args []string) int {
	m.fs.Parse(args)
	if *m.connect == "" {
		return usagef("compi work: -connect is required")
	}
	opt := fleet.WorkerOptions{Name: *m.name, Jobs: *m.jobs,
		DialWindow: *m.window, Profile: *m.profile}
	if *m.verbose {
		opt.Logf = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		}
	}
	if err := fleet.Work(*m.connect, opt); err != nil {
		return fatalf("compi work: %v", err)
	}
	return 0
}
