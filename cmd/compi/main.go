// Command compi runs a COMPI testing campaign against one of the bundled
// target programs.
//
// Usage:
//
//	compi -target hpl -iters 500
//	compi -target susy-hmc -bugs            # leave the seeded bugs live
//	compi -target imb-mpi1 -strategy random-branch
//	compi -list
//	compi targets                           # declaration summary per target
//	compi targets --json                    # full static manifests
//	compi sched -j 8 -seeds 1,2,3,4         # parallel campaign grid
//	compi sched -targets hpl -shard 8 -j 8  # one campaign split into 8 shards
//	compi drive -bin ./compi-target -- -target stencil
//	                                        # drive an out-of-process target
//	                                        # over the pipe protocol
//	compi drive -bin ./compi-target -shard 4 -- -target stencil
//	                                        # sharded out-of-process campaign,
//	                                        # one target process per shard
//	compi serve -state-dir ./state -listen 127.0.0.1:7045
//	                                        # coordinator: lease campaign
//	                                        # shards to workers
//	compi work -connect 127.0.0.1:7045 -j 4 # worker: run leased shards
//	compi store compact -dir ./state        # drop superseded snapshots
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/binstat"
	"repro/internal/core"
	"repro/internal/fleet"
	"repro/internal/proto"
	"repro/internal/sched"
	"repro/internal/solver"
	"repro/internal/store"
	"repro/internal/target"
	_ "repro/internal/targets/hpl"
	_ "repro/internal/targets/imb"
	_ "repro/internal/targets/mworder"
	_ "repro/internal/targets/relay"
	_ "repro/internal/targets/skeleton"
	"repro/internal/targets/stencil"
	"repro/internal/targets/susy"
)

func main() {
	if len(os.Args) > 1 && os.Args[1] == "targets" {
		runTargets(os.Args[2:])
		return
	}
	if len(os.Args) > 1 && os.Args[1] == "sched" {
		runSched(os.Args[2:])
		return
	}
	if len(os.Args) > 1 && os.Args[1] == "drive" {
		runDrive(os.Args[2:])
		return
	}
	if len(os.Args) > 1 && os.Args[1] == "store" {
		runStore(os.Args[2:])
		return
	}
	if len(os.Args) > 1 && os.Args[1] == "serve" {
		runServe(os.Args[2:])
		return
	}
	if len(os.Args) > 1 && os.Args[1] == "work" {
		runWork(os.Args[2:])
		return
	}
	var (
		name      = flag.String("target", "skeleton", "program under test")
		iters     = flag.Int("iters", 200, "test iterations (program executions)")
		seed      = flag.Int64("seed", 1, "campaign seed")
		strategy  = flag.String("strategy", "compi", "compi | bounded-dfs | random-branch | uniform-random | cfg")
		bound     = flag.Int("bound", 0, "explicit DFS depth bound (0 = derive)")
		dfsPhase  = flag.Int("dfs-phase", 50, "pure-DFS executions before BoundedDFS")
		procs     = flag.Int("np", 8, "initial number of processes")
		maxProcs  = flag.Int("max-np", 16, "process-count cap")
		noRed     = flag.Bool("no-reduction", false, "disable constraint set reduction")
		oneWay    = flag.Bool("one-way", false, "disable two-way instrumentation")
		noFwk     = flag.Bool("no-framework", false, "disable the MPI framework")
		random    = flag.Bool("random", false, "pure random testing baseline")
		schedules = flag.Bool("schedules", false, "explore wildcard-receive match orders (schedule-space testing with deadlock detection)")
		bugs      = flag.Bool("bugs", false, "leave the seeded SUSY-HMC bugs live")
		budget    = flag.Duration("budget", 0, "wall-clock budget (0 = none)")
		timeout   = flag.Duration("timeout", 30*time.Second, "per-execution watchdog")
		verbose   = flag.Bool("v", false, "per-iteration trace")
		list      = flag.Bool("list", false, "list targets")
		replay    = flag.String("replay", "", `replay one input set, e.g. "x=100,y=50" (skips the campaign)`)
		state     = flag.String("state", "", "campaign state file: loaded if present, saved after the run")
		errlog    = flag.String("errlog", "", "append error-inducing inputs as JSON lines to this file")
		profile   = flag.Bool("profile", false, "measure the iteration loop's phase bins and print the table after the summary")
	)
	flag.Parse()

	if *list {
		fmt.Println(strings.Join(target.Names(), "\n"))
		return
	}
	prog, ok := target.Lookup(*name)
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown target %q; available: %s\n",
			*name, strings.Join(target.Names(), ", "))
		os.Exit(2)
	}
	params := map[string]int64{}
	if !*bugs {
		params = core.MergeParams(susy.FixAll(), stencil.FixAll())
	}

	if *replay != "" {
		rec := core.ErrorRecord{NProcs: *procs, Focus: 0,
			Inputs: map[string]int64{}, Params: params}
		for _, kv := range strings.Split(*replay, ",") {
			k, v, ok := strings.Cut(strings.TrimSpace(kv), "=")
			if !ok {
				fmt.Fprintf(os.Stderr, "bad -replay entry %q\n", kv)
				os.Exit(2)
			}
			n, err := strconv.ParseInt(v, 10, 64)
			if err != nil {
				fmt.Fprintf(os.Stderr, "bad -replay value %q: %v\n", kv, err)
				os.Exit(2)
			}
			rec.Inputs[k] = n
		}
		res := core.Replay(prog, rec, *timeout)
		for _, rr := range res.Ranks {
			fmt.Printf("rank %d: %v", rr.Rank, rr.Status)
			if rr.Err != nil {
				fmt.Printf("  %v", rr.Err)
			} else if rr.Exit != 0 {
				fmt.Printf("  exit=%d", rr.Exit)
			}
			fmt.Println()
		}
		if res.Failed() {
			os.Exit(1)
		}
		return
	}

	cfg := core.Config{
		Program:      prog,
		Params:       params,
		Iterations:   *iters,
		TimeBudget:   *budget,
		InitialProcs: *procs,
		MaxProcs:     *maxProcs,
		Reduction:    !*noRed,
		DepthBound:   *bound,
		DFSPhase:     *dfsPhase,
		OneWay:       *oneWay,
		Framework:    !*noFwk,
		PureRandom:   *random,
		Schedules:    *schedules,
		Seed:         *seed,
		RunTimeout:   *timeout,
	}
	if *profile {
		cfg.Profiler = binstat.New()
	}
	if *errlog != "" {
		f, err := os.OpenFile(*errlog, os.O_CREATE|os.O_APPEND|os.O_WRONLY, 0o644)
		if err != nil {
			fmt.Fprintf(os.Stderr, "opening %s: %v\n", *errlog, err)
			os.Exit(1)
		}
		defer f.Close()
		cfg.ErrorLog = f
	}
	if *verbose {
		cfg.Trace = func(it core.IterationStat) {
			fmt.Printf("iter %4d  np=%-2d focus=%-2d covered=%-5d set=%-5d %s\n",
				it.Iter, it.NProcs, it.Focus, it.Covered, it.PathLen,
				map[bool]string{true: "FAILED", false: ""}[it.Failed])
		}
	}
	eng := core.NewEngine(cfg)
	switch *strategy {
	case "compi":
		// Default two-phase DFS; already configured.
	case "bounded-dfs":
		b := *bound
		if b == 0 {
			b = core.Unbounded
		}
		eng.SetStrategy(core.NewBoundedDFS(b))
	case "random-branch":
		eng.SetStrategy(core.NewRandomBranch(*seed))
	case "uniform-random":
		eng.SetStrategy(core.NewUniformRandom(*seed))
	case "cfg":
		eng.SetStrategy(core.NewCFG(prog, eng.Coverage()))
	default:
		fmt.Fprintf(os.Stderr, "unknown strategy %q\n", *strategy)
		os.Exit(2)
	}

	if *state != "" {
		if f, err := os.Open(*state); err == nil {
			snap, err := core.LoadSnapshot(f)
			f.Close()
			if err != nil {
				fmt.Fprintf(os.Stderr, "loading %s: %v\n", *state, err)
				os.Exit(1)
			}
			// Restore validates the snapshot against the program (schema
			// version, branch bits, input names) and says what is wrong.
			if err := eng.Restore(snap); err != nil {
				fmt.Fprintf(os.Stderr, "loading %s: %v\n", *state, err)
				os.Exit(1)
			}
			fmt.Printf("resumed campaign: %d iterations done, %d branches already covered\n",
				snap.Iters, eng.Coverage().Count())
		}
	}

	res := eng.Run()

	if *state != "" {
		err := store.WriteAtomic(*state, eng.Snapshot().Save)
		if err != nil {
			fmt.Fprintf(os.Stderr, "saving %s: %v\n", *state, err)
			os.Exit(1)
		}
	}

	printResult(prog, res)
}

// printResult writes the end-of-campaign summary shared by the default
// campaign flow and `compi drive`.
func printResult(prog *target.Program, res core.Result) {
	reach := prog.ReachableBranches(res.Coverage.Funcs())
	fmt.Printf("\ntarget          %s\n", prog.Name)
	fmt.Printf("iterations      %d (restarts %d)\n", len(res.Iterations), res.Restarts)
	fmt.Printf("elapsed         %s\n", res.Elapsed.Round(time.Millisecond))
	fmt.Printf("covered         %d branches (total %d, reachable est. %d)\n",
		res.Coverage.Count(), prog.TotalBranches(), reach)
	fmt.Printf("coverage rate   %.1f%% of reachable\n", 100*res.CoverageRate(prog))
	fmt.Printf("solver calls    %d (%d unsat)\n", res.SolverCall, res.UnsatCalls)
	fmt.Printf("%s\n", res.Solver.Summary())
	if res.Schedule != (core.ScheduleStats{}) {
		fmt.Printf("schedules       %d choice points, %d orders explored, %d deadlocks\n",
			res.Schedule.ChoicePoints, res.Schedule.Orders, res.Schedule.Deadlocks)
	}

	distinct := res.DistinctErrors()
	fmt.Printf("error kinds     %d\n", len(distinct))
	for msg, recs := range distinct {
		r := recs[0]
		fmt.Printf("  [%s] %s\n", r.Status, msg)
		fmt.Printf("      first at iter %d, np=%d focus=%d inputs=%v\n",
			r.Iter, r.NProcs, r.Focus, r.Inputs)
	}
	if len(res.Profile) > 0 {
		fmt.Printf("\n%s", res.Profile.String())
	}
}

// runDrive implements `compi drive`: a campaign against an out-of-process
// target binary spoken to over the pipe protocol. The program model comes
// from the target's handshake manifest, or from a `compi targets --json`
// style manifest file given with -manifest (cross-checked against the
// handshake). Arguments after "--" are passed to the target binary.
func runDrive(args []string) {
	fs := flag.NewFlagSet("compi drive", flag.ExitOnError)
	var (
		bin       = fs.String("bin", "", "target binary speaking the pipe protocol (required)")
		manifest  = fs.String("manifest", "", "load the program model from this manifest file instead of the handshake")
		name      = fs.String("target", "", "program to select from a multi-program manifest file")
		iters     = fs.Int("iters", 200, "test iterations (program executions)")
		seed      = fs.Int64("seed", 1, "campaign seed")
		procs     = fs.Int("np", 8, "initial number of processes")
		maxProcs  = fs.Int("max-np", 16, "process-count cap")
		dfsPhase  = fs.Int("dfs-phase", 50, "pure-DFS executions before BoundedDFS")
		budget    = fs.Duration("budget", 0, "wall-clock budget (0 = none)")
		timeout   = fs.Duration("timeout", 30*time.Second, "per-execution watchdog")
		bugs      = fs.Bool("bugs", false, "leave the seeded bugs live")
		schedules = fs.Bool("schedules", false, "explore wildcard-receive match orders (schedule-space testing with deadlock detection)")
		shard     = fs.Int("shard", 1, "split the campaign into N shards by initial setup, one target process each (reported merged)")
		workers   = fs.Int("j", 0, "concurrently running shards (0 = GOMAXPROCS)")
		stateDir  = fs.String("state-dir", "", "campaign store directory: checkpoint the campaign, resume or reuse prior explorations")
		verbose   = fs.Bool("v", false, "per-iteration trace")
		errlog    = fs.String("errlog", "", "append error-inducing inputs as JSON lines to this file")
		profile   = fs.Bool("profile", false, "measure the iteration loop's phase bins and print the table after the summary")
	)
	var rest []string
	for i, a := range args {
		if a == "--" {
			rest = args[i+1:]
			args = args[:i]
			break
		}
	}
	fs.Parse(args)
	if *bin == "" {
		fmt.Fprintln(os.Stderr, "compi drive: -bin is required")
		os.Exit(2)
	}

	drv, err := proto.Start(*bin, proto.Options{Args: rest})
	if err != nil {
		fmt.Fprintf(os.Stderr, "compi drive: %v\n", err)
		os.Exit(1)
	}
	defer drv.Close()

	m := drv.Manifest()
	if *manifest != "" {
		f, err := os.Open(*manifest)
		if err != nil {
			fmt.Fprintf(os.Stderr, "compi drive: %v\n", err)
			os.Exit(1)
		}
		ms, err := target.ReadManifests(f)
		f.Close()
		if err != nil {
			fmt.Fprintf(os.Stderr, "compi drive: %s: %v\n", *manifest, err)
			os.Exit(1)
		}
		want := *name
		if want == "" {
			want = m.Program
		}
		idx := -1
		for i := range ms {
			if ms[i].Program == want {
				idx = i
				break
			}
		}
		if idx < 0 {
			fmt.Fprintf(os.Stderr, "compi drive: manifest file %s has no program %q\n", *manifest, want)
			os.Exit(1)
		}
		if ms[idx].Program != m.Program {
			fmt.Fprintf(os.Stderr, "compi drive: manifest file describes %q but the target serves %q\n",
				ms[idx].Program, m.Program)
			os.Exit(1)
		}
		m = ms[idx]
	}
	prog, err := target.FromManifest(m)
	if err != nil {
		fmt.Fprintf(os.Stderr, "compi drive: %v\n", err)
		os.Exit(1)
	}

	params := map[string]int64{}
	if !*bugs {
		params = core.MergeParams(susy.FixAll(), stencil.FixAll())
	}
	cfg := core.Config{
		Program:      prog,
		Backend:      drv,
		Params:       params,
		Iterations:   *iters,
		TimeBudget:   *budget,
		InitialProcs: *procs,
		MaxProcs:     *maxProcs,
		Reduction:    true,
		Framework:    true,
		DFSPhase:     *dfsPhase,
		Schedules:    *schedules,
		Seed:         *seed,
		RunTimeout:   *timeout,
	}
	if *errlog != "" {
		f, err := os.OpenFile(*errlog, os.O_CREATE|os.O_APPEND|os.O_WRONLY, 0o644)
		if err != nil {
			fmt.Fprintf(os.Stderr, "opening %s: %v\n", *errlog, err)
			os.Exit(1)
		}
		defer f.Close()
		cfg.ErrorLog = f
	}
	if *shard > 1 || *stateDir != "" {
		// Sharded (or store-backed) drive: the handshake driver only supplied
		// the program model; the scheduler starts one fresh target process
		// per shard, wires every shard into its shared solver service, and —
		// with a store attached — checkpoints and resumes each campaign.
		if err := drv.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "compi drive: %v\n", err)
			os.Exit(1)
		}
		cfg.Backend = nil
		base := sched.Spec{
			Label:    prog.Name + "/drive",
			Config:   cfg,
			External: &sched.External{Bin: *bin, Args: rest},
		}
		opt := sched.Options{Workers: *workers}
		if *profile {
			opt.Profiler = binstat.New()
		}
		if *stateDir != "" {
			st := openStateDir(*stateDir)
			defer st.Close()
			opt.Store = st
		}
		if *verbose {
			opt.Trace = func(label string, it core.IterationStat) {
				fmt.Printf("%-24s iter %4d  np=%-2d focus=%-2d covered=%-5d %s\n",
					label, it.Iter, it.NProcs, it.Focus, it.Covered,
					map[bool]string{true: "FAILED", false: ""}[it.Failed])
			}
		}
		sched.Run(sched.Shard(base, *shard), opt).WriteSummary(os.Stdout)
		return
	}
	if *verbose {
		cfg.Trace = func(it core.IterationStat) {
			fmt.Printf("iter %4d  np=%-2d focus=%-2d covered=%-5d set=%-5d %s\n",
				it.Iter, it.NProcs, it.Focus, it.Covered, it.PathLen,
				map[bool]string{true: "FAILED", false: ""}[it.Failed])
		}
	}
	if *profile {
		cfg.Profiler = binstat.New()
	}

	res := core.NewEngine(cfg).Run()
	printResult(prog, res)
	if err := drv.Close(); err != nil {
		fmt.Fprintf(os.Stderr, "compi drive: %v\n", err)
		os.Exit(1)
	}
}

// openStateDir opens (creating if needed) the campaign store behind a
// -state-dir flag, exiting with the store's explanation when it is
// unusable (e.g. written by a newer schema).
func openStateDir(dir string) *store.Store {
	st, err := store.Open(dir)
	if err != nil {
		fmt.Fprintf(os.Stderr, "compi: %v\n", err)
		os.Exit(1)
	}
	return st
}

// runStore implements `compi store`: inspect a campaign store directory —
// schema version, stored campaigns and their progress, batch manifests, the
// setup index, and the persisted solver cache — and `compi store compact`.
func runStore(args []string) {
	if len(args) > 0 && args[0] == "compact" {
		runStoreCompact(args[1:])
		return
	}
	fs := flag.NewFlagSet("compi store", flag.ExitOnError)
	dir := fs.String("dir", "", "campaign store directory (required)")
	jsonOut := fs.Bool("json", false, "emit the inventory as JSON")
	fs.Parse(args)
	if *dir == "" && fs.NArg() == 1 {
		*dir = fs.Arg(0)
	}
	if *dir == "" {
		fmt.Fprintln(os.Stderr, "compi store: -dir is required")
		os.Exit(2)
	}
	if fi, err := os.Stat(*dir); err != nil || !fi.IsDir() {
		fmt.Fprintf(os.Stderr, "compi store: %s is not a store directory\n", *dir)
		os.Exit(1)
	}
	st, err := store.Open(*dir)
	if err != nil {
		fmt.Fprintf(os.Stderr, "compi store: %v\n", err)
		os.Exit(1)
	}
	defer st.Close()

	type campaignInfo struct {
		Name    string `json:"name"`
		Program string `json:"program"`
		Iters   int    `json:"iters"`
		Covered int    `json:"covered"`
		Errors  int    `json:"errors"`
	}
	type batchInfo struct {
		ID     string         `json:"id"`
		Counts map[string]int `json:"counts"` // status → entries
	}
	type inventory struct {
		Dir         string         `json:"dir"`
		Version     int            `json:"version"`
		Campaigns   []campaignInfo `json:"campaigns"`
		Batches     []batchInfo    `json:"batches"`
		Setups      int            `json:"setups"`
		SolverUnsat int            `json:"solverUnsat"`
		SolverErr   string         `json:"solverErr,omitempty"`
	}
	inv := inventory{Dir: st.Dir(), Version: store.Version}

	names, _ := st.Campaigns()
	for _, n := range names {
		ci := campaignInfo{Name: n}
		if snap, err := st.LoadCampaign(n); err == nil {
			ci.Program = snap.Program
			ci.Iters = snap.Iters
			ci.Covered = len(snap.Covered)
			ci.Errors = len(snap.Errors)
		}
		inv.Campaigns = append(inv.Campaigns, ci)
	}
	ids, _ := st.Batches()
	for _, id := range ids {
		bi := batchInfo{ID: id, Counts: map[string]int{}}
		if man, err := st.LoadBatch(id); err == nil && man != nil {
			for _, e := range man.Entries {
				bi.Counts[e.Status]++
			}
		}
		inv.Batches = append(inv.Batches, bi)
	}
	if setups, err := st.Setups(); err == nil {
		inv.Setups = len(setups)
	}
	n, err := st.LoadSolverCacheInto(solver.NewService(solver.ServiceConfig{}))
	inv.SolverUnsat = n
	if err != nil {
		inv.SolverErr = err.Error()
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		enc.Encode(inv)
		return
	}
	fmt.Printf("store %s (schema v%d)\n", inv.Dir, inv.Version)
	fmt.Printf("campaigns %d\n", len(inv.Campaigns))
	for _, c := range inv.Campaigns {
		fmt.Printf("  %-40s %-10s iters=%-5d covered=%-5d errors=%d\n",
			c.Name, c.Program, c.Iters, c.Covered, c.Errors)
	}
	fmt.Printf("batches %d\n", len(inv.Batches))
	for _, b := range inv.Batches {
		fmt.Printf("  %-24s", b.ID)
		for _, status := range []string{"pending", "running", "done", "reused", "error"} {
			if b.Counts[status] > 0 {
				fmt.Printf(" %s=%d", status, b.Counts[status])
			}
		}
		fmt.Println()
	}
	fmt.Printf("setup index %d entries\n", inv.Setups)
	if inv.SolverErr != "" {
		fmt.Printf("solver cache unusable: %s\n", inv.SolverErr)
	} else {
		fmt.Printf("solver cache %d proven-unsat entries\n", inv.SolverUnsat)
	}
}

// runStoreCompact implements `compi store compact`: drop campaign snapshots
// superseded by further-progressed runs of the same setup, redirecting batch
// manifests to the surviving files. Resume behaviour is unchanged — the
// setup index, which the resume path reads, always references the file kept.
func runStoreCompact(args []string) {
	fs := flag.NewFlagSet("compi store compact", flag.ExitOnError)
	dir := fs.String("dir", "", "campaign store directory (required)")
	fs.Parse(args)
	if *dir == "" && fs.NArg() == 1 {
		*dir = fs.Arg(0)
	}
	if *dir == "" {
		fmt.Fprintln(os.Stderr, "compi store compact: -dir is required")
		os.Exit(2)
	}
	if fi, err := os.Stat(*dir); err != nil || !fi.IsDir() {
		fmt.Fprintf(os.Stderr, "compi store compact: %s is not a store directory\n", *dir)
		os.Exit(1)
	}
	st, err := store.Open(*dir)
	if err != nil {
		fmt.Fprintf(os.Stderr, "compi store compact: %v\n", err)
		os.Exit(1)
	}
	defer st.Close()
	stats, err := st.Compact()
	if err != nil {
		fmt.Fprintf(os.Stderr, "compi store compact: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("compacted %s: removed %d superseded snapshots, kept %d, redirected %d batch entries\n",
		st.Dir(), len(stats.Removed), stats.Kept, stats.Rewritten)
	for _, name := range stats.Removed {
		fmt.Printf("  removed %s\n", name)
	}
}

// gridFlags is the campaign-grid flag block shared by `compi sched` and
// `compi serve`: both commands describe the same grid of campaigns (every
// requested target × every seed, optionally sharded); they differ only in
// who runs it — an in-process scheduler or a fleet of worker processes.
type gridFlags struct {
	targets   *string
	seeds     *string
	iters     *int
	budget    *time.Duration
	timeout   *time.Duration
	procs     *int
	maxProcs  *int
	dfsPhase  *int
	bugs      *bool
	schedules *bool
	shard     *int
}

func registerGridFlags(fs *flag.FlagSet) *gridFlags {
	return &gridFlags{
		targets:   fs.String("targets", "", "comma-separated target list (default: all registered)"),
		seeds:     fs.String("seeds", "1", "comma-separated campaign seeds (one campaign per target per seed)"),
		iters:     fs.Int("iters", 200, "test iterations per campaign"),
		budget:    fs.Duration("budget", 0, "per-campaign wall-clock budget (0 = none)"),
		timeout:   fs.Duration("timeout", 30*time.Second, "per-execution watchdog"),
		procs:     fs.Int("np", 8, "initial number of processes"),
		maxProcs:  fs.Int("max-np", 16, "process-count cap"),
		dfsPhase:  fs.Int("dfs-phase", 50, "pure-DFS executions before BoundedDFS"),
		bugs:      fs.Bool("bugs", false, "leave the seeded bugs live"),
		schedules: fs.Bool("schedules", false, "explore wildcard-receive match orders (schedule-space testing with deadlock detection)"),
		shard:     fs.Int("shard", 1, "split every campaign into N shards by initial setup (reported merged)"),
	}
}

// specs expands the parsed grid flags into the campaign spec list, exiting
// with a usage error on unknown targets or malformed seed lists.
func (g *gridFlags) specs() []sched.Spec {
	names := target.Names()
	if *g.targets != "" {
		names = strings.Split(*g.targets, ",")
	}
	params := map[string]int64{}
	if !*g.bugs {
		params = core.MergeParams(susy.FixAll(), stencil.FixAll())
	}
	var seedVals []int64
	for _, sv := range strings.Split(*g.seeds, ",") {
		n, err := strconv.ParseInt(strings.TrimSpace(sv), 10, 64)
		if err != nil {
			fmt.Fprintf(os.Stderr, "bad -seeds entry %q: %v\n", sv, err)
			os.Exit(2)
		}
		seedVals = append(seedVals, n)
	}

	var specs []sched.Spec
	for _, n := range names {
		n = strings.TrimSpace(n)
		if _, ok := target.Lookup(n); !ok {
			fmt.Fprintf(os.Stderr, "unknown target %q; available: %s\n",
				n, strings.Join(target.Names(), ", "))
			os.Exit(2)
		}
		for _, sd := range seedVals {
			specs = append(specs, sched.Spec{
				Target: n,
				Seed:   sd,
				Config: core.Config{
					Params:       params,
					Iterations:   *g.iters,
					TimeBudget:   *g.budget,
					InitialProcs: *g.procs,
					MaxProcs:     *g.maxProcs,
					Reduction:    true,
					Framework:    true,
					DFSPhase:     *g.dfsPhase,
					Schedules:    *g.schedules,
					RunTimeout:   *g.timeout,
				},
			})
		}
	}

	if *g.shard > 1 {
		sharded := make([]sched.Spec, 0, len(specs)*(*g.shard))
		for _, sp := range specs {
			sharded = append(sharded, sched.Shard(sp, *g.shard)...)
		}
		specs = sharded
	}
	return specs
}

// runSched implements `compi sched`: a grid of campaigns (every requested
// target × every seed) run concurrently through the parallel scheduler, with
// a merged per-target summary at the end.
func runSched(args []string) {
	fs := flag.NewFlagSet("compi sched", flag.ExitOnError)
	grid := registerGridFlags(fs)
	var (
		workers  = fs.Int("j", 0, "concurrently running campaigns (0 = GOMAXPROCS)")
		stateDir = fs.String("state-dir", "", "campaign store directory: checkpoint campaigns, resume interrupted batches, reuse setups explored by prior batches")
		batchID  = fs.String("batch", "", "batch manifest name in the store (default: derived from the spec list)")
		verbose  = fs.Bool("v", false, "per-iteration trace")
		profile  = fs.Bool("profile", false, "measure every campaign's phase bins and print the batch-wide table after the summary")
	)
	fs.Parse(args)
	specs := grid.specs()

	opt := sched.Options{Workers: *workers, BatchID: *batchID}
	if *profile {
		opt.Profiler = binstat.New()
	}
	if *stateDir != "" {
		st := openStateDir(*stateDir)
		defer st.Close()
		opt.Store = st
	}
	if *verbose {
		opt.Trace = func(label string, it core.IterationStat) {
			fmt.Printf("%-24s iter %4d  np=%-2d focus=%-2d covered=%-5d %s\n",
				label, it.Iter, it.NProcs, it.Focus, it.Covered,
				map[bool]string{true: "FAILED", false: ""}[it.Failed])
		}
	}
	sched.Run(specs, opt).WriteSummary(os.Stdout)
}

// runServe implements `compi serve`: the fleet coordinator. It owns the same
// campaign grid `compi sched` would run (and, with -state-dir, the same
// store), but leases shards to `compi work` processes over the dispatch
// protocol instead of running engines itself, prints the merged summary when
// the batch resolves, and exits.
func runServe(args []string) {
	fs := flag.NewFlagSet("compi serve", flag.ExitOnError)
	grid := registerGridFlags(fs)
	var (
		listen    = fs.String("listen", "127.0.0.1:0", "dispatch address workers connect to")
		status    = fs.String("status", "", "serve plain-text fleet status on this address (empty = off)")
		addrFile  = fs.String("addr-file", "", "write the dispatch address to this file once listening (worker discovery)")
		stateDir  = fs.String("state-dir", "", "campaign store directory: checkpoint shards, resume interrupted batches, reuse setups explored by prior batches")
		batchID   = fs.String("batch", "", "batch manifest name in the store (default: derived from the spec list)")
		ttl       = fs.Duration("ttl", 10*time.Second, "lease time-to-live: a lease not renewed within this window is reclaimed and re-leased")
		snapEvery = fs.Int("snapshot-every", 8, "iterations between streamed progress snapshots (resume granularity after a worker death)")
		verbose   = fs.Bool("v", false, "log fleet events to stderr")
		profile   = fs.Bool("profile", false, "ask workers to profile their engines; top bins appear on -status and the final summary")
	)
	fs.Parse(args)
	specs := grid.specs()

	opt := fleet.Options{BatchID: *batchID, TTL: *ttl, SnapshotEvery: *snapEvery, Profile: *profile}
	if *stateDir != "" {
		st := openStateDir(*stateDir)
		defer st.Close()
		opt.Store = st
	}
	if *verbose {
		opt.Logf = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		}
	}
	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		fmt.Fprintf(os.Stderr, "compi serve: %v\n", err)
		os.Exit(1)
	}
	c := fleet.NewCoordinator(specs, opt)
	fmt.Fprintf(os.Stderr, "compi serve: dispatching %d shards on %s\n", len(specs), ln.Addr())
	if *addrFile != "" {
		// Write-then-rename so a polling worker launcher never reads a
		// half-written address.
		tmp := *addrFile + ".tmp"
		if err := os.WriteFile(tmp, []byte(ln.Addr().String()+"\n"), 0o644); err == nil {
			err = os.Rename(tmp, *addrFile)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "compi serve: %v\n", err)
			os.Exit(1)
		}
	}
	if *status != "" {
		sln, err := net.Listen("tcp", *status)
		if err != nil {
			fmt.Fprintf(os.Stderr, "compi serve: status: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "compi serve: status on %s\n", sln.Addr())
		go c.ServeStatus(sln)
	}
	go c.Serve(ln)
	c.Wait().WriteSummary(os.Stdout)
}

// runWork implements `compi work`: a fleet worker that leases shards from a
// `compi serve` coordinator until the batch drains or the coordinator goes
// away.
func runWork(args []string) {
	fs := flag.NewFlagSet("compi work", flag.ExitOnError)
	var (
		connect = fs.String("connect", "", "coordinator dispatch address (required)")
		jobs    = fs.Int("j", 1, "parallel campaign slots")
		name    = fs.String("name", "", "worker name in coordinator logs and status (default pid<n>)")
		window  = fs.Duration("dial-window", 10*time.Second, "how long to retry the initial connection")
		verbose = fs.Bool("v", false, "log worker events to stderr")
		profile = fs.Bool("profile", false, "profile every leased engine and ship the per-shard reports to the coordinator")
	)
	fs.Parse(args)
	if *connect == "" {
		fmt.Fprintln(os.Stderr, "compi work: -connect is required")
		os.Exit(2)
	}
	opt := fleet.WorkerOptions{Name: *name, Jobs: *jobs, DialWindow: *window, Profile: *profile}
	if *verbose {
		opt.Logf = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		}
	}
	if err := fleet.Work(*connect, opt); err != nil {
		fmt.Fprintf(os.Stderr, "compi work: %v\n", err)
		os.Exit(1)
	}
}

// runTargets implements `compi targets [--json] [-target name]`: the static
// declaration manifests of the registered programs, without running anything.
func runTargets(args []string) {
	fs := flag.NewFlagSet("compi targets", flag.ExitOnError)
	jsonOut := fs.Bool("json", false, "emit the full JSON manifest array")
	name := fs.String("target", "", "restrict the listing to one program")
	fs.Parse(args)

	progs := target.Programs()
	if *name != "" {
		p, ok := target.Lookup(*name)
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown target %q; available: %s\n",
				*name, strings.Join(target.Names(), ", "))
			os.Exit(2)
		}
		progs = []*target.Program{p}
	}

	if *jsonOut {
		ms := make([]target.Manifest, len(progs))
		for i, p := range progs {
			ms[i] = p.Manifest()
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(ms); err != nil {
			fmt.Fprintf(os.Stderr, "encoding manifests: %v\n", err)
			os.Exit(1)
		}
		return
	}

	for _, p := range progs {
		fmt.Printf("%-10s sloc=%-5d branches=%-4d functions=%-2d callsites=%-2d inputs=%d\n",
			p.Name, p.SLOC, p.TotalBranches(), len(p.Functions()), len(p.Calls()), len(p.Inputs()))
		for _, in := range p.Inputs() {
			if in.HasCap {
				fmt.Printf("    input %-12s cap=%d\n", in.Name, in.Cap)
			} else {
				fmt.Printf("    input %s\n", in.Name)
			}
		}
	}
}
