// Command compi runs COMPI testing campaigns against the bundled target
// programs. It is a registry of modes, each a thin shell around one library
// entry point; every campaign-shaping flag is defined once (internal/spec's
// FlagBinder) and shared by all campaign modes.
//
// Usage:
//
//	compi -target hpl -iters 500            # default mode: one campaign
//	compi run -target susy-hmc -bugs        # same mode, spelled out
//	compi -target imb-mpi1 -strategy random-branch
//	compi -list
//	compi targets                           # declaration summary per target
//	compi targets --json                    # full static manifests
//	compi sched -j 8 -seeds 1,2,3,4         # parallel campaign grid
//	compi sched -targets hpl -shard 8 -j 8  # one campaign split into 8 shards
//	compi drive -bin ./compi-target -- -target stencil
//	                                        # drive an out-of-process target
//	compi serve -state-dir ./state -listen 127.0.0.1:7045
//	                                        # coordinator: lease shards
//	compi work -connect 127.0.0.1:7045 -j 4 # worker: run leased shards
//	compi store compact -dir ./state        # drop superseded snapshots
//	compi store minimize -dir ./state       # drop subsumed corpus entries
//	compi report -dir ./state -error dead   # which setups hit a deadlock?
//	compi replay -spec failure.json         # re-execute a recorded failure
//	compi help                              # mode listing
package main

import (
	"fmt"
	"os"
	"strings"
)

// modes is the registry: every subcommand, in the order `compi help` lists
// them. Each call constructs fresh modes (and fresh FlagSets), so a mode can
// be parsed at most once per construction.
func modes() []Mode {
	return []Mode{
		newRunMode(),
		newTargetsMode(),
		newDriveMode(),
		newSchedMode(),
		newServeMode(),
		newWorkMode(),
		newStoreMode(),
		newReportMode(),
		newReplayMode(),
		newHelpMode(),
	}
}

// usageText renders the top-level usage from the registry, so the listing
// can never drift from what dispatch actually accepts.
func usageText() string {
	var b strings.Builder
	b.WriteString("usage: compi [mode] [flags]\n\nmodes:\n")
	for _, m := range modes() {
		fmt.Fprintf(&b, "  %-8s %s\n", m.Name(), m.Synopsis())
	}
	b.WriteString("\nBare flags select the default run mode; `compi <mode> -h` lists a mode's flags.\n")
	return b.String()
}

func main() {
	args := os.Args[1:]
	// Bare flags (or nothing) select the default campaign mode, preserving
	// the original single-command interface.
	if len(args) == 0 || strings.HasPrefix(args[0], "-") {
		os.Exit(newRunMode().Run(args))
	}
	for _, m := range modes() {
		if m.Name() == args[0] {
			os.Exit(m.Run(args[1:]))
		}
	}
	fmt.Fprintf(os.Stderr, "compi: unknown mode %q\n\n%s", args[0], usageText())
	os.Exit(2)
}
