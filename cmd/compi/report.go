package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"repro/internal/store"
)

// reportMode answers cross-campaign questions from the store's campaign
// index without replaying anything: which setups found an error, what
// coverage each target reached, who contributed to the solver cache.
type reportMode struct {
	fs *flag.FlagSet

	dir     *string
	errSub  *string
	target  *string
	jsonOut *bool
}

func newReportMode() *reportMode {
	fs := newFlagSet("report")
	m := &reportMode{fs: fs}
	m.dir = fs.String("dir", "", "campaign store directory (required)")
	m.errSub = fs.String("error", "", "list only setups whose errors contain this substring (empty with the flag set: any error)")
	m.target = fs.String("target", "", "restrict to campaigns of this target")
	m.jsonOut = fs.Bool("json", false, "emit the report as JSON")
	return m
}

func (m *reportMode) Name() string { return "report" }
func (m *reportMode) Synopsis() string {
	return "query the campaign index: errors by setup, coverage by target, cache contributions"
}
func (m *reportMode) Flags() *flag.FlagSet { return m.fs }

func (m *reportMode) Run(args []string) int {
	m.fs.Parse(args)
	// -error with an empty value still means "filter to erroring setups",
	// so test the flag's presence rather than its value.
	errFlagSet := false
	m.fs.Visit(func(f *flag.Flag) {
		if f.Name == "error" {
			errFlagSet = true
		}
	})
	storeDir(m.fs, m.dir, "compi report")
	st, err := store.Open(*m.dir)
	if err != nil {
		return fatalf("compi report: %v", err)
	}
	defer st.Close()

	entries, err := st.Index()
	if err != nil {
		return fatalf("compi report: %v\n(run `compi store reindex -dir %s` to rebuild the index)", err, *m.dir)
	}
	if entries == nil {
		if n, err := st.Reindex(); err != nil {
			return fatalf("compi report: building index: %v", err)
		} else if n > 0 {
			fmt.Fprintf(os.Stderr, "compi report: no index yet, built one with %d entries\n", n)
		}
		if entries, err = st.Index(); err != nil {
			return fatalf("compi report: %v", err)
		}
	}
	if *m.target != "" {
		kept := entries[:0]
		for _, e := range entries {
			if e.Target == *m.target {
				kept = append(kept, e)
			}
		}
		entries = kept
	}
	if errFlagSet {
		entries = store.SetupsWithError(entries, *m.errSub)
	}

	if *m.jsonOut {
		type report struct {
			Dir     string                `json:"dir"`
			Targets []store.TargetSummary `json:"targets"`
			Setups  []store.IndexEntry    `json:"setups"`
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		enc.Encode(report{Dir: st.Dir(), Targets: store.ByTarget(entries), Setups: entries})
		return 0
	}

	fmt.Printf("report over %s: %d setups\n", st.Dir(), len(entries))
	fmt.Println("\ncoverage by target:")
	for _, ts := range store.ByTarget(entries) {
		fmt.Printf("  %-12s setups=%-3d iters=%-6d best=%-5d errors=%d (%d deadlock) unsat-contrib=%d refuted-skips=%d\n",
			ts.Target, ts.Setups, ts.Iters, ts.BestBranches, ts.Errors, ts.Deadlocks,
			ts.UnsatContrib, ts.RefutedSkips)
	}
	fmt.Println("\nsetups:")
	for _, e := range entries {
		fmt.Printf("  %-24s %-12s key=%s iters=%-5d branches=%-5d fp=%s\n",
			e.Campaign, e.Target, e.Key, e.Iters, e.Branches, e.CoverageFP[:12])
		for _, ie := range e.Errors {
			fmt.Printf("      [%s] %s\n", ie.Status, ie.Msg)
		}
	}
	return 0
}
