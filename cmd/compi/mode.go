package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/sched"
	"repro/internal/spec"
	"repro/internal/store"
	"repro/internal/target"
	_ "repro/internal/targets/hpl"
	_ "repro/internal/targets/imb"
	_ "repro/internal/targets/mworder"
	_ "repro/internal/targets/relay"
	_ "repro/internal/targets/skeleton"
	"repro/internal/targets/stencil"
	"repro/internal/targets/susy"
)

// Mode is one compi subcommand. Run parses args against Flags() and returns
// the process exit code; Flags() carries the mode's full flag set (its
// FlagSet is named "compi <mode>", so -h usage names the mode).
type Mode interface {
	Name() string
	Synopsis() string
	Flags() *flag.FlagSet
	Run(args []string) int
}

// campaignMode is the extra contract of modes that shape campaigns: every
// flag in spec.CampaignFlagNames must be either bound on the mode's FlagSet
// or excluded here with a reason. The registry test walks this.
type campaignMode interface {
	Mode
	Excluded() map[string]string
}

// newFlagSet names a mode's FlagSet "compi <mode>" so its -h usage mentions
// the mode. flag.ExitOnError exits 0 on -h (flag.ErrHelp) and 2 on a bad
// flag, matching the CLI's historical behaviour.
func newFlagSet(mode string) *flag.FlagSet {
	return flag.NewFlagSet("compi "+mode, flag.ExitOnError)
}

// fixParams is the seeded-bug fix parameter bag campaign modes apply unless
// -bugs asks to leave the bugs live.
func fixParams() map[string]int64 {
	return core.MergeParams(susy.FixAll(), stencil.FixAll())
}

// fatalf prints an error and returns exit code 1 (runtime failure).
func fatalf(format string, args ...any) int {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	return 1
}

// usagef prints an error and returns exit code 2 (usage error).
func usagef(format string, args ...any) int {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	return 2
}

// toSpecs lifts data-only campaigns into scheduler specs (no overrides).
func toSpecs(cs []spec.Campaign) []sched.Spec {
	specs := make([]sched.Spec, len(cs))
	for i, c := range cs {
		specs[i] = sched.Spec{Campaign: c}
	}
	return specs
}

// openStateDir opens (creating if needed) the campaign store behind a
// -state-dir flag, exiting with the store's explanation when it is
// unusable (e.g. written by a newer schema).
func openStateDir(dir string) *store.Store {
	st, err := store.Open(dir)
	if err != nil {
		fmt.Fprintf(os.Stderr, "compi: %v\n", err)
		os.Exit(1)
	}
	return st
}

// iterTrace is the -v per-iteration line of the single-engine modes.
func iterTrace() func(core.IterationStat) {
	return func(it core.IterationStat) {
		fmt.Printf("iter %4d  np=%-2d focus=%-2d covered=%-5d set=%-5d %s\n",
			it.Iter, it.NProcs, it.Focus, it.Covered, it.PathLen,
			map[bool]string{true: "FAILED", false: ""}[it.Failed])
	}
}

// labelTrace is the -v per-iteration line of the batch modes, tagged with
// the campaign label.
func labelTrace() func(string, core.IterationStat) {
	return func(label string, it core.IterationStat) {
		fmt.Printf("%-24s iter %4d  np=%-2d focus=%-2d covered=%-5d %s\n",
			label, it.Iter, it.NProcs, it.Focus, it.Covered,
			map[bool]string{true: "FAILED", false: ""}[it.Failed])
	}
}

// printResult writes the end-of-campaign summary shared by `compi run` and
// `compi drive`.
func printResult(prog *target.Program, res core.Result) {
	reach := prog.ReachableBranches(res.Coverage.Funcs())
	fmt.Printf("\ntarget          %s\n", prog.Name)
	fmt.Printf("iterations      %d (restarts %d)\n", len(res.Iterations), res.Restarts)
	fmt.Printf("elapsed         %s\n", res.Elapsed.Round(time.Millisecond))
	fmt.Printf("covered         %d branches (total %d, reachable est. %d)\n",
		res.Coverage.Count(), prog.TotalBranches(), reach)
	fmt.Printf("coverage rate   %.1f%% of reachable\n", 100*res.CoverageRate(prog))
	fmt.Printf("solver calls    %d (%d unsat)\n", res.SolverCall, res.UnsatCalls)
	fmt.Printf("%s\n", res.Solver.Summary())
	if res.Schedule != (core.ScheduleStats{}) {
		fmt.Printf("schedules       %d choice points, %d orders explored, %d deadlocks\n",
			res.Schedule.ChoicePoints, res.Schedule.Orders, res.Schedule.Deadlocks)
	}

	distinct := res.DistinctErrors()
	fmt.Printf("error kinds     %d\n", len(distinct))
	for msg, recs := range distinct {
		r := recs[0]
		fmt.Printf("  [%s] %s\n", r.Status, msg)
		fmt.Printf("      first at iter %d, np=%d focus=%d inputs=%v\n",
			r.Iter, r.NProcs, r.Focus, r.Inputs)
	}
	if len(res.Profile) > 0 {
		fmt.Printf("\n%s", res.Profile.String())
	}
}
