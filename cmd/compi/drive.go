package main

import (
	"flag"
	"os"

	"repro/internal/binstat"
	"repro/internal/core"
	"repro/internal/proto"
	"repro/internal/sched"
	"repro/internal/spec"
	"repro/internal/target"
)

// driveMode runs a campaign against an out-of-process target binary spoken
// to over the pipe protocol. The program model comes from the target's
// handshake manifest, or from a `compi targets --json` style manifest file
// given with -manifest (cross-checked against the handshake). Arguments
// after "--" are passed to the target binary.
type driveMode struct {
	fs     *flag.FlagSet
	binder *spec.FlagBinder

	bin      *string
	manifest *string
	name     *string
	workers  *int
	stateDir *string
	verbose  *bool
	errlog   *string
}

func newDriveMode() *driveMode {
	fs := newFlagSet("drive")
	m := &driveMode{
		fs: fs,
		binder: spec.Bind(fs, false, map[string]string{
			"target": "the program comes from the target's handshake manifest; drive's own -target selects from a -manifest file",
		}),
	}
	m.bin = fs.String("bin", "", "target binary speaking the pipe protocol (required)")
	m.manifest = fs.String("manifest", "", "load the program model from this manifest file instead of the handshake")
	m.name = fs.String("target", "", "program to select from a multi-program manifest file")
	m.workers = fs.Int("j", 0, "concurrently running shards (0 = GOMAXPROCS)")
	m.stateDir = fs.String("state-dir", "", "campaign store directory: checkpoint the campaign, resume or reuse prior explorations")
	m.verbose = fs.Bool("v", false, "per-iteration trace")
	m.errlog = fs.String("errlog", "", "append error-inducing inputs as JSON lines to this file")
	return m
}

func (m *driveMode) Name() string { return "drive" }
func (m *driveMode) Synopsis() string {
	return "drive an out-of-process target binary over the pipe protocol"
}
func (m *driveMode) Flags() *flag.FlagSet { return m.fs }

// Excluded: the binder skips -target (the program comes from the handshake
// manifest), but drive re-binds the name with its own meaning — selecting a
// program from a -manifest file — so the flag is bound, not missing.
func (m *driveMode) Excluded() map[string]string {
	ex := map[string]string{}
	for name, reason := range m.binder.Excluded() {
		if name == "target" {
			continue // re-bound above with drive-specific meaning
		}
		ex[name] = reason
	}
	return ex
}

func (m *driveMode) Run(args []string) int {
	var rest []string
	for i, a := range args {
		if a == "--" {
			rest = args[i+1:]
			args = args[:i]
			break
		}
	}
	m.fs.Parse(args)
	if *m.bin == "" {
		return usagef("compi drive: -bin is required")
	}

	drv, err := proto.Start(*m.bin, proto.Options{Args: rest})
	if err != nil {
		return fatalf("compi drive: %v", err)
	}
	defer drv.Close()

	man := drv.Manifest()
	if *m.manifest != "" {
		f, err := os.Open(*m.manifest)
		if err != nil {
			return fatalf("compi drive: %v", err)
		}
		ms, err := target.ReadManifests(f)
		f.Close()
		if err != nil {
			return fatalf("compi drive: %s: %v", *m.manifest, err)
		}
		want := *m.name
		if want == "" {
			want = man.Program
		}
		idx := -1
		for i := range ms {
			if ms[i].Program == want {
				idx = i
				break
			}
		}
		if idx < 0 {
			return fatalf("compi drive: manifest file %s has no program %q", *m.manifest, want)
		}
		if ms[idx].Program != man.Program {
			return fatalf("compi drive: manifest file describes %q but the target serves %q",
				ms[idx].Program, man.Program)
		}
		man = ms[idx]
	}
	prog, err := target.FromManifest(man)
	if err != nil {
		return fatalf("compi drive: %v", err)
	}

	c := m.binder.BaseCampaign(fixParams())
	var errFile *os.File
	if *m.errlog != "" {
		errFile, err = os.OpenFile(*m.errlog, os.O_CREATE|os.O_APPEND|os.O_WRONLY, 0o644)
		if err != nil {
			return fatalf("opening %s: %v", *m.errlog, err)
		}
		defer errFile.Close()
	}

	if shard := m.binder.ShardCount(); shard > 1 || *m.stateDir != "" {
		// Sharded (or store-backed) drive: the handshake driver only supplied
		// the program model; the scheduler starts one fresh target process
		// per shard, wires every shard into its shared solver service, and —
		// with a store attached — checkpoints and resumes each campaign.
		if err := drv.Close(); err != nil {
			return fatalf("compi drive: %v", err)
		}
		c.Label = prog.Name + "/drive"
		c.External = &spec.External{Bin: *m.bin, Args: rest}
		base := sched.Spec{Campaign: c, Overrides: spec.Overrides{Program: prog}}
		if errFile != nil {
			base.Overrides.ErrorLog = errFile
		}
		opt := sched.Options{Workers: *m.workers}
		if m.binder.Profile() {
			opt.Profiler = binstat.New()
		}
		if *m.stateDir != "" {
			st := openStateDir(*m.stateDir)
			defer st.Close()
			opt.Store = st
		}
		if *m.verbose {
			opt.Trace = labelTrace()
		}
		sched.Run(sched.Shard(base, shard), opt).WriteSummary(os.Stdout)
		return 0
	}

	cfg, err := sched.Spec{Campaign: c}.Config()
	if err != nil {
		return usagef("%v", err)
	}
	cfg.Program = prog
	cfg.Backend = drv
	if errFile != nil {
		cfg.ErrorLog = errFile
	}
	if *m.verbose {
		cfg.Trace = iterTrace()
	}
	if m.binder.Profile() {
		cfg.Profiler = binstat.New()
	}

	res := core.NewEngine(cfg).Run()
	printResult(prog, res)
	if err := drv.Close(); err != nil {
		return fatalf("compi drive: %v", err)
	}
	return 0
}
